module motor

go 1.22
