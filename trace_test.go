package motor_test

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"motor"
	"motor/internal/obs"
)

// chromeEvent mirrors the trace_event fields the round-trip test
// validates.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    *float64       `json:"ts"`
	Dur   *float64       `json:"dur"`
	PID   *int           `json:"pid"`
	TID   *int           `json:"tid"`
	ID    string         `json:"id"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args"`
}

// TestTraceRoundTrip drives a workload engineered to produce every
// correlated span class the tracer promises — op span, pin decision,
// ADI request, channel frame, and a full collection whose cond-pin
// phase resolves a conditional pin while the mark phase runs — then
// parses the exported Chrome JSON and validates its schema, span
// nesting, and the cross-layer correlations.
func TestTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	run(t, motor.Config{Ranks: 2, Trace: path}, func(r *motor.Rank) error {
		if r.ID() == 0 {
			// A conditional pin resolved by a full GC: post a receive
			// that cannot complete (rank 1 is parked at the barrier),
			// collect, then let rank 1 send.
			buf, err := r.NewInt32Array(make([]int32, 8))
			if err != nil {
				return err
			}
			release := r.Protect(&buf)
			defer release()
			req, err := r.Irecv(buf, 1, 7)
			if err != nil {
				return err
			}
			r.GC(true)
			if err := r.Barrier(); err != nil {
				return err
			}
			if _, err := r.Wait(req); err != nil {
				return err
			}
			// One blocking exchange for op/wait/pin/frame spans.
			if err := r.Send(buf, 1, 8); err != nil {
				return err
			}
			return nil
		}
		if err := r.Barrier(); err != nil {
			return err
		}
		msg, err := r.NewInt32Array([]int32{1, 2, 3, 4, 5, 6, 7, 8})
		if err != nil {
			return err
		}
		if err := r.Send(msg, 0, 7); err != nil {
			return err
		}
		_, err = r.Recv(msg, 0, 8)
		return err
	})

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent  `json:"traceEvents"`
		Metadata    map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	if doc.Metadata["motor-trace-version"] == nil {
		t.Error("metadata missing motor-trace-version")
	}

	// Schema: every event names itself and addresses a (pid, tid);
	// complete events carry durations; async begins/ends pair by id.
	byName := map[string]int{}
	asyncB, asyncE := map[string]int{}, map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Phase == "" {
			t.Fatalf("event %d missing name/ph: %+v", i, ev)
		}
		if ev.PID == nil || ev.TID == nil {
			t.Fatalf("event %d (%s) missing pid/tid", i, ev.Name)
		}
		if ev.Phase != "M" && ev.TS == nil {
			t.Fatalf("event %d (%s) missing ts", i, ev.Name)
		}
		byName[ev.Name]++
		switch ev.Phase {
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("complete event %s lacks a non-negative dur", ev.Name)
			}
		case "i":
			if ev.Scope != "t" {
				t.Fatalf("instant %s has scope %q, want \"t\"", ev.Name, ev.Scope)
			}
		case "b":
			if ev.ID == "" {
				t.Fatalf("async begin %s lacks an id", ev.Name)
			}
			asyncB[ev.ID]++
		case "e":
			if ev.ID == "" {
				t.Fatalf("async end %s lacks an id", ev.Name)
			}
			asyncE[ev.ID]++
		case "M":
		default:
			t.Fatalf("unexpected phase %q on %s", ev.Phase, ev.Name)
		}
	}
	for id, n := range asyncB {
		if asyncE[id] != n {
			t.Errorf("async id %s: %d begins, %d ends", id, n, asyncE[id])
		}
	}

	// The four correlated lifecycle stages plus the GC evidence.
	// pin:avoided-fast is the deterministic pin decision here: an
	// eager send always completes before its polling-wait (deferred
	// pins also occur but depend on message-arrival timing).
	for _, want := range []string{
		"pin:avoided-fast", "req:send", "req:recv", "frame:out:EAGER",
		"gc:full", "gc:mark", "gc:cond-pins", "condpin:held",
	} {
		if byName[want] == 0 {
			t.Errorf("trace has no %q events (have %v)", want, names(byName))
		}
	}

	// Cross-layer correlation: the condpin:held instant's parent must
	// be the gc:cond-pins phase span of the collection.
	spanOf := map[string]map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" && ev.Args != nil {
			if id, ok := ev.Args["span"].(float64); ok {
				if spanOf[ev.Name] == nil {
					spanOf[ev.Name] = map[float64]bool{}
				}
				spanOf[ev.Name][id] = true
			}
		}
	}
	held := false
	for _, ev := range doc.TraceEvents {
		if ev.Name != "condpin:held" || ev.Args == nil {
			continue
		}
		if parent, ok := ev.Args["parent"].(float64); ok && spanOf["gc:cond-pins"][parent] {
			held = true
		}
	}
	if !held {
		t.Error("no condpin:held instant is parented to a gc:cond-pins phase span")
	}

	// Nesting: complete events on each managed thread must follow
	// stack discipline (a span either encloses the next or precedes
	// it; partial overlap means the lane stack broke).
	type span struct{ start, end float64 }
	perLane := map[[2]int][]span{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			perLane[[2]int{*ev.PID, *ev.TID}] = append(perLane[[2]int{*ev.PID, *ev.TID}],
				span{*ev.TS, *ev.TS + *ev.Dur})
		}
	}
	const eps = 1e-3 // µs; guards float rounding at shared boundaries
	for lane, spans := range perLane {
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].start != spans[j].start {
				return spans[i].start < spans[j].start
			}
			return spans[i].end > spans[j].end
		})
		var stack []span
		for _, s := range spans {
			for len(stack) > 0 && stack[len(stack)-1].end <= s.start+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && s.end > stack[len(stack)-1].end+eps {
				t.Fatalf("lane %v: span [%f,%f] partially overlaps enclosing [%f,%f]",
					lane, s.start, s.end, stack[len(stack)-1].start, stack[len(stack)-1].end)
			}
			stack = append(stack, s)
		}
	}
}

// TestJoinTraceExport checks the multi-process tracing path: a Join
// with Config.Trace set exports a per-process trace file at close (the
// per-rank input layout cmd/mtrace stitches), and the merge pass
// accepts it — every edge half pairs into a flow.
func TestJoinTraceExport(t *testing.T) {
	const (
		n     = 2
		iters = 8
	)
	path := filepath.Join(t.TempDir(), "rank0.json")
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		os.Remove(path)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close() // free the port for Serve

		serveCh := make(chan error, 1)
		go func() { serveCh <- motor.Serve(addr, n) }()
		time.Sleep(50 * time.Millisecond)

		pingpong := func(r *motor.Rank) error {
			buf, err := r.NewInt32Array(make([]int32, 4))
			if err != nil {
				return err
			}
			peer := 1 - r.ID()
			for i := 0; i < iters; i++ {
				if r.ID() == 0 {
					if err := r.Send(buf, peer, 3); err != nil {
						return err
					}
					if _, err := r.Recv(buf, peer, 3); err != nil {
						return err
					}
				} else {
					if _, err := r.Recv(buf, peer, 3); err != nil {
						return err
					}
					if err := r.Send(buf, peer, 3); err != nil {
						return err
					}
				}
			}
			return r.Barrier()
		}

		bodyErr := make(chan error, n)
		closeErr := make(chan error, n)
		gate := make([]chan struct{}, n)
		for rank := range gate {
			gate[rank] = make(chan struct{})
		}
		for rank := 0; rank < n; rank++ {
			go func(rank int) {
				// Only rank 0 traces: in-process sibling Joins share one
				// session, so one owner exports everything (a real sock
				// world runs one Join per OS process, one file each).
				cfg := motor.Config{}
				if rank == 0 {
					cfg.Trace = path
				}
				r, closer, err := motor.Join(cfg, addr, rank, n)
				if err != nil {
					bodyErr <- err
					<-gate[rank]
					closeErr <- nil
					return
				}
				bodyErr <- pingpong(r)
				<-gate[rank]
				closeErr <- closer()
			}(rank)
		}
		lastErr = nil
		deadline := time.After(15 * time.Second)
		for i := 0; i < n; i++ {
			select {
			case err := <-bodyErr:
				if err != nil && lastErr == nil {
					lastErr = err
				}
			case <-deadline:
				t.Fatal("join world deadlocked")
			}
		}
		// The owner exports at close, and teardown still emits events
		// into the shared session — so every sibling must close fully
		// before rank 0 does.
		for rank := n - 1; rank >= 0; rank-- {
			close(gate[rank])
			select {
			case err := <-closeErr:
				if err != nil && lastErr == nil {
					lastErr = err
				}
			case <-deadline:
				t.Fatal("close deadlocked")
			}
		}
		if lastErr == nil {
			if err := <-serveCh; err != nil {
				lastErr = err
			}
		}
		if lastErr == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("all attempts failed: %v", lastErr)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("Join did not export a trace: %v", err)
	}
	m, err := obs.MergeTraces(raw)
	if err != nil {
		t.Fatalf("merge rejected the Join trace: %v", err)
	}
	// Teardown frames may record only one half (a peer's close lands
	// after the owner exports), so a couple of unmatched halves are
	// expected; the ping-pong payload itself must pair completely.
	if m.Unmatched > n {
		t.Fatalf("unmatched edge halves = %d, want <= %d", m.Unmatched, n)
	}
	if m.Flows < 2*iters {
		t.Fatalf("flow pairs = %d, want >= %d", m.Flows, 2*iters)
	}
}

func names(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
