#!/bin/sh
# GC pause benchmark: the serial collector (§5.2 scavenge + whole-block
# donation, -gcworkers=1) against the modern collector (work-stealing
# parallel mark, pin-aware segregation, nursery recycling, elder
# compaction — docs/GC.md) over the same pinned-transport churn driver
# at a production-sized live heap. Writes the machine-readable report
# to BENCH_gc.json at the repo root.
#
# Usage: scripts/bench_gc.sh [quick]
#   quick  96 MiB live heap for smoke runs; writes BENCH_gc_quick.json
#          so the committed full-grid artifact is never clobbered (the
#          committed BENCH_gc.json is the full ~1 GiB grid and takes
#          a couple of minutes to regenerate)
#
# The committed BENCH_gc.json is the collector pass's acceptance
# artifact: p99_reduction >= 4 (serial p99 gc-pause / modern p99) on
# the ~1 GiB grid. The serial tail is donation-driven: every pinned
# scavenge donates the nursery and grows the arena, which both trips
# the driver's growth-triggered full-heap policy and forces GB-scale
# arena-growth copies; the modern collector segregates pinned
# survivors and recycles the nursery from elder free space, so its
# footprint stays flat (compare blocks_donated/pinned_segregated/
# nurseries_recycled and the arena columns). Absolute pause times
# reflect this machine — check the gomaxprocs protocol field before
# reading the forced-full column on a single-core host. Regenerate
# here when touching the collector, the heap layout, or the pause
# histograms.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_gc.json

flags="-gc -json"
if [ "${1:-}" = quick ]; then
	flags="$flags -quick"
	out=BENCH_gc_quick.json
fi

echo "== gc pause benchmark -> $out"
# shellcheck disable=SC2086
go run ./cmd/benchfig $flags > "$out"
echo "== headline (serial vs modern)"
grep -E '"mode"|"p99_us"|"max_us"|"blocks_donated"|"pinned_segregated"|"nurseries_recycled"|p99_reduction' "$out" || true
