#!/bin/sh
# Interpreter quickening benchmark: compute-bound masm kernels run
# under baseline single-switch dispatch and under the quickened engine
# (pre-decoded wide instructions, fused superinstructions, baked field
# offsets, devirtualized calls — docs/QUICKEN.md). Writes the
# machine-readable report to BENCH_interp.json at the repo root.
#
# Usage: scripts/bench_interp.sh [quick]
#   quick  reduced protocol for smoke runs
#
# The committed BENCH_interp.json is the quickening pass's acceptance
# artifact: best_speedup >= 2.0 on at least one compute-bound kernel,
# with per-kernel checksums cross-checked between engines (a speedup
# from a wrong answer is not a speedup). Regenerate it here when
# touching the interpreter loops, the quickener, or the verifier's
# fact collection.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_interp.json

flags="-interp -json"
if [ "${1:-}" = quick ]; then
	flags="$flags -quick"
fi

echo "== interpreter quickening -> $out"
# shellcheck disable=SC2086
go run ./cmd/benchfig $flags > "$out"
echo "== per-kernel speedups (baseline / quickened wall time)"
grep -E '"name"|"speedup"|best_speedup|mean_speedup' "$out" || true
