#!/bin/sh
# Verify tiers for the Motor repo.
#
#   tier 1 (default): build + full test suite — the repo's gate.
#   tier 2 (-race):   vet + race-enabled tests over the whole tree.
#   tier 3 (bench):   opt-in sweeps -> BENCH_coll.json + BENCH_oo.json
#                     + BENCH_async.json.
#   stress tier:      race-enabled concurrency stress/chaos/progress
#                     tests with GORACE=halt_on_error=1 — the async
#                     progress engine's acceptance gate.
#   vet tier:         go vet + the load-time bytecode verifier over
#                     every masm module under examples/.
#   lint tier:        go vet + the motorlint analyzer suite
#                     (docs/ANALYSIS.md) over the whole module. Fails
#                     on any unsuppressed finding; //lint:ignore
#                     motorlint/<name> <reason> is the escape hatch
#                     and must carry a reason.
#   quicken tier:     every masm module under examples/ run under both
#                     dispatch engines (quickened and -noquicken
#                     baseline) — both must succeed, and the examples
#                     self-check their payloads — plus the differential
#                     property suites, which demand bit-identical
#                     value/stdout/trap behaviour on deterministic
#                     programs. The quickening pass's behavioural gate.
#   obs tier:         the observability gate — stall watchdog, trace
#                     stitching, flight recorder (incl. the <5%
#                     always-on overhead budget), live telemetry
#                     endpoint over real HTTP, and the cross-rank
#                     merge round-trip through cmd/mtrace.
#   gc tier:          the collector gate (docs/GC.md) — the serial vs
#                     modern differential parity suite and cond-pin
#                     race regression under -race, a bounded heap-ops
#                     fuzz smoke, and the quick GC pause benchmark.
#
# Usage: scripts/verify.sh [quick|race|stress|all|bench|vet|lint|quicken|obs|gc]
#   quick   tier 1 with -short (chaos sweeps skipped; < ~30s)
#   race    tier 2 only
#   stress  stress tier only: shared-rank goroutine stress, fault
#           injection, deterministic-harness property/replay tests,
#           registry snapshot races — all under -race
#   all     tier 1 then tier 2 then vet (default)
#   bench   tier 1 quick, then the collective, OO and async-progress
#           benchmark sweeps (scripts/bench_coll.sh, scripts/bench_oo.sh,
#           scripts/bench_async.sh); opt-in because timing-sensitive
#   vet     static checks only: go vet + motor -mode check examples/
#   lint    motorlint tier only: build cmd/motorlint, run the suite
#           over ./..., fail on unignored findings
#   quicken quicken tier only: examples under both engines + the
#           quickening differential tests
#   obs     obs tier only: telemetry smoke, watchdog-on-injected-stall,
#           merge round-trip, flight-recorder budget
#   gc      gc tier only: parity + race regression under -race, fuzz
#           smoke, quick pause benchmark
set -eu
cd "$(dirname "$0")/.."

mode="${1:-all}"

tier1() {
	echo "== tier 1: go build + go test"
	go build ./...
	if [ "$1" = short ]; then
		go test -short ./...
	else
		go test ./...
	fi
}

tier2() {
	echo "== tier 2: go vet + go test -race"
	go vet ./...
	go test -race ./...
}

tier3() {
	echo "== tier 3: collective benchmark sweep"
	sh scripts/bench_coll.sh "${BENCH_COLL_RANKS:-4}"
	echo "== tier 3: OO transport sweep"
	sh scripts/bench_oo.sh
	echo "== tier 3: async progress overlap"
	sh scripts/bench_async.sh
}

# Stress tier: the concurrency acceptance gate for the async progress
# engine. Every test here shares one rank's Comm/Device between many
# goroutines (or drives it from the seeded deterministic harness) and
# must stay race-clean with zero leaked requests; halt_on_error makes
# the first race fatal instead of a warning.
tier_stress() {
	echo "== stress: -race concurrency stress + chaos + progress harness"
	GORACE=halt_on_error=1 go test -race -timeout 600s \
		-run 'Stress|Chaos|Progress|Snapshot' \
		./internal/mp/ ./internal/core/ ./internal/vm/
}

# Static tier: go vet plus the MASM bytecode verifier over every
# example module. A module that stops verifying is a regression in
# either the module or the verifier.
tier_vet() {
	echo "== vet: go vet + bytecode verifier over examples/"
	go vet ./...
	modules=$(find examples -name '*.masm' | sort)
	if [ -n "$modules" ]; then
		# shellcheck disable=SC2086
		go run ./cmd/motor -mode check $modules
	fi
}

# Lint tier: the motorlint analyzer suite (docs/ANALYSIS.md) — the
# repo's own invariants (safepoint rooting, typed transport errors,
# atomic field discipline, tracer nil-gating, lock ranks) checked
# mechanically over the whole module. motorlint exits nonzero on any
# unsuppressed finding, so a clean run means the tree is
# violation-free modulo documented //lint:ignore escapes.
tier_lint() {
	echo "== lint: go vet + motorlint analyzer suite"
	go vet ./...
	lintbin=$(mktemp /tmp/motorlint.XXXXXX)
	go build -o "$lintbin" ./cmd/motorlint
	"$lintbin" ./... || {
		echo "verify: motorlint found unsuppressed violations" >&2
		rm -f "$lintbin"
		exit 1
	}
	rm -f "$lintbin"
}

# Quicken tier: the behavioural gate for the quickening pass
# (docs/QUICKEN.md). Every example module must run to success under
# both engines (the examples self-check payload integrity and exit
# nonzero on corruption; their stdout embeds wall-clock timings, so
# byte comparison is left to the deterministic suites). Then the
# differential property suites — randomized programs + the verifier's
# valid corpus, both engines compared on value/stdout/trap identity.
tier_quicken() {
	echo "== quicken: examples under both dispatch engines"
	modules=$(find examples -name '*.masm' | sort)
	for m in $modules; do
		echo "-- $m (quickened)"
		go run ./cmd/motor -np 2 "$m"
		echo "-- $m (-noquicken baseline)"
		go run ./cmd/motor -np 2 -noquicken "$m"
	done
	echo "== quicken: differential property suites"
	go test -count=1 -run 'TestQuicken|TestFused|TestConvF2I' \
		./internal/vm/ ./internal/vm/bcverify/
}

# Obs tier: the observability acceptance gate (docs/OBSERVABILITY.md).
# Go-level checks first — watchdog fires on a planted stall, 4-rank
# stitch schema + straggler attribution, text/JSON metrics parity,
# flight-recorder duty cycle/dump/overhead budget, per-process Join
# trace export — then two end-to-end smokes over real processes: the
# live telemetry endpoint answered over HTTP while a world runs, and
# the cross-rank merge round-trip through cmd/mtrace in both layouts
# (one in-process multi-rank file; one file per OS process of a sock
# world).
tier_obs() {
	echo "== obs: watchdog + stitching + parity + flight-recorder tests"
	go test -count=1 -run 'TestWatchdog|TestStitch|TestMetricsTextJSONParity|TestFlight|TestCycleFlight|TestTelemetryEndpoint|TestMerge' \
		./internal/obs/ ./internal/mp/
	go test -count=1 -run 'TestFlightRecorderOverhead|TestJoinTraceExport|TestTraceRoundTrip' .

	dir=$(mktemp -d /tmp/motor-obs.XXXXXX)
	trap 'rm -rf "$dir"' EXIT
	go build -o "$dir/mpstat" ./cmd/mpstat
	go build -o "$dir/motor" ./cmd/motor
	go build -o "$dir/mtrace" ./cmd/mtrace

	echo "== obs: live telemetry endpoint smoke"
	tport="${MOTOR_VERIFY_TELEMETRY_PORT:-19716}"
	"$dir/mpstat" -np 2 -size 256 -iters 5000000 \
		-telemetry "127.0.0.1:$tport" >/dev/null &
	tpid=$!
	ok=0
	i=0
	while [ $i -lt 50 ]; do
		if curl -fsS "http://127.0.0.1:$tport/metrics" >"$dir/metrics.txt" 2>/dev/null; then
			ok=1
			break
		fi
		kill -0 "$tpid" 2>/dev/null || break
		sleep 0.2
		i=$((i + 1))
	done
	if [ "$ok" = 1 ]; then
		curl -fsS "http://127.0.0.1:$tport/healthz" >"$dir/healthz.txt"
		curl -fsS "http://127.0.0.1:$tport/metrics?format=json" >"$dir/metrics.json"
	fi
	kill "$tpid" 2>/dev/null || true
	wait "$tpid" 2>/dev/null || true
	[ "$ok" = 1 ] || { echo "verify: telemetry endpoint never answered" >&2; exit 1; }
	grep -q '^motor_' "$dir/metrics.txt" || {
		echo "verify: /metrics has no motor_ counters" >&2
		exit 1
	}
	grep -q '^ok ' "$dir/healthz.txt" || {
		echo "verify: /healthz not ok" >&2
		exit 1
	}
	grep -q '"version"' "$dir/metrics.json" || {
		echo "verify: /metrics?format=json is not a snapshot" >&2
		exit 1
	}

	echo "== obs: merge round-trip (in-process 4-rank collectives)"
	MOTOR_TRACE="$dir/world.json" "$dir/mpstat" -np 4 -coll -iters 40 >/dev/null
	"$dir/mtrace" -o "$dir/merged.json" "$dir/world.json" \
		>"$dir/report.txt" 2>"$dir/mtrace.err"
	grep -q '"traceEvents"' "$dir/merged.json" || {
		echo "verify: merged trace is not a Chrome trace" >&2
		exit 1
	}
	grep -q 'flow pairs' "$dir/mtrace.err" || {
		echo "verify: mtrace reported no flow pairs" >&2
		exit 1
	}
	if grep -q '(0 flow pairs' "$dir/mtrace.err"; then
		echo "verify: merged trace has zero flow pairs" >&2
		exit 1
	fi
	grep -q '^straggler report: [1-9]' "$dir/report.txt" || {
		echo "verify: straggler report aligned no collective instances" >&2
		exit 1
	}
	grep -q '^rank 3:' "$dir/report.txt" || {
		echo "verify: straggler report is missing ranks" >&2
		exit 1
	}

	echo "== obs: merge round-trip (one trace file per OS process)"
	mport="${MOTOR_VERIFY_ROOT_PORT:-19717}"
	"$dir/motor" -mode serve -addr "127.0.0.1:$mport" -np 2 &
	spid=$!
	MOTOR_TRACE="$dir/rank0.json" "$dir/motor" -mode rank \
		-root "127.0.0.1:$mport" -rank 0 -np 2 \
		examples/managed-pingpong/pingpong.masm >/dev/null &
	rpid=$!
	MOTOR_TRACE="$dir/rank1.json" "$dir/motor" -mode rank \
		-root "127.0.0.1:$mport" -rank 1 -np 2 \
		examples/managed-pingpong/pingpong.masm >/dev/null
	wait "$rpid"
	wait "$spid"
	"$dir/mtrace" -q -o "$dir/merged2.json" "$dir/rank0.json" "$dir/rank1.json" \
		2>"$dir/mtrace2.err"
	grep -q '"traceEvents"' "$dir/merged2.json" || {
		echo "verify: multi-process merged trace is not a Chrome trace" >&2
		exit 1
	}
	if grep -q '(0 flow pairs' "$dir/mtrace2.err"; then
		echo "verify: multi-process merge paired no edges" >&2
		exit 1
	fi

	echo "== obs: watchdog fires on an injected stall"
	go test -count=1 -run 'TestWatchdogDetectsStalledRank|TestWatchdogFiresOnStall' \
		./internal/mp/ ./internal/obs/
	rm -rf "$dir"
	trap - EXIT
}

# GC tier: the collector acceptance gate (docs/GC.md). The
# differential parity suite replays identical mutator scripts on the
# serial and modern collectors and demands identical object graphs,
# stats, and cond-pin decisions; the race regression forces a cond-pin
# to complete mid-mark from a parked thread; the fuzz smoke replays
# byte-coded heap-op sequences with invariant checks after every
# collection (short minimize budget so the smoke stays bounded); and
# the quick pause benchmark must keep the serial/modern p99 ordering
# (the committed BENCH_gc.json carries the full-grid >=4x gate).
tier_gc() {
	echo "== gc: differential parity + cond-pin race regression (-race)"
	GORACE=halt_on_error=1 go test -race -timeout 600s -count=1 \
		-run 'TestGCDifferentialParity|TestStressCondPinMidMarkResolution|TestDonationSubHeaderTail' \
		./internal/vm/
	echo "== gc: heap-ops fuzz smoke"
	go test -count=1 -run FuzzHeapOps -fuzz FuzzHeapOps \
		-fuzztime 30s -fuzzminimizetime 5s ./internal/vm/
	echo "== gc: quick pause benchmark"
	sh scripts/bench_gc.sh quick
}

# Trace smoke: a traced mpstat run must produce a loadable Chrome
# trace (exercises the MOTOR_TRACE env path end to end).
smoke_trace() {
	echo "== smoke: MOTOR_TRACE Chrome trace export"
	out=$(mktemp /tmp/motor-trace.XXXXXX)
	MOTOR_TRACE="$out" go run ./cmd/mpstat -np 2 -size 1024 -iters 20 -metrics >/dev/null
	grep -q '"traceEvents"' "$out" || {
		echo "verify: $out is not a Chrome trace" >&2
		rm -f "$out"
		exit 1
	}
	rm -f "$out"
}

case "$mode" in
quick)
	tier1 short
	smoke_trace
	;;
race) tier2 ;;
stress) tier_stress ;;
all)
	tier1 full
	tier2
	tier_vet
	tier_lint
	tier_quicken
	tier_obs
	tier_gc
	smoke_trace
	;;
bench)
	tier1 short
	tier3
	;;
vet) tier_vet ;;
lint) tier_lint ;;
quicken) tier_quicken ;;
obs) tier_obs ;;
gc) tier_gc ;;
*)
	echo "usage: $0 [quick|race|stress|all|bench|vet|lint|quicken|obs|gc]" >&2
	exit 2
	;;
esac
echo "verify: OK ($mode)"
