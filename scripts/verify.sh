#!/bin/sh
# Verify tiers for the Motor repo.
#
#   tier 1 (default): build + full test suite — the repo's gate.
#   tier 2 (-race):   vet + race-enabled tests over the whole tree.
#
# Usage: scripts/verify.sh [quick|race|all]
#   quick  tier 1 with -short (chaos sweeps skipped; < ~30s)
#   race   tier 2 only
#   all    tier 1 then tier 2 (default)
set -eu
cd "$(dirname "$0")/.."

mode="${1:-all}"

tier1() {
	echo "== tier 1: go build + go test"
	go build ./...
	if [ "$1" = short ]; then
		go test -short ./...
	else
		go test ./...
	fi
}

tier2() {
	echo "== tier 2: go vet + go test -race"
	go vet ./...
	go test -race ./...
}

case "$mode" in
quick) tier1 short ;;
race) tier2 ;;
all)
	tier1 full
	tier2
	;;
*)
	echo "usage: $0 [quick|race|all]" >&2
	exit 2
	;;
esac
echo "verify: OK ($mode)"
