#!/bin/sh
# OO transport sweep: the v1 whole-buffer object protocol (8-byte size
# prefix + one contiguous representation + linear visited list) against
# the engine's chunked v2 stream with the type-table cache, over an
# object-count x payload-size grid. Writes the machine-readable report
# to BENCH_oo.json at the repo root.
#
# Usage: scripts/bench_oo.sh [quick]
#   quick  reduced grid/protocol for smoke runs
#
# The committed BENCH_oo.json is the streaming transport's acceptance
# artifact: speedup_vs_v1_at_1mib_plus.min >= 1.25 is the throughput
# criterion, and warm_exchange_table_bytes == 0 (with
# warm_exchange_cache_hits > 0) proves the type-table cache removes
# all table traffic after the first same-shape message. Regenerate it
# here when touching the serializer or the OO transport.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_oo.json

flags="-oo -json"
if [ "${1:-}" = quick ]; then
	flags="$flags -quick"
fi

echo "== OO transport sweep -> $out"
# shellcheck disable=SC2086
go run ./cmd/benchfig $flags > "$out"
echo "== speedups vs v1 at >= 1 MiB payloads"
grep -A 4 speedup_vs_v1_at_1mib_plus "$out" || true
grep warm_exchange "$out" || true
