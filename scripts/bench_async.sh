#!/bin/sh
# Async-progress overlap benchmark: nonblocking rendezvous exchanges
# posted before a duty-cycle compute phase (busy-spin holding the
# execution token, then parked sleep with the token released), waited
# only afterwards. Inline polling pays compute + comm; the background
# progress engine hides the comm inside the parked gaps. Writes the
# machine-readable report to BENCH_async.json at the repo root.
#
# Usage: scripts/bench_async.sh [quick]
#   quick  reduced protocol for smoke runs
#
# The committed BENCH_async.json is the progress engine's acceptance
# artifact: overlap_ratio >= 1.3 (inline wall time / async wall time)
# with progress_passes > 0 proving the engine, not the callers' Waits,
# completed the requests. Regenerate it here when touching the
# progress engine, the ADI, or the polling-wait discipline.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_async.json

flags="-async -json"
if [ "${1:-}" = quick ]; then
	flags="$flags -quick"
fi

echo "== async progress overlap -> $out"
# shellcheck disable=SC2086
go run ./cmd/benchfig $flags > "$out"
echo "== overlap ratio (inline / async wall time)"
grep -E "overlap_ratio|inline_us|async_us|progress_passes" "$out" || true
