#!/bin/sh
# Collective algorithm size sweep: measures the seed-shaped baselines
# (reducebcast / gatherbcast / binomial) against the size-aware
# algorithms (recursive doubling, ring, pipelined) and the auto
# selector, then writes the machine-readable report to BENCH_coll.json
# at the repo root.
#
# Usage: scripts/bench_coll.sh [ranks] [quick]
#   ranks  world size for the sweep (default 4)
#   quick  reduced protocol for smoke runs
#
# The committed BENCH_coll.json documents the large-message win of the
# ring algorithms on the machine that produced it; regenerate it here
# when touching the collective layer. The speedup_vs_seed_at_max_size
# section is the acceptance summary: values > 1.0 mean the new
# algorithms beat the seed at the largest swept size.
set -eu
cd "$(dirname "$0")/.."

ranks="${1:-4}"
out=BENCH_coll.json

flags="-coll -collranks $ranks -json"
if [ "${2:-}" = quick ]; then
	flags="$flags -quick"
fi

echo "== collective sweep: $ranks ranks -> $out"
# shellcheck disable=SC2086
go run ./cmd/benchfig $flags > "$out"
echo "== speedups vs seed baselines (largest size)"
grep -A 4 speedup_vs_seed_at_max_size "$out" || true
