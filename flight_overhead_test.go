package motor_test

import (
	"testing"
	"time"

	"motor"
)

// measurePingPong runs a 2-rank shm ping-pong under cfg and returns
// rank 0's wall time for the timed iterations.
func measurePingPong(t *testing.T, cfg motor.Config, warmup, iters int) time.Duration {
	t.Helper()
	var elapsed time.Duration
	run(t, cfg, func(r *motor.Rank) error {
		buf, err := r.NewUint8Array(make([]byte, 256))
		if err != nil {
			return err
		}
		release := r.Protect(&buf)
		defer release()
		peer := 1 - r.ID()
		step := func() error {
			if r.ID() == 0 {
				if err := r.Send(buf, peer, 5); err != nil {
					return err
				}
				_, err := r.Recv(buf, peer, 5)
				return err
			}
			if _, err := r.Recv(buf, peer, 5); err != nil {
				return err
			}
			return r.Send(buf, peer, 5)
		}
		for i := 0; i < warmup; i++ {
			if err := step(); err != nil {
				return err
			}
		}
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if err := step(); err != nil {
				return err
			}
		}
		if r.ID() == 0 {
			elapsed = time.Since(t0)
		}
		return nil
	})
	return elapsed
}

// TestFlightRecorderOverhead guards the always-on budget: the flight
// recorder (duty-cycle armed windows over a small ring) must not make
// the untraced hot path meaningfully slower. Each trial spans several
// duty periods so armed windows are inside the measurement and the
// figure is the true average, not a window-free best case. The budget
// is <5%; the assertion is looser so scheduler noise on shared CI
// machines cannot flake it — a real regression (arming permanently,
// losing the duty cycle) costs far more than the limit.
func TestFlightRecorderOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const (
		warmup = 500
		iters  = 20000 // ~50ms: several 20ms duty periods per trial
		trials = 3
	)
	base := motor.Config{Ranks: 2, NoFlight: true}
	flight := motor.Config{Ranks: 2}

	// One throwaway pair to warm both paths' code, then interleaved
	// trials so slow machine drift (thermal, frequency scaling) biases
	// neither side.
	measurePingPong(t, base, warmup, warmup)
	measurePingPong(t, flight, warmup, warmup)
	maxDur := time.Duration(1<<63 - 1)
	baseBest, flightBest := maxDur, maxDur
	for i := 0; i < trials; i++ {
		if d := measurePingPong(t, base, warmup, iters); d < baseBest {
			baseBest = d
		}
		if d := measurePingPong(t, flight, warmup, iters); d < flightBest {
			flightBest = d
		}
	}

	t.Logf("ping-pong best of %d: baseline %v, flight recorder %v (%+.1f%%)",
		trials, baseBest, flightBest,
		100*(float64(flightBest)-float64(baseBest))/float64(baseBest))
	if limit := baseBest*5/4 + 2*time.Millisecond; flightBest > limit {
		t.Fatalf("flight recorder overhead too high: baseline %v, flight %v (limit %v)",
			baseBest, flightBest, limit)
	}
}
