package motor_test

// End-to-end tests for load-time verification through the public API:
// Load rejects bad modules with located diagnostics, VerifyOff is an
// escape hatch, and verified managed programs run entirely on the
// checked-free transfer path (TransferChecksDyn stays zero while the
// debug assertion re-checks every skipped test).

import (
	"strings"
	"sync/atomic"
	"testing"

	"motor"
	"motor/internal/core"
	"motor/internal/vm/bcverify"
)

const badModule = `
.method main (0) void
  .locals 1
  ldloc 0
  pop
  ret
.end`

func TestLoadRejectsUnverifiable(t *testing.T) {
	run(t, motor.Config{Ranks: 2}, func(r *motor.Rank) error {
		_, err := r.Load(badModule)
		if err == nil {
			t.Error("Load accepted an unverifiable module")
			return nil
		}
		var ve *bcverify.Error
		if !errorsAs(err, &ve) {
			t.Errorf("Load error %v (%T) is not *bcverify.Error", err, err)
			return nil
		}
		if ve.Method != "main" || ve.Line != 4 {
			t.Errorf("diagnostic = method %q line %d, want main line 4 (%v)", ve.Method, ve.Line, ve)
		}
		if !strings.Contains(ve.Msg, "before initialization") {
			t.Errorf("unexpected diagnostic: %v", ve)
		}
		return nil
	})
}

func TestLoadVerifyOff(t *testing.T) {
	run(t, motor.Config{Ranks: 2, Verify: motor.VerifyOff}, func(r *motor.Rank) error {
		if _, err := r.Load(badModule); err != nil {
			t.Errorf("VerifyOff Load failed: %v", err)
		}
		if vs := r.VerifyStats(); vs.Methods != 0 {
			t.Errorf("VerifyOff still verified %d methods", vs.Methods)
		}
		return nil
	})
}

// managedExchange ping-pongs an int32 array between two ranks through
// the managed mp.send/mp.recv FCalls.
const managedExchange = `
.method main (0) int32
  .locals 2
  ldc.i4 256
  newarr int32
  stloc 0
  intern mp.rank
  brtrue receiver
  ldloc 0  ldc.i4 1  ldc.i4 9  intern mp.send
  ldloc 0  ldc.i4 1  ldc.i4 9  intern mp.recv  stloc 1
  ldc.i4 0
  ret.val
receiver:
  ldloc 0  ldc.i4 0  ldc.i4 9  intern mp.recv  stloc 1
  ldloc 0  ldc.i4 0  ldc.i4 9  intern mp.send
  ldc.i4 0
  ret.val
.end`

func TestVerifiedPathSkipsDynamicChecks(t *testing.T) {
	core.DebugAssertTransferable = true
	defer func() { core.DebugAssertTransferable = false }()

	var dyn, fast atomic.Uint64
	run(t, motor.Config{Ranks: 2}, func(r *motor.Rank) error {
		main, err := r.Load(managedExchange)
		if err != nil {
			return err
		}
		if _, err := r.Call(main); err != nil {
			return err
		}
		ms := r.MPStats()
		dyn.Add(ms.TransferChecksDyn)
		fast.Add(ms.TransferChecksFast)
		return nil
	})
	if dyn.Load() != 0 {
		t.Errorf("verified workload performed %d dynamic transfer checks, want 0", dyn.Load())
	}
	if fast.Load() == 0 {
		t.Error("verified workload recorded no fast-path transfers")
	}
}

// TestUnverifiedPathKeepsDynamicChecks is the control: with VerifyOff
// the same workload must fall back to the dynamic §4.2.1 check.
func TestUnverifiedPathKeepsDynamicChecks(t *testing.T) {
	var dyn, fast atomic.Uint64
	run(t, motor.Config{Ranks: 2, Verify: motor.VerifyOff}, func(r *motor.Rank) error {
		main, err := r.Load(managedExchange)
		if err != nil {
			return err
		}
		if _, err := r.Call(main); err != nil {
			return err
		}
		ms := r.MPStats()
		dyn.Add(ms.TransferChecksDyn)
		fast.Add(ms.TransferChecksFast)
		return nil
	})
	if fast.Load() != 0 {
		t.Errorf("unverified workload took %d fast-path transfers, want 0", fast.Load())
	}
	if dyn.Load() == 0 {
		t.Error("unverified workload recorded no dynamic transfer checks")
	}
}

// TestGoAPIStaysDynamic: transfers driven through the Go facade have
// no managed frame on the stack, so they must use the dynamic check
// even in a verifying world.
func TestGoAPIStaysDynamic(t *testing.T) {
	var dyn atomic.Uint64
	run(t, motor.Config{Ranks: 2}, func(r *motor.Rank) error {
		buf, err := r.NewUint8Array(make([]byte, 64))
		if err != nil {
			return err
		}
		release := r.Protect(&buf)
		defer release()
		peer := 1 - r.ID()
		if r.ID() == 0 {
			if err := r.Send(buf, peer, 1); err != nil {
				return err
			}
		} else {
			if _, err := r.Recv(buf, peer, 1); err != nil {
				return err
			}
		}
		dyn.Add(r.MPStats().TransferChecksDyn)
		return nil
	})
	if dyn.Load() == 0 {
		t.Error("Go-API transfers recorded no dynamic checks")
	}
}

func errorsAs(err error, target **bcverify.Error) bool {
	for err != nil {
		if e, ok := err.(*bcverify.Error); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestLoadRejectionUnregistersModule: Load assembles before verifying,
// so a rejected module's classes, globals and (unverified) methods
// were already on the VM — Load must roll them back, leaving nothing a
// later module could call by index and freeing the names for a
// corrected retry.
func TestLoadRejectionUnregistersModule(t *testing.T) {
	const bad = `
.class Payload
  .field int64 v
.end
.global state
.method helper (0) void
  ret
.end
.method main (0) void
  .locals 1
  ldloc 0
  pop
  ret
.end`
	const good = `
.class Payload
  .field int64 v
.end
.global state
.method helper (0) void
  ret
.end
.method main (0) int32
  ldc.i4 7
  ret.val
.end`
	run(t, motor.Config{Ranks: 2}, func(r *motor.Rank) error {
		nm, nt := r.VM().NumMethods(), r.VM().NumTypes()
		if _, err := r.Load(bad); err == nil {
			t.Error("Load accepted an unverifiable module")
			return nil
		}
		if got := r.VM().NumMethods(); got != nm {
			t.Errorf("rejected Load left %d methods registered, want %d", got, nm)
		}
		if got := r.VM().NumTypes(); got != nt {
			t.Errorf("rejected Load left %d types registered, want %d", got, nt)
		}
		main, err := r.Load(good)
		if err != nil {
			t.Errorf("corrected module failed to load: %v", err)
			return nil
		}
		res, err := r.Call(main)
		if err != nil {
			return err
		}
		if res.Int() != 7 {
			t.Errorf("corrected main returned %d, want 7", res.Int())
		}
		return nil
	})
}

// superclassJoin sends an object whose static type after a branch
// join is the reference-free superclass Plain, while the runtime
// value is the reference-bearing subclass Linked. The verifier must
// NOT prove this transferable (the join is only an upper bound); the
// dynamic check must then reject the send at run time.
const superclassJoin = `
.class Plain
  .field int64 v
.end
.class Linked extends Plain
  .field object next
.end
.method main (0) void
  .locals 1
  ldc.i4 1
  brtrue linked
  newobj Plain
  stloc 0
  br send
linked:
  newobj Linked
  stloc 0
send:
  ldloc 0
  ldc.i4 0
  ldc.i4 3
  intern mp.send
  ret
.end`

func TestSuperclassJoinKeepsDynamicCheck(t *testing.T) {
	core.DebugAssertTransferable = true
	defer func() { core.DebugAssertTransferable = false }()

	var dyn atomic.Uint64
	run(t, motor.Config{Ranks: 2}, func(r *motor.Rank) error {
		main, err := r.Load(superclassJoin)
		if err != nil {
			return err
		}
		_, err = r.Call(main)
		if err == nil {
			t.Error("sending a reference-bearing subclass through a superclass-typed join succeeded")
		} else if !strings.Contains(err.Error(), "object contains references") {
			t.Errorf("unexpected error from joined send: %v", err)
		}
		dyn.Add(r.MPStats().TransferChecksDyn)
		return nil
	})
	if dyn.Load() == 0 {
		t.Error("join-typed send skipped the dynamic integrity check")
	}
}
