// Command motorlint runs the Motor analyzer suite (rootbeforederef,
// typederr, atomicfield, tracerguard, lockorder) over the module.
//
// Standalone (whole program, cross-package facts, the mode verify.sh
// uses):
//
//	motorlint [-json] [packages ...]     # default ./...
//
// As a vet tool (per compilation unit, driven by cmd/go):
//
//	go vet -vettool=$(pwd)/bin/motorlint ./...
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 operational error.
// Findings covered by a `//lint:ignore motorlint/<name> reason`
// directive are suppressed but still visible in -json output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"motor/internal/analysis/framework"
	"motor/internal/analysis/motorlint"
)

const version = "motorlint-1.0"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("motorlint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON (all findings, suppressed included)")
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	vetV := fs.String("V", "", "version handshake for cmd/go (-V=full)")
	vetFlags := fs.Bool("flags", false, "flag-description handshake for cmd/go")
	fix := fs.Bool("c", false, "ignored; accepted for go vet compatibility")
	_ = fs.Parse(args)
	_ = fix

	// cmd/go handshakes: `tool -V=full` must print "<name> version ..."
	// (it feeds the build cache key), `tool -flags` the supported flags.
	if *vetV != "" {
		name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
		fmt.Printf("%s version %s\n", name, version)
		return 0
	}
	if *vetFlags {
		fmt.Println("[]")
		return 0
	}
	if *list {
		for _, a := range motorlint.Suite() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	// go vet hands us a single *.cfg argument per compilation unit.
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0], *jsonOut)
	}
	return runStandalone(rest, *jsonOut)
}

func runStandalone(patterns []string, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := framework.ModuleRoot(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "motorlint: %v\n", err)
		return 2
	}
	prog, err := framework.Load(root, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "motorlint: %v\n", err)
		return 2
	}
	res, err := framework.RunAnalyzers(prog, motorlint.Suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "motorlint: %v\n", err)
		return 2
	}
	return report(res, jsonOut)
}

// report prints the result and returns the exit status.
func report(res *framework.Result, jsonOut bool) int {
	if jsonOut {
		out := struct {
			Version      string                 `json:"version"`
			Findings     []framework.Diagnostic `json:"findings"`
			BadIgnores   []framework.Diagnostic `json:"badIgnores,omitempty"`
			Unsuppressed int                    `json:"unsuppressed"`
		}{version, res.Diagnostics, res.BadIgnores, res.Unsuppressed()}
		if out.Findings == nil {
			out.Findings = []framework.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "motorlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			if d.Suppressed {
				continue
			}
			fmt.Println(d.String())
		}
		for _, d := range res.BadIgnores {
			fmt.Println(d.String())
		}
	}
	if res.Unsuppressed() > 0 {
		return 1
	}
	return 0
}
