package main

// go vet -vettool support. cmd/go drives the tool once per
// compilation unit: it writes a JSON config describing the unit (its
// sources, the import map, and the export-data file of every
// dependency) and invokes `motorlint <unit>.cfg`. We type-check the
// unit against that export data, run the suite, and print findings.
//
// The vet path analyzes one package per process, so whole-program
// facts (atomicfield's cross-package atomic/plain matching, lock
// annotations on another package's fields) only span the current
// unit; the standalone mode wired into scripts/verify.sh is the
// authoritative whole-program run. Per-unit checking still catches
// every same-package violation, which in this repo is all of them.
//
// Test files are exempt from the suite: tests assert on quiesced
// stats, construct raw errors to inject faults, and drive tracers
// they own, so the production-code invariants don't apply. This also
// matches the standalone loader, which feeds analyzers go list's
// GoFiles (no _test.go).

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"motor/internal/analysis/framework"
	"motor/internal/analysis/motorlint"
)

// vetConfig mirrors the fields of cmd/go's vet config we consume.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgPath string, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "motorlint: reading vet config: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "motorlint: parsing vet config %s: %v\n", cfgPath, err)
		return 2
	}

	// cmd/go requires the facts file to exist for caching, even though
	// this suite exchanges no unit-to-unit facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "motorlint: writing %s: %v\n", cfg.VetxOutput, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	files := make([]string, 0, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0 // external test package: nothing in scope
	}

	fset := token.NewFileSet()
	imp := newUnitImporter(fset, &cfg)
	pi, err := framework.CheckFiles(fset, imp, cfg.ImportPath, files, nil)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "motorlint: %v\n", err)
		return 2
	}
	prog := &framework.Program{Fset: fset, Pkgs: []*framework.PackageInfo{pi}}
	res, err := framework.RunAnalyzers(prog, motorlint.Suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "motorlint: %v\n", err)
		return 2
	}
	if jsonOut {
		return report(res, true)
	}
	// Plain mode: findings go to stderr in file:line:col form; a
	// nonzero exit tells go vet the unit has findings.
	for _, d := range res.Diagnostics {
		if d.Suppressed {
			continue
		}
		fmt.Fprintln(os.Stderr, d.String())
	}
	for _, d := range res.BadIgnores {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if res.Unsuppressed() > 0 {
		return 2
	}
	return 0
}

// unitImporter resolves imports strictly from the vet config's
// PackageFile table (export data prebuilt by cmd/go).
type unitImporter struct {
	cfg *vetConfig
	imp types.ImporterFrom
}

func newUnitImporter(fset *token.FileSet, cfg *vetConfig) *unitImporter {
	u := &unitImporter{cfg: cfg}
	u.imp = importer.ForCompiler(fset, "gc", u.lookup).(types.ImporterFrom)
	return u
}

func (u *unitImporter) lookup(path string) (io.ReadCloser, error) {
	if mapped, ok := u.cfg.ImportMap[path]; ok {
		path = mapped
	}
	file, ok := u.cfg.PackageFile[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q in vet config", path)
	}
	return os.Open(file)
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	return u.imp.ImportFrom(path, u.cfg.Dir, 0)
}
