// Command mtrace stitches per-rank Motor trace files into one
// cross-rank Perfetto/Chrome trace. Each input is a file written by
// -trace/MOTOR_TRACE (one per OS process of a sock world, or one per
// run). The merge pass aligns the ranks' clocks using the message
// edges the channel layer stamped, joins every edge:send with its
// edge:recv as a Chrome flow event, and prints a straggler report:
// which rank arrives last at the collectives, and by how much.
//
// Usage:
//
//	mtrace -o merged.json rank0.json rank1.json rank2.json rank3.json
//	mtrace -report-only rank*.json
package main

import (
	"flag"
	"fmt"
	"os"

	"motor/internal/obs"
)

func main() {
	out := flag.String("o", "merged.json", "output file for the merged trace")
	reportOnly := flag.Bool("report-only", false, "print the straggler report without writing a merged trace")
	quiet := flag.Bool("q", false, "suppress the straggler report on stdout")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mtrace [-o merged.json] trace.json...")
		os.Exit(2)
	}

	inputs := make([][]byte, 0, flag.NArg())
	for _, path := range flag.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtrace:", err)
			os.Exit(1)
		}
		inputs = append(inputs, b)
	}
	m, err := obs.MergeTraces(inputs...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtrace:", err)
		os.Exit(1)
	}

	if !*reportOnly {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtrace:", err)
			os.Exit(1)
		}
		werr := m.Export(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "mtrace:", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mtrace: wrote %s (%d flow pairs, %d unmatched edges)\n",
			*out, m.Flows, m.Unmatched)
	}
	if !*quiet {
		if err := obs.WriteStragglerReport(os.Stdout, m.Report); err != nil {
			fmt.Fprintln(os.Stderr, "mtrace:", err)
			os.Exit(1)
		}
	}
}
