// Command motor executes a masm program on a Motor world: every rank
// runs its own virtual machine with the System.MP message-passing
// FCalls bound, realizing the paper's compile-once-run-anywhere
// deployment story — the same program text runs unchanged on any host
// and transport.
//
// Usage (single process, N in-process ranks):
//
//	motor [-np N] [-channel shm|sock] [-policy motor|alwayspin] program.masm
//
// Usage (multi-process over TCP, one OS process per rank):
//
//	motor -mode serve -addr :7777 -np 4            # rendezvous service
//	motor -mode rank -root HOST:7777 -rank I -np 4 program.masm
//
// Usage (static verification only, no world, exit 1 on rejection):
//
//	motor -mode check program.masm [more.masm ...]
//
// Modules are statically verified at load (docs/VERIFIER.md); pass
// -noverify to run unchecked bytecode.
//
// The program's main method may return void or int32; a non-zero
// int32 becomes the exit code.
package main

import (
	"flag"
	"fmt"
	"os"

	"motor"
	"motor/internal/core"
	"motor/internal/vm"
	"motor/internal/vm/bcverify"
)

// check verifies each module file without building a world: it
// assembles against a bare VM with the System.MP surface stubbed in
// and runs the full verifier. Returns the process exit code.
func check(files []string) int {
	exit := 0
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "motor:", err)
			return 1
		}
		v := vm.New(vm.Config{})
		core.RegisterVerifyStubs(v)
		mod, err := v.AssembleModule(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			exit = 1
			continue
		}
		stats, err := bcverify.VerifyModule(v, mod.Methods, bcverify.Options{Sigs: core.Signatures()})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			exit = 1
			continue
		}
		fmt.Printf("%s: OK (%d methods, %d instructions, %d transport-verified)\n",
			path, stats.Methods, stats.Insts, stats.Transportable)
	}
	return exit
}

func main() {
	np := flag.Int("np", 2, "number of ranks")
	channel := flag.String("channel", "shm", "transport: shm or sock (local mode)")
	policy := flag.String("policy", "motor", "pinning policy: motor or alwayspin")
	gcstats := flag.Bool("gcstats", false, "print per-rank GC and MP stats on exit")
	mode := flag.String("mode", "local", "local, serve (rendezvous host), rank (join a multi-process world), or check (verify only)")
	addr := flag.String("addr", "127.0.0.1:7777", "serve mode: rendezvous listen address")
	root := flag.String("root", "127.0.0.1:7777", "rank mode: rendezvous address to join")
	rankID := flag.Int("rank", 0, "rank mode: this process's world rank")
	noverify := flag.Bool("noverify", false, "skip load-time bytecode verification")
	noquicken := flag.Bool("noquicken", false, "skip load-time quickening (baseline interpreter dispatch)")
	gcworkers := flag.Int("gcworkers", 0, "GC mark workers per rank: 1 = legacy serial collector, >1 = modern parallel collector, 0 = MOTOR_GCWORKERS or NumCPU")
	telemetry := flag.String("telemetry", "", "serve /metrics, /healthz and /debug/pprof on this address while running (also set by MOTOR_TELEMETRY)")
	flag.Parse()

	if *mode == "check" {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: motor -mode check program.masm [more.masm ...]")
			os.Exit(2)
		}
		os.Exit(check(flag.Args()))
	}

	cfg := motor.Config{Ranks: *np, Channel: *channel, Telemetry: *telemetry, GCWorkers: *gcworkers}
	if *noverify {
		cfg.Verify = motor.VerifyOff
	}
	if *noquicken {
		cfg.Quicken = motor.QuickenOff
	}
	switch *policy {
	case "motor":
		cfg.Policy = motor.PolicyMotor
	case "alwayspin":
		cfg.Policy = motor.PolicyAlwaysPin
	default:
		fmt.Fprintf(os.Stderr, "motor: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	if *mode == "serve" {
		if err := motor.Serve(*addr, *np); err != nil {
			fmt.Fprintln(os.Stderr, "motor:", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: motor [-np N] [-channel shm|sock] program.masm")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "motor:", err)
		os.Exit(1)
	}

	exit := 0
	runRank := func(r *motor.Rank) error {
		main, err := r.Load(string(src))
		if err != nil {
			return err
		}
		if main == nil {
			return fmt.Errorf("rank %d: program has no main method", r.ID())
		}
		v, err := r.Call(main)
		if err != nil {
			return fmt.Errorf("rank %d: %w", r.ID(), err)
		}
		if main.HasRet && v.Int() != 0 {
			exit = int(v.Int())
		}
		if *gcstats {
			gs, ms := r.GCStats(), r.MPStats()
			fmt.Fprintf(os.Stderr,
				"rank %d: scavenges=%d fullGCs=%d promoted=%dB pins=%d condPins=%d | ops=%d oo=%d/%d serialized=%dB\n",
				r.ID(), gs.Scavenges, gs.FullGCs, gs.BytesPromoted, gs.Pins, gs.CondPinsAdded,
				ms.Ops, ms.OOSends, ms.OORecvs, ms.SerializedBytes)
		}
		return nil
	}

	switch *mode {
	case "local":
		err = motor.Run(cfg, runRank)
	case "rank":
		var r *motor.Rank
		var closer func() error
		r, closer, err = motor.Join(cfg, *root, *rankID, *np)
		if err == nil {
			err = runRank(r)
			if cerr := closer(); cerr != nil && err == nil {
				err = cerr
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "motor: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "motor:", err)
		os.Exit(1)
	}
	os.Exit(exit)
}
