// Command benchfig regenerates the tables behind the paper's
// evaluation figures (§8) and the DESIGN.md ablations.
//
//	benchfig -fig 9            # Figure 9: ping-pong, regular MPI operations
//	benchfig -fig 9 -stats     # + the §8 derived statistics
//	benchfig -fig 10           # Figure 10: object-tree transport
//	benchfig -ablate pin       # A1: pinning policy vs always-pin
//	benchfig -ablate visited   # A2: linear vs hashed visited structure
//	benchfig -ablate eager     # A5: eager/rendezvous threshold sweep
//	benchfig -ablate policy    # §7.4 decision counters under GC pressure
//	benchfig -coll             # collective algorithm size sweep
//	benchfig -coll -collranks 8 -json   # machine-readable (BENCH_coll.json)
//	benchfig -oo               # OO transport sweep: v1 buffer vs chunked stream
//	benchfig -oo -json         # machine-readable (BENCH_oo.json)
//	benchfig -interp           # interpreter quickening: baseline vs quickened dispatch
//	benchfig -interp -json     # machine-readable (BENCH_interp.json)
//	benchfig -gc               # GC pauses at a production live heap: serial vs modern collector
//	benchfig -gc -json         # machine-readable (BENCH_gc.json)
//	benchfig -quick            # smaller protocol for smoke runs
//
// Absolute numbers reflect this machine, not the paper's 2006
// Pentium-M testbed; the reproduction target is the SHAPE: ordering
// of the series, relative gaps, and failure points (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"motor/internal/bench"
	"motor/internal/mp"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate: 9 or 10")
	ablate := flag.String("ablate", "", "ablation to run: pin or visited")
	quick := flag.Bool("quick", false, "reduced protocol for smoke runs")
	stats := flag.Bool("stats", false, "print the derived statistics (figure 9)")
	channel := flag.String("channel", "shm", "transport: shm or sock")
	coll := flag.Bool("coll", false, "run the collective algorithm size sweep")
	collRanks := flag.Int("collranks", 4, "rank count for -coll")
	oo := flag.Bool("oo", false, "run the OO transport sweep (v1 buffer vs chunked stream)")
	async := flag.Bool("async", false, "run the async-progress overlap benchmark (inline vs background engine)")
	interp := flag.Bool("interp", false, "run the interpreter quickening benchmark (baseline vs quickened dispatch)")
	gcbench := flag.Bool("gc", false, "run the GC pause benchmark (serial vs modern collector at a production live heap)")
	jsonOut := flag.Bool("json", false, "emit -coll/-oo/-async/-interp results as JSON")
	flag.Parse()

	proto := bench.PaperProtocol()
	if *quick {
		proto = bench.Quick()
	}
	switch *channel {
	case "shm":
		proto.Channel = mp.ChannelShm
	case "sock":
		proto.Channel = mp.ChannelSock
	default:
		fmt.Fprintf(os.Stderr, "benchfig: unknown channel %q\n", *channel)
		os.Exit(2)
	}

	switch {
	case *interp:
		cfg := bench.InterpGrid()
		if *quick {
			cfg = bench.InterpQuickGrid()
		}
		rep, err := bench.RunInterpBench(cfg)
		fatal(err)
		if *jsonOut {
			out, err := bench.MarshalInterpReport(rep)
			fatal(err)
			fmt.Println(string(out))
			return
		}
		fmt.Print(bench.FormatInterpTable(rep))
	case *gcbench:
		cfg := bench.GCGrid()
		if *quick {
			cfg = bench.GCQuickGrid()
		}
		rep, err := bench.RunGCBench(cfg)
		fatal(err)
		if *jsonOut {
			out, err := bench.MarshalGCReport(rep)
			fatal(err)
			fmt.Println(string(out))
			return
		}
		fmt.Print(bench.FormatGCTable(rep))
	case *async:
		cfg := bench.AsyncGrid()
		if *quick {
			cfg = bench.AsyncQuickGrid()
		}
		rep, err := bench.RunAsyncOverlap(cfg)
		fatal(err)
		if *jsonOut {
			out, err := bench.MarshalAsyncReport(rep)
			fatal(err)
			fmt.Println(string(out))
			return
		}
		fmt.Print(bench.FormatAsyncTable(rep))
	case *oo:
		ooProto := bench.OOProtocol()
		ooProto.Channel = proto.Channel
		grid := bench.OOGrid()
		if *quick {
			ooProto.Repeats, ooProto.Timed = 1, 3
			grid = bench.OOQuickGrid()
		}
		rep, err := bench.RunOOSweep(ooProto, grid)
		fatal(err)
		if *jsonOut {
			out, err := bench.MarshalOOReport(rep)
			fatal(err)
			fmt.Println(string(out))
			return
		}
		fmt.Print(bench.FormatOOTable(rep))
	case *coll:
		series, err := bench.CollSweep(proto, *collRanks, bench.CollSizes())
		fatal(err)
		if *jsonOut {
			rep := bench.BuildCollReport(proto, *collRanks, series)
			out, err := bench.MarshalCollReport(rep)
			fatal(err)
			fmt.Println(string(out))
			return
		}
		fmt.Print(bench.FormatTable(
			fmt.Sprintf("Collective algorithm sweep, %d ranks (microseconds per iteration)", *collRanks),
			"bytes", series))
	case *fig == 9:
		series, err := bench.Fig9(proto, bench.Fig9Sizes())
		fatal(err)
		fmt.Print(bench.FormatTable(
			"Figure 9 — ping-pong, regular MPI operations (microseconds per iteration)",
			"bytes", series))
		if *stats {
			st := bench.ComputeFig9Stats(series)
			fmt.Printf("\nMotor vs Indiana SSCLI (paper: 16%% peak, 8%% mean, 3%% mean >64KiB):\n")
			fmt.Printf("  peak advantage:        %.1f%%\n", st.PeakPct)
			fmt.Printf("  mean advantage:        %.1f%%\n", st.MeanPct)
			fmt.Printf("  mean advantage >64KiB: %.1f%%\n", st.MeanBigPct)
		}
		if v := bench.VerifyOrdering(series, 64); v != "" {
			fmt.Printf("\nordering check: VIOLATIONS: %s\n", v)
		} else {
			fmt.Printf("\nordering check: C++ <= Motor <= Java holds\n")
		}
	case *fig == 10:
		series, err := bench.Fig10(proto, bench.Fig10Counts())
		fatal(err)
		fmt.Print(bench.FormatTable(
			"Figure 10 — ping-pong, object-tree transport (microseconds per iteration)",
			"objects", series))
	case *ablate == "pin":
		series, err := bench.AblationPinPolicy(proto, bench.Fig9Sizes())
		fatal(err)
		fmt.Print(bench.FormatTable(
			"Ablation A1 — pinning policy vs always-pin (microseconds per iteration)",
			"bytes", series))
	case *ablate == "eager":
		series, err := bench.AblationEagerThreshold(proto, bench.Fig9Sizes(), []int{1 << 10, 8 << 10, 64 << 10, 512 << 10})
		fatal(err)
		fmt.Print(bench.FormatTable(
			"Ablation A5 — eager/rendezvous threshold sweep, native transport (microseconds per iteration)",
			"bytes", series))
	case *ablate == "policy":
		rows, err := bench.RunPolicyBehaviour(500, 4096)
		fatal(err)
		fmt.Println("Pinning-policy behaviour (decision counters, both ranks summed; paper §7.4)")
		fmt.Print(bench.FormatPolicyBehaviour(rows))
	case *ablate == "visited":
		series, err := bench.AblationVisited(proto, bench.Fig10Counts())
		fatal(err)
		fmt.Print(bench.FormatTable(
			"Ablation A2 — linear vs hashed visited structure (microseconds per iteration)",
			"objects", series))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}
