// Command mpstat runs a configurable exchange workload on a Motor
// world and reports detailed runtime statistics per rank: collector
// activity, the pinning-policy decision counters of the paper's §7.4,
// transport protocol counters, and OO serialization traffic. It is
// the observability surface for understanding how the pinning policy
// behaves on a given workload.
//
//	mpstat -np 2 -size 4096 -iters 500 [-policy motor|alwayspin] [-oo]
//	mpstat -channel sock -faultplan 'delay:dial:delay=2ms' -faultseed 7
//	mpstat -trace /tmp/motor.json -metrics   # Perfetto trace + flat metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"motor"
	"motor/internal/obs"
	"motor/internal/pal"
	"motor/internal/pal/fault"
)

// probeMasm is a tiny managed module loaded (never executed) on every
// rank so each mpstat run exercises the load-time verifier end to end:
// it interns an MPI transfer on a simple array, which the static
// transferability pass must prove integrity-safe.
const probeMasm = `
; verifier probe: loaded for verification only, never called.
.method probe (0) void
  ldc.i4 1
  newarr int32
  ldc.i4 0
  ldc.i4 0
  intern mp.send
  ret
.end
`

func main() {
	np := flag.Int("np", 2, "ranks")
	size := flag.Int("size", 4096, "message bytes (regular ops) / payload bytes (OO)")
	iters := flag.Int("iters", 500, "ping-pong iterations")
	policy := flag.String("policy", "motor", "pinning policy: motor or alwayspin")
	oo := flag.Bool("oo", false, "use the extended object-oriented operations on a linked list")
	coll := flag.Bool("coll", false, "run a collective workload (allreduce+allgather+bcast per iteration) instead of ping-pong")
	collAlgo := flag.String("collalgo", "", "force collective algorithms, e.g. 'allreduce=ring,bcast=binomial' (MOTOR_COLL_ALGO format)")
	elements := flag.Int("elements", 16, "linked-list elements for -oo")
	channel := flag.String("channel", "shm", "transport: shm or sock")
	faultPlan := flag.String("faultplan", "", "fault plan spec, e.g. 'reset:write:nth=3,delay:dial:delay=2ms' (sock only; see docs/FAULTS.md)")
	faultSeed := flag.Int64("faultseed", 1, "seed for -faultplan probabilistic rules")
	trace := flag.String("trace", "", "write a Chrome trace_event JSON file of the run (also set by MOTOR_TRACE)")
	metrics := flag.Bool("metrics", false, "print the unified flat metrics snapshot per rank (all subsystems)")
	noverify := flag.Bool("noverify", false, "skip load-time bytecode verification of the probe module")
	noquicken := flag.Bool("noquicken", false, "skip load-time quickening of the probe module")
	telemetry := flag.String("telemetry", "", "serve /metrics, /healthz and /debug/pprof on this address while running (also set by MOTOR_TELEMETRY)")
	gcworkers := flag.Int("gcworkers", 0, "GC mark workers per rank: 1 = legacy serial collector, >1 = modern parallel collector, 0 = MOTOR_GCWORKERS or NumCPU")
	flag.Parse()

	cfg := motor.Config{Ranks: *np, Channel: *channel, Trace: *trace, Telemetry: *telemetry, GCWorkers: *gcworkers}
	if *noverify {
		cfg.Verify = motor.VerifyOff
	}
	if *noquicken {
		cfg.Quicken = motor.QuickenOff
	}
	if *policy == "alwayspin" {
		cfg.Policy = motor.PolicyAlwaysPin
	}
	var faultPlat *fault.Platform
	if *faultPlan != "" {
		plan, err := fault.ParsePlan(*faultSeed, *faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpstat:", err)
			os.Exit(2)
		}
		if *channel != "sock" {
			fmt.Fprintln(os.Stderr, "mpstat: -faultplan requires -channel sock")
			os.Exit(2)
		}
		faultPlat = fault.New(pal.Default, plan)
		cfg.Platform = faultPlat
	}

	var mu sync.Mutex
	err := motor.Run(cfg, func(r *motor.Rank) error {
		// Load the managed probe so every run exercises the load-time
		// verifier (unless -noverify); rank 0 reports what it checked.
		if _, err := r.Load(probeMasm); err != nil {
			return fmt.Errorf("rank %d: probe module: %w", r.ID(), err)
		}
		if r.ID() == 0 {
			vs := r.VerifyStats()
			qs := r.QuickenStats()
			switch {
			case vs.Methods > 0:
				fmt.Printf("verifier: %d methods, %d instructions, %d transport-verified in %dus\n",
					vs.Methods, vs.Insts, vs.Transportable, vs.ElapsedNs/1000)
			case qs.VerifyCacheHits > 0:
				// A sibling rank verified the identical module first; this
				// rank applied the cached verdict.
				fmt.Printf("verifier: %d module loads served from the verdict cache\n",
					qs.VerifyCacheHits)
			default:
				fmt.Println("verifier: off")
			}
			if qs.Methods > 0 || qs.Skipped > 0 {
				fmt.Printf("quicken: %d methods (%d->%d insts, %d fused, %d devirt), cache %d hit/%d miss in %dus\n",
					qs.Methods, qs.InstsIn, qs.InstsOut, qs.Fused, qs.Devirted,
					qs.VerifyCacheHits, qs.VerifyCacheMisses, qs.ElapsedNs/1000)
			} else {
				fmt.Println("quicken: off")
			}
		}
		peer := (r.ID() + 1) % r.Size()
		if !*coll && r.Size()%2 != 0 {
			return fmt.Errorf("mpstat needs an even rank count")
		}
		if *collAlgo != "" {
			if err := r.SetCollAlgo(*collAlgo); err != nil {
				return err
			}
		}
		initiator := r.ID()%2 == 0
		var work func() error
		if *coll {
			elems := *size / 8
			if elems < 1 {
				elems = 1
			}
			send, err := r.NewFloat64Array(make([]float64, elems))
			if err != nil {
				return err
			}
			recv, err := r.NewFloat64Array(make([]float64, elems))
			if err != nil {
				return err
			}
			gathered, err := r.NewFloat64Array(make([]float64, elems*r.Size()))
			if err != nil {
				return err
			}
			release := r.Protect(&send, &recv, &gathered)
			defer release()
			work = func() error {
				if err := r.Allreduce(send, recv, motor.OpSum); err != nil {
					return err
				}
				if err := r.Allgather(send, gathered); err != nil {
					return err
				}
				return r.Bcast(recv, 0)
			}
		} else if *oo {
			cell, err := r.DeclareClass("Cell")
			if err != nil {
				return err
			}
			u8 := r.ArrayType(motor.Uint8, nil, 1)
			if err := r.CompleteClass(cell, nil, []motor.FieldSpec{
				{Name: "data", Kind: motor.Object, Type: u8, Transportable: true},
				{Name: "next", Kind: motor.Object, Type: cell, Transportable: true},
			}); err != nil {
				return err
			}
			var head motor.Ref
			release := r.Protect(&head)
			defer release()
			per := *size / *elements
			if per < 1 {
				per = 1
			}
			for i := 0; i < *elements; i++ {
				node, err := r.New(cell)
				if err != nil {
					return err
				}
				hold := r.Protect(&node)
				arr, err := r.NewUint8Array(make([]byte, per))
				if err != nil {
					return err
				}
				r.SetField(node, cell, "data", uint64(arr))
				r.SetField(node, cell, "next", uint64(head))
				hold()
				head = node
			}
			work = func() error {
				if initiator {
					if err := r.OSend(head, peer, 1); err != nil {
						return err
					}
					_, _, err := r.ORecv(peer, 1)
					return err
				}
				got, _, err := r.ORecv(peer, 1)
				if err != nil {
					return err
				}
				hold := r.Protect(&got)
				defer hold()
				return r.OSend(got, peer, 1)
			}
		} else {
			buf, err := r.NewUint8Array(make([]byte, *size))
			if err != nil {
				return err
			}
			release := r.Protect(&buf)
			defer release()
			work = func() error {
				if initiator {
					if err := r.Send(buf, peer, 1); err != nil {
						return err
					}
					_, err := r.Recv(buf, peer, 1)
					return err
				}
				if _, err := r.Recv(buf, peer, 1); err != nil {
					return err
				}
				return r.Send(buf, peer, 1)
			}
		}
		t0 := r.WTime()
		for i := 0; i < *iters; i++ {
			if err := work(); err != nil {
				return fmt.Errorf("rank %d iter %d: %w", r.ID(), i, err)
			}
		}
		elapsed := r.WTime() - t0

		gs, ms := r.GCStats(), r.MPStats()
		mu.Lock()
		defer mu.Unlock()
		fmt.Printf("rank %d: %.1f us/iter\n", r.ID(), elapsed/float64(*iters)*1e6)
		fmt.Printf("  gc: scavenges=%d fullGCs=%d promoted=%dB swept=%dB donatedBlocks=%d pause=%dus max=%dus\n",
			gs.Scavenges, gs.FullGCs, gs.BytesPromoted, gs.BytesSwept, gs.BlocksDonated,
			gs.PauseNs/1000, gs.MaxPauseNs/1000)
		fmt.Printf("  gc2: segregated=%d pinnedBlockBytes=%dB parallelMarks=%d compactions=%d compacted=%dB\n",
			gs.PinnedSegregated, gs.PinnedBlockBytes, gs.ParallelMarks, gs.Compactions, gs.BytesCompacted)
		fmt.Printf("  pins: explicit=%d/%d cond(add/held/drop)=%d/%d/%d\n",
			gs.Pins, gs.Unpins, gs.CondPinsAdded, gs.CondPinsHeld, gs.CondPinsDropped)
		fmt.Printf("  policy: skippedElder=%d avoidedFast=%d deferred=%d eager=%d condReq=%d\n",
			ms.PinSkippedElder, ms.PinAvoidedFast, ms.PinDeferred, ms.PinEager, ms.CondPins)
		fmt.Printf("  ops: regular=%d oo=%d/%d serialized=%dB buffers(reuse/alloc/collected)=%d/%d/%d\n",
			ms.Ops, ms.OOSends, ms.OORecvs, ms.SerializedBytes,
			ms.BufferReuses, ms.BufferAllocs, ms.BuffersCollected)
		ds := r.DeviceStats()
		fmt.Printf("  transport: errors(op/dev)=%d/%d peersLost=%d cancelled=%d\n",
			ms.TransportErrors, ds.TransportErrors, ds.PeersLost, ds.Cancelled)
		cs := r.CollStats()
		fmt.Printf("  coll: ops=%d allreduce(rb/rd/ring)=%d/%d/%d allgather(gb/ring)=%d/%d bcast(bin/pipe)=%d/%d bytes=%dB maxInFlight=%d\n",
			cs.Ops, cs.AllreduceReduceBcast, cs.AllreduceRecDbl, cs.AllreduceRing,
			cs.AllgatherGatherBcast, cs.AllgatherRing,
			cs.BcastBinomial, cs.BcastPipelined, cs.BytesMoved, cs.MaxSegsInFlight)
		if ts, ok := r.TransportStats(); ok {
			fmt.Printf("  wire: frames(out/in)=%d/%d bytes(out/in)=%dB/%dB ringCompactions=%d\n",
				ts.FramesSent, ts.FramesRecvd, ts.BytesSent, ts.BytesRecvd, ts.RingCompactions)
			fmt.Printf("  sock: dialRetries=%d bootstrapRetries=%d poisoned=%d retired=%d\n",
				ts.DialRetries, ts.BootstrapRetries, ts.PoisonedConns, ts.PeersRetired)
		}
		if *metrics {
			fmt.Printf("-- metrics rank %d --\n", r.ID())
			if err := obs.WriteMetricsText(os.Stdout, r.StatsSnapshot()); err != nil {
				return err
			}
		}
		return nil
	})
	if faultPlat != nil {
		fs := faultPlat.Stats()
		fmt.Printf("faults: injected=%d refuse=%d reset=%d delay=%d short=%d drop=%d partition=%d (events=%d)\n",
			fs.Total,
			fs.Injected[fault.KindRefuse], fs.Injected[fault.KindReset],
			fs.Injected[fault.KindDelay], fs.Injected[fault.KindShort],
			fs.Injected[fault.KindDrop], fs.Injected[fault.KindPartition],
			len(faultPlat.Events()))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpstat:", err)
		os.Exit(1)
	}
}
