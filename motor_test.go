package motor_test

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"motor"
)

// run wraps motor.Run with a deadlock timeout.
func run(t *testing.T, cfg motor.Config, body func(r *motor.Rank) error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- motor.Run(cfg, body) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("world deadlocked")
	}
}

func TestFacadePingPong(t *testing.T) {
	for _, channel := range []string{"shm", "sock"} {
		channel := channel
		t.Run(channel, func(t *testing.T) {
			run(t, motor.Config{Ranks: 2, Channel: channel}, func(r *motor.Rank) error {
				if r.ID() == 0 {
					msg, err := r.NewInt32Array([]int32{10, 20, 30})
					if err != nil {
						return err
					}
					if err := r.Send(msg, 1, 7); err != nil {
						return err
					}
					buf, _ := r.NewInt32Array(make([]int32, 3))
					st, err := r.Recv(buf, 1, 8)
					if err != nil {
						return err
					}
					if st.Source != 1 || st.Count != 12 {
						return fmt.Errorf("status %+v", st)
					}
					got := r.Int32s(buf)
					if got[0] != 11 || got[1] != 21 || got[2] != 31 {
						return fmt.Errorf("reply %v", got)
					}
					return nil
				}
				buf, _ := r.NewInt32Array(make([]int32, 3))
				if _, err := r.Recv(buf, 0, 7); err != nil {
					return err
				}
				vals := r.Int32s(buf)
				for i := range vals {
					vals[i]++
				}
				reply, _ := r.NewInt32Array(vals)
				return r.Send(reply, 0, 8)
			})
		})
	}
}

func TestFacadeCollectives(t *testing.T) {
	run(t, motor.Config{Ranks: 4}, func(r *motor.Rank) error {
		if err := r.Barrier(); err != nil {
			return err
		}
		// Scatter 16 float64s from rank 3, compute, gather back.
		var send motor.Ref
		if r.ID() == 3 {
			vals := make([]float64, 16)
			for i := range vals {
				vals[i] = float64(i)
			}
			send, _ = r.NewFloat64Array(vals)
		}
		part, _ := r.NewArray(motor.Float64, 4)
		if err := r.Scatter(send, part, 3); err != nil {
			return err
		}
		got := r.Float64s(part)
		for i, v := range got {
			if v != float64(r.ID()*4+i) {
				return fmt.Errorf("scatter[%d]=%g", i, v)
			}
			got[i] = v * 2
		}
		doubled, _ := r.NewFloat64Array(got)
		var all motor.Ref
		if r.ID() == 3 {
			all, _ = r.NewArray(motor.Float64, 16)
		}
		if err := r.Gather(doubled, all, 3); err != nil {
			return err
		}
		if r.ID() == 3 {
			for i, v := range r.Float64s(all) {
				if v != float64(i*2) {
					return fmt.Errorf("gather[%d]=%g", i, v)
				}
			}
		}
		return nil
	})
}

func TestFacadeObjectTree(t *testing.T) {
	run(t, motor.Config{Ranks: 2}, func(r *motor.Rank) error {
		// The paper's Fig. 5 LinkedArray.
		la, err := r.DeclareClass("LinkedArray")
		if err != nil {
			return err
		}
		i32arr := r.ArrayType(motor.Int32, nil, 1)
		if err := r.CompleteClass(la, nil, []motor.FieldSpec{
			{Name: "array", Kind: motor.Object, Type: i32arr, Transportable: true},
			{Name: "next", Kind: motor.Object, Type: la, Transportable: true},
			{Name: "next2", Kind: motor.Object, Type: la},
		}); err != nil {
			return err
		}
		if r.ID() == 0 {
			head, _ := r.New(la)
			release := r.Protect(&head)
			arr, _ := r.NewInt32Array([]int32{1, 2, 3})
			r.SetField(head, la, "array", uint64(arr))
			nxt, _ := r.New(la)
			r.SetField(head, la, "next", uint64(nxt))
			r.SetField(head, la, "next2", uint64(head)) // must not travel
			release()
			return r.OSend(head, 1, 0)
		}
		got, st, err := r.ORecv(0, 0)
		if err != nil {
			return err
		}
		if st.Source != 0 {
			return fmt.Errorf("source %d", st.Source)
		}
		arrBits, _ := r.GetField(got, la, "array")
		if motor.Ref(arrBits) == motor.NullRef {
			return errors.New("array lost")
		}
		if got := r.Int32s(motor.Ref(arrBits)); got[2] != 3 {
			return fmt.Errorf("payload %v", got)
		}
		nextBits, _ := r.GetField(got, la, "next")
		if motor.Ref(nextBits) == motor.NullRef {
			return errors.New("transportable next lost")
		}
		next2Bits, _ := r.GetField(got, la, "next2")
		if motor.Ref(next2Bits) != motor.NullRef {
			return errors.New("non-transportable next2 travelled")
		}
		return nil
	})
}

func TestFacadeOScatterGather(t *testing.T) {
	run(t, motor.Config{Ranks: 3}, func(r *motor.Rank) error {
		cell, err := r.DefineClass("Item",
			motor.FieldSpec{Name: "v", Kind: motor.Int32},
		)
		if err != nil {
			return err
		}
		var arr motor.Ref
		if r.ID() == 0 {
			arr, _ = r.NewObjectArray(cell, 7)
			release := r.Protect(&arr)
			for i := 0; i < 7; i++ {
				it, _ := r.New(cell)
				r.SetField(it, cell, "v", uint64(uint32(int32(i*3))))
				r.VM().Heap.SetElemRef(arr, i, it)
			}
			release()
		}
		sub, err := r.OScatter(arr, 0)
		if err != nil {
			return err
		}
		// Parts: 3,2,2.
		wantLens := []int{3, 2, 2}
		if r.Len(sub) != wantLens[r.ID()] {
			return fmt.Errorf("rank %d sub len %d", r.ID(), r.Len(sub))
		}
		whole, err := r.OGather(sub, 0)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			if r.Len(whole) != 7 {
				return fmt.Errorf("gathered %d", r.Len(whole))
			}
			for i := 0; i < 7; i++ {
				it := r.VM().Heap.GetElemRef(whole, i)
				bits, _ := r.GetField(it, cell, "v")
				if int32(uint32(bits)) != int32(i*3) {
					return fmt.Errorf("item %d = %d", i, int32(uint32(bits)))
				}
			}
		}
		return nil
	})
}

func TestFacadeManagedProgram(t *testing.T) {
	var out bytes.Buffer
	run(t, motor.Config{Ranks: 2, Stdout: &out}, func(r *motor.Rank) error {
		main, err := r.Load(`
.method main (0) int32
  intern mp.rank
  intern mp.size
  mul
  ret.val
.end`)
		if err != nil {
			return err
		}
		v, err := r.Call(main)
		if err != nil {
			return err
		}
		if v.Int() != int64(r.ID()*2) {
			return fmt.Errorf("rank %d: got %d", r.ID(), v.Int())
		}
		return nil
	})
}

func TestFacadeMatrix(t *testing.T) {
	run(t, motor.Config{Ranks: 2}, func(r *motor.Rank) error {
		m, err := r.NewMatrix(motor.Float64, 4, 5)
		if err != nil {
			return err
		}
		if r.Len(m) != 20 {
			return fmt.Errorf("len %d", r.Len(m))
		}
		// True multidimensional arrays are single objects: directly
		// transportable by the regular operations (paper §3).
		if r.ID() == 0 {
			for i := 0; i < 20; i++ {
				r.SetElem(m, i, motorF64Bits(float64(i)/2))
			}
			return r.Send(m, 1, 0)
		}
		if _, err := r.Recv(m, 0, 0); err != nil {
			return err
		}
		if got := motorF64From(r.GetElem(m, 19)); got != 9.5 {
			return fmt.Errorf("elem 19 = %g", got)
		}
		return nil
	})
}

// Local copies of the float helpers (the facade exposes raw bits).
func motorF64Bits(f float64) uint64 { return motor.BitsFromFloat64(f) }
func motorF64From(b uint64) float64 { return motor.Float64FromBits(b) }

func TestFacadeBadChannel(t *testing.T) {
	err := motor.Run(motor.Config{Ranks: 2, Channel: "carrier-pigeon"}, func(r *motor.Rank) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "unknown channel") {
		t.Errorf("err %v", err)
	}
}

func TestFacadeStats(t *testing.T) {
	run(t, motor.Config{Ranks: 2}, func(r *motor.Rank) error {
		msg, _ := r.NewUint8Array(make([]byte, 64))
		if r.ID() == 0 {
			if err := r.Send(msg, 1, 0); err != nil {
				return err
			}
		} else {
			if _, err := r.Recv(msg, 0, 0); err != nil {
				return err
			}
		}
		r.GC(true)
		if r.GCStats().Scavenges == 0 {
			return errors.New("no collections recorded")
		}
		if r.MPStats().Ops == 0 {
			return errors.New("no ops recorded")
		}
		return nil
	})
}

func TestFacadeSpawn(t *testing.T) {
	run(t, motor.Config{Ranks: 2}, func(r *motor.Rank) error {
		merged, err := r.Spawn(2, func(child *motor.Rank, mc motor.CommID) error {
			// Children have their own world spanning just the children.
			if child.Size() != 2 {
				return fmt.Errorf("child world size %d", child.Size())
			}
			// Report our merged rank to merged rank 0.
			myRank, err := child.CommRank(mc)
			if err != nil {
				return err
			}
			msg, _ := child.NewInt32Array([]int32{int32(myRank * 7)})
			return child.SendOn(mc, msg, 0, 11)
		})
		if err != nil {
			return err
		}
		size, err := r.CommSize(merged)
		if err != nil || size != 4 {
			return fmt.Errorf("merged size %d err %v", size, err)
		}
		if r.ID() == 0 {
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				buf, _ := r.NewInt32Array(make([]int32, 1))
				st, err := r.RecvOn(merged, buf, motor.AnySource, 11)
				if err != nil {
					return err
				}
				if r.Int32s(buf)[0] != int32(st.Source*7) {
					return fmt.Errorf("child %d reported %d", st.Source, r.Int32s(buf)[0])
				}
				got[st.Source] = true
			}
			if !got[2] || !got[3] {
				return fmt.Errorf("children %v", got)
			}
		}
		return nil
	})
}

func TestFacadeCommRoutinesAndReduce(t *testing.T) {
	run(t, motor.Config{Ranks: 4}, func(r *motor.Rank) error {
		// Allreduce over the world.
		send, _ := r.NewFloat64Array([]float64{float64(r.ID() + 1)})
		recv, _ := r.NewFloat64Array(make([]float64, 1))
		if err := r.Allreduce(send, recv, motor.OpProd); err != nil {
			return err
		}
		if got := r.Float64s(recv)[0]; got != 24 { // 1*2*3*4
			return fmt.Errorf("allreduce prod = %g", got)
		}
		// Split by parity; reduce max within each group.
		sub, err := r.Split(motor.WorldComm, r.ID()%2, 0)
		if err != nil {
			return err
		}
		isend, _ := r.NewInt32Array([]int32{int32(r.ID() * 10)})
		var irecv motor.Ref
		subRank, _ := r.CommRank(sub)
		if subRank == 0 {
			irecv, _ = r.NewInt32Array(make([]int32, 1))
		}
		if err := r.ReduceOn(sub, isend, irecv, motor.OpMax, 0); err != nil {
			return err
		}
		if subRank == 0 {
			want := int32((r.ID()%2 + 2) * 10) // larger world rank of the parity group
			if got := r.Int32s(irecv)[0]; got != want {
				return fmt.Errorf("group max %d, want %d", got, want)
			}
		}
		return r.CommFree(sub)
	})
}

func TestFacadeAllgatherSendrecv(t *testing.T) {
	run(t, motor.Config{Ranks: 4}, func(r *motor.Rank) error {
		// Allgather.
		mine, _ := r.NewFloat64Array([]float64{float64(r.ID() * 2)})
		all, _ := r.NewArray(motor.Float64, 4)
		if err := r.Allgather(mine, all); err != nil {
			return err
		}
		for i, v := range r.Float64s(all) {
			if v != float64(i*2) {
				return fmt.Errorf("allgather[%d]=%g", i, v)
			}
		}
		// Sendrecv ring shift: everyone simultaneously.
		right := (r.ID() + 1) % r.Size()
		left := (r.ID() + r.Size() - 1) % r.Size()
		out, _ := r.NewInt32Array([]int32{int32(r.ID() + 100)})
		in, _ := r.NewInt32Array(make([]int32, 1))
		st, err := r.Sendrecv(out, right, 5, in, left, 5)
		if err != nil {
			return err
		}
		if st.Source != left {
			return fmt.Errorf("sendrecv source %d, want %d", st.Source, left)
		}
		if got := r.Int32s(in)[0]; got != int32(left+100) {
			return fmt.Errorf("sendrecv got %d", got)
		}
		return nil
	})
}

func TestFacadeServeJoinMultiProcess(t *testing.T) {
	// Three "processes" (goroutines) joining through the public
	// rendezvous API — the cmd/motor -mode serve / -mode rank path.
	// The reserve-and-release port trick can race with other
	// processes, so the whole attempt retries on failure.
	const n = 3
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close() // free the port for Serve

		serveCh := make(chan error, 1)
		go func() { serveCh <- motor.Serve(addr, n) }()
		time.Sleep(50 * time.Millisecond)

		errc := make(chan error, n)
		for rank := 0; rank < n; rank++ {
			go func(rank int) {
				r, closer, err := motor.Join(motor.Config{}, addr, rank, n)
				if err != nil {
					errc <- err
					return
				}
				defer closer()
				send, _ := r.NewInt32Array([]int32{int32(rank + 1)})
				recv, _ := r.NewInt32Array(make([]int32, 1))
				if err := r.Allreduce(send, recv, motor.OpSum); err != nil {
					errc <- err
					return
				}
				if got := r.Int32s(recv)[0]; got != 6 {
					errc <- fmt.Errorf("rank %d sum %d", rank, got)
					return
				}
				errc <- nil
			}(rank)
		}
		lastErr = nil
		deadline := time.After(15 * time.Second)
		for i := 0; i < n; i++ {
			select {
			case err := <-errc:
				if err != nil && lastErr == nil {
					lastErr = err
				}
			case <-deadline:
				t.Fatal("join world deadlocked")
			}
		}
		if lastErr == nil {
			if err := <-serveCh; err != nil {
				lastErr = err
			}
		}
		if lastErr == nil {
			return
		}
		// The failed Serve goroutine may still hold the port; give the
		// OS a beat and retry on a fresh port.
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("all attempts failed: %v", lastErr)
}
