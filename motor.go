// Package motor is a reproduction of "Motor: A Virtual Machine for
// High Performance Computing" (Goscinski & Abramson, HPDC 2006): a
// managed virtual machine with a high-performance message-passing
// library integrated directly into the runtime, rather than wrapped
// behind a JNI / P/Invoke boundary.
//
// The package is the public facade over the full system:
//
//   - a per-rank virtual machine (moving two-generation GC, strongly
//     typed object model, bytecode interpreter, masm text assembler);
//   - an MPICH2-style message-passing core (ADI/CH3 device over
//     pluggable shm / sock channels);
//   - the Motor integration: MPI operations with object-model
//     integrity checks, the paper's pinning policy (generation test,
//     deferred pins, conditional pin requests resolved at GC mark
//     time), and the extended object-oriented operations built on a
//     custom serializer with a split representation.
//
// The five-minute tour:
//
//	cfg := motor.Config{Ranks: 2}
//	err := motor.Run(cfg, func(r *motor.Rank) error {
//	    if r.ID() == 0 {
//	        msg, _ := r.NewInt32Array([]int32{1, 2, 3})
//	        return r.Send(msg, 1, 0)
//	    }
//	    buf, _ := r.NewInt32Array(make([]int32, 3))
//	    _, err := r.Recv(buf, 0, 0)
//	    fmt.Println(r.Int32s(buf))
//	    return err
//	})
package motor

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"motor/internal/core"
	"motor/internal/mp"
	"motor/internal/mp/adi"
	"motor/internal/mp/channel"
	"motor/internal/obs"
	"motor/internal/pal"
	"motor/internal/serial"
	"motor/internal/vm"
)

// Re-exported fundamental types. Aliases keep the public API
// self-contained while the implementation lives in internal packages.
type (
	// Ref is a managed object reference on a rank's heap.
	Ref = vm.Ref
	// Kind is a primitive field/element kind.
	Kind = vm.Kind
	// FieldSpec declares one field of a managed class.
	FieldSpec = vm.FieldSpec
	// MethodTable describes a managed type.
	MethodTable = vm.MethodTable
	// Status describes a completed receive.
	Status = mp.Status
	// Value is an interpreter value (for calling masm methods).
	Value = vm.Value
	// PinPolicy selects the transport pinning policy.
	PinPolicy = core.PinPolicy
	// VisitedMode selects the serializer's visited-object structure.
	VisitedMode = serial.VisitedMode
)

// NullRef is the managed null reference.
const NullRef = vm.NullRef

// Field kinds.
const (
	Bool    = vm.KindBool
	Int8    = vm.KindInt8
	Uint8   = vm.KindUint8
	Int16   = vm.KindInt16
	Uint16  = vm.KindUint16
	Char    = vm.KindChar
	Int32   = vm.KindInt32
	Uint32  = vm.KindUint32
	Int64   = vm.KindInt64
	Uint64  = vm.KindUint64
	Float32 = vm.KindFloat32
	Float64 = vm.KindFloat64
	Object  = vm.KindRef
)

// Receive wildcards.
const (
	AnySource = mp.AnySource
	AnyTag    = mp.AnyTag
)

// Pinning policies (see the paper's §4.3/§7.4 and DESIGN.md).
const (
	// PolicyMotor is the paper's pinning policy.
	PolicyMotor = core.PolicyMotor
	// PolicyAlwaysPin pins eagerly per operation (wrapper-style).
	PolicyAlwaysPin = core.PolicyAlwaysPin
)

// Serializer visited-structure modes.
const (
	// VisitedLinear is the paper's linear visited list (degrades at
	// large object counts, Figure 10).
	VisitedLinear = serial.VisitedLinear
	// VisitedMap is the constant-time structure the paper names as
	// future work.
	VisitedMap = serial.VisitedMap
)

// VerifyMode controls load-time bytecode verification.
type VerifyMode uint8

// Verification modes. The zero value verifies, so embedders opt out
// explicitly (cmd/motor and cmd/mpstat expose -noverify).
const (
	// VerifyOn statically verifies every module at Load: stack-type
	// abstract interpretation plus the static transferability pass
	// (docs/VERIFIER.md). Rejected modules fail Load with a
	// *bcverify.Error naming method, instruction and source line.
	VerifyOn VerifyMode = iota
	// VerifyOff loads modules unchecked; safety then rests on the
	// interpreter's traps and the engine's dynamic integrity checks.
	VerifyOff
)

// QuickenMode controls load-time quickening of verified bytecode.
type QuickenMode uint8

// Quickening modes. The zero value quickens (when verification is
// also on), so embedders opt out explicitly (cmd/motor and cmd/mpstat
// expose -noquicken; the MOTOR_QUICKEN environment variable set to
// "0"/"off"/"no" disables it globally).
const (
	// QuickenOn rewrites every verified method at Load into the
	// quickened internal form: type-specialized opcodes, fused
	// superinstructions, direct-bound and inline-cached virtual calls
	// (docs/QUICKEN.md). Requires VerifyOn — quickening consumes the
	// verifier's type facts and never runs on unverified code.
	QuickenOn QuickenMode = iota
	// QuickenOff leaves loaded methods on the baseline single-switch
	// interpreter. Observable behaviour is identical by construction;
	// this exists as a performance fallback and for differential
	// testing.
	QuickenOff
)

// Config describes a Motor world.
type Config struct {
	// Ranks is the number of processes (default 2).
	Ranks int
	// Channel selects the transport: "shm" (default) or "sock".
	Channel string
	// Policy selects the pinning policy (default PolicyMotor).
	Policy PinPolicy
	// Visited selects the serializer structure (default VisitedLinear,
	// as in the paper).
	Visited VisitedMode
	// YoungSize / ArenaMax size each rank's heap (defaults 1 MiB /
	// 256 MiB).
	YoungSize uint32
	ArenaMax  uint32
	// GCWorkers selects each rank's collector: 1 is the exact-legacy
	// serial collector (§5.2), >1 the modern collector (parallel
	// mark, pin-aware promotion, elder compaction) with that many
	// mark workers. 0 resolves the MOTOR_GCWORKERS environment
	// variable, then defaults to NumCPU clamped to [2,8]. See
	// docs/GC.md.
	GCWorkers int
	// EagerMax is the transport's eager/rendezvous threshold in
	// bytes (default 64 KiB).
	EagerMax int
	// Stdout receives managed console output (default os.Stdout).
	Stdout io.Writer
	// Verify controls load-time bytecode verification (default
	// VerifyOn).
	Verify VerifyMode
	// Quicken controls load-time quickening of verified methods
	// (default QuickenOn; inert under VerifyOff). The MOTOR_QUICKEN
	// environment variable ("0"/"off"/"no" disables) overrides an
	// unset field.
	Quicken QuickenMode
	// Platform substitutes a pal.Platform for the sock transport
	// (default: the host platform). Plugging in a fault.Platform here
	// subjects the whole world to a seeded fault plan (see
	// docs/FAULTS.md).
	Platform pal.Platform
	// Trace names a file to receive a Chrome trace_event JSON trace
	// (about:tracing / Perfetto) of the whole run: op-lifecycle spans,
	// pin decisions, ADI requests, channel frames, GC phases and
	// collective steps. Empty disables tracing unless the MOTOR_TRACE
	// environment variable names a file. See docs/OBSERVABILITY.md.
	Trace string
	// AsyncProgress runs a background progress engine per rank: posted
	// operations complete while guest code computes, and multiple VM
	// threads (Go) may share the rank. Off by default (inline polling
	// only); the MOTOR_PROGRESS environment variable ("1"/"async"
	// enables, "0"/"inline" disables) overrides an unset field. See
	// docs/PROGRESS.md.
	AsyncProgress bool
	// Telemetry, when set to a listen address (":9700", "127.0.0.1:0"),
	// serves live observability over HTTP while the world runs:
	// /metrics (the unified registry as OpenMetrics text, or JSON with
	// ?format=json), /healthz (liveness plus in-flight waits), and the
	// stock /debug/pprof handlers. Empty disables the endpoint unless
	// the MOTOR_TELEMETRY environment variable names an address.
	Telemetry string
	// WatchdogDeadline is the stall watchdog's threshold: a rank stuck
	// in one polling-wait or collective longer than this is diagnosed
	// on stderr (op, peer, device state, last GC, progress liveness)
	// and the flight recorder is dumped. Zero means the default (60s,
	// or the MOTOR_WATCHDOG environment variable: a Go duration, or
	// "off"/"0" to disable); negative disables the watchdog.
	WatchdogDeadline time.Duration
	// NoFlight disables the always-on flight recorder (a small
	// duty-cycle-armed trace ring that runs even without Trace and is
	// dumped on guest traps, transport failures and watchdog fires).
	// MOTOR_FLIGHT=0 also disables it. A full Trace session displaces
	// the flight recorder for its duration regardless.
	NoFlight bool
}

func (c *Config) fill() {
	if c.Ranks == 0 {
		c.Ranks = 2
	}
	if c.Channel == "" {
		c.Channel = "shm"
	}
	if !c.AsyncProgress {
		switch os.Getenv("MOTOR_PROGRESS") {
		case "1", "async", "on":
			c.AsyncProgress = true
		}
	}
	if c.Quicken == QuickenOn {
		switch os.Getenv("MOTOR_QUICKEN") {
		case "0", "off", "no":
			c.Quicken = QuickenOff
		}
	}
	if c.Telemetry == "" {
		c.Telemetry = os.Getenv("MOTOR_TELEMETRY")
	}
	if c.WatchdogDeadline == 0 {
		switch s := os.Getenv("MOTOR_WATCHDOG"); s {
		case "":
		case "0", "off", "no":
			c.WatchdogDeadline = -1
		default:
			if d, err := time.ParseDuration(s); err == nil && d > 0 {
				c.WatchdogDeadline = d
			}
		}
	}
	if !c.NoFlight {
		switch os.Getenv("MOTOR_FLIGHT") {
		case "0", "off", "no":
			c.NoFlight = true
		}
	}
}

// obsSession is the per-Run (or per-Join) observability state: the
// flight recorder (unless a full trace session owns the process), the
// stall watchdog, and the telemetry endpoint.
type obsSession struct {
	flight     *obs.Tracer
	flightStop func() // ends the recorder's duty-cycle arming
	watchdog   *obs.Watchdog
	telemetry  *obs.Telemetry
}

// startObs brings up the always-on observability for a filled config.
// reg is registered with each rank's stats later; it may be shared.
func startObs(cfg *Config, fullTrace bool, reg *obs.Registry) (*obsSession, error) {
	s := &obsSession{}
	if !fullTrace && !cfg.NoFlight {
		if s.flight = obs.StartFlight(); s.flight != nil {
			// Duty-cycle arming keeps the recorder inside the <5%
			// always-on budget; out-of-window event sites pay the
			// tracing-disabled cost.
			s.flightStop = obs.CycleFlight(s.flight, 0, 0)
		}
	}
	if cfg.WatchdogDeadline >= 0 {
		s.watchdog = obs.StartWatchdog(obs.WatchdogConfig{Deadline: cfg.WatchdogDeadline})
	}
	if cfg.Telemetry != "" {
		t, err := obs.ServeTelemetry(cfg.Telemetry, reg)
		if err != nil {
			s.stop()
			return nil, fmt.Errorf("motor: telemetry: %w", err)
		}
		s.telemetry = t
	}
	return s, nil
}

func (s *obsSession) stop() {
	if s == nil {
		return
	}
	if s.telemetry != nil {
		_ = s.telemetry.Close()
	}
	if s.watchdog != nil {
		s.watchdog.Stop()
	}
	if s.flight != nil {
		if s.flightStop != nil {
			s.flightStop()
		}
		obs.Stop(s.flight)
	}
}

// telemetryAddr holds the bound address of the most recent live
// telemetry endpoint (":0" configs resolve to a real port).
var telemetryAddr atomic.Value // string

// TelemetryAddr returns the live telemetry endpoint's address from
// the most recent Run or Join in this process, or "" when no endpoint
// is up. Exposed for tests and embedders that print the URL.
func TelemetryAddr() string {
	s, _ := telemetryAddr.Load().(string)
	return s
}

// Rank is one process of a Motor world: a virtual machine, its
// message-passing engine, and the managed thread running the caller.
type Rank struct {
	vm     *vm.VM
	engine *core.Engine
	thread *vm.Thread
	world  *mp.World
	cfg    Config
}

// Run builds an in-process world per cfg and executes body once per
// rank, each on its own goroutine, VM and managed thread. It returns
// the first error.
func Run(cfg Config, body func(r *Rank) error) error {
	cfg.fill()
	var kind mp.ChannelKind
	switch cfg.Channel {
	case "shm":
		kind = mp.ChannelShm
	case "sock":
		kind = mp.ChannelSock
	default:
		return fmt.Errorf("motor: unknown channel %q", cfg.Channel)
	}
	tracePath := cfg.Trace
	if tracePath == "" {
		tracePath = os.Getenv("MOTOR_TRACE")
	}
	var tracer *obs.Tracer
	if tracePath != "" {
		// The first Run to start a session owns it; nested/concurrent
		// Runs trace into the owner's session and the owner exports.
		tracer = obs.Start(obs.Options{})
	}
	reg := new(obs.Registry)
	sess, err := startObs(&cfg, tracer != nil, reg)
	if err != nil {
		if tracer != nil {
			obs.Stop(tracer)
		}
		return err
	}
	defer sess.stop()
	if sess.telemetry != nil {
		telemetryAddr.Store(sess.telemetry.Addr())
		defer telemetryAddr.Store("")
	}
	worlds, err := mp.NewLocalWorldsOn(kind, cfg.Ranks, cfg.EagerMax, cfg.Platform)
	if err != nil {
		if tracer != nil {
			obs.Stop(tracer)
		}
		return err
	}
	errc := make(chan error, cfg.Ranks)
	for _, w := range worlds {
		go func(w *mp.World) {
			defer w.Close()
			r := newRank(w, cfg)
			// Live /metrics sees every rank: the registry suffixes
			// same-named groups (engine#1, ...) per rank.
			r.engine.RegisterStats(reg)
			// LIFO teardown: the main thread ends first (releasing the
			// execution token), then the progress engine stops (its gated
			// loop needs the token to finish a pass), then the world
			// closes.
			defer r.engine.Close()
			defer r.thread.End()
			errc <- body(r)
		}(w)
	}
	var first error
	for i := 0; i < cfg.Ranks; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	if tracer != nil {
		obs.Stop(tracer)
		if err := writeTrace(tracePath, tracer); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func writeTrace(path string, t *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("motor: trace: %w", err)
	}
	//lint:ignore motorlint/tracerguard t is the just-stopped tracer; the caller's `tracer != nil` guard dominates this cold shutdown path
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("motor: trace: %w", err)
	}
	return f.Close()
}

func newRank(w *mp.World, cfg Config) *Rank {
	v := vm.New(vm.Config{
		Name:   fmt.Sprintf("rank%d", w.Rank()),
		Stdout: cfg.Stdout,
		Heap:   vm.HeapConfig{YoungSize: cfg.YoungSize, ArenaMax: cfg.ArenaMax, GCWorkers: cfg.GCWorkers},
	})
	e := core.Attach(v, w,
		core.WithPolicy(cfg.Policy),
		core.WithVisited(cfg.Visited),
		core.WithAsyncProgress(cfg.AsyncProgress))
	return &Rank{vm: v, engine: e, thread: v.StartThread("main"), world: w, cfg: cfg}
}

// Spawn implements dynamic process management (MPI-2; the paper's §9
// names "transparent process management" as Motor's next step). It is
// collective over the world and only available on shm worlds: n child
// ranks join the running fabric, each with a fresh virtual machine
// and engine, and childBody runs once per child on its own goroutine.
// Parents and children share a merged communicator (the result of an
// MPI_Intercomm_merge: parents first, then children), returned as a
// communicator handle usable with every *On operation.
//
// A child's error is the child's to handle — report it to a parent
// through the merged communicator, as separate OS processes would.
func (r *Rank) Spawn(n int, childBody func(child *Rank, merged CommID) error) (CommID, error) {
	merged, err := r.world.Spawn(n, func(cw *mp.World, mc *mp.Comm) error {
		child := newRank(cw, r.cfg)
		defer child.engine.Close()
		defer child.thread.End()
		mid := child.engine.RegisterComm(mc)
		return childBody(child, mid)
	})
	if err != nil {
		return NullComm, err
	}
	return r.engine.RegisterComm(merged), nil
}

// Serve hosts the rendezvous service for an n-rank multi-process
// world on addr ("host:port") and returns once every rank has joined
// and received the address table. Run it in one process (or
// goroutine); every rank then calls Join with the same address.
func Serve(addr string, n int) error {
	ln, err := pal.Default.Listen(addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	return channel.ServeRoot(ln, n)
}

// Join connects this OS process to a multi-process sock world through
// the rendezvous service at rootAddr, as world rank `rank` of `size`.
// It returns the rank plus a close function. This is the deployment
// path of cmd/motor's -mode rank: one Motor VM per OS process,
// connected over TCP — the paper's sock-channel configuration across
// real process boundaries.
func Join(cfg Config, rootAddr string, rank, size int) (*Rank, func() error, error) {
	cfg.fill()
	// Per-process tracing: each OS process of a sock world exports its
	// own file (set a distinct -trace/MOTOR_TRACE per rank), which is
	// exactly the per-rank input layout cmd/mtrace stitches back
	// together. As in Run, the first Join to start a session owns it;
	// in-process siblings trace into the owner's session.
	tracePath := cfg.Trace
	if tracePath == "" {
		tracePath = os.Getenv("MOTOR_TRACE")
	}
	var tracer *obs.Tracer
	if tracePath != "" {
		tracer = obs.Start(obs.Options{})
	}
	reg := new(obs.Registry)
	tr := obs.Active()
	sess, err := startObs(&cfg, tr != nil && !tr.Flight(), reg)
	if err != nil {
		if tracer != nil {
			obs.Stop(tracer)
		}
		return nil, nil, err
	}
	if sess.telemetry != nil {
		telemetryAddr.Store(sess.telemetry.Addr())
	}
	w, err := mp.JoinWorld(rootAddr, rank, size, cfg.EagerMax)
	if err != nil {
		sess.stop()
		if tracer != nil {
			obs.Stop(tracer)
		}
		return nil, nil, err
	}
	r := newRank(w, cfg)
	r.engine.RegisterStats(reg)
	closer := func() error {
		r.thread.End()
		r.engine.Close()
		err := w.Close()
		if sess.telemetry != nil {
			telemetryAddr.Store("")
		}
		sess.stop()
		if tracer != nil {
			obs.Stop(tracer)
			if werr := writeTrace(tracePath, tracer); werr != nil && err == nil {
				err = werr
			}
		}
		return err
	}
	return r, closer, nil
}

// ID returns this rank's index in the world.
func (r *Rank) ID() int { return r.engine.Comm.Rank() }

// Size returns the world size.
func (r *Rank) Size() int { return r.engine.Comm.Size() }

// WTime returns elapsed wall-clock seconds (MPI_Wtime analogue).
func (r *Rank) WTime() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// --- type & object construction -------------------------------------------

// DeclareClass registers an empty class shell (for self-referential
// types); complete it with CompleteClass.
func (r *Rank) DeclareClass(name string) (*MethodTable, error) { return r.vm.DeclareClass(name) }

// CompleteClass lays out a declared class.
func (r *Rank) CompleteClass(mt *MethodTable, parent *MethodTable, fields []FieldSpec) error {
	return r.vm.CompleteClass(mt, parent, fields)
}

// DefineClass registers a class in one step.
func (r *Rank) DefineClass(name string, fields ...FieldSpec) (*MethodTable, error) {
	return r.vm.NewClass(name, nil, fields)
}

// ArrayType returns the canonical array type for an element shape.
func (r *Rank) ArrayType(elem Kind, elemClass *MethodTable, rank int) *MethodTable {
	return r.vm.ArrayType(elem, elemClass, rank)
}

// New allocates a class instance.
func (r *Rank) New(mt *MethodTable) (Ref, error) { return r.vm.Heap.AllocClass(mt) }

// NewArray allocates a rank-1 array of the element shape.
func (r *Rank) NewArray(elem Kind, length int) (Ref, error) {
	return r.vm.Heap.AllocArray(r.vm.ArrayType(elem, nil, 1), length)
}

// NewObjectArray allocates an array of class references.
func (r *Rank) NewObjectArray(elem *MethodTable, length int) (Ref, error) {
	return r.vm.Heap.AllocArray(r.vm.ArrayType(Object, elem, 1), length)
}

// NewMatrix allocates a true rank-2 rectangular array (rows×cols).
func (r *Rank) NewMatrix(elem Kind, rows, cols int) (Ref, error) {
	return r.vm.Heap.AllocMultiDim(r.vm.ArrayType(elem, nil, 2), []int{rows, cols})
}

// NewInt32Array allocates and fills an int32 array.
func (r *Rank) NewInt32Array(vals []int32) (Ref, error) { return r.vm.Heap.NewInt32Array(vals) }

// NewFloat64Array allocates and fills a float64 array.
func (r *Rank) NewFloat64Array(vals []float64) (Ref, error) { return r.vm.Heap.NewFloat64Array(vals) }

// NewUint8Array allocates and fills a byte array.
func (r *Rank) NewUint8Array(vals []byte) (Ref, error) { return r.vm.Heap.NewUint8Array(vals) }

// Int32s copies out an int32 array.
func (r *Rank) Int32s(ref Ref) []int32 { return r.vm.Heap.Int32Slice(ref) }

// Float64s copies out a float64 array.
func (r *Rank) Float64s(ref Ref) []float64 { return r.vm.Heap.Float64Slice(ref) }

// Uint8s copies out a byte array.
func (r *Rank) Uint8s(ref Ref) []byte { return r.vm.Heap.Uint8Slice(ref) }

// Len returns an array's total element count.
func (r *Rank) Len(ref Ref) int { return r.vm.Heap.Length(ref) }

// GetField / SetField access class fields as raw bits.
func (r *Rank) GetField(obj Ref, mt *MethodTable, name string) (uint64, bool) {
	f := mt.FieldByName(name)
	if f == nil {
		return 0, false
	}
	bits, _ := r.vm.Heap.GetField(obj, f)
	return bits, true
}

// SetField writes a class field from raw bits (or a Ref for
// reference fields).
func (r *Rank) SetField(obj Ref, mt *MethodTable, name string, bits uint64) bool {
	f := mt.FieldByName(name)
	if f == nil {
		return false
	}
	r.vm.Heap.SetField(obj, f, bits)
	return true
}

// GetElem / SetElem access array elements as raw bits.
func (r *Rank) GetElem(arr Ref, i int) uint64 { return r.vm.Heap.GetElem(arr, i) }

// SetElem writes array element i from raw bits.
func (r *Rank) SetElem(arr Ref, i int, bits uint64) { r.vm.Heap.SetElem(arr, i, bits) }

// BitsFromFloat64 converts a float64 to the raw bits used by field
// and element accessors.
func BitsFromFloat64(f float64) uint64 { return vm.BitsFromF64(f) }

// Float64FromBits converts raw bits back to a float64.
func Float64FromBits(b uint64) float64 { return vm.F64FromBits(b) }

// Protect registers the given Go variables as GC roots until the
// returned release function is called. Any managed reference held in
// a plain Go variable across an allocating or communicating call MUST
// be protected this way (the FCall protected-pointer discipline of
// the paper's §5.1).
func (r *Rank) Protect(refs ...*Ref) (release func()) { return r.thread.PushFrame(refs...) }

// --- message passing (regular operations, §4.2.1) ---------------------------

// Send transports a whole object (blocking). The object must contain
// no references (or be an array of simple types).
func (r *Rank) Send(obj Ref, dest, tag int) error { return r.engine.Send(r.thread, obj, dest, tag) }

// Ssend is the synchronous-mode Send.
func (r *Rank) Ssend(obj Ref, dest, tag int) error { return r.engine.Ssend(r.thread, obj, dest, tag) }

// SendRange transports array elements [offset, offset+count).
func (r *Rank) SendRange(arr Ref, offset, count, dest, tag int) error {
	return r.engine.SendRange(r.thread, arr, offset, count, dest, tag)
}

// Recv receives into a whole object (blocking).
func (r *Rank) Recv(obj Ref, source, tag int) (Status, error) {
	return r.engine.Recv(r.thread, obj, source, tag)
}

// RecvRange receives into array elements [offset, offset+count).
func (r *Rank) RecvRange(arr Ref, offset, count, source, tag int) (Status, error) {
	return r.engine.RecvRange(r.thread, arr, offset, count, source, tag)
}

// Isend starts an immediate send; pair with Wait or Test.
func (r *Rank) Isend(obj Ref, dest, tag int) (int32, error) {
	return r.engine.Isend(r.thread, obj, dest, tag)
}

// Irecv starts an immediate receive.
func (r *Rank) Irecv(obj Ref, source, tag int) (int32, error) {
	return r.engine.Irecv(r.thread, obj, source, tag)
}

// Wait blocks until the request completes.
func (r *Rank) Wait(req int32) (Status, error) { return r.engine.Wait(r.thread, req) }

// Test polls the request once.
func (r *Rank) Test(req int32) (bool, Status, error) { return r.engine.Test(r.thread, req) }

// Barrier synchronizes all ranks.
func (r *Rank) Barrier() error { return r.engine.Barrier(r.thread) }

// Bcast broadcasts the root's object contents into every rank's
// equally-sized object.
func (r *Rank) Bcast(obj Ref, root int) error { return r.engine.Bcast(r.thread, obj, root) }

// Scatter splits the root's simple array equally into each rank's
// recv array.
func (r *Rank) Scatter(send, recv Ref, root int) error {
	return r.engine.Scatter(r.thread, send, recv, root)
}

// Gather collects each rank's simple array into the root's recv
// array.
func (r *Rank) Gather(send, recv Ref, root int) error {
	return r.engine.Gather(r.thread, send, recv, root)
}

// Allgather collects every rank's simple array into every rank's
// recv array.
func (r *Rank) Allgather(send, recv Ref) error {
	return r.engine.Allgather(r.thread, send, recv)
}

// Alltoall exchanges equal chunks of every rank's simple send array:
// this rank's chunk j lands in rank j's recv array at this rank's
// chunk index.
func (r *Rank) Alltoall(send, recv Ref) error {
	return r.engine.Alltoall(r.thread, send, recv)
}

// Sendrecv sends sendObj to dest while receiving into recvObj from
// source — the deadlock-free combined exchange.
func (r *Rank) Sendrecv(sendObj Ref, dest, sendTag int, recvObj Ref, source, recvTag int) (Status, error) {
	return r.engine.Sendrecv(r.thread, sendObj, dest, sendTag, recvObj, source, recvTag)
}

// Reduction operators.
type Op = mp.Op

// Reduction operator values.
const (
	OpSum  = mp.OpSum
	OpProd = mp.OpProd
	OpMin  = mp.OpMin
	OpMax  = mp.OpMax
)

// Reduce combines each rank's simple array elementwise into the
// root's recv array (datatype inferred from the element kind; uint8,
// int32, int64 and float64 arrays are supported).
func (r *Rank) Reduce(send, recv Ref, op Op, root int) error {
	return r.engine.Reduce(r.thread, send, recv, op, root)
}

// Allreduce combines into every rank's recv array.
func (r *Rank) Allreduce(send, recv Ref, op Op) error {
	return r.engine.Allreduce(r.thread, send, recv, op)
}

// --- communicator management -------------------------------------------------

// CommID is a managed communicator handle; WorldComm (0) addresses
// the world communicator and NullComm (-1) is returned to callers
// excluded from a Split.
type CommID = int32

// Communicator handle constants.
const (
	WorldComm = core.WorldComm
	NullComm  = core.NullComm
)

// Dup duplicates a communicator (collective over its members).
func (r *Rank) Dup(id CommID) (CommID, error) { return r.engine.CommDup(r.thread, id) }

// Split partitions a communicator by color, ordering members by key
// (collective). A negative color yields NullComm.
func (r *Rank) Split(id CommID, color, key int) (CommID, error) {
	return r.engine.CommSplit(r.thread, id, color, key)
}

// CommRank returns the caller's rank within the communicator.
func (r *Rank) CommRank(id CommID) (int, error) { return r.engine.CommRank(id) }

// CommSize returns a communicator's size.
func (r *Rank) CommSize(id CommID) (int, error) { return r.engine.CommSize(id) }

// CommFree releases a communicator handle.
func (r *Rank) CommFree(id CommID) error { return r.engine.CommFree(id) }

// SendOn / RecvOn / BarrierOn / BcastOn / ReduceOn address an
// explicit communicator.
func (r *Rank) SendOn(id CommID, obj Ref, dest, tag int) error {
	return r.engine.SendOn(r.thread, id, obj, dest, tag)
}

// RecvOn receives over an explicit communicator.
func (r *Rank) RecvOn(id CommID, obj Ref, source, tag int) (Status, error) {
	return r.engine.RecvOn(r.thread, id, obj, source, tag)
}

// BarrierOn synchronizes an explicit communicator.
func (r *Rank) BarrierOn(id CommID) error { return r.engine.BarrierOn(r.thread, id) }

// BcastOn broadcasts over an explicit communicator.
func (r *Rank) BcastOn(id CommID, obj Ref, root int) error {
	return r.engine.BcastOn(r.thread, id, obj, root)
}

// ReduceOn reduces over an explicit communicator.
func (r *Rank) ReduceOn(id CommID, send, recv Ref, op Op, root int) error {
	return r.engine.ReduceOn(r.thread, id, send, recv, op, root)
}

// AllreduceOn combines into every member's recv array over an
// explicit communicator.
func (r *Rank) AllreduceOn(id CommID, send, recv Ref, op Op) error {
	return r.engine.AllreduceOn(r.thread, id, send, recv, op)
}

// AllgatherOn gathers over an explicit communicator.
func (r *Rank) AllgatherOn(id CommID, send, recv Ref) error {
	return r.engine.AllgatherOn(r.thread, id, send, recv)
}

// AlltoallOn exchanges over an explicit communicator.
func (r *Rank) AlltoallOn(id CommID, send, recv Ref) error {
	return r.engine.AlltoallOn(r.thread, id, send, recv)
}

// --- extended object-oriented operations (§4.2.2) ----------------------------

// OSend transports an object tree (Transportable-annotated references
// are followed; other references travel as null).
func (r *Rank) OSend(obj Ref, dest, tag int) error { return r.engine.OSend(r.thread, obj, dest, tag) }

// ORecv receives an object tree, reconstructed on this rank's heap.
func (r *Rank) ORecv(source, tag int) (Ref, Status, error) {
	return r.engine.ORecv(r.thread, source, tag)
}

// OBcast broadcasts an object tree from root.
func (r *Rank) OBcast(obj Ref, root int) (Ref, error) { return r.engine.OBcast(r.thread, obj, root) }

// OScatter splits the root's object array across ranks (split
// representation, §7.5); every rank receives its sub-array.
func (r *Rank) OScatter(arr Ref, root int) (Ref, error) {
	return r.engine.OScatter(r.thread, arr, root)
}

// OGather reassembles per-rank object arrays into one array at root.
func (r *Rank) OGather(arr Ref, root int) (Ref, error) {
	return r.engine.OGather(r.thread, arr, root)
}

// --- managed programs ---------------------------------------------------------

// Load assembles a masm module into the rank's VM and returns its
// main method (nil if the module has none). Unless the world was
// configured with VerifyOff, every method is statically verified
// before it becomes callable: ill-typed or ill-formed bytecode fails
// Load with a *bcverify.Error naming the method, instruction and masm
// source line, and methods whose MPI buffer arguments are provably
// integrity-safe skip the engine's dynamic §4.2.1 check at run time.
// A rejected module is unregistered again in full — none of its
// classes, globals or (unverified) methods remain reachable, so a
// failed Load may simply be retried with corrected source.
//
// Verified methods are then quickened (unless Config.Quicken is
// QuickenOff): rewritten into the pre-decoded internal form driven by
// the verifier's type facts (docs/QUICKEN.md). Verification verdicts
// are memoized process-wide by module content hash, so sibling ranks
// loading the same source skip the verifier fixpoint.
func (r *Rank) Load(masmSource string) (*vm.Method, error) {
	mark := r.vm.Mark()
	mod, err := r.vm.AssembleModule(masmSource)
	if err != nil {
		return nil, err
	}
	if r.cfg.Verify == VerifyOn {
		if err := r.engine.VerifyModuleCached(masmSource, mod.Methods); err != nil {
			// Assembly already registered the module's classes, globals
			// and methods on the VM; unwind them so nothing rejected
			// stays reachable (a later module could otherwise call the
			// unverified methods by index).
			r.vm.RollbackRegistry(mark)
			return nil, err
		}
		if r.cfg.Quicken == QuickenOn {
			r.engine.QuickenModule(mod.Methods)
		}
	}
	return mod.Main, nil
}

// VerifyStats returns load-time verification counters for this rank.
func (r *Rank) VerifyStats() core.VerifyStats { return r.engine.Verify.Snapshot() }

// QuickenStats returns load-time quickening and verdict-cache
// counters for this rank.
func (r *Rank) QuickenStats() core.QuickenStats { return r.engine.Quicken.Snapshot() }

// Call executes a managed method on this rank's thread.
func (r *Rank) Call(m *vm.Method, args ...Value) (Value, error) { return r.thread.Call(m, args...) }

// --- introspection --------------------------------------------------------------

// GC forces a collection (full when full is true).
func (r *Rank) GC(full bool) {
	if full {
		r.thread.CollectFull()
	} else {
		r.thread.CollectYoung()
	}
}

// GCStats returns collector and pinning counters (a race-safe
// snapshot).
func (r *Rank) GCStats() vm.GCStats { return r.vm.Heap.Stats.Snapshot() }

// MPStats returns message-passing engine counters (a race-safe
// snapshot; see core.Stats.Snapshot).
func (r *Rank) MPStats() core.Stats { return r.engine.Stats.Snapshot() }

// StatsSnapshot aggregates every subsystem this rank can see —
// engine, ADI device, collective layer, GC, transport — into one
// versioned obs snapshot, with latency histograms when a trace
// session is active. Render it with obs.WriteMetricsJSON or
// obs.WriteMetricsText.
func (r *Rank) StatsSnapshot() obs.Snapshot {
	reg := new(obs.Registry)
	r.engine.RegisterStats(reg)
	return reg.Snapshot()
}

// RegisterStats adds this rank's stats sources to a shared registry —
// the multi-rank form of StatsSnapshot (same-named groups from later
// ranks get a #N suffix).
func (r *Rank) RegisterStats(reg *obs.Registry) { r.engine.RegisterStats(reg) }

// CollStats returns the collective-layer counters: operations run,
// algorithm chosen per call, payload bytes moved and the peak number
// of transfers in flight (see mp.CollStats).
func (r *Rank) CollStats() mp.CollStats { return r.engine.Comm.CollStats() }

// SetCollAlgo forces collective algorithm choices for this rank —
// the MOTOR_COLL_ALGO spec format, e.g. "allreduce=ring,bcast=binomial".
// Must be applied identically on every rank.
func (r *Rank) SetCollAlgo(spec string) error { return r.engine.Comm.SetCollAlgo(spec) }

// DeviceStats returns the ADI device counters, including the
// transport-failure classes (TransportErrors, PeersLost), as a
// race-safe snapshot.
func (r *Rank) DeviceStats() adi.DeviceStats { return r.world.Dev.StatsSnapshot() }

// ProgressStats returns the background progress engine's counters
// (all zero when Config.AsyncProgress is off).
func (r *Rank) ProgressStats() mp.ProgressStats { return r.engine.ProgressStats() }

// AsyncProgress reports whether this rank runs the background
// progress engine.
func (r *Rank) AsyncProgress() bool { return r.engine.AsyncProgress() }

// TransportStats returns the sock channel's retry/poison counters.
// ok is false when the transport does not expose them (shm).
func (r *Rank) TransportStats() (channel.TransportStats, bool) {
	if src, ok := r.world.Dev.Channel().(channel.StatsSource); ok {
		return src.TransportStats(), true
	}
	return channel.TransportStats{}, false
}

// Go runs body on a new managed thread of this rank's VM, sharing
// the rank's communicators and heap, and returns a join function that
// blocks until body finishes and reports its error. Requires
// Config.AsyncProgress: the device and engine are then safe for
// concurrent use from multiple threads. Every spawned thread must be
// joined before the rank's body returns. Collectives remain
// MPI-semantics: at most one collective per communicator at a time
// across all of a rank's threads.
func (r *Rank) Go(name string, body func(rt *RankThread) error) (join func() error) {
	if name == "" {
		name = "worker"
	}
	errc := make(chan error, 1)
	go func() {
		t := r.vm.StartThread(name)
		defer t.End()
		errc <- body(&RankThread{rank: r, thread: t})
	}()
	return func() error {
		var err error
		// Parked join: release the execution token while waiting so the
		// worker (and the progress engine) can run.
		r.thread.Park(func() { err = <-errc })
		return err
	}
}

// RankThread is a sibling managed thread created by Rank.Go: the same
// rank (same VM, heap, communicators, world rank) on its own managed
// thread, so its operations interleave safely with the parent's.
type RankThread struct {
	rank   *Rank
	thread *vm.Thread
}

// ID returns the world rank (shared with the parent Rank).
func (rt *RankThread) ID() int { return rt.rank.ID() }

// Size returns the world size.
func (rt *RankThread) Size() int { return rt.rank.Size() }

// Thread exposes the worker's managed thread.
func (rt *RankThread) Thread() *vm.Thread { return rt.thread }

// Protect registers Go-held refs as GC roots on the worker thread.
func (rt *RankThread) Protect(refs ...*Ref) (release func()) {
	return rt.thread.PushFrame(refs...)
}

// NewInt32Array allocates and fills an int32 array on the shared heap.
func (rt *RankThread) NewInt32Array(vals []int32) (Ref, error) {
	return rt.rank.vm.Heap.NewInt32Array(vals)
}

// NewUint8Array allocates and fills a byte array on the shared heap.
func (rt *RankThread) NewUint8Array(vals []byte) (Ref, error) {
	return rt.rank.vm.Heap.NewUint8Array(vals)
}

// Int32s copies out an int32 array.
func (rt *RankThread) Int32s(ref Ref) []int32 { return rt.rank.vm.Heap.Int32Slice(ref) }

// Uint8s copies out a byte array.
func (rt *RankThread) Uint8s(ref Ref) []byte { return rt.rank.vm.Heap.Uint8Slice(ref) }

// Send transports a whole object from this worker thread (blocking).
func (rt *RankThread) Send(obj Ref, dest, tag int) error {
	return rt.rank.engine.Send(rt.thread, obj, dest, tag)
}

// Recv receives into a whole object on this worker thread (blocking).
func (rt *RankThread) Recv(obj Ref, source, tag int) (Status, error) {
	return rt.rank.engine.Recv(rt.thread, obj, source, tag)
}

// Isend starts an immediate send on this worker thread.
func (rt *RankThread) Isend(obj Ref, dest, tag int) (int32, error) {
	return rt.rank.engine.Isend(rt.thread, obj, dest, tag)
}

// Irecv starts an immediate receive on this worker thread.
func (rt *RankThread) Irecv(obj Ref, source, tag int) (int32, error) {
	return rt.rank.engine.Irecv(rt.thread, obj, source, tag)
}

// Wait blocks this worker thread until the request completes.
func (rt *RankThread) Wait(req int32) (Status, error) {
	return rt.rank.engine.Wait(rt.thread, req)
}

// Test polls the request once from this worker thread.
func (rt *RankThread) Test(req int32) (bool, Status, error) {
	return rt.rank.engine.Test(rt.thread, req)
}

// OSend transports an object tree from this worker thread.
func (rt *RankThread) OSend(obj Ref, dest, tag int) error {
	return rt.rank.engine.OSend(rt.thread, obj, dest, tag)
}

// ORecv receives an object tree on this worker thread.
func (rt *RankThread) ORecv(source, tag int) (Ref, Status, error) {
	return rt.rank.engine.ORecv(rt.thread, source, tag)
}

// GC forces a collection from this worker thread.
func (rt *RankThread) GC(full bool) {
	if full {
		rt.thread.CollectFull()
	} else {
		rt.thread.CollectYoung()
	}
}

// Engine exposes the underlying integration engine (advanced use).
func (r *Rank) Engine() *core.Engine { return r.engine }

// VM exposes the underlying virtual machine (advanced use).
func (r *Rank) VM() *vm.VM { return r.vm }

// Thread exposes the rank's managed thread (advanced use).
func (r *Rank) Thread() *vm.Thread { return r.thread }
