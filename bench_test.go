// Benchmarks regenerating the paper's evaluation (one per figure)
// plus the DESIGN.md ablations. The full sweeps with the paper's
// exact protocol are produced by cmd/benchfig; these testing.B
// entries cover representative points of each series so `go test
// -bench=.` exercises every implementation.
//
// Round-trip implementations involve two coordinated ranks, so each
// sub-benchmark drives the shared harness for exactly b.N timed
// iterations and reports the per-round-trip time as the custom metric
// ns/roundtrip (the wall-clock ns/op additionally includes world
// setup).
package motor_test

import (
	"fmt"
	"testing"

	"motor/internal/baseline/cliser"
	"motor/internal/baseline/javaser"
	"motor/internal/baseline/pinvoke"
	"motor/internal/bench"
	"motor/internal/serial"
	"motor/internal/vm"
)

func reportPing(b *testing.B, impl bench.PingImpl, size int) {
	b.Helper()
	us, err := bench.RunPingN(impl, size, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(us*1000, "ns/roundtrip")
	b.ReportMetric(0, "ns/op")
}

func reportObj(b *testing.B, impl bench.ObjImpl, objects int) {
	b.Helper()
	us, err := bench.RunObjN(impl, objects, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(us*1000, "ns/roundtrip")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkFigure9 is the regular-operations ping-pong of §8 at
// representative buffer sizes (full sweep: cmd/benchfig -fig 9).
func BenchmarkFigure9(b *testing.B) {
	sizes := []int{64, 4096, 65536, 262144}
	for _, impl := range bench.Fig9Impls() {
		for _, size := range sizes {
			impl, size := impl, size
			b.Run(fmt.Sprintf("%s/%dB", impl.Name, size), func(b *testing.B) {
				reportPing(b, impl, size)
			})
		}
	}
}

// BenchmarkFigure10 is the object-transport ping-pong of §8 at
// representative object counts (full sweep: cmd/benchfig -fig 10).
// mpiJava is benchmarked only below its stack-overflow point, exactly
// as its line ends in the paper's figure.
func BenchmarkFigure10(b *testing.B) {
	counts := []int{16, 256, 1024}
	for _, impl := range bench.Fig10Impls() {
		for _, n := range counts {
			impl, n := impl, n
			b.Run(fmt.Sprintf("%s/%dobjs", impl.Name, n), func(b *testing.B) {
				reportObj(b, impl, n)
			})
		}
	}
}

// BenchmarkCollectives sweeps the collective algorithms at
// representative sizes either side of the selector's crossover points
// on a 4-rank world (full sweep: cmd/benchfig -coll, committed
// results: BENCH_coll.json). Each operation's seed-shaped baseline
// (reducebcast / gatherbcast / binomial) runs alongside the new
// algorithms so the large-message win stays visible in `go test
// -bench`.
func BenchmarkCollectives(b *testing.B) {
	const ranks = 4
	sizes := []int{1024, 65536, 262144}
	for _, spec := range bench.CollSweepSpecs() {
		if spec.Algo == "auto" {
			continue // the forced pairs are the comparison that matters here
		}
		for _, size := range sizes {
			spec, size := spec, size
			b.Run(fmt.Sprintf("%s/%s/%dB", spec.Op, spec.Algo, size), func(b *testing.B) {
				us, err := bench.RunCollN(spec, ranks, size, b.N)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(us*1000, "ns/iter")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkAblationPinPolicy (A1) isolates the paper's pinning policy
// against wrapper-style always-pin on otherwise identical Motor
// stacks.
func BenchmarkAblationPinPolicy(b *testing.B) {
	for _, impl := range []bench.PingImpl{bench.MotorImpl(), bench.MotorAlwaysPinImpl()} {
		impl := impl
		b.Run(impl.Name, func(b *testing.B) {
			reportPing(b, impl, 4096)
		})
	}
}

// BenchmarkAblationVisited (A2) measures the serializer alone with
// the paper's linear visited list vs the hashed set it names as
// future work — the cause of Motor's large-count degradation in
// Figure 10.
func BenchmarkAblationVisited(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    serial.VisitedMode
	}{{"linear", serial.VisitedLinear}, {"map", serial.VisitedMap}} {
		for _, elements := range []int{64, 512, 4096} {
			mode, elements := mode, elements
			b.Run(fmt.Sprintf("%s/%delems", mode.name, elements), func(b *testing.B) {
				v := vm.New(vm.Config{Heap: vm.HeapConfig{YoungSize: 4 << 20, InitialElder: 32 << 20, ArenaMax: 512 << 20}})
				head := buildBenchList(v, elements)
				var buf []byte
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					buf, err = serial.Serialize(v.Heap, head, serial.Options{Visited: mode.m}, buf[:0])
					if err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(int64(len(buf)))
			})
		}
	}
}

// BenchmarkAblationCallPath (A3) compares the bare crossing costs:
// the FCall dispatch of the integrated design against the
// P/Invoke-style marshal+demand and the JNI-style function-table +
// local-reference bookkeeping of the wrapper designs.
func BenchmarkAblationCallPath(b *testing.B) {
	b.Run("FCall", func(b *testing.B) {
		v := vm.New(vm.Config{})
		idx := v.RegisterInternal(vm.InternalFunc{
			Name: "bench.nop", NArgs: 2, HasRet: true,
			Fn: func(t *vm.Thread, a []vm.Value) (vm.Value, error) { return a[0], nil },
		})
		m := v.AddMethod(nil, vm.NewCodeBuilder().
			LdArg(0).LdArg(1).Intern(idx).RetVal().
			Build("call", 2, 0, true))
		th := v.StartThread("bench")
		defer th.End()
		args := []vm.Value{vm.IntValue(1), vm.IntValue(2)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := th.Call(m, args...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PInvoke/SSCLI", func(b *testing.B) { benchCrossing(b, pinvoke.HostSSCLI) })
	b.Run("PInvoke/NET", func(b *testing.B) { benchCrossing(b, pinvoke.HostNET) })
}

// BenchmarkAblationPinMechanism (A4) measures pin/unpin through the
// two bookkeeping structures (the paper's footnote 4: pin cost varies
// strongly with the runtime build).
func BenchmarkAblationPinMechanism(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    vm.PinMode
	}{{"handle-table", vm.PinHandleTable}, {"linear-list", vm.PinLinearList}} {
		for _, live := range []int{1, 64, 512} {
			mode, live := mode, live
			b.Run(fmt.Sprintf("%s/%dlive", mode.name, live), func(b *testing.B) {
				v := vm.New(vm.Config{Heap: vm.HeapConfig{PinMode: mode.m}})
				refs := make([]vm.Ref, live)
				for i := range refs {
					r, err := v.Heap.NewInt32Array([]int32{int32(i)})
					if err != nil {
						b.Fatal(err)
					}
					refs[i] = r
					v.Heap.Pin(r)
				}
				target := refs[live/2]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					v.Heap.Pin(target)
					v.Heap.Unpin(target)
				}
			})
		}
	}
}

// buildBenchList constructs the Figure 10 list shape for serializer
// benchmarks.
func buildBenchList(v *vm.VM, elements int) vm.Ref {
	mt, err := v.DeclareClass("Cell")
	if err != nil {
		panic(err)
	}
	u8arr := v.ArrayType(vm.KindUint8, nil, 1)
	if err := v.CompleteClass(mt, nil, []vm.FieldSpec{
		{Name: "data", Kind: vm.KindRef, Type: u8arr, Transportable: true},
		{Name: "next", Kind: vm.KindRef, Type: mt, Transportable: true},
	}); err != nil {
		panic(err)
	}
	per := 4096 / elements
	if per < 1 {
		per = 1
	}
	guard := &vm.RefRoots{Refs: make([]vm.Ref, 2)}
	v.AddRootProvider(guard)
	fData, fNext := mt.FieldByName("data"), mt.FieldByName("next")
	for i := 0; i < elements; i++ {
		node, err := v.Heap.AllocClass(mt)
		if err != nil {
			panic(err)
		}
		guard.Refs[1] = node
		arr, err := v.Heap.AllocArray(u8arr, per)
		if err != nil {
			panic(err)
		}
		node = guard.Refs[1]
		v.Heap.SetRef(node, fData, arr)
		v.Heap.SetRef(node, fNext, guard.Refs[0])
		guard.Refs[0] = node
	}
	// The guard stays registered: the benchmark needs the list alive.
	return guard.Refs[0]
}

// benchCrossing measures the P/Invoke-style marshal+demand alone.
func benchCrossing(b *testing.B, host pinvoke.Host) {
	us, err := bench.RunPingN(bench.IndianaImpl(host), 4, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(us*1000, "ns/roundtrip")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkSerializers compares the three serialization mechanisms of
// Figure 10 head-to-head without transport (Motor custom vs CLI
// BinaryFormatter profiles vs Java ObjectOutputStream).
func BenchmarkSerializers(b *testing.B) {
	const elements = 256
	run := func(name string, ser func(v *vm.VM, head vm.Ref) (int, error)) {
		b.Run(name, func(b *testing.B) {
			v := vm.New(vm.Config{Heap: vm.HeapConfig{YoungSize: 4 << 20, InitialElder: 32 << 20, ArenaMax: 512 << 20}})
			head := buildBenchList(v, elements)
			n := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				n, err = ser(v, head)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(n))
		})
	}
	run("Motor", func(v *vm.VM, head vm.Ref) (int, error) {
		data, err := serial.Serialize(v.Heap, head, serial.Options{}, nil)
		return len(data), err
	})
	run("CLI/SSCLI", func(v *vm.VM, head vm.Ref) (int, error) {
		data, err := cliser.Serialize(v.Heap, head, cliser.ProfileSSCLI)
		return len(data), err
	})
	run("CLI/NET", func(v *vm.VM, head vm.Ref) (int, error) {
		data, err := cliser.Serialize(v.Heap, head, cliser.ProfileNET)
		return len(data), err
	})
	run("Java", func(v *vm.VM, head vm.Ref) (int, error) {
		data, err := javaser.Serialize(v.Heap, head)
		return len(data), err
	})
}
