// Spawn: MPI-2 dynamic process management — the capability the paper
// lists among Motor's implemented MPI-2 subset (§7) and whose tighter
// runtime integration §9 names as future work. A two-rank world
// spawns two worker ranks at runtime; parents and children share a
// merged communicator and cooperate on a reduction.
//
//	go run ./examples/spawn
package main

import (
	"fmt"
	"log"

	"motor"
)

func main() {
	err := motor.Run(motor.Config{Ranks: 2}, func(r *motor.Rank) error {
		// Collective: both parents call Spawn; two children join the
		// running fabric, each with a fresh virtual machine.
		merged, err := r.Spawn(2, func(child *motor.Rank, mc motor.CommID) error {
			mr, err := child.CommRank(mc)
			if err != nil {
				return err
			}
			fmt.Printf("child: world rank %d of %d, merged rank %d\n",
				child.ID(), child.Size(), mr)
			// Every member contributes its merged rank; the allreduced
			// sum must agree everywhere.
			return contribute(childOrParent{mc: mc, rank: mr,
				newI32: child.NewInt32Array, i32s: child.Int32s,
				allreduce: func(s, d motor.Ref) error {
					return child.Engine().AllreduceOn(child.Thread(), mc, s, d, motor.OpSum)
				}})
		})
		if err != nil {
			return err
		}
		mr, err := r.CommRank(merged)
		if err != nil {
			return err
		}
		fmt.Printf("parent: world rank %d, merged rank %d\n", r.ID(), mr)
		return contribute(childOrParent{mc: merged, rank: mr,
			newI32: r.NewInt32Array, i32s: r.Int32s,
			allreduce: func(s, d motor.Ref) error {
				return r.Engine().AllreduceOn(r.Thread(), merged, s, d, motor.OpSum)
			}})
	})
	if err != nil {
		log.Fatal(err)
	}
}

// childOrParent abstracts the shared contribution step.
type childOrParent struct {
	mc        motor.CommID
	rank      int
	newI32    func([]int32) (motor.Ref, error)
	i32s      func(motor.Ref) []int32
	allreduce func(send, recv motor.Ref) error
}

func contribute(p childOrParent) error {
	send, err := p.newI32([]int32{int32(p.rank)})
	if err != nil {
		return err
	}
	recv, err := p.newI32(make([]int32, 1))
	if err != nil {
		return err
	}
	if err := p.allreduce(send, recv); err != nil {
		return err
	}
	// 4 members with merged ranks 0..3: sum is 6.
	if got := p.i32s(recv)[0]; got != 6 {
		return fmt.Errorf("merged rank %d: allreduce sum = %d, want 6", p.rank, got)
	}
	fmt.Printf("merged rank %d: allreduce over parents+children = %d ✓\n", p.rank, p.i32s(recv)[0])
	return nil
}
