// Pi-scatter: Monte-Carlo estimation of π using the extended
// object-oriented operations. The root builds an array of WorkItem
// OBJECTS (seed + sample count), OScatter splits it across ranks via
// the serializer's split representation (§7.5) — the operation the
// paper highlights as impossible with standard Java/CLI serialization
// — each rank computes its items, and OGather reassembles the result
// objects at the root.
//
//	go run ./examples/pi-scatter [-ranks 4] [-samples 400000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"motor"
)

func main() {
	ranks := flag.Int("ranks", 4, "number of ranks")
	samples := flag.Int("samples", 400000, "total samples")
	flag.Parse()

	err := motor.Run(motor.Config{Ranks: *ranks}, func(r *motor.Rank) error {
		// WorkItem: input seed/count, output hit count. Plain data —
		// the object array is what needs the OO scatter.
		item, err := r.DefineClass("WorkItem",
			motor.FieldSpec{Name: "seed", Kind: motor.Int64},
			motor.FieldSpec{Name: "count", Kind: motor.Int32},
			motor.FieldSpec{Name: "hits", Kind: motor.Int32},
		)
		if err != nil {
			return err
		}

		const itemsPerRank = 4
		var work motor.Ref
		if r.ID() == 0 {
			total := itemsPerRank * r.Size()
			work, err = r.NewObjectArray(item, total)
			if err != nil {
				return err
			}
			hold := r.Protect(&work)
			per := *samples / total
			for i := 0; i < total; i++ {
				it, err := r.New(item)
				if err != nil {
					return err
				}
				r.SetField(it, item, "seed", uint64(0x9E3779B97F4A7C15*uint64(i+1)))
				r.SetField(it, item, "count", uint64(uint32(int32(per))))
				r.VM().Heap.SetElemRef(work, i, it)
			}
			hold()
		}

		mine, err := r.OScatter(work, 0)
		if err != nil {
			return err
		}
		hold := r.Protect(&mine)

		// Compute each item: xorshift sampling of the unit square.
		for i := 0; i < r.Len(mine); i++ {
			it := r.VM().Heap.GetElemRef(mine, i)
			seedBits, _ := r.GetField(it, item, "seed")
			countBits, _ := r.GetField(it, item, "count")
			state := seedBits
			hits := int32(0)
			n := int32(uint32(countBits))
			for s := int32(0); s < n; s++ {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				x := float64(state&0xFFFFFFFF) / float64(1<<32)
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				y := float64(state&0xFFFFFFFF) / float64(1<<32)
				if x*x+y*y <= 1 {
					hits++
				}
			}
			r.SetField(it, item, "hits", uint64(uint32(hits)))
		}

		result, err := r.OGather(mine, 0)
		hold()
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			totalHits, totalCount := 0, 0
			for i := 0; i < r.Len(result); i++ {
				it := r.VM().Heap.GetElemRef(result, i)
				hitsBits, _ := r.GetField(it, item, "hits")
				countBits, _ := r.GetField(it, item, "count")
				totalHits += int(int32(uint32(hitsBits)))
				totalCount += int(int32(uint32(countBits)))
			}
			pi := 4 * float64(totalHits) / float64(totalCount)
			fmt.Printf("pi ≈ %.5f (error %.5f) from %d samples over %d ranks\n",
				pi, math.Abs(pi-math.Pi), totalCount, r.Size())
			ms := r.MPStats()
			fmt.Printf("rank 0 serialized %d bytes across %d OO sends\n", ms.SerializedBytes, ms.OOSends)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
