// Nbody: a direct-summation gravitational N-body step, the classic
// HPC kernel. Bodies are split across ranks; every step each rank
// Allgathers the full position set (the all-pairs force needs every
// body), integrates its slice, and an Allreduce of kinetic+potential
// energy checks conservation — all on managed float64 arrays through
// the runtime-integrated operations.
//
//	go run ./examples/nbody [-ranks 4] [-bodies 64] [-steps 50]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"motor"
)

func main() {
	ranks := flag.Int("ranks", 4, "number of ranks")
	bodies := flag.Int("bodies", 64, "total bodies (must divide by ranks)")
	steps := flag.Int("steps", 50, "integration steps")
	dt := flag.Float64("dt", 1e-3, "time step")
	flag.Parse()
	if *bodies%*ranks != 0 {
		log.Fatalf("bodies %d must divide by ranks %d", *bodies, *ranks)
	}

	err := motor.Run(motor.Config{Ranks: *ranks}, func(r *motor.Rank) error {
		n := *bodies
		local := n / r.Size()
		lo := r.ID() * local

		// Managed state: packed position (x,y) and velocity arrays.
		myPos, _ := r.NewArray(motor.Float64, 2*local)
		allPos, _ := r.NewArray(motor.Float64, 2*n)
		vel := make([]float64, 2*local)

		set := func(arr motor.Ref, i int, v float64) { r.SetElem(arr, i, motor.BitsFromFloat64(v)) }
		get := func(arr motor.Ref, i int) float64 { return motor.Float64FromBits(r.GetElem(arr, i)) }

		// Deterministic initial conditions: bodies on a ring with a
		// tangential kick.
		for i := 0; i < local; i++ {
			g := lo + i
			theta := 2 * math.Pi * float64(g) / float64(n)
			set(myPos, 2*i, math.Cos(theta))
			set(myPos, 2*i+1, math.Sin(theta))
			vel[2*i] = -0.3 * math.Sin(theta)
			vel[2*i+1] = 0.3 * math.Cos(theta)
		}

		const eps2 = 1e-4 // softening
		energy := func() (float64, error) {
			// Local kinetic + my share of potential.
			e := 0.0
			for i := 0; i < local; i++ {
				e += 0.5 * (vel[2*i]*vel[2*i] + vel[2*i+1]*vel[2*i+1])
			}
			for i := 0; i < local; i++ {
				gx, gy := get(myPos, 2*i), get(myPos, 2*i+1)
				for j := 0; j < n; j++ {
					if j == lo+i {
						continue
					}
					dx := get(allPos, 2*j) - gx
					dy := get(allPos, 2*j+1) - gy
					e -= 0.5 / (float64(n) * math.Sqrt(dx*dx+dy*dy+eps2))
				}
			}
			send, err := r.NewFloat64Array([]float64{e})
			if err != nil {
				return 0, err
			}
			recv, err := r.NewFloat64Array(make([]float64, 1))
			if err != nil {
				return 0, err
			}
			if err := r.Allreduce(send, recv, motor.OpSum); err != nil {
				return 0, err
			}
			return r.Float64s(recv)[0], nil
		}

		var e0 float64
		for step := 0; step <= *steps; step++ {
			// Share all positions.
			if err := r.Allgather(myPos, allPos); err != nil {
				return err
			}
			if step == 0 {
				var err error
				e0, err = energy()
				if err != nil {
					return err
				}
			}
			// Leapfrog kick-drift on my slice.
			for i := 0; i < local; i++ {
				gx, gy := get(myPos, 2*i), get(myPos, 2*i+1)
				ax, ay := 0.0, 0.0
				for j := 0; j < n; j++ {
					if j == lo+i {
						continue
					}
					dx := get(allPos, 2*j) - gx
					dy := get(allPos, 2*j+1) - gy
					inv := 1 / math.Pow(dx*dx+dy*dy+eps2, 1.5)
					ax += dx * inv / float64(n)
					ay += dy * inv / float64(n)
				}
				vel[2*i] += ax * *dt
				vel[2*i+1] += ay * *dt
				set(myPos, 2*i, gx+vel[2*i]**dt)
				set(myPos, 2*i+1, gy+vel[2*i+1]**dt)
			}
		}
		if err := r.Allgather(myPos, allPos); err != nil {
			return err
		}
		e1, err := energy()
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			drift := math.Abs(e1-e0) / math.Abs(e0)
			fmt.Printf("%d bodies, %d steps over %d ranks: energy %.6f -> %.6f (drift %.2e)\n",
				n, *steps, r.Size(), e0, e1, drift)
			if drift > 0.05 {
				return fmt.Errorf("energy drift %.2e too large", drift)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
