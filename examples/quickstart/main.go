// Quickstart: a two-rank Motor world exchanging managed arrays — the
// smallest complete program against the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"motor"
)

func main() {
	err := motor.Run(motor.Config{Ranks: 2}, func(r *motor.Rank) error {
		const tag = 0
		if r.ID() == 0 {
			// Rank 0: send an int32 array, await the doubled reply.
			msg, err := r.NewInt32Array([]int32{1, 2, 3, 4, 5})
			if err != nil {
				return err
			}
			if err := r.Send(msg, 1, tag); err != nil {
				return err
			}
			reply, err := r.NewInt32Array(make([]int32, 5))
			if err != nil {
				return err
			}
			st, err := r.Recv(reply, 1, tag)
			if err != nil {
				return err
			}
			fmt.Printf("rank 0: got %v (%d bytes) from rank %d\n", r.Int32s(reply), st.Count, st.Source)
			return nil
		}
		// Rank 1: receive, double, send back.
		buf, err := r.NewInt32Array(make([]int32, 5))
		if err != nil {
			return err
		}
		if _, err := r.Recv(buf, 0, tag); err != nil {
			return err
		}
		vals := r.Int32s(buf)
		for i := range vals {
			vals[i] *= 2
		}
		out, err := r.NewInt32Array(vals)
		if err != nil {
			return err
		}
		return r.Send(out, 0, tag)
	})
	if err != nil {
		log.Fatal(err)
	}
}
