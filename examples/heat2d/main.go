// Heat2d: a classic e-Science workload of the kind the paper's
// introduction motivates — 2-D Jacobi heat diffusion, domain-
// decomposed by rows across ranks, with halo exchange over the
// regular Motor MPI operations on managed float64 arrays.
//
// Each rank owns a band of rows stored as one managed float64 array
// (row-major, with two ghost rows). Per iteration, ranks exchange
// boundary rows with the combined Sendrecv operation, then relax the
// interior. Convergence is decided with Gather + Bcast of the
// per-rank residuals.
//
//	go run ./examples/heat2d [-n 96] [-ranks 4] [-iters 500]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"motor"
)

func main() {
	n := flag.Int("n", 96, "grid size (n x n)")
	ranks := flag.Int("ranks", 4, "number of ranks")
	iters := flag.Int("iters", 500, "max iterations")
	tol := flag.Float64("tol", 1e-4, "convergence tolerance")
	flag.Parse()

	if *n%*ranks != 0 {
		log.Fatalf("grid size %d must divide by ranks %d", *n, *ranks)
	}
	rows := *n / *ranks

	err := motor.Run(motor.Config{Ranks: *ranks}, func(r *motor.Rank) error {
		me, np := r.ID(), r.Size()
		cols := *n
		// Band with ghost rows: (rows+2) x cols, flattened.
		band, err := r.NewArray(motor.Float64, (rows+2)*cols)
		if err != nil {
			return err
		}
		next, err := r.NewArray(motor.Float64, (rows+2)*cols)
		if err != nil {
			return err
		}
		release := r.Protect(&band, &next)
		defer release()

		set := func(arr motor.Ref, row, col int, v float64) {
			r.SetElem(arr, row*cols+col, motor.BitsFromFloat64(v))
		}
		get := func(arr motor.Ref, row, col int) float64 {
			return motor.Float64FromBits(r.GetElem(arr, row*cols+col))
		}

		// Boundary conditions: the global top edge is hot (100),
		// everything else starts cold.
		if me == 0 {
			for c := 0; c < cols; c++ {
				set(band, 1, c, 100)
				set(next, 1, c, 100)
			}
		}

		up, down := me-1, me+1
		const tagUp, tagDown = 1, 2
		resBuf, err := r.NewArray(motor.Float64, 1)
		if err != nil {
			return err
		}
		var allRes motor.Ref
		if me == 0 {
			allRes, err = r.NewArray(motor.Float64, np)
			if err != nil {
				return err
			}
		}
		decision, err := r.NewArray(motor.Int32, 1)
		if err != nil {
			return err
		}
		release2 := r.Protect(&resBuf, &allRes, &decision)
		defer release2()

		iter := 0
		for ; iter < *iters; iter++ {
			// Halo exchange: one combined Sendrecv per existing
			// neighbour (send my boundary row, receive their boundary
			// row into my ghost row). Pairwise Sendrecv cannot
			// deadlock, and the up-then-down order forms a dependency
			// chain, not a cycle. Rows are materialized as standalone
			// objects because Sendrecv transports whole objects.
			exchange := func(boundaryRow, ghostRow, neighbor, sendTag, recvTag int) error {
				out, err := copyRow(r, band, boundaryRow, cols)
				if err != nil {
					return err
				}
				hold := r.Protect(&out)
				defer hold()
				in, err := r.NewArray(motor.Float64, cols)
				if err != nil {
					return err
				}
				hold2 := r.Protect(&in)
				defer hold2()
				if _, err := r.Sendrecv(out, neighbor, sendTag, in, neighbor, recvTag); err != nil {
					return err
				}
				for c := 0; c < cols; c++ {
					set(band, ghostRow, c, motor.Float64FromBits(r.GetElem(in, c)))
				}
				return nil
			}
			if up >= 0 {
				if err := exchange(1, 0, up, tagUp, tagDown); err != nil {
					return err
				}
			}
			if down < np {
				if err := exchange(rows, rows+1, down, tagDown, tagUp); err != nil {
					return err
				}
			}

			// Jacobi relaxation on the interior.
			localRes := 0.0
			for row := 1; row <= rows; row++ {
				globalRow := me*rows + (row - 1)
				for col := 0; col < cols; col++ {
					if globalRow == 0 || globalRow == *n-1 || col == 0 || col == cols-1 {
						set(next, row, col, get(band, row, col))
						continue
					}
					v := 0.25 * (get(band, row-1, col) + get(band, row+1, col) +
						get(band, row, col-1) + get(band, row, col+1))
					set(next, row, col, v)
					if d := math.Abs(v - get(band, row, col)); d > localRes {
						localRes = d
					}
				}
			}
			band, next = next, band

			// Convergence: gather residuals, root decides, broadcast.
			r.SetElem(resBuf, 0, motor.BitsFromFloat64(localRes))
			if err := r.Gather(resBuf, allRes, 0); err != nil {
				return err
			}
			if me == 0 {
				worst := 0.0
				for _, v := range r.Float64s(allRes) {
					if v > worst {
						worst = v
					}
				}
				stop := int32(0)
				if worst < *tol {
					stop = 1
				}
				r.SetElem(decision, 0, uint64(uint32(stop)))
			}
			if err := r.Bcast(decision, 0); err != nil {
				return err
			}
			if int32(uint32(r.GetElem(decision, 0))) == 1 {
				break
			}
		}

		// Report: rank 0 gathers the band centers for a temperature
		// profile summary.
		center, err := r.NewArray(motor.Float64, 1)
		if err != nil {
			return err
		}
		r.SetElem(center, 0, motor.BitsFromFloat64(get(band, rows/2+1, cols/2)))
		var centers motor.Ref
		if me == 0 {
			centers, err = r.NewArray(motor.Float64, np)
			if err != nil {
				return err
			}
		}
		hold := r.Protect(&center, &centers)
		defer hold()
		if err := r.Gather(center, centers, 0); err != nil {
			return err
		}
		if me == 0 {
			fmt.Printf("converged after %d iterations; band-center temperatures:", iter)
			for _, v := range r.Float64s(centers) {
				fmt.Printf(" %6.2f", v)
			}
			fmt.Println()
			gs := r.GCStats()
			fmt.Printf("rank 0 GC: %d scavenges, %d full collections, %d B promoted\n",
				gs.Scavenges, gs.FullGCs, gs.BytesPromoted)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

// copyRow materializes band row `row` as a standalone managed array
// (Sendrecv transports whole objects, not sub-ranges).
func copyRow(r *motor.Rank, band motor.Ref, row, cols int) (motor.Ref, error) {
	hold := r.Protect(&band)
	defer hold()
	out, err := r.NewArray(motor.Float64, cols)
	if err != nil {
		return motor.NullRef, err
	}
	for c := 0; c < cols; c++ {
		r.SetElem(out, c, r.GetElem(band, row*cols+c))
	}
	return out, nil
}
