// Objecttree: the paper's Figure 5 worked example. A LinkedArray
// list whose `array` and `next` references carry the Transportable
// attribute travels intact through OSend/ORecv, while the
// non-Transportable `next2` back-reference is replaced with null on
// the wire — the opt-in propagation model of §4.2.2.
//
// The example also broadcasts the tree with OBcast and prints the
// serializer statistics, including the runtime buffer-stack reuse of
// §7.5.
//
//	go run ./examples/objecttree
package main

import (
	"fmt"
	"log"

	"motor"
)

func main() {
	err := motor.Run(motor.Config{Ranks: 3}, func(r *motor.Rank) error {
		la, err := r.DeclareClass("LinkedArray")
		if err != nil {
			return err
		}
		i32arr := r.ArrayType(motor.Int32, nil, 1)
		if err := r.CompleteClass(la, nil, []motor.FieldSpec{
			{Name: "array", Kind: motor.Object, Type: i32arr, Transportable: true},
			{Name: "next", Kind: motor.Object, Type: la, Transportable: true},
			{Name: "next2", Kind: motor.Object, Type: la}, // not propagated
		}); err != nil {
			return err
		}

		const nodes = 4
		if r.ID() == 0 {
			// Build the list: node i carries payload [i*10, i*10+1, …].
			var head motor.Ref
			hold := r.Protect(&head)
			for i := nodes - 1; i >= 0; i-- {
				node, err := r.New(la)
				if err != nil {
					return err
				}
				guard := r.Protect(&node)
				vals := []int32{int32(i * 10), int32(i*10 + 1), int32(i*10 + 2)}
				arr, err := r.NewInt32Array(vals)
				if err != nil {
					return err
				}
				r.SetField(node, la, "array", uint64(arr))
				r.SetField(node, la, "next", uint64(head))
				guard()
				head = node
			}
			// next2 back-edges: every node points at the head. These
			// must NOT travel.
			cur := head
			for cur != motor.NullRef {
				r.SetField(cur, la, "next2", uint64(head))
				bits, _ := r.GetField(cur, la, "next")
				cur = motor.Ref(bits)
			}
			// Point-to-point to rank 1, then broadcast to everyone.
			if err := r.OSend(head, 1, 0); err != nil {
				return err
			}
			if _, err := r.OBcast(head, 0); err != nil {
				return err
			}
			hold()
			ms := r.MPStats()
			fmt.Printf("rank 0: sent tree twice, %d bytes serialized, buffer reuses=%d\n",
				ms.SerializedBytes, ms.BufferReuses)
			return nil
		}

		var got motor.Ref
		if r.ID() == 1 {
			var st motor.Status
			got, st, err = r.ORecv(0, 0)
			if err != nil {
				return err
			}
			fmt.Printf("rank 1: received tree from rank %d\n", st.Source)
		}
		hold := r.Protect(&got)
		bcastGot, err := r.OBcast(motor.NullRef, 0)
		if err != nil {
			return err
		}
		if r.ID() != 1 {
			got = bcastGot
		}
		defer hold()

		// Walk and verify.
		count := 0
		for cur := got; cur != motor.NullRef; count++ {
			arrBits, _ := r.GetField(cur, la, "array")
			if motor.Ref(arrBits) == motor.NullRef {
				return fmt.Errorf("rank %d: node %d lost its Transportable array", r.ID(), count)
			}
			vals := r.Int32s(motor.Ref(arrBits))
			if vals[0] != int32(count*10) {
				return fmt.Errorf("rank %d: node %d payload %v", r.ID(), count, vals)
			}
			n2Bits, _ := r.GetField(cur, la, "next2")
			if motor.Ref(n2Bits) != motor.NullRef {
				return fmt.Errorf("rank %d: non-Transportable next2 travelled", r.ID())
			}
			nextBits, _ := r.GetField(cur, la, "next")
			cur = motor.Ref(nextBits)
		}
		if count != nodes {
			return fmt.Errorf("rank %d: %d nodes, want %d", r.ID(), count, nodes)
		}
		fmt.Printf("rank %d: tree verified (%d nodes, Transportable refs followed, next2 nulled)\n", r.ID(), count)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
