// Package obs is the unified observability layer of the Motor repro:
// a low-overhead event tracer, latency histograms, and a registry
// that aggregates every subsystem's stats struct into one snapshot.
//
// The paper's central claims are timing claims — FCall crossings are
// cheap (§7.1), the pinning policy avoids pins on fast operations
// (§7.4), serialization dominates OO transfers (§7.3) — and aggregate
// counters cannot show *where time goes inside one operation* or
// correlate a conditional-pin resolution with the GC mark phase that
// resolved it. The tracer records the full lifecycle of every
// message-passing operation (op posted → pin decision → ADI request
// → channel frames → completion), GC phases, and collective algorithm
// steps, exportable as Chrome trace_event JSON (about:tracing /
// Perfetto) via export.go.
//
// Design constraints, in order:
//
//  1. Tracing disabled must cost one atomic load per event site.
//     Sites do `if tr := obs.Active(); tr != nil { ... }`; Active is
//     a single atomic pointer load and nil means everything — spans,
//     instants, histograms — is skipped.
//  2. Tracing enabled must never block the traced rank: events go
//     into fixed-size per-shard rings with a lock-free atomic cursor;
//     when a ring wraps, the oldest events are overwritten.
//  3. obs is a leaf package. It imports nothing from the VM or the
//     message-passing core; subsystems pass small numeric codes
//     (OpCode, PinDecision, GCPhase, ...) that the export layer turns
//     back into names.
package obs

import (
	"sync/atomic"
	"time"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	// KOp is an engine-level operation span (Arg0 = OpCode,
	// Arg1 = payload bytes, Arg2 = peer/root or ^0).
	KOp Kind = iota + 1
	// KPin is a pin-decision instant (Arg0 = PinDecision, Arg1 = ref).
	KPin
	// KADIReq is an ADI request span from post to completion
	// (Arg0 = ReqDir, Arg1 = peer world rank, Arg2 = buffer bytes).
	KADIReq
	// KFrame is a channel frame instant (Arg0 = FrameDir, Arg1 =
	// packet type, Arg2 = peer, Arg3 = payload bytes).
	KFrame
	// KGC is a collection span (Arg0 = GCKind).
	KGC
	// KGCPhase is a phase span inside a collection (Arg0 = GCPhase).
	KGCPhase
	// KCondPin is a conditional-pin resolution instant during the mark
	// phase (Arg0 = 1 held / 0 dropped, Arg1 = object ref).
	KCondPin
	// KColl is a collective-operation span (Arg0 = CollOp, Arg1 =
	// algorithm code, Arg2 = payload bytes).
	KColl
	// KCollStep is a per-step span inside a collective algorithm
	// (Arg0 = step index, Arg1 = bytes moved this step).
	KCollStep
	// KWait is a blocking polling-wait span (Arg0 = OpCode).
	KWait
	// KSerial is a serialization / deserialization span
	// (Arg0 = 0 serialize / 1 deserialize, Arg1 = bytes).
	KSerial
	// KChunk is one streaming-OO chunk span nested in the op span
	// (Arg0 = 0 serialize / 1 send / 2 recv, Arg1 = chunk index,
	// Arg2 = bytes).
	KChunk
	// KProgress is a background progress-engine activity span covering
	// a burst of progress passes that made progress (Arg0 = passes
	// coalesced into the span). Emitted async (Tracer.Span) because the
	// progress goroutine owns no lane stack.
	KProgress
	// KEdge is a cross-rank message-edge instant recorded at the
	// channel boundary: one edge:send on the producing rank, one
	// edge:recv on the consuming rank, joined by a correlation id so
	// the merge pass can stitch per-rank traces with flow events
	// (Arg0 = EdgeDir, Arg1 = packed correlation id (PackCorr),
	// Arg2 = ctx<<32|tag, Arg3 = payload bytes).
	KEdge
)

// EdgeDir discriminates the two halves of a message edge.
type EdgeDir uint64

// Edge directions.
const (
	EdgeSend EdgeDir = iota
	EdgeRecv
)

// PackCorr packs a message correlation id: source world rank,
// destination world rank, and the source device's per-destination
// sequence number. (src, dst, seq) is unique process-set-wide because
// every device stamps its own monotonically increasing seq per
// destination; the same value travels in the frame header, so both
// halves of the edge compute the identical id.
func PackCorr(src, dst int, seq uint32) uint64 {
	return uint64(uint16(src))<<48 | uint64(uint16(dst))<<32 | uint64(seq)
}

// CorrParts unpacks a PackCorr id.
func CorrParts(corr uint64) (src, dst int, seq uint32) {
	return int(corr >> 48), int(uint16(corr >> 32)), uint32(corr)
}

// OpCode identifies the engine operation a KOp/KWait span covers.
type OpCode uint64

// Engine operation codes.
const (
	OpSend OpCode = iota + 1
	OpRecv
	OpIsend
	OpIrecv
	OpWait
	OpBarrier
	OpBcast
	OpScatter
	OpGather
	OpAllgather
	OpAlltoall
	OpAllreduce
	OpReduce
	OpSendrecv
	OpOSend
	OpORecv
	OpOBcast
	OpOScatter
	OpOGather
	// OpDevWait is the generic device-level polling wait (adi
	// WaitReq), used by the stall watchdog when no higher-level op
	// claimed the wait.
	OpDevWait
)

// PinDecision is the outcome of the pinning policy at one decision
// point (paper §7.4).
type PinDecision uint64

// Pin decisions.
const (
	PinSkippedElder PinDecision = iota + 1 // no pin: elder resident
	PinAvoidedFast                         // no pin: completed before the wait
	PinDeferred                            // pinned at polling-wait entry
	PinEager                               // pinned at op start (always-pin)
	PinCond                                // conditional pin request registered
)

// ReqDir discriminates ADI request direction.
type ReqDir uint64

// ADI request directions.
const (
	ReqSend ReqDir = iota
	ReqRecv
)

// FrameDir discriminates channel frame direction.
type FrameDir uint64

// Frame directions.
const (
	FrameOut FrameDir = iota
	FrameIn
)

// GCKind discriminates collections.
type GCKind uint64

// Collection kinds.
const (
	GCScavenge GCKind = iota
	GCFull
)

// GCPhase identifies a phase span inside one collection.
type GCPhase uint64

// GC phases.
const (
	PhaseHooks    GCPhase = iota + 1 // GC hooks (transport progress)
	PhaseCondPins                    // conditional pin resolution (mark-entry check)
	PhaseScavenge                    // nursery evacuation
	PhaseMark                        // full-collection mark
	PhaseSweep                       // elder sweep
	PhaseRoots                       // root enumeration feeding the parallel mark pool
	PhaseCompact                     // elder sliding compaction
)

// Event is one trace record. TS is nanoseconds since the trace
// started; Dur is zero for instants. Span links related events: a
// span event carries its own id, instants carry their enclosing
// span's id in Parent.
type Event struct {
	TS     int64
	Dur    int64
	Lane   int32 // world rank (or 0 outside a world)
	Kind   Kind
	Span   uint64
	Parent uint64
	Arg0   uint64
	Arg1   uint64
	Arg2   uint64
	Arg3   uint64
}

// maxLanes bounds the per-rank span-stack table. Lanes at or above
// the bound fold onto lane 0 — correlation degrades gracefully rather
// than allocating per-rank.
const maxLanes = 256

// spanDepth bounds one lane's open-span stack; deeper Begins are
// counted but not recorded (their Ends unwind the overflow counter).
const spanDepth = 32

type openSpan struct {
	id     uint64
	parent uint64
	kind   Kind
	skip   bool // flight-mode sampling elided this span's emit
	ts     int64
	args   [4]uint64
}

// lane is the per-rank tracer state. Only the rank's own goroutine
// touches its lane (all Motor layers of one rank run on one managed
// thread), so no synchronization is needed beyond the event append.
type lane struct {
	stack    [spanDepth]openSpan
	depth    int
	overflow int
	tick     uint32 // flight-mode sampling counter (spans + instants)
	// sampled counts this lane's flight-elided events. Per-lane, and
	// credited in sampleN-1 batches on the kept event (which already
	// pays for a clock read and a ring write), so the elided fast path
	// performs no atomic at all. The count trails by up to one partial
	// sampling period per lane.
	sampled atomic.Uint64
	_       [28]byte // keep lanes off each other's cache lines
}

const shardSize = 1 << 14 // default events per shard (power of two)

type shard struct {
	pos atomic.Uint64
	_   [56]byte // pad: cursor and buffer on separate cache lines
	buf []Event
}

// Tracer is one observability session: a sharded event ring, span-id
// allocation, per-lane span stacks, and the latency histograms.
type Tracer struct {
	start  time.Time
	shards []*shard
	mask   uint64
	size   uint64 // events per shard (power of two)
	spanID atomic.Uint64
	lanes  []lane

	// Flight mode: the always-on second ring. Smaller shards, and
	// high-frequency spans and instants are emitted 1-in-sampleN
	// (low-frequency events — GC, collectives, conditional-pin
	// resolutions — are always kept). sampleN is a power of two so the
	// per-event decision is a mask, not a divide.
	flight     bool
	sampleN    uint32
	sampleMask uint32 // sampleN - 1

	hists [HistCount]Histogram
}

// Options configures a tracer.
type Options struct {
	// Shards is the number of event rings (rounded up to a power of
	// two; default 8).
	Shards int
	// ShardSize is the events-per-shard ring capacity (rounded up to
	// a power of two; default 16Ki).
	ShardSize int
	// Flight marks the tracer as a flight recorder: high-frequency
	// spans and instants are sampled 1-in-SampleN; rare diagnostic
	// events are always kept.
	Flight bool
	// SampleN is the flight-mode sampling period (rounded up to a
	// power of two; default 16).
	SampleN int
}

// NewTracer builds a tracer without publishing it; use Start to make
// it the process-active tracer.
func NewTracer(opts Options) *Tracer {
	n := opts.Shards
	if n <= 0 {
		n = 8
	}
	p := 1
	for p < n {
		p <<= 1
	}
	size := opts.ShardSize
	if size <= 0 {
		size = shardSize
	}
	sz := 1
	for sz < size {
		sz <<= 1
	}
	sampleN := opts.SampleN
	if sampleN <= 0 {
		sampleN = 16
	}
	sn := 1
	for sn < sampleN {
		sn <<= 1
	}
	t := &Tracer{
		start:      time.Now(),
		shards:     make([]*shard, p),
		mask:       uint64(p - 1),
		size:       uint64(sz),
		flight:     opts.Flight,
		sampleN:    uint32(sn),
		sampleMask: uint32(sn - 1),
		lanes:      make([]lane, maxLanes),
	}
	for i := range t.shards {
		t.shards[i] = &shard{buf: make([]Event, sz)}
	}
	return t
}

// Flight reports whether this tracer is the always-on flight
// recorder (sampled spans) rather than a full trace session.
func (t *Tracer) Flight() bool { return t.flight }

// sampledKind reports whether a span kind is subject to flight-mode
// sampling. High-frequency per-message spans are sampled; collection
// and collective spans are rare and diagnostic gold, so they are
// always kept.
func sampledKind(k Kind) bool {
	switch k {
	case KOp, KWait, KADIReq, KCollStep, KChunk, KSerial:
		return true
	}
	return false
}

// sampledInstant reports whether an instant kind is subject to
// flight-mode sampling. Per-message instants (pin decisions, channel
// frames, message edges) fire several times per message and would
// dominate the always-on budget; rare diagnostics (conditional-pin
// resolutions) are always kept.
func sampledInstant(k Kind) bool {
	switch k {
	case KPin, KFrame, KEdge:
		return true
	}
	return false
}

// active is the process-wide tracer; nil when tracing is disabled.
var active atomic.Pointer[Tracer]

// displaced holds a flight recorder temporarily displaced by a full
// trace session; Stop restores it.
var displaced atomic.Pointer[Tracer]

// Active returns the current tracer, or nil when tracing is off.
// This is the one-atomic-load gate every event site goes through.
func Active() *Tracer { return active.Load() }

// Start builds a tracer and publishes it as the process tracer. A
// full session displaces an active flight recorder (restored by
// Stop); it returns nil (leaving the current session untouched) if a
// full session is already active — the first starter owns it.
func Start(opts Options) *Tracer {
	t := NewTracer(opts)
	for {
		cur := active.Load()
		switch {
		case cur == nil:
			if active.CompareAndSwap(nil, t) {
				return t
			}
		case cur.flight && !t.flight:
			if active.CompareAndSwap(cur, t) {
				displaced.Store(cur)
				return t
			}
		default:
			return nil
		}
	}
}

// Stop unpublishes t, restoring any flight recorder t displaced.
// Emits racing with Stop land in t's rings and are simply never
// exported — safe by construction.
func Stop(t *Tracer) {
	if t == nil {
		return
	}
	if t.flight {
		// A stopping flight recorder may have been displaced by a
		// full session or parked in a duty-cycle gap; forget it
		// everywhere. flightRec is cleared first so a racing
		// CycleFlight rearm sees the retirement and undoes itself.
		flightRec.CompareAndSwap(t, nil)
		displaced.CompareAndSwap(t, nil)
		active.CompareAndSwap(t, nil)
		return
	}
	if d := displaced.Swap(nil); d != nil {
		if active.CompareAndSwap(t, d) {
			return
		}
		// t was not current anymore; put the flight recorder back
		// only if nothing else took over.
		active.CompareAndSwap(nil, d)
		return
	}
	active.CompareAndSwap(t, nil)
}

// Now returns nanoseconds since the trace started (monotonic clock).
func (t *Tracer) Now() int64 { return int64(time.Since(t.start)) }

// NewSpanID allocates a process-unique span id.
func (t *Tracer) NewSpanID() uint64 { return t.spanID.Add(1) }

// SpanIDFor allocates a span id for an async span (one later emitted
// via Span rather than Begin/End), returning 0 when flight-mode
// sampling elides that span. A zero return tells the caller to skip
// all of its per-span bookkeeping — timestamp capture, parent lookup,
// and the completion-time Span call — not just the ring write. The
// sampling decision rides the rank's lane tick, so the elided path
// touches no process-shared state.
func (t *Tracer) SpanIDFor(rank int, kind Kind) uint64 {
	if t.flight && sampledKind(kind) {
		l := t.laneOf(rank)
		l.tick++
		if l.tick&t.sampleMask != 0 {
			return 0
		}
		l.sampled.Add(uint64(t.sampleMask))
	}
	return t.spanID.Add(1)
}

// laneOf clamps a world rank onto the lane table.
func (t *Tracer) laneOf(rank int) *lane {
	if rank < 0 || rank >= maxLanes {
		rank = 0
	}
	return &t.lanes[rank]
}

// Emit appends a raw event. Lock-free: one atomic add on the lane's
// shard cursor; the ring overwrites its oldest events when full.
func (t *Tracer) Emit(ev Event) {
	sh := t.shards[uint64(ev.Lane)&t.mask]
	pos := sh.pos.Add(1) - 1
	sh.buf[pos&(t.size-1)] = ev
}

// Current returns the lane's innermost open span id (0 when none) —
// the parent for events emitted by lower layers during the span.
func (t *Tracer) Current(rank int) uint64 {
	l := t.laneOf(rank)
	if l.depth == 0 {
		return 0
	}
	return l.stack[l.depth-1].id
}

// Instant records a zero-duration event under the lane's current
// span. In flight mode high-frequency instant kinds share the lane's
// 1-in-sampleN tick with spans; a sampled-out instant costs one lane
// counter increment and nothing else — no clock read, no ring write.
func (t *Tracer) Instant(rank int, kind Kind, args ...uint64) {
	if t.flight && sampledInstant(kind) {
		l := t.laneOf(rank)
		l.tick++
		if l.tick&t.sampleMask != 0 {
			return
		}
		l.sampled.Add(uint64(t.sampleMask))
	}
	ev := Event{TS: t.Now(), Lane: int32(rank), Kind: kind, Parent: t.Current(rank)}
	copyArgs(&ev, args)
	t.Emit(ev)
}

// Begin opens a nested span on the rank's lane. Every Begin must be
// matched by an End on the same lane (use defer on error-prone
// paths); the event is emitted at End with the measured duration.
//
// Flight-mode fast path: a sampled-out span skips the clock read and
// span-id allocation entirely — the always-on budget allows roughly
// two clock reads per message, so Begin/End of an elided span must
// cost only the stack push/pop.
func (t *Tracer) Begin(rank int, kind Kind, args ...uint64) {
	l := t.laneOf(rank)
	if l.depth == spanDepth {
		l.overflow++
		return
	}
	var sp openSpan
	if t.flight && sampledKind(kind) {
		l.tick++
		if l.tick&t.sampleMask != 0 {
			sp.skip = true
		} else {
			l.sampled.Add(uint64(t.sampleMask))
		}
	}
	sp.kind = kind
	if !sp.skip {
		sp.id = t.NewSpanID()
		sp.ts = t.Now()
		if l.depth > 0 {
			sp.parent = l.stack[l.depth-1].id
		}
		copy(sp.args[:], args)
	}
	l.stack[l.depth] = sp
	l.depth++
}

// End closes the lane's innermost span and emits it. It returns the
// span's duration in nanoseconds (0 when the stack was empty or the
// span had overflowed).
func (t *Tracer) End(rank int) int64 {
	l := t.laneOf(rank)
	if l.overflow > 0 {
		l.overflow--
		return 0
	}
	if l.depth == 0 {
		return 0
	}
	l.depth--
	sp := l.stack[l.depth]
	if sp.skip {
		// Sampled out in flight mode: no clock was read at Begin and
		// none is read here. Callers treat a zero return as "no
		// sample" — flight-mode histograms are 1-in-sampleN sampled.
		return 0
	}
	dur := t.Now() - sp.ts
	t.Emit(Event{
		TS: sp.ts, Dur: dur, Lane: int32(rank), Kind: sp.kind,
		Span: sp.id, Parent: sp.parent,
		Arg0: sp.args[0], Arg1: sp.args[1], Arg2: sp.args[2], Arg3: sp.args[3],
	})
	return dur
}

// Span emits a complete span with explicit timing and identity — the
// form used for ADI requests, whose lifetime does not nest inside the
// lane's span stack (a request posted under one op can complete under
// another, or under no op at all). Flight-mode sampling of async
// spans happens at id allocation (SpanIDFor), not here: by emit time
// the caller has already paid the bookkeeping.
func (t *Tracer) Span(rank int, kind Kind, id, parent uint64, startTS int64, args ...uint64) {
	ev := Event{
		TS: startTS, Dur: t.Now() - startTS, Lane: int32(rank), Kind: kind,
		Span: id, Parent: parent,
	}
	copyArgs(&ev, args)
	t.Emit(ev)
}

func copyArgs(ev *Event, args []uint64) {
	switch len(args) {
	default:
		ev.Arg3 = args[3]
		fallthrough
	case 3:
		ev.Arg2 = args[2]
		fallthrough
	case 2:
		ev.Arg1 = args[1]
		fallthrough
	case 1:
		ev.Arg0 = args[0]
	case 0:
	}
}

// Record adds a nanosecond sample to one of the tracer's latency
// histograms.
func (t *Tracer) Record(h HistID, ns int64) { t.hists[h].Record(ns) }

// Hist returns one of the tracer's histograms.
func (t *Tracer) Hist(h HistID) *Histogram { return &t.hists[h] }

// Events snapshots every shard's ring in cursor order (oldest first
// within a shard). Safe to call while ranks are still emitting; the
// snapshot is merely approximately current.
func (t *Tracer) Events() []Event {
	var out []Event
	for _, sh := range t.shards {
		pos := sh.pos.Load()
		if pos <= t.size {
			out = append(out, sh.buf[:pos]...)
			continue
		}
		// Wrapped: oldest surviving event is at pos % size.
		head := pos & (t.size - 1)
		out = append(out, sh.buf[head:]...)
		out = append(out, sh.buf[:head]...)
	}
	return out
}

// Dropped reports how many events were overwritten by ring wrap.
func (t *Tracer) Dropped() uint64 {
	var n uint64
	for _, sh := range t.shards {
		if pos := sh.pos.Load(); pos > t.size {
			n += pos - t.size
		}
	}
	return n
}

// ShardStats is one event ring's health counters, surfaced in the
// metrics registry as the obs.* group.
type ShardStats struct {
	Events  uint64 // events ever emitted to this shard
	Dropped uint64 // events overwritten by ring wrap
	Wraps   uint64 // complete ring cycles
}

// TracerStats is the tracer's own health snapshot: per-shard ring
// pressure plus flight-mode sampling activity.
type TracerStats struct {
	Shards       []ShardStats
	Dropped      uint64 // total overwritten events
	Flight       uint64 // 1 when this is the flight recorder
	SampledSpans uint64 // flight-elided spans + instants (batched; trails by <1 period per lane)
}

// StatsSnapshot captures the tracer's ring and sampling counters.
func (t *Tracer) StatsSnapshot() TracerStats {
	st := TracerStats{Shards: make([]ShardStats, len(t.shards))}
	for i := range t.lanes {
		st.SampledSpans += t.lanes[i].sampled.Load()
	}
	if t.flight {
		st.Flight = 1
	}
	for i, sh := range t.shards {
		pos := sh.pos.Load()
		s := ShardStats{Events: pos, Wraps: pos / t.size}
		if pos > t.size {
			s.Dropped = pos - t.size
		}
		st.Shards[i] = s
		st.Dropped += s.Dropped
	}
	return st
}
