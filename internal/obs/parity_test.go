package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestMetricsTextJSONParity is the histogram-quantile parity check:
// the text renderer, the JSON renderer, and the OpenMetrics renderer
// must all report the identical count/quantile values for the same
// snapshot — text is derived by formatting, JSON by struct encoding,
// OpenMetrics by a third path, so drift between them is possible and
// has to be pinned by test.
func TestMetricsTextJSONParity(t *testing.T) {
	if Active() != nil {
		t.Fatal("tracer already active at test start")
	}
	tr := Start(Options{Shards: 1})
	if tr == nil {
		t.Fatal("Start refused")
	}
	defer Stop(tr)

	// A spread of samples per histogram so quantiles are distinct.
	for h := HistID(0); h < HistCount; h++ {
		for i := 1; i <= 1000; i++ {
			tr.Record(h, int64(i)*int64(h+1)*1000)
		}
	}

	reg := new(Registry)
	reg.Register("engine", func() any { return struct{ Ops uint64 }{3} })
	snap := reg.Snapshot()
	if len(snap.Hists) != int(HistCount) {
		t.Fatalf("snapshot hists = %d, want %d", len(snap.Hists), HistCount)
	}

	var textBuf, jsonBuf, omBuf bytes.Buffer
	if err := WriteMetricsText(&textBuf, snap); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsJSON(&jsonBuf, snap); err != nil {
		t.Fatal(err)
	}
	if err := WriteOpenMetrics(&omBuf, snap); err != nil {
		t.Fatal(err)
	}

	var decoded Snapshot
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}

	// Round trip: re-rendering the decoded JSON as text must reproduce
	// the original text byte for byte (counters and all quantiles).
	var rt bytes.Buffer
	if err := WriteMetricsText(&rt, decoded); err != nil {
		t.Fatal(err)
	}
	if rt.String() != textBuf.String() {
		t.Fatalf("text/JSON round trip drifted:\n-- original --\n%s\n-- round trip --\n%s",
			textBuf.String(), rt.String())
	}

	// Every histogram line in the text output must agree with the
	// JSON snapshot field by field.
	for name, h := range decoded.Hists {
		want := fmt.Sprintf("hist.%s count=%d mean=%.0f p50=%d p95=%d p99=%d max=%d\n",
			name, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
		if !strings.Contains(textBuf.String(), want) {
			t.Fatalf("text output lacks %q:\n%s", want, textBuf.String())
		}
		// And the OpenMetrics spelling must carry the same quantiles.
		base := "motor_hist_" + metricName(name)
		for _, line := range []string{
			fmt.Sprintf("%s_count %d\n", base, h.Count),
			fmt.Sprintf("%s{quantile=\"0.5\"} %d\n", base, h.P50),
			fmt.Sprintf("%s{quantile=\"0.95\"} %d\n", base, h.P95),
			fmt.Sprintf("%s{quantile=\"0.99\"} %d\n", base, h.P99),
			fmt.Sprintf("%s_max %d\n", base, h.Max),
		} {
			if !strings.Contains(omBuf.String(), line) {
				t.Fatalf("OpenMetrics output lacks %q:\n%s", line, omBuf.String())
			}
		}
	}

	// The obs.* ring-health group rides along whenever a tracer is on.
	var haveObs bool
	for _, g := range decoded.Groups {
		if g.Name == "obs" {
			haveObs = true
			var fields []string
			for _, f := range g.Fields {
				fields = append(fields, f.Name)
			}
			joined := strings.Join(fields, ",")
			for _, want := range []string{"Dropped", "Flight", "SampledSpans", "WatchdogFires", "Shard0.Events", "Shard0.Wraps"} {
				if !strings.Contains(joined, want) {
					t.Fatalf("obs group lacks %s field: %v", want, fields)
				}
			}
		}
	}
	if !haveObs {
		t.Fatal("snapshot lacks the obs ring-health group")
	}
}
