package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

type telemetryEngineStats struct {
	Ops   uint64
	Polls uint64
}

func httpGet(t *testing.T, url string, hdr map[string]string) (int, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestTelemetryEndpoint(t *testing.T) {
	reg := new(Registry)
	reg.Register("engine", func() any { return telemetryEngineStats{Ops: 7, Polls: 40} })
	reg.Register("engine", func() any { return telemetryEngineStats{Ops: 9} }) // rank 1 → engine#1

	tel, err := ServeTelemetry("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()
	base := "http://" + tel.Addr()

	code, body := httpGet(t, base+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"motor_engine_Ops 7\n",
		"motor_engine_Polls 40\n",
		`motor_engine_Ops{instance="1"} 9` + "\n",
		"# EOF\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, body)
		}
	}

	// JSON both by query parameter and by Accept header.
	for _, u := range []string{base + "/metrics?format=json", base + "/metrics"} {
		hdr := map[string]string{}
		if !strings.Contains(u, "format=json") {
			hdr["Accept"] = "application/json"
		}
		_, jbody := httpGet(t, u, hdr)
		var snap Snapshot
		if err := json.Unmarshal([]byte(jbody), &snap); err != nil {
			t.Fatalf("JSON /metrics unparseable: %v\n%s", err, jbody)
		}
		if snap.Version != SnapshotVersion || len(snap.Groups) != 2 {
			t.Fatalf("JSON snapshot = %+v", snap)
		}
		if snap.Groups[0].Name != "engine" || snap.Groups[0].Fields[0].Value != 7 {
			t.Fatalf("JSON group 0 = %+v", snap.Groups[0])
		}
	}

	const lane = 21
	BeatEnter(lane, OpSend, 0)
	code, health := httpGet(t, base+"/healthz", nil)
	BeatExit(lane)
	if code != http.StatusOK || !strings.HasPrefix(health, "ok uptime=") {
		t.Fatalf("/healthz = %d %q", code, health)
	}
	if !strings.Contains(health, "waiting rank=21") {
		t.Fatalf("/healthz lacks in-flight wait:\n%s", health)
	}

	code, _ = httpGet(t, base+"/debug/pprof/", nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}

	if tel.Addr() == "" || !strings.Contains(tel.Addr(), ":") {
		t.Fatalf("Addr() = %q", tel.Addr())
	}
}
