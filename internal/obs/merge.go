package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// The merge pass joins per-rank (or per-process) Chrome traces into
// one Perfetto-loadable file and derives the cross-rank structure no
// single rank can see:
//
//   - edge:send / edge:recv instants with the same correlation id
//     become Chrome flow events ("s"/"f" phases), drawing the
//     send→recv arrow across process tracks;
//   - collective spans carrying the same (cctx, seq) alignment key
//     are grouped into per-instance skew records: who entered last
//     (the arrival straggler), who ran longest, and the skew
//     distribution — the critical-path report;
//   - when the inputs come from different OS processes, their clocks
//     are aligned using the edge constraint recv ≥ send in both
//     directions (the classic interval-midpoint estimate).
//
// A single-process multi-rank trace is already one file; merging it
// with itself as the only input still adds the flow events and the
// straggler report.

// mergeDoc mirrors the exporter's document shape for re-parsing.
type mergeDoc struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// edgeHalf is one parsed edge:send / edge:recv instant.
type edgeHalf struct {
	file int
	ts   float64 // µs, unshifted
	pid  int32
	tid  int32
}

// CollInstance is one collective call aligned across ranks.
type CollInstance struct {
	Name          string  `json:"name"`
	Ctx           uint64  `json:"cctx"`
	Seq           uint64  `json:"seq"`
	Ranks         int     `json:"ranks"`
	SlowRank      int     `json:"slowRank"`      // longest span
	LastRank      int     `json:"lastRank"`      // latest entry: the arrival straggler
	ArrivalSkewUs float64 `json:"arrivalSkewUs"` // max start − min start
	DurSkewUs     float64 `json:"durSkewUs"`     // max dur − min dur
	SlowDurUs     float64 `json:"slowDurUs"`
}

// RankSkew aggregates one rank's straggler evidence over all
// collective instances.
type RankSkew struct {
	Rank          int     `json:"rank"`
	Collectives   int     `json:"collectives"`
	LastArrivals  int     `json:"lastArrivals"`  // instances this rank entered last
	Slowest       int     `json:"slowest"`       // instances this rank ran longest
	ArrivalSkewUs float64 `json:"arrivalSkewUs"` // total lateness vs the earliest rank
}

// SkewBucket is one bin of the arrival-skew histogram.
type SkewBucket struct {
	UpToUs float64 `json:"upToUs"` // -1 on the overflow (last) bucket; +Inf is not JSON-encodable
	Count  int     `json:"count"`
}

// StragglerReport is the cross-rank critical-path summary derived
// from a merged trace.
type StragglerReport struct {
	Collectives []CollInstance `json:"collectives"`
	Ranks       []RankSkew     `json:"ranks"`
	// Straggler is the rank with the largest accumulated arrival
	// skew — the one the others keep waiting for — or -1 when the
	// trace has no multi-rank collectives.
	Straggler int          `json:"straggler"`
	SkewHist  []SkewBucket `json:"skewHist"`
}

// Merged is the result of MergeTraces.
type Merged struct {
	Report    StragglerReport
	OffsetsUs []float64 // per-input clock shift applied (µs)
	Flows     int       // matched send→recv flow pairs emitted
	Unmatched int       // edge halves without a partner

	events []traceEvent
	meta   map[string]any
}

// MergeTraces parses one or more Chrome trace files produced by
// WriteChromeTrace, aligns their clocks, stitches message edges into
// flow events, and computes the straggler report.
func MergeTraces(inputs ...[]byte) (*Merged, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("obs: merge needs at least one trace")
	}
	docs := make([]mergeDoc, len(inputs))
	for i, in := range inputs {
		if err := json.Unmarshal(in, &docs[i]); err != nil {
			return nil, fmt.Errorf("obs: input %d is not a Chrome trace: %w", i, err)
		}
	}

	// Collect edge halves per correlation id.
	sends := map[string]edgeHalf{}
	recvs := map[string]edgeHalf{}
	for fi := range docs {
		for _, ev := range docs[fi].TraceEvents {
			if ev.Phase != "i" || ev.Args == nil {
				continue
			}
			corr, ok := ev.Args["corr"].(string)
			if !ok {
				continue
			}
			h := edgeHalf{file: fi, ts: ev.TS, pid: ev.PID, tid: ev.TID}
			switch ev.Name {
			case "edge:send":
				sends[corr] = h
			case "edge:recv":
				recvs[corr] = h
			}
		}
	}

	offs := alignOffsets(len(docs), sends, recvs)

	m := &Merged{OffsetsUs: offs, meta: map[string]any{}}

	// Merged event stream: every input's events, clock-shifted, with
	// process/thread metadata deduplicated across files.
	seenMeta := map[string]bool{}
	for fi := range docs {
		for _, ev := range docs[fi].TraceEvents {
			if ev.Phase == "M" {
				key := fmt.Sprintf("%d/%d/%s/%v", ev.PID, ev.TID, ev.Name, ev.Args)
				if seenMeta[key] {
					continue
				}
				seenMeta[key] = true
			} else {
				ev.TS += offs[fi]
			}
			m.events = append(m.events, ev)
		}
		for k, v := range docs[fi].Metadata {
			if _, dup := m.meta[k]; !dup {
				m.meta[k] = v
			}
		}
	}

	// Flow events: one "s"/"f" pair per matched edge.
	for corr, s := range sends {
		r, ok := recvs[corr]
		if !ok {
			m.Unmatched++
			continue
		}
		m.Flows++
		m.events = append(m.events,
			traceEvent{Name: "msg", Cat: "edge", Phase: "s", TS: s.ts + offs[s.file],
				PID: s.pid, TID: s.tid, ID: corr},
			traceEvent{Name: "msg", Cat: "edge", Phase: "f", BP: "e", TS: r.ts + offs[r.file],
				PID: r.pid, TID: r.tid, ID: corr},
		)
	}
	for corr := range recvs {
		if _, ok := sends[corr]; !ok {
			m.Unmatched++
		}
	}

	m.Report = stragglerReport(m.events)

	sort.SliceStable(m.events, func(i, j int) bool {
		// Metadata first, then timestamp order.
		mi, mj := m.events[i].Phase == "M", m.events[j].Phase == "M"
		if mi != mj {
			return mi
		}
		return m.events[i].TS < m.events[j].TS
	})
	m.meta["motor-merge"] = map[string]any{
		"files":     len(docs),
		"offsetsUs": offs,
		"flows":     m.Flows,
		"unmatched": m.Unmatched,
	}
	m.meta["motor-straggler-report"] = m.Report
	return m, nil
}

// Export writes the merged Perfetto document.
func (m *Merged) Export(w io.Writer) error {
	return json.NewEncoder(w).Encode(mergeDoc{TraceEvents: m.events, Metadata: m.meta})
}

// alignOffsets estimates a per-file clock shift (µs) from message
// edges: a receive can never precede its send, so edges file a → b
// lower-bound off[b]−off[a] by send−recv, and edges b → a upper-bound
// it by recv−send. The midpoint of the interval splits the one-way
// latency evenly; files reachable from file 0 get shifted, isolated
// files keep offset 0.
func alignOffsets(n int, sends, recvs map[string]edgeHalf) []float64 {
	offs := make([]float64, n)
	if n <= 1 {
		return offs
	}
	type bound struct {
		lo, hi float64
		hasLo  bool
		hasHi  bool
	}
	bounds := make(map[[2]int]*bound)
	boundOf := func(a, b int) *bound {
		if bd := bounds[[2]int{a, b}]; bd != nil {
			return bd
		}
		bd := &bound{}
		bounds[[2]int{a, b}] = bd
		return bd
	}
	for corr, s := range sends {
		r, ok := recvs[corr]
		if !ok || s.file == r.file {
			continue
		}
		// Edge s.file → r.file: off[r]−off[s] ≥ s.ts − r.ts.
		bd := boundOf(s.file, r.file)
		if v := s.ts - r.ts; !bd.hasLo || v > bd.lo {
			bd.lo, bd.hasLo = v, true
		}
		// Mirrored: off[s]−off[r] ≤ r.ts − s.ts.
		rv := boundOf(r.file, s.file)
		if v := r.ts - s.ts; !rv.hasHi || v < rv.hi {
			rv.hi, rv.hasHi = v, true
		}
	}
	// BFS from file 0, fixing each newly reached file's offset from
	// the tightest interval against an already-fixed neighbour.
	fixed := make([]bool, n)
	fixed[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for b := 0; b < n; b++ {
			if fixed[b] {
				continue
			}
			bd := bounds[[2]int{a, b}]
			if bd == nil || (!bd.hasLo && !bd.hasHi) {
				continue
			}
			var rel float64
			switch {
			case bd.hasLo && bd.hasHi:
				rel = (bd.lo + bd.hi) / 2
			case bd.hasLo:
				rel = bd.lo
			default:
				rel = bd.hi
			}
			offs[b] = offs[a] + rel
			fixed[b] = true
			queue = append(queue, b)
		}
	}
	return offs
}

// stragglerReport groups collective spans by their (name, cctx, seq)
// alignment key and scores each rank's lateness.
func stragglerReport(events []traceEvent) StragglerReport {
	type entry struct {
		rank  int
		start float64
		dur   float64
	}
	groups := map[string][]entry{}
	for _, ev := range events {
		if ev.Phase != "X" || ev.Args == nil || !strings.HasPrefix(ev.Name, "coll:") || ev.Name == "coll:step" {
			continue
		}
		seq, ok := ev.Args["seq"].(float64)
		if !ok {
			continue
		}
		cctx, _ := ev.Args["cctx"].(float64)
		var dur float64
		if ev.Dur != nil {
			dur = *ev.Dur
		}
		key := fmt.Sprintf("%s|%.0f|%.0f", ev.Name, cctx, seq)
		groups[key] = append(groups[key], entry{rank: int(ev.PID), start: ev.TS, dur: dur})
	}

	rep := StragglerReport{Straggler: -1}
	buckets := []float64{10, 100, 1e3, 1e4, 1e5, 1e6, math.Inf(1)}
	counts := make([]int, len(buckets))
	ranks := map[int]*RankSkew{}
	rankOf := func(r int) *RankSkew {
		if s := ranks[r]; s != nil {
			return s
		}
		s := &RankSkew{Rank: r}
		ranks[r] = s
		return s
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		es := groups[key]
		if len(es) < 2 {
			continue // a one-rank record can't show skew
		}
		// A ring-wrapped trace can lose one rank's record of an
		// instance; dedup ranks keeping the earliest record.
		byRank := map[int]entry{}
		for _, e := range es {
			if prev, ok := byRank[e.rank]; !ok || e.start < prev.start {
				byRank[e.rank] = e
			}
		}
		var (
			minStart, maxStart = math.Inf(1), math.Inf(-1)
			minDur, maxDur     = math.Inf(1), math.Inf(-1)
			lastRank, slowRank = -1, -1
		)
		for r, e := range byRank {
			if e.start < minStart {
				minStart = e.start
			}
			if e.start > maxStart {
				maxStart, lastRank = e.start, r
			}
			if e.dur < minDur {
				minDur = e.dur
			}
			if e.dur > maxDur {
				maxDur, slowRank = e.dur, r
			}
		}
		parts := strings.SplitN(key, "|", 3)
		inst := CollInstance{
			Name:          parts[0],
			Ranks:         len(byRank),
			SlowRank:      slowRank,
			LastRank:      lastRank,
			ArrivalSkewUs: maxStart - minStart,
			DurSkewUs:     maxDur - minDur,
			SlowDurUs:     maxDur,
		}
		fmt.Sscanf(parts[1], "%d", &inst.Ctx)
		fmt.Sscanf(parts[2], "%d", &inst.Seq)
		rep.Collectives = append(rep.Collectives, inst)

		for r, e := range byRank {
			s := rankOf(r)
			s.Collectives++
			skew := e.start - minStart
			s.ArrivalSkewUs += skew
			for i, up := range buckets {
				if skew <= up {
					counts[i]++
					break
				}
			}
		}
		rankOf(lastRank).LastArrivals++
		rankOf(slowRank).Slowest++
	}

	for _, s := range ranks {
		rep.Ranks = append(rep.Ranks, *s)
	}
	sort.Slice(rep.Ranks, func(i, j int) bool { return rep.Ranks[i].Rank < rep.Ranks[j].Rank })
	var worst float64
	for _, s := range rep.Ranks {
		if s.ArrivalSkewUs > worst {
			worst, rep.Straggler = s.ArrivalSkewUs, s.Rank
		}
	}
	for i, up := range buckets {
		if math.IsInf(up, 1) {
			up = -1
		}
		rep.SkewHist = append(rep.SkewHist, SkewBucket{UpToUs: up, Count: counts[i]})
	}
	return rep
}

// WriteStragglerReport renders the report as text.
func WriteStragglerReport(w io.Writer, rep StragglerReport) error {
	if _, err := fmt.Fprintf(w, "straggler report: %d collective instances\n", len(rep.Collectives)); err != nil {
		return err
	}
	for _, s := range rep.Ranks {
		mark := ""
		if s.Rank == rep.Straggler {
			mark = "  <- straggler"
		}
		if _, err := fmt.Fprintf(w,
			"rank %d: collectives=%d lastIn=%d slowest=%d arrivalSkew=%.0fus%s\n",
			s.Rank, s.Collectives, s.LastArrivals, s.Slowest, s.ArrivalSkewUs, mark); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "arrival skew histogram (us):"); err != nil {
		return err
	}
	for _, b := range rep.SkewHist {
		label := fmt.Sprintf("<=%.0f", b.UpToUs)
		if b.UpToUs < 0 {
			label = ">1e6"
		}
		if _, err := fmt.Fprintf(w, " %s:%d", label, b.Count); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
