package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// The live telemetry endpoint serves the unified metrics registry
// over HTTP while a world runs: /metrics renders the snapshot as
// OpenMetrics-style text (or JSON with ?format=json), /healthz
// reports liveness plus the watchdog's view of in-flight waits, and
// the stock net/http/pprof handlers hang under /debug/pprof/. It is
// wired up by motor.Config.Telemetry / MOTOR_TELEMETRY=:port.

// Telemetry is a running telemetry HTTP server.
type Telemetry struct {
	ln  net.Listener
	srv *http.Server
}

// ServeTelemetry starts an HTTP server on addr (":0" picks a free
// port; query Addr for the bound address) serving reg's snapshots.
func ServeTelemetry(addr string, reg *Registry) (*Telemetry, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteMetricsJSON(w, snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = WriteOpenMetrics(w, snap)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok uptime=%v watchdog_fires=%d\n",
			time.Duration(nowNS()).Round(time.Millisecond), WatchdogFires())
		waiting := Waiting()
		for _, lane := range sortedLanes(waiting) {
			fmt.Fprintf(w, "waiting rank=%d for=%v\n", lane, waiting[lane].Round(time.Millisecond))
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	t := &Telemetry{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = t.srv.Serve(ln) }()
	return t, nil
}

// Addr returns the server's bound address (useful with ":0").
func (t *Telemetry) Addr() string { return t.ln.Addr().String() }

// Close shuts the server down.
func (t *Telemetry) Close() error { return t.srv.Close() }

// WriteOpenMetrics renders a snapshot in OpenMetrics-style text:
// one "motor_<group>_<field> value" line per counter (rank suffixes
// like "engine#1" become an instance label), and each histogram as a
// summary with quantile labels. The field set is identical to
// WriteMetricsText's — only the spelling differs.
func WriteOpenMetrics(w io.Writer, snap Snapshot) error {
	if _, err := fmt.Fprintf(w, "# motor metrics v%d seq=%d\n", snap.Version, snap.Seq); err != nil {
		return err
	}
	for _, g := range snap.Groups {
		group, inst := g.Name, ""
		if i := strings.IndexByte(group, '#'); i >= 0 {
			group, inst = group[:i], group[i+1:]
		}
		label := ""
		if inst != "" {
			label = `{instance="` + inst + `"}`
		}
		for _, f := range g.Fields {
			if _, err := fmt.Fprintf(w, "motor_%s_%s%s %d\n",
				metricName(group), metricName(f.Name), label, f.Value); err != nil {
				return err
			}
		}
	}
	names := make([]string, 0, len(snap.Hists))
	for n := range snap.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Hists[n]
		base := "motor_hist_" + metricName(n)
		if _, err := fmt.Fprintf(w,
			"%s_count %d\n%s_mean %.0f\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.95\"} %d\n%s{quantile=\"0.99\"} %d\n%s_max %d\n",
			base, h.Count, base, h.Mean, base, h.P50, base, h.P95, base, h.P99, base, h.Max); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "# EOF")
	return err
}

// metricName maps registry names onto the OpenMetrics charset.
func metricName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
