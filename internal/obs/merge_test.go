package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
)

// mkTrace serializes a synthetic per-process trace document.
func mkTrace(t *testing.T, events []traceEvent) []byte {
	t.Helper()
	b, err := json.Marshal(mergeDoc{TraceEvents: events, Metadata: map[string]any{}})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func edgeInstant(name string, pid int32, ts float64, corr uint64) traceEvent {
	return traceEvent{
		Name: name, Cat: "edge", Phase: "i", Scope: "t", TS: ts, PID: pid, TID: tidMain,
		Args: map[string]any{"corr": fmt.Sprintf("%016x", corr)},
	}
}

func collSpan(name string, pid int32, ts, dur float64, cctx, seq uint64) traceEvent {
	return traceEvent{
		Name: name, Cat: "coll", Phase: "X", TS: ts, Dur: &dur, PID: pid, TID: tidMain,
		Args: map[string]any{"cctx": cctx, "seq": seq},
	}
}

// TestMergeTwoProcesses exercises the full merge pass on two
// synthetic single-rank traces with skewed clocks: offsets are
// recovered from the message edges, matched edges become flow pairs,
// and the straggler report blames the late rank.
func TestMergeTwoProcesses(t *testing.T) {
	c01 := PackCorr(0, 1, 1) // rank 0 → rank 1
	c10 := PackCorr(1, 0, 1) // rank 1 → rank 0
	orphan := PackCorr(0, 1, 2)

	// File 1's clock runs ~550µs behind file 0's. The forward edge
	// (sent at 1000, "received" at local 500) lower-bounds the offset
	// at 500; the reverse edge (sent at local 600, received at 1200)
	// upper-bounds it at 600. Midpoint: 550.
	file0 := mkTrace(t, []traceEvent{
		{Name: "process_name", Phase: "M", PID: 0, Args: map[string]any{"name": "rank 0"}},
		edgeInstant("edge:send", 0, 1000, c01),
		edgeInstant("edge:recv", 0, 1200, c10),
		edgeInstant("edge:send", 0, 1300, orphan), // never received
		collSpan("coll:Barrier", 0, 2000, 100, 3, 0),
		collSpan("coll:Barrier", 0, 3000, 100, 3, 1),
	})
	file1 := mkTrace(t, []traceEvent{
		{Name: "process_name", Phase: "M", PID: 1, Args: map[string]any{"name": "rank 1"}},
		edgeInstant("edge:recv", 1, 500, c01),
		edgeInstant("edge:send", 1, 600, c10),
		// Shifted by +550 these start at 2150 and 3250: rank 1 is the
		// late arriver on both barriers.
		collSpan("coll:Barrier", 1, 1600, 40, 3, 0),
		collSpan("coll:Barrier", 1, 2700, 40, 3, 1),
	})

	m, err := MergeTraces(file0, file1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.OffsetsUs) != 2 || m.OffsetsUs[0] != 0 {
		t.Fatalf("offsets = %v", m.OffsetsUs)
	}
	if off := m.OffsetsUs[1]; math.Abs(off-550) > 1e-9 {
		t.Fatalf("file 1 offset = %v, want 550", off)
	}
	if m.Flows != 2 {
		t.Fatalf("flows = %d, want 2", m.Flows)
	}
	if m.Unmatched != 1 {
		t.Fatalf("unmatched = %d, want 1", m.Unmatched)
	}

	rep := m.Report
	if len(rep.Collectives) != 2 {
		t.Fatalf("collective instances = %d, want 2", len(rep.Collectives))
	}
	for _, inst := range rep.Collectives {
		if inst.Ranks != 2 {
			t.Fatalf("instance %+v: ranks != 2", inst)
		}
		if inst.LastRank != 1 {
			t.Fatalf("instance %+v: last rank %d, want 1", inst, inst.LastRank)
		}
		if inst.Ctx != 3 {
			t.Fatalf("instance %+v: cctx %d, want 3", inst, inst.Ctx)
		}
		// Rank 1 enters 150µs (inst 0) / 250µs (inst 1) late.
		if inst.ArrivalSkewUs < 100 {
			t.Fatalf("instance %+v: arrival skew too small", inst)
		}
	}
	if rep.Straggler != 1 {
		t.Fatalf("straggler = %d, want 1", rep.Straggler)
	}

	// Export → re-parse: flow pairs present, metadata first.
	var buf bytes.Buffer
	if err := m.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc mergeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var starts, finishes int
	inMeta := true
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			if !inMeta {
				t.Fatal("metadata event after non-metadata event")
			}
		default:
			inMeta = false
		}
		switch ev.Phase {
		case "s":
			starts++
		case "f":
			finishes++
			if ev.BP != "e" {
				t.Fatalf("flow finish without bp=e: %+v", ev)
			}
		}
	}
	if starts != 2 || finishes != 2 {
		t.Fatalf("flow events: %d starts, %d finishes, want 2/2", starts, finishes)
	}
	if doc.Metadata["motor-straggler-report"] == nil {
		t.Fatal("merged metadata lacks straggler report")
	}

	var rendered bytes.Buffer
	if err := WriteStragglerReport(&rendered, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rendered.String(), "<- straggler") {
		t.Fatalf("report rendering lacks straggler marker:\n%s", rendered.String())
	}
}

// TestMergeSingleFile checks the degenerate case: one multi-rank
// trace merges with itself as sole input, gaining flow events.
func TestMergeSingleFile(t *testing.T) {
	c := PackCorr(0, 1, 7)
	in := mkTrace(t, []traceEvent{
		edgeInstant("edge:send", 0, 100, c),
		edgeInstant("edge:recv", 1, 180, c),
	})
	m, err := MergeTraces(in)
	if err != nil {
		t.Fatal(err)
	}
	if m.Flows != 1 || m.Unmatched != 0 {
		t.Fatalf("flows=%d unmatched=%d, want 1/0", m.Flows, m.Unmatched)
	}
	if m.OffsetsUs[0] != 0 {
		t.Fatalf("single-file offset = %v", m.OffsetsUs[0])
	}
}

func TestPackCorrRoundTrip(t *testing.T) {
	src, dst, seq := CorrParts(PackCorr(513, 42, 0xdeadbeef))
	if src != 513 || dst != 42 || seq != 0xdeadbeef {
		t.Fatalf("CorrParts = %d %d %x", src, dst, seq)
	}
}
