package obs

import (
	"reflect"
	"sort"
	"strconv"
	"sync"
)

// SnapshotVersion is the schema version stamped on every Snapshot.
// Bump it whenever the meaning or naming of exported fields changes
// incompatibly so downstream consumers can dispatch on it.
const SnapshotVersion = 1

// Field is one named counter inside a group snapshot.
type Field struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// Group is one subsystem's counters at snapshot time.
type Group struct {
	Name   string  `json:"name"`
	Fields []Field `json:"fields"`
}

// Snapshot is a versioned point-in-time aggregation of every
// registered stats source plus the active tracer's histograms.
type Snapshot struct {
	Version int                     `json:"version"`
	Seq     uint64                  `json:"seq"`
	Groups  []Group                 `json:"groups"`
	Hists   map[string]HistSnapshot `json:"hists,omitempty"`
}

// Registry aggregates per-subsystem stats sources. Each source is a
// closure returning a fresh, race-safe copy of its stats struct;
// FieldsOf flattens the copy so obs needn't import subsystem types.
type Registry struct {
	mu      sync.Mutex
	seq     uint64
	sources []source
}

type source struct {
	name string
	get  func() any
}

// Register adds a named stats source. The getter must return a *copy*
// taken with whatever synchronization the subsystem requires (e.g.
// an atomic Snapshot()); the registry only reflects over the copy.
// Sources registered under an already-used name get a numeric suffix
// so multi-rank processes keep every rank's stats distinct.
func (r *Registry) Register(name string, get func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	base, n := name, 0
	for r.hasLocked(name) {
		n++
		name = base + "#" + strconv.Itoa(n)
	}
	r.sources = append(r.sources, source{name: name, get: get})
}

func (r *Registry) hasLocked(name string) bool {
	for _, s := range r.sources {
		if s.name == name {
			return true
		}
	}
	return false
}

// Snapshot collects every source into one versioned snapshot. When a
// tracer is active its histograms are included.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	r.seq++
	snap := Snapshot{Version: SnapshotVersion, Seq: r.seq}
	srcs := make([]source, len(r.sources))
	copy(srcs, r.sources)
	r.mu.Unlock()

	for _, s := range srcs {
		snap.Groups = append(snap.Groups, Group{Name: s.name, Fields: FieldsOf(s.get())})
	}
	t := Active()
	if t == nil {
		// A flight recorder parked in a duty-cycle gap still has ring
		// health and histograms worth reporting.
		t = flightRec.Load()
	}
	if t != nil {
		// The tracer's own ring health rides along as the obs.* group
		// so dropped events are visible without parsing trace
		// metadata, and the histograms are included.
		snap.Groups = append(snap.Groups, Group{Name: "obs", Fields: t.statsFields()})
		snap.Hists = make(map[string]HistSnapshot, HistCount)
		for i := HistID(0); i < HistCount; i++ {
			snap.Hists[HistNames[i]] = t.Hist(i).Snapshot()
		}
	}
	sort.SliceStable(snap.Groups, func(i, j int) bool { return snap.Groups[i].Name < snap.Groups[j].Name })
	return snap
}

// statsFields flattens TracerStats (including the per-shard slice,
// which reflection-based FieldsOf cannot see) into registry fields.
func (t *Tracer) statsFields() []Field {
	st := t.StatsSnapshot()
	out := []Field{
		{Name: "Dropped", Value: st.Dropped},
		{Name: "Flight", Value: st.Flight},
		{Name: "SampledSpans", Value: st.SampledSpans},
		{Name: "WatchdogFires", Value: WatchdogFires()},
	}
	for i, sh := range st.Shards {
		p := "Shard" + strconv.Itoa(i) + "."
		out = append(out,
			Field{Name: p + "Events", Value: sh.Events},
			Field{Name: p + "Dropped", Value: sh.Dropped},
			Field{Name: p + "Wraps", Value: sh.Wraps},
		)
	}
	return out
}

// FieldsOf flattens the exported integer fields of a stats struct (or
// pointer to one) into name/value pairs, recursing into nested
// structs with a dotted prefix. Signed fields are exported with their
// two's-complement bit pattern; stats counters are never negative in
// practice.
func FieldsOf(v any) []Field {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return nil
		}
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		return nil
	}
	var out []Field
	flatten(rv, "", &out)
	return out
}

func flatten(rv reflect.Value, prefix string, out *[]Field) {
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			continue
		}
		fv := rv.Field(i)
		name := prefix + f.Name
		switch fv.Kind() {
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			*out = append(*out, Field{Name: name, Value: fv.Uint()})
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			*out = append(*out, Field{Name: name, Value: uint64(fv.Int())})
		case reflect.Struct:
			flatten(fv, name+".", out)
		}
	}
}
