package obs

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// TestFlightDisplacement checks the tracer-swap protocol: a full
// session displaces the flight recorder for its duration and Stop
// restores it.
func TestFlightDisplacement(t *testing.T) {
	if Active() != nil {
		t.Fatal("tracer already active at test start")
	}
	f := StartFlight()
	if f == nil || Active() != f || !f.Flight() {
		t.Fatal("StartFlight did not publish a flight recorder")
	}
	if StartFlight() != nil {
		t.Fatal("second StartFlight should refuse while one is active")
	}
	full := Start(Options{Shards: 1})
	if full == nil || Active() != full || full.Flight() {
		t.Fatal("full session did not displace the flight recorder")
	}
	if Start(Options{Shards: 1}) != nil {
		t.Fatal("second full session should refuse")
	}
	Stop(full)
	if Active() != f {
		t.Fatal("Stop(full) did not restore the flight recorder")
	}
	Stop(f)
	if Active() != nil {
		t.Fatal("Stop(flight) left a tracer active")
	}
}

// TestCycleFlight checks duty-cycle arming: Active alternates between
// the recorder and nil, a displacing full session is never stomped,
// and retirement wins any race with a rearm.
func TestCycleFlight(t *testing.T) {
	if Active() != nil || FlightRecorder() != nil {
		t.Fatal("tracer already active at test start")
	}
	f := StartFlight()
	if f == nil {
		t.Fatal("StartFlight refused")
	}
	stop := CycleFlight(f, 5*time.Millisecond, 25*time.Millisecond)

	waitState := func(want *Tracer, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for Active() != want {
			if time.Now().After(deadline) {
				t.Fatalf("cycle never reached %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitState(nil, "a disarmed gap")
	if FlightRecorder() != f {
		t.Fatal("disarmed recorder not reachable via FlightRecorder")
	}
	waitState(f, "a rearmed window")

	// A full session displaces the recorder wherever the cycle is; the
	// cycle must not stomp it.
	full := Start(Options{Shards: 1})
	if full == nil {
		t.Fatal("full session refused")
	}
	time.Sleep(60 * time.Millisecond) // several cycle ticks while displaced
	if Active() != full {
		t.Fatal("cycle stomped a displacing full session")
	}
	Stop(full)
	waitState(f, "rearm after the full session stopped")

	stop()
	stop() // idempotent
	Stop(f)
	if FlightRecorder() != nil {
		t.Fatal("retired recorder still reachable")
	}
	// A racing rearm may arm the retired recorder transiently; its
	// undo must settle back to nil.
	waitState(nil, "quiescence after retirement")
}

// TestFlightSampling checks the flight ring's sampling: 1-in-N for
// high-frequency spans AND instants (they share the lane tick), while
// rare diagnostic kinds are always kept.
func TestFlightSampling(t *testing.T) {
	tr := NewTracer(Options{Shards: 1, Flight: true, SampleN: 4})
	for i := 0; i < 100; i++ { // lane ticks 1..100: 25 kept
		tr.Begin(0, KOp, uint64(OpSend))
		tr.End(0)
	}
	for i := 0; i < 10; i++ { // lane ticks 101..110: 104, 108 kept
		tr.Instant(0, KEdge, uint64(EdgeSend), PackCorr(0, 1, uint32(i+1)))
	}
	for i := 0; i < 10; i++ { // not a sampled kind: all kept, no ticks
		tr.Begin(0, KColl, uint64(OpBarrier))
		tr.End(0)
	}
	for i := 0; i < 10; i++ { // rare diagnostic instant: all kept
		tr.Instant(0, KCondPin, 1, uint64(i))
	}
	var ops, edges, colls, pins int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case KOp:
			ops++
		case KEdge:
			edges++
		case KColl:
			colls++
		case KCondPin:
			pins++
		}
	}
	if ops != 25 {
		t.Fatalf("sampled KOp spans = %d, want 25 (1 in 4 of 100)", ops)
	}
	if edges != 2 {
		t.Fatalf("sampled KEdge instants = %d, want 2 (lane ticks 104 and 108)", edges)
	}
	if colls != 10 {
		t.Fatalf("KColl spans = %d, want all 10 kept (not a sampled kind)", colls)
	}
	if pins != 10 {
		t.Fatalf("KCondPin instants = %d, want all 10 kept (rare diagnostic)", pins)
	}
	// Elisions are credited in batches of SampleN-1 on each kept
	// event: 25 kept spans and 2 kept instants have completed their
	// periods → 27*3; the two partial instant periods trail.
	if got := tr.StatsSnapshot().SampledSpans; got != 81 {
		t.Fatalf("SampledSpans = %d, want 81 (27 completed periods x 3)", got)
	}
	// A sampled-out span reads no clock: End reports 0, which callers
	// treat as "no histogram sample".
	tr.Begin(0, KOp, uint64(OpSend))
	if d := tr.End(0); d != 0 {
		t.Fatalf("sampled-out span returned duration %d, want 0", d)
	}

	// Async spans pre-sample at id allocation on the lane tick: one of
	// any SampleN consecutive allocations survives.
	var kept int
	for i := 0; i < 4; i++ {
		if tr.SpanIDFor(0, KADIReq) != 0 {
			kept++
		}
	}
	if kept != 1 {
		t.Fatalf("SpanIDFor kept %d of 4 async spans, want 1", kept)
	}
}

func TestFlightDump(t *testing.T) {
	if Active() != nil {
		t.Fatal("tracer already active at test start")
	}
	t.Setenv("MOTOR_FLIGHT_DIR", t.TempDir())
	lastDumpNS.Store(0)
	flightDumps.Store(0)

	// No recorder: silent no-op.
	if path, err := FlightDump("nothing"); path != "" || err != nil {
		t.Fatalf("dump without recorder = %q, %v", path, err)
	}

	f := StartFlight()
	// Edges are sampled in flight mode; emit a full sampling period so
	// at least one survives into the dump.
	for i := 1; i <= 16; i++ {
		f.Instant(0, KEdge, uint64(EdgeSend), PackCorr(0, 1, uint32(i)), 0, 8)
	}
	path, err := FlightDump("test reason!")
	if err != nil || path == "" {
		t.Fatalf("FlightDump = %q, %v", path, err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("dump is not a Chrome trace: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("dump has no events")
	}

	// Rate limit: an immediate second dump is suppressed.
	if p2, err := FlightDump("again"); p2 != "" || err != nil {
		t.Fatalf("rate-limited dump = %q, %v", p2, err)
	}

	// A full session owns its own data: no auto-dump while displaced.
	lastDumpNS.Store(0)
	full := Start(Options{Shards: 1})
	if p3, err := FlightDump("displaced"); p3 != "" || err != nil {
		t.Fatalf("dump while displaced = %q, %v", p3, err)
	}
	Stop(full)
	Stop(f)

	lastDumpNS.Store(0)
	flightDumps.Store(0)
}
