package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestSpanNesting checks Begin/End stack discipline: children carry
// their parent's span id and durations nest.
func TestSpanNesting(t *testing.T) {
	tr := NewTracer(Options{Shards: 1})
	tr.Begin(0, KOp, uint64(OpSend), 128, 1)
	tr.Begin(0, KWait, uint64(OpSend))
	tr.Instant(0, KPin, uint64(PinDeferred), 0xbeef)
	tr.End(0)
	tr.End(0)

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Emission order: instant, inner span (ended first), outer span.
	pin, wait, op := evs[0], evs[1], evs[2]
	if pin.Kind != KPin || wait.Kind != KWait || op.Kind != KOp {
		t.Fatalf("unexpected kinds: %v %v %v", pin.Kind, wait.Kind, op.Kind)
	}
	if op.Parent != 0 {
		t.Errorf("outer span parent = %d, want 0", op.Parent)
	}
	if wait.Parent != op.Span {
		t.Errorf("inner span parent = %d, want outer id %d", wait.Parent, op.Span)
	}
	if pin.Parent != wait.Span {
		t.Errorf("instant parent = %d, want inner id %d", pin.Parent, wait.Span)
	}
	if wait.TS < op.TS || wait.TS+wait.Dur > op.TS+op.Dur {
		t.Errorf("inner span [%d,+%d] not nested in outer [%d,+%d]",
			wait.TS, wait.Dur, op.TS, op.Dur)
	}
}

// TestSpanStackOverflow checks that Begins past the depth bound are
// dropped and their Ends unwind cleanly without corrupting the stack.
func TestSpanStackOverflow(t *testing.T) {
	tr := NewTracer(Options{Shards: 1})
	total := spanDepth + 5
	for i := 0; i < total; i++ {
		tr.Begin(0, KOp, uint64(OpSend))
	}
	for i := 0; i < total; i++ {
		tr.End(0)
	}
	if got := len(tr.Events()); got != spanDepth {
		t.Errorf("got %d events, want %d recorded spans", got, spanDepth)
	}
	if d := tr.End(0); d != 0 {
		t.Errorf("End on empty stack returned %d", d)
	}
}

// TestRingWrap fills a shard past capacity and checks the snapshot
// holds exactly the newest shardSize events in order.
func TestRingWrap(t *testing.T) {
	tr := NewTracer(Options{Shards: 1})
	total := shardSize + 100
	for i := 0; i < total; i++ {
		tr.Emit(Event{TS: int64(i), Kind: KFrame})
	}
	evs := tr.Events()
	if len(evs) != shardSize {
		t.Fatalf("got %d events, want %d", len(evs), shardSize)
	}
	for i, ev := range evs {
		want := int64(total - shardSize + i)
		if ev.TS != want {
			t.Fatalf("event %d has TS %d, want %d", i, ev.TS, want)
		}
	}
	if d := tr.Dropped(); d != 100 {
		t.Errorf("Dropped() = %d, want 100", d)
	}
}

// TestConcurrentEmit hammers the ring from many goroutines (run under
// -race in the verify tier) and checks nothing is lost before wrap.
func TestConcurrentEmit(t *testing.T) {
	tr := NewTracer(Options{Shards: 4})
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Instant(lane, KFrame, uint64(FrameOut), 1, 0, 64)
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Events()); got != goroutines*per {
		t.Errorf("got %d events, want %d", got, goroutines*per)
	}
}

// TestHistogramPercentiles checks quantiles against a known uniform
// distribution: with values 1..N each once, the q-quantile is q*N
// within the log-linear bucket resolution (1/32 relative).
func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	const n = 100000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, v := range perm {
		h.Record(int64(v) + 1)
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	if h.Max() != n {
		t.Fatalf("Max = %d, want %d", h.Max(), n)
	}
	if m := h.Mean(); m < float64(n)/2*0.999 || m > float64(n)/2*1.001 {
		t.Errorf("Mean = %f, want ~%d", m, n/2)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		got := float64(h.Quantile(q))
		want := q * n
		// Bucket lower bound: got is in (want*(1-2/32), want].
		if got > want || got < want*(1-2.0/histSub) {
			t.Errorf("Quantile(%v) = %v, want within [%v, %v]",
				q, got, want*(1-2.0/histSub), want)
		}
	}
	if h.Quantile(1) != n {
		t.Errorf("Quantile(1) = %d, want exact max %d", h.Quantile(1), n)
	}
}

// TestHistogramExact checks tier-0 values (< histSub) are exact.
func TestHistogramExact(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Record(7)
	}
	h.Record(31)
	if got := h.Quantile(0.5); got != 7 {
		t.Errorf("Quantile(0.5) = %d, want 7", got)
	}
	if got := h.Quantile(1); got != 31 {
		t.Errorf("Quantile(1) = %d, want 31", got)
	}
	if got := h.Quantile(0); got != 7 {
		t.Errorf("Quantile(0) = %d, want 7", got)
	}
}

// TestHistogramBuckets checks bucketOf/bucketLow are consistent:
// bucketLow(bucketOf(v)) <= v and monotone.
func TestHistogramBuckets(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1<<40 + 12345}
	for _, v := range vals {
		b := bucketOf(v)
		lo := bucketLow(b)
		if lo > v {
			t.Errorf("bucketLow(bucketOf(%d)) = %d > value", v, lo)
		}
		if b+1 < histTiers*histSub && bucketLow(b+1) <= v {
			t.Errorf("value %d should be below next bucket bound %d", v, bucketLow(b+1))
		}
	}
}

// TestActiveGate checks Start/Stop publish and unpublish the process
// tracer and that a second Start is refused.
func TestActiveGate(t *testing.T) {
	if Active() != nil {
		t.Fatal("tracer already active at test start")
	}
	tr := Start(Options{Shards: 1})
	if tr == nil {
		t.Fatal("Start returned nil with no active tracer")
	}
	defer Stop(tr)
	if Active() != tr {
		t.Fatal("Active() != started tracer")
	}
	if Start(Options{Shards: 1}) != nil {
		t.Fatal("second Start should return nil")
	}
	Stop(tr)
	if Active() != nil {
		t.Fatal("tracer still active after Stop")
	}
}

// TestRegistrySnapshot checks reflection flattening, name dedup, and
// snapshot versioning.
func TestRegistrySnapshot(t *testing.T) {
	type inner struct{ Hits uint64 }
	type stats struct {
		Ops     uint64
		Pause   int64
		Nested  inner
		skipped uint64 //nolint:unused // exercised: unexported must be skipped
	}
	var r Registry
	r.Register("engine/0", func() any { return stats{Ops: 7, Pause: -1, Nested: inner{Hits: 3}} })
	r.Register("engine/0", func() any { return &stats{Ops: 9} })

	snap := r.Snapshot()
	if snap.Version != SnapshotVersion {
		t.Errorf("Version = %d, want %d", snap.Version, SnapshotVersion)
	}
	if snap.Seq != 1 {
		t.Errorf("Seq = %d, want 1", snap.Seq)
	}
	if len(snap.Groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(snap.Groups))
	}
	names := []string{snap.Groups[0].Name, snap.Groups[1].Name}
	sort.Strings(names)
	if names[0] != "engine/0" || names[1] != "engine/0#1" {
		t.Errorf("group names = %v, want dedup suffix", names)
	}
	var g Group
	for _, cand := range snap.Groups {
		if cand.Name == "engine/0" {
			g = cand
		}
	}
	want := map[string]uint64{"Ops": 7, "Pause": ^uint64(0), "Nested.Hits": 3}
	if len(g.Fields) != len(want) {
		t.Fatalf("fields = %+v, want %d entries", g.Fields, len(want))
	}
	for _, f := range g.Fields {
		if want[f.Name] != f.Value {
			t.Errorf("field %s = %d, want %d", f.Name, f.Value, want[f.Name])
		}
	}
	if snap2 := r.Snapshot(); snap2.Seq != 2 {
		t.Errorf("second Seq = %d, want 2", snap2.Seq)
	}
}

// TestChromeExport validates the exporter's output against the
// trace_event schema: every record has name/ph/ts/pid/tid, complete
// events carry dur, async begin/end ids pair up.
func TestChromeExport(t *testing.T) {
	tr := NewTracer(Options{Shards: 1})
	tr.Begin(1, KOp, uint64(OpSend), 4096, 0)
	tr.Instant(1, KPin, uint64(PinDeferred), 0xabc)
	reqID := tr.NewSpanID()
	start := tr.Now()
	tr.Instant(1, KFrame, uint64(FrameOut), 1, 0, 4096)
	tr.Span(1, KADIReq, reqID, tr.Current(1), start, uint64(ReqSend), 0, 4096)
	tr.End(1)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	asyncIDs := map[string][2]int{}
	for _, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
		ph := ev["ph"].(string)
		if ph != "M" {
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event missing numeric ts: %v", ev)
			}
		}
		switch ph {
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		case "b", "e":
			id, ok := ev["id"].(string)
			if !ok {
				t.Fatalf("async event missing id: %v", ev)
			}
			c := asyncIDs[id]
			if ph == "b" {
				c[0]++
			} else {
				c[1]++
			}
			asyncIDs[id] = c
		case "i":
			if ev["s"] != "t" {
				t.Fatalf("instant missing thread scope: %v", ev)
			}
		}
	}
	if len(asyncIDs) != 1 {
		t.Fatalf("got %d async ids, want 1", len(asyncIDs))
	}
	for id, c := range asyncIDs {
		if c[0] != 1 || c[1] != 1 {
			t.Errorf("async id %s has %d begins / %d ends", id, c[0], c[1])
		}
	}
}

// TestMetricsText smoke-tests the text exporter format.
func TestMetricsText(t *testing.T) {
	var r Registry
	r.Register("gc", func() any { return struct{ Scavenges uint64 }{4} })
	var buf bytes.Buffer
	if err := WriteMetricsText(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("gc.Scavenges 4\n")) {
		t.Errorf("text metrics missing counter line:\n%s", out)
	}
}
