package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is the always-on half of the tracer: a small
// second ring (4 shards × 4Ki events) that runs even without
// -trace/MOTOR_TRACE. Its job is not profiling but post-mortem: when
// a guest program traps, a peer dies with mp.ErrTransport, or the
// stall watchdog fires, the recent past is dumped to a Chrome trace
// file automatically. A full trace session displaces the flight
// recorder for its duration (obs.Start/Stop handle the swap).
//
// The always-on budget is met by duty-cycle arming (CycleFlight): the
// recorder publishes itself as the process tracer only for short
// windows, so the out-of-window hot path pays exactly the
// tracing-disabled cost (one atomic nil load per event site) and the
// in-window cost is amortized by the duty factor. Within a window
// events record at full fidelity — complete message lifecycles, which
// is what a post-mortem needs — rather than 1-in-N event sampling,
// whose per-event call overhead alone would blow the budget.

// flightOptions is the fixed shape of the always-on ring: small
// enough that an idle world costs nothing to keep, deep enough to
// hold the last few thousand events per shard at dump time. SampleN 1
// keeps armed windows at full fidelity; the duty cycle, not per-event
// elision, enforces the budget.
var flightOptions = Options{Shards: 4, ShardSize: 1 << 12, Flight: true, SampleN: 1}

// flightRec is the process flight recorder, armed or not. FlightDump
// reads it instead of Active so a recorder sitting in a duty-cycle
// gap (or displaced) can still be found and — when not displaced —
// dumped.
var flightRec atomic.Pointer[Tracer]

// FlightRecorder returns the process flight recorder whether or not
// it is currently armed, or nil when none is running.
func FlightRecorder() *Tracer { return flightRec.Load() }

// StartFlight publishes a flight recorder as the process tracer if no
// session is active. Returns nil when another session (full or
// flight) already owns the process. The recorder starts always-armed;
// call CycleFlight to switch it to duty-cycle arming.
func StartFlight() *Tracer {
	t := NewTracer(flightOptions)
	if !flightRec.CompareAndSwap(nil, t) {
		return nil
	}
	if !active.CompareAndSwap(nil, t) {
		flightRec.CompareAndSwap(t, nil)
		return nil
	}
	return t
}

// Flight duty-cycle defaults: armed 500µs out of every 20ms. The
// average overhead is the armed tracing cost times the duty factor
// (2.5%), which keeps the always-on path well inside the <5%
// ping-pong budget while each window records complete operations.
const (
	DefaultFlightWindow = 500 * time.Microsecond
	DefaultFlightPeriod = 20 * time.Millisecond
)

// CycleFlight switches flight recorder t from always-armed to
// duty-cycle arming: Active returns t for window out of every period
// and nil in between. Zero window/period select the defaults. The
// returned stop function (idempotent) ends cycling, leaving t
// wherever the cycle last put it; follow with Stop(t) to retire the
// recorder.
func CycleFlight(t *Tracer, window, period time.Duration) func() {
	if t == nil || !t.flight {
		return func() {}
	}
	if window <= 0 {
		window = DefaultFlightWindow
	}
	if period <= window {
		period = DefaultFlightPeriod
		if period <= window {
			period = 2 * window
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-time.After(window):
			}
			active.CompareAndSwap(t, nil) // disarm; no-op when displaced
			select {
			case <-stop:
				return
			case <-time.After(period - window):
			}
			// Rearm unless a full session owns the process. Stop(t)
			// clears flightRec before unpublishing, so a rearm racing
			// with Stop detects it here and undoes itself.
			active.CompareAndSwap(nil, t)
			if flightRec.Load() != t {
				active.CompareAndSwap(t, nil)
				return
			}
		}
	}()
	var once sync.Once
	// The stop function waits for the goroutine to exit so no stray
	// rearm can follow it — a zombie arm would make the next
	// StartFlight refuse and silently lose the recorder.
	return func() {
		once.Do(func() { close(stop) })
		<-done
	}
}

// flightDumps counts dump files written, both to name them uniquely
// and to cap runaway dumping (a trap storm must not fill the disk).
var flightDumps atomic.Uint64

// lastDumpNS rate-limits dumps to one per second.
var lastDumpNS atomic.Int64

// maxFlightDumps bounds dump files per process.
const maxFlightDumps = 8

// FlightDump writes the flight recorder's rings to a Chrome trace
// file and returns its path. The directory is $MOTOR_FLIGHT_DIR,
// falling back to the OS temp dir. Returns "" (no error) when no
// flight recorder is active (including while a full trace session has
// displaced it — the user already owns that data), when the
// per-process dump cap is reached, or within the 1s rate limit —
// dump sites fire on failure paths and must never make a failure
// worse.
func FlightDump(reason string) (string, error) {
	t := flightRec.Load()
	if t == nil {
		return "", nil
	}
	if cur := Active(); cur != nil && !cur.flight {
		// A full trace session displaced the recorder; the user
		// already owns that data.
		return "", nil
	}
	now := time.Now().UnixNano()
	last := lastDumpNS.Load()
	if now-last < int64(time.Second) || !lastDumpNS.CompareAndSwap(last, now) {
		return "", nil
	}
	n := flightDumps.Add(1)
	if n > maxFlightDumps {
		return "", nil
	}
	dir := os.Getenv("MOTOR_FLIGHT_DIR")
	if dir == "" {
		dir = os.TempDir()
	}
	name := fmt.Sprintf("motor-flight-%d-%d-%s.json", os.Getpid(), n, sanitizeReason(reason))
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	werr := t.WriteChromeTrace(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}
	return path, nil
}

// FlightTrip is the fire-and-forget dump trigger used by failure
// paths (guest trap, transport error, watchdog). It dumps, announces
// the file on stderr, and swallows errors.
func FlightTrip(reason string) {
	path, err := FlightDump(reason)
	if err != nil {
		fmt.Fprintf(os.Stderr, "motor: flight-recorder dump failed (%s): %v\n", reason, err)
		return
	}
	if path != "" {
		fmt.Fprintf(os.Stderr, "motor: flight recorder dumped to %s (%s)\n", path, reason)
	}
}

func sanitizeReason(reason string) string {
	if reason == "" {
		return "dump"
	}
	var b strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('-')
		}
	}
	s := b.String()
	if len(s) > 40 {
		s = s[:40]
	}
	return s
}
