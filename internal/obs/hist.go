package obs

import (
	"math/bits"
	"sync/atomic"
)

// HistID names one of the tracer's fixed latency histograms.
type HistID int

// Tracer histograms. All record nanoseconds.
const (
	HistBlockingOp  HistID = iota // blocking Send/Recv wall time
	HistRequestWait               // polling-wait span (Wait / blocking completion)
	HistCollective                // collective wall time
	HistGCPause                   // GC stop-the-rank pause
	HistCount
)

// HistNames maps HistID to its exported metric name.
var HistNames = [HistCount]string{
	"blocking_op_ns",
	"request_wait_ns",
	"collective_ns",
	"gc_pause_ns",
}

// Histogram layout: HDR-style log-linear buckets. Values are split
// into a power-of-two "tier" and histSub linear sub-buckets within
// the tier, giving a worst-case quantile error of 1/histSub
// (~3% relative) with a small fixed footprint and no allocation.
const (
	histSub   = 32 // sub-buckets per power of two (power of two itself)
	histTiers = 59 // covers int64 nanoseconds (~292 years)
	histSubLg = 5  // log2(histSub)
)

// Histogram is a fixed-size concurrent latency histogram. The zero
// value is ready to use; Record is safe from any goroutine.
type Histogram struct {
	counts [histTiers * histSub]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < histSub {
		return int(v) // tier 0: exact
	}
	lg := 63 - bits.LeadingZeros64(uint64(v))
	tier := lg - histSubLg + 1
	sub := (v >> (lg - histSubLg)) & (histSub - 1)
	return tier*histSub + int(sub)
}

// bucketLow returns the smallest value mapping to bucket i — reported
// as the quantile estimate for samples landing in the bucket.
func bucketLow(i int) int64 {
	tier := i / histSub
	sub := int64(i % histSub)
	if tier == 0 {
		return sub
	}
	return (int64(histSub) + sub) << (tier - 1)
}

// Record adds one sample. Negative samples are clamped to zero
// (monotonic-clock differences shouldn't produce them, but a clamp is
// cheaper than a branch to drop them).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the mean of recorded samples (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the value at quantile q in [0,1] — the lower bound
// of the bucket holding the q-th sample, except q=1 which returns the
// exact recorded maximum. Concurrent Records make the answer
// approximate; that is fine for monitoring.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			return bucketLow(i)
		}
	}
	return h.Max()
}

// HistSnapshot is a point-in-time percentile summary.
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}
