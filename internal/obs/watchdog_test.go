package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// waitForStall receives stalls until one matches lane (other tests may
// leave unrelated lanes mid-wait) or the deadline passes.
func waitForStall(t *testing.T, ch <-chan Stall, lane int) Stall {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case s := <-ch:
			if s.Lane == lane {
				return s
			}
		case <-deadline:
			t.Fatalf("watchdog did not report lane %d", lane)
		}
	}
}

func TestWatchdogFiresOnStall(t *testing.T) {
	const lane = 9
	unreg := RegisterStallDiag(lane, func() string { return "testdiag: lane nine stuck" })
	defer unreg()

	ch := make(chan Stall, 16)
	w := StartWatchdog(WatchdogConfig{
		Deadline: 30 * time.Millisecond,
		Poll:     10 * time.Millisecond,
		OnStall:  func(s Stall) { ch <- s },
	})
	defer w.Stop()

	BeatEnter(lane, OpRecv, 3)
	defer BeatExit(lane)
	BeatPulse(lane)
	BeatPulse(lane)

	s := waitForStall(t, ch, lane)
	if s.Op != OpRecv || s.Peer != 3 {
		t.Fatalf("stall = %+v, want op=Recv peer=3", s)
	}
	if s.Waited < 30*time.Millisecond {
		t.Fatalf("stall waited %v < deadline", s.Waited)
	}
	if s.Pulses != 2 {
		t.Fatalf("stall pulses = %d, want 2", s.Pulses)
	}
	var haveDiag, haveGC bool
	for _, d := range s.Diag {
		haveDiag = haveDiag || strings.Contains(d, "testdiag")
		haveGC = haveGC || strings.Contains(d, "last GC")
	}
	if !haveDiag || !haveGC {
		t.Fatalf("diagnosis missing provider or GC line: %v", s.Diag)
	}

	// One report per wait: the same open wait must not fire again.
	select {
	case s2 := <-ch:
		if s2.Lane == lane {
			t.Fatalf("duplicate stall report: %+v", s2)
		}
	case <-time.After(100 * time.Millisecond):
	}

	// A resolved-and-reentered wait re-arms the watchdog.
	BeatExit(lane)
	BeatEnter(lane, OpAllreduce, -1)
	s3 := waitForStall(t, ch, lane)
	if s3.Op != OpAllreduce || s3.Peer != -1 {
		t.Fatalf("re-armed stall = %+v, want op=Allreduce peer=-1", s3)
	}

	var buf bytes.Buffer
	WriteStall(&buf, s)
	if !strings.Contains(buf.String(), "stuck in Recv") ||
		!strings.Contains(buf.String(), "testdiag") {
		t.Fatalf("WriteStall rendering:\n%s", buf.String())
	}
}

func TestBeatNestingKeepsOutermost(t *testing.T) {
	const lane = 12
	BeatEnter(lane, OpAllreduce, -1)
	BeatEnter(lane, OpDevWait, 5)
	b := beatOf(lane)
	if OpCode(b.op.Load()) != OpAllreduce {
		t.Fatalf("nested wait overwrote outermost op: %d", b.op.Load())
	}
	if b.depth.Load() != 2 {
		t.Fatalf("depth = %d, want 2", b.depth.Load())
	}
	BeatExit(lane)
	if b.start.Load() == 0 {
		t.Fatal("inner exit cleared the outer wait")
	}
	BeatExit(lane)
	if b.start.Load() != 0 || b.depth.Load() != 0 {
		t.Fatalf("wait not fully closed: start=%d depth=%d", b.start.Load(), b.depth.Load())
	}
}

func TestWaiting(t *testing.T) {
	const lane = 11
	if _, ok := Waiting()[lane]; ok {
		t.Fatalf("lane %d already waiting before test", lane)
	}
	BeatEnter(lane, OpBarrier, -1)
	if _, ok := Waiting()[lane]; !ok {
		t.Fatalf("lane %d not in Waiting() during wait", lane)
	}
	BeatExit(lane)
	if _, ok := Waiting()[lane]; ok {
		t.Fatalf("lane %d still in Waiting() after exit", lane)
	}
}

func TestNoteGCAppearsInDiagnosis(t *testing.T) {
	NoteGC(GCFull, int64(2*time.Millisecond))
	var found bool
	for _, d := range diagnose(200) { // lane with no providers
		if strings.Contains(d, "last GC: full") {
			found = true
		}
	}
	if !found {
		t.Fatal("diagnosis lacks GC attribution after NoteGC")
	}
}
