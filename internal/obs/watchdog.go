package obs

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The stall watchdog answers the question the tracer cannot: "is this
// rank stuck right now, and on what?" Every polling wait — engine
// ops, device-level WaitReq, collectives — feeds a per-lane heartbeat
// slot (three atomic stores per wait, always on, no tracer needed);
// a watchdog goroutine scans the slots and fires when a wait has been
// open past a configurable deadline, emitting a diagnosis (op, peer,
// outstanding requests, last GC, progress-pass counters) and a
// flight-recorder dump.

// procStart anchors the watchdog's monotonic clock.
var procStart = time.Now()

func nowNS() int64 { return int64(time.Since(procStart)) }

// beatSlot is one lane's heartbeat state. Writers are the lane's own
// threads (shared ranks may have several, hence atomics); the reader
// is the watchdog goroutine.
type beatSlot struct {
	depth  atomic.Int32  // nested waits currently open
	op     atomic.Uint32 // outermost wait's op code
	peer   atomic.Int32  // outermost wait's peer (-1 none)
	start  atomic.Int64  // nowNS at outermost entry; 0 = not waiting
	pulses atomic.Uint64 // heartbeat pulses inside the current wait
	fired  atomic.Int64  // start value the watchdog already reported
}

var beats [maxLanes]beatSlot

func beatOf(lane int) *beatSlot {
	if lane < 0 || lane >= maxLanes {
		lane = 0
	}
	return &beats[lane]
}

// BeatEnter marks a polling wait open on the lane. Nested waits keep
// the outermost attribution (the op the user is actually stuck in);
// every BeatEnter must be paired with a BeatExit.
func BeatEnter(lane int, op OpCode, peer int) {
	b := beatOf(lane)
	if b.depth.Add(1) == 1 {
		b.op.Store(uint32(op))
		b.peer.Store(int32(peer))
		b.pulses.Store(0)
		b.start.Store(nowNS())
	}
}

// BeatPulse records one heartbeat inside the current wait (one poll
// loop iteration). The count discriminates a live polling loop that
// is making no progress from a thread that stopped polling entirely.
func BeatPulse(lane int) { beatOf(lane).pulses.Add(1) }

// BeatExit closes the innermost wait on the lane.
func BeatExit(lane int) {
	b := beatOf(lane)
	if b.depth.Add(-1) == 0 {
		b.start.Store(0)
	}
}

// GC attribution: the VM notes every collection so a stall diagnosis
// can say whether the collector ran recently (a stuck rank whose last
// GC is seconds old is blocked in transport, not in the heap).
var (
	lastGCEnd   atomic.Int64 // nowNS at last collection end; 0 = never
	lastGCKind  atomic.Uint64
	lastGCPause atomic.Int64
	gcCount     atomic.Uint64
)

// NoteGC records a finished collection for stall attribution. Called
// by the VM on every collection, tracer or not (four atomic stores).
func NoteGC(kind GCKind, pauseNS int64) {
	lastGCKind.Store(uint64(kind))
	lastGCPause.Store(pauseNS)
	lastGCEnd.Store(nowNS())
	gcCount.Add(1)
}

// Progress-engine attribution: the background progress engine notes
// each pass so a diagnosis can tell "progress engine dead" from
// "progress engine spinning without completing anything".
var (
	lastProgressNS atomic.Int64
	progressPasses atomic.Uint64
)

// NoteProgress records one background progress pass.
func NoteProgress() {
	progressPasses.Add(1)
	lastProgressNS.Store(nowNS())
}

// Stall describes one detected stall.
type Stall struct {
	Lane   int
	Op     OpCode
	Peer   int           // -1 when the wait has no single peer
	Waited time.Duration // how long the wait has been open
	Pulses uint64        // poll iterations inside the wait
	Diag   []string      // subsystem diagnosis lines (outstanding requests, ...)
}

// stallDiags holds per-lane diagnosis providers registered by upper
// layers (the engine registers one per rank reporting outstanding
// device requests and progress counters).
var (
	stallMu    sync.Mutex
	stallDiags = map[int][]*stallDiag{}
)

type stallDiag struct{ f func() string }

// RegisterStallDiag adds a diagnosis provider for a lane; the
// returned function unregisters it. Providers run on the watchdog
// goroutine when that lane stalls and must be safe to call from
// outside the lane's thread.
func RegisterStallDiag(lane int, f func() string) func() {
	d := &stallDiag{f: f}
	stallMu.Lock()
	stallDiags[lane] = append(stallDiags[lane], d)
	stallMu.Unlock()
	return func() {
		stallMu.Lock()
		defer stallMu.Unlock()
		ds := stallDiags[lane]
		for i, x := range ds {
			if x == d {
				stallDiags[lane] = append(ds[:i:i], ds[i+1:]...)
				break
			}
		}
		if len(stallDiags[lane]) == 0 {
			delete(stallDiags, lane)
		}
	}
}

func diagnose(lane int) []string {
	stallMu.Lock()
	ds := append([]*stallDiag(nil), stallDiags[lane]...)
	stallMu.Unlock()
	var out []string
	for _, d := range ds {
		if s := strings.TrimSpace(d.f()); s != "" {
			out = append(out, strings.Split(s, "\n")...)
		}
	}
	if end := lastGCEnd.Load(); end != 0 {
		kind := "scavenge"
		if GCKind(lastGCKind.Load()) == GCFull {
			kind = "full"
		}
		out = append(out, fmt.Sprintf("last GC: %s %v ago (pause %v, %d collections)",
			kind, (time.Duration(nowNS()-end)).Round(time.Millisecond),
			time.Duration(lastGCPause.Load()).Round(time.Microsecond), gcCount.Load()))
	} else {
		out = append(out, "last GC: never")
	}
	if last := lastProgressNS.Load(); last != 0 {
		out = append(out, fmt.Sprintf("progress engine: %d passes, last %v ago",
			progressPasses.Load(), (time.Duration(nowNS()-last)).Round(time.Millisecond)))
	}
	return out
}

// watchdogFires counts stalls reported process-wide (all watchdogs).
var watchdogFires atomic.Uint64

// WatchdogFires reports how many stalls the watchdog has flagged.
func WatchdogFires() uint64 { return watchdogFires.Load() }

// WatchdogConfig configures a stall watchdog.
type WatchdogConfig struct {
	// Deadline is how long a single wait may stay open before the
	// watchdog fires (default 60s).
	Deadline time.Duration
	// Poll is the scan period (default Deadline/4, clamped to
	// [10ms, 5s]).
	Poll time.Duration
	// OnStall handles a detected stall. Nil means: write the
	// diagnosis to stderr and dump the flight recorder.
	OnStall func(Stall)
}

// Watchdog is a running stall scanner.
type Watchdog struct {
	deadline time.Duration
	onStall  func(Stall)
	stop     chan struct{}
	done     chan struct{}
}

// StartWatchdog launches the scanner goroutine. Each stalled wait is
// reported exactly once (a wait that resolves and re-enters arms the
// watchdog again).
func StartWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Deadline <= 0 {
		cfg.Deadline = 60 * time.Second
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = cfg.Deadline / 4
	}
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	if poll > 5*time.Second {
		poll = 5 * time.Second
	}
	w := &Watchdog{
		deadline: cfg.Deadline,
		onStall:  cfg.OnStall,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if w.onStall == nil {
		w.onStall = defaultOnStall
	}
	go w.loop(poll)
	return w
}

// Stop terminates the scanner and waits for it to exit.
func (w *Watchdog) Stop() {
	close(w.stop)
	<-w.done
}

func (w *Watchdog) loop(poll time.Duration) {
	defer close(w.done)
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.scan()
		}
	}
}

func (w *Watchdog) scan() {
	now := nowNS()
	for lane := range beats {
		b := &beats[lane]
		start := b.start.Load()
		if start == 0 || time.Duration(now-start) < w.deadline {
			continue
		}
		// Report each wait once: fired remembers the start stamp.
		prev := b.fired.Load()
		if prev == start || !b.fired.CompareAndSwap(prev, start) {
			continue
		}
		watchdogFires.Add(1)
		w.onStall(Stall{
			Lane:   lane,
			Op:     OpCode(b.op.Load()),
			Peer:   int(b.peer.Load()),
			Waited: time.Duration(now - start),
			Pulses: b.pulses.Load(),
			Diag:   diagnose(lane),
		})
	}
}

// WriteStall renders one stall diagnosis.
func WriteStall(w io.Writer, s Stall) {
	fmt.Fprintf(w, "motor watchdog: rank %d stuck in %s for %v (peer=%d, %d poll pulses)\n",
		s.Lane, OpName(s.Op), s.Waited.Round(time.Millisecond), s.Peer, s.Pulses)
	for _, d := range s.Diag {
		fmt.Fprintf(w, "  %s\n", d)
	}
}

func defaultOnStall(s Stall) {
	WriteStall(os.Stderr, s)
	FlightTrip("watchdog")
}

// Waiting returns the lanes currently inside a polling wait together
// with how long each has been open — the live view /healthz serves.
func Waiting() map[int]time.Duration {
	out := map[int]time.Duration{}
	now := nowNS()
	for lane := range beats {
		if start := beats[lane].start.Load(); start != 0 {
			out[lane] = time.Duration(now - start)
		}
	}
	return out
}

// sortedLanes is a small helper for deterministic rendering of
// Waiting maps.
func sortedLanes(m map[int]time.Duration) []int {
	lanes := make([]int, 0, len(m))
	for l := range m {
		lanes = append(lanes, l)
	}
	sort.Ints(lanes)
	return lanes
}
