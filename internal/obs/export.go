package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Name tables for the export layer. These are display-layer
// duplicates of subsystem enums — obs is a leaf package and cannot
// import the types that own them.

var opNames = map[OpCode]string{
	OpSend: "Send", OpRecv: "Recv", OpIsend: "Isend", OpIrecv: "Irecv",
	OpWait: "Wait", OpBarrier: "Barrier", OpBcast: "Bcast",
	OpScatter: "Scatter", OpGather: "Gather", OpAllgather: "Allgather",
	OpAlltoall: "Alltoall", OpAllreduce: "Allreduce", OpReduce: "Reduce",
	OpSendrecv: "Sendrecv", OpOSend: "OSend", OpORecv: "ORecv",
	OpOBcast: "OBcast", OpOScatter: "OScatter", OpOGather: "OGather",
	OpDevWait: "devwait",
}

// OpName returns the display name for an engine op code.
func OpName(op OpCode) string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return "op" + strconv.FormatUint(uint64(op), 10)
}

var pinNames = map[PinDecision]string{
	PinSkippedElder: "skipped-elder",
	PinAvoidedFast:  "avoided-fast",
	PinDeferred:     "deferred",
	PinEager:        "eager",
	PinCond:         "cond-pin",
}

// PinName returns the display name for a pin decision.
func PinName(d PinDecision) string {
	if s, ok := pinNames[d]; ok {
		return s
	}
	return "pin" + strconv.FormatUint(uint64(d), 10)
}

var phaseNames = map[GCPhase]string{
	PhaseHooks:    "hooks",
	PhaseCondPins: "cond-pins",
	PhaseScavenge: "scavenge",
	PhaseMark:     "mark",
	PhaseSweep:    "sweep",
	PhaseRoots:    "roots",
	PhaseCompact:  "compact",
}

var pktNames = map[uint64]string{
	1: "EAGER", 2: "RTS", 3: "CTS", 4: "DATA", 5: "CTRL",
}

// CollAlgoName is set by the mp package at init time so collective
// spans export the selector's algorithm names without an import
// cycle. Nil until a world is built; the export falls back to the
// numeric code.
var CollAlgoName func(code uint64) string

func collAlgo(code uint64) string {
	if CollAlgoName != nil {
		return CollAlgoName(code)
	}
	return "algo" + strconv.FormatUint(code, 10)
}

// traceEvent is one Chrome trace_event record (the subset of the
// format Perfetto and about:tracing load: "X" complete events, "b"/"e"
// async pairs, "i" instants, and "M" metadata).
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   *float64       `json:"dur,omitempty"`
	PID   int32          `json:"pid"`
	TID   int32          `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	BP    string         `json:"bp,omitempty"` // flow-finish binding ("e"), merge pass only
	Args  map[string]any `json:"args,omitempty"`
}

const (
	tidMain  = 1 // rank's managed thread: ops, waits, GC, collectives
	tidAsync = 2 // async ADI request track
)

// renderEvent converts one ring event to its trace_event records.
// Span-carrying events also expose their span/parent ids in args so
// the correlation survives the export.
func renderEvent(ev Event) []traceEvent {
	us := float64(ev.TS) / 1e3
	dur := float64(ev.Dur) / 1e3
	base := map[string]any{}
	if ev.Span != 0 {
		base["span"] = ev.Span
	}
	if ev.Parent != 0 {
		base["parent"] = ev.Parent
	}
	complete := func(name, cat string, args map[string]any) []traceEvent {
		d := dur
		return []traceEvent{{Name: name, Cat: cat, Phase: "X", TS: us, Dur: &d,
			PID: ev.Lane, TID: tidMain, Args: args}}
	}
	instant := func(name, cat string, args map[string]any) []traceEvent {
		return []traceEvent{{Name: name, Cat: cat, Phase: "i", TS: us, Scope: "t",
			PID: ev.Lane, TID: tidMain, Args: args}}
	}

	switch ev.Kind {
	case KOp:
		base["bytes"] = ev.Arg1
		if ev.Arg2 != ^uint64(0) {
			base["peer"] = ev.Arg2
		}
		return complete(OpName(OpCode(ev.Arg0)), "op", base)
	case KWait:
		return complete("wait:"+OpName(OpCode(ev.Arg0)), "op", base)
	case KPin:
		base["ref"] = fmt.Sprintf("0x%x", ev.Arg1)
		return instant("pin:"+PinName(PinDecision(ev.Arg0)), "pin", base)
	case KADIReq:
		// Async span on its own track: request lifetime doesn't nest
		// inside the posting op (completion can happen under a later
		// op's progress loop).
		dir := "send"
		if ReqDir(ev.Arg0) == ReqRecv {
			dir = "recv"
		}
		name := "req:" + dir
		id := strconv.FormatUint(ev.Span, 16)
		base["peer"] = ev.Arg1
		base["bytes"] = ev.Arg2
		return []traceEvent{
			{Name: name, Cat: "adi", Phase: "b", TS: us, PID: ev.Lane, TID: tidAsync, ID: id, Args: base},
			{Name: name, Cat: "adi", Phase: "e", TS: us + dur, PID: ev.Lane, TID: tidAsync, ID: id},
		}
	case KFrame:
		dir := "out"
		if FrameDir(ev.Arg0) == FrameIn {
			dir = "in"
		}
		pkt := pktNames[ev.Arg1]
		if pkt == "" {
			pkt = "PKT" + strconv.FormatUint(ev.Arg1, 10)
		}
		base["peer"] = ev.Arg2
		base["bytes"] = ev.Arg3
		return instant("frame:"+dir+":"+pkt, "channel", base)
	case KGC:
		name := "gc:scavenge"
		if GCKind(ev.Arg0) == GCFull {
			name = "gc:full"
		}
		return complete(name, "gc", base)
	case KGCPhase:
		ph := phaseNames[GCPhase(ev.Arg0)]
		if ph == "" {
			ph = "phase" + strconv.FormatUint(ev.Arg0, 10)
		}
		return complete("gc:"+ph, "gc", base)
	case KCondPin:
		name := "condpin:dropped"
		if ev.Arg0 != 0 {
			name = "condpin:held"
		}
		base["ref"] = fmt.Sprintf("0x%x", ev.Arg1)
		return instant(name, "gc", base)
	case KColl:
		base["algo"] = collAlgo(ev.Arg1)
		base["bytes"] = ev.Arg2
		if ev.Arg3 != 0 {
			// Cross-rank alignment key: every rank of a communicator
			// advances the collective seq identically, so (cctx, seq)
			// names the same collective instance on every rank.
			base["cctx"] = ev.Arg3 >> 32
			base["seq"] = ev.Arg3 & 0xffffffff
		}
		return complete("coll:"+OpName(OpCode(ev.Arg0)), "coll", base)
	case KCollStep:
		base["step"] = ev.Arg0
		base["bytes"] = ev.Arg1
		return complete("coll:step", "coll", base)
	case KSerial:
		name := "serialize"
		if ev.Arg0 != 0 {
			name = "deserialize"
		}
		base["bytes"] = ev.Arg1
		return complete(name, "oo", base)
	case KChunk:
		name := "chunk:serialize"
		switch ev.Arg0 {
		case 1:
			name = "chunk:send"
		case 2:
			name = "chunk:recv"
		}
		base["chunk"] = ev.Arg1
		base["bytes"] = ev.Arg2
		return complete(name, "oo", base)
	case KEdge:
		// One half of a cross-rank message edge. The corr id is what
		// the merge pass keys flow events on; src/dst/seq make the
		// raw trace greppable without unpacking.
		dir := "send"
		if EdgeDir(ev.Arg0) == EdgeRecv {
			dir = "recv"
		}
		src, dst, seq := CorrParts(ev.Arg1)
		base["corr"] = fmt.Sprintf("%016x", ev.Arg1)
		base["src"] = src
		base["dst"] = dst
		base["seq"] = seq
		base["ctx"] = ev.Arg2 >> 32
		base["tag"] = ev.Arg2 & 0xffffffff
		base["bytes"] = ev.Arg3
		return instant("edge:"+dir, "edge", base)
	case KProgress:
		// Async track: the progress engine runs outside any op span.
		base["passes"] = ev.Arg0
		id := strconv.FormatUint(ev.Span, 16)
		return []traceEvent{
			{Name: "progress", Cat: "progress", Phase: "b", TS: us, PID: ev.Lane, TID: tidAsync, ID: id, Args: base},
			{Name: "progress", Cat: "progress", Phase: "e", TS: us + dur, PID: ev.Lane, TID: tidAsync, ID: id},
		}
	default:
		return instant("event:"+strconv.Itoa(int(ev.Kind)), "misc", base)
	}
}

// WriteChromeTrace exports the tracer's events as Chrome trace_event
// JSON (the {"traceEvents": [...]} object form, loadable in
// about:tracing and Perfetto). Events are written in timestamp order;
// each rank becomes a process, with the managed thread and the async
// ADI-request track as its two threads.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })

	lanes := map[int32]bool{}
	var out []traceEvent
	for _, ev := range evs {
		lanes[ev.Lane] = true
		out = append(out, renderEvent(ev)...)
	}
	var meta []traceEvent
	for lane := range lanes {
		meta = append(meta,
			traceEvent{Name: "process_name", Phase: "M", PID: lane, TID: 0,
				Args: map[string]any{"name": "rank " + strconv.Itoa(int(lane))}},
			traceEvent{Name: "thread_name", Phase: "M", PID: lane, TID: tidMain,
				Args: map[string]any{"name": "managed thread"}},
			traceEvent{Name: "thread_name", Phase: "M", PID: lane, TID: tidAsync,
				Args: map[string]any{"name": "adi requests"}},
		)
	}
	sort.SliceStable(meta, func(i, j int) bool {
		if meta[i].PID != meta[j].PID {
			return meta[i].PID < meta[j].PID
		}
		return meta[i].TID < meta[j].TID
	})

	doc := struct {
		TraceEvents []traceEvent   `json:"traceEvents"`
		Metadata    map[string]any `json:"metadata,omitempty"`
	}{
		TraceEvents: append(meta, out...),
		Metadata: map[string]any{
			"motor-trace-version": SnapshotVersion,
			"dropped-events":      t.Dropped(),
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteMetricsJSON exports a registry snapshot as flat JSON.
func WriteMetricsJSON(w io.Writer, snap Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// WriteMetricsText exports a registry snapshot as sorted
// "group.field value" lines — easy to diff and grep.
func WriteMetricsText(w io.Writer, snap Snapshot) error {
	if _, err := fmt.Fprintf(w, "# motor metrics v%d seq=%d\n", snap.Version, snap.Seq); err != nil {
		return err
	}
	for _, g := range snap.Groups {
		for _, f := range g.Fields {
			if _, err := fmt.Fprintf(w, "%s.%s %d\n", g.Name, f.Name, f.Value); err != nil {
				return err
			}
		}
	}
	if len(snap.Hists) > 0 {
		names := make([]string, 0, len(snap.Hists))
		for n := range snap.Hists {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h := snap.Hists[n]
			if _, err := fmt.Fprintf(w, "hist.%s count=%d mean=%.0f p50=%d p95=%d p99=%d max=%d\n",
				n, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max); err != nil {
				return err
			}
		}
	}
	return nil
}
