package adi

import (
	"bytes"
	"errors"
	"testing"

	"motor/internal/mp/channel"
)

func devicePair(eagerMax int) (*Device, *Device) {
	f := channel.NewShmFabric(2)
	return NewDevice(f.Endpoint(0), eagerMax), NewDevice(f.Endpoint(1), eagerMax)
}

// waitBoth drives both devices' progress until the request completes,
// emulating the two ranks' polling loops from a single test goroutine.
func waitBoth(t *testing.T, mine, peer *Device, req *Request) Status {
	t.Helper()
	for i := 0; i < 100000 && !req.Done(); i++ {
		if _, err := mine.Progress(); err != nil {
			t.Fatal(err)
		}
		if _, err := peer.Progress(); err != nil {
			t.Fatal(err)
		}
	}
	if !req.Done() {
		t.Fatal("request never completed")
	}
	if err := req.Err(); err != nil {
		t.Fatalf("request error: %v", err)
	}
	return req.Status()
}

func TestEagerSendRecv(t *testing.T) {
	d0, d1 := devicePair(1024)
	msg := []byte("eager path")
	sreq, err := d0.Isend(SliceBuf(msg), 1, 7, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !sreq.Done() {
		t.Error("eager send should complete locally")
	}
	buf := make([]byte, 64)
	rreq, err := d1.Irecv(SliceBuf(buf), 0, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := waitBoth(t, d1, d0, rreq)
	if st.Source != 0 || st.Tag != 7 || st.Count != len(msg) {
		t.Errorf("status %+v", st)
	}
	if !bytes.Equal(buf[:st.Count], msg) {
		t.Errorf("payload %q", buf[:st.Count])
	}
	if d0.Stats.EagerSent != 1 {
		t.Errorf("EagerSent %d", d0.Stats.EagerSent)
	}
}

func TestRendezvousSendRecv(t *testing.T) {
	d0, d1 := devicePair(64) // tiny eager threshold forces rendezvous
	msg := bytes.Repeat([]byte{0xAB}, 4096)
	buf := make([]byte, 4096)
	rreq, err := d1.Irecv(SliceBuf(buf), 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	sreq, err := d0.Isend(SliceBuf(msg), 1, 3, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if sreq.Done() {
		t.Error("rendezvous send completed before CTS")
	}
	st := waitBoth(t, d1, d0, rreq)
	waitBoth(t, d0, d1, sreq)
	if st.Count != len(msg) || !bytes.Equal(buf, msg) {
		t.Errorf("rendezvous payload corrupt (count %d)", st.Count)
	}
	if d0.Stats.RndvSent != 1 {
		t.Errorf("RndvSent %d", d0.Stats.RndvSent)
	}
}

func TestUnexpectedEagerThenRecv(t *testing.T) {
	d0, d1 := devicePair(1024)
	msg := []byte("early bird")
	if _, err := d0.Isend(SliceBuf(msg), 1, 9, 0, false); err != nil {
		t.Fatal(err)
	}
	// Drive d1 so the message lands unexpected.
	for i := 0; i < 100; i++ {
		d1.Progress()
	}
	if d1.Stats.Unexpected != 1 {
		t.Fatalf("Unexpected = %d", d1.Stats.Unexpected)
	}
	buf := make([]byte, 32)
	rreq, err := d1.Irecv(SliceBuf(buf), 0, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rreq.Done() {
		t.Fatal("recv should match unexpected queue immediately")
	}
	if !bytes.Equal(buf[:rreq.Status().Count], msg) {
		t.Errorf("payload %q", buf[:rreq.Status().Count])
	}
}

func TestUnexpectedRTSThenRecv(t *testing.T) {
	d0, d1 := devicePair(8)
	msg := bytes.Repeat([]byte{1, 2, 3, 4}, 100)
	sreq, err := d0.Isend(SliceBuf(msg), 1, 2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		d1.Progress()
	}
	buf := make([]byte, len(msg))
	rreq, err := d1.Irecv(SliceBuf(buf), 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitBoth(t, d1, d0, rreq)
	waitBoth(t, d0, d1, sreq)
	if !bytes.Equal(buf, msg) {
		t.Error("rendezvous-after-unexpected payload corrupt")
	}
}

func TestWildcardMatching(t *testing.T) {
	d0, d1 := devicePair(1024)
	if _, err := d0.Isend(SliceBuf([]byte("tagged")), 1, 42, 0, false); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	rreq, err := d1.Irecv(SliceBuf(buf), AnySource, AnyTag, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := waitBoth(t, d1, d0, rreq)
	if st.Source != 0 || st.Tag != 42 {
		t.Errorf("wildcard status %+v", st)
	}
}

func TestTagSelectivity(t *testing.T) {
	d0, d1 := devicePair(1024)
	d0.Isend(SliceBuf([]byte("one")), 1, 1, 0, false)
	d0.Isend(SliceBuf([]byte("two")), 1, 2, 0, false)
	// Receive tag 2 first even though tag 1 arrived first.
	buf := make([]byte, 8)
	rreq, err := d1.Irecv(SliceBuf(buf), 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := waitBoth(t, d1, d0, rreq)
	if string(buf[:st.Count]) != "two" {
		t.Errorf("got %q for tag 2", buf[:st.Count])
	}
	buf2 := make([]byte, 8)
	rreq2, _ := d1.Irecv(SliceBuf(buf2), 0, 1, 0)
	st2 := waitBoth(t, d1, d0, rreq2)
	if string(buf2[:st2.Count]) != "one" {
		t.Errorf("got %q for tag 1", buf2[:st2.Count])
	}
}

func TestContextIsolation(t *testing.T) {
	d0, d1 := devicePair(1024)
	d0.Isend(SliceBuf([]byte("ctx5")), 1, 1, 5, false)
	buf := make([]byte, 8)
	// Receive on context 6: must NOT match.
	rreq, err := d1.Irecv(SliceBuf(buf), 0, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		d1.Progress()
	}
	if rreq.Done() {
		t.Fatal("cross-context match")
	}
	// Correct context succeeds.
	rreq2, _ := d1.Irecv(SliceBuf(buf), 0, 1, 5)
	waitBoth(t, d1, d0, rreq2)
}

func TestFIFOOrderingSameTag(t *testing.T) {
	d0, d1 := devicePair(1024)
	for i := byte(0); i < 10; i++ {
		d0.Isend(SliceBuf([]byte{i}), 1, 4, 0, false)
	}
	for i := byte(0); i < 10; i++ {
		buf := make([]byte, 1)
		rreq, _ := d1.Irecv(SliceBuf(buf), 0, 4, 0)
		waitBoth(t, d1, d0, rreq)
		if buf[0] != i {
			t.Fatalf("message %d out of order: got %d", i, buf[0])
		}
	}
}

func TestEagerTruncation(t *testing.T) {
	d0, d1 := devicePair(1024)
	d0.Isend(SliceBuf([]byte("0123456789")), 1, 1, 0, false)
	buf := make([]byte, 4)
	rreq, _ := d1.Irecv(SliceBuf(buf), 0, 1, 0)
	for i := 0; i < 1000 && !rreq.Done(); i++ {
		d1.Progress()
	}
	if !rreq.Done() {
		t.Fatal("not done")
	}
	if !errors.Is(rreq.Err(), ErrTruncate) {
		t.Errorf("err %v", rreq.Err())
	}
	if string(buf) != "0123" {
		t.Errorf("partial payload %q", buf)
	}
}

func TestRendezvousTruncation(t *testing.T) {
	d0, d1 := devicePair(8)
	msg := bytes.Repeat([]byte{9}, 256)
	buf := make([]byte, 100)
	rreq, _ := d1.Irecv(SliceBuf(buf), 0, 1, 0)
	sreq, _ := d0.Isend(SliceBuf(msg), 1, 1, 0, false)
	for i := 0; i < 10000 && !(rreq.Done() && sreq.Done()); i++ {
		d0.Progress()
		d1.Progress()
	}
	if !rreq.Done() {
		t.Fatal("recv not done")
	}
	if !errors.Is(rreq.Err(), ErrTruncate) {
		t.Errorf("err %v", rreq.Err())
	}
	for _, b := range buf {
		if b != 9 {
			t.Fatal("partial data corrupt")
		}
	}
}

func TestSyncSendWaitsForMatch(t *testing.T) {
	d0, d1 := devicePair(1 << 20)
	// Small message but synchronous: must not complete until matched.
	sreq, err := d0.Isend(SliceBuf([]byte("ss")), 1, 1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		d0.Progress()
		d1.Progress()
	}
	if sreq.Done() {
		t.Fatal("ssend completed before a receive was posted")
	}
	buf := make([]byte, 2)
	rreq, _ := d1.Irecv(SliceBuf(buf), 0, 1, 0)
	waitBoth(t, d1, d0, rreq)
	waitBoth(t, d0, d1, sreq)
	if string(buf) != "ss" {
		t.Errorf("payload %q", buf)
	}
}

func TestIprobe(t *testing.T) {
	d0, d1 := devicePair(1024)
	ok, _, err := d1.Iprobe(0, 1, 0)
	if err != nil || ok {
		t.Fatalf("probe on empty: ok=%v err=%v", ok, err)
	}
	d0.Isend(SliceBuf([]byte("probe me")), 1, 1, 0, false)
	var st Status
	for i := 0; i < 1000 && !ok; i++ {
		ok, st, err = d1.Iprobe(0, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !ok || st.Count != 8 || st.Source != 0 {
		t.Fatalf("probe result ok=%v %+v", ok, st)
	}
	// Probing must not consume: a receive still gets the message.
	buf := make([]byte, 8)
	rreq, _ := d1.Irecv(SliceBuf(buf), 0, 1, 0)
	if !rreq.Done() {
		t.Fatal("message consumed by probe?")
	}
}

func TestRankValidation(t *testing.T) {
	d0, _ := devicePair(1024)
	if _, err := d0.Isend(SliceBuf(nil), 7, 0, 0, false); !errors.Is(err, ErrRank) {
		t.Errorf("isend bad rank: %v", err)
	}
	if _, err := d0.Irecv(SliceBuf(nil), 9, 0, 0); !errors.Is(err, ErrRank) {
		t.Errorf("irecv bad rank: %v", err)
	}
}

func TestZeroByteMessages(t *testing.T) {
	d0, d1 := devicePair(1024)
	d0.Isend(SliceBuf(nil), 1, 1, 0, false)
	rreq, _ := d1.Irecv(SliceBuf(nil), 0, 1, 0)
	st := waitBoth(t, d1, d0, rreq)
	if st.Count != 0 {
		t.Errorf("count %d", st.Count)
	}
}

func TestSelfSend(t *testing.T) {
	d0, _ := devicePair(1024)
	// Posted receive first: direct copy.
	buf := make([]byte, 8)
	rreq, err := d0.Irecv(SliceBuf(buf), 0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	sreq, err := d0.Isend(SliceBuf([]byte("selfmsg!")), 0, 5, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !sreq.Done() || !rreq.Done() {
		t.Fatal("self-send with posted recv should complete immediately")
	}
	if string(buf) != "selfmsg!" {
		t.Errorf("payload %q", buf)
	}

	// Unexpected order: send first, then receive.
	sreq2, err := d0.Isend(SliceBuf([]byte("later")), 0, 6, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !sreq2.Done() {
		t.Fatal("buffered self-send should complete")
	}
	buf2 := make([]byte, 5)
	rreq2, err := d0.Irecv(SliceBuf(buf2), AnySource, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rreq2.Done() || string(buf2) != "later" {
		t.Fatalf("unexpected self-send not matched: %q", buf2)
	}
	if st := rreq2.Status(); st.Source != 0 || st.Tag != 6 {
		t.Errorf("status %+v", st)
	}
}

func TestSelfSyncSend(t *testing.T) {
	d0, _ := devicePair(1024)
	sreq, err := d0.Isend(SliceBuf([]byte("sync")), 0, 7, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d0.Progress()
	}
	if sreq.Done() {
		t.Fatal("synchronous self-send completed before local match")
	}
	buf := make([]byte, 4)
	rreq, err := d0.Irecv(SliceBuf(buf), 0, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rreq.Done() {
		t.Fatal("recv should match buffered self-send")
	}
	d0.Progress() // resolve the pending sync
	if !sreq.Done() {
		t.Fatal("synchronous self-send not completed after match")
	}
	if string(buf) != "sync" {
		t.Errorf("payload %q", buf)
	}
}

func TestControlPackets(t *testing.T) {
	d0, d1 := devicePair(1024)
	if err := d0.SendCtrl(1, 42, 7); err != nil {
		t.Fatal(err)
	}
	// Control packets bypass the matching queues entirely.
	found := false
	for i := 0; i < 1000 && !found; i++ {
		var err error
		found, err = d1.PollCtrl(0, 42, 7)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !found {
		t.Fatal("control packet not delivered")
	}
	// Consumed: a second poll finds nothing.
	if again, _ := d1.PollCtrl(0, 42, 7); again {
		t.Error("control packet delivered twice")
	}
	// And it never entered the unexpected message queue.
	if d1.Stats.Unexpected != 0 {
		t.Errorf("control packet leaked into matching: %d", d1.Stats.Unexpected)
	}
	if d1.Stats.CtrlPackets != 1 {
		t.Errorf("ctrl stat %d", d1.Stats.CtrlPackets)
	}
}

func TestIprobeReportsRendezvousSize(t *testing.T) {
	d0, d1 := devicePair(8) // force rendezvous
	msg := bytes.Repeat([]byte{5}, 500)
	if _, err := d0.Isend(SliceBuf(msg), 1, 3, 0, false); err != nil {
		t.Fatal(err)
	}
	var st Status
	ok := false
	for i := 0; i < 1000 && !ok; i++ {
		var err error
		ok, st, err = d1.Iprobe(0, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !ok {
		t.Fatal("probe never saw the RTS")
	}
	// The advertised rendezvous size must be reported, not the
	// zero-length wire payload of the RTS packet.
	if st.Count != 500 {
		t.Errorf("probed count %d, want 500", st.Count)
	}
}
