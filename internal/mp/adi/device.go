// Package adi implements the device layer of the message-passing
// core — the analogue of MPICH2's CH3 device over the Abstract
// Device Interface (paper §6): message matching (posted and
// unexpected queues), packetizing, and the eager / rendezvous
// transfer protocols, all driven by a polling progress engine.
//
// The device is transport-agnostic: it talks to any channel.Channel.
// Buffers are abstract (Buffer) so the Motor core can hand the device
// ranges of a managed heap that must be re-resolved after any yield —
// the mechanism behind zero-copy transfers into pinned objects.
package adi

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"motor/internal/mp/channel"
	"motor/internal/obs"
)

// Wildcards for receive matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Errors surfaced by the device (MPI error classes).
var (
	ErrTruncate = errors.New("adi: message truncated (receive buffer too small)")
	ErrRank     = errors.New("adi: rank out of range")
	ErrState    = errors.New("adi: request in invalid state")
	// ErrTransport is the typed error class for transport failures: a
	// reset, poisoned or prematurely-closed peer connection. Requests
	// bound to the failed peer complete with an error wrapping
	// ErrTransport instead of hanging the progress engine; the rest of
	// the world keeps running.
	ErrTransport = errors.New("adi: transport failure")
	// ErrCancelled is the terminal error of a request abandoned via
	// CancelReq (collective error-drain paths).
	ErrCancelled = errors.New("adi: request cancelled")
)

// Buffer abstracts a contiguous transfer buffer. Bytes must be called
// afresh whenever control may have yielded since the last call: for
// managed-heap ranges the backing array can move when the arena
// grows, even though the object's offset is pinned.
type Buffer interface {
	Len() int
	Bytes() []byte
}

// SliceBuf adapts a plain []byte.
type SliceBuf []byte

// Len implements Buffer.
func (s SliceBuf) Len() int { return len(s) }

// Bytes implements Buffer.
func (s SliceBuf) Bytes() []byte { return s }

// Status describes a completed receive.
type Status struct {
	Source int // world rank of the sender
	Tag    int
	Count  int // delivered bytes
}

// reqKind discriminates requests.
type reqKind uint8

const (
	reqSend reqKind = iota
	reqRecv
)

// reqState tracks protocol progress.
type reqState uint32

const (
	stActive   reqState = iota // posted / awaiting protocol step
	stComplete                 // done (check Err)
)

// Request is a pending point-to-point operation.
type Request struct {
	id   uint64
	kind reqKind

	buf  Buffer
	peer int // dest for sends, source (or AnySource) for recvs
	tag  int
	ctx  int32

	sync bool // synchronous send: complete only when matched

	// state is written last on every completion path (an atomic
	// release store in complete) and loaded first by readers (an
	// atomic acquire load in Done), so err and status — written
	// before the store — are visible to any goroutine that has
	// observed Done() == true, without taking the device lock.
	state  atomic.Uint32
	err    error
	status Status

	// onDone holds completion continuations (device lock). They are
	// queued by complete and run after the device lock is released —
	// never under it, since a continuation may re-enter the device
	// (a parked waiter immediately testing its request).
	onDone []func()

	// Trace identity, assigned at post time when a tracer is active.
	// The request's lifetime is an async obs span: it can complete
	// under a different engine op than the one that posted it (or
	// under none), so it cannot live on the lane's span stack.
	traceSpan   uint64
	traceParent uint64
	traceStart  int64

	// edgeSeq remembers the correlation sequence stamped on this
	// send's RTS so the eventual DATA packet carries the same id (the
	// receiver records its edge:recv when the payload lands, not when
	// the announcement arrives).
	edgeSeq uint32
}

// Done reports completion (poll via Device.TestReq). Safe to call
// from any goroutine — this is the check conditional pin requests
// evaluate during the collector's mark phase while a background
// progress engine may be completing the request.
func (r *Request) Done() bool { return reqState(r.state.Load()) == stComplete }

// Err returns the request's terminal error, if any (valid once Done).
func (r *Request) Err() error { return r.err }

// Status returns the receive status (valid once Done).
func (r *Request) Status() Status { return r.status }

// unexpected holds an arrived-but-unmatched message.
type unexpected struct {
	hdr     channel.Header
	payload []byte // eager payload copy; nil for RTS
}

// DeviceStats counts protocol activity; the Motor pinning-policy
// tests and cmd/mpstat read these.
type DeviceStats struct {
	EagerSent   uint64
	RndvSent    uint64
	EagerRecvd  uint64
	DataRecvd   uint64
	Unexpected  uint64
	Polls       uint64
	Deliveries  uint64
	BytesSent   uint64
	BytesRecvd  uint64
	CtrlPackets uint64
	// TransportErrors counts requests (or operation starts) that
	// failed with ErrTransport; PeersLost counts peer connections
	// declared dead by the channel.
	TransportErrors uint64
	PeersLost       uint64
	// Cancelled counts requests abandoned via CancelReq.
	Cancelled uint64
}

// Device is one rank's progress engine and matching state.
//
// Every public method is safe for concurrent use: all matching and
// protocol state is guarded by one mutex, so multiple guest threads
// and a background progress engine (mp.Progress) can share a rank.
// The lock order is strictly device mutex → channel internals; the
// device never blocks on anything but the channel while holding its
// lock, and the embedder yield (Yield, the Motor GC poll) only runs
// from idle, outside the lock — a GC hook may therefore call
// Progress without deadlocking.
type Device struct {
	mu sync.Mutex //motorlint:lockorder 20 device

	ch   channel.Channel
	rank int

	eagerMax int

	posted []*Request   // posted receives, FIFO
	unexp  []unexpected // unexpected arrivals, FIFO
	active map[uint64]*Request
	nextID uint64

	// Yield is invoked inside blocking waits between progress polls.
	// The Motor core points it at the managed thread's GC poll — the
	// polling-wait of paper §7.1/§7.4. Nil is allowed.
	Yield func()

	// tmp is scratch for unexpected eager payload delivery.
	tmp []byte

	// deliver state for the in-flight packet between Deliver and Done.
	curReq   *Request
	curUnexp bool

	ctrl []channel.Header // control packets (barrier tokens etc.)

	// pendingSelfSyncs are synchronous self-sends awaiting their
	// local match.
	pendingSelfSyncs []selfSync

	// lost remembers peers declared dead, with the failure that killed
	// them. Peer death is a sticky condition: a send or receive posted
	// after the failure must fail immediately — the edge-triggered
	// failPeer sweep can only reach requests that already exist, and a
	// later post would otherwise wait forever on a peer that can no
	// longer answer (a receive touches no connection, so the channel
	// cannot refuse it).
	lost map[int]error

	// cbq holds completion continuations queued by complete while the
	// lock was held; unlockNotify drains it after release.
	cbq []func()

	// wake, when set (SetWake), is fired outside the lock after a post
	// leaves new protocol work behind — the background progress
	// engine's doorbell.
	wake func()

	// Stats is guarded by mu. Concurrent readers (the obs registry,
	// mpstat -metrics) must use StatsSnapshot; direct field access is
	// only safe when nothing else touches the device.
	Stats DeviceStats

	// edgeSeq holds the per-destination trace correlation counters
	// (guarded by mu, allocated on first stamped send). Seq 0 is
	// reserved for "unstamped", so counters start at 1.
	edgeSeq []uint32
}

// DefaultEagerMax is the eager/rendezvous switchover. Messages at or
// below this size are sent eagerly; larger ones use RTS/CTS
// rendezvous and land zero-copy in the posted buffer.
const DefaultEagerMax = 64 << 10

// NewDevice wraps a channel endpoint.
func NewDevice(ch channel.Channel, eagerMax int) *Device {
	if eagerMax <= 0 {
		eagerMax = DefaultEagerMax
	}
	return &Device{
		ch:       ch,
		rank:     ch.Rank(),
		eagerMax: eagerMax,
		active:   make(map[uint64]*Request),
	}
}

// Rank returns this device's world rank.
func (d *Device) Rank() int { return d.rank }

// Size returns the world size.
func (d *Device) Size() int { return d.ch.Size() }

// EagerMax returns the eager threshold.
func (d *Device) EagerMax() int { return d.eagerMax }

// Channel exposes the underlying channel (stats surfaces, tests).
func (d *Device) Channel() channel.Channel { return d.ch }

func (d *Device) newRequest(kind reqKind, buf Buffer, peer, tag int, ctx int32) *Request {
	d.nextID++
	req := &Request{id: d.nextID, kind: kind, buf: buf, peer: peer, tag: tag, ctx: ctx}
	if tr := obs.Active(); tr != nil {
		// SpanIDFor returns 0 when the flight recorder samples this
		// request out; the zero also suppresses the completion-time
		// Span emit, so an elided request costs no clock reads.
		if id := tr.SpanIDFor(d.rank, obs.KADIReq); id != 0 {
			req.traceSpan = id
			req.traceParent = tr.Current(d.rank)
			req.traceStart = tr.Now()
		}
	}
	return req
}

// SetWake installs (or clears, with nil) the post doorbell: it is
// fired outside the lock whenever a post leaves an incomplete request
// behind, so a parked background progress engine can cut its sleep
// short. Install it before the device is shared between goroutines.
func (d *Device) SetWake(wake func()) {
	d.mu.Lock()
	d.wake = wake
	d.mu.Unlock()
}

// OnComplete registers a continuation that runs exactly once when the
// request completes — on whichever goroutine's device call (or
// progress pass) completes it, after the device lock is released. A
// request that is already complete runs f immediately on the calling
// goroutine. This is what lets Isend/Irecv finish without the caller
// ever re-entering Wait.
func (d *Device) OnComplete(req *Request, f func()) {
	d.mu.Lock()
	if req.Done() {
		d.mu.Unlock()
		f()
		return
	}
	req.onDone = append(req.onDone, f)
	d.mu.Unlock()
}

// unlockNotify releases the device lock and then runs the completion
// continuations queued since it was taken. Every public entry point
// that can complete requests exits through here; continuations must
// not run under the lock because they may re-enter the device.
func (d *Device) unlockNotify() {
	cbs := d.cbq
	if cbs != nil {
		d.cbq = nil
	}
	d.mu.Unlock()
	for _, cb := range cbs {
		cb()
	}
}

// unlockWake is unlockNotify plus the progress-engine doorbell, for
// posts that leave new protocol work behind.
func (d *Device) unlockWake() {
	wake := d.wake
	d.unlockNotify()
	if wake != nil {
		wake()
	}
}

// complete marks a request terminal and emits its trace span. Every
// completion path funnels through here (lock held) so the request's
// full lifetime (post → protocol steps → completion/cancel/failure)
// is observable no matter which step finished it.
func (d *Device) complete(req *Request) {
	// err and status are fully written by now; the release store
	// publishes them to lock-free Done readers.
	req.state.Store(uint32(stComplete))
	if len(req.onDone) > 0 {
		d.cbq = append(d.cbq, req.onDone...)
		req.onDone = nil
	}
	if req.traceSpan == 0 {
		return
	}
	if tr := obs.Active(); tr != nil {
		dir := obs.ReqSend
		if req.kind == reqRecv {
			dir = obs.ReqRecv
		}
		peer := req.peer
		if peer < 0 { // AnySource: report the matched sender
			peer = req.status.Source
		}
		var size int
		if req.buf != nil {
			size = req.buf.Len()
		}
		tr.Span(d.rank, obs.KADIReq, req.traceSpan, req.traceParent, req.traceStart,
			uint64(dir), uint64(peer), uint64(size))
	}
	req.traceSpan = 0
}

// --- send path --------------------------------------------------------------

// Isend starts a (buffered-eager or rendezvous) send of buf to world
// rank dest and returns immediately. Sends to the device's own rank
// are delivered locally without touching the channel (MPI requires
// self-sends to work on every transport).
func (d *Device) Isend(buf Buffer, dest, tag int, ctx int32, sync bool) (*Request, error) {
	d.mu.Lock()
	req, err := d.isendLocked(buf, dest, tag, ctx, sync)
	if req != nil && !req.Done() {
		d.unlockWake()
	} else {
		d.unlockNotify()
	}
	return req, err
}

func (d *Device) isendLocked(buf Buffer, dest, tag int, ctx int32, sync bool) (*Request, error) {
	if dest < 0 || dest >= d.Size() {
		return nil, fmt.Errorf("%w: dest %d of %d", ErrRank, dest, d.Size())
	}
	if dest == d.rank {
		return d.selfSend(buf, tag, ctx, sync)
	}
	if werr, dead := d.lost[dest]; dead {
		d.Stats.TransportErrors++
		return nil, werr
	}
	req := d.newRequest(reqSend, buf, dest, tag, ctx)
	req.sync = sync
	size := buf.Len()
	if !sync && size <= d.eagerMax {
		hdr := channel.Header{
			Type: channel.PktEager, Source: int32(d.rank),
			Tag: int32(tag), Context: ctx, ReqA: req.id,
		}
		d.stampEdge(&hdr, dest, size)
		if err := d.ch.Send(dest, hdr, buf.Bytes()); err != nil {
			return nil, d.transportErr(err)
		}
		d.Stats.EagerSent++
		d.Stats.BytesSent += uint64(size)
		d.complete(req)
		return req, nil
	}
	// Rendezvous: announce, wait for clear-to-send. The RTS carries
	// no payload (the channel forces Size to the wire length, 0), so
	// the pending transfer size is advertised in ReqB.
	hdr := channel.Header{
		Type: channel.PktRTS, Source: int32(d.rank),
		Tag: int32(tag), Context: ctx, ReqA: req.id, ReqB: uint64(size),
	}
	d.stampEdge(&hdr, dest, size)
	req.edgeSeq = hdr.Seq
	if err := d.sendHeaderOnly(dest, hdr); err != nil {
		return nil, d.transportErr(err)
	}
	d.Stats.RndvSent++
	d.active[req.id] = req
	return req, nil
}

// sendHeaderOnly transmits a payload-free packet (RTS/CTS/control).
func (d *Device) sendHeaderOnly(dest int, hdr channel.Header) error {
	return d.ch.Send(dest, hdr, nil)
}

// stampEdge assigns the next per-destination correlation sequence to
// a message-bearing packet (eager or RTS) and records the sender's
// half of the cross-rank edge. Lock held. When tracing is off the
// header keeps Seq 0, so the merge pass sees exactly the messages
// that were stamped — never a half-traced run's leftovers.
func (d *Device) stampEdge(hdr *channel.Header, dest, bytes int) {
	tr := obs.Active()
	if tr == nil {
		return
	}
	if d.edgeSeq == nil {
		d.edgeSeq = make([]uint32, d.Size())
	}
	d.edgeSeq[dest]++
	hdr.Seq = d.edgeSeq[dest]
	tr.Instant(d.rank, obs.KEdge, uint64(obs.EdgeSend),
		obs.PackCorr(d.rank, dest, hdr.Seq),
		uint64(uint32(hdr.Context))<<32|uint64(uint32(hdr.Tag)), uint64(bytes))
}

// noteEdgeRecv records the receiver's half of a stamped message edge
// at payload arrival (eager delivery or rendezvous DATA). Arrival —
// not match — time is what the merge pass wants: it lower-bounds the
// clock offset between the two ranks regardless of when the local
// receive is finally posted.
func (d *Device) noteEdgeRecv(hdr channel.Header) {
	if hdr.Seq == 0 {
		return
	}
	tr := obs.Active()
	if tr == nil {
		return
	}
	tr.Instant(d.rank, obs.KEdge, uint64(obs.EdgeRecv),
		obs.PackCorr(int(hdr.Source), d.rank, hdr.Seq),
		uint64(uint32(hdr.Context))<<32|uint64(uint32(hdr.Tag)), uint64(hdr.Size))
}

// selfSend delivers a message locally: an immediately-matched posted
// receive gets the payload copied straight across; otherwise the
// payload is buffered on the unexpected queue. Synchronous self-sends
// complete when matched, which for the unexpected case means a
// matching receive must eventually be posted from the same rank (the
// usual Isend-self / Irecv-self pairing).
func (d *Device) selfSend(buf Buffer, tag int, ctx int32, sync bool) (*Request, error) {
	req := d.newRequest(reqSend, buf, d.rank, tag, ctx)
	// ReqA carries the request id so each pending synchronous
	// self-send can be distinguished even when tags and sizes match.
	hdr := channel.Header{
		Type: channel.PktEager, Source: int32(d.rank),
		Tag: int32(tag), Context: ctx, Size: uint32(buf.Len()), ReqA: req.id,
	}
	if posted := d.matchPosted(hdr); posted != nil {
		d.completeEagerRecv(posted, hdr, buf.Bytes())
		delete(d.active, posted.id)
		d.complete(req)
		d.Stats.BytesSent += uint64(buf.Len())
		return req, nil
	}
	payload := append([]byte(nil), buf.Bytes()...)
	d.Stats.Unexpected++
	d.unexp = append(d.unexp, unexpected{hdr: hdr, payload: payload})
	if sync {
		// Complete when a local receive matches: reuse the
		// conditional machinery by checking on Test/Wait.
		req.sync = true
		d.active[req.id] = req
		d.pendingSelfSyncs = append(d.pendingSelfSyncs, selfSync{req: req, hdr: hdr})
		return req, nil
	}
	d.complete(req)
	d.Stats.BytesSent += uint64(buf.Len())
	return req, nil
}

// selfSync tracks a synchronous self-send awaiting its local match.
type selfSync struct {
	req *Request
	hdr channel.Header
}

// resolveSelfSyncs completes synchronous self-sends whose unexpected
// entry has been consumed by a local receive.
func (d *Device) resolveSelfSyncs() {
	if len(d.pendingSelfSyncs) == 0 {
		return
	}
	kept := d.pendingSelfSyncs[:0]
	for _, ss := range d.pendingSelfSyncs {
		consumed := true
		for i := range d.unexp {
			if d.unexp[i].hdr == ss.hdr {
				consumed = false
				break
			}
		}
		if consumed {
			d.complete(ss.req)
			delete(d.active, ss.req.id)
			d.Stats.BytesSent += uint64(ss.req.buf.Len())
		} else {
			kept = append(kept, ss)
		}
	}
	d.pendingSelfSyncs = kept
}

// --- receive path -------------------------------------------------------------

// Irecv posts a receive and returns immediately. Earlier unexpected
// arrivals are matched first, preserving MPI ordering semantics.
func (d *Device) Irecv(buf Buffer, source, tag int, ctx int32) (*Request, error) {
	d.mu.Lock()
	req, err := d.irecvLocked(buf, source, tag, ctx)
	if req != nil && !req.Done() {
		d.unlockWake()
	} else {
		d.unlockNotify()
	}
	return req, err
}

func (d *Device) irecvLocked(buf Buffer, source, tag int, ctx int32) (*Request, error) {
	if source != AnySource && (source < 0 || source >= d.Size()) {
		return nil, fmt.Errorf("%w: source %d of %d", ErrRank, source, d.Size())
	}
	req := d.newRequest(reqRecv, buf, source, tag, ctx)
	for i := range d.unexp {
		u := &d.unexp[i]
		if !matches(req, u.hdr) {
			continue
		}
		hdr := u.hdr
		payload := u.payload
		d.unexp = append(d.unexp[:i], d.unexp[i+1:]...)
		switch hdr.Type {
		case channel.PktEager:
			d.completeEagerRecv(req, hdr, payload)
		case channel.PktRTS:
			d.acceptRendezvous(req, hdr)
		}
		return req, nil
	}
	// Only after the unexpected queue comes up empty: traffic that
	// arrived before a peer died is still valid and must stay
	// receivable.
	if source != AnySource {
		if werr, dead := d.lost[source]; dead {
			d.Stats.TransportErrors++
			return nil, werr
		}
	}
	d.posted = append(d.posted, req)
	d.active[req.id] = req
	return req, nil
}

// completeEagerRecv copies an already-buffered eager payload into the
// request's buffer.
func (d *Device) completeEagerRecv(req *Request, hdr channel.Header, payload []byte) {
	n := int(hdr.Size)
	if n > req.buf.Len() {
		req.err = fmt.Errorf("%w: got %d bytes into %d-byte buffer", ErrTruncate, n, req.buf.Len())
		n = req.buf.Len()
	}
	copy(req.buf.Bytes()[:n], payload[:n])
	req.status = Status{Source: int(hdr.Source), Tag: int(hdr.Tag), Count: n}
	d.complete(req)
	d.Stats.BytesRecvd += uint64(n)
}

// acceptRendezvous answers a matched RTS with a CTS; the DATA packet
// will be steered directly into req's buffer.
func (d *Device) acceptRendezvous(req *Request, rts channel.Header) {
	size := int(rts.ReqB) // advertised transfer size
	if size > req.buf.Len() {
		req.err = fmt.Errorf("%w: rendezvous %d bytes into %d-byte buffer", ErrTruncate, size, req.buf.Len())
	}
	req.status = Status{Source: int(rts.Source), Tag: int(rts.Tag), Count: size}
	d.active[req.id] = req
	cts := channel.Header{
		Type: channel.PktCTS, Source: int32(d.rank),
		Tag: rts.Tag, Context: rts.Context,
		ReqA: rts.ReqA, ReqB: req.id,
	}
	if err := d.sendHeaderOnly(int(rts.Source), cts); err != nil && req.err == nil {
		req.err = d.transportErr(err)
		d.complete(req)
		delete(d.active, req.id)
	}
}

func matches(req *Request, hdr channel.Header) bool {
	if req.ctx != hdr.Context {
		return false
	}
	if req.peer != AnySource && int32(req.peer) != hdr.Source {
		return false
	}
	if req.tag != AnyTag && int32(req.tag) != hdr.Tag {
		return false
	}
	return true
}

// matchPosted removes and returns the first posted receive matching
// hdr.
func (d *Device) matchPosted(hdr channel.Header) *Request {
	for i, req := range d.posted {
		if matches(req, hdr) {
			d.posted = append(d.posted[:i], d.posted[i+1:]...)
			return req
		}
	}
	return nil
}

// CancelReq abandons an incomplete request: a posted receive is
// removed from the match list and any request is marked complete with
// ErrCancelled. Collective error paths use this so a failing
// operation never leaves buffers registered in the device. Cancelling
// a rendezvous send whose CTS later arrives is safe for this device
// (the CTS is dropped), but the peer's posted receive then depends on
// its own failure handling — cancellation is strictly a
// teardown-path tool. Completed requests are left untouched.
func (d *Device) CancelReq(req *Request) {
	if req == nil {
		return
	}
	d.mu.Lock()
	if req.Done() {
		d.mu.Unlock()
		return
	}
	d.cancelLocked(req)
	d.unlockNotify()
}

func (d *Device) cancelLocked(req *Request) {
	for i, r := range d.posted {
		if r == req {
			d.posted = append(d.posted[:i], d.posted[i+1:]...)
			break
		}
	}
	delete(d.active, req.id)
	kept := d.pendingSelfSyncs[:0]
	for _, ss := range d.pendingSelfSyncs {
		if ss.req != req {
			kept = append(kept, ss)
		}
	}
	d.pendingSelfSyncs = kept
	req.err = ErrCancelled
	d.complete(req)
	d.Stats.Cancelled++
}

// Outstanding reports the number of incomplete requests registered
// with the device (posted receives plus protocol-pending sends). The
// collective layer's drain discipline guarantees this returns to zero
// after every collective, successful or not.
func (d *Device) Outstanding() int {
	d.mu.Lock()
	n := len(d.active)
	d.mu.Unlock()
	return n
}

// StatsSnapshot returns a consistent copy of the device counters,
// safe to call while other goroutines drive the device.
func (d *Device) StatsSnapshot() DeviceStats {
	d.mu.Lock()
	s := d.Stats
	d.mu.Unlock()
	return s
}

// --- transport failure handling ----------------------------------------------

// transportErr converts a channel PeerError into a typed ErrTransport
// error, failing every other request bound to the same peer first so
// no request outlives its connection. Non-peer errors pass through.
func (d *Device) transportErr(err error) error {
	var pe *channel.PeerError
	if !errors.As(err, &pe) {
		return err
	}
	d.failPeer(pe.Peer, pe.Err)
	d.Stats.TransportErrors++
	return fmt.Errorf("%w: peer %d: %v", ErrTransport, pe.Peer, pe.Err)
}

// failPeer declares a peer connection dead: every outstanding request
// bound to that peer — posted receives, rendezvous sends awaiting
// CTS, receives awaiting DATA — completes with a typed ErrTransport
// error. Receives posted with AnySource stay posted; they can still
// be satisfied by surviving peers. Unexpected eager payloads already
// received from the dead peer remain matchable: their bytes arrived
// intact before the failure.
func (d *Device) failPeer(peer int, cause error) {
	werr := fmt.Errorf("%w: peer %d: %v", ErrTransport, peer, cause)
	if d.lost == nil {
		d.lost = make(map[int]error)
	}
	if _, seen := d.lost[peer]; !seen {
		d.Stats.PeersLost++
		d.lost[peer] = werr
	}
	kept := d.posted[:0]
	for _, r := range d.posted {
		if r.peer == peer {
			r.err = werr
			d.complete(r)
			delete(d.active, r.id)
			d.Stats.TransportErrors++
			continue
		}
		kept = append(kept, r)
	}
	d.posted = kept
	for id, r := range d.active {
		if r.peer == peer && !r.Done() {
			r.err = werr
			d.complete(r)
			delete(d.active, id)
			d.Stats.TransportErrors++
		}
	}
}

// --- progress engine -----------------------------------------------------------

// Progress makes one polling pass over the channel. It reports
// whether any packet was processed. A peer-confined transport failure
// is absorbed here: the affected requests complete with ErrTransport
// (observed via TestReq/WaitReq) and the progress engine keeps
// running for the surviving peers.
func (d *Device) Progress() (bool, error) {
	d.mu.Lock()
	progressed, err := d.progressLocked()
	d.unlockNotify()
	return progressed, err
}

func (d *Device) progressLocked() (bool, error) {
	d.Stats.Polls++
	d.resolveSelfSyncs()
	progressed, err := d.ch.Poll(d)
	if err != nil {
		var pe *channel.PeerError
		if errors.As(err, &pe) {
			d.failPeer(pe.Peer, pe.Err)
			// Report progress: requests changed state, so waiters
			// must re-check before idling.
			return true, nil
		}
		return progressed, err
	}
	return progressed, nil
}

// WaitReq blocks (polling-wait) until the request completes. The
// embedder yield (idle) runs between fruitless passes, outside the
// device lock, so a GC triggered from the yield may itself drive
// Progress.
func (d *Device) WaitReq(req *Request) (Status, error) {
	if req.Done() {
		return req.status, req.err
	}
	// Heartbeat for the stall watchdog: a wait stuck past the deadline
	// (peer died silently, matching bug, lost wakeup) gets diagnosed
	// instead of hanging forever in silence.
	obs.BeatEnter(d.rank, obs.OpDevWait, req.peer)
	defer obs.BeatExit(d.rank)
	for !req.Done() {
		progressed, err := d.Progress()
		if err != nil {
			return req.status, err
		}
		obs.BeatPulse(d.rank)
		if !progressed && !req.Done() {
			d.idle()
		}
	}
	return req.status, req.err
}

// Idle is the exported form of idle for upper layers' polling loops.
func (d *Device) Idle() { d.idle() }

// idle is called between fruitless progress polls: it runs the
// embedder's yield (the GC poll point for Motor) and releases the
// processor so peer ranks sharing this machine can make progress —
// essential on single-CPU hosts, where a busy spin would otherwise
// stall the partner until the scheduler preempts.
func (d *Device) idle() {
	if d.Yield != nil {
		d.Yield()
	}
	runtime.Gosched()
}

// TestReq makes one progress pass and reports completion.
func (d *Device) TestReq(req *Request) (bool, Status, error) {
	if !req.Done() {
		if _, err := d.Progress(); err != nil {
			return false, req.status, err
		}
	}
	if !req.Done() {
		return false, Status{}, nil
	}
	return true, req.status, req.err
}

// Iprobe checks (with one progress pass) whether a matching message
// has arrived without receiving it.
func (d *Device) Iprobe(source, tag int, ctx int32) (bool, Status, error) {
	d.mu.Lock()
	if _, err := d.progressLocked(); err != nil {
		d.unlockNotify()
		return false, Status{}, err
	}
	probe := &Request{peer: source, tag: tag, ctx: ctx}
	for i := range d.unexp {
		if matches(probe, d.unexp[i].hdr) {
			h := d.unexp[i].hdr
			count := int(h.Size)
			if h.Type == channel.PktRTS {
				count = int(h.ReqB)
			}
			d.unlockNotify()
			return true, Status{Source: int(h.Source), Tag: int(h.Tag), Count: count}, nil
		}
	}
	// Nothing queued from this source: a probe aimed at a dead peer can
	// never be satisfied, so surface the failure instead of letting the
	// caller poll forever (same ordering as Irecv — traffic that arrived
	// before the peer died stays matchable above).
	if source != AnySource {
		if werr, dead := d.lost[source]; dead {
			d.Stats.TransportErrors++
			d.unlockNotify()
			return false, Status{}, werr
		}
	}
	d.unlockNotify()
	return false, Status{}, nil
}

// SendCtrl transmits a control packet (used by collectives for
// tokens that bypass matching).
func (d *Device) SendCtrl(dest int, tag int, ctx int32) error {
	hdr := channel.Header{Type: channel.PktCtrl, Source: int32(d.rank), Tag: int32(tag), Context: ctx}
	d.mu.Lock()
	err := d.sendHeaderOnly(dest, hdr)
	d.unlockNotify()
	return err
}

// PollCtrl removes and returns the first control packet matching
// (source, tag, ctx), making one progress pass first.
func (d *Device) PollCtrl(source, tag int, ctx int32) (bool, error) {
	d.mu.Lock()
	if _, err := d.progressLocked(); err != nil {
		d.unlockNotify()
		return false, err
	}
	probe := &Request{peer: source, tag: tag, ctx: ctx}
	for i := range d.ctrl {
		if matches(probe, d.ctrl[i]) {
			d.ctrl = append(d.ctrl[:i], d.ctrl[i+1:]...)
			d.unlockNotify()
			return true, nil
		}
	}
	// As with Iprobe: a control packet from a dead peer will never
	// arrive, so a poll aimed at it must fail typed rather than spin.
	if source != AnySource {
		if werr, dead := d.lost[source]; dead {
			d.Stats.TransportErrors++
			d.unlockNotify()
			return false, werr
		}
	}
	d.unlockNotify()
	return false, nil
}

// --- channel.Sink ---------------------------------------------------------------

// Deliver implements channel.Sink: it chooses the destination buffer
// for an incoming payload. Expected eager messages and rendezvous
// DATA land directly in the user buffer (zero intermediate copy);
// unexpected eager payloads go to a scratch buffer that becomes the
// unexpected-queue entry.
func (d *Device) Deliver(hdr channel.Header) []byte {
	d.Stats.Deliveries++
	d.curReq, d.curUnexp = nil, false
	switch hdr.Type {
	case channel.PktEager:
		if req := d.matchPosted(hdr); req != nil {
			d.curReq = req
			n := int(hdr.Size)
			if n > req.buf.Len() {
				// Truncation: stage via scratch so the channel can
				// drain the wire; the copy-out happens in Done.
				d.curUnexp = true
				return d.scratch(n)
			}
			if n == 0 {
				return nil
			}
			return req.buf.Bytes()[:n]
		}
		d.curUnexp = true
		return d.scratch(int(hdr.Size))
	case channel.PktData:
		req := d.active[hdr.ReqB]
		if req == nil {
			// Receiver request vanished; drain to scratch.
			d.curUnexp = true
			return d.scratch(int(hdr.Size))
		}
		d.curReq = req
		n := int(hdr.Size)
		if n > req.buf.Len() {
			d.curUnexp = true
			return d.scratch(n)
		}
		if n == 0 {
			return nil
		}
		return req.buf.Bytes()[:n]
	default:
		// RTS / CTS / control carry no payload.
		return nil
	}
}

func (d *Device) scratch(n int) []byte {
	if cap(d.tmp) < n {
		d.tmp = make([]byte, n)
	}
	return d.tmp[:n]
}

// Done implements channel.Sink: protocol actions after the payload
// (if any) has been written to the buffer Deliver returned.
func (d *Device) Done(hdr channel.Header) {
	switch hdr.Type {
	case channel.PktEager:
		d.Stats.EagerRecvd++
		d.noteEdgeRecv(hdr)
		switch {
		case d.curReq != nil && !d.curUnexp:
			req := d.curReq
			req.status = Status{Source: int(hdr.Source), Tag: int(hdr.Tag), Count: int(hdr.Size)}
			d.complete(req)
			delete(d.active, req.id)
			d.Stats.BytesRecvd += uint64(hdr.Size)
		case d.curReq != nil: // matched but truncated, payload in scratch
			req := d.curReq
			d.completeEagerRecv(req, hdr, d.tmp[:hdr.Size])
			delete(d.active, req.id)
		default: // unexpected
			d.Stats.Unexpected++
			payload := append([]byte(nil), d.tmp[:hdr.Size]...)
			d.unexp = append(d.unexp, unexpected{hdr: hdr, payload: payload})
		}

	case channel.PktRTS:
		if req := d.matchPosted(hdr); req != nil {
			d.acceptRendezvous(req, hdr)
		} else {
			d.Stats.Unexpected++
			d.unexp = append(d.unexp, unexpected{hdr: hdr})
		}

	case channel.PktCTS:
		req := d.active[hdr.ReqA]
		if req == nil || req.kind != reqSend {
			return
		}
		data := channel.Header{
			Type: channel.PktData, Source: int32(d.rank),
			Tag: int32(req.tag), Context: req.ctx,
			ReqA: req.id, ReqB: hdr.ReqB,
			Seq: req.edgeSeq, // carry the RTS's correlation id to the payload
		}
		err := d.ch.Send(req.peer, data, req.buf.Bytes())
		delete(d.active, req.id)
		if err != nil {
			err = d.transportErr(err)
		}
		req.err = err
		d.complete(req)
		d.Stats.BytesSent += uint64(req.buf.Len())

	case channel.PktData:
		d.Stats.DataRecvd++
		d.noteEdgeRecv(hdr)
		if d.curReq != nil {
			req := d.curReq
			if d.curUnexp {
				// Truncated rendezvous: copy what fits from scratch.
				n := req.buf.Len()
				copy(req.buf.Bytes(), d.tmp[:n])
				if req.err == nil {
					req.err = ErrTruncate
				}
				req.status.Count = n
			}
			d.complete(req)
			delete(d.active, req.id)
			d.Stats.BytesRecvd += uint64(req.status.Count)
		}

	case channel.PktCtrl:
		d.Stats.CtrlPackets++
		d.ctrl = append(d.ctrl, hdr)
	}
	d.curReq, d.curUnexp = nil, false
}
