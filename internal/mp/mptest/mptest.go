// Package mptest is a deterministic concurrency harness for the
// message-passing core. It runs guest actors and manual-mode
// progress engines (mp.StartProgress with ProgressOptions.Manual)
// under one seeded virtual scheduler: every interleaving of guest
// steps and progress passes is a pure function of the seed, so a
// failing schedule replays exactly by re-running with the same seed.
//
// The harness controls the two decision points that matter to the
// progress engine's correctness: WHEN each guest actor executes its
// next unit of work, and WHEN each rank's progress engine runs a
// pass. Guest code participates by splitting its work into units
// delimited by step() calls; the scheduler runs exactly one unit (or
// one progress pass) at a time, in the seeded order — strict
// alternation, no actor ever runs concurrently with another.
//
// Units must be non-blocking: post (Isend/Irecv), poll (Test,
// Iprobe), compute, allocate — never a blocking Wait, which would
// stall the scheduler. A completion dependency is expressed as a
// Test loop with a step() before each poll; the seeded stream
// interleaves the peer's units and progress passes until the poll
// succeeds.
package mptest

import (
	"fmt"
	"math/rand"
	"sync"

	"motor/internal/mp"
)

type actorState struct {
	waiting  bool // parked in step(), ready for a grant
	finished bool
}

// Driver schedules guest units against manual progress engines.
type Driver struct {
	seed int64
	rng  *rand.Rand

	engines []*mp.Progress

	mu     sync.Mutex
	cond   *sync.Cond
	turn   int // actor granted the current unit (-1: none)
	actors []*actorState

	// trace records the executed schedule ("gN" guest unit, "pN"
	// progress pass) so a failure report shows the interleaving
	// alongside the seed.
	trace []string
}

// New creates a driver. The same seed over the same program yields
// the same schedule.
func New(seed int64) *Driver {
	d := &Driver{seed: seed, rng: rand.New(rand.NewSource(seed)), turn: -1}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// Seed returns the driver's seed (print it on failure).
func (d *Driver) Seed() int64 { return d.seed }

// Trace returns the executed schedule.
func (d *Driver) Trace() []string { return d.trace }

// AddEngine registers a manual progress engine as a schedulable
// actor. Engines are stepped only by the scheduler, never
// concurrently with a guest unit.
func (d *Driver) AddEngine(p *mp.Progress) {
	if !p.Manual() {
		panic("mptest: driver requires a manual-mode progress engine")
	}
	d.engines = append(d.engines, p)
}

// Go starts a guest actor: body runs on its own goroutine but only
// advances when the scheduler grants it a unit. body must call
// step() before each unit of work and must split at every point
// whose ordering matters.
func (d *Driver) Go(body func(step func())) {
	d.mu.Lock()
	id := len(d.actors)
	st := &actorState{}
	d.actors = append(d.actors, st)
	d.mu.Unlock()

	step := func() {
		d.mu.Lock()
		st.waiting = true
		d.cond.Broadcast()
		for d.turn != id {
			d.cond.Wait()
		}
		st.waiting = false
		d.turn = -1
		d.mu.Unlock()
	}

	go func() {
		body(step)
		d.mu.Lock()
		st.finished = true
		d.mu.Unlock()
		d.cond.Broadcast()
	}()
}

// grant runs one unit of actor id to completion: wait for the actor
// to reach a step boundary, hand it the turn, then wait until it is
// back at a boundary (or finished). Strict alternation — nothing
// else runs in between.
func (d *Driver) grant(id int) {
	st := d.actors[id]
	d.mu.Lock()
	for !st.waiting && !st.finished {
		d.cond.Wait()
	}
	if st.finished {
		d.mu.Unlock()
		return
	}
	d.turn = id
	d.cond.Broadcast()
	for d.turn == id {
		d.cond.Wait()
	}
	for !st.waiting && !st.finished {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

// Run drives the schedule until every guest actor has finished: each
// round the seeded stream picks either one guest unit or one
// progress pass. Returns the number of rounds executed.
func (d *Driver) Run() int {
	rounds := 0
	for {
		d.mu.Lock()
		finished := true
		for _, st := range d.actors {
			if !st.finished {
				finished = false
				break
			}
		}
		n := len(d.actors)
		d.mu.Unlock()
		if finished {
			return rounds
		}
		rounds++
		pick := d.rng.Intn(n + len(d.engines))
		if pick < n {
			d.trace = append(d.trace, fmt.Sprintf("g%d", pick))
			d.grant(pick)
		} else {
			ei := pick - n
			d.trace = append(d.trace, fmt.Sprintf("p%d", ei))
			_, _ = d.engines[ei].Step()
		}
	}
}

// Drain steps every engine until none reports progress — the
// end-of-test settle that completes in-flight protocol tails.
func (d *Driver) Drain() {
	for {
		progressed := false
		for _, p := range d.engines {
			ok, _ := p.Step()
			progressed = progressed || ok
		}
		if !progressed {
			return
		}
	}
}
