package mp

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"motor/internal/obs"
	"motor/internal/pal"
	"motor/internal/pal/fault"
)

// The stitch suite is the end-to-end check of cross-rank trace
// stitching: a 4-rank traced sock run with an artificially slow rank
// must merge into one Perfetto document where every edge:send has a
// matching edge:recv flow, collective instances align across all
// ranks, and the straggler report names the delayed rank.

// splitTraceByPID carves one in-process multi-rank trace into
// per-rank documents, simulating the one-file-per-OS-process layout
// the merge pass sees in a real multi-process run.
func splitTraceByPID(t *testing.T, trace []byte, n int) [][]byte {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatal(err)
	}
	perRank := make([][]map[string]any, n)
	for _, ev := range doc.TraceEvents {
		pid, ok := ev["pid"].(float64)
		if !ok || int(pid) < 0 || int(pid) >= n {
			t.Fatalf("trace event with unexpected pid: %v", ev)
		}
		perRank[int(pid)] = append(perRank[int(pid)], ev)
	}
	out := make([][]byte, n)
	for r := 0; r < n; r++ {
		if len(perRank[r]) == 0 {
			t.Fatalf("rank %d emitted no trace events", r)
		}
		b, err := json.Marshal(map[string]any{"traceEvents": perRank[r]})
		if err != nil {
			t.Fatal(err)
		}
		out[r] = b
	}
	return out
}

func TestStitchFourRanksWithStraggler(t *testing.T) {
	if obs.Active() != nil {
		t.Fatal("tracer already active at test start")
	}
	// A big ring so no edge half is overwritten by wrap — an
	// unmatched edge would be a test artifact, not a stitching bug.
	tr := obs.Start(obs.Options{Shards: 8, ShardSize: 1 << 16})
	if tr == nil {
		t.Fatal("obs.Start refused")
	}
	stopped := false
	defer func() {
		if !stopped {
			obs.Stop(tr)
		}
	}()

	// Rank 2 pays a delay on its socket reads. Read delays do not
	// propagate: rank 2's sends still leave on time, so only rank 2
	// arrives late at the collectives — the planted straggler. Count
	// bounds the total injected latency so a hot polling loop cannot
	// amplify it without bound.
	const n = 4
	slow := fault.New(pal.Default, fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpRead, Kind: fault.KindDelay, Delay: 2 * time.Millisecond, Count: 1000},
	}})
	plats := make([]pal.Platform, n)
	plats[2] = slow

	// Each iteration re-syncs every rank to a shared wall-clock
	// deadline before the exchange. Without this, lateness propagates:
	// a rank whose collective exit waited on the straggler's delayed
	// forwards arrives late at the next instance too, and the report
	// can no longer tell the cause from the victims.
	const (
		iters  = 16
		period = 25 * time.Millisecond
	)
	epoch := time.Now()
	body := func(w *World) error {
		r := w.Rank()
		payload := make([]byte, 64)
		recv := make([]byte, 64)
		ar := make([]byte, 8)
		for i := 0; i < iters; i++ {
			time.Sleep(time.Until(epoch.Add(time.Duration(i+1) * period)))
			// Ring shift: everyone sends eagerly first, so a delayed
			// rank slows only its own receive.
			if err := w.Comm.Send(payload, (r+1)%n, 7); err != nil {
				return err
			}
			if _, err := w.Comm.Recv(recv, (r+n-1)%n, 7); err != nil {
				return err
			}
			if err := w.Comm.Allreduce(payload[:8], ar, TypeUint8, OpSum); err != nil {
				return err
			}
		}
		return w.Comm.Barrier()
	}
	errs := runChaos(t, plats, 0, []func(w *World) error{body, body, body, body})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}

	obs.Stop(tr)
	stopped = true
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; enlarge the test tracer", tr.Dropped())
	}

	m, err := obs.MergeTraces(splitTraceByPID(t, buf.Bytes(), n)...)
	if err != nil {
		t.Fatal(err)
	}
	if m.Unmatched != 0 {
		t.Fatalf("unmatched edge halves = %d, want 0", m.Unmatched)
	}
	// At least the explicit ring messages (n per iteration) must have
	// become flow pairs; collective-internal edges only add to that.
	if m.Flows < n*iters {
		t.Fatalf("flow pairs = %d, want >= %d", m.Flows, n*iters)
	}

	rep := m.Report
	if len(rep.Collectives) == 0 {
		t.Fatal("no collective instances in straggler report")
	}
	for _, inst := range rep.Collectives {
		if inst.Ranks != n {
			t.Fatalf("collective %s cctx=%d seq=%d aligned %d ranks, want %d",
				inst.Name, inst.Ctx, inst.Seq, inst.Ranks, n)
		}
	}
	if rep.Straggler != 2 {
		t.Fatalf("straggler = %d, want the delayed rank 2\nranks: %+v",
			rep.Straggler, rep.Ranks)
	}

	// Schema check on the merged document: flow pairs are balanced
	// and only phases the trace viewers understand appear.
	var out bytes.Buffer
	if err := m.Export(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	flowIDs := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X", "i", "b", "e", "M":
		case "s":
			id, _ := ev["id"].(string)
			flowIDs[id]++
		case "f":
			id, _ := ev["id"].(string)
			flowIDs[id]--
		default:
			t.Fatalf("merged trace contains unknown phase %q: %v", ph, ev)
		}
	}
	if len(flowIDs) != m.Flows {
		t.Fatalf("distinct flow ids = %d, want %d", len(flowIDs), m.Flows)
	}
	for id, balance := range flowIDs {
		if balance != 0 {
			t.Fatalf("flow %s has unbalanced start/finish (%+d)", id, balance)
		}
	}
}

// TestWatchdogDetectsStalledRank plants a real stall — rank 0 blocks
// in Recv while its peer sits on the message — and checks the
// watchdog flags rank 0's wait before the peer finally sends.
func TestWatchdogDetectsStalledRank(t *testing.T) {
	stalls := make(chan obs.Stall, 16)
	wd := obs.StartWatchdog(obs.WatchdogConfig{
		Deadline: 50 * time.Millisecond,
		Poll:     10 * time.Millisecond,
		OnStall:  func(s obs.Stall) { stalls <- s },
	})
	defer wd.Stop()

	release := make(chan struct{})
	body := func(w *World) error {
		buf := make([]byte, 8)
		if w.Rank() == 0 {
			_, err := w.Comm.Recv(buf, 1, 99)
			return err
		}
		<-release
		return w.Comm.Send(buf, 0, 99)
	}
	done := make(chan error, 1)
	go func() { done <- RunLocal(ChannelShm, 2, 0, body) }()

	var got obs.Stall
	deadline := time.After(5 * time.Second)
wait:
	for {
		select {
		case s := <-stalls:
			// Filter on lane AND op: a previously-failed test can
			// leave zombie goroutines mid-wait on lane 0, and the
			// watchdog rightly reports those too.
			if s.Lane == 0 && (s.Op == obs.OpRecv || s.Op == obs.OpDevWait) {
				got = s
				break wait
			}
		case <-deadline:
			t.Fatal("watchdog never flagged the stalled rank")
		}
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if got.Waited < 50*time.Millisecond {
		t.Fatalf("stall waited %v < deadline", got.Waited)
	}
	if got.Pulses == 0 {
		t.Fatal("stalled wait shows zero poll pulses; heartbeat not wired")
	}
}
