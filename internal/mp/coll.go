package mp

import (
	"fmt"

	"motor/internal/mp/adi"
)

// Collective operations. All collectives run over the communicator's
// dedicated collective context, so they can never match application
// point-to-point traffic; per-operation tag bases keep successive
// collectives from cross-matching when ranks race ahead.
//
// Algorithms follow the classic MPICH choices: dissemination barrier,
// binomial-tree broadcast and reduce, linear scatter/gather from the
// root, and gather+broadcast allgather.

const (
	ctagBarrier  = 1 << 20
	ctagBcast    = 2 << 20
	ctagScatter  = 3 << 20
	ctagGather   = 4 << 20
	ctagReduce   = 5 << 20
	ctagGatherv  = 6 << 20
	ctagSizes    = 7 << 20
	ctagAlltoall = 8 << 20
)

// csend / crecv are blocking transfers on the collective context.
func (c *Comm) csend(buf []byte, dest, tag int) error {
	req, err := c.dev.Isend(adi.SliceBuf(buf), c.ranks[dest], tag, c.cctx, false)
	if err != nil {
		return err
	}
	_, err = c.dev.WaitReq(req)
	return err
}

func (c *Comm) crecv(buf []byte, source, tag int) (adi.Status, error) {
	req, err := c.dev.Irecv(adi.SliceBuf(buf), c.ranks[source], tag, c.cctx)
	if err != nil {
		return adi.Status{}, err
	}
	return c.dev.WaitReq(req)
}

// Barrier blocks until every member has entered it (dissemination
// algorithm: log2(n) rounds of token exchange).
func (c *Comm) Barrier() error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	r := c.myRank
	round := 0
	for k := 1; k < n; k <<= 1 {
		to := (r + k) % n
		from := (r - k + n) % n
		tag := ctagBarrier + round
		if err := c.csend(nil, to, tag); err != nil {
			return fmt.Errorf("mp: barrier send: %w", err)
		}
		if _, err := c.crecv(nil, from, tag); err != nil {
			return fmt.Errorf("mp: barrier recv: %w", err)
		}
		round++
	}
	return nil
}

// Bcast broadcasts root's buf to every member (binomial tree). All
// members must pass equal-length buffers.
func (c *Comm) Bcast(buf []byte, root int) error {
	n := c.Size()
	if err := c.checkDest(root); err != nil {
		return err
	}
	if n == 1 {
		return nil
	}
	rel := (c.myRank - root + n) % n
	// Receive from the parent (ranks other than root).
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (rel - mask + root + n) % n
			if _, err := c.crecv(buf, src, ctagBcast+mask); err != nil {
				return fmt.Errorf("mp: bcast recv: %w", err)
			}
			break
		}
		mask <<= 1
	}
	// Forward to children.
	mask >>= 1
	for mask > 0 {
		if rel+mask < n && rel&(mask-1) == 0 && rel&mask == 0 {
			dst := (rel + mask + root) % n
			if err := c.csend(buf, dst, ctagBcast+mask); err != nil {
				return fmt.Errorf("mp: bcast send: %w", err)
			}
		}
		mask >>= 1
	}
	return nil
}

// Scatter distributes equal chunks of root's sendbuf: rank i receives
// sendbuf[i*len(recvbuf) : (i+1)*len(recvbuf)]. sendbuf is ignored on
// non-roots.
func (c *Comm) Scatter(sendbuf, recvbuf []byte, root int) error {
	n := c.Size()
	if err := c.checkDest(root); err != nil {
		return err
	}
	chunk := len(recvbuf)
	if c.myRank == root {
		if len(sendbuf) != chunk*n {
			return fmt.Errorf("%w: scatter sendbuf %d bytes for %d chunks of %d", errInvalid, len(sendbuf), n, chunk)
		}
		var reqs []*adi.Request
		for r := 0; r < n; r++ {
			part := sendbuf[r*chunk : (r+1)*chunk]
			if r == root {
				copy(recvbuf, part)
				continue
			}
			req, err := c.dev.Isend(adi.SliceBuf(part), c.ranks[r], ctagScatter, c.cctx, false)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		for _, req := range reqs {
			if _, err := c.dev.WaitReq(req); err != nil {
				return err
			}
		}
		return nil
	}
	_, err := c.crecv(recvbuf, root, ctagScatter)
	return err
}

// Gather collects equal chunks into root's recvbuf: rank i's sendbuf
// lands at recvbuf[i*len(sendbuf) : ...]. recvbuf is ignored on
// non-roots.
func (c *Comm) Gather(sendbuf, recvbuf []byte, root int) error {
	n := c.Size()
	if err := c.checkDest(root); err != nil {
		return err
	}
	chunk := len(sendbuf)
	if c.myRank != root {
		return c.csend(sendbuf, root, ctagGather)
	}
	if len(recvbuf) != chunk*n {
		return fmt.Errorf("%w: gather recvbuf %d bytes for %d chunks of %d", errInvalid, len(recvbuf), n, chunk)
	}
	copy(recvbuf[root*chunk:], sendbuf)
	// Post all receives, then progress them to completion.
	reqs := make([]*adi.Request, 0, n-1)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		req, err := c.dev.Irecv(adi.SliceBuf(recvbuf[r*chunk:(r+1)*chunk]), c.ranks[r], ctagGather, c.cctx)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	for _, req := range reqs {
		if _, err := c.dev.WaitReq(req); err != nil {
			return err
		}
	}
	return nil
}

// Allgather gathers every member's equal-size chunk to all members.
// recvbuf must hold Size()*len(sendbuf) bytes.
func (c *Comm) Allgather(sendbuf, recvbuf []byte) error {
	if err := c.Gather(sendbuf, recvbuf, 0); err != nil {
		return err
	}
	return c.Bcast(recvbuf, 0)
}

// Scatterv distributes variable-size parts from the root: parts[i]
// goes to rank i (parts is ignored on non-roots). Each member gets
// its own part back as a fresh slice. This is the primitive the Motor
// object-oriented scatter is built on — the custom serializer's split
// representation yields exactly such parts (paper §7.5).
func (c *Comm) Scatterv(parts [][]byte, root int) ([]byte, error) {
	n := c.Size()
	if err := c.checkDest(root); err != nil {
		return nil, err
	}
	if c.myRank == root {
		if len(parts) != n {
			return nil, fmt.Errorf("%w: scatterv %d parts for %d ranks", errInvalid, len(parts), n)
		}
		// Announce sizes, then ship parts.
		sizes := make([]byte, 4*n)
		for i, p := range parts {
			putI32(sizes, 4*i, int32(len(p)))
		}
		mySize := make([]byte, 4)
		if err := c.Scatter(sizes, mySize, root); err != nil {
			return nil, err
		}
		var reqs []*adi.Request
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			req, err := c.dev.Isend(adi.SliceBuf(parts[r]), c.ranks[r], ctagScatter+1, c.cctx, false)
			if err != nil {
				return nil, err
			}
			reqs = append(reqs, req)
		}
		for _, req := range reqs {
			if _, err := c.dev.WaitReq(req); err != nil {
				return nil, err
			}
		}
		out := make([]byte, len(parts[root]))
		copy(out, parts[root])
		return out, nil
	}
	mySize := make([]byte, 4)
	if err := c.Scatter(nil, mySize, root); err != nil {
		return nil, err
	}
	out := make([]byte, getI32(mySize, 0))
	if _, err := c.crecv(out, root, ctagScatter+1); err != nil {
		return nil, err
	}
	return out, nil
}

// Gatherv collects variable-size parts at the root: the returned
// slice has one entry per rank at the root, nil elsewhere.
func (c *Comm) Gatherv(part []byte, root int) ([][]byte, error) {
	n := c.Size()
	if err := c.checkDest(root); err != nil {
		return nil, err
	}
	// Gather sizes first.
	mine := make([]byte, 4)
	putI32(mine, 0, int32(len(part)))
	var sizes []byte
	if c.myRank == root {
		sizes = make([]byte, 4*n)
	}
	if err := c.Gather(mine, sizes, root); err != nil {
		return nil, err
	}
	if c.myRank != root {
		return nil, c.csend(part, root, ctagGatherv)
	}
	out := make([][]byte, n)
	reqs := make([]*adi.Request, n)
	for r := 0; r < n; r++ {
		size := int(getI32(sizes, 4*r))
		out[r] = make([]byte, size)
		if r == root {
			copy(out[r], part)
			continue
		}
		req, err := c.dev.Irecv(adi.SliceBuf(out[r]), c.ranks[r], ctagGatherv, c.cctx)
		if err != nil {
			return nil, err
		}
		reqs[r] = req
	}
	for _, req := range reqs {
		if req == nil {
			continue
		}
		if _, err := c.dev.WaitReq(req); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Alltoall exchanges equal chunks between every pair: rank j receives
// sendbuf[j*chunk:(j+1)*chunk] from every rank i at
// recvbuf[i*chunk:(i+1)*chunk]. Implemented as a full pairwise
// exchange with combined send/receive per peer (deadlock-free).
func (c *Comm) Alltoall(sendbuf, recvbuf []byte) error {
	n := c.Size()
	if len(sendbuf)%n != 0 || len(recvbuf) != len(sendbuf) {
		return fmt.Errorf("%w: alltoall buffers %d/%d bytes for %d ranks", errInvalid, len(sendbuf), len(recvbuf), n)
	}
	chunk := len(sendbuf) / n
	me := c.myRank
	copy(recvbuf[me*chunk:(me+1)*chunk], sendbuf[me*chunk:(me+1)*chunk])
	// Post all receives, then all sends, then progress everything:
	// nonblocking on both sides avoids ordering deadlocks.
	reqs := make([]*adi.Request, 0, 2*(n-1))
	for peer := 0; peer < n; peer++ {
		if peer == me {
			continue
		}
		rr, err := c.dev.Irecv(adi.SliceBuf(recvbuf[peer*chunk:(peer+1)*chunk]), c.ranks[peer], ctagAlltoall, c.cctx)
		if err != nil {
			return err
		}
		reqs = append(reqs, rr)
	}
	for peer := 0; peer < n; peer++ {
		if peer == me {
			continue
		}
		sr, err := c.dev.Isend(adi.SliceBuf(sendbuf[peer*chunk:(peer+1)*chunk]), c.ranks[peer], ctagAlltoall, c.cctx, false)
		if err != nil {
			return err
		}
		reqs = append(reqs, sr)
	}
	for _, req := range reqs {
		if _, err := c.dev.WaitReq(req); err != nil {
			return err
		}
	}
	return nil
}

// Reduce combines every member's sendbuf with op into root's recvbuf
// (binomial fan-in). recvbuf is ignored on non-roots.
func (c *Comm) Reduce(sendbuf, recvbuf []byte, dt Datatype, op Op, root int) error {
	n := c.Size()
	if err := c.checkDest(root); err != nil {
		return err
	}
	acc := make([]byte, len(sendbuf))
	copy(acc, sendbuf)
	tmp := make([]byte, len(sendbuf))
	rel := (c.myRank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (rel - mask + root + n) % n
			if err := c.csend(acc, parent, ctagReduce+mask); err != nil {
				return fmt.Errorf("mp: reduce send: %w", err)
			}
			break
		}
		if rel+mask < n {
			child := (rel + mask + root) % n
			if _, err := c.crecv(tmp, child, ctagReduce+mask); err != nil {
				return fmt.Errorf("mp: reduce recv: %w", err)
			}
			if err := reduceInto(op, dt, acc, tmp); err != nil {
				return err
			}
		}
		mask <<= 1
	}
	if c.myRank == root {
		if len(recvbuf) != len(sendbuf) {
			return fmt.Errorf("%w: reduce recvbuf %d != sendbuf %d", errInvalid, len(recvbuf), len(sendbuf))
		}
		copy(recvbuf, acc)
	}
	return nil
}

// Allreduce combines every member's sendbuf into every member's
// recvbuf (reduce to rank 0, then broadcast).
func (c *Comm) Allreduce(sendbuf, recvbuf []byte, dt Datatype, op Op) error {
	if len(recvbuf) != len(sendbuf) {
		return fmt.Errorf("%w: allreduce recvbuf %d != sendbuf %d", errInvalid, len(recvbuf), len(sendbuf))
	}
	if c.myRank != 0 {
		// Non-roots pass recvbuf as scratch so Reduce's signature works.
		if err := c.Reduce(sendbuf, nil, dt, op, 0); err != nil {
			return err
		}
	} else {
		if err := c.Reduce(sendbuf, recvbuf, dt, op, 0); err != nil {
			return err
		}
	}
	return c.Bcast(recvbuf, 0)
}
