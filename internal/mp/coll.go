package mp

import (
	"fmt"
	"sync/atomic"

	"motor/internal/mp/adi"
	"motor/internal/obs"
)

func init() {
	// Let the obs export layer print the selector's algorithm names
	// without importing mp (obs is a leaf package).
	obs.CollAlgoName = func(code uint64) string { return CollAlgo(code).String() }
}

// collBegin opens the KColl span covering one collective call and
// returns the tracer (nil when tracing is off). The span records the
// operation, the selected algorithm, the per-rank payload size, and
// the cross-rank alignment key (cctx, collSeq): every member calls
// collectives in the same order, so the pair names the same instance
// on every rank — the merge pass keys the straggler report on it.
// collEnd closes it and feeds the collective-wall-time histogram.
// The pair also brackets the call with watchdog heartbeats, so a
// collective stuck on a silent peer is attributed to its operation.
func (c *Comm) collBegin(op obs.OpCode, algo CollAlgo, bytes int) *obs.Tracer {
	obs.BeatEnter(c.dev.Rank(), op, -1)
	tr := obs.Active()
	if tr != nil {
		key := uint64(uint32(c.cctx))<<32 | uint64(atomic.LoadUint32(&c.collSeq))
		tr.Begin(c.dev.Rank(), obs.KColl, uint64(op), uint64(algo), uint64(bytes), key)
	}
	return tr
}

func (c *Comm) collEnd(tr *obs.Tracer) {
	if tr != nil {
		tr.Record(obs.HistCollective, tr.End(c.dev.Rank()))
	}
	obs.BeatExit(c.dev.Rank())
}

// stepSpan captures the identity of one in-progress algorithm step
// (ring segment, recursive-doubling round). Steps that error out
// mid-body are simply not emitted.
type stepSpan struct {
	id    uint64
	start int64
}

func (c *Comm) stepBegin(tr *obs.Tracer) stepSpan {
	if tr == nil {
		return stepSpan{}
	}
	return stepSpan{id: tr.NewSpanID(), start: tr.Now()}
}

func (c *Comm) stepEnd(tr *obs.Tracer, sp stepSpan, step, bytes int) {
	if tr == nil || sp.id == 0 {
		return
	}
	lane := c.dev.Rank()
	tr.Span(lane, obs.KCollStep, sp.id, tr.Current(lane), sp.start, uint64(step), uint64(bytes))
}

// Collective operations. All collectives run over the communicator's
// dedicated collective context, so they can never match application
// point-to-point traffic.
//
// The internals are nonblocking: every algorithm posts Isend/Irecv
// requests and keeps multiple links in flight, so one slow edge no
// longer serializes the whole operation. Algorithms are chosen per
// call by the size-aware selector in collalgo.go: dissemination
// barrier; binomial or segmented-pipeline broadcast; linear
// scatter/gather from the root; recursive-doubling or pipelined-ring
// allreduce; ring or gather+broadcast allgather.
//
// Tag layout (collective context only): bits 22+ carry the operation
// code, bits 12..21 a per-communicator sequence number (mod 1024) so
// back-to-back collectives on the same communicator can never
// cross-match even when ranks race ahead, and bits 0..11 a sub-tag
// (round, tree level, segment or ring step).

// Collective op codes (tag bits 22+).
const (
	opcBarrier = iota + 1
	opcBcast
	opcBcastSeg
	opcScatter
	opcScatterv
	opcGather
	opcGatherv
	opcAlltoall
	opcReduce
	opcRingRS // ring allreduce, reduce-scatter phase
	opcRingAG // ring allgather (and allreduce's allgather phase)
	opcRecDbl
	opcFold // recursive doubling's non-power-of-two fold/unfold
)

// Sub-tags for the fold/unfold exchanges around recursive doubling.
const (
	subFoldDown = 0
	subFoldUp   = 1 << 11
)

// collTag builds a collective tag from op code, per-comm sequence
// number and sub-tag. The sub-tag space is 12 bits (0..4095); every
// algorithm bounds its sub-tags accordingly (ringMaxRanks, the
// segment-count clamp in bcastPipelined, log2(n) tree levels).
func collTag(op int, seq uint32, sub int) int {
	return op<<22 | int(seq%1024)<<12 | sub
}

// nextCollSeq advances this communicator's collective sequence
// number. Collectives are called in the same order on every member
// (an MPI-standard requirement), so the per-call values agree across
// ranks without communication.
func (c *Comm) nextCollSeq() uint32 {
	return atomic.AddUint32(&c.collSeq, 1) - 1
}

// --- nonblocking request tracking -------------------------------------------

// Outstanding reports the number of incomplete requests registered
// with this communicator's device — the drain discipline keeps it at
// zero after every collective, successful or not.
func (c *Comm) Outstanding() int { return c.dev.Outstanding() }

// collReqs tracks the requests a collective has in flight and
// enforces the drain discipline: no matter how the collective exits,
// every posted request is completed or cancelled before control
// returns, so nothing leaks into the device match lists
// (Device.Outstanding returns to zero).
type collReqs struct {
	c    *Comm
	live []*adi.Request
	err  error
}

func (c *Comm) newReqs() *collReqs { return &collReqs{c: c} }

// recv posts an Irecv on the collective context. After the first
// error it becomes a no-op returning nil.
func (q *collReqs) recv(buf []byte, src, tag int) *adi.Request {
	if q.err != nil {
		return nil
	}
	req, err := q.c.dev.Irecv(adi.SliceBuf(buf), q.c.ranks[src], tag, q.c.cctx)
	if err != nil {
		q.err = err
		return nil
	}
	q.live = append(q.live, req)
	q.c.coll.noteSegs(len(q.live))
	return req
}

// send posts an Isend on the collective context and counts the
// payload toward BytesMoved.
func (q *collReqs) send(buf []byte, dst, tag int) *adi.Request {
	if q.err != nil {
		return nil
	}
	req, err := q.c.dev.Isend(adi.SliceBuf(buf), q.c.ranks[dst], tag, q.c.cctx, false)
	if err != nil {
		q.err = err
		return nil
	}
	q.live = append(q.live, req)
	q.c.coll.noteSegs(len(q.live))
	atomic.AddUint64(&q.c.coll.stats.BytesMoved, uint64(len(buf)))
	return req
}

// wait blocks until req completes. A nil req (failed post) or a prior
// error returns the recorded error immediately.
func (q *collReqs) wait(req *adi.Request) error {
	if q.err != nil || req == nil {
		return q.err
	}
	if _, err := q.c.dev.WaitReq(req); err != nil {
		q.err = err
		// A progress-engine error can surface with req still
		// incomplete; cancel (no-op if complete) so it cannot stay
		// registered with the device.
		q.c.dev.CancelReq(req)
	}
	for i, r := range q.live {
		if r == req {
			q.live = append(q.live[:i], q.live[i+1:]...)
			break
		}
	}
	return q.err
}

// finish drains every remaining request. While healthy it waits for
// each in posting order. After the first error it stops blocking:
// the progress engine gets one pass to complete what it can, then the
// remainder is cancelled so no request outlives the collective.
func (q *collReqs) finish() error {
	for q.err == nil && len(q.live) > 0 {
		req := q.live[0]
		if _, err := q.c.dev.WaitReq(req); err != nil {
			q.err = err
			q.c.dev.CancelReq(req)
		}
		q.live = q.live[1:]
	}
	if q.err == nil {
		return nil
	}
	for _, req := range q.live {
		q.c.dev.TestReq(req)
	}
	for _, req := range q.live {
		q.c.dev.CancelReq(req)
	}
	q.live = nil
	return q.err
}

// --- barrier ----------------------------------------------------------------

// Barrier blocks until every member has entered it (dissemination
// algorithm: log2(n) rounds of token exchange; each round's send
// stays in flight while the next round starts).
func (c *Comm) Barrier() error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	seq := c.nextCollSeq()
	atomic.AddUint64(&c.coll.stats.Ops, 1)
	tr := c.collBegin(obs.OpBarrier, AlgoAuto, 0)
	defer c.collEnd(tr)
	q := c.newReqs()
	r := c.myRank
	round := 0
	for k := 1; k < n; k <<= 1 {
		to := (r + k) % n
		from := (r - k + n) % n
		tag := collTag(opcBarrier, seq, round)
		sp := c.stepBegin(tr)
		rr := q.recv(nil, from, tag)
		q.send(nil, to, tag)
		if err := q.wait(rr); err != nil {
			break
		}
		c.stepEnd(tr, sp, round, 0)
		round++
	}
	if err := q.finish(); err != nil {
		return fmt.Errorf("mp: barrier: %w", err)
	}
	return nil
}

// --- broadcast --------------------------------------------------------------

// Bcast broadcasts root's buf to every member. All members must pass
// equal-length buffers. Small payloads use a binomial tree with all
// child sends in flight; large payloads stream down the same tree in
// segments (see collalgo.go).
func (c *Comm) Bcast(buf []byte, root int) error {
	if err := c.checkDest(root); err != nil {
		return err
	}
	n := c.Size()
	if n == 1 {
		return nil
	}
	seq := c.nextCollSeq()
	atomic.AddUint64(&c.coll.stats.Ops, 1)
	var err error
	if c.pickBcast(len(buf), n) == AlgoPipelined {
		atomic.AddUint64(&c.coll.stats.BcastPipelined, 1)
		tr := c.collBegin(obs.OpBcast, AlgoPipelined, len(buf))
		err = c.bcastPipelined(buf, root, seq)
		c.collEnd(tr)
	} else {
		atomic.AddUint64(&c.coll.stats.BcastBinomial, 1)
		tr := c.collBegin(obs.OpBcast, AlgoBinomial, len(buf))
		err = c.bcastBinomial(buf, root, seq)
		c.collEnd(tr)
	}
	if err != nil {
		return fmt.Errorf("mp: bcast: %w", err)
	}
	return nil
}

// bcastTree computes this rank's parent (-1 at the root) and children
// in the binomial tree rooted at root: a rank receives on its lowest
// set relative bit and feeds the subtrees below it.
func (c *Comm) bcastTree(root int) (parent int, children []int) {
	n := c.Size()
	rel := (c.myRank - root + n) % n
	parent = -1
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent = (rel - mask + root + n) % n
			break
		}
		mask <<= 1
	}
	for m := mask >> 1; m > 0; m >>= 1 {
		if rel+m < n {
			children = append(children, (rel+m+root)%n)
		}
	}
	return parent, children
}

func (c *Comm) bcastBinomial(buf []byte, root int, seq uint32) error {
	parent, children := c.bcastTree(root)
	q := c.newReqs()
	if parent >= 0 {
		rr := q.recv(buf, parent, collTag(opcBcast, seq, 0))
		if err := q.wait(rr); err != nil {
			return q.finish()
		}
	}
	for _, ch := range children {
		q.send(buf, ch, collTag(opcBcast, seq, 0))
	}
	return q.finish()
}

// bcastPipelined cuts buf into segments that stream down the binomial
// tree: an interior rank forwards segment i as soon as it lands while
// segments i+1.. are still arriving, keeping collWindow receives
// posted ahead and at most collWindow sends per child edge in flight.
func (c *Comm) bcastPipelined(buf []byte, root int, seq uint32) error {
	segSize := bcastSegSize
	// The sub-tag carries the segment index, so clamp the count to the
	// 12-bit sub-tag space for huge payloads.
	if minSeg := (len(buf) + 4095) / 4096; segSize < minSeg {
		segSize = minSeg
	}
	nseg := (len(buf) + segSize - 1) / segSize
	if nseg == 0 {
		nseg = 1 // zero-length broadcast still synchronizes the tree
	}
	segAt := func(i int) []byte {
		lo := i * segSize
		hi := min(lo+segSize, len(buf))
		return buf[lo:hi]
	}
	parent, children := c.bcastTree(root)
	q := c.newReqs()
	sendCap := collWindow * max(len(children), 1)
	var sends []*adi.Request
	if parent < 0 {
		for i := 0; i < nseg; i++ {
			for len(sends) >= sendCap {
				if err := q.wait(sends[0]); err != nil {
					return q.finish()
				}
				sends = sends[1:]
			}
			for _, ch := range children {
				sends = append(sends, q.send(segAt(i), ch, collTag(opcBcastSeg, seq, i)))
			}
		}
		return q.finish()
	}
	recvs := make([]*adi.Request, 0, collWindow)
	next := 0
	for next < nseg && len(recvs) < collWindow {
		recvs = append(recvs, q.recv(segAt(next), parent, collTag(opcBcastSeg, seq, next)))
		next++
	}
	for i := 0; i < nseg; i++ {
		if err := q.wait(recvs[0]); err != nil {
			return q.finish()
		}
		recvs = recvs[1:]
		if next < nseg {
			recvs = append(recvs, q.recv(segAt(next), parent, collTag(opcBcastSeg, seq, next)))
			next++
		}
		for len(sends) >= sendCap {
			if err := q.wait(sends[0]); err != nil {
				return q.finish()
			}
			sends = sends[1:]
		}
		for _, ch := range children {
			sends = append(sends, q.send(segAt(i), ch, collTag(opcBcastSeg, seq, i)))
		}
	}
	return q.finish()
}

// --- scatter / gather -------------------------------------------------------

// Scatter distributes equal chunks of root's sendbuf: rank i receives
// sendbuf[i*len(recvbuf) : (i+1)*len(recvbuf)]. sendbuf is ignored on
// non-roots.
func (c *Comm) Scatter(sendbuf, recvbuf []byte, root int) error {
	n := c.Size()
	if err := c.checkDest(root); err != nil {
		return err
	}
	chunk := len(recvbuf)
	if c.myRank == root && len(sendbuf) != chunk*n {
		return fmt.Errorf("%w: scatter sendbuf %d bytes for %d chunks of %d", errInvalid, len(sendbuf), n, chunk)
	}
	seq := c.nextCollSeq()
	atomic.AddUint64(&c.coll.stats.Ops, 1)
	tr := c.collBegin(obs.OpScatter, AlgoAuto, len(recvbuf))
	defer c.collEnd(tr)
	return c.scatterLinear(sendbuf, recvbuf, root, seq)
}

func (c *Comm) scatterLinear(sendbuf, recvbuf []byte, root int, seq uint32) error {
	n := c.Size()
	chunk := len(recvbuf)
	if c.myRank != root {
		q := c.newReqs()
		q.recv(recvbuf, root, collTag(opcScatter, seq, 0))
		return q.finish()
	}
	q := c.newReqs()
	for r := 0; r < n; r++ {
		part := sendbuf[r*chunk : (r+1)*chunk]
		if r == root {
			copy(recvbuf, part)
			continue
		}
		q.send(part, r, collTag(opcScatter, seq, 0))
	}
	return q.finish()
}

// Gather collects equal chunks into root's recvbuf: rank i's sendbuf
// lands at recvbuf[i*len(sendbuf) : ...]. recvbuf is ignored on
// non-roots.
func (c *Comm) Gather(sendbuf, recvbuf []byte, root int) error {
	n := c.Size()
	if err := c.checkDest(root); err != nil {
		return err
	}
	if c.myRank == root && len(recvbuf) != len(sendbuf)*n {
		return fmt.Errorf("%w: gather recvbuf %d bytes for %d chunks of %d", errInvalid, len(recvbuf), n, len(sendbuf))
	}
	seq := c.nextCollSeq()
	atomic.AddUint64(&c.coll.stats.Ops, 1)
	tr := c.collBegin(obs.OpGather, AlgoAuto, len(sendbuf))
	defer c.collEnd(tr)
	return c.gatherLinear(sendbuf, recvbuf, root, seq)
}

func (c *Comm) gatherLinear(sendbuf, recvbuf []byte, root int, seq uint32) error {
	n := c.Size()
	chunk := len(sendbuf)
	q := c.newReqs()
	if c.myRank != root {
		q.send(sendbuf, root, collTag(opcGather, seq, 0))
		return q.finish()
	}
	copy(recvbuf[root*chunk:], sendbuf)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		q.recv(recvbuf[r*chunk:(r+1)*chunk], r, collTag(opcGather, seq, 0))
	}
	return q.finish()
}

// --- allgather --------------------------------------------------------------

// Allgather gathers every member's equal-size chunk to all members.
// recvbuf must hold Size()*len(sendbuf) bytes. Large totals rotate
// around a ring (every link busy every step); small ones gather to
// rank 0 and broadcast.
func (c *Comm) Allgather(sendbuf, recvbuf []byte) error {
	n := c.Size()
	chunk := len(sendbuf)
	if len(recvbuf) != chunk*n {
		return fmt.Errorf("%w: allgather recvbuf %d bytes for %d chunks of %d", errInvalid, len(recvbuf), n, chunk)
	}
	if n == 1 {
		copy(recvbuf, sendbuf)
		return nil
	}
	atomic.AddUint64(&c.coll.stats.Ops, 1)
	var err error
	if c.pickAllgather(chunk, n) == AlgoRing {
		atomic.AddUint64(&c.coll.stats.AllgatherRing, 1)
		tr := c.collBegin(obs.OpAllgather, AlgoRing, chunk)
		err = c.allgatherRing(sendbuf, recvbuf, c.nextCollSeq())
		c.collEnd(tr)
	} else {
		atomic.AddUint64(&c.coll.stats.AllgatherGatherBcast, 1)
		tr := c.collBegin(obs.OpAllgather, AlgoGatherBcast, chunk)
		err = c.allgatherGatherBcast(sendbuf, recvbuf)
		c.collEnd(tr)
	}
	if err != nil {
		return fmt.Errorf("mp: allgather: %w", err)
	}
	return nil
}

// allgatherRing rotates chunks around the ring: step s sends chunk
// (me-s) right and receives chunk (me-s-1) from the left. All n-1
// receives are posted upfront (the chunks are disjoint and the
// sub-tag carries the step), so a fast neighbor can run ahead.
func (c *Comm) allgatherRing(sendbuf, recvbuf []byte, seq uint32) error {
	n := c.Size()
	chunk := len(sendbuf)
	me := c.myRank
	copy(recvbuf[me*chunk:], sendbuf)
	right := (me + 1) % n
	left := (me - 1 + n) % n
	q := c.newReqs()
	tr := obs.Active()
	recvs := make([]*adi.Request, n-1)
	for s := 0; s < n-1; s++ {
		idx := (me - s - 1 + n) % n
		recvs[s] = q.recv(recvbuf[idx*chunk:(idx+1)*chunk], left, collTag(opcRingAG, seq, s))
	}
	for s := 0; s < n-1; s++ {
		sp := c.stepBegin(tr)
		idx := (me - s + n) % n
		q.send(recvbuf[idx*chunk:(idx+1)*chunk], right, collTag(opcRingAG, seq, s))
		if err := q.wait(recvs[s]); err != nil {
			break
		}
		c.stepEnd(tr, sp, s, chunk)
	}
	return q.finish()
}

// allgatherGatherBcast is the small-message algorithm (and the seed
// baseline): gather to rank 0, then broadcast the assembled buffer.
func (c *Comm) allgatherGatherBcast(sendbuf, recvbuf []byte) error {
	if err := c.gatherLinear(sendbuf, recvbuf, 0, c.nextCollSeq()); err != nil {
		return err
	}
	seq := c.nextCollSeq()
	if c.pickBcast(len(recvbuf), c.Size()) == AlgoPipelined {
		return c.bcastPipelined(recvbuf, 0, seq)
	}
	return c.bcastBinomial(recvbuf, 0, seq)
}

// --- variable-size scatter / gather -----------------------------------------

// Scatterv distributes variable-size parts from the root: parts[i]
// goes to rank i (parts is ignored on non-roots). Each member gets
// its own part back as a fresh slice. This is the primitive the Motor
// object-oriented scatter is built on — the custom serializer's split
// representation yields exactly such parts (paper §7.5).
func (c *Comm) Scatterv(parts [][]byte, root int) ([]byte, error) {
	n := c.Size()
	if err := c.checkDest(root); err != nil {
		return nil, err
	}
	if c.myRank == root {
		if len(parts) != n {
			return nil, fmt.Errorf("%w: scatterv %d parts for %d ranks", errInvalid, len(parts), n)
		}
		// Announce sizes, then ship parts.
		sizes := make([]byte, 4*n)
		for i, p := range parts {
			putI32(sizes, 4*i, int32(len(p)))
		}
		mySize := make([]byte, 4)
		if err := c.Scatter(sizes, mySize, root); err != nil {
			return nil, err
		}
		seq := c.nextCollSeq()
		q := c.newReqs()
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			q.send(parts[r], r, collTag(opcScatterv, seq, 0))
		}
		if err := q.finish(); err != nil {
			return nil, err
		}
		out := make([]byte, len(parts[root]))
		copy(out, parts[root])
		return out, nil
	}
	mySize := make([]byte, 4)
	if err := c.Scatter(nil, mySize, root); err != nil {
		return nil, err
	}
	seq := c.nextCollSeq()
	out := make([]byte, getI32(mySize, 0))
	q := c.newReqs()
	q.recv(out, root, collTag(opcScatterv, seq, 0))
	if err := q.finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// Gatherv collects variable-size parts at the root: the returned
// slice has one entry per rank at the root, nil elsewhere.
func (c *Comm) Gatherv(part []byte, root int) ([][]byte, error) {
	n := c.Size()
	if err := c.checkDest(root); err != nil {
		return nil, err
	}
	// Gather sizes first.
	mine := make([]byte, 4)
	putI32(mine, 0, int32(len(part)))
	var sizes []byte
	if c.myRank == root {
		sizes = make([]byte, 4*n)
	}
	if err := c.Gather(mine, sizes, root); err != nil {
		return nil, err
	}
	seq := c.nextCollSeq()
	q := c.newReqs()
	if c.myRank != root {
		q.send(part, root, collTag(opcGatherv, seq, 0))
		if err := q.finish(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := make([][]byte, n)
	for r := 0; r < n; r++ {
		size := int(getI32(sizes, 4*r))
		out[r] = make([]byte, size)
		if r == root {
			copy(out[r], part)
			continue
		}
		q.recv(out[r], r, collTag(opcGatherv, seq, 0))
	}
	if err := q.finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// --- alltoall ---------------------------------------------------------------

// Alltoall exchanges equal chunks between every pair: rank j receives
// sendbuf[j*chunk:(j+1)*chunk] from every rank i at
// recvbuf[i*chunk:(i+1)*chunk]. All receives are posted before all
// sends (deadlock-free), and on error every outstanding request is
// drained or cancelled before returning.
func (c *Comm) Alltoall(sendbuf, recvbuf []byte) error {
	n := c.Size()
	if len(sendbuf)%n != 0 || len(recvbuf) != len(sendbuf) {
		return fmt.Errorf("%w: alltoall buffers %d/%d bytes for %d ranks", errInvalid, len(sendbuf), len(recvbuf), n)
	}
	chunk := len(sendbuf) / n
	seq := c.nextCollSeq()
	atomic.AddUint64(&c.coll.stats.Ops, 1)
	tr := c.collBegin(obs.OpAlltoall, AlgoAuto, chunk)
	defer c.collEnd(tr)
	me := c.myRank
	copy(recvbuf[me*chunk:(me+1)*chunk], sendbuf[me*chunk:(me+1)*chunk])
	q := c.newReqs()
	for peer := 0; peer < n; peer++ {
		if peer == me {
			continue
		}
		q.recv(recvbuf[peer*chunk:(peer+1)*chunk], peer, collTag(opcAlltoall, seq, 0))
	}
	for peer := 0; peer < n; peer++ {
		if peer == me {
			continue
		}
		q.send(sendbuf[peer*chunk:(peer+1)*chunk], peer, collTag(opcAlltoall, seq, 0))
	}
	if err := q.finish(); err != nil {
		return fmt.Errorf("mp: alltoall: %w", err)
	}
	return nil
}

// --- reduce / allreduce -----------------------------------------------------

// Reduce combines every member's sendbuf with op into root's recvbuf
// (binomial fan-in with all child receives posted upfront). recvbuf
// is ignored on non-roots.
func (c *Comm) Reduce(sendbuf, recvbuf []byte, dt Datatype, op Op, root int) error {
	if err := c.checkDest(root); err != nil {
		return err
	}
	if c.myRank == root && len(recvbuf) != len(sendbuf) {
		return fmt.Errorf("%w: reduce recvbuf %d != sendbuf %d", errInvalid, len(recvbuf), len(sendbuf))
	}
	seq := c.nextCollSeq()
	atomic.AddUint64(&c.coll.stats.Ops, 1)
	tr := c.collBegin(obs.OpReduce, AlgoBinomial, len(sendbuf))
	defer c.collEnd(tr)
	return c.reduceBinomial(sendbuf, recvbuf, dt, op, root, seq)
}

func (c *Comm) reduceBinomial(sendbuf, recvbuf []byte, dt Datatype, op Op, root int, seq uint32) error {
	n := c.Size()
	acc := make([]byte, len(sendbuf))
	copy(acc, sendbuf)
	rel := (c.myRank - root + n) % n
	q := c.newReqs()
	// Post every child receive upfront so subtree results arriving out
	// of order overlap; combine in mask order for determinism.
	type childRecv struct {
		req *adi.Request
		buf []byte
	}
	var kids []childRecv
	parent, pbit := -1, 0
	mask, bit := 1, 0
	for mask < n {
		if rel&mask != 0 {
			parent = (rel - mask + root + n) % n
			pbit = bit
			break
		}
		if rel+mask < n {
			child := (rel + mask + root) % n
			tmp := make([]byte, len(sendbuf))
			kids = append(kids, childRecv{q.recv(tmp, child, collTag(opcReduce, seq, bit)), tmp})
		}
		mask <<= 1
		bit++
	}
	for _, k := range kids {
		if err := q.wait(k.req); err != nil {
			return q.finish()
		}
		if err := reduceInto(op, dt, acc, k.buf); err != nil {
			q.finish()
			return err
		}
	}
	if parent >= 0 {
		q.send(acc, parent, collTag(opcReduce, seq, pbit))
	}
	if err := q.finish(); err != nil {
		return err
	}
	if c.myRank == root {
		copy(recvbuf, acc)
	}
	return nil
}

// Allreduce combines every member's sendbuf into every member's
// recvbuf. Large payloads use the bandwidth-optimal pipelined ring;
// small ones use recursive doubling; the seed reduce+bcast shape
// remains available as an explicit override.
func (c *Comm) Allreduce(sendbuf, recvbuf []byte, dt Datatype, op Op) error {
	if len(recvbuf) != len(sendbuf) {
		return fmt.Errorf("%w: allreduce recvbuf %d != sendbuf %d", errInvalid, len(recvbuf), len(sendbuf))
	}
	n := c.Size()
	if n == 1 {
		copy(recvbuf, sendbuf)
		return nil
	}
	if dt.Size <= 0 || len(sendbuf)%dt.Size != 0 {
		return fmt.Errorf("%w: allreduce buffer %d bytes for %s", errInvalid, len(sendbuf), dt.Name)
	}
	atomic.AddUint64(&c.coll.stats.Ops, 1)
	var err error
	switch c.pickAllreduce(len(sendbuf), n) {
	case AlgoRing:
		atomic.AddUint64(&c.coll.stats.AllreduceRing, 1)
		tr := c.collBegin(obs.OpAllreduce, AlgoRing, len(sendbuf))
		err = c.allreduceRing(sendbuf, recvbuf, dt, op, c.nextCollSeq())
		c.collEnd(tr)
	case AlgoReduceBcast:
		atomic.AddUint64(&c.coll.stats.AllreduceReduceBcast, 1)
		tr := c.collBegin(obs.OpAllreduce, AlgoReduceBcast, len(sendbuf))
		err = c.allreduceReduceBcast(sendbuf, recvbuf, dt, op)
		c.collEnd(tr)
	default:
		atomic.AddUint64(&c.coll.stats.AllreduceRecDbl, 1)
		tr := c.collBegin(obs.OpAllreduce, AlgoRecDbl, len(sendbuf))
		err = c.allreduceRecDbl(sendbuf, recvbuf, dt, op, c.nextCollSeq())
		c.collEnd(tr)
	}
	if err != nil {
		return fmt.Errorf("mp: allreduce: %w", err)
	}
	return nil
}

// allreduceRing is the bandwidth-optimal pipelined ring: an
// element-aligned reduce-scatter (n-1 steps; after which rank r owns
// the fully reduced chunk r+1) followed by a ring allgather of the
// reduced chunks. Every link carries 2·bytes·(n-1)/n total and every
// link is busy every step.
func (c *Comm) allreduceRing(sendbuf, recvbuf []byte, dt Datatype, op Op, seq uint32) error {
	n := c.Size()
	me := c.myRank
	copy(recvbuf, sendbuf)
	elems := len(sendbuf) / dt.Size
	off := make([]int, n+1)
	for i := 0; i <= n; i++ {
		off[i] = elems * i / n * dt.Size
	}
	chunkAt := func(i int) []byte {
		i = ((i % n) + n) % n
		return recvbuf[off[i]:off[i+1]]
	}
	maxChunk := 0
	for i := 0; i < n; i++ {
		maxChunk = max(maxChunk, off[i+1]-off[i])
	}
	tmp := make([]byte, maxChunk)
	right := (me + 1) % n
	left := (me - 1 + n) % n
	q := c.newReqs()
	tr := obs.Active()
	// Phase 1: reduce-scatter. Step s sends chunk (me-s) right and
	// reduces the incoming chunk (me-s-1) from the left.
	for s := 0; s < n-1; s++ {
		sp := c.stepBegin(tr)
		rchunk := chunkAt(me - s - 1)
		rr := q.recv(tmp[:len(rchunk)], left, collTag(opcRingRS, seq, s))
		q.send(chunkAt(me-s), right, collTag(opcRingRS, seq, s))
		if err := q.wait(rr); err != nil {
			return q.finish()
		}
		if err := reduceInto(op, dt, rchunk, tmp[:len(rchunk)]); err != nil {
			q.finish()
			return err
		}
		c.stepEnd(tr, sp, s, len(rchunk))
	}
	// Drain phase-1 sends before phase 2 overwrites their chunks: a
	// rendezvous send still in flight reads its buffer at CTS time.
	if err := q.finish(); err != nil {
		return err
	}
	// Phase 2: allgather of the reduced chunks. Step s sends chunk
	// (me+1-s) right and receives chunk (me-s) from the left.
	for s := 0; s < n-1; s++ {
		sp := c.stepBegin(tr)
		rr := q.recv(chunkAt(me-s), left, collTag(opcRingAG, seq, s))
		q.send(chunkAt(me+1-s), right, collTag(opcRingAG, seq, s))
		if err := q.wait(rr); err != nil {
			break
		}
		c.stepEnd(tr, sp, n-1+s, len(chunkAt(me-s)))
	}
	return q.finish()
}

// allreduceRecDbl is recursive doubling: non-power-of-two ranks fold
// into the nearest power of two, log2 rounds of pairwise exchange run
// the reduction, and the folded ranks get the result back. All Motor
// reduction ops are commutative, so combine order per round is free.
func (c *Comm) allreduceRecDbl(sendbuf, recvbuf []byte, dt Datatype, op Op, seq uint32) error {
	n := c.Size()
	me := c.myRank
	copy(recvbuf, sendbuf)
	tmp := make([]byte, len(sendbuf))
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	q := c.newReqs()
	newRank := -1
	if me < 2*rem {
		if me%2 == 0 {
			// Fold: donate to the odd neighbor and sit out the rounds.
			sr := q.send(recvbuf, me+1, collTag(opcFold, seq, subFoldDown))
			if err := q.wait(sr); err != nil {
				return q.finish()
			}
		} else {
			rr := q.recv(tmp, me-1, collTag(opcFold, seq, subFoldDown))
			if err := q.wait(rr); err != nil {
				return q.finish()
			}
			if err := reduceInto(op, dt, recvbuf, tmp); err != nil {
				q.finish()
				return err
			}
			newRank = me / 2
		}
	} else {
		newRank = me - rem
	}
	if newRank >= 0 {
		tr := obs.Active()
		bit := 1
		for mask := 1; mask < pof2; mask <<= 1 {
			sp := c.stepBegin(tr)
			peerNew := newRank ^ mask
			peer := peerNew*2 + 1
			if peerNew >= rem {
				peer = peerNew + rem
			}
			tag := collTag(opcRecDbl, seq, bit)
			rr := q.recv(tmp, peer, tag)
			sr := q.send(recvbuf, peer, tag)
			if err := q.wait(rr); err != nil {
				return q.finish()
			}
			// The outgoing copy of recvbuf must be on the wire before
			// the combine overwrites it.
			if err := q.wait(sr); err != nil {
				return q.finish()
			}
			if err := reduceInto(op, dt, recvbuf, tmp); err != nil {
				q.finish()
				return err
			}
			c.stepEnd(tr, sp, bit, len(recvbuf))
			bit++
		}
	}
	// Unfold: hand the result back to the folded even ranks.
	if me < 2*rem {
		if me%2 == 1 {
			q.send(recvbuf, me-1, collTag(opcFold, seq, subFoldUp))
		} else {
			rr := q.recv(recvbuf, me+1, collTag(opcFold, seq, subFoldUp))
			if err := q.wait(rr); err != nil {
				return q.finish()
			}
		}
	}
	return q.finish()
}

// allreduceReduceBcast is the seed algorithm, kept as an explicit
// override so benchmarks can measure the win: binomial reduce to rank
// 0, then binomial broadcast.
func (c *Comm) allreduceReduceBcast(sendbuf, recvbuf []byte, dt Datatype, op Op) error {
	var rb []byte
	if c.myRank == 0 {
		rb = recvbuf
	}
	if err := c.reduceBinomial(sendbuf, rb, dt, op, 0, c.nextCollSeq()); err != nil {
		return err
	}
	return c.bcastBinomial(recvbuf, 0, c.nextCollSeq())
}
