package channel

import (
	"fmt"
	"testing"
	"time"
)

// Regression tests for the shmRing pop path. The seed implementation
// memmoved the whole remaining queue on every pop (frames =
// frames[1:] via copy), turning an n-frame burst into O(n²) bytes of
// memmove. The fix advances a head index in O(1) and compacts only
// when the dead prefix dominates.

func ringFrame(i int) shmFrame {
	return shmFrame{hdr: Header{Tag: int32(i)}, payload: []byte{byte(i)}}
}

// TestShmRingFIFO checks ordering and emptiness across interleaved
// push/pop bursts, including through the compaction triggers.
func TestShmRingFIFO(t *testing.T) {
	r := &shmRing{}
	next, expect := 0, 0
	pushN := func(n int) {
		for i := 0; i < n; i++ {
			if err := r.push(ringFrame(next)); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}
	popN := func(n int) {
		for i := 0; i < n; i++ {
			f, ok := r.pop()
			if !ok {
				t.Fatalf("pop %d: ring empty, want frame %d", expect, expect)
			}
			if int(f.hdr.Tag) != expect {
				t.Fatalf("pop out of order: got %d want %d", f.hdr.Tag, expect)
			}
			expect++
		}
	}
	pushN(100)
	popN(40) // past the head>=32 compaction threshold
	pushN(10)
	popN(70) // drain completely
	if f, ok := r.pop(); ok {
		t.Fatalf("pop on empty ring returned frame %d", f.hdr.Tag)
	}
	pushN(5)
	popN(5)
	if next != expect {
		t.Fatalf("accounting: pushed %d popped %d", next, expect)
	}
}

// TestShmRingReclaimsMemory checks the two reclamation guarantees:
// popped slots are zeroed immediately (payloads collectable), and the
// backing slice never keeps an unbounded dead prefix.
func TestShmRingReclaimsMemory(t *testing.T) {
	r := &shmRing{}
	const n = 200
	for i := 0; i < n; i++ {
		if err := r.push(ringFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n-1; i++ {
		r.pop()
		r.mu.Lock()
		// Every slot behind head must be zeroed so the payload is
		// collectable even before compaction runs.
		for j := 0; j < r.head; j++ {
			if r.frames[j].payload != nil {
				r.mu.Unlock()
				t.Fatalf("after %d pops: slot %d still holds its payload", i+1, j)
			}
		}
		// The dead prefix is bounded: compaction keeps head under
		// max(32, live+1).
		if r.head >= 32 && r.head > len(r.frames)-r.head+1 {
			head, live := r.head, len(r.frames)-r.head
			r.mu.Unlock()
			t.Fatalf("after %d pops: dead prefix %d dominates %d live frames", i+1, head, live)
		}
		r.mu.Unlock()
	}
	r.pop()
	r.mu.Lock()
	if len(r.frames) != 0 || r.head != 0 {
		t.Fatalf("drained ring not reset: len=%d head=%d", len(r.frames), r.head)
	}
	r.mu.Unlock()
}

// TestShmRingBurstLinear is the timing regression: a large burst must
// drain in roughly linear time. On the pre-fix O(n²) pop, 120k queued
// frames memmove ~7e9 frame slots (hundreds of GB); even a fast
// machine takes minutes. The generous 10s guard only trips on a
// complexity regression, not on a slow CI box.
func TestShmRingBurstLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("burst timing test skipped in -short mode")
	}
	r := &shmRing{}
	const n = 120_000
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := r.push(shmFrame{hdr: Header{Tag: int32(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		f, ok := r.pop()
		if !ok || int(f.hdr.Tag) != i {
			t.Fatalf("pop %d: ok=%v tag=%d", i, ok, f.hdr.Tag)
		}
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("burst of %d frames took %v: pop is super-linear again", n, d)
	}
}

// BenchmarkShmRingBurst measures queue-then-drain cost per frame at
// increasing burst depths. Pre-fix this went quadratic with depth;
// post-fix the per-frame cost is flat.
func BenchmarkShmRingBurst(b *testing.B) {
	for _, depth := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			r := &shmRing{}
			f := shmFrame{hdr: Header{Tag: 7}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := 0; j < depth; j++ {
					if err := r.push(f); err != nil {
						b.Fatal(err)
					}
				}
				for j := 0; j < depth; j++ {
					if _, ok := r.pop(); !ok {
						b.Fatal("ring empty mid-drain")
					}
				}
			}
			b.SetBytes(0)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*depth), "ns/frame")
		})
	}
}

// BenchmarkShmRingSteady interleaves push/pop at a fixed queue depth —
// the common collective pattern where a receiver keeps up with a
// sender but a backlog persists.
func BenchmarkShmRingSteady(b *testing.B) {
	const backlog = 64
	r := &shmRing{}
	f := shmFrame{hdr: Header{Tag: 7}}
	for j := 0; j < backlog; j++ {
		if err := r.push(f); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.push(f); err != nil {
			b.Fatal(err)
		}
		if _, ok := r.pop(); !ok {
			b.Fatal("ring empty")
		}
	}
}
