package channel

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// collectSink records delivered packets for assertions.
type collectSink struct {
	hdrs     []Header
	payloads [][]byte
	buf      []byte
}

func (s *collectSink) Deliver(hdr Header) []byte {
	if hdr.Size == 0 {
		return nil
	}
	s.buf = make([]byte, hdr.Size)
	return s.buf
}

func (s *collectSink) Done(hdr Header) {
	s.hdrs = append(s.hdrs, hdr)
	if hdr.Size > 0 {
		s.payloads = append(s.payloads, s.buf)
	} else {
		s.payloads = append(s.payloads, nil)
	}
	s.buf = nil
}

func TestHeaderMarshalRoundtrip(t *testing.T) {
	in := Header{Type: PktRTS, Source: 3, Tag: -1, Context: 42, Size: 9999, ReqA: 1 << 40, ReqB: 7}
	var b [HeaderSize]byte
	in.Marshal(b[:])
	var out Header
	out.Unmarshal(b[:])
	if in != out {
		t.Errorf("roundtrip %+v != %+v", out, in)
	}
}

func drain(t *testing.T, ch Channel, sink Sink, want int) {
	t.Helper()
	got := 0
	for i := 0; i < 100000 && got < want; i++ {
		ok, err := ch.Poll(sink)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if ok {
			got++
		}
	}
	if got != want {
		t.Fatalf("drained %d packets, want %d", got, want)
	}
}

func testChannelPair(t *testing.T, a, b Channel) {
	t.Helper()
	// a -> b: three packets, FIFO, mixed sizes.
	msgs := [][]byte{[]byte("hello"), nil, bytes.Repeat([]byte{7}, 100000)}
	for i, m := range msgs {
		hdr := Header{Type: PktEager, Source: int32(a.Rank()), Tag: int32(i), Context: 1}
		if err := a.Send(b.Rank(), hdr, m); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	sink := &collectSink{}
	drain(t, b, sink, len(msgs))
	for i, m := range msgs {
		if int(sink.hdrs[i].Tag) != i {
			t.Errorf("packet %d tag %d (FIFO violated)", i, sink.hdrs[i].Tag)
		}
		if !bytes.Equal(sink.payloads[i], m) {
			t.Errorf("packet %d payload mismatch: %d vs %d bytes", i, len(sink.payloads[i]), len(m))
		}
	}
	// b -> a reply.
	hdr := Header{Type: PktCTS, Source: int32(b.Rank()), Tag: 5, Context: 1, ReqA: 11, ReqB: 22}
	if err := b.Send(a.Rank(), hdr, nil); err != nil {
		t.Fatal(err)
	}
	sink2 := &collectSink{}
	drain(t, a, sink2, 1)
	if sink2.hdrs[0].ReqA != 11 || sink2.hdrs[0].ReqB != 22 {
		t.Errorf("reply header %+v", sink2.hdrs[0])
	}
}

func TestShmChannelPair(t *testing.T) {
	f := NewShmFabric(2)
	testChannelPair(t, f.Endpoint(0), f.Endpoint(1))
}

func TestSockChannelPair(t *testing.T) {
	chans, err := NewSockGroupLocal(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer chans[0].Close()
	defer chans[1].Close()
	testChannelPair(t, chans[0], chans[1])
}

func TestSockGroupMesh(t *testing.T) {
	const n = 4
	chans, err := NewSockGroupLocal(nil, n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range chans {
			c.Close()
		}
	}()
	// Every pair exchanges one packet, concurrently per receiving rank.
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for peer := 0; peer < n; peer++ {
				if peer == r {
					continue
				}
				hdr := Header{Type: PktEager, Source: int32(r), Tag: int32(100*r + peer), Context: 9}
				if err := chans[r].Send(peer, hdr, []byte{byte(r), byte(peer)}); err != nil {
					errs <- err
					return
				}
			}
			sink := &collectSink{}
			got := 0
			for i := 0; i < 200000 && got < n-1; i++ {
				ok, err := chans[r].Poll(sink)
				if err != nil {
					errs <- err
					return
				}
				if ok {
					got++
				}
			}
			for i, h := range sink.hdrs {
				if sink.payloads[i][0] != byte(h.Source) || sink.payloads[i][1] != byte(r) {
					errs <- ErrRank
					return
				}
			}
			errs <- nil
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestShmFabricGrow(t *testing.T) {
	f := NewShmFabric(2)
	if f.Size() != 2 {
		t.Fatalf("size %d", f.Size())
	}
	first := f.Grow(3)
	if first != 2 || f.Size() != 5 {
		t.Errorf("grow: first=%d size=%d", first, f.Size())
	}
	// New rank can talk to an old one.
	a, b := f.Endpoint(4), f.Endpoint(0)
	hdr := Header{Type: PktEager, Source: 4, Tag: 1, Context: 0}
	if err := a.Send(0, hdr, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	drain(t, b, sink, 1)
	if string(sink.payloads[0]) != "hi" {
		t.Errorf("payload %q", sink.payloads[0])
	}
}

func TestShmRankRange(t *testing.T) {
	f := NewShmFabric(2)
	ep := f.Endpoint(0)
	if err := ep.Send(5, Header{Type: PktEager}, nil); err != ErrRank {
		t.Errorf("err %v", err)
	}
}

func TestLoopChannel(t *testing.T) {
	c := &LoopChannel{}
	if err := c.Send(0, Header{Type: PktEager, Tag: 3}, []byte("self")); err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	drain(t, c, sink, 1)
	if string(sink.payloads[0]) != "self" {
		t.Errorf("payload %q", sink.payloads[0])
	}
	if err := c.Send(1, Header{}, nil); err != ErrRank {
		t.Errorf("err %v", err)
	}
}

func TestShmClosedChannel(t *testing.T) {
	f := NewShmFabric(2)
	ep := f.Endpoint(0)
	ep.Close()
	if err := ep.Send(1, Header{Type: PktEager}, nil); err != ErrClosed {
		t.Errorf("send on closed: %v", err)
	}
	if _, err := ep.Poll(&collectSink{}); err != ErrClosed {
		t.Errorf("poll on closed: %v", err)
	}
}

func TestSockBidirectionalLargeTransfers(t *testing.T) {
	// Both endpoints stream large payloads at each other
	// simultaneously; per-pair FIFO and content must survive the
	// interleaved partial reads of the polling receiver.
	chans, err := NewSockGroupLocal(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer chans[0].Close()
	defer chans[1].Close()
	const msgs = 20
	const size = 64 << 10
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for me := 0; me < 2; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			peer := 1 - me
			payload := bytes.Repeat([]byte{byte(me + 1)}, size)
			// Interleave sends with polls so neither side's TCP
			// buffer backs up indefinitely.
			sink := &collectSink{}
			sent, got := 0, 0
			for i := 0; sent < msgs || got < msgs; i++ {
				if sent < msgs {
					hdr := Header{Type: PktEager, Source: int32(me), Tag: int32(sent), Context: 1}
					if err := chans[me].Send(peer, hdr, payload); err != nil {
						errs <- err
						return
					}
					sent++
				}
				ok, err := chans[me].Poll(sink)
				if err != nil {
					errs <- err
					return
				}
				if ok {
					got++
				}
				if i > 1000000 {
					errs <- fmt.Errorf("rank %d stuck at sent=%d got=%d", me, sent, got)
					return
				}
			}
			for i, h := range sink.hdrs {
				if int(h.Tag) != i {
					errs <- fmt.Errorf("rank %d msg %d has tag %d (FIFO violated)", me, i, h.Tag)
					return
				}
				for _, b := range sink.payloads[i] {
					if b != byte(peer+1) {
						errs <- fmt.Errorf("rank %d msg %d corrupt", me, i)
						return
					}
				}
			}
			errs <- nil
		}(me)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
