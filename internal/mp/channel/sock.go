package channel

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"motor/internal/pal"
)

// The sock channel: TCP transport with a rendezvous bootstrap, the
// analogue of MPICH2's sock channel (the configuration the paper's
// evaluation ran on, §6/§8). One connection per rank pair gives the
// per-pair FIFO ordering the device requires.
//
// Receive-side invariant: a packet's payload is consumed entirely
// within the Poll call that saw its header, because the destination
// buffer handed out by the Sink may be a range of a managed heap that
// is only guaranteed stable while the managed thread sits inside this
// call. Only header bytes are buffered across polls.

const (
	dialTimeout = 10 * time.Second
	bodyTimeout = 30 * time.Second
	// pollWindow is the header-read deadline of one Poll pass. A
	// blocked read wakes as soon as bytes arrive, so this bounds the
	// idle cost of a pass, not delivery latency.
	pollWindow = 100 * time.Microsecond
)

type sockConn struct {
	c      net.Conn
	hdrBuf [HeaderSize]byte
	hdrGot int
}

// SockChannel is one rank's endpoint of a TCP-connected world.
type SockChannel struct {
	rank  int
	size  int
	conns []*sockConn // indexed by peer rank; nil at self
	next  int         // round-robin poll cursor
}

var _ Channel = (*SockChannel)(nil)

// Rank implements Channel.
func (c *SockChannel) Rank() int { return c.rank }

// Size implements Channel.
func (c *SockChannel) Size() int { return c.size }

// Send implements Channel: write header and payload on the pair
// connection.
func (c *SockChannel) Send(dest int, hdr Header, payload []byte) error {
	if dest < 0 || dest >= c.size {
		return ErrRank
	}
	if dest == c.rank {
		return errors.New("sock: self-send not supported (use shm or loop)")
	}
	sc := c.conns[dest]
	if sc == nil {
		return ErrClosed
	}
	hdr.Size = uint32(len(payload))
	var hb [HeaderSize]byte
	hdr.Marshal(hb[:])
	if err := sc.c.SetWriteDeadline(time.Now().Add(bodyTimeout)); err != nil {
		return err
	}
	if _, err := sc.c.Write(hb[:]); err != nil {
		return fmt.Errorf("sock: send header to %d: %w", dest, err)
	}
	if len(payload) > 0 {
		if _, err := sc.c.Write(payload); err != nil {
			return fmt.Errorf("sock: send payload to %d: %w", dest, err)
		}
	}
	return nil
}

// Poll implements Channel: non-blocking header reads round-robin over
// peers; when a header completes, the payload is drained into the
// sink's buffer before returning.
func (c *SockChannel) Poll(sink Sink) (bool, error) {
	n := len(c.conns)
	for i := 0; i < n; i++ {
		peer := (c.next + i) % n
		sc := c.conns[peer]
		if sc == nil {
			continue
		}
		progressed, err := c.pollConn(sc, sink)
		if err != nil {
			return false, err
		}
		if progressed {
			c.next = (peer + 1) % n
			return true, nil
		}
	}
	return false, nil
}

func (c *SockChannel) pollConn(sc *sockConn, sink Sink) (bool, error) {
	// Short-deadline read: wakes immediately when data arrives and
	// abandons the pass after pollWindow otherwise. (A deadline in
	// the past would fail without ever attempting the read.)
	if err := sc.c.SetReadDeadline(time.Now().Add(pollWindow)); err != nil {
		return false, err
	}
	n, err := sc.c.Read(sc.hdrBuf[sc.hdrGot:])
	sc.hdrGot += n
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if sc.hdrGot < HeaderSize {
				return false, nil
			}
		} else if err == io.EOF {
			if sc.hdrGot == 0 {
				// Graceful shutdown between packets: the peer has
				// finished its communication and closed. Retire the
				// connection; traffic already delivered is unaffected
				// and other peers keep progressing.
				sc.c.Close()
				c.retire(sc)
				return false, nil
			}
			return false, fmt.Errorf("sock: peer closed mid-packet: %w", err)
		} else {
			return false, err
		}
	}
	if sc.hdrGot < HeaderSize {
		return false, nil
	}
	// Header complete: finish any remainder synchronously.
	var hdr Header
	hdr.Unmarshal(sc.hdrBuf[:])
	sc.hdrGot = 0
	dst := sink.Deliver(hdr)
	if hdr.Size > 0 {
		if err := sc.c.SetReadDeadline(time.Now().Add(bodyTimeout)); err != nil {
			return false, err
		}
		if dst != nil {
			if uint32(len(dst)) < hdr.Size {
				return false, fmt.Errorf("sock: sink buffer %d smaller than payload %d", len(dst), hdr.Size)
			}
			if _, err := io.ReadFull(sc.c, dst[:hdr.Size]); err != nil {
				return false, fmt.Errorf("sock: payload read: %w", err)
			}
		} else {
			if _, err := io.CopyN(io.Discard, sc.c, int64(hdr.Size)); err != nil {
				return false, fmt.Errorf("sock: payload discard: %w", err)
			}
		}
	}
	sink.Done(hdr)
	return true, nil
}

// retire drops a gracefully-closed peer connection from the poll set.
func (c *SockChannel) retire(sc *sockConn) {
	for i, cur := range c.conns {
		if cur == sc {
			c.conns[i] = nil
			return
		}
	}
}

// Close implements Channel.
func (c *SockChannel) Close() error {
	var first error
	for _, sc := range c.conns {
		if sc != nil {
			if err := sc.c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// --- bootstrap -------------------------------------------------------------

// ServeRoot runs the rendezvous service for an n-rank world on ln:
// it collects one registration line ("rank addr") from every rank and
// answers each with the full address table. It returns after serving
// all ranks.
func ServeRoot(ln net.Listener, n int) error {
	addrs := make([]string, n)
	conns := make([]net.Conn, 0, n)
	seen := 0
	for seen < n {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("sock bootstrap: accept: %w", err)
		}
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			conn.Close()
			return fmt.Errorf("sock bootstrap: registration read: %w", err)
		}
		var rank int
		var addr string
		if _, err := fmt.Sscanf(strings.TrimSpace(line), "%d %s", &rank, &addr); err != nil {
			conn.Close()
			return fmt.Errorf("sock bootstrap: bad registration %q: %w", line, err)
		}
		if rank < 0 || rank >= n || addrs[rank] != "" {
			conn.Close()
			return fmt.Errorf("sock bootstrap: bad or duplicate rank %d", rank)
		}
		addrs[rank] = addr
		conns = append(conns, conn)
		seen++
	}
	table := strings.Join(addrs, " ") + "\n"
	for _, conn := range conns {
		if _, err := io.WriteString(conn, table); err != nil {
			return fmt.Errorf("sock bootstrap: table write: %w", err)
		}
		conn.Close()
	}
	return nil
}

// Bootstrap joins an n-rank sock world through the rendezvous service
// at rootAddr and establishes the full connection mesh. Every rank of
// the world must call Bootstrap concurrently (rank 0 does not host
// the service; see ServeRoot and NewSockGroupLocal).
func Bootstrap(plat pal.Platform, rootAddr string, rank, size int) (*SockChannel, error) {
	if plat == nil {
		plat = pal.Default
	}
	if size == 1 {
		return &SockChannel{rank: 0, size: 1, conns: make([]*sockConn, 1)}, nil
	}
	ln, err := plat.Listen("")
	if err != nil {
		return nil, fmt.Errorf("sock bootstrap: listen: %w", err)
	}
	defer ln.Close()

	// Register with the rendezvous service and obtain the table.
	rc, err := plat.Dial(rootAddr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("sock bootstrap: dial root: %w", err)
	}
	if _, err := fmt.Fprintf(rc, "%d %s\n", rank, ln.Addr().String()); err != nil {
		rc.Close()
		return nil, fmt.Errorf("sock bootstrap: register: %w", err)
	}
	tableLine, err := bufio.NewReader(rc).ReadString('\n')
	rc.Close()
	if err != nil {
		return nil, fmt.Errorf("sock bootstrap: table read: %w", err)
	}
	addrs := strings.Fields(tableLine)
	if len(addrs) != size {
		return nil, fmt.Errorf("sock bootstrap: table has %d entries, want %d", len(addrs), size)
	}

	ch := &SockChannel{rank: rank, size: size, conns: make([]*sockConn, size)}

	// Mesh: dial every lower rank, accept from every higher rank.
	errc := make(chan error, 2)
	go func() {
		for j := 0; j < rank; j++ {
			conn, err := plat.Dial(addrs[j], dialTimeout)
			if err != nil {
				errc <- fmt.Errorf("sock bootstrap: dial rank %d: %w", j, err)
				return
			}
			var id [4]byte
			binary.LittleEndian.PutUint32(id[:], uint32(rank))
			if _, err := conn.Write(id[:]); err != nil {
				errc <- fmt.Errorf("sock bootstrap: identify to %d: %w", j, err)
				return
			}
			ch.conns[j] = &sockConn{c: conn}
		}
		errc <- nil
	}()
	go func() {
		for j := rank + 1; j < size; j++ {
			conn, err := ln.Accept()
			if err != nil {
				errc <- fmt.Errorf("sock bootstrap: accept mesh: %w", err)
				return
			}
			var id [4]byte
			if _, err := io.ReadFull(conn, id[:]); err != nil {
				errc <- fmt.Errorf("sock bootstrap: mesh identify: %w", err)
				return
			}
			peer := int(binary.LittleEndian.Uint32(id[:]))
			if peer <= rank || peer >= size || ch.conns[peer] != nil {
				errc <- fmt.Errorf("sock bootstrap: bad mesh peer %d", peer)
				return
			}
			ch.conns[peer] = &sockConn{c: conn}
		}
		errc <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			ch.Close()
			return nil, err
		}
	}
	// Disable Nagle where available: the ping-pong pattern is
	// latency-bound.
	for _, sc := range ch.conns {
		if sc != nil {
			if tc, ok := sc.c.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
		}
	}
	return ch, nil
}

// NewSockGroupLocal builds an n-rank sock world entirely within this
// process over loopback TCP — the single-node configuration of the
// paper's evaluation. It hosts the rendezvous service on an ephemeral
// port and bootstraps every rank concurrently.
func NewSockGroupLocal(plat pal.Platform, n int) ([]*SockChannel, error) {
	if plat == nil {
		plat = pal.Default
	}
	if n < 1 {
		return nil, fmt.Errorf("sock: bad group size %d", n)
	}
	if n == 1 {
		ch, err := Bootstrap(plat, "", 0, 1)
		if err != nil {
			return nil, err
		}
		return []*SockChannel{ch}, nil
	}
	root, err := plat.Listen("")
	if err != nil {
		return nil, err
	}
	defer root.Close()
	rootErr := make(chan error, 1)
	go func() { rootErr <- ServeRoot(root, n) }()

	type res struct {
		rank int
		ch   *SockChannel
		err  error
	}
	results := make(chan res, n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			ch, err := Bootstrap(plat, root.Addr().String(), rank, n)
			results <- res{rank, ch, err}
		}(r)
	}
	chans := make([]*SockChannel, n)
	var firstErr error
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		chans[r.rank] = r.ch
	}
	if err := <-rootErr; err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		for _, ch := range chans {
			if ch != nil {
				ch.Close()
			}
		}
		return nil, firstErr
	}
	return chans, nil
}
