package channel

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"motor/internal/obs"
	"motor/internal/pal"
)

// The sock channel: TCP transport with a rendezvous bootstrap, the
// analogue of MPICH2's sock channel (the configuration the paper's
// evaluation ran on, §6/§8). One connection per rank pair gives the
// per-pair FIFO ordering the device requires.
//
// Receive-side invariant: a packet's payload is consumed entirely
// within the Poll call that saw its header, because the destination
// buffer handed out by the Sink may be a range of a managed heap that
// is only guaranteed stable while the managed thread sits inside this
// call. Only header bytes are buffered across polls.
//
// Failure containment: any error that leaves a connection's framing
// undefined — a write that stopped mid-frame, a read that hit a reset
// or an EOF inside a packet — poisons that connection: it is closed,
// recorded, and every later operation on it fails fast with a
// PeerError naming the peer. Failures never escape the pair: the rest
// of the mesh keeps progressing, and the device layer converts the
// PeerError into typed errors on the affected requests.

const (
	dialTimeout = 10 * time.Second
	bodyTimeout = 30 * time.Second
	// pollWindow is the header-read deadline of one Poll pass. A
	// blocked read wakes as soon as bytes arrive, so this bounds the
	// idle cost of a pass, not delivery latency.
	pollWindow = 100 * time.Microsecond
)

// RetryPolicy bounds the bootstrap's recovery from transient
// transport failures: every dial and the whole rendezvous exchange
// retry with exponential backoff, and mesh accepts are bounded so a
// peer that gave up cannot hang this rank forever.
type RetryPolicy struct {
	DialAttempts      int           // attempts per dial (min 1)
	BootstrapAttempts int           // attempts for the rendezvous exchange (min 1)
	BackoffBase       time.Duration // first retry backoff; doubles per retry
	BackoffMax        time.Duration // backoff ceiling
	AcceptTimeout     time.Duration // bound on the mesh accept phase; 0 = none
}

// DefaultRetryPolicy is the policy used by Bootstrap and world
// construction.
var DefaultRetryPolicy = RetryPolicy{
	DialAttempts:      4,
	BootstrapAttempts: 4,
	BackoffBase:       5 * time.Millisecond,
	BackoffMax:        500 * time.Millisecond,
	AcceptTimeout:     30 * time.Second,
}

// backoff returns the sleep before retry number n (0-based),
// deterministic so fault-plan replays stay identical.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BackoffBase
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 0; i < n; i++ {
		d *= 2
		if p.BackoffMax > 0 && d >= p.BackoffMax {
			return p.BackoffMax
		}
	}
	if p.BackoffMax > 0 && d > p.BackoffMax {
		d = p.BackoffMax
	}
	return d
}

type sockConn struct {
	peer   int
	c      net.Conn
	hdrBuf [HeaderSize]byte
	hdrGot int
	poison error // non-nil once the framing is undefined; conn is dead
}

// SockChannel is one rank's endpoint of a TCP-connected world.
type SockChannel struct {
	rank  int
	size  int
	conns []*sockConn // indexed by peer rank; nil at self / retired
	next  int         // round-robin poll cursor

	stats struct {
		framesSent       uint64
		framesRecvd      uint64
		bytesSent        uint64
		bytesRecvd       uint64
		dialRetries      uint64
		bootstrapRetries uint64
		poisonedConns    uint64
		peersRetired     uint64
	}
}

var (
	_ Channel     = (*SockChannel)(nil)
	_ StatsSource = (*SockChannel)(nil)
)

// Rank implements Channel.
func (c *SockChannel) Rank() int { return c.rank }

// Size implements Channel.
func (c *SockChannel) Size() int { return c.size }

// TransportStats implements StatsSource.
func (c *SockChannel) TransportStats() TransportStats {
	return TransportStats{
		FramesSent:       atomic.LoadUint64(&c.stats.framesSent),
		FramesRecvd:      atomic.LoadUint64(&c.stats.framesRecvd),
		BytesSent:        atomic.LoadUint64(&c.stats.bytesSent),
		BytesRecvd:       atomic.LoadUint64(&c.stats.bytesRecvd),
		DialRetries:      atomic.LoadUint64(&c.stats.dialRetries),
		BootstrapRetries: atomic.LoadUint64(&c.stats.bootstrapRetries),
		PoisonedConns:    atomic.LoadUint64(&c.stats.poisonedConns),
		PeersRetired:     atomic.LoadUint64(&c.stats.peersRetired),
	}
}

// poisonConn kills a connection whose framing state is no longer
// defined (partial frame written or read). Deterministic: the conn is
// closed immediately and every later Send/Poll involving it returns a
// PeerError carrying the original cause.
func (c *SockChannel) poisonConn(sc *sockConn, cause error) *PeerError {
	if sc.poison == nil {
		sc.poison = cause
		sc.c.Close()
		atomic.AddUint64(&c.stats.poisonedConns, 1)
	}
	return &PeerError{Peer: sc.peer, Err: sc.poison}
}

// Send implements Channel: write header and payload on the pair
// connection. Any write error mid-frame poisons the connection — a
// half-written frame can never be resynchronized, so the error state
// must be made permanent rather than leaving the framing undefined.
func (c *SockChannel) Send(dest int, hdr Header, payload []byte) error {
	if dest < 0 || dest >= c.size {
		return ErrRank
	}
	if dest == c.rank {
		return fmt.Errorf("%w: sock self-send not supported (use shm or loop)", ErrRank)
	}
	sc := c.conns[dest]
	if sc == nil {
		return &PeerError{Peer: dest, Err: ErrClosed}
	}
	if sc.poison != nil {
		return &PeerError{Peer: dest, Err: sc.poison}
	}
	hdr.Size = uint32(len(payload))
	var hb [HeaderSize]byte
	hdr.Marshal(hb[:])
	if err := sc.c.SetWriteDeadline(time.Now().Add(bodyTimeout)); err != nil {
		return c.poisonConn(sc, fmt.Errorf("sock: send deadline to %d: %w", dest, err))
	}
	if _, err := sc.c.Write(hb[:]); err != nil {
		return c.poisonConn(sc, fmt.Errorf("sock: send header to %d: %w", dest, err))
	}
	if len(payload) > 0 {
		if _, err := sc.c.Write(payload); err != nil {
			return c.poisonConn(sc, fmt.Errorf("sock: send payload to %d: %w", dest, err))
		}
	}
	atomic.AddUint64(&c.stats.framesSent, 1)
	atomic.AddUint64(&c.stats.bytesSent, uint64(len(payload)))
	if tr := obs.Active(); tr != nil {
		tr.Instant(c.rank, obs.KFrame,
			uint64(obs.FrameOut), uint64(hdr.Type), uint64(dest), uint64(len(payload)))
	}
	return nil
}

// Poll implements Channel: non-blocking header reads round-robin over
// peers; when a header completes, the payload is drained into the
// sink's buffer before returning. A connection-level failure is
// returned as a PeerError after the connection is poisoned; other
// peers are unaffected and keep being polled on later passes.
func (c *SockChannel) Poll(sink Sink) (bool, error) {
	n := len(c.conns)
	for i := 0; i < n; i++ {
		peer := (c.next + i) % n
		sc := c.conns[peer]
		if sc == nil || sc.poison != nil {
			continue
		}
		progressed, err := c.pollConn(sc, sink)
		if err != nil {
			return false, err
		}
		if progressed {
			c.next = (peer + 1) % n
			return true, nil
		}
	}
	return false, nil
}

func (c *SockChannel) pollConn(sc *sockConn, sink Sink) (bool, error) {
	// Short-deadline read: wakes immediately when data arrives and
	// abandons the pass after pollWindow otherwise. (A deadline in
	// the past would fail without ever attempting the read.)
	if err := sc.c.SetReadDeadline(time.Now().Add(pollWindow)); err != nil {
		return false, c.poisonConn(sc, err)
	}
	n, err := sc.c.Read(sc.hdrBuf[sc.hdrGot:])
	sc.hdrGot += n
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if sc.hdrGot < HeaderSize {
				return false, nil
			}
		} else if err == io.EOF {
			if sc.hdrGot == 0 {
				// Close between packets: the peer is gone but framing
				// is intact. Retire the connection and tell the device
				// which peer went away, so requests bound to it can be
				// failed instead of waiting forever; traffic already
				// delivered is unaffected and other peers keep
				// progressing.
				sc.c.Close()
				c.retire(sc)
				atomic.AddUint64(&c.stats.peersRetired, 1)
				return false, &PeerError{Peer: sc.peer, Err: io.EOF}
			}
			return false, c.poisonConn(sc, fmt.Errorf("sock: peer closed mid-packet: %w", err))
		} else {
			return false, c.poisonConn(sc, err)
		}
	}
	if sc.hdrGot < HeaderSize {
		return false, nil
	}
	// Header complete: finish any remainder synchronously.
	var hdr Header
	hdr.Unmarshal(sc.hdrBuf[:])
	sc.hdrGot = 0
	dst := sink.Deliver(hdr)
	if hdr.Size > 0 {
		if err := sc.c.SetReadDeadline(time.Now().Add(bodyTimeout)); err != nil {
			return false, c.poisonConn(sc, err)
		}
		if dst != nil {
			if uint32(len(dst)) < hdr.Size {
				return false, fmt.Errorf("%w: sink buffer %d smaller than payload %d", ErrProtocol, len(dst), hdr.Size)
			}
			if _, err := io.ReadFull(sc.c, dst[:hdr.Size]); err != nil {
				return false, c.poisonConn(sc, fmt.Errorf("sock: payload read: %w", err))
			}
		} else {
			if _, err := io.CopyN(io.Discard, sc.c, int64(hdr.Size)); err != nil {
				return false, c.poisonConn(sc, fmt.Errorf("sock: payload discard: %w", err))
			}
		}
	}
	sink.Done(hdr)
	atomic.AddUint64(&c.stats.framesRecvd, 1)
	atomic.AddUint64(&c.stats.bytesRecvd, uint64(hdr.Size))
	if tr := obs.Active(); tr != nil {
		tr.Instant(c.rank, obs.KFrame,
			uint64(obs.FrameIn), uint64(hdr.Type), uint64(hdr.Source), uint64(hdr.Size))
	}
	return true, nil
}

// retire drops a gracefully-closed peer connection from the poll set.
func (c *SockChannel) retire(sc *sockConn) {
	for i, cur := range c.conns {
		if cur == sc {
			c.conns[i] = nil
			return
		}
	}
}

// Close implements Channel.
func (c *SockChannel) Close() error {
	var first error
	for _, sc := range c.conns {
		if sc != nil {
			if err := sc.c.Close(); err != nil && first == nil && sc.poison == nil {
				first = err
			}
		}
	}
	return first
}

// --- bootstrap -------------------------------------------------------------

// ServeRoot runs the rendezvous service for an n-rank world on ln: it
// collects one registration line ("rank addr") from every rank and
// answers each with the full address table. It returns after serving
// all ranks. A connection that fails or misbehaves during
// registration is dropped and the service keeps waiting — the rank
// behind it retries with a fresh connection (see Bootstrap) — and a
// re-registration for an already-seen rank replaces the stale entry.
func ServeRoot(ln net.Listener, n int) error {
	addrs := make([]string, n)
	conns := make([]net.Conn, n)
	seen := 0
	for seen < n {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("sock bootstrap: accept: %w", err)
		}
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			// A rank's registration died mid-exchange; it will retry.
			conn.Close()
			continue
		}
		var rank int
		var addr string
		if _, err := fmt.Sscanf(strings.TrimSpace(line), "%d %s", &rank, &addr); err != nil {
			conn.Close()
			continue
		}
		if rank < 0 || rank >= n {
			conn.Close()
			continue
		}
		if conns[rank] != nil {
			// Retried registration: the previous exchange failed on
			// the rank's side after we recorded it. Replace it.
			conns[rank].Close()
			seen--
		}
		addrs[rank] = addr
		conns[rank] = conn
		seen++
	}
	table := strings.Join(addrs, " ") + "\n"
	var firstErr error
	for _, conn := range conns {
		if _, err := io.WriteString(conn, table); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("sock bootstrap: table write: %w", err)
		}
		conn.Close()
	}
	// Linger: a rank whose table read failed after we recorded its
	// registration will retry the whole exchange, and by then the main
	// loop above is gone — without an answer it would burn its entire
	// retry budget waiting on a table that never comes. Keep answering
	// re-registrations with the completed table until the caller closes
	// the listener.
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, err := bufio.NewReader(c).ReadString('\n'); err != nil {
					return
				}
				io.WriteString(c, table)
			}(conn)
		}
	}()
	return firstErr
}

// dialRetry dials with bounded attempts and exponential backoff,
// counting retries into the given counter.
func dialRetry(plat pal.Platform, addr string, rp RetryPolicy, retries *uint64) (net.Conn, error) {
	attempts := rp.DialAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			atomic.AddUint64(retries, 1)
			time.Sleep(rp.backoff(a - 1))
		}
		conn, err := plat.Dial(addr, dialTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// register performs one rendezvous exchange with the root service and
// returns the address table.
func register(plat pal.Platform, rootAddr, myAddr string, rank, size int, rp RetryPolicy, dials *uint64) ([]string, error) {
	rc, err := dialRetry(plat, rootAddr, rp, dials)
	if err != nil {
		return nil, fmt.Errorf("sock bootstrap: dial root: %w", err)
	}
	defer rc.Close()
	// Bound the exchange: if another rank never registers, this rank
	// must time out and fail (or retry) rather than wait forever on a
	// table that cannot arrive.
	if rp.AcceptTimeout > 0 {
		rc.SetDeadline(time.Now().Add(rp.AcceptTimeout))
	}
	if _, err := fmt.Fprintf(rc, "%d %s\n", rank, myAddr); err != nil {
		return nil, fmt.Errorf("sock bootstrap: register: %w", err)
	}
	tableLine, err := bufio.NewReader(rc).ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("sock bootstrap: table read: %w", err)
	}
	addrs := strings.Fields(tableLine)
	if len(addrs) != size {
		return nil, fmt.Errorf("%w: bootstrap table has %d entries, want %d", ErrProtocol, len(addrs), size)
	}
	return addrs, nil
}

// Bootstrap joins an n-rank sock world through the rendezvous service
// at rootAddr with the default retry policy (see BootstrapWith).
func Bootstrap(plat pal.Platform, rootAddr string, rank, size int) (*SockChannel, error) {
	return BootstrapWith(plat, rootAddr, rank, size, DefaultRetryPolicy)
}

// BootstrapWith joins an n-rank sock world through the rendezvous
// service at rootAddr and establishes the full connection mesh. Every
// rank of the world must call it concurrently (rank 0 does not host
// the service; see ServeRoot and NewSockGroupLocal). Dials and the
// rendezvous exchange retry per rp; a world that cannot form within
// the policy's bounds fails with an error instead of hanging.
func BootstrapWith(plat pal.Platform, rootAddr string, rank, size int, rp RetryPolicy) (*SockChannel, error) {
	if plat == nil {
		plat = pal.Default
	}
	if size == 1 {
		return &SockChannel{rank: 0, size: 1, conns: make([]*sockConn, 1)}, nil
	}
	ln, err := plat.Listen("")
	if err != nil {
		return nil, fmt.Errorf("sock bootstrap: listen: %w", err)
	}
	defer ln.Close()

	ch := &SockChannel{rank: rank, size: size, conns: make([]*sockConn, size)}

	// Register with the rendezvous service and obtain the table,
	// retrying the whole exchange on transient failure.
	attempts := rp.BootstrapAttempts
	if attempts < 1 {
		attempts = 1
	}
	var addrs []string
	for a := 0; a < attempts; a++ {
		if a > 0 {
			atomic.AddUint64(&ch.stats.bootstrapRetries, 1)
			time.Sleep(rp.backoff(a - 1))
		}
		addrs, err = register(plat, rootAddr, ln.Addr().String(), rank, size, rp, &ch.stats.dialRetries)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, err
	}

	// Bound the mesh accept phase: if a lower rank gave up dialing us
	// we must fail, not wait forever.
	if rp.AcceptTimeout > 0 {
		if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(time.Now().Add(rp.AcceptTimeout))
		}
	}

	// Mesh: dial every lower rank, accept from every higher rank.
	errc := make(chan error, 2)
	go func() {
		for j := 0; j < rank; j++ {
			conn, err := dialRetry(plat, addrs[j], rp, &ch.stats.dialRetries)
			if err != nil {
				errc <- fmt.Errorf("sock bootstrap: dial rank %d: %w", j, err)
				return
			}
			var id [4]byte
			binary.LittleEndian.PutUint32(id[:], uint32(rank))
			if _, err := conn.Write(id[:]); err != nil {
				errc <- fmt.Errorf("sock bootstrap: identify to %d: %w", j, err)
				return
			}
			ch.conns[j] = &sockConn{peer: j, c: conn}
		}
		errc <- nil
	}()
	go func() {
		for j := rank + 1; j < size; j++ {
			conn, err := ln.Accept()
			if err != nil {
				errc <- fmt.Errorf("sock bootstrap: accept mesh: %w", err)
				return
			}
			var id [4]byte
			if _, err := io.ReadFull(conn, id[:]); err != nil {
				// The dialing peer may be retrying; take the next
				// connection instead of aborting the world.
				conn.Close()
				j--
				continue
			}
			peer := int(binary.LittleEndian.Uint32(id[:]))
			if peer <= rank || peer >= size || ch.conns[peer] != nil {
				errc <- fmt.Errorf("%w: bootstrap got bad mesh peer %d", ErrProtocol, peer)
				return
			}
			ch.conns[peer] = &sockConn{peer: peer, c: conn}
		}
		errc <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			ch.Close()
			return nil, err
		}
	}
	// Disable Nagle where available: the ping-pong pattern is
	// latency-bound. (Interface assertion rather than *net.TCPConn so
	// wrapped connections — fault injection — forward it.)
	for _, sc := range ch.conns {
		if sc != nil {
			if tc, ok := sc.c.(interface{ SetNoDelay(bool) error }); ok {
				tc.SetNoDelay(true)
			}
		}
	}
	return ch, nil
}

// NewSockGroupLocal builds an n-rank sock world entirely within this
// process over loopback TCP — the single-node configuration of the
// paper's evaluation. It hosts the rendezvous service on an ephemeral
// port and bootstraps every rank concurrently.
func NewSockGroupLocal(plat pal.Platform, n int) ([]*SockChannel, error) {
	plats := make([]pal.Platform, n)
	for i := range plats {
		plats[i] = plat
	}
	return NewSockGroupLocalOn(plats, n, DefaultRetryPolicy)
}

// NewSockGroupLocalOn is NewSockGroupLocal with one platform per rank
// and an explicit retry policy — the chaos-testing entry point: each
// rank can carry its own fault plan while the rendezvous service
// stays on the host platform.
func NewSockGroupLocalOn(plats []pal.Platform, n int, rp RetryPolicy) ([]*SockChannel, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: bad sock group size %d", ErrConfig, n)
	}
	if len(plats) != n {
		return nil, fmt.Errorf("%w: %d platforms for %d ranks", ErrConfig, len(plats), n)
	}
	if n == 1 {
		ch, err := BootstrapWith(plats[0], "", 0, 1, rp)
		if err != nil {
			return nil, err
		}
		return []*SockChannel{ch}, nil
	}
	root, err := pal.Default.Listen("")
	if err != nil {
		return nil, err
	}
	defer root.Close()
	rootErr := make(chan error, 1)
	go func() { rootErr <- ServeRoot(root, n) }()

	type res struct {
		rank int
		ch   *SockChannel
		err  error
	}
	results := make(chan res, n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			ch, err := BootstrapWith(plats[rank], root.Addr().String(), rank, n, rp)
			results <- res{rank, ch, err}
		}(r)
	}
	chans := make([]*SockChannel, n)
	var firstErr error
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		chans[r.rank] = r.ch
	}
	if firstErr != nil {
		// A failed bootstrap may leave ServeRoot waiting on ranks that
		// will never register; closing the root listener unblocks it.
		root.Close()
		<-rootErr
		for _, ch := range chans {
			if ch != nil {
				ch.Close()
			}
		}
		return nil, firstErr
	}
	if err := <-rootErr; err != nil {
		for _, ch := range chans {
			if ch != nil {
				ch.Close()
			}
		}
		return nil, err
	}
	return chans, nil
}
