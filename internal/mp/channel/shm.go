package channel

import (
	"sync"
	"sync/atomic"

	"motor/internal/obs"
)

// The shm channel: in-process "shared memory" transport. Each ordered
// rank pair owns a mutex-protected frame ring, the software analogue
// of MPICH2's shm channel queues. Payloads are copied into the ring
// on send and out of the ring into the sink-designated buffer on
// poll — the two-copy discipline of a real shared-memory channel.

type shmFrame struct {
	hdr     Header
	payload []byte
}

// shmRing is a FIFO for one (sender, receiver) pair. Pops advance a
// head index in O(1); popped slots are zeroed immediately so their
// payloads are collectable, and the slice itself is compacted once
// the dead prefix dominates, so a long-lived ring cannot pin an
// unbounded backing array.
type shmRing struct {
	mu     sync.Mutex //motorlint:lockorder 30 channel
	frames []shmFrame
	head   int
	closed bool

	// compactions counts prefix compactions; atomic so the receiving
	// channel's TransportStats can read it without taking mu.
	compactions atomic.Uint64
}

func (r *shmRing) push(f shmFrame) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	r.frames = append(r.frames, f)
	return nil
}

func (r *shmRing) pop() (shmFrame, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.head == len(r.frames) {
		return shmFrame{}, false
	}
	f := r.frames[r.head]
	r.frames[r.head] = shmFrame{}
	r.head++
	if r.head == len(r.frames) {
		// Drained: reuse the backing array from the start.
		r.frames = r.frames[:0]
		r.head = 0
	} else if r.head >= 32 && r.head > len(r.frames)/2 {
		// Mostly-dead prefix: one O(live) compaction reclaims it.
		n := copy(r.frames, r.frames[r.head:])
		clear(r.frames[n:])
		r.frames = r.frames[:n]
		r.head = 0
		r.compactions.Add(1)
	}
	return f, true
}

func (r *shmRing) close() {
	r.mu.Lock()
	r.closed = true
	r.frames = nil
	r.head = 0
	r.mu.Unlock()
}

// ShmFabric is the shared substrate connecting n in-process ranks.
type ShmFabric struct {
	mu    sync.Mutex //motorlint:lockorder 30 channel
	size  int
	rings map[[2]int]*shmRing // [from,to]
}

// NewShmFabric creates the substrate for an n-rank world.
func NewShmFabric(n int) *ShmFabric {
	return &ShmFabric{size: n, rings: make(map[[2]int]*shmRing)}
}

// Size returns the current number of ranks in the fabric.
func (f *ShmFabric) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Grow adds n ranks to the fabric (dynamic process management) and
// returns the first new rank id.
func (f *ShmFabric) Grow(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	first := f.size
	f.size += n
	return first
}

func (f *ShmFabric) ring(from, to int) *shmRing {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := [2]int{from, to}
	r, ok := f.rings[key]
	if !ok {
		r = &shmRing{}
		f.rings[key] = r
	}
	return r
}

// Endpoint creates the channel for one rank of the fabric.
func (f *ShmFabric) Endpoint(rank int) *ShmChannel {
	return &ShmChannel{fabric: f, rank: rank}
}

// ShmChannel is one rank's view of a ShmFabric.
type ShmChannel struct {
	fabric *ShmFabric
	rank   int
	closed bool

	stats struct {
		framesSent  atomic.Uint64
		framesRecvd atomic.Uint64
		bytesSent   atomic.Uint64
		bytesRecvd  atomic.Uint64
	}
}

var (
	_ Channel     = (*ShmChannel)(nil)
	_ StatsSource = (*ShmChannel)(nil)
)

// TransportStats implements StatsSource. Ring compactions are charged
// to the receiving rank (pops drive compaction).
func (c *ShmChannel) TransportStats() TransportStats {
	st := TransportStats{
		FramesSent:  c.stats.framesSent.Load(),
		FramesRecvd: c.stats.framesRecvd.Load(),
		BytesSent:   c.stats.bytesSent.Load(),
		BytesRecvd:  c.stats.bytesRecvd.Load(),
	}
	n := c.fabric.Size()
	for from := 0; from < n; from++ {
		if from == c.rank {
			continue
		}
		st.RingCompactions += c.fabric.ring(from, c.rank).compactions.Load()
	}
	return st
}

// Rank implements Channel.
func (c *ShmChannel) Rank() int { return c.rank }

// Size implements Channel.
func (c *ShmChannel) Size() int { return c.fabric.Size() }

// Send implements Channel: copy the payload into the pair ring.
func (c *ShmChannel) Send(dest int, hdr Header, payload []byte) error {
	if c.closed {
		return ErrClosed
	}
	if dest < 0 || dest >= c.fabric.Size() {
		return ErrRank
	}
	hdr.Size = uint32(len(payload))
	f := shmFrame{hdr: hdr}
	if len(payload) > 0 {
		f.payload = append([]byte(nil), payload...)
	}
	if err := c.fabric.ring(c.rank, dest).push(f); err != nil {
		return err
	}
	c.stats.framesSent.Add(1)
	c.stats.bytesSent.Add(uint64(len(payload)))
	if tr := obs.Active(); tr != nil {
		tr.Instant(c.rank, obs.KFrame,
			uint64(obs.FrameOut), uint64(hdr.Type), uint64(dest), uint64(len(payload)))
	}
	return nil
}

// Poll implements Channel: round-robin over the incoming rings.
func (c *ShmChannel) Poll(sink Sink) (bool, error) {
	if c.closed {
		return false, ErrClosed
	}
	n := c.fabric.Size()
	for from := 0; from < n; from++ {
		if from == c.rank {
			continue
		}
		ring := c.fabric.ring(from, c.rank)
		if f, ok := ring.pop(); ok {
			c.stats.framesRecvd.Add(1)
			c.stats.bytesRecvd.Add(uint64(len(f.payload)))
			if tr := obs.Active(); tr != nil {
				tr.Instant(c.rank, obs.KFrame,
					uint64(obs.FrameIn), uint64(f.hdr.Type), uint64(f.hdr.Source), uint64(len(f.payload)))
			}
			dst := sink.Deliver(f.hdr)
			if len(f.payload) > 0 && dst != nil {
				copy(dst, f.payload)
			}
			sink.Done(f.hdr)
			return true, nil
		}
	}
	return false, nil
}

// Close implements Channel.
func (c *ShmChannel) Close() error {
	c.closed = true
	return nil
}

// LoopChannel is a single-rank channel (self-sends only); useful for
// one-rank worlds and unit tests of the device layer.
type LoopChannel struct {
	ring shmRing
}

var _ Channel = (*LoopChannel)(nil)

// Rank implements Channel.
func (c *LoopChannel) Rank() int { return 0 }

// Size implements Channel.
func (c *LoopChannel) Size() int { return 1 }

// Send implements Channel.
func (c *LoopChannel) Send(dest int, hdr Header, payload []byte) error {
	if dest != 0 {
		return ErrRank
	}
	hdr.Size = uint32(len(payload))
	f := shmFrame{hdr: hdr}
	if len(payload) > 0 {
		f.payload = append([]byte(nil), payload...)
	}
	return c.ring.push(f)
}

// Poll implements Channel.
func (c *LoopChannel) Poll(sink Sink) (bool, error) {
	f, ok := c.ring.pop()
	if !ok {
		return false, nil
	}
	dst := sink.Deliver(f.hdr)
	if len(f.payload) > 0 && dst != nil {
		copy(dst, f.payload)
	}
	sink.Done(f.hdr)
	return true, nil
}

// Close implements Channel.
func (c *LoopChannel) Close() error { return nil }
