// Package channel implements the lowest layer of the message-passing
// core: the MPICH2-style channel interface, "the simplest
// functionality required to move a message from one address space to
// another" (paper §6). Two production channels are provided — shm
// (in-process shared-memory rings) and sock (TCP with a rendezvous
// bootstrap) — plus a loop channel for single-rank worlds and tests.
//
// The channel moves packets: a fixed 40-byte header plus an opaque
// payload. Delivery is pull-based and zero-copy on the receive side:
// the device's Sink chooses the destination buffer for each payload
// after seeing its header, so an expected message lands directly in
// the user (or managed-heap) buffer.
package channel

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PacketType discriminates device-level packets (defined here so the
// channel can be tested independently of the device).
type PacketType uint8

// Device packet types.
const (
	PktEager PacketType = iota + 1 // payload carries the whole message
	PktRTS                         // rendezvous request-to-send (no payload)
	PktCTS                         // rendezvous clear-to-send (no payload)
	PktData                        // rendezvous payload
	PktCtrl                        // device control (barrier fan-in etc.)
)

// HeaderSize is the wire size of a packet header.
const HeaderSize = 40

// Header describes one packet. Seq is the observability correlation
// sequence: the sending device stamps a per-destination counter on
// message-bearing packets (eager, RTS, DATA) so the trace merge pass
// can join the sender's edge:send with the receiver's edge:recv;
// zero means unstamped (control packets, tracing off). It rides in
// the four header bytes that were previously reserved padding, so
// the wire size is unchanged.
type Header struct {
	Type    PacketType
	Source  int32  // sending rank (world numbering)
	Tag     int32  // message tag
	Context int32  // communicator context id
	Size    uint32 // payload byte count
	Seq     uint32 // trace correlation sequence (0 = unstamped)
	ReqA    uint64 // protocol correlation id (sender request)
	ReqB    uint64 // protocol correlation id (receiver request)
}

// Marshal encodes the header into b (len >= HeaderSize).
func (h *Header) Marshal(b []byte) {
	b[0] = byte(h.Type)
	b[1], b[2], b[3] = 0, 0, 0
	binary.LittleEndian.PutUint32(b[4:], uint32(h.Source))
	binary.LittleEndian.PutUint32(b[8:], uint32(h.Tag))
	binary.LittleEndian.PutUint32(b[12:], uint32(h.Context))
	binary.LittleEndian.PutUint32(b[16:], h.Size)
	binary.LittleEndian.PutUint32(b[20:], h.Seq)
	binary.LittleEndian.PutUint64(b[24:], h.ReqA)
	binary.LittleEndian.PutUint64(b[32:], h.ReqB)
}

// Unmarshal decodes the header from b.
func (h *Header) Unmarshal(b []byte) {
	h.Type = PacketType(b[0])
	h.Source = int32(binary.LittleEndian.Uint32(b[4:]))
	h.Tag = int32(binary.LittleEndian.Uint32(b[8:]))
	h.Context = int32(binary.LittleEndian.Uint32(b[12:]))
	h.Size = binary.LittleEndian.Uint32(b[16:])
	h.Seq = binary.LittleEndian.Uint32(b[20:])
	h.ReqA = binary.LittleEndian.Uint64(b[24:])
	h.ReqB = binary.LittleEndian.Uint64(b[32:])
}

// String renders the header for diagnostics.
func (h *Header) String() string {
	return fmt.Sprintf("pkt{type=%d src=%d tag=%d ctx=%d size=%d}", h.Type, h.Source, h.Tag, h.Context, h.Size)
}

// Sink is the device-side receiver. For each incoming packet the
// channel calls Deliver to obtain the destination buffer (exactly
// Size bytes; nil for empty payloads), writes the payload into it,
// and then calls Done.
type Sink interface {
	Deliver(hdr Header) []byte
	Done(hdr Header)
}

// Channel moves packets between the ranks of one process group.
// Implementations must preserve per-(source,destination) FIFO order —
// the device's matching semantics depend on non-overtaking delivery.
type Channel interface {
	// Rank and Size describe this endpoint's place in the group.
	Rank() int
	Size() int
	// Send transmits one packet to dest. It may buffer; it must not
	// block indefinitely. The payload is consumed before return.
	Send(dest int, hdr Header, payload []byte) error
	// Poll delivers at most one pending incoming packet to the sink,
	// reporting whether anything was delivered.
	Poll(sink Sink) (bool, error)
	// Close releases channel resources.
	Close() error
}

// ErrClosed is returned by operations on a closed channel.
var ErrClosed = errors.New("channel: closed")

// ErrRank is returned for an out-of-range destination.
var ErrRank = errors.New("channel: rank out of range")

// ErrProtocol is returned when a peer violates the wire protocol
// (bad frame, bad bootstrap handshake): the connection state is no
// longer trustworthy.
var ErrProtocol = errors.New("channel: protocol violation")

// ErrConfig is returned for invalid channel construction parameters.
var ErrConfig = errors.New("channel: invalid configuration")

// PeerError reports a transport failure confined to one peer
// connection: the rest of the mesh stays usable. The device layer
// translates it into typed MPI error classes on the affected requests
// instead of stalling the progress engine.
type PeerError struct {
	Peer int // world rank of the failed peer connection
	Err  error
}

// Error implements error.
func (e *PeerError) Error() string {
	return fmt.Sprintf("channel: peer %d: %v", e.Peer, e.Err)
}

// Unwrap exposes the underlying transport error.
func (e *PeerError) Unwrap() error { return e.Err }

// TransportStats counts channel-level traffic, fault and recovery
// activity. Frame counts are per wire packet (header + payload);
// byte counts cover payloads only — header overhead is fixed per
// frame (see headerSize).
type TransportStats struct {
	FramesSent       uint64 // packets pushed to peers
	FramesRecvd      uint64 // packets delivered to the sink
	BytesSent        uint64 // payload bytes pushed to peers
	BytesRecvd       uint64 // payload bytes delivered to the sink
	RingCompactions  uint64 // shm ring prefix compactions (shm only)
	DialRetries      uint64 // re-dials after a failed connection attempt
	BootstrapRetries uint64 // full rendezvous-exchange retries
	PoisonedConns    uint64 // connections killed after a partial frame
	PeersRetired     uint64 // connections retired on graceful close
}

// StatsSource is implemented by channels that track transport stats.
type StatsSource interface {
	TransportStats() TransportStats
}
