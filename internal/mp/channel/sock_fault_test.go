package channel

import (
	"errors"
	"testing"
	"time"

	"motor/internal/pal"
	"motor/internal/pal/fault"
)

// Regression test for the silent-hang framing bug: a write that
// stops mid-frame used to leave the connection open with undefined
// framing — the receiver would block forever on the missing header
// bytes. Any partial-frame error must instead poison the connection
// deterministically: the sender's next operations fail fast and the
// receiver's poll surfaces a PeerError.

func TestSockShortWritePoisonsConnection(t *testing.T) {
	// Rank 0's writes: #1 bootstrap registration, #2 first packet
	// header. 10 bytes of a 40-byte header go out, then a short-write
	// error — the partial-frame hazard.
	fp := fault.New(pal.Default, fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpWrite, Kind: fault.KindShort, Nth: 2, Bytes: 10},
	}})
	rp := RetryPolicy{DialAttempts: 2, BootstrapAttempts: 2,
		BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond,
		AcceptTimeout: 5 * time.Second}
	chans, err := NewSockGroupLocalOn([]pal.Platform{fp, nil}, 2, rp)
	if err != nil {
		t.Fatal(err)
	}
	defer chans[0].Close()
	defer chans[1].Close()

	hdr := Header{Type: PktEager, Source: 0, Tag: 1, Context: 0}
	payload := []byte("hello")

	// First send hits the short write and must error immediately —
	// never pretend a half-written frame succeeded.
	err = chans[0].Send(1, hdr, payload)
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Peer != 1 {
		t.Fatalf("first Send err = %v, want PeerError for peer 1", err)
	}

	// The connection is poisoned: later sends fail fast and
	// deterministically with the same peer error, no writes attempted.
	err = chans[0].Send(1, hdr, payload)
	if !errors.As(err, &pe) || pe.Peer != 1 {
		t.Fatalf("second Send err = %v, want PeerError for peer 1", err)
	}
	if got := chans[0].TransportStats().PoisonedConns; got != 1 {
		t.Fatalf("sender PoisonedConns = %d, want 1", got)
	}

	// The receiver sees 10 bytes of header then the poisoned
	// connection's close: its Poll must surface a PeerError naming
	// rank 0 — not block forever on the 30 missing bytes.
	sink := &collectSink{}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("receiver never observed the poisoned connection")
		}
		_, err := chans[1].Poll(sink)
		if err == nil {
			continue
		}
		if !errors.As(err, &pe) || pe.Peer != 0 {
			t.Fatalf("Poll err = %v, want PeerError for peer 0", err)
		}
		break
	}
	if len(sink.hdrs) != 0 {
		t.Fatalf("receiver delivered %d packets from a poisoned stream", len(sink.hdrs))
	}
	if got := chans[1].TransportStats().PoisonedConns; got != 1 {
		t.Fatalf("receiver PoisonedConns = %d, want 1", got)
	}

	// Poisoning is sticky on the receive side too.
	if _, err := chans[1].Poll(sink); err != nil {
		t.Fatalf("post-poison Poll err = %v, want nil (conn skipped)", err)
	}
}

// TestSockMidPayloadDropPoisons drops the connection inside a payload:
// the receiver has consumed the header and must poison, not hang,
// when the payload bytes can never arrive.
func TestSockMidPayloadDropPoisons(t *testing.T) {
	// Rank 0's writes: #1 registration, #2 header (intact), #3 payload
	// — 3 of 64 payload bytes escape before the connection drops.
	fp := fault.New(pal.Default, fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpWrite, Kind: fault.KindDrop, Nth: 3, Bytes: 3},
	}})
	rp := RetryPolicy{DialAttempts: 2, BootstrapAttempts: 2,
		BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond,
		AcceptTimeout: 5 * time.Second}
	chans, err := NewSockGroupLocalOn([]pal.Platform{fp, nil}, 2, rp)
	if err != nil {
		t.Fatal(err)
	}
	defer chans[0].Close()
	defer chans[1].Close()

	hdr := Header{Type: PktEager, Source: 0, Tag: 1, Context: 0}
	err = chans[0].Send(1, hdr, make([]byte, 64))
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Peer != 1 {
		t.Fatalf("Send err = %v, want PeerError for peer 1", err)
	}

	sink := &collectSink{}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("receiver hung on a truncated payload")
		}
		_, err := chans[1].Poll(sink)
		if err == nil {
			continue
		}
		if !errors.As(err, &pe) || pe.Peer != 0 {
			t.Fatalf("Poll err = %v, want PeerError for peer 0", err)
		}
		break
	}
	if len(sink.hdrs) != 0 {
		t.Fatalf("receiver completed %d packets from a truncated stream", len(sink.hdrs))
	}
}
