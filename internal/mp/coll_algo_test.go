package mp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// Tests for the size-aware collective engine: every algorithm must
// produce identical results under every forcing, the selector must
// pick by size, back-to-back collectives must never cross-match, and
// no collective may leak requests into the device — successful or not.

func f64s(vals ...float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

func f64at(buf []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
}

// TestAllreduceAlgorithms runs every allreduce algorithm over a
// matrix of rank counts (power-of-two and not) and element counts
// (including fewer elements than ranks, so ring chunks go empty) and
// checks exact sums.
func TestAllreduceAlgorithms(t *testing.T) {
	for _, algo := range []string{"reducebcast", "recdbl", "ring"} {
		for _, n := range []int{2, 3, 4, 5} {
			for _, elems := range []int{1, 3, 64, 4099} {
				name := fmt.Sprintf("%s/n=%d/elems=%d", algo, n, elems)
				t.Run(name, func(t *testing.T) {
					run(t, ChannelShm, n, func(w *World) error {
						c := w.Comm
						if err := c.SetCollAlgo("allreduce=" + algo); err != nil {
							return err
						}
						send := make([]byte, 8*elems)
						for i := 0; i < elems; i++ {
							binary.LittleEndian.PutUint64(send[8*i:], math.Float64bits(float64(c.Rank()+1)*float64(i+1)))
						}
						recv := make([]byte, len(send))
						if err := c.Allreduce(send, recv, TypeFloat64, OpSum); err != nil {
							return err
						}
						rankSum := float64(n*(n+1)) / 2
						for i := 0; i < elems; i++ {
							want := rankSum * float64(i+1)
							if got := f64at(recv, i); got != want {
								return fmt.Errorf("rank %d elem %d: got %v want %v", c.Rank(), i, got, want)
							}
						}
						if out := w.Dev.Outstanding(); out != 0 {
							return fmt.Errorf("rank %d: %d requests leaked", c.Rank(), out)
						}
						return nil
					})
				})
			}
		}
	}
}

// TestAllgatherAlgorithms checks both allgather algorithms over
// non-power-of-two communicators and odd chunk sizes.
func TestAllgatherAlgorithms(t *testing.T) {
	for _, algo := range []string{"gatherbcast", "ring"} {
		for _, n := range []int{2, 3, 5} {
			for _, chunk := range []int{1, 7, 9000} {
				t.Run(fmt.Sprintf("%s/n=%d/chunk=%d", algo, n, chunk), func(t *testing.T) {
					run(t, ChannelShm, n, func(w *World) error {
						c := w.Comm
						if err := c.SetCollAlgo("allgather=" + algo); err != nil {
							return err
						}
						send := bytes.Repeat([]byte{byte('A' + c.Rank())}, chunk)
						recv := make([]byte, chunk*n)
						if err := c.Allgather(send, recv); err != nil {
							return err
						}
						for r := 0; r < n; r++ {
							if !bytes.Equal(recv[r*chunk:(r+1)*chunk], bytes.Repeat([]byte{byte('A' + r)}, chunk)) {
								return fmt.Errorf("rank %d: chunk %d corrupt", c.Rank(), r)
							}
						}
						if out := w.Dev.Outstanding(); out != 0 {
							return fmt.Errorf("rank %d: %d requests leaked", c.Rank(), out)
						}
						return nil
					})
				})
			}
		}
	}
}

// TestBcastAlgorithms checks binomial and pipelined broadcast from
// every root, with a payload large enough for several pipeline
// segments.
func TestBcastAlgorithms(t *testing.T) {
	const size = 3*bcastSegSize + 17 // 4 segments, last one ragged
	for _, algo := range []string{"binomial", "pipelined"} {
		for _, n := range []int{2, 4, 5} {
			t.Run(fmt.Sprintf("%s/n=%d", algo, n), func(t *testing.T) {
				run(t, ChannelShm, n, func(w *World) error {
					c := w.Comm
					if err := c.SetCollAlgo("bcast=" + algo); err != nil {
						return err
					}
					for root := 0; root < n; root++ {
						buf := make([]byte, size)
						if c.Rank() == root {
							for i := range buf {
								buf[i] = byte(i*7 + root)
							}
						}
						if err := c.Bcast(buf, root); err != nil {
							return err
						}
						for i := range buf {
							if buf[i] != byte(i*7+root) {
								return fmt.Errorf("rank %d root %d: byte %d corrupt", c.Rank(), root, i)
							}
						}
					}
					if out := w.Dev.Outstanding(); out != 0 {
						return fmt.Errorf("rank %d: %d requests leaked", c.Rank(), out)
					}
					return nil
				})
			})
		}
	}
}

// TestCollAlgoAutoSelection pins the selector's crossover behavior:
// small payloads take the latency algorithms, large payloads the
// bandwidth algorithms, and the choice lands in CollStats.
func TestCollAlgoAutoSelection(t *testing.T) {
	run(t, ChannelShm, 4, func(w *World) error {
		c := w.Comm
		n := c.Size()
		small := make([]byte, 64)
		smallOut := make([]byte, 64)
		large := make([]byte, allreduceRingMin)
		largeOut := make([]byte, allreduceRingMin)
		if err := c.Allreduce(small, smallOut, TypeFloat64, OpSum); err != nil {
			return err
		}
		if err := c.Allreduce(large, largeOut, TypeFloat64, OpSum); err != nil {
			return err
		}
		if err := c.Allgather(small, make([]byte, 64*n)); err != nil {
			return err
		}
		if err := c.Allgather(large, make([]byte, allreduceRingMin*n)); err != nil {
			return err
		}
		if err := c.Bcast(small, 0); err != nil {
			return err
		}
		if err := c.Bcast(make([]byte, bcastPipelineMin), 0); err != nil {
			return err
		}
		st := c.CollStats()
		if st.AllreduceRecDbl != 1 || st.AllreduceRing != 1 {
			return fmt.Errorf("allreduce selection: recdbl=%d ring=%d, want 1/1", st.AllreduceRecDbl, st.AllreduceRing)
		}
		if st.AllgatherGatherBcast != 1 || st.AllgatherRing != 1 {
			return fmt.Errorf("allgather selection: gb=%d ring=%d, want 1/1", st.AllgatherGatherBcast, st.AllgatherRing)
		}
		if st.BcastBinomial < 1 || st.BcastPipelined < 1 {
			return fmt.Errorf("bcast selection: bin=%d pipe=%d, want >=1 each", st.BcastBinomial, st.BcastPipelined)
		}
		if st.Ops != 6 {
			return fmt.Errorf("coll ops = %d, want 6", st.Ops)
		}
		if st.BytesMoved == 0 {
			return fmt.Errorf("BytesMoved = 0")
		}
		if st.MaxSegsInFlight < 2 {
			return fmt.Errorf("MaxSegsInFlight = %d, want >= 2", st.MaxSegsInFlight)
		}
		return nil
	})
}

// TestSetCollAlgoSpec exercises the override parser: valid specs
// apply, invalid ops/algos/mismatches are rejected.
func TestSetCollAlgoSpec(t *testing.T) {
	run(t, ChannelShm, 1, func(w *World) error {
		c := w.Comm
		if err := c.SetCollAlgo("allreduce=ring, bcast=pipelined ,allgather=gatherbcast"); err != nil {
			return fmt.Errorf("valid spec rejected: %v", err)
		}
		if err := c.SetCollAlgo("allreduce=auto"); err != nil {
			return fmt.Errorf("auto rejected: %v", err)
		}
		for _, bad := range []string{"allreduce", "frobnicate=ring", "allreduce=quantum", "bcast=ring"} {
			if err := c.SetCollAlgo(bad); err == nil {
				return fmt.Errorf("spec %q accepted, want error", bad)
			}
		}
		return nil
	})
}

// TestCollStatsSharedAcrossComms verifies Dup/Split communicators
// aggregate into the same per-rank counters as their parent.
func TestCollStatsSharedAcrossComms(t *testing.T) {
	run(t, ChannelShm, 2, func(w *World) error {
		c := w.Comm
		dup := c.Dup()
		if err := dup.Barrier(); err != nil {
			return err
		}
		sub, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		if err := sub.Barrier(); err != nil {
			return err
		}
		st := c.CollStats()
		// Split runs an internal allgather on the parent plus the two
		// barriers; all must land in one shared counter set.
		if st.Ops < 3 {
			return fmt.Errorf("shared Ops = %d, want >= 3", st.Ops)
		}
		if dup.CollStats() != st || sub.CollStats() != st {
			return fmt.Errorf("derived comms report different stats")
		}
		return nil
	})
}

// TestCollTagSequencing is the white-box regression for the tag-reuse
// bug: two identical back-to-back collectives on one communicator
// must use distinct tags. On the seed scheme (fixed per-op tag bases)
// the tags were identical and correctness hung on per-pair FIFO.
func TestCollTagSequencing(t *testing.T) {
	run(t, ChannelShm, 2, func(w *World) error {
		c := w.Comm
		s0 := c.collSeq
		if err := c.Barrier(); err != nil {
			return err
		}
		s1 := c.collSeq
		if err := c.Barrier(); err != nil {
			return err
		}
		s2 := c.collSeq
		if s1 == s0 || s2 == s1 {
			return fmt.Errorf("collSeq did not advance: %d %d %d", s0, s1, s2)
		}
		if collTag(opcBarrier, s0, 0) == collTag(opcBarrier, s1, 0) {
			return fmt.Errorf("identical tags for successive barriers")
		}
		// Different ops at the same seq must differ too.
		if collTag(opcBarrier, s0, 0) == collTag(opcBcast, s0, 0) {
			return fmt.Errorf("op code not mixed into tag")
		}
		return nil
	})
}

// TestMixedCollectiveStress races 4 ranks through back-to-back mixed
// collectives with no intervening barriers — the scenario where tag
// reuse across successive collectives would cross-match (run with
// -race in the verify script's race tier). Every iteration's data is
// verified, so any mismatched message is caught, not just racy
// memory.
func TestMixedCollectiveStress(t *testing.T) {
	const iters = 60
	run(t, ChannelShm, 4, func(w *World) error {
		c := w.Comm
		n := c.Size()
		me := c.Rank()
		for it := 0; it < iters; it++ {
			// Bcast from a rotating root.
			root := it % n
			bbuf := f64s(float64(it), float64(root))
			if me != root {
				bbuf = make([]byte, 16)
			}
			if err := c.Bcast(bbuf, root); err != nil {
				return err
			}
			if f64at(bbuf, 0) != float64(it) || f64at(bbuf, 1) != float64(root) {
				return fmt.Errorf("rank %d iter %d: bcast corrupt", me, it)
			}
			// Allreduce whose expected value depends on the iteration.
			send := f64s(float64(me+1)*float64(it+1), float64(me))
			recv := make([]byte, len(send))
			if err := c.Allreduce(send, recv, TypeFloat64, OpSum); err != nil {
				return err
			}
			wantSum := float64(n*(n+1)) / 2 * float64(it+1)
			wantRanks := float64(n*(n-1)) / 2
			if f64at(recv, 0) != wantSum || f64at(recv, 1) != wantRanks {
				return fmt.Errorf("rank %d iter %d: allreduce got (%v,%v) want (%v,%v)",
					me, it, f64at(recv, 0), f64at(recv, 1), wantSum, wantRanks)
			}
			// Allgather of iteration-tagged chunks.
			chunk := f64s(float64(me*1000 + it))
			all := make([]byte, len(chunk)*n)
			if err := c.Allgather(chunk, all); err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if f64at(all, r) != float64(r*1000+it) {
					return fmt.Errorf("rank %d iter %d: allgather chunk %d corrupt", me, it, r)
				}
			}
			// Alltoall with per-pair, per-iteration values.
			a2aSend := make([]byte, 8*n)
			for peer := 0; peer < n; peer++ {
				binary.LittleEndian.PutUint64(a2aSend[8*peer:], math.Float64bits(float64(me*100+peer*10+it%10)))
			}
			a2aRecv := make([]byte, 8*n)
			if err := c.Alltoall(a2aSend, a2aRecv); err != nil {
				return err
			}
			for peer := 0; peer < n; peer++ {
				if f64at(a2aRecv, peer) != float64(peer*100+me*10+it%10) {
					return fmt.Errorf("rank %d iter %d: alltoall from %d corrupt", me, it, peer)
				}
			}
		}
		if out := w.Dev.Outstanding(); out != 0 {
			return fmt.Errorf("rank %d: %d requests leaked after stress", me, out)
		}
		return nil
	})
}

// TestAlltoallDrainsOnError is the regression for the request-leak
// bug: when a post fails mid-alltoall, the already-posted receives
// must not stay registered in the device match lists. On the pre-fix
// code this leaves Outstanding() > 0.
func TestAlltoallDrainsOnError(t *testing.T) {
	worlds, err := NewLocalWorlds(ChannelShm, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := worlds[0]
	// Kill this rank's own channel: receive posts still succeed (they
	// only touch the match lists), the first send post fails.
	if err := w.Dev.Channel().Close(); err != nil {
		t.Fatal(err)
	}
	send := make([]byte, 16)
	recv := make([]byte, 16)
	if err := w.Comm.Alltoall(send, recv); err == nil {
		t.Fatal("alltoall on a closed channel succeeded")
	}
	if out := w.Dev.Outstanding(); out != 0 {
		t.Fatalf("alltoall leaked %d requests after error", out)
	}
	if w.Dev.Stats.Cancelled == 0 {
		t.Fatal("expected cancelled requests after failed alltoall")
	}
}

// TestCollectiveErrorDrain drives every collective entry point into a
// post failure and asserts the drain discipline each time.
func TestCollectiveErrorDrain(t *testing.T) {
	newDeadWorld := func(t *testing.T) *World {
		t.Helper()
		worlds, err := NewLocalWorlds(ChannelShm, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		w := worlds[1] // interior rank: both sends and receives in play
		if err := w.Dev.Channel().Close(); err != nil {
			t.Fatal(err)
		}
		return w
	}
	buf := make([]byte, 24)
	cases := []struct {
		name string
		call func(c *Comm) error
	}{
		{"barrier", func(c *Comm) error { return c.Barrier() }},
		{"bcast", func(c *Comm) error { return c.Bcast(buf, 0) }},
		{"scatter", func(c *Comm) error { return c.Scatter(nil, buf, 0) }},
		{"gather", func(c *Comm) error { return c.Gather(buf, nil, 0) }},
		{"allgather", func(c *Comm) error { return c.Allgather(buf, make([]byte, len(buf)*3)) }},
		{"reduce", func(c *Comm) error { return c.Reduce(buf, nil, TypeFloat64, OpSum, 0) }},
		{"allreduce-recdbl", func(c *Comm) error {
			if err := c.SetCollAlgo("allreduce=recdbl"); err != nil {
				return err
			}
			return c.Allreduce(buf, make([]byte, len(buf)), TypeFloat64, OpSum)
		}},
		{"allreduce-ring", func(c *Comm) error {
			if err := c.SetCollAlgo("allreduce=ring"); err != nil {
				return err
			}
			return c.Allreduce(buf, make([]byte, len(buf)), TypeFloat64, OpSum)
		}},
		{"allgather-ring", func(c *Comm) error {
			if err := c.SetCollAlgo("allgather=ring"); err != nil {
				return err
			}
			return c.Allgather(buf, make([]byte, len(buf)*3))
		}},
		{"bcast-pipelined", func(c *Comm) error {
			if err := c.SetCollAlgo("bcast=pipelined"); err != nil {
				return err
			}
			return c.Bcast(make([]byte, 2*bcastSegSize), 0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newDeadWorld(t)
			if err := tc.call(w.Comm); err == nil {
				t.Fatalf("%s on a closed channel succeeded", tc.name)
			}
			if out := w.Dev.Outstanding(); out != 0 {
				t.Fatalf("%s leaked %d requests after error", tc.name, out)
			}
		})
	}
}

// TestCollectivesSockLarge runs the full set once over the sock
// channel with payloads past the eager threshold, so the rendezvous
// protocol carries the ring and pipeline traffic.
func TestCollectivesSockLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("sock collective sweep skipped in -short mode")
	}
	const elems = 40 << 10 // 320 KiB of float64s: ring + pipelined paths
	run(t, ChannelSock, 4, func(w *World) error {
		c := w.Comm
		n := c.Size()
		send := make([]byte, 8*elems)
		for i := 0; i < elems; i++ {
			binary.LittleEndian.PutUint64(send[8*i:], math.Float64bits(float64(c.Rank()+1)))
		}
		recv := make([]byte, len(send))
		if err := c.Allreduce(send, recv, TypeFloat64, OpSum); err != nil {
			return err
		}
		want := float64(n*(n+1)) / 2
		for i := 0; i < elems; i++ {
			if f64at(recv, i) != want {
				return fmt.Errorf("rank %d elem %d: got %v want %v", c.Rank(), i, f64at(recv, i), want)
			}
		}
		if err := c.Bcast(recv, 0); err != nil {
			return err
		}
		all := make([]byte, len(send)*n)
		if err := c.Allgather(send, all); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			if f64at(all, r*elems) != float64(r+1) {
				return fmt.Errorf("rank %d: allgather chunk %d corrupt", c.Rank(), r)
			}
		}
		st := c.CollStats()
		if st.AllreduceRing != 1 || st.AllgatherRing != 1 || st.BcastPipelined != 1 {
			return fmt.Errorf("selection over sock: %+v", st)
		}
		return nil
	})
}

// TestCollSeqConcurrentComms drives two communicators concurrently
// from the same rank goroutine set (interleaved, not threaded) to
// check context + seq isolation.
func TestCollSeqConcurrentComms(t *testing.T) {
	run(t, ChannelShm, 3, func(w *World) error {
		c := w.Comm
		dup := c.Dup()
		for i := 0; i < 10; i++ {
			v := f64s(float64(c.Rank() + i))
			out := make([]byte, 8)
			if err := c.Allreduce(v, out, TypeFloat64, OpMax); err != nil {
				return err
			}
			if f64at(out, 0) != float64(c.Size()-1+i) {
				return fmt.Errorf("world comm: got %v", f64at(out, 0))
			}
			if err := dup.Allreduce(v, out, TypeFloat64, OpMin); err != nil {
				return err
			}
			if f64at(out, 0) != float64(i) {
				return fmt.Errorf("dup comm: got %v", f64at(out, 0))
			}
		}
		return nil
	})
}

// TestEnvCollAlgoSpecParse checks the MOTOR_COLL_ALGO parse helper
// accepts the documented format (the env read itself is process-wide
// and exercised via collConfig.apply).
func TestEnvCollAlgoSpecParse(t *testing.T) {
	cfg := &collConfig{}
	if err := cfg.apply("allreduce=ring,allgather=gatherbcast,bcast=binomial"); err != nil {
		t.Fatal(err)
	}
	if cfg.force[opAllreduce] != AlgoRing || cfg.force[opAllgather] != AlgoGatherBcast || cfg.force[opBcast] != AlgoBinomial {
		t.Fatalf("forced = %v", cfg.force)
	}
	if err := cfg.apply(""); err != nil {
		t.Fatal(err)
	}
}

// TestBarrierStillSynchronizes: a rank must not exit the barrier
// before the last rank enters it (probabilistic but with generous
// slack — the dissemination rounds force transitive dependence).
func TestBarrierStillSynchronizes(t *testing.T) {
	const n = 4
	var mu sync.Mutex
	var entered int
	fail := false
	run(t, ChannelShm, n, func(w *World) error {
		if w.Rank() == 0 {
			time.Sleep(50 * time.Millisecond) // everyone else waits on us
		}
		mu.Lock()
		entered++
		mu.Unlock()
		if err := w.Comm.Barrier(); err != nil {
			return err
		}
		mu.Lock()
		if entered != n {
			fail = true
		}
		mu.Unlock()
		return nil
	})
	if fail {
		t.Fatal("a rank left the barrier before all ranks entered")
	}
}
