package mp

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func TestReduceIntoSumMatchesLoop(t *testing.T) {
	f := func(a, b []int32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		dst := make([]byte, 4*n)
		src := make([]byte, 4*n)
		for i := 0; i < n; i++ {
			putI32(dst, 4*i, a[i])
			putI32(src, 4*i, b[i])
		}
		if err := reduceInto(OpSum, TypeInt32, dst, src); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if getI32(dst, 4*i) != a[i]+b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReduceIntoMinMaxProd(t *testing.T) {
	enc := func(vals []int64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
		}
		return b
	}
	dec := func(b []byte) []int64 {
		out := make([]int64, len(b)/8)
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
		}
		return out
	}
	dst := enc([]int64{3, -5, 10})
	if err := reduceInto(OpMin, TypeInt64, dst, enc([]int64{1, 0, 20})); err != nil {
		t.Fatal(err)
	}
	if got := dec(dst); got[0] != 1 || got[1] != -5 || got[2] != 10 {
		t.Errorf("min %v", got)
	}
	dst = enc([]int64{3, -5, 10})
	if err := reduceInto(OpMax, TypeInt64, dst, enc([]int64{1, 0, 20})); err != nil {
		t.Fatal(err)
	}
	if got := dec(dst); got[0] != 3 || got[1] != 0 || got[2] != 20 {
		t.Errorf("max %v", got)
	}
	dst = enc([]int64{3, -5}[:2])
	if err := reduceInto(OpProd, TypeInt64, dst, enc([]int64{4, 6})); err != nil {
		t.Fatal(err)
	}
	if got := dec(dst); got[0] != 12 || got[1] != -30 {
		t.Errorf("prod %v", got)
	}
}

func TestReduceIntoFloat(t *testing.T) {
	enc := func(vals []float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
		}
		return b
	}
	dst := enc([]float64{1.5, -2})
	if err := reduceInto(OpSum, TypeFloat64, dst, enc([]float64{0.25, 2})); err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(dst)); got != 1.75 {
		t.Errorf("sum %g", got)
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(dst[8:])); got != 0 {
		t.Errorf("sum2 %g", got)
	}
	dst = enc([]float64{3})
	if err := reduceInto(OpMin, TypeFloat64, dst, enc([]float64{-7})); err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(dst)); got != -7 {
		t.Errorf("min %g", got)
	}
}

func TestReduceIntoUint8(t *testing.T) {
	dst := []byte{10, 200}
	if err := reduceInto(OpMax, TypeUint8, dst, []byte{50, 100}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 50 || dst[1] != 200 {
		t.Errorf("u8 max %v", dst)
	}
	dst = []byte{10, 20}
	if err := reduceInto(OpSum, TypeUint8, dst, []byte{5, 6}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 15 || dst[1] != 26 {
		t.Errorf("u8 sum %v", dst)
	}
	dst = []byte{10}
	if err := reduceInto(OpMin, TypeUint8, dst, []byte{3}); err != nil || dst[0] != 3 {
		t.Errorf("u8 min %v err %v", dst, err)
	}
	dst = []byte{10}
	if err := reduceInto(OpProd, TypeUint8, dst, []byte{3}); err != nil || dst[0] != 30 {
		t.Errorf("u8 prod %v err %v", dst, err)
	}
}

func TestReduceIntoErrors(t *testing.T) {
	if err := reduceInto(OpSum, TypeInt64, make([]byte, 8), make([]byte, 16)); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := reduceInto(OpSum, TypeInt64, make([]byte, 4), make([]byte, 4)); err == nil {
		t.Error("non-multiple length accepted")
	}
	if err := reduceInto(OpSum, Datatype{"bogus", 3}, make([]byte, 3), make([]byte, 3)); err == nil {
		t.Error("unknown datatype accepted")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpSum: "sum", OpProd: "prod", OpMin: "min", OpMax: "max"} {
		if op.String() != want {
			t.Errorf("%d -> %q", op, op.String())
		}
	}
	if Op(9).String() == "" {
		t.Error("unknown op empty string")
	}
}
