package mp

import (
	"errors"
	"fmt"
	"testing"
)

func TestRunLocalPropagatesErrors(t *testing.T) {
	sentinel := errors.New("rank 1 exploded")
	err := RunLocal(ChannelShm, 3, 0, func(w *World) error {
		if w.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("got %v", err)
	}
}

func TestNewLocalWorldsValidation(t *testing.T) {
	if _, err := NewLocalWorlds(ChannelShm, 0, 0); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewLocalWorlds(ChannelKind("pigeon"), 2, 0); err == nil {
		t.Error("unknown channel accepted")
	}
}

func TestWorldAccessors(t *testing.T) {
	run(t, ChannelShm, 3, func(w *World) error {
		if w.Size() != 3 {
			return fmt.Errorf("size %d", w.Size())
		}
		if w.Rank() != w.Comm.Rank() {
			return fmt.Errorf("rank mismatch %d/%d", w.Rank(), w.Comm.Rank())
		}
		if w.Dev.Rank() != w.Rank() {
			return fmt.Errorf("device rank %d", w.Dev.Rank())
		}
		if w.Comm.WorldRank(2) != 2 {
			return fmt.Errorf("world rank translation")
		}
		if w.Comm.Device() != w.Dev {
			return errors.New("device accessor mismatch")
		}
		return nil
	})
}

func TestDeviceStatsCounting(t *testing.T) {
	run(t, ChannelShm, 2, func(w *World) error {
		c := w.Comm
		small := make([]byte, 64)
		big := make([]byte, 256<<10)
		if c.Rank() == 0 {
			if err := c.Send(small, 1, 0); err != nil {
				return err
			}
			if err := c.Send(big, 1, 1); err != nil {
				return err
			}
			if w.Dev.Stats.EagerSent != 1 {
				return fmt.Errorf("eager sends %d", w.Dev.Stats.EagerSent)
			}
			if w.Dev.Stats.RndvSent != 1 {
				return fmt.Errorf("rendezvous sends %d", w.Dev.Stats.RndvSent)
			}
			if w.Dev.Stats.BytesSent != uint64(len(small)+len(big)) {
				return fmt.Errorf("bytes sent %d", w.Dev.Stats.BytesSent)
			}
			return nil
		}
		if _, err := c.Recv(small, 0, 0); err != nil {
			return err
		}
		if _, err := c.Recv(big, 0, 1); err != nil {
			return err
		}
		if w.Dev.Stats.BytesRecvd != uint64(len(small)+len(big)) {
			return fmt.Errorf("bytes recvd %d", w.Dev.Stats.BytesRecvd)
		}
		if w.Dev.EagerMax() != 64<<10 {
			return fmt.Errorf("eager max %d", w.Dev.EagerMax())
		}
		return nil
	})
}

func TestCustomEagerThresholdWorld(t *testing.T) {
	// A world built with a 128-byte threshold sends 256-byte messages
	// via rendezvous.
	err := RunLocal(ChannelShm, 2, 128, func(w *World) error {
		buf := make([]byte, 256)
		if w.Rank() == 0 {
			if err := w.Comm.Send(buf, 1, 0); err != nil {
				return err
			}
			if w.Dev.Stats.RndvSent != 1 || w.Dev.Stats.EagerSent != 0 {
				return fmt.Errorf("threshold ignored: eager=%d rndv=%d",
					w.Dev.Stats.EagerSent, w.Dev.Stats.RndvSent)
			}
			return nil
		}
		_, err := w.Comm.Recv(buf, 0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
