package mp

import (
	"fmt"
	"testing"
	"time"
)

// TestOOWireTagSpacesDisjoint: every (space, user tag) pair maps to a
// distinct wire tag, none of which a regular operation can produce.
func TestOOWireTagSpacesDisjoint(t *testing.T) {
	spaces := []OOSpace{OOSpaceData, OOSpaceAck, OOSpaceNack, OOSpaceTable, OOSpaceColl}
	seen := map[int]bool{}
	for _, sp := range spaces {
		for _, tag := range []int{0, 1, 12345, MaxUserTag} {
			wt := OOWireTag(sp, tag)
			if wt <= MaxUserTag {
				t.Fatalf("space %d tag %d wire tag %d inside user range", sp, tag, wt)
			}
			if int64(wt) != int64(int32(wt)) {
				t.Fatalf("space %d tag %d wire tag %d overflows int32", sp, tag, wt)
			}
			if seen[wt] {
				t.Fatalf("space %d tag %d collides at wire tag %d", sp, tag, wt)
			}
			seen[wt] = true
		}
	}
}

func TestOOTagValidation(t *testing.T) {
	worlds, err := NewLocalWorlds(ChannelShm, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer worlds[0].Close()
	defer worlds[1].Close()
	c := worlds[0].Comm
	if _, err := c.IsendOO(nil, 1, OOSpace(0), 0); err == nil {
		t.Error("space 0 accepted")
	}
	if _, err := c.IsendOO(nil, 1, OOSpace(ooSpaceHi+1), 0); err == nil {
		t.Error("space beyond hi accepted")
	}
	if _, err := c.IsendOO(nil, 1, OOSpaceData, -1); err == nil {
		t.Error("negative tag accepted")
	}
	if _, err := c.IsendOO(nil, 1, OOSpaceData, MaxUserTag+1); err == nil {
		t.Error("oversized tag accepted")
	}
	if _, err := c.IrecvOO(nil, 0, OOSpaceData, MaxUserTag+1); err == nil {
		t.Error("recv oversized tag accepted")
	}
}

// TestOOSpacesNeverCrossMatch sends the same user tag through three
// different categories at once — a data chunk, a user-level message,
// and an ACK control — and verifies each arrives only through its own
// space.
func TestOOSpacesNeverCrossMatch(t *testing.T) {
	worlds, err := NewLocalWorlds(ChannelShm, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	const tag = 7
	done := make(chan error, 2)
	go func() {
		c := worlds[0].Comm
		defer worlds[0].Close()
		// Post everything before any receive matches: user payload,
		// OO data payload, OO collective payload, then the ACK ctrl.
		r1, err := c.Isend([]byte("user"), 1, tag)
		if err != nil {
			done <- err
			return
		}
		r2, err := c.IsendOO([]byte("oodata"), 1, OOSpaceData, tag)
		if err != nil {
			done <- err
			return
		}
		r3, err := c.IsendOO([]byte("oocoll"), 1, OOSpaceColl, tag)
		if err != nil {
			done <- err
			return
		}
		if err := c.SendCtrlOO(1, OOSpaceAck, tag); err != nil {
			done <- err
			return
		}
		done <- c.WaitAll(r1, r2, r3)
	}()
	go func() {
		c := worlds[1].Comm
		defer worlds[1].Close()
		check := func(sp OOSpace, want string) error {
			buf := make([]byte, 16)
			req, err := c.IrecvOO(buf, 0, sp, tag)
			if err != nil {
				return err
			}
			st, err := c.Wait(req)
			if err != nil {
				return err
			}
			if got := string(buf[:st.Count]); got != want {
				return errf("space %d delivered %q, want %q", sp, got, want)
			}
			// Wait reports the raw wire tag (space encoded); IprobeOO is
			// the entry point that strips it.
			if st.Tag != OOWireTag(sp, tag) || st.Source != 0 {
				return errf("space %d status %+v", sp, st)
			}
			return nil
		}
		// Drain in the REVERSE of send order: each space must match
		// only its own message.
		if err := check(OOSpaceColl, "oocoll"); err != nil {
			done <- err
			return
		}
		if err := check(OOSpaceData, "oodata"); err != nil {
			done <- err
			return
		}
		// The ACK control is visible only to PollCtrlOO in its space.
		deadline := time.Now().Add(5 * time.Second)
		for {
			ok, err := c.PollCtrlOO(0, OOSpaceAck, tag)
			if err != nil {
				done <- err
				return
			}
			if ok {
				break
			}
			if time.Now().After(deadline) {
				done <- errf("ACK ctrl never arrived")
				return
			}
		}
		// A NACK poll on the same tag must see nothing.
		if ok, err := c.PollCtrlOO(0, OOSpaceNack, tag); err != nil || ok {
			done <- errf("NACK space matched ACK ctrl (ok=%v err=%v)", ok, err)
			return
		}
		// The plain user message is still there, untouched by OO drains.
		buf := make([]byte, 16)
		st, err := c.Recv(buf, 0, tag)
		if err != nil {
			done <- err
			return
		}
		if string(buf[:st.Count]) != "user" {
			done <- errf("user message corrupted: %q", buf[:st.Count])
			return
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("OO tag test hung")
		}
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
