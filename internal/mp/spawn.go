package mp

import (
	"errors"
	"fmt"
)

// Dynamic process management (MPI-2). The paper's Motor implements
// "selected MPI-2 functionality such as dynamic process management
// and dynamic intercommunication routines" (§7); this file provides
// the equivalent for shm worlds: Spawn adds ranks to the running
// fabric and connects parents and children through a merged
// communicator (the result of an MPI_Intercomm_merge).

// ErrNoSpawn is returned when the transport cannot grow (sock worlds
// have a fixed mesh).
var ErrNoSpawn = errors.New("mp: transport does not support dynamic process management")

// spawnCtxBase starts the context range reserved for spawned trees so
// parent- and child-allocated contexts never collide.
const spawnCtxBase = 1 << 24

// Spawn is collective over the world communicator: it adds n new
// ranks to the fabric, starts body once per child (each on its own
// goroutine), and returns a merged communicator containing all
// parents followed by all children. Children receive their own World
// (world communicator spanning the children only) plus the same
// merged communicator.
func (w *World) Spawn(n int, body func(child *World, merged *Comm) error) (*Comm, error) {
	if w.fabric == nil {
		return nil, ErrNoSpawn
	}
	if n < 1 {
		return nil, fmt.Errorf("%w: spawn count %d", errInvalid, n)
	}
	// Agree on the first child rank: rank 0 grows the fabric and
	// broadcasts the base; everyone else learns it from the bcast.
	sizeBuf := make([]byte, 8)
	if w.Comm.Rank() == 0 {
		first := w.fabric.Grow(n)
		putI32(sizeBuf, 0, int32(first))
		putI32(sizeBuf, 4, int32(n))
	}
	if err := w.Comm.Bcast(sizeBuf, 0); err != nil {
		return nil, err
	}
	first := int(getI32(sizeBuf, 0))
	count := int(getI32(sizeBuf, 4))

	// Merged communicator: parents 0..size-1 then children.
	mergedRanks := make([]int, 0, w.size+count)
	for r := 0; r < w.size; r++ {
		mergedRanks = append(mergedRanks, r)
	}
	for r := first; r < first+count; r++ {
		mergedRanks = append(mergedRanks, r)
	}
	// Deterministic context for this spawn tree, derived from the
	// first child rank so repeated spawns get distinct contexts.
	mergedCtx := int32(spawnCtxBase + 4*first)
	merged := newComm(w.Dev, mergedCtx, mergedRanks, w.rank, w.Comm.coll)

	// Rank 0 launches the children.
	if w.Comm.Rank() == 0 {
		childRanks := make([]int, count)
		for i := range childRanks {
			childRanks[i] = first + i
		}
		for i := 0; i < count; i++ {
			childWorldRank := first + i
			go func(cr int) {
				cw := worldFromChannel(w.fabric.Endpoint(cr), 0, w.Dev.EagerMax(), w.fabric)
				// The child's world communicator spans the children.
				cw.rank = cr
				cw.size = count
				cw.Comm = newComm(cw.Dev, mergedCtx+2, childRanks, cr, nil)
				childMerged := newComm(cw.Dev, mergedCtx, mergedRanks, cr, cw.Comm.coll)
				if err := body(cw, childMerged); err != nil {
					// Child errors surface through the merged comm's
					// traffic timing out; log-free library: panic is
					// wrong, so stash on the world.
					cw.spawnErr = err
				}
			}(childWorldRank)
		}
	}
	return merged, nil
}

// SpawnErr reports a child body error (children only).
func (w *World) SpawnErr() error { return w.spawnErr }
