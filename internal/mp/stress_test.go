package mp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"motor/internal/pal"
	"motor/internal/pal/fault"
)

// The stress tier hammers one rank's Comm/Device from many goroutines
// at once — exactly the sharing the async progress engine introduces —
// and is meant to run under -race (scripts/verify.sh stress). The
// tests assert the concurrency contract end to end: every request
// completes exactly once with the right payload, every failure is
// typed, and no request leaks regardless of which goroutine (caller
// or background engine) finished it.

// stressParams scales with -short so the tier stays usable inline.
func stressParams(t *testing.T) (goroutines, msgs int) {
	if testing.Short() {
		return 4, 8
	}
	return 8, 24
}

// TestStressSharedCommRace shares each rank's Comm between G
// point-to-point goroutines (disjoint tag blocks, symmetric
// exchange) plus one collective goroutine, with a free-running
// progress engine per rank completing requests in the background.
// The three completion disciplines — blocking Wait, Test polling,
// and OnComplete continuations — are all exercised concurrently.
func TestStressSharedCommRace(t *testing.T) {
	G, msgs := stressParams(t)
	worlds, err := NewLocalWorlds(ChannelShm, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range worlds {
			w.Close()
		}
	}()
	engines := make([]*Progress, 2)
	for i, w := range worlds {
		engines[i] = StartProgress(w.Dev, ProgressOptions{Lane: w.Rank()})
	}
	defer func() {
		for _, p := range engines {
			p.Stop()
		}
	}()

	payload := func(rank, g, i int) []byte {
		return []byte(fmt.Sprintf("r%d-g%02d-m%03d", rank, g, i))
	}
	finish := func(c *Comm, req *Request, discipline int) (Status, error) {
		switch discipline {
		case 0: // blocking polling-wait
			return c.Wait(req)
		case 1: // Test spin
			for {
				done, st, err := req.comm.Test(req)
				if err != nil || done {
					return st, err
				}
			}
		default: // continuation: park on a channel, never re-enter
			ch := make(chan struct{})
			req.OnComplete(func() { close(ch) })
			select {
			case <-ch:
			case <-time.After(20 * time.Second):
				return Status{}, fmt.Errorf("continuation never fired")
			}
			return req.Status(), req.Err()
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, 2*(G+1))
	for rank := 0; rank < 2; rank++ {
		peer := 1 - rank
		c := worlds[rank].Comm
		for g := 0; g < G; g++ {
			wg.Add(1)
			go func(rank, g int) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					tag := g*msgs + i
					sreq, err := c.Isend(payload(rank, g, i), peer, tag)
					if err != nil {
						errc <- fmt.Errorf("rank %d g %d isend: %w", rank, g, err)
						return
					}
					buf := make([]byte, 32)
					rreq, err := c.Irecv(buf, peer, tag)
					if err != nil {
						errc <- fmt.Errorf("rank %d g %d irecv: %w", rank, g, err)
						return
					}
					if _, err := finish(c, sreq, (g+i)%3); err != nil {
						errc <- fmt.Errorf("rank %d g %d send finish: %w", rank, g, err)
						return
					}
					st, err := finish(c, rreq, (g+i+1)%3)
					if err != nil {
						errc <- fmt.Errorf("rank %d g %d recv finish: %w", rank, g, err)
						return
					}
					want := payload(peer, g, i)
					if !bytes.Equal(buf[:st.Count], want) {
						errc <- fmt.Errorf("rank %d g %d msg %d: got %q want %q", rank, g, i, buf[:st.Count], want)
						return
					}
				}
			}(rank, g)
		}
		// One collective goroutine per rank, concurrent with all the
		// point-to-point traffic (collectives run in their own
		// context, so tags never collide with user traffic).
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for round := 0; round < msgs/2; round++ {
				if err := c.Barrier(); err != nil {
					errc <- fmt.Errorf("rank %d barrier %d: %w", rank, round, err)
					return
				}
				send := make([]byte, 4)
				recv := make([]byte, 4)
				binary.LittleEndian.PutUint32(send, uint32(rank+1))
				if err := c.Allreduce(send, recv, TypeInt32, OpSum); err != nil {
					errc <- fmt.Errorf("rank %d allreduce %d: %w", rank, round, err)
					return
				}
				if got := binary.LittleEndian.Uint32(recv); got != 3 {
					errc <- fmt.Errorf("rank %d allreduce %d: sum = %d, want 3", rank, round, got)
					return
				}
			}
		}(rank)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("stress run hung")
	}
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	for i, w := range worlds {
		if n := w.Dev.Outstanding(); n != 0 {
			t.Errorf("rank %d: %d requests leaked", i, n)
		}
	}
}

// TestStressFaultTyped injects a connection reset into the middle of
// a many-goroutine exchange over the sock transport, with free-running
// progress engines on both ranks. Every operation must either
// complete normally or fail with a typed ErrTransport — never hang,
// never panic, never leak a request — and the background engine must
// survive the peer's death.
func TestStressFaultTyped(t *testing.T) {
	G, msgs := stressParams(t)
	// Rank 0's writes: the first few are bootstrap/mesh; Nth targets a
	// data-plane write once the exchange is well underway.
	fp := fault.New(pal.Default, fault.Plan{Seed: 7, Rules: []fault.Rule{
		{Op: fault.OpWrite, Kind: fault.KindReset, Nth: 5 + G*msgs/2},
	}})
	worlds, err := NewSockWorldsOn([]pal.Platform{fp, nil}, 2, 0, chaosRetry)
	if err != nil {
		t.Fatalf("world construction: %v", err)
	}
	defer func() {
		for _, w := range worlds {
			w.Close()
		}
	}()
	engines := make([]*Progress, 2)
	for i, w := range worlds {
		engines[i] = StartProgress(w.Dev, ProgressOptions{Lane: w.Rank()})
	}
	defer func() {
		for _, p := range engines {
			p.Stop()
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures, successes int
	badErr := make(chan error, 2*G)
	record := func(err error) bool {
		mu.Lock()
		defer mu.Unlock()
		if err == nil {
			successes++
			return true
		}
		failures++
		if !errors.Is(err, ErrTransport) {
			badErr <- fmt.Errorf("untyped failure: %w", err)
			return false
		}
		return true
	}
	for rank := 0; rank < 2; rank++ {
		peer := 1 - rank
		c := worlds[rank].Comm
		for g := 0; g < G; g++ {
			wg.Add(1)
			go func(rank, g int) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					tag := g*msgs + i
					msg := []byte(fmt.Sprintf("f%d-%02d-%03d", rank, g, i))
					sreq, err := c.Isend(msg, peer, tag)
					if err != nil {
						if !record(err) {
							return
						}
						continue
					}
					buf := make([]byte, 32)
					rreq, err := c.Irecv(buf, peer, tag)
					if err != nil && !record(err) {
						return
					}
					_, werr := c.Wait(sreq)
					if !record(werr) {
						return
					}
					if rreq != nil {
						_, werr = c.Wait(rreq)
						if !record(werr) {
							return
						}
					}
				}
			}(rank, g)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case err := <-badErr:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("fault stress hung: a request neither completed nor failed")
	}
	close(badErr)
	for err := range badErr {
		t.Error(err)
	}
	if got := fp.Stats().Injected[fault.KindReset]; got != 1 {
		t.Fatalf("injected resets = %d, want 1", got)
	}
	if failures == 0 {
		t.Fatal("reset was injected but no operation failed")
	}
	if successes == 0 {
		t.Fatal("no operation completed before the fault")
	}
	for i, w := range worlds {
		if n := w.Dev.Outstanding(); n != 0 {
			t.Errorf("rank %d: %d requests leaked after fault", i, n)
		}
	}
}
