package mp_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"motor/internal/mp"
	"motor/internal/mp/mptest"
)

// TestProgressCompletesWithoutWait is the tentpole's core claim:
// with a free-running progress engine on each rank, posted requests
// complete via continuations while the posting goroutine never
// re-enters Wait or Test.
func TestProgressCompletesWithoutWait(t *testing.T) {
	worlds, err := mp.NewLocalWorlds(mp.ChannelShm, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range worlds {
			w.Close()
		}
	}()

	engines := make([]*mp.Progress, 2)
	for i, w := range worlds {
		engines[i] = mp.StartProgress(w.Dev, mp.ProgressOptions{Lane: w.Rank()})
	}
	defer func() {
		for _, p := range engines {
			p.Stop()
		}
	}()

	const N = 64
	errc := make(chan error, 2)
	go func() {
		c := worlds[0].Comm
		done := make(chan struct{}, N)
		for i := 0; i < N; i++ {
			msg := []byte(fmt.Sprintf("msg-%03d", i))
			req, err := c.Isend(msg, 1, i)
			if err != nil {
				errc <- err
				return
			}
			req.OnComplete(func() { done <- struct{}{} })
		}
		for i := 0; i < N; i++ {
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				errc <- fmt.Errorf("send %d never completed", i)
				return
			}
		}
		errc <- nil
	}()
	go func() {
		c := worlds[1].Comm
		type rcv struct {
			req *mp.Request
			buf []byte
		}
		recvs := make([]rcv, N)
		done := make(chan int, N)
		for i := 0; i < N; i++ {
			buf := make([]byte, 16)
			req, err := c.Irecv(buf, 0, i)
			if err != nil {
				errc <- err
				return
			}
			recvs[i] = rcv{req, buf}
			i := i
			req.OnComplete(func() { done <- i })
		}
		for n := 0; n < N; n++ {
			select {
			case i := <-done:
				want := fmt.Sprintf("msg-%03d", i)
				st := recvs[i].req.Status()
				if got := string(recvs[i].buf[:st.Count]); got != want {
					errc <- fmt.Errorf("recv tag %d: got %q want %q", i, got, want)
					return
				}
				if st.Source != 0 || st.Tag != i {
					errc <- fmt.Errorf("recv tag %d: bad status %+v", i, st)
					return
				}
			case <-time.After(10 * time.Second):
				errc <- fmt.Errorf("only %d/%d receives completed", n, N)
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range worlds {
		if n := w.Dev.Outstanding(); n != 0 {
			t.Errorf("rank %d: %d requests leaked", i, n)
		}
		st := engines[i].Stats()
		if st.Passes == 0 {
			t.Errorf("rank %d: progress engine never ran: %+v", i, st)
		}
		// Rank 0's eager sends complete at post; only the receiver is
		// guaranteed to need engine-driven completion.
		if i == 1 && st.Progressed == 0 {
			t.Errorf("rank %d: progress engine made no progress: %+v", i, st)
		}
	}
}

// TestProgressStopIdempotent exercises the engine lifecycle.
func TestProgressStopIdempotent(t *testing.T) {
	worlds, err := mp.NewLocalWorlds(mp.ChannelShm, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range worlds {
			w.Close()
		}
	}()
	p := mp.StartProgress(worlds[0].Dev, mp.ProgressOptions{})
	p.Stop()
	p.Stop()
	// Manual engines stop without ever having run a goroutine.
	m := mp.StartProgress(worlds[1].Dev, mp.ProgressOptions{Manual: true})
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	m.Stop()
}

// TestOnCompleteAlreadyDone: a continuation registered after
// completion runs immediately on the caller.
func TestOnCompleteAlreadyDone(t *testing.T) {
	worlds, err := mp.NewLocalWorlds(mp.ChannelShm, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer worlds[0].Close()
	c := worlds[0].Comm
	buf := make([]byte, 8)
	rreq, err := c.Irecv(buf, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Isend([]byte("selfmsg!"), 0, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(rreq); err != nil {
		t.Fatal(err)
	}
	ran := false
	rreq.OnComplete(func() { ran = true })
	if !ran {
		t.Fatal("OnComplete on a completed request did not run inline")
	}
}

// runSeededExchange runs a 2-rank, multi-stream nonblocking exchange
// either under the mptest driver (seed >= 0, manual progress engines,
// seeded interleaving) or inline (seed < 0, classic polling). It
// returns per-request completion records "dir:tag:source:count",
// sorted, plus the schedule trace (nil inline) — the differential
// property test compares the records across modes and seeds.
func runSeededExchange(t *testing.T, seed int64, streams, msgs int) ([]string, []string) {
	t.Helper()
	worlds, err := mp.NewLocalWorlds(mp.ChannelShm, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range worlds {
			w.Close()
		}
	}()

	var records []string
	var trace []string
	collect := func(dir string, tag int, st mp.Status) {
		records = append(records, fmt.Sprintf("%s:%d:%d:%d", dir, tag, st.Source, st.Count))
	}

	payload := func(stream, i int) []byte {
		return []byte(fmt.Sprintf("s%02d-m%03d", stream, i))
	}

	if seed >= 0 {
		d := mptest.New(seed)
		engines := make([]*mp.Progress, 2)
		for i, w := range worlds {
			engines[i] = mp.StartProgress(w.Dev, mp.ProgressOptions{Manual: true, Lane: w.Rank()})
			d.AddEngine(engines[i])
		}
		defer func() {
			for _, p := range engines {
				p.Stop()
			}
		}()
		var mu sync.Mutex
		// Sender: one actor per stream on rank 0.
		for s := 0; s < streams; s++ {
			s := s
			d.Go(func(step func()) {
				c := worlds[0].Comm
				for i := 0; i < msgs; i++ {
					step()
					req, err := c.Isend(payload(s, i), 1, s*msgs+i)
					if err != nil {
						t.Error(err)
						return
					}
					for {
						step()
						done, st, err := c.Test(req)
						if err != nil {
							t.Error(err)
							return
						}
						if done {
							func() { mu.Lock(); defer mu.Unlock(); collect("send", s*msgs+i, st) }()
							break
						}
					}
				}
			})
		}
		// Receiver: one actor per stream on rank 1.
		for s := 0; s < streams; s++ {
			s := s
			d.Go(func(step func()) {
				c := worlds[1].Comm
				for i := 0; i < msgs; i++ {
					buf := make([]byte, 16)
					step()
					req, err := c.Irecv(buf, 0, s*msgs+i)
					if err != nil {
						t.Error(err)
						return
					}
					for {
						step()
						done, st, err := c.Test(req)
						if err != nil {
							t.Error(err)
							return
						}
						if done {
							want := string(payload(s, i))
							if got := string(buf[:st.Count]); got != want {
								t.Errorf("stream %d msg %d: got %q want %q", s, i, got, want)
							}
							func() { mu.Lock(); defer mu.Unlock(); collect("recv", s*msgs+i, st) }()
							break
						}
					}
				}
			})
		}
		d.Run()
		d.Drain()
		trace = d.Trace()
	} else {
		errc := make(chan error, 2)
		var mu sync.Mutex
		go func() {
			c := worlds[0].Comm
			for s := 0; s < streams; s++ {
				for i := 0; i < msgs; i++ {
					req, err := c.Isend(payload(s, i), 1, s*msgs+i)
					if err != nil {
						errc <- err
						return
					}
					st, err := c.Wait(req)
					if err != nil {
						errc <- err
						return
					}
					func() { mu.Lock(); defer mu.Unlock(); collect("send", s*msgs+i, st) }()
				}
			}
			errc <- nil
		}()
		go func() {
			c := worlds[1].Comm
			for s := 0; s < streams; s++ {
				for i := 0; i < msgs; i++ {
					buf := make([]byte, 16)
					req, err := c.Irecv(buf, 0, s*msgs+i)
					if err != nil {
						errc <- err
						return
					}
					st, err := c.Wait(req)
					if err != nil {
						errc <- err
						return
					}
					func() { mu.Lock(); defer mu.Unlock(); collect("recv", s*msgs+i, st) }()
				}
			}
			errc <- nil
		}()
		for i := 0; i < 2; i++ {
			if err := <-errc; err != nil {
				t.Fatal(err)
			}
		}
	}

	for i, w := range worlds {
		if n := w.Dev.Outstanding(); n != 0 {
			t.Fatalf("rank %d: %d requests leaked", i, n)
		}
	}
	sort.Strings(records)
	return records, trace
}

// TestProgressDifferentialProperty: for any seeded interleaving of
// guest units and progress passes, every request completes exactly
// once and the completion statuses are identical to the inline-
// polling baseline.
func TestProgressDifferentialProperty(t *testing.T) {
	const streams, msgs = 3, 5
	baseline, _ := runSeededExchange(t, -1, streams, msgs)
	if want := 2 * streams * msgs; len(baseline) != want {
		t.Fatalf("baseline: %d records, want %d (a request completed zero or multiple times)", len(baseline), want)
	}
	seeds := []int64{1, 2, 3, 42, 12345}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		got, trace := runSeededExchange(t, seed, streams, msgs)
		if len(got) != len(baseline) {
			t.Fatalf("seed %d: %d records, want %d; schedule: %v", seed, len(got), len(baseline), tail(trace, 40))
		}
		for i := range got {
			if got[i] != baseline[i] {
				t.Fatalf("seed %d: record %d = %q, baseline %q; schedule: %v", seed, i, got[i], baseline[i], tail(trace, 40))
			}
		}
	}
}

// TestProgressDeterministicReplay: the same seed executes the same
// schedule, step for step — a failing interleaving replays exactly.
func TestProgressDeterministicReplay(t *testing.T) {
	const seed = 99
	_, t1 := runSeededExchange(t, seed, 2, 4)
	_, t2 := runSeededExchange(t, seed, 2, 4)
	if len(t1) != len(t2) {
		t.Fatalf("schedules diverge: %d vs %d rounds", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("schedules diverge at round %d: %q vs %q", i, t1[i], t2[i])
		}
	}
	if len(t1) == 0 {
		t.Fatal("empty schedule")
	}
}

func tail(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}
