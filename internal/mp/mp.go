// Package mp is the MPI layer of the Motor message-passing core: the
// platform- and interconnect-generic API over the ADI device (paper
// §6). It provides communicators with rank translation and context
// isolation, blocking / synchronous / immediate point-to-point
// operations, probes, and the collective operations of coll.go.
//
// Buffers at this layer are plain byte slices (or adi.Buffer for the
// Motor core's managed-heap ranges); datatype interpretation only
// matters to reduction operations (op.go).
package mp

import (
	"errors"
	"fmt"
	"sync/atomic"

	"motor/internal/mp/adi"
)

// Wildcards, re-exported from the device layer.
const (
	AnySource = adi.AnySource
	AnyTag    = adi.AnyTag
)

// ErrTransport is the typed error class for transport failures,
// re-exported from the device layer: a Wait/Test on a request whose
// peer connection died returns an error wrapping ErrTransport rather
// than hanging (check with errors.Is).
var ErrTransport = adi.ErrTransport

// MaxUserTag is the largest tag application code may use; larger
// values (and negative ones) are reserved for collectives.
const MaxUserTag = 1 << 28

// Status describes a completed receive in communicator rank terms.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// Request is a pending immediate operation on a communicator.
type Request struct {
	inner *adi.Request
	comm  *Comm
}

// Done reports whether the operation has completed (without driving
// progress; use Test to poll). Safe from any goroutine.
func (r *Request) Done() bool { return r.inner.Done() }

// OnComplete registers f to run exactly once when the request
// completes — on whichever goroutine completes it (a background
// progress pass, a sibling thread's Wait, or f immediately if the
// request is already done). With an async progress engine running, a
// waiter can park on a channel that f closes instead of re-entering
// the polling-wait.
func (r *Request) OnComplete(f func()) { r.comm.dev.OnComplete(r.inner, f) }

// Status returns the receive status in communicator ranks (valid
// once Done — inside an OnComplete continuation, for example).
func (r *Request) Status() Status { return r.comm.status(r.inner.Status()) }

// Err returns the request's terminal error (valid once Done).
func (r *Request) Err() error { return r.inner.Err() }

// Comm is a communicator: an isolated context over an ordered group
// of world ranks.
type Comm struct {
	dev    *adi.Device
	ctx    int32 // point-to-point context id
	cctx   int32 // collective context id (ctx+1)
	ranks  []int // communicator rank -> world rank
	myRank int   // my rank within this communicator

	// nextCtx allocates child context ids. Communicator construction
	// is collective and SPMD-deterministic, so all members compute
	// identical ids.
	nextCtx int32

	// coll is the collective configuration and counters, shared with
	// every communicator derived from the same world (collalgo.go).
	// collSeq is this communicator's own collective sequence number,
	// mixed into collective tags so back-to-back collectives never
	// cross-match (coll.go).
	coll    *collConfig
	collSeq uint32

	// ooSeq sequences OO collective part streams (oo.go), mixed into
	// their tags the same way collSeq is for buffered collectives.
	ooSeq uint32
}

// errInvalid flags API misuse.
var errInvalid = errors.New("mp: invalid argument")

func newComm(dev *adi.Device, ctx int32, ranks []int, myWorldRank int, coll *collConfig) *Comm {
	if coll == nil {
		coll = newCollConfig()
	}
	c := &Comm{dev: dev, ctx: ctx, cctx: ctx + 1, ranks: ranks, myRank: -1, nextCtx: ctx + 2, coll: coll}
	for i, wr := range ranks {
		if wr == myWorldRank {
			c.myRank = i
		}
	}
	return c
}

// Rank returns the calling process's rank in this communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(rank int) int { return c.ranks[rank] }

// Device exposes the underlying progress engine.
func (c *Comm) Device() *adi.Device { return c.dev }

// commRankOf translates a world rank back to this communicator's
// numbering (-1 when the world rank is not a member).
func (c *Comm) commRankOf(world int) int {
	for i, wr := range c.ranks {
		if wr == world {
			return i
		}
	}
	return -1
}

func (c *Comm) checkDest(rank int) error {
	if rank < 0 || rank >= len(c.ranks) {
		return fmt.Errorf("%w: rank %d of %d", errInvalid, rank, len(c.ranks))
	}
	return nil
}

func (c *Comm) checkTag(tag int) error {
	if tag < 0 || tag > MaxUserTag {
		return fmt.Errorf("%w: tag %d", errInvalid, tag)
	}
	return nil
}

func (c *Comm) status(s adi.Status) Status {
	return Status{Source: c.commRankOf(s.Source), Tag: s.Tag, Count: s.Count}
}

// --- point-to-point ----------------------------------------------------------

// IsendBuffer starts an immediate send of an abstract buffer. This is
// the entry point the Motor core uses with managed-heap ranges; plain
// code should prefer Isend.
func (c *Comm) IsendBuffer(buf adi.Buffer, dest, tag int, sync bool) (*Request, error) {
	if err := c.checkDest(dest); err != nil {
		return nil, err
	}
	if err := c.checkTag(tag); err != nil {
		return nil, err
	}
	req, err := c.dev.Isend(buf, c.ranks[dest], tag, c.ctx, sync)
	if err != nil {
		return nil, err
	}
	return &Request{inner: req, comm: c}, nil
}

// IrecvBuffer starts an immediate receive into an abstract buffer.
func (c *Comm) IrecvBuffer(buf adi.Buffer, source, tag int) (*Request, error) {
	worldSrc := adi.AnySource
	if source != AnySource {
		if err := c.checkDest(source); err != nil {
			return nil, err
		}
		worldSrc = c.ranks[source]
	}
	if tag != AnyTag {
		if err := c.checkTag(tag); err != nil {
			return nil, err
		}
	}
	req, err := c.dev.Irecv(buf, worldSrc, tag, c.ctx)
	if err != nil {
		return nil, err
	}
	return &Request{inner: req, comm: c}, nil
}

// Isend starts an immediate standard-mode send.
func (c *Comm) Isend(buf []byte, dest, tag int) (*Request, error) {
	return c.IsendBuffer(adi.SliceBuf(buf), dest, tag, false)
}

// Issend starts an immediate synchronous-mode send: it completes only
// after the receiver has matched the message.
func (c *Comm) Issend(buf []byte, dest, tag int) (*Request, error) {
	return c.IsendBuffer(adi.SliceBuf(buf), dest, tag, true)
}

// Irecv starts an immediate receive.
func (c *Comm) Irecv(buf []byte, source, tag int) (*Request, error) {
	return c.IrecvBuffer(adi.SliceBuf(buf), source, tag)
}

// Send performs a blocking standard-mode send.
func (c *Comm) Send(buf []byte, dest, tag int) error {
	req, err := c.Isend(buf, dest, tag)
	if err != nil {
		return err
	}
	_, err = c.Wait(req)
	return err
}

// Ssend performs a blocking synchronous-mode send.
func (c *Comm) Ssend(buf []byte, dest, tag int) error {
	req, err := c.Issend(buf, dest, tag)
	if err != nil {
		return err
	}
	_, err = c.Wait(req)
	return err
}

// Recv performs a blocking receive.
func (c *Comm) Recv(buf []byte, source, tag int) (Status, error) {
	req, err := c.Irecv(buf, source, tag)
	if err != nil {
		return Status{}, err
	}
	return c.Wait(req)
}

// Wait blocks (polling-wait) until the request completes.
func (c *Comm) Wait(req *Request) (Status, error) {
	s, err := c.dev.WaitReq(req.inner)
	return c.status(s), err
}

// Test makes one progress pass and reports completion.
func (c *Comm) Test(req *Request) (bool, Status, error) {
	done, s, err := c.dev.TestReq(req.inner)
	if !done {
		return false, Status{}, err
	}
	return true, c.status(s), err
}

// WaitAll waits for every request, returning the first error.
func (c *Comm) WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := c.Wait(r); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Iprobe reports whether a matching message is available.
func (c *Comm) Iprobe(source, tag int) (bool, Status, error) {
	worldSrc := adi.AnySource
	if source != AnySource {
		if err := c.checkDest(source); err != nil {
			return false, Status{}, err
		}
		worldSrc = c.ranks[source]
	}
	ok, s, err := c.dev.Iprobe(worldSrc, tag, c.ctx)
	if !ok {
		return false, Status{}, err
	}
	return true, c.status(s), err
}

// Probe blocks until a matching message is available.
func (c *Comm) Probe(source, tag int) (Status, error) {
	for {
		ok, s, err := c.Iprobe(source, tag)
		if err != nil {
			return Status{}, err
		}
		if ok {
			return s, nil
		}
		c.dev.Idle()
	}
}

// --- communicator management ---------------------------------------------------

// allocCtxPair reserves a (pt2pt, collective) context id pair. All
// members execute the same communicator-construction sequence, so the
// ids agree without communication (as in classic MPICH).
func (c *Comm) allocCtxPair(n int32) int32 {
	return atomic.AddInt32(&c.nextCtx, 2*n) - 2*n
}

// Dup creates a communicator with the same group but an isolated
// context. Collective: every member must call it.
func (c *Comm) Dup() *Comm {
	ctx := c.allocCtxPair(1)
	ranks := append([]int(nil), c.ranks...)
	return newComm(c.dev, ctx, ranks, c.dev.Rank(), c.coll)
}

// Split partitions the communicator by color; ranks within each new
// communicator are ordered by key (ties by old rank). Collective.
// A negative color yields a nil communicator for that caller, but the
// caller still participates in the exchange.
func (c *Comm) Split(color, key int) (*Comm, error) {
	// Allgather (color, key) over the collective context.
	mine := [2]int32{int32(color), int32(key)}
	all := make([][2]int32, c.Size())
	if err := c.allgatherPairs(mine, all); err != nil {
		return nil, err
	}
	// Deterministic context assignment: distinct non-negative colors
	// in ascending order each claim one context pair.
	var colors []int32
	for _, p := range all {
		if p[0] < 0 {
			continue
		}
		seen := false
		for _, cc := range colors {
			if cc == p[0] {
				seen = true
				break
			}
		}
		if !seen {
			colors = append(colors, p[0])
		}
	}
	sortInt32s(colors)
	base := c.allocCtxPair(int32(len(colors)))
	if color < 0 {
		return nil, nil
	}
	var ctx int32
	for i, cc := range colors {
		if cc == int32(color) {
			ctx = base + int32(2*i)
		}
	}
	// Members of my color, ordered by (key, old rank).
	type member struct {
		key     int32
		oldRank int
	}
	var members []member
	for r, p := range all {
		if p[0] == int32(color) {
			members = append(members, member{p[1], r})
		}
	}
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && (members[j].key < members[j-1].key ||
			(members[j].key == members[j-1].key && members[j].oldRank < members[j-1].oldRank)); j-- {
			members[j], members[j-1] = members[j-1], members[j]
		}
	}
	ranks := make([]int, len(members))
	for i, m := range members {
		ranks[i] = c.ranks[m.oldRank]
	}
	return newComm(c.dev, ctx, ranks, c.dev.Rank(), c.coll), nil
}

func sortInt32s(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// allgatherPairs is a tiny fixed-payload allgather used by Split
// before general collectives are in play.
func (c *Comm) allgatherPairs(mine [2]int32, out [][2]int32) error {
	buf := make([]byte, 8)
	putI32(buf, 0, mine[0])
	putI32(buf, 4, mine[1])
	gathered := make([]byte, 8*c.Size())
	if err := c.Allgather(buf, gathered); err != nil {
		return err
	}
	for i := range out {
		out[i][0] = getI32(gathered, i*8)
		out[i][1] = getI32(gathered, i*8+4)
	}
	return nil
}
