package mp

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"motor/internal/mp/channel"
	"motor/internal/pal"
	"motor/internal/pal/fault"
)

// The chaos suite drives seeded fault plans through sock worlds and
// asserts the hardening contract: a transport failure either recovers
// within the retry policy's bounds or surfaces as a typed ErrTransport
// on the affected operations — never a hang of the progress engine —
// and the same seed reproduces the same failure sequence.

// chaosRetry is a tight retry policy so failed bootstraps resolve in
// milliseconds instead of the production policy's seconds.
var chaosRetry = channel.RetryPolicy{
	DialAttempts:      4,
	BootstrapAttempts: 3,
	BackoffBase:       time.Millisecond,
	BackoffMax:        10 * time.Millisecond,
	AcceptTimeout:     5 * time.Second,
}

// runChaos builds a sock world with the given per-rank platforms and
// runs one body per rank, enforcing a deadline so an injected fault
// that stalls the engine fails the test instead of hanging it. It
// returns the per-rank body errors.
func runChaos(t *testing.T, plats []pal.Platform, eagerMax int, bodies []func(w *World) error) []error {
	t.Helper()
	n := len(bodies)
	worlds, err := NewSockWorldsOn(plats, n, eagerMax, chaosRetry)
	if err != nil {
		t.Fatalf("world construction: %v", err)
	}
	type res struct {
		rank int
		err  error
	}
	resc := make(chan res, n)
	for i := 0; i < n; i++ {
		go func(rank int, w *World) {
			defer w.Close()
			resc <- res{rank, bodies[rank](w)}
		}(i, worlds[i])
	}
	errs := make([]error, n)
	deadline := time.After(20 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case r := <-resc:
			errs[r.rank] = r.err
		case <-deadline:
			t.Fatal("chaos world hung: progress engine failed to surface the fault")
		}
	}
	return errs
}

// pingOnce is a body step: one small eager exchange.
func pingOnce(w *World, msg byte) error {
	if w.Rank() == 0 {
		if err := w.Comm.Send([]byte{msg}, 1, 1); err != nil {
			return err
		}
		buf := make([]byte, 1)
		_, err := w.Comm.Recv(buf, 1, 1)
		return err
	}
	buf := make([]byte, 1)
	if _, err := w.Comm.Recv(buf, 0, 1); err != nil {
		return err
	}
	return w.Comm.Send(buf, 0, 1)
}

// TestChaosDroppedBootstrap refuses rank 1's first dials to the
// rendezvous service; the bounded retry must recover and form a fully
// working world.
func TestChaosDroppedBootstrap(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fp := fault.New(pal.Default, fault.Plan{Seed: seed, Rules: []fault.Rule{
				{Op: fault.OpDial, Kind: fault.KindRefuse, Nth: 1, Count: 2},
			}})
			exchange := func(w *World) error { return pingOnce(w, 0xab) }
			errs := runChaos(t, []pal.Platform{nil, fp}, 0, []func(w *World) error{exchange, exchange})
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", r, err)
				}
			}
			if got := fp.Stats().Injected[fault.KindRefuse]; got != 2 {
				t.Fatalf("injected refusals = %d, want 2", got)
			}
		})
	}
}

// chanStats extracts the sock channel's transport counters.
func chanStats(t *testing.T, w *World) channel.TransportStats {
	t.Helper()
	src, ok := w.Dev.Channel().(channel.StatsSource)
	if !ok {
		t.Fatal("sock channel does not expose TransportStats")
	}
	return src.TransportStats()
}

// TestChaosDialRetriesCounted verifies the retry counter surfaces
// through the channel stats when the bootstrap had to re-dial.
func TestChaosDialRetriesCounted(t *testing.T) {
	fp := fault.New(pal.Default, fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpDial, Kind: fault.KindRefuse, Nth: 1, Count: 2},
	}})
	var retries uint64
	body := func(w *World) error {
		if err := pingOnce(w, 1); err != nil {
			return err
		}
		if w.Rank() == 1 {
			retries = chanStats(t, w).DialRetries
		}
		return nil
	}
	errs := runChaos(t, []pal.Platform{nil, fp}, 0, []func(w *World) error{body, body})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if retries < 2 {
		t.Fatalf("DialRetries = %d, want >= 2", retries)
	}
}

// TestChaosPartitionedTableRead partitions rank 1's first read — the
// rendezvous table — so its exchange times out after the root service
// has already served the table and moved on. The retried registration
// must be answered from the root's linger phase; the world forms.
func TestChaosPartitionedTableRead(t *testing.T) {
	// Rank 1's reads: #1 bootstrap table read.
	fp := fault.New(pal.Default, fault.Plan{Seed: 2, Rules: []fault.Rule{
		{Op: fault.OpRead, Kind: fault.KindPartition, Nth: 1},
	}})
	var retries uint64
	body := func(w *World) error {
		if err := pingOnce(w, 0x5c); err != nil {
			return err
		}
		if w.Rank() == 1 {
			retries = chanStats(t, w).BootstrapRetries
		}
		return nil
	}
	errs := runChaos(t, []pal.Platform{nil, fp}, 0, []func(w *World) error{body, body})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if retries < 1 {
		t.Fatalf("BootstrapRetries = %d, want >= 1", retries)
	}
}

// TestChaosResetDuringEagerSend resets rank 0's connection on its
// first post-bootstrap write (the eager packet header). Both sides
// must observe a typed ErrTransport instead of hanging.
func TestChaosResetDuringEagerSend(t *testing.T) {
	// Rank 0's writes: #1 bootstrap registration, #2 eager header.
	fp := fault.New(pal.Default, fault.Plan{Seed: 3, Rules: []fault.Rule{
		{Op: fault.OpWrite, Kind: fault.KindReset, Nth: 2},
	}})
	send := func(w *World) error { return w.Comm.Send([]byte("payload"), 1, 5) }
	recv := func(w *World) error {
		buf := make([]byte, 16)
		_, err := w.Comm.Recv(buf, 0, 5)
		return err
	}
	errs := runChaos(t, []pal.Platform{fp, nil}, 0, []func(w *World) error{send, recv})
	for r, err := range errs {
		if !errors.Is(err, ErrTransport) {
			t.Fatalf("rank %d: err = %v, want ErrTransport", r, err)
		}
	}
}

// ctsScenario is the acceptance scenario: a seeded plan resets the
// receiver's connection while it sends the rendezvous CTS. It returns
// the per-rank errors, the receiver's fault platform and the device
// stats of both ranks.
func ctsScenario(t *testing.T, seed int64) ([]error, *fault.Platform, []uint64) {
	t.Helper()
	// Rank 1's writes: #1 bootstrap registration, #2 mesh identify,
	// #3 rendezvous CTS. The delay rule exercises the seeded
	// probabilistic path without perturbing ordering.
	fp := fault.New(pal.Default, fault.Plan{Seed: seed, Rules: []fault.Rule{
		{Op: fault.OpWrite, Kind: fault.KindReset, Nth: 3},
		{Op: fault.OpDial, Kind: fault.KindDelay, Prob: 0.5, Count: 2, Delay: time.Millisecond},
	}})
	const eagerMax = 1024
	big := make([]byte, 8<<10) // above eagerMax: rendezvous path
	peersLost := make([]uint64, 2)
	send := func(w *World) error {
		err := w.Comm.Send(big, 1, 9)
		peersLost[0] = w.Dev.Stats.PeersLost
		return err
	}
	recv := func(w *World) error {
		buf := make([]byte, len(big))
		_, err := w.Comm.Recv(buf, 0, 9)
		peersLost[1] = w.Dev.Stats.PeersLost
		return err
	}
	errs := runChaos(t, []pal.Platform{nil, fp}, eagerMax, []func(w *World) error{send, recv})
	return errs, fp, peersLost
}

// TestChaosResetDuringRendezvousCTS asserts the acceptance criterion:
// the fault surfaces as ErrTransport on both ranks, the dead peer is
// counted, and nothing hangs.
func TestChaosResetDuringRendezvousCTS(t *testing.T) {
	errs, fp, peersLost := ctsScenario(t, 11)
	for r, err := range errs {
		if !errors.Is(err, ErrTransport) {
			t.Fatalf("rank %d: err = %v, want ErrTransport", r, err)
		}
	}
	if got := fp.Stats().Injected[fault.KindReset]; got != 1 {
		t.Fatalf("injected resets = %d, want 1", got)
	}
	for r, n := range peersLost {
		if n == 0 {
			t.Fatalf("rank %d: PeersLost = 0, want > 0", r)
		}
	}
}

// normalizeEvents strips the peer addresses (ephemeral ports differ
// between runs) so event logs from two runs are comparable.
func normalizeEvents(evs []fault.Event) []fault.Event {
	out := append([]fault.Event(nil), evs...)
	for i := range out {
		out[i].Peer = ""
	}
	return out
}

// TestChaosSeedDeterminism runs the acceptance scenario twice with the
// same seed and requires the identical failure sequence — the
// reproducibility contract of the fault package.
func TestChaosSeedDeterminism(t *testing.T) {
	const seed = 23
	errs1, fp1, _ := ctsScenario(t, seed)
	errs2, fp2, _ := ctsScenario(t, seed)
	for r := range errs1 {
		if !errors.Is(errs1[r], ErrTransport) || !errors.Is(errs2[r], ErrTransport) {
			t.Fatalf("rank %d: runs disagree: %v vs %v", r, errs1[r], errs2[r])
		}
	}
	ev1, ev2 := normalizeEvents(fp1.Events()), normalizeEvents(fp2.Events())
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("same seed, different fault sequences:\nrun1: %v\nrun2: %v", ev1, ev2)
	}
	if fp1.Stats() != fp2.Stats() {
		t.Fatalf("same seed, different stats: %+v vs %+v", fp1.Stats(), fp2.Stats())
	}
}

// TestChaosSeedSweep hammers eager ping-pong under probabilistic write
// faults across seeds: every run must either complete or fail with
// ErrTransport within the deadline — no third outcome, no hang.
func TestChaosSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short mode")
	}
	kinds := []fault.Kind{fault.KindReset, fault.KindDrop, fault.KindShort}
	for _, kind := range kinds {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%v/seed=%d", kind, seed), func(t *testing.T) {
				fp := fault.New(pal.Default, fault.Plan{Seed: seed, Rules: []fault.Rule{
					// Arm after the bootstrap write; fire with p=0.3 on
					// each subsequent write, at most twice.
					{Op: fault.OpWrite, Kind: kind, Nth: 2, Count: 2, Prob: 0.3, Bytes: 5},
				}})
				body := func(w *World) error {
					for i := 0; i < 20; i++ {
						if err := pingOnce(w, byte(i)); err != nil {
							return err
						}
					}
					return nil
				}
				errs := runChaos(t, []pal.Platform{fp, nil}, 0, []func(w *World) error{body, body})
				for r, err := range errs {
					if err != nil && !errors.Is(err, ErrTransport) {
						t.Fatalf("rank %d: non-transport error %v", r, err)
					}
				}
			})
		}
	}
}

// TestChaosResetDuringAllreduce injects a connection reset into rank
// 2's first collective data write during a 4-rank ring allreduce. The
// hardening contract extends to collectives: every rank must surface
// ErrTransport within the deadline (never hang mid-ring), and the
// drain discipline must leave zero outstanding requests on every
// device.
func TestChaosResetDuringAllreduce(t *testing.T) {
	const n = 4
	// Rank 2's sock writes: #1 registers with the bootstrap service,
	// #2..#3 identify to the lower ranks it dials (0 and 1), so #4 is
	// its first protocol write — the first allreduce frame.
	fp := fault.New(pal.Default, fault.Plan{Seed: 11, Rules: []fault.Rule{
		{Op: fault.OpWrite, Kind: fault.KindReset, Nth: 4},
	}})
	plats := make([]pal.Platform, n)
	plats[2] = fp
	outstanding := make([]int, n)
	body := func(w *World) error {
		send := make([]byte, 64<<10)
		for i := range send {
			send[i] = byte(w.Rank())
		}
		recv := make([]byte, len(send))
		err := w.Comm.Allreduce(send, recv, TypeUint8, OpSum)
		outstanding[w.Rank()] = w.Dev.Outstanding()
		return err
	}
	bodies := make([]func(w *World) error, n)
	for i := range bodies {
		bodies[i] = body
	}
	errs := runChaos(t, plats, 0, bodies)
	for r, err := range errs {
		if !errors.Is(err, ErrTransport) {
			t.Fatalf("rank %d: err = %v, want ErrTransport", r, err)
		}
	}
	for r, out := range outstanding {
		if out != 0 {
			t.Fatalf("rank %d: %d requests leaked past the failed allreduce", r, out)
		}
	}
	if fp.Stats().Injected[fault.KindReset] != 1 {
		t.Fatalf("injected resets = %d, want 1", fp.Stats().Injected[fault.KindReset])
	}
}

// TestChaosCollectiveSweep runs a mixed collective workload under
// probabilistic write faults on two ranks: every rank must either
// finish or fail with ErrTransport — no hang, no leak — across
// algorithms (recursive doubling, ring, binomial and pipelined trees).
func TestChaosCollectiveSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("collective chaos sweep skipped in -short mode")
	}
	const n = 4
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fp := fault.New(pal.Default, fault.Plan{Seed: seed, Rules: []fault.Rule{
				{Op: fault.OpWrite, Kind: fault.KindReset, Nth: 4, Count: 1, Prob: 0.4},
			}})
			plats := make([]pal.Platform, n)
			plats[1] = fp
			outstanding := make([]int, n)
			body := func(w *World) error {
				defer func() { outstanding[w.Rank()] = w.Dev.Outstanding() }()
				small := make([]byte, 512)
				large := make([]byte, 48<<10)
				out := make([]byte, len(large))
				for i := 0; i < 6; i++ {
					if err := w.Comm.Allreduce(small, small[:len(small):len(small)], TypeUint8, OpMax); err != nil {
						return err
					}
					if err := w.Comm.Allreduce(large, out, TypeUint8, OpSum); err != nil {
						return err
					}
					if err := w.Comm.Bcast(large, i%n); err != nil {
						return err
					}
					if err := w.Comm.Allgather(small, make([]byte, len(small)*n)); err != nil {
						return err
					}
				}
				return nil
			}
			bodies := make([]func(w *World) error, n)
			for i := range bodies {
				bodies[i] = body
			}
			errs := runChaos(t, plats, 0, bodies)
			anyErr := false
			for r, err := range errs {
				if err != nil {
					anyErr = true
					if !errors.Is(err, ErrTransport) {
						t.Fatalf("rank %d: non-transport error %v", r, err)
					}
				}
			}
			for r, out := range outstanding {
				if out != 0 {
					t.Fatalf("rank %d: %d requests leaked (anyErr=%v)", r, out, anyErr)
				}
			}
		})
	}
}
