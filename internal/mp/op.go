package mp

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Datatype gives reduction operations (and typed convenience APIs in
// the facade) an element interpretation of byte buffers. The regular
// Motor bindings derive sizes from objects and do not expose
// datatypes (paper §4.2.1); this type serves the native layer.
type Datatype struct {
	Name string
	Size int
}

// The supported element types.
var (
	TypeUint8   = Datatype{"uint8", 1}
	TypeInt32   = Datatype{"int32", 4}
	TypeInt64   = Datatype{"int64", 8}
	TypeFloat64 = Datatype{"float64", 8}
)

// Op is a reduction operator.
type Op uint8

// Reduction operators.
const (
	OpSum Op = iota
	OpProd
	OpMin
	OpMax
)

// String names the operator.
func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpProd:
		return "prod"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// reduceInto applies dst = dst ⊕ src elementwise.
func reduceInto(op Op, dt Datatype, dst, src []byte) error {
	if len(dst) != len(src) || len(dst)%dt.Size != 0 {
		return fmt.Errorf("%w: reduce buffers %d/%d bytes of %s", errInvalid, len(dst), len(src), dt.Name)
	}
	n := len(dst) / dt.Size
	switch dt {
	case TypeUint8:
		for i := 0; i < n; i++ {
			dst[i] = reduceU8(op, dst[i], src[i])
		}
	case TypeInt32:
		for i := 0; i < n; i++ {
			a := getI32(dst, i*4)
			b := getI32(src, i*4)
			putI32(dst, i*4, reduceI64Sized32(op, a, b))
		}
	case TypeInt64:
		for i := 0; i < n; i++ {
			a := int64(binary.LittleEndian.Uint64(dst[i*8:]))
			b := int64(binary.LittleEndian.Uint64(src[i*8:]))
			binary.LittleEndian.PutUint64(dst[i*8:], uint64(reduceI64(op, a, b)))
		}
	case TypeFloat64:
		for i := 0; i < n; i++ {
			a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i*8:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
			binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(reduceF64(op, a, b)))
		}
	default:
		return fmt.Errorf("%w: datatype %s", errInvalid, dt.Name)
	}
	return nil
}

func reduceU8(op Op, a, b uint8) uint8 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		if b < a {
			return b
		}
		return a
	default:
		if b > a {
			return b
		}
		return a
	}
}

func reduceI64(op Op, a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		if b < a {
			return b
		}
		return a
	default:
		if b > a {
			return b
		}
		return a
	}
}

func reduceI64Sized32(op Op, a, b int32) int32 {
	return int32(reduceI64(op, int64(a), int64(b)))
}

func reduceF64(op Op, a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		return math.Min(a, b)
	default:
		return math.Max(a, b)
	}
}

func putI32(b []byte, off int, v int32) { binary.LittleEndian.PutUint32(b[off:], uint32(v)) }
func getI32(b []byte, off int) int32    { return int32(binary.LittleEndian.Uint32(b[off:])) }
