package mp

import (
	"fmt"

	"motor/internal/mp/adi"
	"motor/internal/mp/channel"
	"motor/internal/pal"
)

// World is one rank's entry point to a process group: its device and
// its world communicator. In the Motor architecture each rank's
// virtual machine owns exactly one World.
type World struct {
	rank int
	size int

	Dev  *adi.Device
	Comm *Comm

	// fabric is non-nil for shm worlds and enables dynamic process
	// management (Spawn).
	fabric *channel.ShmFabric

	// spawnErr records a spawned child's body error (see Spawn).
	spawnErr error
}

// worldContext is the context id of every world communicator.
const worldContext = 0

// Rank returns this process's world rank.
func (w *World) Rank() int { return w.rank }

// Size returns the world size at creation time.
func (w *World) Size() int { return w.size }

// Close tears down the transport.
func (w *World) Close() error { return w.Dev.Channel().Close() }

// ChannelKind selects a transport for world construction.
type ChannelKind string

// Supported transports.
const (
	// ChannelShm wires ranks through in-process shared-memory rings.
	ChannelShm ChannelKind = "shm"
	// ChannelSock wires ranks through loopback TCP connections — the
	// configuration of the paper's evaluation.
	ChannelSock ChannelKind = "sock"
)

func worldFromChannel(ch channel.Channel, size int, eagerMax int, fabric *channel.ShmFabric) *World {
	dev := adi.NewDevice(ch, eagerMax)
	w := &World{rank: ch.Rank(), size: size, Dev: dev, fabric: fabric}
	ranks := make([]int, size)
	for i := range ranks {
		ranks[i] = i
	}
	w.Comm = newComm(dev, worldContext, ranks, w.rank, nil)
	return w
}

// NewLocalWorlds constructs an n-rank world inside this process and
// returns one World per rank. Rank i's World must only be used from
// the goroutine driving rank i.
func NewLocalWorlds(kind ChannelKind, n int, eagerMax int) ([]*World, error) {
	return NewLocalWorldsOn(kind, n, eagerMax, nil)
}

// NewLocalWorldsOn is NewLocalWorlds with an explicit platform for
// the sock transport (nil = the host platform). A fault-injecting
// platform plugged in here subjects the whole world to its plan; for
// per-rank plans use NewSockWorldsOn.
func NewLocalWorldsOn(kind ChannelKind, n int, eagerMax int, plat pal.Platform) ([]*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: world size %d", errInvalid, n)
	}
	switch kind {
	case ChannelShm:
		fabric := channel.NewShmFabric(n)
		worlds := make([]*World, n)
		for r := 0; r < n; r++ {
			worlds[r] = worldFromChannel(fabric.Endpoint(r), n, eagerMax, fabric)
		}
		return worlds, nil
	case ChannelSock:
		plats := make([]pal.Platform, n)
		for i := range plats {
			plats[i] = plat
		}
		return NewSockWorldsOn(plats, n, eagerMax, channel.DefaultRetryPolicy)
	default:
		return nil, fmt.Errorf("%w: unknown channel kind %q", errInvalid, kind)
	}
}

// NewSockWorldsOn builds an n-rank loopback sock world with one
// platform per rank (nil entries use the host platform) and an
// explicit bootstrap retry policy. This is the chaos-testing harness
// entry point: each rank carries its own seeded fault plan while the
// rendezvous service stays on the reliable host platform.
func NewSockWorldsOn(plats []pal.Platform, n int, eagerMax int, rp channel.RetryPolicy) ([]*World, error) {
	for i := range plats {
		if plats[i] == nil {
			plats[i] = pal.Default
		}
	}
	chans, err := channel.NewSockGroupLocalOn(plats, n, rp)
	if err != nil {
		return nil, err
	}
	worlds := make([]*World, n)
	for r := 0; r < n; r++ {
		worlds[r] = worldFromChannel(chans[r], n, eagerMax, nil)
	}
	return worlds, nil
}

// JoinWorld joins a multi-process sock world through the rendezvous
// service at rootAddr (see channel.ServeRoot for hosting it). Every
// process of the world calls JoinWorld with its rank.
func JoinWorld(rootAddr string, rank, size, eagerMax int) (*World, error) {
	ch, err := channel.Bootstrap(pal.Default, rootAddr, rank, size)
	if err != nil {
		return nil, err
	}
	return worldFromChannel(ch, size, eagerMax, nil), nil
}

// RunLocal is the harness most examples and tests use: it builds an
// n-rank in-process world and runs body once per rank, each on its
// own goroutine, returning the first error.
func RunLocal(kind ChannelKind, n int, eagerMax int, body func(w *World) error) error {
	worlds, err := NewLocalWorlds(kind, n, eagerMax)
	if err != nil {
		return err
	}
	errc := make(chan error, n)
	for _, w := range worlds {
		go func(w *World) {
			defer w.Close()
			errc <- body(w)
		}(w)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}
