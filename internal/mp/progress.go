package mp

import (
	"sync/atomic"
	"time"

	"motor/internal/mp/adi"
	"motor/internal/obs"
)

// Background progress engine ("MPI progress for all"): a per-device
// goroutine that drains posted requests, steps collectives' pending
// transfers and feeds the OO chunk pipeline while the application
// computes, so nonblocking operations complete without the caller
// re-entering a polling-wait.
//
// Two disciplines are supported:
//
//   - Free-running (default): the loop runs passes whenever there is
//     work, parking on the device's wake doorbell (armed via
//     Device.SetWake) with a short timer fallback for traffic from
//     peers, which rings no local doorbell.
//   - Manual (ProgressOptions.Manual): no goroutine; the owner calls
//     Step. The mptest harness uses this to schedule the progress
//     engine against guest threads deterministically from a seed.
//
// When the device belongs to a Motor VM, every pass must respect the
// collector's safepoint discipline: a pass may complete requests whose
// buffers are conditionally pinned managed objects, and it must never
// observe the heap mid-collection. ProgressOptions.Gate carries that
// contract — the Motor core points it at vm.ExecRun, so each pass
// holds the VM's execution token (no managed thread runs, no
// collection starts, pinned buffer ranges are stable). Between passes
// the engine holds nothing, which is what lets guest threads and the
// collector run at full speed while communication is idle.

// ProgressOptions configures StartProgress.
type ProgressOptions struct {
	// Gate, when non-nil, wraps every progress pass. The Motor core
	// passes vm.ExecRun so a pass runs under the VM execution token;
	// raw mp embedders leave it nil. The gate must not be held by the
	// caller when Stop is invoked, or Stop deadlocks against a pass
	// waiting to acquire it.
	Gate func(func())

	// Manual disables the free-running goroutine. The owner drives the
	// engine with Step (deterministic test harnesses).
	Manual bool

	// Interval bounds how long the free-running loop parks when idle
	// and no doorbell rings: incoming traffic from peers fires no local
	// wake, so the loop must re-poll on its own. Default 100µs.
	Interval time.Duration

	// Lane is the obs lane (world rank) for KProgress spans.
	Lane int
}

// DefaultProgressInterval is the idle re-poll period of a
// free-running progress loop.
const DefaultProgressInterval = 100 * time.Microsecond

// ProgressStats counts progress-engine activity. All fields are
// bumped atomically; read them with Snapshot.
type ProgressStats struct {
	Passes     uint64 // progress passes executed
	Progressed uint64 // passes that moved at least one packet
	Wakes      uint64 // doorbell wake-ups (a post left work behind)
	Timeouts   uint64 // idle timer expiries (re-poll for peer traffic)
	Errors     uint64 // passes that returned a non-peer channel error
}

// Snapshot returns a consistent copy of the counters, safe while the
// engine runs.
func (s *ProgressStats) Snapshot() ProgressStats {
	return ProgressStats{
		Passes:     atomic.LoadUint64(&s.Passes),
		Progressed: atomic.LoadUint64(&s.Progressed),
		Wakes:      atomic.LoadUint64(&s.Wakes),
		Timeouts:   atomic.LoadUint64(&s.Timeouts),
		Errors:     atomic.LoadUint64(&s.Errors),
	}
}

// Progress is a background progress engine bound to one device.
type Progress struct {
	dev  *adi.Device
	opts ProgressOptions

	stats ProgressStats

	wakeCh chan struct{}
	stopCh chan struct{}
	doneCh chan struct{}

	stopped atomic.Bool

	// Span coalescing: consecutive productive passes collapse into one
	// KProgress span instead of one span per packet. Only the loop (or
	// Step caller) touches these.
	spanStart  int64
	spanPasses uint64
}

// StartProgress binds a progress engine to dev and, unless
// opts.Manual is set, starts its goroutine. It installs the device's
// wake doorbell; the previous doorbell (if any) is replaced. Stop must
// be called before the device is closed.
func StartProgress(dev *adi.Device, opts ProgressOptions) *Progress {
	if opts.Interval <= 0 {
		opts.Interval = DefaultProgressInterval
	}
	p := &Progress{
		dev:    dev,
		opts:   opts,
		wakeCh: make(chan struct{}, 1),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	dev.SetWake(p.Wake)
	if opts.Manual {
		close(p.doneCh)
	} else {
		go p.loop()
	}
	return p
}

// Stats returns a snapshot of the engine's counters.
func (p *Progress) Stats() ProgressStats { return p.stats.Snapshot() }

// Manual reports whether the engine is step-driven.
func (p *Progress) Manual() bool { return p.opts.Manual }

// Wake rings the doorbell: the free-running loop cuts its idle park
// short and runs a pass. Safe from any goroutine; a ring while the
// loop is already running coalesces.
func (p *Progress) Wake() {
	atomic.AddUint64(&p.stats.Wakes, 1)
	select {
	case p.wakeCh <- struct{}{}:
	default:
	}
}

// Step executes one progress pass (through the gate, when
// configured) and reports whether it moved a packet. This is the
// manual-mode driver; it is also legal on a free-running engine,
// where it simply adds a pass (the device serializes).
func (p *Progress) Step() (bool, error) {
	return p.pass()
}

// Stop halts the engine, detaches the doorbell and waits for the
// loop goroutine to exit. Idempotent. The caller must not hold the
// gate (see ProgressOptions.Gate).
func (p *Progress) Stop() {
	if !p.stopped.CompareAndSwap(false, true) {
		return
	}
	close(p.stopCh)
	<-p.doneCh
	p.dev.SetWake(nil)
	p.flushSpan()
}

// pass runs one gated progress pass and maintains span coalescing.
func (p *Progress) pass() (bool, error) {
	var progressed bool
	var err error
	run := func() {
		progressed, err = p.dev.Progress()
	}
	tr := obs.Active()
	if tr != nil && p.spanPasses == 0 {
		// Provisional span start: discarded if the pass is idle.
		p.spanStart = tr.Now()
	}
	if p.opts.Gate != nil {
		p.opts.Gate(run)
	} else {
		run()
	}
	atomic.AddUint64(&p.stats.Passes, 1)
	obs.NoteProgress() // watchdog liveness: stall diagnoses cite pass recency
	if err != nil {
		atomic.AddUint64(&p.stats.Errors, 1)
	}
	if progressed {
		atomic.AddUint64(&p.stats.Progressed, 1)
		p.spanPasses++
	} else {
		p.flushSpan()
	}
	return progressed, err
}

// flushSpan emits the coalesced KProgress span covering the burst of
// productive passes since the last idle pass. Tracer.Span is
// lock-free (no lane-stack mutation), so emitting from the progress
// goroutine is safe alongside the rank's own Begin/End spans.
func (p *Progress) flushSpan() {
	if p.spanPasses == 0 {
		return
	}
	n := p.spanPasses
	p.spanPasses = 0
	if tr := obs.Active(); tr != nil {
		tr.Span(p.opts.Lane, obs.KProgress, tr.NewSpanID(), 0, p.spanStart, n)
	}
}

// loop is the free-running engine: drain while productive, then park
// on the doorbell with a timer fallback.
func (p *Progress) loop() {
	defer close(p.doneCh)
	timer := time.NewTimer(p.opts.Interval)
	defer timer.Stop()
	for {
		progressed, _ := p.pass()
		// Re-check stop even when busy, or a saturated wire could keep
		// the loop alive past Stop.
		select {
		case <-p.stopCh:
			return
		default:
		}
		if progressed {
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(p.opts.Interval)
		select {
		case <-p.stopCh:
			return
		case <-p.wakeCh:
		case <-timer.C:
			atomic.AddUint64(&p.stats.Timeouts, 1)
		}
	}
}
