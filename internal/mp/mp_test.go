package mp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

// run executes body per rank over an in-process world and fails the
// test on error or timeout.
func run(t *testing.T, kind ChannelKind, n int, body func(w *World) error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- RunLocal(kind, n, 0, body) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("world deadlocked")
	}
}

func bothKinds(t *testing.T, n int, body func(w *World) error) {
	t.Helper()
	for _, kind := range []ChannelKind{ChannelShm, ChannelSock} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			run(t, kind, n, body)
		})
	}
}

func TestPingPong(t *testing.T) {
	bothKinds(t, 2, func(w *World) error {
		c := w.Comm
		msg := []byte("ping-pong payload")
		buf := make([]byte, len(msg))
		for iter := 0; iter < 20; iter++ {
			if c.Rank() == 0 {
				if err := c.Send(msg, 1, iter); err != nil {
					return err
				}
				if _, err := c.Recv(buf, 1, iter); err != nil {
					return err
				}
				if !bytes.Equal(buf, msg) {
					return errors.New("pong corrupt")
				}
			} else {
				st, err := c.Recv(buf, 0, iter)
				if err != nil {
					return err
				}
				if st.Source != 0 || st.Count != len(msg) {
					return fmt.Errorf("bad status %+v", st)
				}
				if err := c.Send(buf, 0, iter); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

func TestLargeTransfersRendezvous(t *testing.T) {
	bothKinds(t, 2, func(w *World) error {
		c := w.Comm
		const size = 1 << 20 // 1 MiB, well past the eager threshold
		if c.Rank() == 0 {
			msg := make([]byte, size)
			for i := range msg {
				msg[i] = byte(i * 31)
			}
			return c.Send(msg, 1, 0)
		}
		buf := make([]byte, size)
		st, err := c.Recv(buf, 0, 0)
		if err != nil {
			return err
		}
		if st.Count != size {
			return fmt.Errorf("count %d", st.Count)
		}
		for i, b := range buf {
			if b != byte(i*31) {
				return fmt.Errorf("byte %d corrupt", i)
			}
		}
		return nil
	})
}

func TestIsendIrecvOverlap(t *testing.T) {
	run(t, ChannelShm, 2, func(w *World) error {
		c := w.Comm
		const k = 8
		if c.Rank() == 0 {
			reqs := make([]*Request, k)
			for i := 0; i < k; i++ {
				msg := []byte{byte(i), byte(i + 1)}
				r, err := c.Isend(msg, 1, i)
				if err != nil {
					return err
				}
				reqs[i] = r
			}
			return c.WaitAll(reqs...)
		}
		// Receive in reverse tag order to exercise matching.
		bufs := make([][]byte, k)
		reqs := make([]*Request, k)
		for i := k - 1; i >= 0; i-- {
			bufs[i] = make([]byte, 2)
			r, err := c.Irecv(bufs[i], 0, i)
			if err != nil {
				return err
			}
			reqs[i] = r
		}
		if err := c.WaitAll(reqs...); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			if bufs[i][0] != byte(i) || bufs[i][1] != byte(i+1) {
				return fmt.Errorf("msg %d corrupt: %v", i, bufs[i])
			}
		}
		return nil
	})
}

func TestAnySourceRecv(t *testing.T) {
	run(t, ChannelShm, 4, func(w *World) error {
		c := w.Comm
		if c.Rank() == 0 {
			got := map[int]bool{}
			buf := make([]byte, 1)
			for i := 0; i < 3; i++ {
				st, err := c.Recv(buf, AnySource, 5)
				if err != nil {
					return err
				}
				if int(buf[0]) != st.Source {
					return fmt.Errorf("payload %d from %d", buf[0], st.Source)
				}
				got[st.Source] = true
			}
			if len(got) != 3 {
				return fmt.Errorf("sources %v", got)
			}
			return nil
		}
		return c.Send([]byte{byte(c.Rank())}, 0, 5)
	})
}

func TestSsendSynchronization(t *testing.T) {
	run(t, ChannelShm, 2, func(w *World) error {
		c := w.Comm
		if c.Rank() == 0 {
			start := time.Now()
			if err := c.Ssend([]byte("sync"), 1, 1); err != nil {
				return err
			}
			// The receiver delays 50ms before posting; Ssend must not
			// complete before the match.
			if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
				return fmt.Errorf("ssend returned after %v, before receiver posted", elapsed)
			}
			return nil
		}
		time.Sleep(50 * time.Millisecond)
		buf := make([]byte, 4)
		_, err := c.Recv(buf, 0, 1)
		return err
	})
}

func TestProbeThenRecv(t *testing.T) {
	run(t, ChannelShm, 2, func(w *World) error {
		c := w.Comm
		if c.Rank() == 0 {
			return c.Send([]byte("sized just so"), 1, 3)
		}
		st, err := c.Probe(0, 3)
		if err != nil {
			return err
		}
		buf := make([]byte, st.Count)
		st2, err := c.Recv(buf, 0, 3)
		if err != nil {
			return err
		}
		if st2.Count != st.Count || string(buf) != "sized just so" {
			return fmt.Errorf("probe/recv mismatch: %d vs %d", st.Count, st2.Count)
		}
		return nil
	})
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			run(t, ChannelShm, n, func(w *World) error {
				for i := 0; i < 5; i++ {
					if err := w.Comm.Barrier(); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

func TestBcast(t *testing.T) {
	for _, n := range []int{2, 3, 7} {
		for root := 0; root < n; root++ {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				run(t, ChannelShm, n, func(w *World) error {
					buf := make([]byte, 64)
					if w.Comm.Rank() == root {
						for i := range buf {
							buf[i] = byte(i ^ root)
						}
					}
					if err := w.Comm.Bcast(buf, root); err != nil {
						return err
					}
					for i := range buf {
						if buf[i] != byte(i^root) {
							return fmt.Errorf("rank %d byte %d = %d", w.Comm.Rank(), i, buf[i])
						}
					}
					return nil
				})
			})
		}
	}
}

func TestScatterGather(t *testing.T) {
	const n = 4
	run(t, ChannelShm, n, func(w *World) error {
		c := w.Comm
		const chunk = 16
		var send []byte
		if c.Rank() == 1 {
			send = make([]byte, n*chunk)
			for i := range send {
				send[i] = byte(i)
			}
		}
		recv := make([]byte, chunk)
		if err := c.Scatter(send, recv, 1); err != nil {
			return err
		}
		for i := range recv {
			if recv[i] != byte(c.Rank()*chunk+i) {
				return fmt.Errorf("rank %d scatter byte %d = %d", c.Rank(), i, recv[i])
			}
		}
		// Transform and gather back.
		for i := range recv {
			recv[i] ^= 0xFF
		}
		var all []byte
		if c.Rank() == 1 {
			all = make([]byte, n*chunk)
		}
		if err := c.Gather(recv, all, 1); err != nil {
			return err
		}
		if c.Rank() == 1 {
			for i := range all {
				if all[i] != byte(i)^0xFF {
					return fmt.Errorf("gather byte %d = %d", i, all[i])
				}
			}
		}
		return nil
	})
}

func TestScattervGatherv(t *testing.T) {
	const n = 3
	run(t, ChannelShm, n, func(w *World) error {
		c := w.Comm
		var parts [][]byte
		if c.Rank() == 0 {
			parts = [][]byte{
				[]byte("a"),
				[]byte("bbbb"),
				bytes.Repeat([]byte("c"), 1000),
			}
		}
		mine, err := c.Scatterv(parts, 0)
		if err != nil {
			return err
		}
		wantLens := []int{1, 4, 1000}
		if len(mine) != wantLens[c.Rank()] {
			return fmt.Errorf("rank %d part %d bytes, want %d", c.Rank(), len(mine), wantLens[c.Rank()])
		}
		back, err := c.Gatherv(mine, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for r, p := range parts {
				if !bytes.Equal(back[r], p) {
					return fmt.Errorf("gatherv part %d mismatch", r)
				}
			}
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	const n = 5
	run(t, ChannelShm, n, func(w *World) error {
		c := w.Comm
		mine := []byte{byte(c.Rank() * 11)}
		all := make([]byte, n)
		if err := c.Allgather(mine, all); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			if all[r] != byte(r*11) {
				return fmt.Errorf("allgather[%d] = %d", r, all[r])
			}
		}
		return nil
	})
}

func TestReduceAndAllreduce(t *testing.T) {
	const n = 6
	run(t, ChannelShm, n, func(w *World) error {
		c := w.Comm
		// Sum of int64 values rank+1 per element.
		const elems = 8
		send := make([]byte, 8*elems)
		for i := 0; i < elems; i++ {
			binary.LittleEndian.PutUint64(send[i*8:], uint64(c.Rank()+1+i))
		}
		var recv []byte
		if c.Rank() == 2 {
			recv = make([]byte, len(send))
		}
		if err := c.Reduce(send, recv, TypeInt64, OpSum, 2); err != nil {
			return err
		}
		if c.Rank() == 2 {
			for i := 0; i < elems; i++ {
				want := int64(0)
				for r := 0; r < n; r++ {
					want += int64(r + 1 + i)
				}
				got := int64(binary.LittleEndian.Uint64(recv[i*8:]))
				if got != want {
					return fmt.Errorf("reduce elem %d = %d, want %d", i, got, want)
				}
			}
		}
		// Allreduce max of float64.
		fsend := make([]byte, 8)
		binary.LittleEndian.PutUint64(fsend, math.Float64bits(float64(c.Rank())))
		frecv := make([]byte, 8)
		if err := c.Allreduce(fsend, frecv, TypeFloat64, OpMax); err != nil {
			return err
		}
		if got := math.Float64frombits(binary.LittleEndian.Uint64(frecv)); got != float64(n-1) {
			return fmt.Errorf("allreduce max = %g", got)
		}
		return nil
	})
}

func TestCommDup(t *testing.T) {
	run(t, ChannelShm, 2, func(w *World) error {
		c := w.Comm
		dup := c.Dup()
		// Same-tag messages on the two comms must not cross.
		if c.Rank() == 0 {
			if err := c.Send([]byte("world"), 1, 1); err != nil {
				return err
			}
			return dup.Send([]byte("dup__"), 1, 1)
		}
		// Receive from the dup first.
		buf := make([]byte, 5)
		if _, err := dup.Recv(buf, 0, 1); err != nil {
			return err
		}
		if string(buf) != "dup__" {
			return fmt.Errorf("dup got %q", buf)
		}
		if _, err := c.Recv(buf, 0, 1); err != nil {
			return err
		}
		if string(buf) != "world" {
			return fmt.Errorf("world got %q", buf)
		}
		return nil
	})
}

func TestCommSplit(t *testing.T) {
	const n = 6
	run(t, ChannelShm, n, func(w *World) error {
		c := w.Comm
		color := c.Rank() % 2
		// Reverse key ordering within each color.
		sub, err := c.Split(color, -c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != n/2 {
			return fmt.Errorf("split size %d", sub.Size())
		}
		// Highest old rank gets rank 0 in the new comm (smallest key).
		wantRank := (n - 2 - c.Rank() + color) / 2
		if sub.Rank() != wantRank {
			return fmt.Errorf("old rank %d: new rank %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// Use the subcomm: allreduce of old ranks within the color.
		send := make([]byte, 8)
		binary.LittleEndian.PutUint64(send, uint64(c.Rank()))
		recv := make([]byte, 8)
		if err := sub.Allreduce(send, recv, TypeInt64, OpSum); err != nil {
			return err
		}
		want := int64(0)
		for r := color; r < n; r += 2 {
			want += int64(r)
		}
		if got := int64(binary.LittleEndian.Uint64(recv)); got != want {
			return fmt.Errorf("color %d sum %d, want %d", color, got, want)
		}
		return nil
	})
}

func TestTruncationError(t *testing.T) {
	run(t, ChannelShm, 2, func(w *World) error {
		c := w.Comm
		if c.Rank() == 0 {
			return c.Send(make([]byte, 100), 1, 0)
		}
		buf := make([]byte, 10)
		_, err := c.Recv(buf, 0, 0)
		if err == nil {
			return errors.New("truncation unreported")
		}
		return nil
	})
}

func TestInvalidArgs(t *testing.T) {
	run(t, ChannelShm, 2, func(w *World) error {
		c := w.Comm
		if err := c.Send(nil, 5, 0); err == nil {
			return errors.New("bad rank accepted")
		}
		if err := c.Send(nil, 1, -3); err == nil {
			return errors.New("negative tag accepted")
		}
		if err := c.Send(nil, 1, MaxUserTag+1); err == nil {
			return errors.New("huge tag accepted")
		}
		return nil
	})
}

func TestSpawn(t *testing.T) {
	run(t, ChannelShm, 2, func(w *World) error {
		merged, err := w.Spawn(2, func(child *World, merged *Comm) error {
			// Children: world comm spans the 2 children.
			if child.Comm.Size() != 2 {
				return fmt.Errorf("child world size %d", child.Comm.Size())
			}
			// Each child sends its merged rank to merged rank 0.
			return merged.Send([]byte{byte(merged.Rank())}, 0, 7)
		})
		if err != nil {
			return err
		}
		if merged.Size() != 4 {
			return fmt.Errorf("merged size %d", merged.Size())
		}
		if w.Comm.Rank() == 0 {
			got := map[int]bool{}
			buf := make([]byte, 1)
			for i := 0; i < 2; i++ {
				st, err := merged.Recv(buf, AnySource, 7)
				if err != nil {
					return err
				}
				if int(buf[0]) != st.Source {
					return fmt.Errorf("child reported %d from %d", buf[0], st.Source)
				}
				got[st.Source] = true
			}
			if !got[2] || !got[3] {
				return fmt.Errorf("children %v", got)
			}
		}
		return nil
	})
}
