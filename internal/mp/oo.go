package mp

import (
	"fmt"
	"sync/atomic"

	"motor/internal/mp/adi"
)

// OO transport tag discipline. The object-oriented operations move
// several messages per logical operation — data chunks, table-cache
// control traffic, the NACK-answer table blob, collective part
// streams — all on the communicator's point-to-point context. To keep
// interleaved OO operations (and OO traffic vs. regular user traffic)
// from ever cross-matching, each category gets its own tag space above
// MaxUserTag: the wire tag is space*(MaxUserTag+1) + userTag, which
// regular operations can never produce (checkTag caps them at
// MaxUserTag) and which stays within the int32 wire header.

// OOSpace names one OO message category.
type OOSpace int

// OO tag spaces.
const (
	OOSpaceData  OOSpace = 1 // object stream chunks (OSend/ORecv)
	OOSpaceAck   OOSpace = 2 // receiver->sender: table references all resolved
	OOSpaceNack  OOSpace = 3 // receiver->sender: cache miss, send the table
	OOSpaceTable OOSpace = 4 // sender->receiver: table blob (NACK answer)
	OOSpaceColl  OOSpace = 5 // collective part streams (OScatter/OGather)

	ooSpan    = MaxUserTag + 1
	ooSpaceHi = 5
)

// OOWireTag computes the on-wire tag for an OO message. Exported so
// tests can forge OO-tagged frames at the device layer.
func OOWireTag(sp OOSpace, tag int) int { return int(sp)*ooSpan + tag }

func (c *Comm) checkOOTag(sp OOSpace, tag int) error {
	if sp < 1 || sp > ooSpaceHi {
		return fmt.Errorf("%w: OO space %d", errInvalid, sp)
	}
	if tag < 0 || tag > MaxUserTag {
		return fmt.Errorf("%w: OO tag %d", errInvalid, tag)
	}
	return nil
}

// ooStatus translates a device status back into communicator terms
// with the space stripped from the tag.
func (c *Comm) ooStatus(s adi.Status, sp OOSpace) Status {
	st := c.status(s)
	st.Tag -= int(sp) * ooSpan
	return st
}

// IsendOO starts an immediate send of one OO message.
func (c *Comm) IsendOO(buf []byte, dest int, sp OOSpace, tag int) (*Request, error) {
	if err := c.checkDest(dest); err != nil {
		return nil, err
	}
	if err := c.checkOOTag(sp, tag); err != nil {
		return nil, err
	}
	req, err := c.dev.Isend(adi.SliceBuf(buf), c.ranks[dest], OOWireTag(sp, tag), c.ctx, false)
	if err != nil {
		return nil, err
	}
	return &Request{inner: req, comm: c}, nil
}

// IsendOOBuffer is IsendOO over an abstract buffer — the form the
// engine uses for managed ranges, and the hook oversize-regression
// tests use to put a lying wire-claimed size on an OO tag.
func (c *Comm) IsendOOBuffer(buf adi.Buffer, dest int, sp OOSpace, tag int) (*Request, error) {
	if err := c.checkDest(dest); err != nil {
		return nil, err
	}
	if err := c.checkOOTag(sp, tag); err != nil {
		return nil, err
	}
	req, err := c.dev.Isend(buf, c.ranks[dest], OOWireTag(sp, tag), c.ctx, false)
	if err != nil {
		return nil, err
	}
	return &Request{inner: req, comm: c}, nil
}

// IrecvOO starts an immediate receive of one OO message. source may be
// AnySource (the first chunk of an any-source ORecv); the tag may not
// be AnyTag — OO streams are always tag-addressed.
func (c *Comm) IrecvOO(buf []byte, source int, sp OOSpace, tag int) (*Request, error) {
	worldSrc := adi.AnySource
	if source != AnySource {
		if err := c.checkDest(source); err != nil {
			return nil, err
		}
		worldSrc = c.ranks[source]
	}
	if err := c.checkOOTag(sp, tag); err != nil {
		return nil, err
	}
	req, err := c.dev.Irecv(adi.SliceBuf(buf), worldSrc, OOWireTag(sp, tag), c.ctx)
	if err != nil {
		return nil, err
	}
	return &Request{inner: req, comm: c}, nil
}

// IprobeOO reports whether an OO message in the given space is
// available, with its size. Drives progress, so a dead peer surfaces
// as a typed error instead of an endless poll.
func (c *Comm) IprobeOO(source int, sp OOSpace, tag int) (bool, Status, error) {
	worldSrc := adi.AnySource
	if source != AnySource {
		if err := c.checkDest(source); err != nil {
			return false, Status{}, err
		}
		worldSrc = c.ranks[source]
	}
	if err := c.checkOOTag(sp, tag); err != nil {
		return false, Status{}, err
	}
	ok, s, err := c.dev.Iprobe(worldSrc, OOWireTag(sp, tag), c.ctx)
	if !ok {
		return false, Status{}, err
	}
	return true, c.ooStatus(s, sp), err
}

// SendCtrlOO sends a header-only control packet in an OO space (the
// table-cache ACK/NACK).
func (c *Comm) SendCtrlOO(dest int, sp OOSpace, tag int) error {
	if err := c.checkDest(dest); err != nil {
		return err
	}
	if err := c.checkOOTag(sp, tag); err != nil {
		return err
	}
	return c.dev.SendCtrl(c.ranks[dest], OOWireTag(sp, tag), c.ctx)
}

// PollCtrlOO polls for a control packet in an OO space. Drives
// progress (dead peers surface as typed errors).
func (c *Comm) PollCtrlOO(source int, sp OOSpace, tag int) (bool, error) {
	if err := c.checkDest(source); err != nil {
		return false, err
	}
	if err := c.checkOOTag(sp, tag); err != nil {
		return false, err
	}
	return c.dev.PollCtrl(c.ranks[source], OOWireTag(sp, tag), c.ctx)
}

// NextOOSeq returns the next OO collective sequence number: OScatter
// and OGather stream parts point-to-point under OOSpaceColl, and — as
// with buffered collectives — every rank calls this in lockstep so
// back-to-back OO collectives never cross-match.
func (c *Comm) NextOOSeq() int {
	return int(atomic.AddUint32(&c.ooSeq, 1)-1) % (MaxUserTag + 1)
}

// EagerMax exposes the device's eager/rendezvous threshold; the OO
// transport sizes broadcast chunks under it so a broadcast never
// stalls on a rendezvous with a failed rank.
func (c *Comm) EagerMax() int { return c.dev.EagerMax() }
