package mp

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

// Collective algorithm selection. Each collective picks an algorithm
// per call from the message size and communicator size — the KaMPIng
// observation that bindings can select near-optimally with no
// per-call overhead — and records the choice in CollStats. The
// selection can be forced per operation for benchmarking, either
// programmatically (SetCollAlgo) or process-wide through the
// MOTOR_COLL_ALGO environment variable, e.g.
//
//	MOTOR_COLL_ALGO=allreduce=ring,allgather=gatherbcast,bcast=binomial
//
// Crossover points (see docs/COLLECTIVES.md for the measurements):
// latency-bound algorithms below the thresholds, bandwidth-optimal
// pipelines above them.

// CollAlgo names a collective algorithm (see the algo* constants).
type CollAlgo uint8

// Collective algorithms. AlgoAuto lets the size-aware selector
// choose; the rest force one implementation.
const (
	AlgoAuto CollAlgo = iota
	// AlgoReduceBcast is the seed allreduce: binomial reduce to rank
	// 0 followed by a binomial broadcast.
	AlgoReduceBcast
	// AlgoRecDbl is recursive-doubling allreduce: log2(n) rounds of
	// pairwise exchange, latency-optimal for small payloads.
	AlgoRecDbl
	// AlgoRing is the pipelined ring: reduce-scatter + allgather for
	// allreduce, rotation for allgather; bandwidth-optimal
	// (2·bytes·(n-1)/n on every link, all links busy).
	AlgoRing
	// AlgoGatherBcast is the seed allgather: gather to rank 0, then
	// broadcast the assembled buffer.
	AlgoGatherBcast
	// AlgoBinomial is the binomial-tree broadcast with all child
	// sends in flight at once.
	AlgoBinomial
	// AlgoPipelined is the segmented binomial broadcast: the payload
	// is cut into segments that stream down the tree with a window of
	// segments in flight per edge.
	AlgoPipelined
)

// String names the algorithm as accepted by SetCollAlgo.
func (a CollAlgo) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoReduceBcast:
		return "reducebcast"
	case AlgoRecDbl:
		return "recdbl"
	case AlgoRing:
		return "ring"
	case AlgoGatherBcast:
		return "gatherbcast"
	case AlgoBinomial:
		return "binomial"
	case AlgoPipelined:
		return "pipelined"
	default:
		return fmt.Sprintf("algo(%d)", uint8(a))
	}
}

// collOp identifies the selectable collective operations.
type collOp uint8

const (
	opAllreduce collOp = iota
	opAllgather
	opBcast
	collOpCount
)

var collOpNames = [collOpCount]string{"allreduce", "allgather", "bcast"}

// Selection thresholds. Below the byte thresholds the latency-bound
// algorithm wins (fewer rounds); above them the pipelined /
// ring algorithms win (less data on the critical path).
const (
	// allreduceRingMin is the payload size from which ring allreduce
	// replaces recursive doubling.
	allreduceRingMin = 32 << 10
	// allgatherRingMin is the total (n·chunk) size from which ring
	// allgather replaces gather+bcast.
	allgatherRingMin = 16 << 10
	// bcastPipelineMin is the payload size from which the segmented
	// pipeline replaces the single-shot binomial tree.
	bcastPipelineMin = 64 << 10
	// bcastSegSize is the pipeline segment size.
	bcastSegSize = 16 << 10
	// collWindow bounds the segments in flight per edge (and the
	// posted-ahead receive window of the ring algorithms).
	collWindow = 4
	// ringMaxRanks bounds the ring algorithms' sub-tag space (one
	// sub-tag per step, two phases).
	ringMaxRanks = 2047
)

// CollStats counts collective-layer activity for one rank: which
// algorithm each call chose, the payload bytes this rank moved inside
// collectives, and the peak number of segment transfers in flight.
// Derived communicators (Dup/Split/Spawn-merge) share their parent's
// counters, so the struct aggregates per rank, not per communicator.
type CollStats struct {
	Ops uint64 // collective operations completed by this rank

	AllreduceReduceBcast uint64
	AllreduceRecDbl      uint64
	AllreduceRing        uint64
	AllgatherGatherBcast uint64
	AllgatherRing        uint64
	BcastBinomial        uint64
	BcastPipelined       uint64

	BytesMoved      uint64 // payload bytes sent by this rank in collectives
	MaxSegsInFlight uint64 // peak concurrent transfers inside one collective
}

// collConfig is the per-rank collective configuration: stats plus
// forced algorithm choices. One instance is shared by the world
// communicator and everything derived from it.
type collConfig struct {
	stats CollStats
	force [collOpCount]CollAlgo
}

func newCollConfig() *collConfig {
	cfg := &collConfig{}
	spec := envCollSpec()
	if spec != "" {
		// Environment misconfiguration must not poison a world that
		// never asked for overrides; parse errors fall back to auto.
		_ = cfg.apply(spec)
	}
	return cfg
}

// envCollSpec reads MOTOR_COLL_ALGO once per process.
var envCollSpec = sync.OnceValue(func() string {
	return os.Getenv("MOTOR_COLL_ALGO")
})

// apply parses an "op=algo[,op=algo]" spec into forced choices.
func (cfg *collConfig) apply(spec string) error {
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		op, algo, ok := strings.Cut(field, "=")
		if !ok {
			return fmt.Errorf("%w: coll algo spec %q (want op=algo)", errInvalid, field)
		}
		opIdx := collOpCount
		for i, name := range collOpNames {
			if name == strings.TrimSpace(op) {
				opIdx = collOp(i)
			}
		}
		if opIdx == collOpCount {
			return fmt.Errorf("%w: unknown collective %q", errInvalid, op)
		}
		a, err := parseAlgo(strings.TrimSpace(algo))
		if err != nil {
			return err
		}
		if !algoValidFor(opIdx, a) {
			return fmt.Errorf("%w: algorithm %q does not implement %s", errInvalid, algo, collOpNames[opIdx])
		}
		cfg.force[opIdx] = a
	}
	return nil
}

func parseAlgo(s string) (CollAlgo, error) {
	for a := AlgoAuto; a <= AlgoPipelined; a++ {
		if a.String() == s {
			return a, nil
		}
	}
	return AlgoAuto, fmt.Errorf("%w: unknown collective algorithm %q", errInvalid, s)
}

func algoValidFor(op collOp, a CollAlgo) bool {
	if a == AlgoAuto {
		return true
	}
	switch op {
	case opAllreduce:
		return a == AlgoReduceBcast || a == AlgoRecDbl || a == AlgoRing
	case opAllgather:
		return a == AlgoGatherBcast || a == AlgoRing
	case opBcast:
		return a == AlgoBinomial || a == AlgoPipelined
	}
	return false
}

// SetCollAlgo forces collective algorithm choices for this rank (the
// config is shared with every communicator derived from the same
// world). The spec format matches MOTOR_COLL_ALGO:
// "op=algo[,op=algo]" with ops allreduce|allgather|bcast and algos
// auto|reducebcast|recdbl|ring|gatherbcast|binomial|pipelined.
// Like the env knob, it must be applied identically on every rank.
func (c *Comm) SetCollAlgo(spec string) error { return c.coll.apply(spec) }

// CollStats returns a consistent snapshot of this rank's collective
// counters. Writers bump atomically, so this is safe while other
// goroutines (or the background progress engine) run collectives.
func (c *Comm) CollStats() CollStats {
	s := &c.coll.stats
	return CollStats{
		Ops:                  atomic.LoadUint64(&s.Ops),
		AllreduceReduceBcast: atomic.LoadUint64(&s.AllreduceReduceBcast),
		AllreduceRecDbl:      atomic.LoadUint64(&s.AllreduceRecDbl),
		AllreduceRing:        atomic.LoadUint64(&s.AllreduceRing),
		AllgatherGatherBcast: atomic.LoadUint64(&s.AllgatherGatherBcast),
		AllgatherRing:        atomic.LoadUint64(&s.AllgatherRing),
		BcastBinomial:        atomic.LoadUint64(&s.BcastBinomial),
		BcastPipelined:       atomic.LoadUint64(&s.BcastPipelined),
		BytesMoved:           atomic.LoadUint64(&s.BytesMoved),
		MaxSegsInFlight:      atomic.LoadUint64(&s.MaxSegsInFlight),
	}
}

// pickAllreduce selects the allreduce algorithm for a payload of the
// given size on n ranks.
func (c *Comm) pickAllreduce(bytes, n int) CollAlgo {
	if a := c.coll.force[opAllreduce]; a != AlgoAuto {
		if a == AlgoRing && n > ringMaxRanks {
			return AlgoRecDbl
		}
		return a
	}
	if bytes >= allreduceRingMin && n >= 3 && n <= ringMaxRanks {
		return AlgoRing
	}
	return AlgoRecDbl
}

// pickAllgather selects the allgather algorithm for per-rank chunks
// of the given size on n ranks.
func (c *Comm) pickAllgather(chunk, n int) CollAlgo {
	if a := c.coll.force[opAllgather]; a != AlgoAuto {
		if a == AlgoRing && n > ringMaxRanks {
			return AlgoGatherBcast
		}
		return a
	}
	if chunk*n >= allgatherRingMin && n >= 3 && n <= ringMaxRanks {
		return AlgoRing
	}
	return AlgoGatherBcast
}

// pickBcast selects the broadcast algorithm for a payload of the
// given size.
func (c *Comm) pickBcast(bytes, n int) CollAlgo {
	if a := c.coll.force[opBcast]; a != AlgoAuto {
		return a
	}
	if bytes >= bcastPipelineMin && n >= 2 {
		return AlgoPipelined
	}
	return AlgoBinomial
}

// noteSegs records a new peak of concurrent in-flight transfers.
func (cfg *collConfig) noteSegs(inFlight int) {
	n := uint64(inFlight)
	for {
		max := atomic.LoadUint64(&cfg.stats.MaxSegsInFlight)
		if n <= max || atomic.CompareAndSwapUint64(&cfg.stats.MaxSegsInFlight, max, n) {
			return
		}
	}
}
