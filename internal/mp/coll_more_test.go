package mp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

func TestSingleRankCollectives(t *testing.T) {
	// n=1 worlds: every collective degenerates to a local op.
	run(t, ChannelShm, 1, func(w *World) error {
		c := w.Comm
		if err := c.Barrier(); err != nil {
			return err
		}
		buf := []byte{1, 2, 3}
		if err := c.Bcast(buf, 0); err != nil {
			return err
		}
		recv := make([]byte, 3)
		if err := c.Scatter([]byte{4, 5, 6}, recv, 0); err != nil {
			return err
		}
		if !bytes.Equal(recv, []byte{4, 5, 6}) {
			return fmt.Errorf("scatter self %v", recv)
		}
		all := make([]byte, 3)
		if err := c.Gather(recv, all, 0); err != nil {
			return err
		}
		if !bytes.Equal(all, []byte{4, 5, 6}) {
			return fmt.Errorf("gather self %v", all)
		}
		send := make([]byte, 8)
		binary.LittleEndian.PutUint64(send, 42)
		out := make([]byte, 8)
		if err := c.Allreduce(send, out, TypeInt64, OpSum); err != nil {
			return err
		}
		if binary.LittleEndian.Uint64(out) != 42 {
			return errors.New("single-rank allreduce")
		}
		return nil
	})
}

func TestBcastNonPowerOfTwo(t *testing.T) {
	// Binomial trees must handle non-power-of-two worlds and every root.
	for _, n := range []int{3, 5, 6} {
		for root := 0; root < n; root++ {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				run(t, ChannelShm, n, func(w *World) error {
					buf := make([]byte, 300)
					if w.Comm.Rank() == root {
						for i := range buf {
							buf[i] = byte(i * (root + 3))
						}
					}
					if err := w.Comm.Bcast(buf, root); err != nil {
						return err
					}
					for i := range buf {
						if buf[i] != byte(i*(root+3)) {
							return fmt.Errorf("rank %d byte %d", w.Comm.Rank(), i)
						}
					}
					return nil
				})
			})
		}
	}
}

func TestReduceEveryRoot(t *testing.T) {
	const n = 5
	for root := 0; root < n; root++ {
		root := root
		t.Run(fmt.Sprintf("root=%d", root), func(t *testing.T) {
			run(t, ChannelShm, n, func(w *World) error {
				c := w.Comm
				send := make([]byte, 8)
				binary.LittleEndian.PutUint64(send, uint64(1<<c.Rank()))
				var recv []byte
				if c.Rank() == root {
					recv = make([]byte, 8)
				}
				if err := c.Reduce(send, recv, TypeInt64, OpSum, root); err != nil {
					return err
				}
				if c.Rank() == root {
					if got := binary.LittleEndian.Uint64(recv); got != (1<<n)-1 {
						return fmt.Errorf("sum %d", got)
					}
				}
				return nil
			})
		})
	}
}

func TestScattervEmptyParts(t *testing.T) {
	run(t, ChannelShm, 3, func(w *World) error {
		c := w.Comm
		var parts [][]byte
		if c.Rank() == 0 {
			parts = [][]byte{nil, []byte("x"), nil}
		}
		mine, err := c.Scatterv(parts, 0)
		if err != nil {
			return err
		}
		wantLen := []int{0, 1, 0}[c.Rank()]
		if len(mine) != wantLen {
			return fmt.Errorf("rank %d len %d", c.Rank(), len(mine))
		}
		back, err := c.Gatherv(mine, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if len(back[0]) != 0 || string(back[1]) != "x" || len(back[2]) != 0 {
				return fmt.Errorf("gatherv %q", back)
			}
		}
		return nil
	})
}

func TestSplitSingleColor(t *testing.T) {
	run(t, ChannelShm, 4, func(w *World) error {
		sub, err := w.Comm.Split(7, w.Comm.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 4 || sub.Rank() != w.Comm.Rank() {
			return fmt.Errorf("sub %d/%d", sub.Rank(), sub.Size())
		}
		return sub.Barrier()
	})
}

func TestSplitNegativeColorParticipates(t *testing.T) {
	run(t, ChannelShm, 3, func(w *World) error {
		color := 0
		if w.Comm.Rank() == 1 {
			color = -1
		}
		sub, err := w.Comm.Split(color, 0)
		if err != nil {
			return err
		}
		if w.Comm.Rank() == 1 {
			if sub != nil {
				return errors.New("negative color got a communicator")
			}
			return nil
		}
		if sub.Size() != 2 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		return sub.Barrier()
	})
}

func TestSpawnTwice(t *testing.T) {
	run(t, ChannelShm, 2, func(w *World) error {
		for round := 0; round < 2; round++ {
			merged, err := w.Spawn(1, func(child *World, mc *Comm) error {
				return mc.Send([]byte{byte(mc.Rank())}, 0, 3)
			})
			if err != nil {
				return err
			}
			if merged.Size() != 3 {
				return fmt.Errorf("round %d merged size %d", round, merged.Size())
			}
			if w.Comm.Rank() == 0 {
				buf := make([]byte, 1)
				st, err := merged.Recv(buf, AnySource, 3)
				if err != nil {
					return err
				}
				if st.Source != 2 || buf[0] != 2 {
					return fmt.Errorf("round %d child reported %d from %d", round, buf[0], st.Source)
				}
			}
			if err := w.Comm.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestSpawnOnSockWorldFails(t *testing.T) {
	run(t, ChannelSock, 2, func(w *World) error {
		_, err := w.Spawn(1, func(child *World, mc *Comm) error { return nil })
		if !errors.Is(err, ErrNoSpawn) {
			return fmt.Errorf("sock spawn: %v", err)
		}
		return nil
	})
}

func TestCollectivesOverSock(t *testing.T) {
	run(t, ChannelSock, 3, func(w *World) error {
		c := w.Comm
		if err := c.Barrier(); err != nil {
			return err
		}
		buf := make([]byte, 2000)
		if c.Rank() == 0 {
			for i := range buf {
				buf[i] = byte(i % 251)
			}
		}
		if err := c.Bcast(buf, 0); err != nil {
			return err
		}
		for i := range buf {
			if buf[i] != byte(i%251) {
				return fmt.Errorf("rank %d bcast byte %d", c.Rank(), i)
			}
		}
		send := make([]byte, 8)
		binary.LittleEndian.PutUint64(send, uint64(c.Rank()+1))
		recv := make([]byte, 8)
		if err := c.Allreduce(send, recv, TypeInt64, OpProd); err != nil {
			return err
		}
		if got := binary.LittleEndian.Uint64(recv); got != 6 {
			return fmt.Errorf("prod %d", got)
		}
		return nil
	})
}

func TestSelfSendThroughComm(t *testing.T) {
	run(t, ChannelShm, 2, func(w *World) error {
		c := w.Comm
		me := c.Rank()
		// Isend to self, then Irecv from self.
		req, err := c.Isend([]byte{byte(me + 40)}, me, 2)
		if err != nil {
			return err
		}
		buf := make([]byte, 1)
		rreq, err := c.Irecv(buf, me, 2)
		if err != nil {
			return err
		}
		if err := c.WaitAll(req, rreq); err != nil {
			return err
		}
		if buf[0] != byte(me+40) {
			return fmt.Errorf("self payload %d", buf[0])
		}
		return nil
	})
}

func TestWaitAllNilRequests(t *testing.T) {
	run(t, ChannelShm, 1, func(w *World) error {
		return w.Comm.WaitAll(nil, nil)
	})
}

func TestStatusSourceTranslation(t *testing.T) {
	// On a split communicator, Status.Source must be in the SUB
	// communicator's numbering.
	run(t, ChannelShm, 4, func(w *World) error {
		sub, err := w.Comm.Split(w.Comm.Rank()%2, 0)
		if err != nil {
			return err
		}
		if sub.Rank() == 0 {
			buf := make([]byte, 1)
			st, err := sub.Recv(buf, AnySource, 1)
			if err != nil {
				return err
			}
			if st.Source != 1 {
				return fmt.Errorf("source %d in sub-comm numbering, want 1", st.Source)
			}
			return nil
		}
		return sub.Send([]byte{9}, 0, 1)
	})
}

func TestAlltoall(t *testing.T) {
	const n = 4
	run(t, ChannelShm, n, func(w *World) error {
		c := w.Comm
		const chunk = 3
		send := make([]byte, n*chunk)
		for j := 0; j < n; j++ {
			for k := 0; k < chunk; k++ {
				send[j*chunk+k] = byte(10*c.Rank() + j)
			}
		}
		recv := make([]byte, n*chunk)
		if err := c.Alltoall(send, recv); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			for k := 0; k < chunk; k++ {
				if recv[i*chunk+k] != byte(10*i+c.Rank()) {
					return fmt.Errorf("rank %d recv[%d]=%d", c.Rank(), i*chunk+k, recv[i*chunk+k])
				}
			}
		}
		return nil
	})
}

func TestAlltoallErrors(t *testing.T) {
	run(t, ChannelShm, 2, func(w *World) error {
		if w.Comm.Rank() != 0 {
			return nil
		}
		if err := w.Comm.Alltoall(make([]byte, 3), make([]byte, 3)); err == nil {
			return errors.New("non-divisible alltoall accepted")
		}
		if err := w.Comm.Alltoall(make([]byte, 4), make([]byte, 2)); err == nil {
			return errors.New("mismatched alltoall accepted")
		}
		return nil
	})
}
