// Fixture: compliant lock ordering — no diagnostics.
package fixture

import "sync"

type engine struct {
	mu sync.Mutex //motorlint:lockorder 10 engine
}

type device struct {
	sync.Mutex //motorlint:lockorder 20 device
}

type endpoint struct {
	mu sync.Mutex //motorlint:lockorder 30 channel
}

// Ordered descends the hierarchy: engine → device → channel.
func Ordered(e *engine, d *device, c *endpoint) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	d.Unlock()
}

// Sequential releases before acquiring a lower rank: no nesting, no
// inversion.
func Sequential(d *device, e *engine) {
	d.Lock()
	d.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

// Untracked mutexes carry no annotation and are not judged.
type plain struct {
	mu sync.Mutex
}

func mixed(p *plain, d *device) {
	d.Lock()
	defer d.Unlock()
	p.mu.Lock()
	p.mu.Unlock()
}

// IgnoredInversion demonstrates the escape hatch for flows the
// linear scan misjudges.
func IgnoredInversion(e *engine, d *device) {
	d.Lock()
	defer d.Unlock()
	//lint:ignore motorlint/lockorder init-time only; no concurrent holders exist yet
	e.mu.Lock()
	e.mu.Unlock()
}

// --- GC mark pool (PR 10): deque(40) → resolver(50) ---

type markDeque struct {
	mu sync.Mutex //motorlint:lockorder 40 gcdeque
}

type condResolver struct {
	mu sync.Mutex //motorlint:lockorder 50 gcresolver
}

// PopThenResolve is the compliant worker loop shape: the deque lock
// is released before the popped object's cond pins are resolved.
func PopThenResolve(d *markDeque, r *condResolver) {
	d.mu.Lock()
	d.mu.Unlock()
	r.mu.Lock()
	r.mu.Unlock()
}

// PushUnderResolverAscends: deque work discovered while feeding the
// resolver ascends 40 → 50 only in release order; acquiring the
// resolver while holding a deque is ascending and legal.
func PushUnderResolverAscends(d *markDeque, r *condResolver) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r.mu.Lock()
	r.mu.Unlock()
}
