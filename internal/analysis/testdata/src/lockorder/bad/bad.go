// Fixture: lock hierarchy violations.
package fixture

import "sync"

type engine struct {
	mu sync.Mutex //motorlint:lockorder 10 engine
}

type device struct {
	sync.Mutex //motorlint:lockorder 20 device
}

type endpoint struct {
	mu sync.Mutex //motorlint:lockorder 30 channel
}

// CallbackRelock is a channel-layer callback re-entering the engine
// lock: the classic inversion the hierarchy forbids.
func CallbackRelock(e *engine, d *device) {
	d.Lock()
	defer d.Unlock()
	e.mu.Lock() // want "lock order inversion"
	e.mu.Unlock()
}

// DeepInversion climbs two ranks the wrong way.
func DeepInversion(e *engine, c *endpoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.mu.Lock() // want "lock order inversion"
	e.mu.Unlock()
}

// SelfDeadlock re-acquires a held, non-reentrant mutex.
func SelfDeadlock(c *endpoint) {
	c.mu.Lock()
	c.mu.Lock() // want "self-deadlocks"
	c.mu.Unlock()
	c.mu.Unlock()
}

type badAnn struct {
	//motorlint:lockorder ten engine
	mu sync.Mutex // want "malformed lockorder annotation"
}

func touch(b *badAnn) {
	b.mu.Lock()
	b.mu.Unlock()
}

// --- GC mark pool (PR 10): deque(40) → resolver(50) ---

type markDeque struct {
	mu sync.Mutex //motorlint:lockorder 40 gcdeque
}

type condResolver struct {
	mu sync.Mutex //motorlint:lockorder 50 gcresolver
}

// StealWhileHoldingOwn is the reduced work-stealing bug: a worker
// that keeps its own deque locked while raiding a victim's nests two
// rank-40 locks — two thieves stealing from each other deadlock. The
// analyzer judges by lock class, so same-rank nesting reports as a
// (potential) self-deadlock, which is exactly the cycle.
func StealWhileHoldingOwn(own, victim *markDeque) {
	own.mu.Lock()
	defer own.mu.Unlock()
	victim.mu.Lock() // want "acquired while already held"
	victim.mu.Unlock()
}

// ResolveThenPush inverts resolver → deque: injecting a freshly held
// cond-pin root while still inside the resolver's critical section.
func ResolveThenPush(r *condResolver, d *markDeque) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d.mu.Lock() // want "lock order inversion"
	d.mu.Unlock()
}
