// Fixture: lock hierarchy violations.
package fixture

import "sync"

type engine struct {
	mu sync.Mutex //motorlint:lockorder 10 engine
}

type device struct {
	sync.Mutex //motorlint:lockorder 20 device
}

type endpoint struct {
	mu sync.Mutex //motorlint:lockorder 30 channel
}

// CallbackRelock is a channel-layer callback re-entering the engine
// lock: the classic inversion the hierarchy forbids.
func CallbackRelock(e *engine, d *device) {
	d.Lock()
	defer d.Unlock()
	e.mu.Lock() // want "lock order inversion"
	e.mu.Unlock()
}

// DeepInversion climbs two ranks the wrong way.
func DeepInversion(e *engine, c *endpoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.mu.Lock() // want "lock order inversion"
	e.mu.Unlock()
}

// SelfDeadlock re-acquires a held, non-reentrant mutex.
func SelfDeadlock(c *endpoint) {
	c.mu.Lock()
	c.mu.Lock() // want "self-deadlocks"
	c.mu.Unlock()
	c.mu.Unlock()
}

type badAnn struct {
	//motorlint:lockorder ten engine
	mu sync.Mutex // want "malformed lockorder annotation"
}

func touch(b *badAnn) {
	b.mu.Lock()
	b.mu.Unlock()
}
