// Fixture: compliant atomic-field usage — no diagnostics.
package fixture

import "sync/atomic"

type counters struct {
	ops  uint64
	hits uint64
}

type engine struct {
	stats counters
}

func (e *engine) inc() {
	atomic.AddUint64(&e.stats.ops, 1)
}

// snapshot is the repo's race-safe copy idiom.
func (e *engine) snapshot() counters {
	return counters{
		ops:  atomic.LoadUint64(&e.stats.ops),
		hits: atomic.LoadUint64(&e.stats.hits),
	}
}

// Reading fields of a local struct value is reading a private copy,
// not shared memory.
func report(e *engine) uint64 {
	s := e.snapshot()
	return s.ops + s.hits
}

// bump is the engine's wrapper shape: the address escapes into a
// helper, which is out of scope ("escaped, not judged").
func bump(f *uint64) { atomic.AddUint64(f, 1) }

func (e *engine) inc2() {
	bump(&e.stats.hits)
}

// IgnoredPlain demonstrates the escape hatch on a Finish-phase
// diagnostic.
type local struct {
	n uint64
}

func atomicTouch(l *local) {
	atomic.AddUint64(&l.n, 1)
}

func plainTouch(l *local) uint64 {
	//lint:ignore motorlint/atomicfield l is goroutine-confined during construction
	return l.n
}
