// Fixture: atomic/plain mixing and 64-bit misalignment.
package fixture

import "sync/atomic"

type counters struct {
	pad uint32
	ops uint64 // want "offset 4"
}

type server struct {
	c counters
}

func (s *server) inc() {
	atomic.AddUint64(&s.c.ops, 1)
}

func (s *server) read() uint64 {
	return s.c.ops // want "read non-atomically"
}

func (s *server) reset() {
	s.c.ops = 0 // want "written non-atomically"
}

// The gc.scavenges shape: the reduced form of the vm builtin defect
// this analyzer caught (fixed in the same PR) — a shared GC counter
// read plain while collector threads atomically add to it.
type gcStats struct {
	scavenges uint64
}

type heapLike struct {
	stats gcStats
}

type vmLike struct {
	heap *heapLike
}

func collect(h *heapLike) {
	atomic.AddUint64(&h.stats.scavenges, 1)
}

func Scavenges(v *vmLike) uint64 {
	return v.heap.stats.scavenges // want "read non-atomically"
}
