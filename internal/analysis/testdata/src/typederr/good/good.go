// Fixture: compliant transport error handling — no diagnostics.
package fixture

import (
	"errors"
	"fmt"
)

// Package-level sentinels are the typed classes themselves.
var ErrTransport = errors.New("fixture: transport failure")
var errInvalid = errors.New("fixture: invalid argument")

func Wrapped(n int) error {
	if n < 1 {
		return fmt.Errorf("%w: world size %d", errInvalid, n)
	}
	return nil
}

func WrapCause(cause error) error {
	return fmt.Errorf("%w: handshake: %v", ErrTransport, cause)
}

func Sentinel() error {
	return ErrTransport
}

// Dynamic format strings cannot be proven raw; the analyzer is
// lenient rather than noisy.
func Dynamic(format string) error {
	return fmt.Errorf(format, 1)
}

func ChanSendWrapped(errc chan error) {
	errc <- fmt.Errorf("%w: peer lost", ErrTransport)
}

// IgnoredRaw demonstrates the escape hatch.
func IgnoredRaw() error {
	//lint:ignore motorlint/typederr diagnostic detail for logs only, never classified by waiters
	return errors.New("local detail")
}
