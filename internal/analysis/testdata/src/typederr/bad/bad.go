// Fixture: untyped errors escaping transport code.
package fixture

import (
	"errors"
	"fmt"
)

// SpawnCount is the reduced form of the mp.Spawn defect this analyzer
// caught (fixed in the same PR): a bare fmt.Errorf that errors.Is can
// never classify.
func SpawnCount(n int) error {
	if n < 1 {
		return fmt.Errorf("mp: spawn count %d", n) // want "raw fmt.Errorf without %w"
	}
	return nil
}

func Direct() error {
	return errors.New("boom") // want "raw errors.New"
}

func ViaLocal() error {
	err := fmt.Errorf("bad frame %d", 1) // want "built from a raw"
	return err
}

// ChanSend is the bootstrap fan-out shape: error channels are returns
// in disguise.
func ChanSend(errc chan error) {
	errc <- fmt.Errorf("bad mesh peer %d", 3) // want "sends a raw"
}
