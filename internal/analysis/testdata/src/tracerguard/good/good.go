// Fixture: compliant tracer emission — no diagnostics.
package fixture

import (
	"time"

	"motor/internal/obs"
)

// Guarded is the canonical event-site shape.
func Guarded(rank int) {
	tr := obs.Active()
	if tr != nil {
		tr.Begin(rank, obs.Kind(1))
		tr.End(rank)
	}
}

// InlineGuard uses the init-statement form.
func InlineGuard(rank int) {
	if tr := obs.Active(); tr != nil {
		tr.Instant(rank, obs.Kind(2))
	}
}

// EarlyOut uses the divergent early-return form.
func EarlyOut(rank int) {
	tr := obs.Active()
	if tr == nil {
		return
	}
	tr.Begin(rank, obs.Kind(1))
}

// Conjunct guards within one short-circuit expression.
func Conjunct() bool {
	tr := obs.Active()
	return tr != nil && tr.Flight()
}

// Constructed tracers cannot be nil.
func Constructed() {
	tr := obs.NewTracer(obs.Options{})
	tr.Begin(0, obs.Kind(1))
}

// GuardedClock hoists the clock read under the guard.
func GuardedClock(rank int) {
	if tr := obs.Active(); tr != nil {
		start := time.Now()
		tr.Record(obs.HistID(0), time.Since(start).Nanoseconds())
	}
}

// MixedUseClock feeds the clock into non-tracer state too, so the
// read is needed regardless of tracing; not flagged.
func MixedUseClock(rank int) int64 {
	start := time.Now()
	if tr := obs.Active(); tr != nil {
		tr.Record(obs.HistID(0), time.Since(start).Nanoseconds())
	}
	return time.Since(start).Nanoseconds()
}

// IgnoredCall demonstrates the escape hatch for interprocedural
// guarantees the analyzer cannot see.
func IgnoredCall(t *obs.Tracer) {
	//lint:ignore motorlint/tracerguard every caller passes the guarded non-nil tracer
	t.Begin(0, obs.Kind(1))
}
