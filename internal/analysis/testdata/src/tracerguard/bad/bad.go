// Fixture: unguarded tracer emission and gate misuse.
package fixture

import (
	"time"

	"motor/internal/obs"
)

// Unguarded dereferences the gate's result without a nil check: a
// crash the moment tracing is off.
func Unguarded(rank int) {
	tr := obs.Active()
	tr.Begin(rank, obs.Kind(1)) // want "not dominated by a nil check"
}

// Chained is the reduced form of the motor.go startup defect this
// analyzer caught (fixed in the same PR): chaining the gate into the
// emission double-loads and skips the nil check.
func Chained() bool {
	return obs.Active() != nil && !obs.Active().Flight() // want "chains the gate"
}

// WrongGuard checks a different expression than the receiver.
func WrongGuard(rank int) {
	tr := obs.Active()
	other := obs.Active()
	if other != nil {
		tr.Instant(rank, obs.Kind(2)) // want "not dominated by a nil check"
	}
}

// ClockOutsideGuard pays for a clock read even when tracing is off.
func ClockOutsideGuard(rank int) {
	start := time.Now() // want "clock read feeds only tracer emission"
	if tr := obs.Active(); tr != nil {
		tr.Record(obs.HistID(0), time.Since(start).Nanoseconds())
	}
}
