// Fixture: compliant entry points — no diagnostics expected.
package fixture

import "motor/internal/vm"

func use(obj vm.Ref)      {}
func helper(t *vm.Thread) {}

// GoodEntry follows the engine discipline: root first, then poll.
func GoodEntry(t *vm.Thread, obj vm.Ref) {
	defer t.PushFrame(&obj)()
	t.PollGC()
	defer t.PollGC()
	use(obj)
}

// GoodForward is the Send→sendCommon forwarder shape: the ref's only
// use is at the forwarding call itself, never after a safepoint.
func GoodForward(t *vm.Thread, obj vm.Ref) {
	GoodEntry(t, obj)
}

// GoodNoSafepoint never lets the thread escape and never polls, so
// the ref cannot go stale.
func GoodNoSafepoint(t *vm.Thread, obj vm.Ref) {
	use(obj)
	use(obj)
}

// GoodMulti roots every ref before the poll.
func GoodMulti(t *vm.Thread, src, dst vm.Ref) {
	defer t.PushFrame(&src, &dst)()
	t.PollGC()
	use(src)
	use(dst)
}

// IgnoredEntry demonstrates the escape hatch: the violation is
// suppressed by a reasoned directive and must NOT be reported.
func IgnoredEntry(t *vm.Thread, obj vm.Ref) {
	helper(t)
	//lint:ignore motorlint/rootbeforederef obj is device-pinned by the caller for the whole call
	use(obj)
}
