// Fixture: violations of the §5.3 root-before-safepoint rule.
package fixture

import "motor/internal/vm"

func use(obj vm.Ref)      {}
func helper(t *vm.Thread) {}
func double(obj vm.Ref)   {}

// BadBcast is the reduced form of the BcastOn defect this analyzer
// caught in internal/core/comm.go (fixed in the same PR): the entry
// poll runs while obj is still unrooted, and obj is used afterwards.
func BadBcast(t *vm.Thread, obj vm.Ref) {
	t.PollGC()
	defer t.PollGC()
	use(obj) // want "used after the first safepoint"
}

// BadLateRoot roots the ref, but only after the safepoint has already
// given a sibling collector the chance to move the object.
func BadLateRoot(t *vm.Thread, obj vm.Ref) {
	t.PollGC()
	defer t.PushFrame(&obj)() // want "rooted after the first safepoint"
	use(obj)
}

// BadPotential hands the thread to a callee (which may poll) before
// rooting; the later use sees a possibly-stale ref.
func BadPotential(t *vm.Thread, obj vm.Ref) {
	helper(t)
	use(obj) // want "used after the first call passing t"
}

// BadSecondRef roots one ref but forgets the other.
func BadSecondRef(t *vm.Thread, src, dst vm.Ref) {
	defer t.PushFrame(&src)()
	t.PollGC()
	use(src)
	double(dst) // want "\"dst\" is used after the first safepoint"
}
