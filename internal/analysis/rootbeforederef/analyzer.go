// Package rootbeforederef enforces the §5.3 safepoint/rooting
// discipline on engine entry points: an exported function that takes
// both a *vm.Thread and vm.Ref parameters must root every Ref (defer
// t.PushFrame(&ref)()) before the first GC safepoint — direct
// (t.PollGC, t.Park, t.CollectYoung/Full, vm.PollPoint) or potential
// (any call that is handed the thread and so may poll) — if the Ref
// is still live afterwards. PR 6 fixed ten entry points that derived
// heap buffers from unrooted Ref arguments before their entry poll;
// with several VM threads sharing a rank, a sibling's collection in
// that window moves the object and the stale Ref (or a buffer derived
// from it) corrupts the transfer. This analyzer makes that bug class
// unrepresentable.
package rootbeforederef

import (
	"go/ast"
	"go/token"
	"go/types"
	"math"
	"strings"

	"motor/internal/analysis/framework"
)

// Analyzer is the rootbeforederef pass.
var Analyzer = &framework.Analyzer{
	Name: "rootbeforederef",
	Doc: "exported entry points taking *vm.Thread and vm.Ref params must " +
		"root the refs with Thread.PushFrame before the first (potential) GC safepoint",
	Scope: func(path string) bool {
		// The vm package implements the rooting machinery itself.
		return !strings.HasSuffix(path, "internal/vm")
	},
	Run: run,
}

// direct safepoint methods on vm.Thread / vm.VM.
var safepointMethods = map[string]bool{
	"PollGC":       true,
	"Park":         true,
	"CollectYoung": true,
	"CollectFull":  true,
	"PollPoint":    true,
}

const inf = math.MaxInt64

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// paramObjs returns the objects of the function's parameters (and
// receiver) matching the predicate.
func paramObjs(pass *framework.Pass, fd *ast.FuncDecl, match func(types.Type) bool) []*types.Var {
	var out []*types.Var
	fields := []*ast.Field{}
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	fields = append(fields, fd.Type.Params.List...)
	for _, f := range fields {
		for _, name := range f.Names {
			obj, ok := pass.Info.Defs[name].(*types.Var)
			if ok && match(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	isThread := func(t types.Type) bool {
		_, isPtr := t.(*types.Pointer)
		return isPtr && framework.NamedFrom(t, "vm", "Thread")
	}
	isRef := func(t types.Type) bool {
		_, isPtr := t.(*types.Pointer)
		return !isPtr && framework.NamedFrom(t, "vm", "Ref")
	}
	threads := paramObjs(pass, fd, isThread)
	refs := paramObjs(pass, fd, isRef)
	if len(threads) == 0 || len(refs) == 0 {
		return
	}
	threadSet := map[*types.Var]bool{}
	for _, t := range threads {
		threadSet[t] = true
	}
	refSet := map[*types.Var]bool{}
	for _, r := range refs {
		refSet[r] = true
	}

	// Event collection, positions as int offsets of token.Pos.
	rootPos := map[*types.Var]int{} // earliest PushFrame rooting per ref
	rootNode := map[*types.Var]ast.Node{}
	firstBoundary := inf // end of first (potential) safepoint call
	var boundaryDesc string
	var boundaryLine int
	firstUseAfter := map[*types.Var]ast.Node{}

	// Pass 1: roots and safepoint boundaries.
	framework.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, _ := call.Fun.(*ast.SelectorExpr)
		if sel != nil {
			if recv, ok := sel.X.(*ast.Ident); ok {
				if obj, ok := pass.Info.Uses[recv].(*types.Var); ok && threadSet[obj] {
					if sel.Sel.Name == "PushFrame" {
						for _, arg := range call.Args {
							un, ok := arg.(*ast.UnaryExpr)
							if !ok || un.Op != token.AND {
								continue
							}
							id, ok := un.X.(*ast.Ident)
							if !ok {
								continue
							}
							if r, ok := pass.Info.Uses[id].(*types.Var); ok && refSet[r] {
								if p, seen := rootPos[r]; !seen || int(call.Pos()) < p {
									rootPos[r] = int(call.Pos())
									rootNode[r] = call
								}
							}
						}
						return true
					}
					if safepointMethods[sel.Sel.Name] && !inDefer(stack) {
						if int(call.End()) < firstBoundary {
							firstBoundary = int(call.End())
							boundaryDesc = "safepoint " + recv.Name + "." + sel.Sel.Name
							boundaryLine = pass.Position(call.Pos()).Line
						}
						return true
					}
				}
			}
		}
		// Potential safepoint: the thread escapes into another call
		// (which may poll). PushFrame itself was handled above.
		if !inDefer(stack) {
			for _, arg := range call.Args {
				id, ok := arg.(*ast.Ident)
				if !ok {
					continue
				}
				if obj, ok := pass.Info.Uses[id].(*types.Var); ok && threadSet[obj] {
					if int(call.End()) < firstBoundary {
						firstBoundary = int(call.End())
						boundaryDesc = "call passing " + id.Name + " (may poll)"
						boundaryLine = pass.Position(call.Pos()).Line
					}
				}
			}
		}
		return true
	})

	if firstBoundary == inf {
		return // no safepoint can occur: forwarding entry, nothing to enforce
	}

	// Pass 2: uses of ref params after the boundary. Deferred uses run
	// at function exit, after every safepoint.
	framework.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "PushFrame" {
				if recv, ok := sel.X.(*ast.Ident); ok {
					if obj, ok := pass.Info.Uses[recv].(*types.Var); ok && threadSet[obj] {
						return false // rooting call: its &ref args are not uses
					}
				}
			}
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		r, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || !refSet[r] {
			return true
		}
		pos := int(id.Pos())
		if inDefer(stack) {
			pos = inf - 1 // runs at exit
		}
		if pos > firstBoundary && firstUseAfter[r] == nil {
			firstUseAfter[r] = id
		}
		return true
	})

	for _, r := range refs {
		rp, rooted := rootPos[r]
		if rooted && rp <= firstBoundary {
			continue // discipline followed
		}
		if rooted {
			pass.Reportf(rootNode[r].Pos(),
				"vm.Ref parameter %q is rooted after the first %s (line %d); "+
					"move `defer %s.PushFrame(&%s)()` above it — an unrooted ref is stale once a sibling thread collects (§5.3, PR 6 bug class)",
				r.Name(), boundaryDesc, boundaryLine, threads[0].Name(), r.Name())
			continue
		}
		if use := firstUseAfter[r]; use != nil {
			pass.Reportf(use.Pos(),
				"vm.Ref parameter %q is used after the first %s (line %d) without being rooted; "+
					"add `defer %s.PushFrame(&%s)()` before the first safepoint (§5.3, PR 6 bug class)",
				r.Name(), boundaryDesc, boundaryLine, threads[0].Name(), r.Name())
		}
	}
}

// inDefer reports whether the ancestor stack passes through a defer
// statement (the node executes at function exit, or is the deferred
// expression itself).
func inDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}
