package rootbeforederef_test

import (
	"testing"

	"motor/internal/analysis/framework"
	"motor/internal/analysis/rootbeforederef"
)

func TestBadFixtures(t *testing.T) {
	framework.RunFixture(t, rootbeforederef.Analyzer, framework.FixtureDir(t, "rootbeforederef", "bad"))
}

func TestGoodFixtures(t *testing.T) {
	framework.RunFixture(t, rootbeforederef.Analyzer, framework.FixtureDir(t, "rootbeforederef", "good"))
}
