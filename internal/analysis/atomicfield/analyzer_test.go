package atomicfield_test

import (
	"testing"

	"motor/internal/analysis/atomicfield"
	"motor/internal/analysis/framework"
)

func TestBadFixtures(t *testing.T) {
	framework.RunFixture(t, atomicfield.Analyzer, framework.FixtureDir(t, "atomicfield", "bad"))
}

func TestGoodFixtures(t *testing.T) {
	framework.RunFixture(t, atomicfield.Analyzer, framework.FixtureDir(t, "atomicfield", "good"))
}
