// Package atomicfield enforces atomic-access hygiene on plain
// integer struct fields driven through sync/atomic: once any site
// touches a field with atomic.Load/Store/Add/Swap/CompareAndSwap,
// every direct read or write of that field anywhere in the program
// must also be atomic — a single plain access is a data race the
// moment two threads share the struct (the engine's Stats counters,
// the collective/progress stat blocks, and the coll sequence numbers
// all live this way). It also checks the 64-bit alignment rule:
// a field used with 64-bit atomics must sit at an 8-byte-aligned
// offset under 32-bit (GOARCH=386) struct layout, where Go only
// guarantees alignment for the first word of an allocation.
//
// Taking a field's address and passing it to a non-atomic function
// is not judged either way: accesses through escaped pointers are
// out of scope (the repo's bump() wrapper is such a case; the fields
// it touches are still marked atomic by the direct atomic.Load calls
// in the Snapshot methods).
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"motor/internal/analysis/framework"
)

// Analyzer is the atomicfield pass.
var Analyzer = &framework.Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed via sync/atomic anywhere must never be " +
		"read or written non-atomically, and 64-bit atomic fields must be " +
		"alignment-safe on 32-bit platforms",
	Run:    run,
	Finish: finish,
}

type atomicInfo struct {
	is64     bool
	example  token.Position // one atomic call site, for the message
	reported map[string]bool
}

type plainAccess struct {
	pos   token.Position
	write bool
}

type alignIssue struct {
	pos    token.Position
	field  string
	offset int64
	owner  string
}

func state(st *framework.State) (map[string]*atomicInfo, map[string][]plainAccess, map[string]*alignIssue) {
	a, _ := st.Get("atomic").(map[string]*atomicInfo)
	if a == nil {
		a = map[string]*atomicInfo{}
		st.Put("atomic", a)
	}
	p, _ := st.Get("plain").(map[string][]plainAccess)
	if p == nil {
		p = map[string][]plainAccess{}
		st.Put("plain", p)
	}
	al, _ := st.Get("align").(map[string]*alignIssue)
	if al == nil {
		al = map[string]*alignIssue{}
		st.Put("align", al)
	}
	return a, p, al
}

func run(pass *framework.Pass) error {
	atomics, plains, aligns := state(pass.State)

	// Selector nodes consumed by atomic calls (their &x.f argument):
	// neither a plain access nor to be revisited.
	atomicArgSels := map[*ast.SelectorExpr]bool{}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := atomicFunc(pass, call)
			if fn == "" || len(call.Args) == 0 {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := fieldOf(pass, sel)
			if field == nil {
				return true
			}
			atomicArgSels[sel] = true
			key := framework.FieldKey(field)
			info := atomics[key]
			if info == nil {
				info = &atomicInfo{example: pass.Position(call.Pos()), reported: map[string]bool{}}
				atomics[key] = info
			}
			is64 := strings.Contains(fn, "64")
			if is64 && !info.is64 {
				info.is64 = true
			}
			if is64 {
				checkAlignment(pass, field, key, call, aligns)
			}
			return true
		})
	}

	for _, file := range pass.Files {
		framework.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgSels[sel] {
				return true
			}
			field := fieldOf(pass, sel)
			if field == nil {
				return true
			}
			if !isBasicInt(field.Type()) {
				return true
			}
			// Address-taken: escapes, not judged (see package doc).
			if len(stack) > 0 {
				if un, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && un.Op == token.AND {
					return true
				}
			}
			// A read through a chain of value selections rooted at a
			// goroutine-local struct value is a snapshot copy (the
			// Stats()/Snapshot() idiom), not shared memory.
			if copyAccess(pass, sel) {
				return true
			}
			key := framework.FieldKey(field)
			plains[key] = append(plains[key], plainAccess{
				pos:   pass.Position(sel.Sel.Pos()),
				write: isWriteContext(sel, stack),
			})
			return true
		})
	}
	return nil
}

func finish(st *framework.State, report func(framework.Diagnostic)) {
	atomics, plains, aligns := state(st)
	for key, info := range atomics {
		for _, pa := range plains[key] {
			verb := "read"
			if pa.write {
				verb = "written"
			}
			report(framework.Diagnostic{
				Pos: pa.pos,
				Message: "field " + key + " is accessed with sync/atomic (e.g. " +
					info.example.String() + ") but " + verb + " non-atomically here; " +
					"use atomic.Load/Store or an ignore directive if provably unshared",
			})
		}
	}
	for key, ai := range aligns {
		report(framework.Diagnostic{
			Pos: ai.pos,
			Message: "64-bit atomic field " + key + " sits at offset " +
				strconv.FormatInt(ai.offset, 10) + " of " + ai.owner + " under 32-bit layout; " +
				"Go only guarantees 64-bit alignment for the first word of an " +
				"allocation — move the field to an 8-aligned offset",
		})
	}
}

// atomicFunc returns the sync/atomic function name called, or "".
func atomicFunc(pass *framework.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.Info.Uses[pkgID].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "sync/atomic" {
		return ""
	}
	return sel.Sel.Name
}

// fieldOf resolves sel to a struct field object, or nil.
func fieldOf(pass *framework.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return nil
	}
	return v
}

func isBasicInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// copyAccess reports whether sel reaches its field purely through
// value selections from a function-local struct value (a local
// variable, parameter, or call result): the access touches a private
// copy, so atomic discipline does not apply. Any pointer step in the
// chain, a package-level base, or an index step means the access may
// reach shared memory and is judged normally.
func copyAccess(pass *framework.Pass, sel *ast.SelectorExpr) bool {
	e := ast.Expr(sel)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			tv, ok := pass.Info.Types[x.X]
			if !ok {
				return false
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				return false // deref: shared
			}
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			obj, ok := pass.Info.Uses[x].(*types.Var)
			if !ok {
				return false
			}
			if obj.IsField() || obj.Parent() == pass.Pkg.Scope() {
				return false // field or package-level var: shared
			}
			_, isPtr := obj.Type().Underlying().(*types.Pointer)
			return !isPtr
		case *ast.CallExpr:
			return true // an rvalue copy
		default:
			return false
		}
	}
}

// isWriteContext reports whether sel is assigned or inc/dec'd.
func isWriteContext(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == sel {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == sel
	}
	return false
}

// checkAlignment flags 64-bit atomic fields misaligned under 386
// struct layout. Reported at the field declaration when its position
// is known (defining package in this load), else at the call site.
func checkAlignment(pass *framework.Pass, field *types.Var, key string, call *ast.CallExpr, aligns map[string]*alignIssue) {
	if _, done := aligns[key]; done {
		return
	}
	named := ownerNamed(field)
	if named == nil {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	fields := make([]*types.Var, st.NumFields())
	idx := -1
	for i := 0; i < st.NumFields(); i++ {
		fields[i] = st.Field(i)
		if st.Field(i) == field {
			idx = i
		}
	}
	if idx < 0 {
		return
	}
	sizes := types.SizesFor("gc", "386")
	offsets := sizes.Offsetsof(fields)
	if offsets[idx]%8 == 0 {
		return
	}
	pos := pass.Position(call.Pos())
	if field.Pos().IsValid() {
		if p := pass.Position(field.Pos()); p.Filename != "" {
			pos = p
		}
	}
	aligns[key] = &alignIssue{pos: pos, field: field.Name(), offset: offsets[idx], owner: named.Obj().Name()}
}

// ownerNamed finds the named struct type declaring field.
func ownerNamed(field *types.Var) *types.Named {
	if field.Pkg() == nil {
		return nil
	}
	scope := field.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return named
			}
		}
	}
	return nil
}
