package framework_test

import (
	"testing"

	"motor/internal/analysis/framework"
)

// TestLoadModulePackage smoke-tests the go-list/export-data loader:
// a real module package type-checks from source with full type info.
func TestLoadModulePackage(t *testing.T) {
	root, err := framework.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := framework.Load(root, "./internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Pkgs) != 1 {
		t.Fatalf("got %d target packages, want 1", len(prog.Pkgs))
	}
	pi := prog.Pkgs[0]
	if pi.Path != "motor/internal/obs" {
		t.Fatalf("path = %q", pi.Path)
	}
	if len(pi.Files) == 0 || pi.Pkg == nil || pi.Info == nil {
		t.Fatal("loader returned an incomplete package")
	}
	if len(pi.Info.Defs) == 0 || len(pi.Info.Selections) == 0 {
		t.Fatal("type info not populated")
	}
}

// TestLoadCrossPackage checks that a package importing other module
// packages resolves those imports through export data.
func TestLoadCrossPackage(t *testing.T) {
	root, err := framework.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := framework.Load(root, "./internal/mp/adi")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Pkgs) != 1 {
		t.Fatalf("got %d target packages, want 1", len(prog.Pkgs))
	}
	if prog.Pkgs[0].Pkg.Scope().Lookup("Device") == nil {
		t.Fatal("Device not found in adi scope")
	}
}
