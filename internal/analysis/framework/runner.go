package framework

import (
	"sort"
)

// Result is a full run's outcome.
type Result struct {
	Diagnostics []Diagnostic // all findings, suppressed included, sorted by position
	BadIgnores  []Diagnostic // //lint:ignore directives missing a reason
}

// Unsuppressed counts findings not covered by an ignore directive.
func (r *Result) Unsuppressed() int {
	n := 0
	for _, d := range r.Diagnostics {
		if !d.Suppressed {
			n++
		}
	}
	return n + len(r.BadIgnores)
}

// RunAnalyzers executes the suite over a loaded program: every
// analyzer's Run over every in-scope package (dependency order), then
// every Finish hook. Ignore directives are applied per package.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) (*Result, error) {
	res := &Result{}
	states := map[string]*State{}
	for _, a := range analyzers {
		states[a.Name] = &State{}
	}

	for _, pi := range prog.Pkgs {
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pi.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     prog.Fset,
				Files:    pi.Files,
				Pkg:      pi.Pkg,
				Info:     pi.Info,
				State:    states[a.Name],
				report:   collector(res, pi.Ignores),
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		for _, bad := range pi.Ignores.MissingReasons() {
			res.BadIgnores = append(res.BadIgnores, Diagnostic{
				Analyzer: "ignore-directive",
				Pos:      bad.Pos,
				File:     bad.Pos.Filename,
				Line:     bad.Pos.Line,
				Col:      bad.Pos.Column,
				Message:  "//lint:ignore directive is missing its mandatory reason",
			})
		}
	}

	// Finish hooks see the union of all packages' ignore indexes.
	all := IgnoreIndex{}
	for _, pi := range prog.Pkgs {
		for f, ds := range pi.Ignores {
			all[f] = append(all[f], ds...)
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		report := collector(res, all)
		a.Finish(states[a.Name], func(d Diagnostic) {
			d.Analyzer = a.Name
			report(d)
		})
	}

	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	return res, nil
}

// collector fills in the flattened position fields and applies the
// ignore index before appending to the result.
func collector(res *Result, ignores IgnoreIndex) func(Diagnostic) {
	return func(d Diagnostic) {
		d.File = d.Pos.Filename
		d.Line = d.Pos.Line
		d.Col = d.Pos.Column
		if dir, ok := ignores.Match(d.Analyzer, d.Pos); ok {
			d.Suppressed = true
			d.SuppressReason = dir.Reason
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
}
