package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
)

// PackageInfo is one loaded, type-checked target package.
type PackageInfo struct {
	Path    string
	Dir     string
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	Ignores IgnoreIndex
}

// Program is the loaded set of target packages, in dependency order
// (go list -deps emits dependencies before dependents).
type Program struct {
	Fset *token.FileSet
	Pkgs []*PackageInfo
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over patterns and
// decodes the package stream.
func goList(dir string, patterns ...string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", patterns, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ExportImporter resolves imports from compiler export data located
// via `go list -export`. Missing paths are resolved lazily with one
// extra go list invocation, so the fixture runner can type-check
// testdata packages that import arbitrary std or module packages.
type ExportImporter struct {
	Dir  string // module directory go list runs in
	Fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.ImporterFrom
}

// NewExportImporter returns an importer rooted at the module in dir.
func NewExportImporter(dir string, fset *token.FileSet) *ExportImporter {
	e := &ExportImporter{Dir: dir, Fset: fset, exports: map[string]string{}}
	e.imp = importer.ForCompiler(fset, "gc", e.lookup).(types.ImporterFrom)
	return e
}

func (e *ExportImporter) lookup(path string) (io.ReadCloser, error) {
	e.mu.Lock()
	file, ok := e.exports[path]
	e.mu.Unlock()
	if !ok {
		// Lazy resolution: list the path (and its deps, which the
		// importer will ask for next) in one shot.
		pkgs, err := goList(e.Dir, path)
		if err != nil {
			return nil, fmt.Errorf("resolving import %q: %v", path, err)
		}
		e.Add(pkgs)
		e.mu.Lock()
		file, ok = e.exports[path]
		e.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(file)
}

// Add records export files from a go list result.
func (e *ExportImporter) Add(pkgs []*listedPkg) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			e.exports[p.ImportPath] = p.Export
		}
	}
}

// Import implements types.Importer.
func (e *ExportImporter) Import(path string) (*types.Package, error) {
	return e.imp.ImportFrom(path, e.Dir, 0)
}

// newInfo allocates a fully-populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Sizes matching the gc toolchain on the host architecture.
func hostSizes() types.Sizes { return types.SizesFor("gc", runtime.GOARCH) }

// Load lists patterns in moduleDir and type-checks every non-dep
// target package from source, resolving imports through export data.
// Test files are not analyzed.
func Load(moduleDir string, patterns ...string) (*Program, error) {
	pkgs, err := goList(moduleDir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewExportImporter(moduleDir, fset)
	imp.Add(pkgs)
	prog := &Program{Fset: fset}
	for _, lp := range pkgs {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		pi, err := checkPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pi)
	}
	return prog, nil
}

// checkPackage parses and type-checks one listed package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, lp *listedPkg) (*PackageInfo, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp, Sizes: hostSizes()}
	pkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &PackageInfo{
		Path:    lp.ImportPath,
		Dir:     lp.Dir,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
		Ignores: BuildIgnoreIndex(fset, files),
	}, nil
}

// CheckFiles type-checks an ad-hoc file set (fixtures, vet units) as
// a single package under the given import path.
func CheckFiles(fset *token.FileSet, imp types.Importer, importPath string, filenames []string, srcs map[string][]byte) (*PackageInfo, error) {
	var files []*ast.File
	for _, path := range filenames {
		var src any
		if srcs != nil {
			if b, ok := srcs[path]; ok {
				src = b
			}
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp, Sizes: hostSizes()}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &PackageInfo{
		Path:    importPath,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
		Ignores: BuildIgnoreIndex(fset, files),
	}, nil
}

// ModuleRoot walks up from dir to the nearest go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}
