// Package framework is a self-contained static-analysis harness in
// the spirit of golang.org/x/tools/go/analysis, built only on the
// standard library so the repo stays dependency-free. It loads
// packages through `go list -export` (type-checking target sources
// against the toolchain's export data), runs a suite of Analyzers
// over them, honors //lint:ignore suppression directives, and backs
// the analysistest-style fixture runner in testkit.go.
//
// The motorlint analyzers (internal/analysis/...) mechanize the
// hand-maintained disciplines the Go compiler cannot see: the §5.3
// safepoint/rooting rule, the typed-transport-error rule, atomic
// field hygiene, the disabled-path tracing budget, and lock
// ordering. docs/ANALYSIS.md documents each invariant.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant checker. Run is invoked once per
// loaded package (in dependency order); Finish, when non-nil, is
// invoked once after every package has run, for whole-program checks
// that need facts gathered across packages (see State).
type Analyzer struct {
	// Name is the analyzer's identifier, as used in ignore
	// directives: //lint:ignore motorlint/<Name> reason
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Scope, when non-nil, restricts which import paths the analyzer
	// runs over. The fixture runner bypasses Scope so testdata
	// packages exercise analyzers regardless of their import path.
	Scope func(pkgPath string) bool

	// Run analyzes a single package.
	Run func(*Pass) error

	// Finish, when non-nil, runs after all packages. It reports
	// whole-program diagnostics from facts the Run phase stashed in
	// the shared State.
	Finish func(st *State, report func(Diagnostic))
}

// Pass carries one package's worth of material to an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// State is the analyzer's cross-package scratch space, shared
	// between Run invocations and the Finish hook.
	State *State

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves a token.Pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// Diagnostic is one finding. Suppressed findings (an ignore directive
// covers the position) are retained so -json output can show them,
// but they do not fail the run.
type Diagnostic struct {
	Analyzer       string         `json:"analyzer"`
	Pos            token.Position `json:"-"`
	File           string         `json:"file"`
	Line           int            `json:"line"`
	Col            int            `json:"col"`
	Message        string         `json:"message"`
	Suppressed     bool           `json:"suppressed,omitempty"`
	SuppressReason string         `json:"suppressReason,omitempty"`
}

// String renders the go-vet style file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// State is a per-analyzer key/value store surviving across packages
// within one run. The runner is single-goroutine, so no locking.
type State struct{ m map[string]any }

// Get returns the value stored under key, or nil.
func (s *State) Get(key string) any { return s.m[key] }

// Put stores val under key.
func (s *State) Put(key string, val any) {
	if s.m == nil {
		s.m = map[string]any{}
	}
	s.m[key] = val
}

// FieldKey names a struct field in a package-qualified, instance-
// independent way ("motor/internal/core.Stats.Ops"), so facts about
// a field recorded while source-checking its defining package can be
// matched against uses seen through export data.
func FieldKey(field *types.Var) string {
	named := fieldOwner(field)
	if named == nil {
		if field.Pkg() != nil {
			return field.Pkg().Path() + ".?." + field.Name()
		}
		return "?." + field.Name()
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
}

// fieldOwner locates the named struct type declaring field, if any.
func fieldOwner(field *types.Var) *types.Named {
	if field.Pkg() == nil {
		return nil
	}
	scope := field.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return named
			}
		}
	}
	return nil
}
