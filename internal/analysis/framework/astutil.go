package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WalkStack traverses root depth-first, invoking fn with each node
// and its ancestor stack (outermost first, not including n). If fn
// returns false the subtree is skipped.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false // pruned: Inspect sends no matching nil pop
		}
		stack = append(stack, n)
		return true
	})
}

// NilGuarded reports whether node (a use of the expression rendered
// as exprStr) is dominated by a nil check of that expression:
//
//   - an enclosing `if exprStr != nil { ... }` (the use in the then
//     branch), possibly as one && conjunct, including the
//     `if x := f(); x != nil` form;
//   - an enclosing `if exprStr == nil { ... } else { use }`;
//   - a preceding `if exprStr == nil { return/break/continue/panic }`
//     early-out in an enclosing block.
//
// stack is the ancestor stack from WalkStack (outermost first).
func NilGuarded(exprStr string, node ast.Node, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		inner := node
		if i+1 < len(stack) {
			inner = stack[i+1]
		}
		switch s := stack[i].(type) {
		case *ast.BinaryExpr:
			// Short-circuit guard inside one expression:
			// `x != nil && x.M()` / `x == nil || x.M()`.
			if s.Y == inner {
				if s.Op == token.LAND && condHasNotNil(s.X, exprStr) {
					return true
				}
				if s.Op == token.LOR && condHasIsNil(s.X, exprStr) {
					return true
				}
			}
		case *ast.IfStmt:
			if s.Body == inner && condHasNotNil(s.Cond, exprStr) {
				return true
			}
			if s.Else == inner && condHasIsNil(s.Cond, exprStr) {
				return true
			}
		case *ast.BlockStmt:
			// Early-out guard in the same block, before inner.
			for _, st := range s.List {
				if st == inner {
					break
				}
				ifs, ok := st.(*ast.IfStmt)
				if !ok || !condHasIsNil(ifs.Cond, exprStr) {
					continue
				}
				if diverges(ifs.Body) {
					return true
				}
			}
		case *ast.FuncLit:
			// A closure boundary: guards outside the closure body do
			// dominate the call at run time only if the closure runs
			// under them; deferred closures typically re-check. Stop
			// the early-out scan but keep climbing for enclosing ifs.
			continue
		}
	}
	return false
}

// condHasNotNil reports whether cond contains `exprStr != nil` as the
// condition itself or as an && conjunct.
func condHasNotNil(cond ast.Expr, exprStr string) bool {
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "!=":
			return isNilCompare(c, exprStr)
		case "&&":
			return condHasNotNil(c.X, exprStr) || condHasNotNil(c.Y, exprStr)
		}
	case *ast.ParenExpr:
		return condHasNotNil(c.X, exprStr)
	}
	return false
}

// condHasIsNil reports whether cond contains `exprStr == nil` as the
// condition itself or as an || disjunct.
func condHasIsNil(cond ast.Expr, exprStr string) bool {
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "==":
			return isNilCompare(c, exprStr)
		case "||":
			return condHasIsNil(c.X, exprStr) || condHasIsNil(c.Y, exprStr)
		}
	case *ast.ParenExpr:
		return condHasIsNil(c.X, exprStr)
	}
	return false
}

func isNilCompare(b *ast.BinaryExpr, exprStr string) bool {
	x, y := types.ExprString(b.X), types.ExprString(b.Y)
	return (x == exprStr && y == "nil") || (y == exprStr && x == "nil")
}

// diverges reports whether a block always leaves the enclosing scope:
// its last statement is return, break, continue, goto, or a call to
// panic.
func diverges(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// NamedFrom reports whether t (after pointer indirection) is a named
// type with the given type name whose package's base name matches
// pkgBase. Matching on the package base name ("vm", "obs") rather
// than the full path lets fixtures exercise analyzers against either
// the real packages or reduced stand-ins.
func NamedFrom(t types.Type, pkgBase, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Name() == pkgBase
}
