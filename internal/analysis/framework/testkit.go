package framework

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// Fixture runner: an analysistest-style harness. A fixture directory
// under internal/analysis/testdata/src/<analyzer>/<case>/ holds one
// package of .go files. Lines expecting a diagnostic carry trailing
// comments of the form
//
//	code() // want "regexp" "second regexp"
//
// with one quoted regexp per expected diagnostic on that line.
// Fixtures may import std and motor/... packages; imports resolve
// through the toolchain's export data, so fixtures exercise analyzers
// against the real vm.Ref / vm.Thread / obs.Tracer types.

var (
	fixOnce sync.Once
	fixFset *token.FileSet
	fixImp  *ExportImporter
	fixErr  error
)

func fixtureWorld(t *testing.T) (*token.FileSet, *ExportImporter) {
	t.Helper()
	fixOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			fixErr = err
			return
		}
		root, err := ModuleRoot(wd)
		if err != nil {
			fixErr = err
			return
		}
		fixFset = token.NewFileSet()
		fixImp = NewExportImporter(root, fixFset)
	})
	if fixErr != nil {
		t.Fatalf("fixture world: %v", fixErr)
	}
	return fixFset, fixImp
}

// RunFixture type-checks the fixture package in dir and runs a single
// analyzer over it (Scope is bypassed; Finish runs with only this
// package's facts). Diagnostics must match the // want expectations.
func RunFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	fset, imp := fixtureWorld(t)

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("fixture dir %s has no .go files", dir)
	}
	sort.Strings(files)

	pi, err := CheckFiles(fset, imp, "fixture/"+filepath.Base(dir), files, nil)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}

	res := &Result{}
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    pi.Files,
		Pkg:      pi.Pkg,
		Info:     pi.Info,
		State:    &State{},
		report:   collector(res, pi.Ignores),
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("fixture %s: analyzer: %v", dir, err)
	}
	if a.Finish != nil {
		report := collector(res, pi.Ignores)
		a.Finish(pass.State, func(d Diagnostic) {
			d.Analyzer = a.Name
			report(d)
		})
	}

	wants := collectWants(t, fset, pi.Files)
	checkExpectations(t, dir, res, wants)
}

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted strings.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: malformed want clause at %q", pos, s)
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			t.Fatalf("%s: unterminated want string", pos)
		}
		q, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want string %s: %v", pos, s[:end+1], err)
		}
		out = append(out, q)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

func checkExpectations(t *testing.T, dir string, res *Result, wants []*want) {
	t.Helper()
	for _, d := range res.Diagnostics {
		if d.Suppressed {
			continue // fixtures verify the escape hatch by NOT wanting these
		}
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.File || w.line != d.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", dir, d.String())
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", dir, w.file, w.line, w.raw)
		}
	}
	for _, b := range res.BadIgnores {
		t.Errorf("%s: %s", dir, b.String())
	}
}

// FixtureDir resolves internal/analysis/testdata/src/<parts...> from
// the calling test's working directory.
func FixtureDir(t *testing.T, parts ...string) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(append([]string{root, "internal", "analysis", "testdata", "src"}, parts...)...)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("fixture %s: %v", p, err)
	}
	return p
}
