package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// Ignore directives.
//
// A finding is suppressed by a comment of the form
//
//	//lint:ignore motorlint/<analyzer> reason text
//
// placed either on the same line as the flagged code (trailing
// comment) or on the line immediately above it. Several analyzers can
// be named, comma-separated. The reason is mandatory: a directive
// without one is itself reported by the driver, so every suppression
// in the tree documents why the invariant does not apply.

// IgnoreDirective is one parsed //lint:ignore comment.
type IgnoreDirective struct {
	Line      int      // line the comment sits on
	Analyzers []string // analyzer names (without the motorlint/ prefix)
	Reason    string
	Pos       token.Position
}

// IgnoreIndex maps file name -> directives in that file.
type IgnoreIndex map[string][]IgnoreDirective

// BuildIgnoreIndex scans all comments for ignore directives.
func BuildIgnoreIndex(fset *token.FileSet, files []*ast.File) IgnoreIndex {
	idx := IgnoreIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d.Line = pos.Line
				d.Pos = pos
				idx[pos.Filename] = append(idx[pos.Filename], d)
			}
		}
	}
	return idx
}

// parseIgnore parses "//lint:ignore motorlint/name[,name2] reason".
func parseIgnore(text string) (IgnoreDirective, bool) {
	const prefix = "//lint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return IgnoreDirective{}, false
	}
	rest := strings.TrimSpace(text[len(prefix):])
	fields := strings.SplitN(rest, " ", 2)
	var d IgnoreDirective
	for _, name := range strings.Split(fields[0], ",") {
		name = strings.TrimPrefix(strings.TrimSpace(name), "motorlint/")
		if name != "" {
			d.Analyzers = append(d.Analyzers, name)
		}
	}
	if len(fields) == 2 {
		d.Reason = strings.TrimSpace(fields[1])
	}
	if len(d.Analyzers) == 0 {
		return IgnoreDirective{}, false
	}
	return d, true
}

// Match reports whether a directive in the index suppresses a
// diagnostic from analyzer at pos: the directive must name the
// analyzer (or "all") and sit on the diagnostic's line or the line
// above it.
func (idx IgnoreIndex) Match(analyzer string, pos token.Position) (IgnoreDirective, bool) {
	for _, d := range idx[pos.Filename] {
		if d.Line != pos.Line && d.Line != pos.Line-1 {
			continue
		}
		for _, a := range d.Analyzers {
			if a == analyzer || a == "all" {
				return d, true
			}
		}
	}
	return IgnoreDirective{}, false
}

// MissingReasons returns directives lacking the mandatory reason.
func (idx IgnoreIndex) MissingReasons() []IgnoreDirective {
	var bad []IgnoreDirective
	for _, ds := range idx {
		for _, d := range ds {
			if d.Reason == "" {
				bad = append(bad, d)
			}
		}
	}
	return bad
}
