package lockorder_test

import (
	"testing"

	"motor/internal/analysis/framework"
	"motor/internal/analysis/lockorder"
)

func TestBadFixtures(t *testing.T) {
	framework.RunFixture(t, lockorder.Analyzer, framework.FixtureDir(t, "lockorder", "bad"))
}

func TestGoodFixtures(t *testing.T) {
	framework.RunFixture(t, lockorder.Analyzer, framework.FixtureDir(t, "lockorder", "good"))
}
