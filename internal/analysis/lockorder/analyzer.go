// Package lockorder enforces the repo's annotated lock hierarchy.
// Mutex-typed struct fields carry a rank annotation:
//
//	mu sync.Mutex //motorlint:lockorder 20 device
//
// and the rule is: while a lock of rank R is held, only locks of
// strictly greater rank may be acquired. The Motor hierarchy is
// engine (10) → device (20) → channel (30): engine-level code may
// call down into a device which may lock a channel endpoint, but a
// channel callback must never re-enter a device or engine lock, or
// two ranks' worth of cross-thread callers deadlock. Re-acquiring
// the same annotated lock while held is flagged as a self-deadlock
// (sync.Mutex is not reentrant).
//
// The check is a per-function, source-order scan: Lock/RLock on an
// annotated field (directly or through an embedded mutex) pushes it
// onto the held set, Unlock/RUnlock pops it, and a deferred unlock
// keeps the lock held to function exit — the dominant idiom here.
// Branch-sensitive flows the linear scan misjudges can use the
// //lint:ignore motorlint/lockorder escape hatch with a reason.
// Unannotated mutexes are not tracked.
package lockorder

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"motor/internal/analysis/framework"
)

// Analyzer is the lockorder pass.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "locks annotated //motorlint:lockorder <rank> <label> must be " +
		"acquired in strictly increasing rank order (engine→device→channel)",
	Run: run,
}

type lockClass struct {
	rank  int
	label string
}

// classes returns the cross-package annotation table (FieldKey →
// class). Packages run in dependency order, so by the time a package
// locks an imported mutex the defining package has been scanned.
func classes(st *framework.State) map[string]lockClass {
	m, _ := st.Get("lockorder.classes").(map[string]lockClass)
	if m == nil {
		m = map[string]lockClass{}
		st.Put("lockorder.classes", m)
	}
	return m
}

func run(pass *framework.Pass) error {
	table := classes(pass.State)
	collectAnnotations(pass, table)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, table)
		}
	}
	return nil
}

// collectAnnotations scans struct declarations for lockorder
// comments. Fields are resolved positionally against the checked
// struct type (one ast.Field covers len(Names) fields, or one
// embedded field), which handles embedded mutexes uniformly.
func collectAnnotations(pass *framework.Pass, table map[string]lockClass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stAst, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[stAst]
			if !ok {
				return true
			}
			stType, ok := tv.Type.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			idx := 0
			for _, f := range stAst.Fields.List {
				width := len(f.Names)
				if width == 0 {
					width = 1
				}
				rank, label, found, bad := parseAnnotation(f)
				if bad != "" {
					pass.Reportf(f.Pos(), "malformed lockorder annotation: %s "+
						"(want //motorlint:lockorder <rank> <label>)", bad)
				} else if found {
					for i := 0; i < width && idx+i < stType.NumFields(); i++ {
						table[framework.FieldKey(stType.Field(idx+i))] =
							lockClass{rank: rank, label: label}
					}
				}
				idx += width
			}
			return true
		})
	}
}

// parseAnnotation extracts a lockorder annotation from the field's
// doc or line comment. bad is non-empty for a malformed directive.
func parseAnnotation(f *ast.Field) (rank int, label string, found bool, bad string) {
	var groups []*ast.CommentGroup
	if f.Doc != nil {
		groups = append(groups, f.Doc)
	}
	if f.Comment != nil {
		groups = append(groups, f.Comment)
	}
	for _, g := range groups {
		for _, c := range g.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "motorlint:lockorder") {
				continue
			}
			parts := strings.Fields(strings.TrimPrefix(text, "motorlint:lockorder"))
			if len(parts) != 2 {
				return 0, "", false, "expected two operands, got " + strconv.Itoa(len(parts))
			}
			r, err := strconv.Atoi(parts[0])
			if err != nil {
				return 0, "", false, "rank " + strconv.Quote(parts[0]) + " is not an integer"
			}
			return r, parts[1], true, ""
		}
	}
	return 0, "", false, ""
}

type lockEvent struct {
	pos      int // source offset for ordering
	node     ast.Node
	acquire  bool
	deferred bool
	key      string
	class    lockClass
	spelled  string // how the receiver was written, for messages
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl, table map[string]lockClass) {
	var events []lockEvent
	framework.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var acquire bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
			acquire = true
		case "Unlock", "RUnlock":
			acquire = false
		default:
			return true
		}
		if !isSyncMethod(pass, sel) {
			return true
		}
		field := lockField(pass, sel, table)
		if field == "" {
			return true // unannotated mutex: not tracked
		}
		events = append(events, lockEvent{
			pos:      int(call.Pos()),
			node:     call,
			acquire:  acquire,
			deferred: inDefer(stack),
			key:      field,
			class:    table[field],
			spelled:  types.ExprString(sel.X),
		})
		return true
	})
	if len(events) == 0 {
		return
	}

	// Linear source-order simulation of the held set.
	type held struct {
		key     string
		class   lockClass
		spelled string
	}
	var heldSet []held
	for _, ev := range events {
		if !ev.acquire {
			if ev.deferred {
				continue // released at exit: stays held for the scan
			}
			for i := len(heldSet) - 1; i >= 0; i-- {
				if heldSet[i].key == ev.key {
					heldSet = append(heldSet[:i], heldSet[i+1:]...)
					break
				}
			}
			continue
		}
		for _, h := range heldSet {
			if h.key == ev.key {
				pass.Reportf(ev.node.Pos(),
					"%s (%s, rank %d) acquired while already held: sync mutexes are "+
						"not reentrant, this self-deadlocks",
					ev.spelled, ev.class.label, ev.class.rank)
				continue
			}
			if h.class.rank >= ev.class.rank {
				pass.Reportf(ev.node.Pos(),
					"lock order inversion: acquiring %s (%s, rank %d) while holding "+
						"%s (%s, rank %d); the hierarchy is engine(10)→device(20)→channel(30) "+
						"and ranks must strictly increase",
					ev.spelled, ev.class.label, ev.class.rank,
					h.spelled, h.class.label, h.class.rank)
			}
		}
		heldSet = append(heldSet, held{key: ev.key, class: ev.class, spelled: ev.spelled})
	}
}

// isSyncMethod reports whether sel selects a method of sync.Mutex or
// sync.RWMutex.
func isSyncMethod(pass *framework.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return framework.NamedFrom(recv.Type(), "sync", "Mutex") ||
		framework.NamedFrom(recv.Type(), "sync", "RWMutex")
}

// lockField resolves the annotated field behind sel (the receiver of
// a Lock/Unlock call): either the method is promoted from an embedded
// mutex (the selection's index path crosses the field), or sel.X is
// itself a field selection (x.mu.Lock()). The innermost annotated
// field's key is returned, or "".
func lockField(pass *framework.Pass, sel *ast.SelectorExpr, table map[string]lockClass) string {
	var chain []*types.Var
	if inner, ok := sel.X.(*ast.SelectorExpr); ok {
		if s, ok := pass.Info.Selections[inner]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				chain = append(chain, v)
			}
		}
	}
	if s, ok := pass.Info.Selections[sel]; ok {
		t := s.Recv()
		idx := s.Index()
		for _, i := range idx[:len(idx)-1] {
			st := structUnder(t)
			if st == nil || i >= st.NumFields() {
				break
			}
			f := st.Field(i)
			chain = append(chain, f)
			t = f.Type()
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		key := framework.FieldKey(chain[i])
		if _, ok := table[key]; ok {
			return key
		}
	}
	return ""
}

func structUnder(t types.Type) *types.Struct {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

func inDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}
