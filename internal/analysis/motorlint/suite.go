// Package motorlint assembles the Motor analyzer suite. The cmd
// driver, the vet tool, and the tests all consume this one registry
// so a new analyzer is wired everywhere by adding it here.
package motorlint

import (
	"motor/internal/analysis/atomicfield"
	"motor/internal/analysis/framework"
	"motor/internal/analysis/lockorder"
	"motor/internal/analysis/rootbeforederef"
	"motor/internal/analysis/tracerguard"
	"motor/internal/analysis/typederr"
)

// Suite returns the full analyzer set in stable order.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		atomicfield.Analyzer,
		lockorder.Analyzer,
		rootbeforederef.Analyzer,
		tracerguard.Analyzer,
		typederr.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *framework.Analyzer {
	for _, a := range Suite() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
