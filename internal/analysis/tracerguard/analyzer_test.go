package tracerguard_test

import (
	"testing"

	"motor/internal/analysis/framework"
	"motor/internal/analysis/tracerguard"
)

func TestBadFixtures(t *testing.T) {
	framework.RunFixture(t, tracerguard.Analyzer, framework.FixtureDir(t, "tracerguard", "bad"))
}

func TestGoodFixtures(t *testing.T) {
	framework.RunFixture(t, tracerguard.Analyzer, framework.FixtureDir(t, "tracerguard", "good"))
}
