// Package tracerguard enforces the disabled-path tracing budget
// (PR 3/PR 8): event emission on hot paths must go through the
// single-atomic-load gate — `tr := obs.Active(); if tr != nil {...}`
// (or an `if tr == nil { return }` early-out) — so that with tracing
// off an event site costs one predictable branch and nothing else.
//
// Checks, outside internal/obs (which implements the machinery):
//
//  1. Any method call on a *obs.Tracer value must be dominated by a
//     nil check of that exact expression. Tracer methods dereference
//     the receiver, so an unguarded call on the nil tracer that
//     Active() returns when tracing is off is a crash; a guard that
//     is not the one atomic load is a budget leak.
//  2. Chaining obs.Active().Method(...) is flagged outright: it both
//     double-loads and skips the nil check.
//  3. A time.Now()/time.Since() result consumed only by tracer
//     emission must itself sit under the guard: clock reads on the
//     disabled path are exactly the overhead the budget forbids.
package tracerguard

import (
	"go/ast"
	"go/types"
	"strings"

	"motor/internal/analysis/framework"
)

// Analyzer is the tracerguard pass.
var Analyzer = &framework.Analyzer{
	Name: "tracerguard",
	Doc: "obs.Tracer emission must be nil-guarded behind the one-atomic-load " +
		"obs.Active() gate; no clock reads on the disabled path",
	Scope: func(path string) bool {
		return !strings.Contains(path, "internal/obs") &&
			!strings.Contains(path, "internal/analysis")
	},
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func isTracer(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	if _, isPtr := tv.Type.(*types.Pointer); !isPtr {
		return false
	}
	return framework.NamedFrom(tv.Type, "obs", "Tracer")
}

// isActiveCall reports whether e is a call of obs.Active (the gate).
func isActiveCall(pass *framework.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Active" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Name() == "obs"
}

// isConstructorCall reports whether e is a call that provably returns
// a non-nil tracer (obs.New* / obs.NewTracer-style constructors).
func isConstructorCall(pass *framework.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "New") {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Name() == "obs"
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	// Tracer-typed locals that are provably non-nil (constructed, not
	// loaded from the gate).
	nonNil := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj, ok := pass.Info.Defs[id].(*types.Var)
			if !ok {
				continue
			}
			if isConstructorCall(pass, as.Rhs[i]) {
				nonNil[obj] = true
			}
		}
		return true
	})

	tracerExprs := map[string]bool{} // receiver spellings seen in emission
	var emissions []*ast.CallExpr

	framework.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isTracer(pass, sel.X) {
			return true
		}
		emissions = append(emissions, call)

		if isActiveCall(pass, sel.X) {
			pass.Reportf(call.Pos(),
				"obs.Active().%s(...) chains the gate into the emission: load once "+
					"(tr := obs.Active()), nil-check, and reuse — the disabled path must "+
					"cost one atomic load (PR 3 budget)", sel.Sel.Name)
			return true
		}
		exprStr := types.ExprString(sel.X)
		tracerExprs[exprStr] = true
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj, ok := pass.Info.Uses[id].(*types.Var); ok && nonNil[obj] {
				return true // constructed in this function: cannot be nil
			}
		}
		if !framework.NilGuarded(exprStr, call, stack) {
			pass.Reportf(call.Pos(),
				"%s.%s(...) is not dominated by a nil check of %q: obs.Active() "+
					"returns nil with tracing off, and emission must sit behind that "+
					"single-atomic-load guard (PR 3 budget)",
				exprStr, sel.Sel.Name, exprStr)
		}
		return true
	})

	if len(emissions) == 0 {
		return
	}
	checkClockReads(pass, fd, tracerExprs)
}

// checkClockReads flags time.Now()/time.Since() whose results feed
// only tracer emission but are read outside the guard.
func checkClockReads(pass *framework.Pass, fd *ast.FuncDecl, tracerExprs map[string]bool) {
	// clock-valued locals: var -> the time call that defined it.
	clockDef := map[*types.Var]*ast.CallExpr{}
	clockGuarded := map[*types.Var]bool{}
	framework.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj, ok := pass.Info.Defs[id].(*types.Var)
			if !ok {
				continue
			}
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok || !isTimeCall(pass, call) {
				continue
			}
			clockDef[obj] = call
			for expr := range tracerExprs {
				if framework.NilGuarded(expr, as, stack) {
					clockGuarded[obj] = true
				}
			}
		}
		return true
	})
	if len(clockDef) == 0 {
		return
	}

	// Uses: inside emission args vs anywhere else.
	emissionUse := map[*types.Var]bool{}
	otherUse := map[*types.Var]bool{}
	framework.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if _, isClock := clockDef[obj]; !isClock {
			return true
		}
		inEmission := false
		for _, anc := range stack {
			call, ok := anc.(*ast.CallExpr)
			if !ok {
				continue
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isTracer(pass, sel.X) {
				inEmission = true
				break
			}
		}
		if inEmission {
			emissionUse[obj] = true
		} else {
			otherUse[obj] = true
		}
		return true
	})

	for obj, call := range clockDef {
		if emissionUse[obj] && !otherUse[obj] && !clockGuarded[obj] {
			pass.Reportf(call.Pos(),
				"clock read feeds only tracer emission but runs outside the tracer "+
					"nil-guard: hoist it under the guard so the disabled path stays at "+
					"one atomic load (PR 3 budget)")
		}
	}
}

func isTimeCall(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name != "Now" && name != "Since" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "time"
}
