package typederr_test

import (
	"testing"

	"motor/internal/analysis/framework"
	"motor/internal/analysis/typederr"
)

func TestBadFixtures(t *testing.T) {
	framework.RunFixture(t, typederr.Analyzer, framework.FixtureDir(t, "typederr", "bad"))
}

func TestGoodFixtures(t *testing.T) {
	framework.RunFixture(t, typederr.Analyzer, framework.FixtureDir(t, "typederr", "good"))
}
