// Package typederr enforces the transport-layer typed-error rule
// (PR 1): errors crossing the internal/mp, internal/mp/adi, and
// internal/mp/channel boundaries must belong to a typed class —
// mp.ErrTransport, a package sentinel, or a %w-wrap of an underlying
// error — because waiters classify failures with errors.Is and an
// untyped error turns a dead peer into a hang. A raw errors.New or
// fmt.Errorf (no %w verb) returned from transport code is therefore
// a defect: it can never satisfy errors.Is(err, mp.ErrTransport) nor
// carry its cause.
//
// Allowed:
//   - package-level sentinel declarations (var ErrX = errors.New(...))
//   - fmt.Errorf with a %w verb (wraps a sentinel or a cause)
//
// Flagged:
//   - return of a direct errors.New(...) / fmt.Errorf without %w
//   - return of a local variable whose sole assignment is such a call
package typederr

import (
	"go/ast"
	"go/types"
	"strings"

	"motor/internal/analysis/framework"
)

// Analyzer is the typederr pass.
var Analyzer = &framework.Analyzer{
	Name: "typederr",
	Doc: "transport packages must return typed errors (sentinel-wrapping " +
		"fmt.Errorf with %w) so waiters can classify failures; raw " +
		"errors.New/fmt.Errorf escaping transport code hang waits (PR 1)",
	Scope: func(path string) bool {
		for _, suf := range []string{"internal/mp", "internal/mp/adi", "internal/mp/channel"} {
			if strings.HasSuffix(path, suf) {
				return true
			}
		}
		return false
	},
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// rawErrorCall reports whether call constructs an untyped error:
// errors.New(...), or fmt.Errorf with a literal format lacking %w.
// The diagnostic short name of the construct is returned.
func rawErrorCall(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := pass.Info.Uses[pkgID].(*types.PkgName)
	if !ok {
		return "", false
	}
	switch {
	case pkgName.Imported().Path() == "errors" && sel.Sel.Name == "New":
		return "errors.New", true
	case pkgName.Imported().Path() == "fmt" && sel.Sel.Name == "Errorf":
		if len(call.Args) == 0 {
			return "", false
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			// Dynamic format string: cannot prove a wrap; be lenient.
			return "", false
		}
		if strings.Contains(lit.Value, "%w") {
			return "", false
		}
		return "fmt.Errorf without %w", true
	}
	return "", false
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	// Map local variables whose sole assignment is a raw error call.
	rawLocal := map[*types.Var]*ast.CallExpr{}
	rawLocalKind := map[*types.Var]string{}
	poisoned := map[*types.Var]bool{} // reassigned from something else
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj, ok := pass.Info.Defs[id].(*types.Var)
			if !ok {
				obj, ok = pass.Info.Uses[id].(*types.Var)
				if !ok {
					continue
				}
			}
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
				if kind, raw := rawErrorCall(pass, call); raw {
					if _, seen := rawLocal[obj]; seen {
						poisoned[obj] = true
					}
					rawLocal[obj] = call
					rawLocalKind[obj] = kind
					continue
				}
			}
			poisoned[obj] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// Error values escaping through channels are returns in
		// disguise (bootstrap fan-out goroutines report this way).
		if send, ok := n.(*ast.SendStmt); ok {
			if call, ok := send.Value.(*ast.CallExpr); ok {
				if tv, ok := pass.Info.Types[send.Value]; ok && isErrorType(tv.Type) {
					if kind, raw := rawErrorCall(pass, call); raw {
						pass.Reportf(call.Pos(),
							"transport code sends a raw %s into an error channel: wrap a typed "+
								"sentinel with %%w so waiters can classify the failure (PR 1 rule)",
							kind)
					}
				}
			}
			return true
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if tv, ok := pass.Info.Types[res]; !ok || !isErrorType(tv.Type) {
				continue
			}
			switch e := res.(type) {
			case *ast.CallExpr:
				if kind, raw := rawErrorCall(pass, e); raw {
					pass.Reportf(e.Pos(),
						"transport code returns a raw %s: wrap a typed sentinel "+
							"(mp.ErrTransport, errInvalid, ...) with %%w so waiters can classify the failure (PR 1 rule)",
						kind)
				}
			case *ast.Ident:
				obj, ok := pass.Info.Uses[e].(*types.Var)
				if !ok || poisoned[obj] {
					continue
				}
				if call, raw := rawLocal[obj]; raw {
					pass.Reportf(call.Pos(),
						"transport code returns %q built from a raw %s: wrap a typed sentinel "+
							"with %%w so waiters can classify the failure (PR 1 rule)",
						obj.Name(), rawLocalKind[obj])
					// Report once per construction site.
					poisoned[obj] = true
				}
			}
		}
		return true
	})
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return t.String() == "error"
}
