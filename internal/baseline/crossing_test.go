package baseline_test

import (
	"errors"
	"fmt"
	"testing"

	"motor/internal/baseline/jni"
	"motor/internal/baseline/pinvoke"
	"motor/internal/mp"
	"motor/internal/vm"
)

// Direct unit tests of the wrapper crossing mechanics (the behaviour
// the Figure 9 gaps are attributed to).

func TestPInvokeCrossingAccounting(t *testing.T) {
	runPair(t, func(w *mp.World) error {
		v := newVM(fmt.Sprintf("r%d", w.Rank()))
		b := pinvoke.New(v, w, pinvoke.HostNET)
		th := v.StartThread("main")
		defer th.End()
		arr, _ := v.Heap.NewUint8Array(make([]byte, 16))
		if w.Rank() == 0 {
			if err := b.Send(th, arr, 1, 0); err != nil {
				return err
			}
		} else {
			if _, err := b.Recv(th, arr, 0, 0); err != nil {
				return err
			}
		}
		// One crossing: the CAS walk evaluated each demanded
		// permission on every frame of the call chain (3 frames × 2
		// demands), and every declared argument was marshalled.
		if b.Stats.Calls != 1 {
			return fmt.Errorf("calls %d", b.Stats.Calls)
		}
		if b.Stats.Demands != 6 {
			return fmt.Errorf("demand evaluations %d, want 6", b.Stats.Demands)
		}
		if b.Stats.MarshalledBytes == 0 {
			return fmt.Errorf("no marshalling recorded")
		}
		return nil
	})
}

func TestJNIBarrierAndStats(t *testing.T) {
	runPair(t, func(w *mp.World) error {
		v := newVM(fmt.Sprintf("r%d", w.Rank()))
		b := jni.New(v, w)
		th := v.StartThread("main")
		defer th.End()
		if err := b.Barrier(th); err != nil {
			return err
		}
		if b.Stats.Calls != 1 {
			return fmt.Errorf("calls %d", b.Stats.Calls)
		}
		// Barrier has no object arguments: no local references.
		if b.Stats.LocalRefs != 0 {
			return fmt.Errorf("local refs %d", b.Stats.LocalRefs)
		}
		return nil
	})
}

func TestJNIRejectsNullAndNonArray(t *testing.T) {
	runPair(t, func(w *mp.World) error {
		if w.Rank() != 0 {
			return nil
		}
		v := newVM("r0")
		b := jni.New(v, w)
		th := v.StartThread("main")
		defer th.End()
		if err := b.Send(th, vm.NullRef, 1, 0); !errors.Is(err, jni.ErrNotArray) {
			return fmt.Errorf("null send: %v", err)
		}
		mt := v.MustNewClass("Obj", nil, nil)
		obj, _ := v.Heap.AllocClass(mt)
		if err := b.Send(th, obj, 1, 0); !errors.Is(err, jni.ErrNotArray) {
			return fmt.Errorf("class send: %v", err)
		}
		return nil
	})
}

func TestWrapperPinBalanceUnderGC(t *testing.T) {
	// Per-op pinning must stay balanced even when collections run
	// between operations.
	runPair(t, func(w *mp.World) error {
		v := newVM(fmt.Sprintf("r%d", w.Rank()))
		b := pinvoke.New(v, w, pinvoke.HostSSCLI)
		th := v.StartThread("main")
		defer th.End()
		h := v.Heap
		for i := 0; i < 10; i++ {
			arr, err := h.NewUint8Array(make([]byte, 256))
			if err != nil {
				return err
			}
			if w.Rank() == 0 {
				if err := b.Send(th, arr, 1, i); err != nil {
					return err
				}
			} else {
				if _, err := b.Recv(th, arr, 0, i); err != nil {
					return err
				}
			}
			th.CollectYoung()
		}
		if h.Stats.Pins != h.Stats.Unpins {
			return fmt.Errorf("pin imbalance %d/%d", h.Stats.Pins, h.Stats.Unpins)
		}
		if err := h.CheckInvariants(); err != nil {
			return err
		}
		return nil
	})
}
