// Package jni implements a managed-wrapper MPI binding in the style
// of mpiJava over the Java Native Interface (paper §2.1, [5]): the
// Java line of Figure 9.
//
// Costs reproduced (each is real work):
//
//   - every call goes through the JNIEnv function-table indirection
//     and maintains the local-reference frame (a PushLocalFrame /
//     PopLocalFrame pair with one local reference per object
//     argument);
//   - array arguments use Get<PrimitiveType>ArrayElements /
//     Release...ArrayElements semantics: the array contents are
//     COPIED between the managed heap and a native staging buffer on
//     both sides of the call (the common JVM behaviour; the object
//     is briefly pinned only while the copy runs). The copy is what
//     puts the Java line above the Indiana lines at large buffers in
//     Figure 9;
//   - JNI "automatically pins and unpins objects" (paper §2.3) — the
//     managed application cannot influence or avoid it.
package jni

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"motor/internal/mp"
	"motor/internal/vm"
)

// ErrNotArray rejects non-array buffers.
var ErrNotArray = errors.New("jni: buffer must be a primitive array")

// Stats counts wrapper activity.
type Stats struct {
	Calls       uint64
	LocalRefs   uint64
	CopiedBytes uint64
}

// envFn is one slot of the JNIEnv function table.
type envFn func(b *Binding, args []uint64) error

// Binding is one rank's mpiJava-style wrapper.
type Binding struct {
	vm   *vm.VM
	comm *mp.Comm

	// fnTable is the JNIEnv function table; methodIDs maps a native
	// method name to its slot (resolved per call, as JNI method
	// lookup does).
	fnTable   []envFn
	methodIDs map[string]int

	// threadState models the JVM thread-state machine: every JNI
	// entry/exit performs a state transition the VM checks
	// atomically (in-Java <-> in-native), which safepoint machinery
	// observes.
	threadState int32

	// localRefs is the local-reference table of the current call
	// frame: JNI hands native code opaque jobject handles, allocated
	// and released per call.
	localRefs map[int32]vm.Ref
	nextRef   int32
	frameRefs []int32

	// staging is the reusable native buffer Get*ArrayElements copies
	// into.
	staging []byte

	Stats Stats
}

// New creates a binding for a VM + world pair.
func New(v *vm.VM, w *mp.World) *Binding {
	b := &Binding{
		vm:        v,
		comm:      w.Comm,
		methodIDs: make(map[string]int),
		localRefs: make(map[int32]vm.Ref),
	}
	names := []string{"MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv", "MPI_Wait", "MPI_Barrier", "MPI_Finalize"}
	for i, n := range names {
		b.methodIDs[n] = i
		b.fnTable = append(b.fnTable, func(b *Binding, args []uint64) error { return nil })
	}
	w.Dev.Yield = v.PollPoint
	return b
}

// Comm exposes the underlying communicator.
func (b *Binding) Comm() *mp.Comm { return b.comm }

// enter performs the JNI crossing: the Java->native thread-state
// transition, method-id resolution, the function-table indirection,
// and a local-reference frame allocating one jobject handle per
// object argument. The returned exit function releases the handles
// and transitions back — the full round trip every mpiJava call pays
// and the runtime-internal FCall path does not.
func (b *Binding) enter(name string, objs ...vm.Ref) (func(), error) {
	b.Stats.Calls++
	if !atomic.CompareAndSwapInt32(&b.threadState, stateInJava, stateInNative) {
		return nil, fmt.Errorf("jni: bad thread state entering %s", name)
	}
	id, ok := b.methodIDs[name]
	if !ok {
		atomic.StoreInt32(&b.threadState, stateInJava)
		return nil, fmt.Errorf("jni: UnsatisfiedLinkError: %s", name)
	}
	if err := b.fnTable[id](b, nil); err != nil {
		atomic.StoreInt32(&b.threadState, stateInJava)
		return nil, err
	}
	frame := b.frameRefs[:0]
	for _, o := range objs {
		if o != vm.NullRef {
			b.nextRef++
			b.localRefs[b.nextRef] = o
			frame = append(frame, b.nextRef)
			b.Stats.LocalRefs++
		}
	}
	b.frameRefs = frame
	return func() {
		for _, h := range b.frameRefs {
			delete(b.localRefs, h)
		}
		b.frameRefs = b.frameRefs[:0]
		atomic.StoreInt32(&b.threadState, stateInJava)
	}, nil
}

// JVM thread states for JNI transitions.
const (
	stateInJava int32 = iota
	stateInNative
)

// getArrayElements copies the managed array into the native staging
// buffer (pinning only for the duration of the copy), returning the
// staged bytes.
func (b *Binding) getArrayElements(obj vm.Ref) ([]byte, error) {
	h := b.vm.Heap
	mt := h.MT(obj)
	if !mt.IsSimpleArray() {
		return nil, fmt.Errorf("%w: %s", ErrNotArray, mt)
	}
	h.Pin(obj)
	src := h.DataBytes(obj)
	if cap(b.staging) < len(src) {
		b.staging = make([]byte, len(src))
	}
	dst := b.staging[:len(src)]
	copy(dst, src)
	h.Unpin(obj)
	b.Stats.CopiedBytes += uint64(len(src))
	return dst, nil
}

// releaseArrayElements copies the staged bytes back into the managed
// array (JNI_COMMIT semantics).
func (b *Binding) releaseArrayElements(obj vm.Ref, staged []byte) {
	h := b.vm.Heap
	h.Pin(obj)
	copy(h.DataBytes(obj), staged)
	h.Unpin(obj)
	b.Stats.CopiedBytes += uint64(len(staged))
}

// Send transports a primitive array (copy-out semantics).
func (b *Binding) Send(t *vm.Thread, obj vm.Ref, dest, tag int) error {
	if obj == vm.NullRef {
		return ErrNotArray
	}
	exit, err := b.enter("MPI_Send", obj)
	if err != nil {
		return err
	}
	defer exit()
	staged, err := b.getArrayElements(obj)
	if err != nil {
		return err
	}
	req, err := b.comm.Isend(staged, dest, tag)
	if err != nil {
		return err
	}
	return b.wait(t, req)
}

// Recv receives into a primitive array (copy-back semantics).
func (b *Binding) Recv(t *vm.Thread, obj vm.Ref, source, tag int) (mp.Status, error) {
	if obj == vm.NullRef {
		return mp.Status{}, ErrNotArray
	}
	// Root obj across the wait: waitStatus parks the thread, a sibling
	// rank's collection may move the array, and the copy-back below
	// must see the forwarded ref (§5.3).
	defer t.PushFrame(&obj)()
	exit, err := b.enter("MPI_Recv", obj)
	if err != nil {
		return mp.Status{}, err
	}
	defer exit()
	// Stage a native buffer of the array's size, receive into it,
	// then commit back into the managed array.
	h := b.vm.Heap
	mt := h.MT(obj)
	if !mt.IsSimpleArray() {
		return mp.Status{}, fmt.Errorf("%w: %s", ErrNotArray, mt)
	}
	size := h.DataSize(obj)
	if cap(b.staging) < size {
		b.staging = make([]byte, size)
	}
	staged := b.staging[:size]
	req, err := b.comm.Irecv(staged, source, tag)
	if err != nil {
		return mp.Status{}, err
	}
	st, err := b.waitStatus(t, req)
	if err != nil {
		return st, err
	}
	b.releaseArrayElements(obj, staged[:st.Count])
	return st, nil
}

func (b *Binding) wait(t *vm.Thread, req *mp.Request) error {
	_, err := b.waitStatus(t, req)
	return err
}

func (b *Binding) waitStatus(t *vm.Thread, req *mp.Request) (mp.Status, error) {
	for {
		done, st, err := b.comm.Test(req)
		if done {
			return st, err
		}
		t.PollGC()
		runtime.Gosched()
	}
}

// Barrier crosses for MPI_Barrier.
func (b *Binding) Barrier(t *vm.Thread) error {
	exit, err := b.enter("MPI_Barrier")
	if err != nil {
		return err
	}
	defer exit()
	return b.comm.Barrier()
}
