// Package baseline_test exercises the managed-wrapper bindings
// against each other and the native floor.
package baseline_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"motor/internal/baseline/jni"
	"motor/internal/baseline/native"
	"motor/internal/baseline/pinvoke"
	"motor/internal/mp"
	"motor/internal/vm"
)

func newVM(name string) *vm.VM {
	return vm.New(vm.Config{Name: name, Heap: vm.HeapConfig{YoungSize: 64 << 10, InitialElder: 512 << 10, ArenaMax: 64 << 20}})
}

func runPair(t *testing.T, body func(w *mp.World) error) {
	t.Helper()
	worlds, err := mp.NewLocalWorlds(mp.ChannelShm, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 2)
	for _, w := range worlds {
		go func(w *mp.World) {
			defer w.Close()
			errc <- body(w)
		}(w)
	}
	deadline := time.After(20 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("deadlock")
		}
	}
}

func TestPInvokePingPong(t *testing.T) {
	for _, host := range []pinvoke.Host{pinvoke.HostSSCLI, pinvoke.HostNET} {
		host := host
		t.Run(host.String(), func(t *testing.T) {
			runPair(t, func(w *mp.World) error {
				var heapCfg vm.HeapConfig
				if host == pinvoke.HostSSCLI {
					heapCfg = vm.HeapConfig{YoungSize: 64 << 10, InitialElder: 512 << 10, ArenaMax: 64 << 20, PinMode: vm.PinLinearList}
				} else {
					heapCfg = vm.HeapConfig{YoungSize: 64 << 10, InitialElder: 512 << 10, ArenaMax: 64 << 20}
				}
				v := vm.New(vm.Config{Name: fmt.Sprintf("r%d", w.Rank()), Heap: heapCfg})
				b := pinvoke.New(v, w, host)
				th := v.StartThread("main")
				defer th.End()
				h := v.Heap
				arr, err := h.NewUint8Array(make([]byte, 64))
				if err != nil {
					return err
				}
				for iter := 0; iter < 10; iter++ {
					if w.Rank() == 0 {
						h.DataBytes(arr)[0] = byte(iter)
						if err := b.Send(th, arr, 1, 0); err != nil {
							return err
						}
						if _, err := b.Recv(th, arr, 1, 0); err != nil {
							return err
						}
						if h.DataBytes(arr)[0] != byte(iter)+1 {
							return fmt.Errorf("iter %d: got %d", iter, h.DataBytes(arr)[0])
						}
					} else {
						if _, err := b.Recv(th, arr, 0, 0); err != nil {
							return err
						}
						h.DataBytes(arr)[0]++
						if err := b.Send(th, arr, 0, 0); err != nil {
							return err
						}
					}
				}
				// The wrapper pins for EVERY operation (20 ops).
				if b.Stats.Pins != 20 {
					return fmt.Errorf("pins %d, want 20", b.Stats.Pins)
				}
				if h.Stats.Pins != h.Stats.Unpins {
					return fmt.Errorf("pin imbalance %d/%d", h.Stats.Pins, h.Stats.Unpins)
				}
				if b.Stats.Calls != 20 {
					return fmt.Errorf("crossings %d", b.Stats.Calls)
				}
				return nil
			})
		})
	}
}

func TestPInvokeRejectsNonSimple(t *testing.T) {
	runPair(t, func(w *mp.World) error {
		if w.Rank() != 0 {
			return nil
		}
		v := newVM("r0")
		b := pinvoke.New(v, w, pinvoke.HostNET)
		th := v.StartThread("main")
		defer th.End()
		mt := v.MustNewClass("Holder", nil, []vm.FieldSpec{{Name: "r", Kind: vm.KindRef}})
		obj, _ := v.Heap.AllocClass(mt)
		if err := b.Send(th, obj, 1, 0); !errors.Is(err, pinvoke.ErrNotSimple) {
			return fmt.Errorf("non-array accepted: %v", err)
		}
		return nil
	})
}

func TestJNIPingPongCopies(t *testing.T) {
	runPair(t, func(w *mp.World) error {
		v := newVM(fmt.Sprintf("r%d", w.Rank()))
		b := jni.New(v, w)
		th := v.StartThread("main")
		defer th.End()
		h := v.Heap
		const size = 128
		arr, err := h.NewUint8Array(make([]byte, size))
		if err != nil {
			return err
		}
		const iters = 5
		for iter := 0; iter < iters; iter++ {
			if w.Rank() == 0 {
				h.DataBytes(arr)[3] = byte(iter * 3)
				if err := b.Send(th, arr, 1, 0); err != nil {
					return err
				}
				if _, err := b.Recv(th, arr, 1, 0); err != nil {
					return err
				}
				if h.DataBytes(arr)[3] != byte(iter*3)+1 {
					return fmt.Errorf("iter %d corrupted", iter)
				}
			} else {
				if _, err := b.Recv(th, arr, 0, 0); err != nil {
					return err
				}
				h.DataBytes(arr)[3]++
				if err := b.Send(th, arr, 0, 0); err != nil {
					return err
				}
			}
		}
		// Copy-in/copy-out semantics: every op staged the full array.
		if b.Stats.CopiedBytes != uint64(2*iters*size) {
			return fmt.Errorf("copied %d bytes, want %d", b.Stats.CopiedBytes, 2*iters*size)
		}
		if b.Stats.LocalRefs == 0 || b.Stats.Calls == 0 {
			return fmt.Errorf("JNI bookkeeping missing: %+v", b.Stats)
		}
		return nil
	})
}

func TestNativePingPong(t *testing.T) {
	runPair(t, func(w *mp.World) error {
		r := native.New(w)
		r.SetBuffer(32)
		for iter := 0; iter < 10; iter++ {
			if w.Rank() == 0 {
				r.Buffer()[0] = byte(iter)
				if err := r.Send(1, 0); err != nil {
					return err
				}
				if _, err := r.Recv(1, 0); err != nil {
					return err
				}
				if r.Buffer()[0] != byte(iter)+1 {
					return fmt.Errorf("iter %d", iter)
				}
			} else {
				if _, err := r.Recv(0, 0); err != nil {
					return err
				}
				r.Buffer()[0]++
				if err := r.Send(0, 0); err != nil {
					return err
				}
			}
		}
		return r.Barrier()
	})
}
