package cliser

import (
	"bytes"
	"math/rand"
	"testing"

	"motor/internal/vm"
)

func newVM() *vm.VM {
	return vm.New(vm.Config{Heap: vm.HeapConfig{YoungSize: 256 << 10, InitialElder: 2 << 20, ArenaMax: 256 << 20}})
}

func cellTypes(v *vm.VM) *vm.MethodTable {
	mt, err := v.DeclareClass("Cell")
	if err != nil {
		panic(err)
	}
	i32arr := v.ArrayType(vm.KindInt32, nil, 1)
	if err := v.CompleteClass(mt, nil, []vm.FieldSpec{
		{Name: "data", Kind: vm.KindRef, Type: i32arr},
		{Name: "next", Kind: vm.KindRef, Type: mt},
		{Name: "id", Kind: vm.KindInt32},
	}); err != nil {
		panic(err)
	}
	return mt
}

func buildChain(v *vm.VM, mt *vm.MethodTable, n, payload int) vm.Ref {
	h := v.Heap
	fData, fNext, fID := mt.FieldByName("data"), mt.FieldByName("next"), mt.FieldByName("id")
	guard := &vm.RefRoots{Refs: make([]vm.Ref, 2)}
	v.AddRootProvider(guard)
	defer v.RemoveRootProvider(guard)
	for i := n - 1; i >= 0; i-- {
		node, err := h.AllocClass(mt)
		if err != nil {
			panic(err)
		}
		guard.Refs[1] = node
		vals := make([]int32, payload)
		for j := range vals {
			vals[j] = int32(i + j)
		}
		arr, err := h.NewInt32Array(vals)
		if err != nil {
			panic(err)
		}
		node = guard.Refs[1]
		h.SetRef(node, fData, arr)
		h.SetScalar(node, fID, uint64(uint32(int32(i))))
		if guard.Refs[0] != vm.NullRef {
			h.SetRef(node, fNext, guard.Refs[0])
		}
		guard.Refs[0] = node
	}
	return guard.Refs[0]
}

func verifyChain(t *testing.T, v *vm.VM, mt *vm.MethodTable, head vm.Ref, n, payload int) {
	t.Helper()
	h := v.Heap
	count := 0
	for cur := head; cur != vm.NullRef; cur = h.GetRef(cur, mt.FieldByName("next")) {
		if got := int32(uint32(h.GetScalar(cur, mt.FieldByName("id")))); got != int32(count) {
			t.Fatalf("node %d id %d", count, got)
		}
		arr := h.GetRef(cur, mt.FieldByName("data"))
		if arr == vm.NullRef {
			t.Fatalf("node %d data missing (opt-out semantics)", count)
		}
		if h.Length(arr) != payload {
			t.Fatalf("node %d payload %d", count, h.Length(arr))
		}
		count++
	}
	if count != n {
		t.Fatalf("chain %d nodes, want %d", count, n)
	}
}

func TestCLIRoundtripBothProfiles(t *testing.T) {
	for _, profile := range []Profile{ProfileSSCLI, ProfileNET} {
		profile := profile
		t.Run(profile.String(), func(t *testing.T) {
			src := newVM()
			mt := cellTypes(src)
			head := buildChain(src, mt, 12, 3)
			data, err := Serialize(src.Heap, head, profile)
			if err != nil {
				t.Fatal(err)
			}
			dst := newVM()
			dmt := cellTypes(dst)
			out, err := Deserialize(dst, data)
			if err != nil {
				t.Fatal(err)
			}
			verifyChain(t, dst, dmt, out, 12, 3)
		})
	}
}

func TestProfilesProduceIdenticalStreams(t *testing.T) {
	// The profiles differ in COST, not in format.
	src := newVM()
	mt := cellTypes(src)
	head := buildChain(src, mt, 8, 2)
	a, err := Serialize(src.Heap, head, ProfileSSCLI)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Serialize(src.Heap, head, ProfileNET)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("profiles disagree on stream bytes")
	}
}

func TestCLILongChainNoOverflow(t *testing.T) {
	// BinaryFormatter traverses iteratively: the 8192-object point of
	// Figure 10 works where Java serialization has already died.
	src := newVM()
	mt := cellTypes(src)
	head := buildChain(src, mt, 5000, 1)
	data, err := Serialize(src.Heap, head, ProfileNET)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	dmt := cellTypes(dst)
	out, err := Deserialize(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	h := dst.Heap
	count := 0
	for cur := out; cur != vm.NullRef; cur = h.GetRef(cur, dmt.FieldByName("next")) {
		count++
	}
	if count != 5000 {
		t.Errorf("chain %d", count)
	}
}

func TestCLISharedAndCycle(t *testing.T) {
	src := newVM()
	mt := cellTypes(src)
	h := src.Heap
	guard := &vm.RefRoots{Refs: make([]vm.Ref, 3)}
	src.AddRootProvider(guard)
	a, _ := h.AllocClass(mt)
	guard.Refs[0] = a
	bb, _ := h.AllocClass(mt)
	guard.Refs[1] = bb
	shared, _ := h.NewInt32Array([]int32{1, 2})
	guard.Refs[2] = shared
	a, bb = guard.Refs[0], guard.Refs[1]
	h.SetRef(a, mt.FieldByName("next"), bb)
	h.SetRef(bb, mt.FieldByName("next"), a) // cycle
	h.SetRef(a, mt.FieldByName("data"), guard.Refs[2])
	h.SetRef(bb, mt.FieldByName("data"), guard.Refs[2]) // shared
	src.RemoveRootProvider(guard)

	data, err := Serialize(h, a, ProfileSSCLI)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	dmt := cellTypes(dst)
	out, err := Deserialize(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	dh := dst.Heap
	ob := dh.GetRef(out, dmt.FieldByName("next"))
	if dh.GetRef(ob, dmt.FieldByName("next")) != out {
		t.Error("cycle broken")
	}
	if dh.GetRef(out, dmt.FieldByName("data")) != dh.GetRef(ob, dmt.FieldByName("data")) {
		t.Error("shared array duplicated")
	}
}

func TestCLICorruptStream(t *testing.T) {
	src := newVM()
	mt := cellTypes(src)
	head := buildChain(src, mt, 2, 1)
	data, _ := Serialize(src.Heap, head, ProfileNET)
	dst := newVM()
	cellTypes(dst)
	if _, err := Deserialize(dst, data[:6]); err == nil {
		t.Error("truncated accepted")
	}
	bad := append([]byte(nil), data...)
	bad[1] ^= 0xAA
	if _, err := Deserialize(dst, bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Deserialize(newVM(), data); err == nil {
		t.Error("typeless receiver accepted")
	}
}

func TestCLIDeserializeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := newVM()
	mt := cellTypes(src)
	head := buildChain(src, mt, 4, 2)
	valid, err := Serialize(src.Heap, head, ProfileNET)
	if err != nil {
		t.Fatal(err)
	}
	tryOne := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %d bytes: %v", len(data), r)
			}
		}()
		dst := newVM()
		cellTypes(dst)
		_, _ = Deserialize(dst, data)
	}
	for i := 0; i < 150; i++ {
		data := make([]byte, rng.Intn(200))
		rng.Read(data)
		tryOne(data)
	}
	for i := 0; i < 300; i++ {
		data := append([]byte(nil), valid...)
		if rng.Intn(2) == 0 && len(data) > 0 {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		} else {
			data = data[:rng.Intn(len(data)+1)]
		}
		tryOne(data)
	}
}
