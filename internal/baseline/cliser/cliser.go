// Package cliser reimplements the CLI runtime binary serialization
// (BinaryFormatter) used by the Indiana bindings to transport object
// trees over standard MPI routines (paper §8, Figure 10). Like
// javaser it operates on managed objects of the Motor VM.
//
// Behavioural properties reproduced:
//
//   - traversal is ITERATIVE (a work queue), so long linked lists
//     serialize without stack overflow — the Indiana series in
//     Figure 10 continues past the point where mpiJava dies;
//   - traversal is opt-out (the Serializable attribute): every
//     reference field travels;
//   - per-object records carry a library/type id; type metadata
//     (assembly-qualified name, field names and types) is written
//     once per type and back-referenced;
//   - the representation is a single atomic stream: it cannot be
//     split or offset, which is why the Indiana object scatter would
//     need N separate serializations (paper §2.4) — this package
//     deliberately offers no split form.
//
// Two profiles reproduce the ".Net vs SSCLI serialization mechanisms
// differ in performance" observation (Fig. 10 caption):
//
//   - ProfileSSCLI resolves each field through string-keyed metadata
//     lookups on every object (the interpreted, metadata-driven path
//     of the research runtime);
//   - ProfileNET builds a cached layout plan per type once and then
//     serializes fields through the plan (the optimised commercial
//     runtime).
package cliser

import (
	"encoding/binary"
	"errors"
	"fmt"

	"motor/internal/vm"
)

// Profile selects the runtime cost model (see package comment).
type Profile uint8

// Profiles.
const (
	ProfileSSCLI Profile = iota
	ProfileNET
)

// String names the runtime profile.
func (p Profile) String() string {
	if p == ProfileNET {
		return ".NET"
	}
	return "SSCLI"
}

// Errors.
var (
	ErrFormat = errors.New("cliser: malformed stream")
	ErrType   = errors.New("cliser: type not found")
)

// Record tags.
const (
	recNull    = 0x0A
	recRef     = 0x09
	recClass   = 0x05
	recArray   = 0x07
	recLibrary = 0x0C
	magic      = 0x42465253 // "SRFB"
)

// fakeAssembly is the library name written once per stream, as
// BinaryFormatter records the defining assembly.
const fakeAssembly = "System.MP.Benchmarks, Version=1.0.0.0, Culture=neutral"

// layoutPlan is the ProfileNET cached per-type plan: resolved field
// descriptors in a flat slice.
type layoutPlan struct {
	fields []*vm.FieldDesc
}

// Writer serializes object graphs.
type Writer struct {
	heap    *vm.Heap
	profile Profile
	out     []byte

	ids     map[vm.Ref]uint32
	nextID  uint32
	typeIDs map[*vm.MethodTable]uint32

	plans map[*vm.MethodTable]*layoutPlan // ProfileNET cache

	queue []vm.Ref
}

// NewWriter creates a stream writer.
func NewWriter(h *vm.Heap, profile Profile) *Writer {
	w := &Writer{
		heap:    h,
		profile: profile,
		ids:     make(map[vm.Ref]uint32),
		typeIDs: make(map[*vm.MethodTable]uint32),
		plans:   make(map[*vm.MethodTable]*layoutPlan),
	}
	w.u32(magic)
	w.u8(recLibrary)
	w.str(fakeAssembly)
	return w
}

// Bytes returns the stream.
func (w *Writer) Bytes() []byte { return w.out }

func (w *Writer) u8(v byte) { w.out = append(w.out, v) }

func (w *Writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.out = append(w.out, b[:]...)
}

func (w *Writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.out = append(w.out, b[:]...)
}

func (w *Writer) str(s string) {
	w.u32(uint32(len(s)))
	w.out = append(w.out, s...)
}

// assign gives ref a stream object id, queueing it on first sight.
func (w *Writer) assign(ref vm.Ref) uint32 {
	if ref == vm.NullRef {
		return 0
	}
	if id, ok := w.ids[ref]; ok {
		return id
	}
	w.nextID++
	w.ids[ref] = w.nextID
	w.queue = append(w.queue, ref)
	return w.nextID
}

// newTypeMarker introduces an inline type-metadata record; known
// types are written as their id.
const newTypeMarker = 0xFFFFFFFF

// writeTypeRef writes either a back-reference to a known type id or
// the marker followed by the full metadata record (assembly-qualified
// name plus field table), assigning the next sequential id.
func (w *Writer) writeTypeRef(mt *vm.MethodTable) {
	if id, ok := w.typeIDs[mt]; ok {
		w.u32(id)
		return
	}
	id := uint32(len(w.typeIDs) + 1)
	w.typeIDs[mt] = id
	w.u32(newTypeMarker)
	w.str(typeName(mt) + ", " + fakeAssembly)
	if mt.Kind == vm.TKClass {
		w.u32(uint32(len(mt.Fields)))
		for i := range mt.Fields {
			f := &mt.Fields[i]
			w.str(f.Name)
			w.u8(byte(f.Kind()))
		}
	} else {
		w.u32(0)
		w.u8(byte(mt.Elem))
		w.u8(byte(mt.Rank))
	}
}

func typeName(mt *vm.MethodTable) string {
	if mt.Kind == vm.TKArray {
		return mt.Elem.String() + "[]"
	}
	return mt.Name
}

// Serialize flattens the graph at root (iteratively — no recursion
// limit, matching BinaryFormatter).
func (w *Writer) Serialize(root vm.Ref) error {
	rootID := w.assign(root)
	w.u32(rootID)
	for len(w.queue) > 0 {
		ref := w.queue[0]
		w.queue = w.queue[1:]
		if err := w.emit(ref); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) emit(ref vm.Ref) error {
	h := w.heap
	mt := h.MT(ref)
	if mt.Kind == vm.TKArray {
		if mt.Rank > 1 {
			return fmt.Errorf("cliser: rank-%d arrays unsupported by this baseline", mt.Rank)
		}
		w.u8(recArray)
		w.writeTypeRef(mt)
		n := h.Length(ref)
		w.u32(uint32(n))
		if mt.Elem == vm.KindRef {
			for i := 0; i < n; i++ {
				w.member(h.GetElemRef(ref, i))
			}
			return nil
		}
		for i := 0; i < n; i++ {
			w.primValue(mt.Elem, h.GetElem(ref, i))
		}
		return nil
	}
	w.u8(recClass)
	w.writeTypeRef(mt)
	switch w.profile {
	case ProfileNET:
		// Cached layout plan: resolve the field set once per type.
		plan, ok := w.plans[mt]
		if !ok {
			plan = &layoutPlan{fields: make([]*vm.FieldDesc, len(mt.Fields))}
			for i := range mt.Fields {
				plan.fields[i] = &mt.Fields[i]
			}
			w.plans[mt] = plan
		}
		for _, f := range plan.fields {
			w.field(ref, f)
		}
	default:
		// SSCLI profile: metadata-driven — every field of every
		// object is re-resolved by name through the type's metadata,
		// the way the research runtime's reflective formatter works.
		for i := range mt.Fields {
			name := mt.Fields[i].Name
			f := mt.FieldByName(name)
			if f == nil {
				return fmt.Errorf("cliser: lost field %s.%s", mt.Name, name)
			}
			w.field(ref, f)
		}
	}
	return nil
}

func (w *Writer) field(ref vm.Ref, f *vm.FieldDesc) {
	if f.IsRef() {
		// Opt-out Serializable semantics: all references travel.
		w.member(w.heap.GetRef(ref, f))
		return
	}
	w.primValue(f.Kind(), w.heap.GetScalar(ref, f))
}

// member writes a reference slot: null, or a forward/backward id.
func (w *Writer) member(ref vm.Ref) {
	if ref == vm.NullRef {
		w.u8(recNull)
		return
	}
	w.u8(recRef)
	w.u32(w.assign(ref))
}

func (w *Writer) primValue(k vm.Kind, bits uint64) {
	switch k.Size() {
	case 1:
		w.u8(byte(bits))
	case 2:
		w.out = append(w.out, byte(bits), byte(bits>>8))
	case 4:
		w.u32(uint32(bits))
	default:
		w.u64(bits)
	}
}

// Serialize is the one-shot convenience form.
func Serialize(h *vm.Heap, root vm.Ref, profile Profile) ([]byte, error) {
	w := NewWriter(h, profile)
	if err := w.Serialize(root); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}
