package cliser

import (
	"encoding/binary"
	"fmt"
	"strings"

	"motor/internal/vm"
)

// Reader reconstructs a BinaryFormatter-style stream on a VM.
type Reader struct {
	v    *vm.VM
	data []byte
	pos  int

	types []*readType
	objs  *vm.RefRoots
	// recTypes[i] is the type of the i-th object record, for
	// forward-reference fixups.
	recTypes []*readType
}

type readType struct {
	mt     *vm.MethodTable
	fields []*vm.FieldDesc
	kinds  []vm.Kind
}

type pendingRef struct {
	obj   int // index of the holding object
	field int // field index, or -1 for array element
	elem  int
	id    uint32 // referenced stream id
}

func (r *Reader) need(n int) error {
	if r.pos+n > len(r.data) {
		return fmt.Errorf("%w: truncated at %d", ErrFormat, r.pos)
	}
	return nil
}

func (r *Reader) u8() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *Reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *Reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *Reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *Reader) prim(k vm.Kind) (uint64, error) {
	switch k.Size() {
	case 1:
		b, err := r.u8()
		return uint64(b), err
	case 2:
		if err := r.need(2); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint16(r.data[r.pos:])
		r.pos += 2
		return uint64(v), nil
	case 4:
		v, err := r.u32()
		return uint64(v), err
	default:
		return r.u64()
	}
}

func (r *Reader) readTypeRef() (*readType, error) {
	id, err := r.u32()
	if err != nil {
		return nil, err
	}
	if id != newTypeMarker {
		if id == 0 || int(id) > len(r.types) {
			return nil, fmt.Errorf("%w: type id %d", ErrFormat, id)
		}
		return r.types[id-1], nil
	}
	qual, err := r.str()
	if err != nil {
		return nil, err
	}
	name := qual
	if i := strings.Index(qual, ", "); i >= 0 {
		name = qual[:i]
	}
	nf, err := r.u32()
	if err != nil {
		return nil, err
	}
	rt := &readType{}
	if nf == 0 && strings.HasSuffix(name, "[]") {
		ek, err := r.u8()
		if err != nil {
			return nil, err
		}
		rank, err := r.u8()
		if err != nil {
			return nil, err
		}
		var elemMT *vm.MethodTable
		if vm.Kind(ek) == vm.KindRef {
			base := strings.TrimSuffix(name, "[]")
			if mt, ok := r.v.TypeByName(base); ok {
				elemMT = mt
			}
		}
		rt.mt = r.v.ArrayType(vm.Kind(ek), elemMT, int(rank))
	} else {
		mt, ok := r.v.TypeByName(name)
		if !ok || mt.Kind != vm.TKClass {
			return nil, fmt.Errorf("%w: %q", ErrType, name)
		}
		rt.mt = mt
		for i := 0; i < int(nf); i++ {
			fname, err := r.str()
			if err != nil {
				return nil, err
			}
			fk, err := r.u8()
			if err != nil {
				return nil, err
			}
			lf := mt.FieldByName(fname)
			if lf == nil || lf.Kind() != vm.Kind(fk) {
				return nil, fmt.Errorf("%w: field %s.%s", ErrType, name, fname)
			}
			rt.fields = append(rt.fields, lf)
			rt.kinds = append(rt.kinds, vm.Kind(fk))
		}
	}
	r.types = append(r.types, rt)
	return rt, nil
}

// Deserialize reconstructs the stream's root object graph.
func Deserialize(v *vm.VM, data []byte) (vm.Ref, error) {
	r := &Reader{v: v, data: data, objs: &vm.RefRoots{}}
	m, err := r.u32()
	if err != nil || m != magic {
		return vm.NullRef, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	tag, err := r.u8()
	if err != nil || tag != recLibrary {
		return vm.NullRef, fmt.Errorf("%w: missing library record", ErrFormat)
	}
	if _, err := r.str(); err != nil {
		return vm.NullRef, err
	}
	rootID, err := r.u32()
	if err != nil {
		return vm.NullRef, err
	}

	v.AddRootProvider(r.objs)
	defer v.RemoveRootProvider(r.objs)

	h := v.Heap
	var pendings []pendingRef
	// Records appear in stream-id order; read until exhausted.
	for r.pos < len(r.data) {
		tag, err := r.u8()
		if err != nil {
			return vm.NullRef, err
		}
		objIdx := len(r.objs.Refs)
		switch tag {
		case recArray:
			rt, err := r.readTypeRef()
			if err != nil {
				return vm.NullRef, err
			}
			r.recTypes = append(r.recTypes, rt)
			n, err := r.u32()
			if err != nil {
				return vm.NullRef, err
			}
			// Bound the allocation against the remaining stream (each
			// element needs at least one input byte).
			if int64(n) > int64(len(r.data)-r.pos) {
				return vm.NullRef, fmt.Errorf("%w: array length %d exceeds stream remainder", ErrFormat, n)
			}
			ref, err := h.AllocArray(rt.mt, int(n))
			if err != nil {
				return vm.NullRef, err
			}
			r.objs.Refs = append(r.objs.Refs, ref)
			if rt.mt.Elem == vm.KindRef {
				for i := 0; i < int(n); i++ {
					p, err := r.readMember(objIdx, -1, i)
					if err != nil {
						return vm.NullRef, err
					}
					if p != nil {
						pendings = append(pendings, *p)
					}
				}
			} else {
				for i := 0; i < int(n); i++ {
					bits, err := r.prim(rt.mt.Elem)
					if err != nil {
						return vm.NullRef, err
					}
					h.SetElem(r.objs.Refs[objIdx], i, bits)
				}
			}
		case recClass:
			rt, err := r.readTypeRef()
			if err != nil {
				return vm.NullRef, err
			}
			r.recTypes = append(r.recTypes, rt)
			ref, err := h.AllocClass(rt.mt)
			if err != nil {
				return vm.NullRef, err
			}
			r.objs.Refs = append(r.objs.Refs, ref)
			fields := rt.fields
			for i, f := range fields {
				if f.IsRef() {
					p, err := r.readMember(objIdx, i, 0)
					if err != nil {
						return vm.NullRef, err
					}
					if p != nil {
						pendings = append(pendings, *p)
					}
					continue
				}
				bits, err := r.prim(rt.kinds[i])
				if err != nil {
					return vm.NullRef, err
				}
				h.SetScalar(r.objs.Refs[objIdx], f, bits)
			}
		default:
			return vm.NullRef, fmt.Errorf("%w: record tag %#x", ErrFormat, tag)
		}
	}

	// Fix up forward references.
	for _, p := range pendings {
		if p.id == 0 || int(p.id) > len(r.objs.Refs) {
			return vm.NullRef, fmt.Errorf("%w: object id %d", ErrFormat, p.id)
		}
		target := r.objs.Refs[p.id-1]
		holder := r.objs.Refs[p.obj]
		if p.field < 0 {
			h.SetElemRef(holder, p.elem, target)
		} else {
			rt := r.recTypes[p.obj]
			h.SetRef(holder, rt.fields[p.field], target)
		}
	}
	if rootID == 0 {
		return vm.NullRef, nil
	}
	if int(rootID) > len(r.objs.Refs) {
		return vm.NullRef, fmt.Errorf("%w: root id %d", ErrFormat, rootID)
	}
	return r.objs.Refs[rootID-1], nil
}

// readMember parses a reference slot; resolved later (forward refs).
func (r *Reader) readMember(obj, field, elem int) (*pendingRef, error) {
	tag, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch tag {
	case recNull:
		return nil, nil
	case recRef:
		id, err := r.u32()
		if err != nil {
			return nil, err
		}
		return &pendingRef{obj: obj, field: field, elem: elem, id: id}, nil
	default:
		return nil, fmt.Errorf("%w: member tag %#x", ErrFormat, tag)
	}
}
