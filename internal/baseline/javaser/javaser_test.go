package javaser

import (
	"errors"
	"math/rand"
	"testing"

	"motor/internal/vm"
)

func newVM() *vm.VM {
	return vm.New(vm.Config{Heap: vm.HeapConfig{YoungSize: 256 << 10, InitialElder: 2 << 20, ArenaMax: 256 << 20}})
}

// cellTypes registers a Java-style linked cell: ALL refs travel
// (opt-out), no Transportable involved.
func cellTypes(v *vm.VM) *vm.MethodTable {
	mt, err := v.DeclareClass("Cell")
	if err != nil {
		panic(err)
	}
	i32arr := v.ArrayType(vm.KindInt32, nil, 1)
	if err := v.CompleteClass(mt, nil, []vm.FieldSpec{
		{Name: "data", Kind: vm.KindRef, Type: i32arr},
		{Name: "next", Kind: vm.KindRef, Type: mt},
		{Name: "id", Kind: vm.KindInt32},
	}); err != nil {
		panic(err)
	}
	return mt
}

func buildChain(v *vm.VM, mt *vm.MethodTable, n, payload int) vm.Ref {
	h := v.Heap
	fData, fNext, fID := mt.FieldByName("data"), mt.FieldByName("next"), mt.FieldByName("id")
	guard := &vm.RefRoots{Refs: make([]vm.Ref, 2)}
	v.AddRootProvider(guard)
	defer v.RemoveRootProvider(guard)
	for i := n - 1; i >= 0; i-- {
		node, err := h.AllocClass(mt)
		if err != nil {
			panic(err)
		}
		guard.Refs[1] = node
		vals := make([]int32, payload)
		for j := range vals {
			vals[j] = int32(i*10 + j)
		}
		arr, err := h.NewInt32Array(vals)
		if err != nil {
			panic(err)
		}
		node = guard.Refs[1]
		h.SetRef(node, fData, arr)
		h.SetScalar(node, fID, uint64(uint32(int32(i))))
		if guard.Refs[0] != vm.NullRef {
			h.SetRef(node, fNext, guard.Refs[0])
		}
		guard.Refs[0] = node
	}
	return guard.Refs[0]
}

func TestJavaRoundtrip(t *testing.T) {
	src := newVM()
	mt := cellTypes(src)
	head := buildChain(src, mt, 10, 4)
	data, err := Serialize(src.Heap, head)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	dmt := cellTypes(dst)
	out, err := Deserialize(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	h := dst.Heap
	count := 0
	for cur := out; cur != vm.NullRef; cur = h.GetRef(cur, dmt.FieldByName("next")) {
		if got := int32(uint32(h.GetScalar(cur, dmt.FieldByName("id")))); got != int32(count) {
			t.Fatalf("node %d id %d", count, got)
		}
		arr := h.GetRef(cur, dmt.FieldByName("data"))
		if arr == vm.NullRef {
			t.Fatalf("node %d: data did not travel (Java is opt-out!)", count)
		}
		vals := h.Int32Slice(arr)
		if vals[0] != int32(count*10) {
			t.Fatalf("node %d payload %v", count, vals)
		}
		count++
	}
	if count != 10 {
		t.Errorf("chain length %d", count)
	}
}

func TestJavaStackOverflowAt1024(t *testing.T) {
	// The Figure 10 caption: "mpiJava results stop at 1024 objects
	// because longer linked lists caused a stack overflow exception".
	src := newVM()
	mt := cellTypes(src)
	// 1024 cells is fine...
	ok := buildChain(src, mt, 512, 1)
	if _, err := Serialize(src.Heap, ok); err != nil {
		t.Fatalf("512 cells failed: %v", err)
	}
	// ...but a longer chain dies recursively.
	deep := buildChain(src, mt, 1200, 1)
	_, err := Serialize(src.Heap, deep)
	if !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("1200-cell chain: %v", err)
	}
}

func TestJavaSharedReference(t *testing.T) {
	src := newVM()
	mt := cellTypes(src)
	h := src.Heap
	guard := &vm.RefRoots{Refs: make([]vm.Ref, 3)}
	src.AddRootProvider(guard)
	a, _ := h.AllocClass(mt)
	guard.Refs[0] = a
	bb, _ := h.AllocClass(mt)
	guard.Refs[1] = bb
	shared, _ := h.NewInt32Array([]int32{3})
	guard.Refs[2] = shared
	a, bb = guard.Refs[0], guard.Refs[1]
	h.SetRef(a, mt.FieldByName("next"), bb)
	h.SetRef(a, mt.FieldByName("data"), guard.Refs[2])
	h.SetRef(bb, mt.FieldByName("data"), guard.Refs[2])
	src.RemoveRootProvider(guard)

	data, err := Serialize(h, a)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	dmt := cellTypes(dst)
	out, err := Deserialize(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	dh := dst.Heap
	d1 := dh.GetRef(out, dmt.FieldByName("data"))
	d2 := dh.GetRef(dh.GetRef(out, dmt.FieldByName("next")), dmt.FieldByName("data"))
	if d1 != d2 {
		t.Error("shared reference duplicated (handle table broken)")
	}
}

func TestJavaHandleTableSwitch(t *testing.T) {
	// Crossing linearThreshold objects must still round-trip (the
	// linear->hashed switch).
	src := newVM()
	mt := cellTypes(src)
	head := buildChain(src, mt, linearThreshold+40, 0)
	data, err := Serialize(src.Heap, head)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	dmt := cellTypes(dst)
	out, err := Deserialize(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	h := dst.Heap
	count := 0
	for cur := out; cur != vm.NullRef; cur = h.GetRef(cur, dmt.FieldByName("next")) {
		count++
	}
	if count != linearThreshold+40 {
		t.Errorf("chain length %d", count)
	}
}

func TestJavaCycle(t *testing.T) {
	src := newVM()
	mt := cellTypes(src)
	h := src.Heap
	guard := &vm.RefRoots{Refs: make([]vm.Ref, 2)}
	src.AddRootProvider(guard)
	a, _ := h.AllocClass(mt)
	guard.Refs[0] = a
	bb, _ := h.AllocClass(mt)
	guard.Refs[1] = bb
	a = guard.Refs[0]
	h.SetRef(a, mt.FieldByName("next"), bb)
	h.SetRef(bb, mt.FieldByName("next"), a)
	src.RemoveRootProvider(guard)
	data, err := Serialize(h, a)
	if err != nil {
		t.Fatal(err)
	}
	dst := newVM()
	dmt := cellTypes(dst)
	out, err := Deserialize(dst, data)
	if err != nil {
		t.Fatal(err)
	}
	dh := dst.Heap
	if dh.GetRef(dh.GetRef(out, dmt.FieldByName("next")), dmt.FieldByName("next")) != out {
		t.Error("cycle broken")
	}
}

func TestJavaCorruptStream(t *testing.T) {
	src := newVM()
	mt := cellTypes(src)
	head := buildChain(src, mt, 2, 1)
	data, _ := Serialize(src.Heap, head)
	dst := newVM()
	cellTypes(dst)
	if _, err := Deserialize(dst, data[:3]); err == nil {
		t.Error("truncated stream accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := Deserialize(dst, bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Missing type on the receiver.
	empty := newVM()
	if _, err := Deserialize(empty, data); !errors.Is(err, ErrType) {
		t.Errorf("typeless receiver: %v", err)
	}
}

func TestJavaDeserializeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := newVM()
	mt := cellTypes(src)
	head := buildChain(src, mt, 4, 2)
	valid, err := Serialize(src.Heap, head)
	if err != nil {
		t.Fatal(err)
	}
	tryOne := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %d bytes: %v", len(data), r)
			}
		}()
		dst := newVM()
		cellTypes(dst)
		_, _ = Deserialize(dst, data)
	}
	for i := 0; i < 150; i++ {
		data := make([]byte, rng.Intn(200))
		rng.Read(data)
		tryOne(data)
	}
	for i := 0; i < 300; i++ {
		data := append([]byte(nil), valid...)
		if rng.Intn(2) == 0 && len(data) > 0 {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		} else {
			data = data[:rng.Intn(len(data)+1)]
		}
		tryOne(data)
	}
}
