// Package javaser reimplements the behaviourally relevant parts of
// Java's ObjectOutputStream / ObjectInputStream serialization, used
// by mpiJava's MPI.OBJECT datatype (paper §2.4, Figure 10). It
// operates on managed objects of the Motor VM so the same structures
// can be benchmarked across all serializers.
//
// Behaviours reproduced from the real mechanism, each of which shapes
// Figure 10:
//
//   - Reference traversal is RECURSIVE (writeObject calls itself per
//     referenced object). A linked list therefore consumes stack
//     proportional to its length; beyond MaxDepth the serializer
//     fails the way the JVM throws StackOverflowError — "mpiJava
//     results stop at 1024 objects because longer linked lists caused
//     a stack overflow exception in the Java serialization mechanism"
//     (Fig. 10 caption).
//   - Traversal is opt-out: ALL reference fields travel (Java's
//     transient is the exception, not the rule), unlike Motor's
//     opt-in Transportable attribute.
//   - Class descriptors are written in full on first use and
//     back-referenced afterwards via the stream handle table.
//   - The handle table starts as a small linear structure and
//     switches to a hashed structure with a rehash when it grows past
//     a threshold — the growth produces the cost discontinuity ("the
//     bump in mpiJava is consistent and might suggest Java employs
//     different serialization algorithms or data structures to
//     serialize small or large numbers of objects", Fig. 10 caption).
package javaser

import (
	"encoding/binary"
	"errors"
	"fmt"

	"motor/internal/vm"
)

// MaxDepth bounds writeObject recursion, standing in for the JVM
// call-stack limit. With the Figure 10 list shape (one payload array
// per element) recursion depth ≈ element count, so the mpiJava series
// survives 1024 total objects (512 elements) and dies at 2048 — where
// the paper's series stops.
const MaxDepth = 1000

// linearThreshold is the handle-table size at which the stream
// switches from the linear structure to the hashed one (with a full
// rehash), producing the Figure 10 bump.
const linearThreshold = 256

// Errors.
var (
	// ErrStackOverflow corresponds to the JVM StackOverflowError.
	ErrStackOverflow = errors.New("javaser: stack overflow in recursive serialization")
	// ErrFormat flags a malformed stream.
	ErrFormat = errors.New("javaser: malformed stream")
	// ErrType flags an unresolvable class on the receiving side.
	ErrType = errors.New("javaser: class not found")
)

// Stream record tags (loosely modelled on the Java serialization
// grammar).
const (
	tcNull      = 0x70
	tcReference = 0x71
	tcClassDesc = 0x72
	tcObject    = 0x73
	tcArray     = 0x74
	tcMagic     = 0xACED
)

// handleTable reproduces the two-phase structure: linear scan below
// linearThreshold, hashed beyond (with a one-time rehash).
type handleTable struct {
	refs   []vm.Ref
	ids    []uint32
	hashed map[vm.Ref]uint32
}

func (h *handleTable) lookup(ref vm.Ref) (uint32, bool) {
	if h.hashed != nil {
		id, ok := h.hashed[ref]
		return id, ok
	}
	for i, r := range h.refs {
		if r == ref {
			return h.ids[i], true
		}
	}
	return 0, false
}

func (h *handleTable) add(ref vm.Ref, id uint32) {
	if h.hashed != nil {
		h.hashed[ref] = id
		return
	}
	h.refs = append(h.refs, ref)
	h.ids = append(h.ids, id)
	if len(h.refs) > linearThreshold {
		// Switch structures: rehash everything (the bump).
		h.hashed = make(map[vm.Ref]uint32, 2*len(h.refs))
		for i, r := range h.refs {
			h.hashed[r] = h.ids[i]
		}
		h.refs, h.ids = nil, nil
	}
}

// Writer is an ObjectOutputStream equivalent over a managed heap.
type Writer struct {
	heap *vm.Heap
	out  []byte

	handles    handleTable
	nextHandle uint32

	classDesc map[*vm.MethodTable]uint32 // class descriptor handles
}

// NewWriter creates a stream writer, emitting the stream magic.
func NewWriter(h *vm.Heap) *Writer {
	w := &Writer{heap: h, classDesc: make(map[*vm.MethodTable]uint32)}
	w.u16(tcMagic)
	return w
}

// Bytes returns the stream contents.
func (w *Writer) Bytes() []byte { return w.out }

func (w *Writer) u8(v byte) { w.out = append(w.out, v) }
func (w *Writer) u16(v int) { w.out = append(w.out, byte(v>>8), byte(v)) } // Java is big-endian
func (w *Writer) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	w.out = append(w.out, b[:]...)
}

func (w *Writer) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.out = append(w.out, b[:]...)
}

func (w *Writer) str(s string) {
	w.u16(len(s))
	w.out = append(w.out, s...)
}

// classDescHandle writes (or back-references) a class descriptor,
// returning its handle. Descriptors are verbose on first use: class
// name, a fake serialVersionUID, and the full field list — as in the
// real stream format.
func (w *Writer) classDescFor(mt *vm.MethodTable) uint32 {
	if h, ok := w.classDesc[mt]; ok {
		w.u8(tcReference)
		w.u32(h)
		return h
	}
	w.u8(tcClassDesc)
	w.str(descName(mt))
	// serialVersionUID: hash of the name (stands in for the real
	// computed SUID).
	var suid uint64
	for _, c := range descName(mt) {
		suid = suid*131 + uint64(c)
	}
	w.u64(suid)
	if mt.Kind == vm.TKClass {
		w.u16(len(mt.Fields))
		for i := range mt.Fields {
			f := &mt.Fields[i]
			w.u8(byte(f.Kind()))
			w.str(f.Name)
		}
	} else {
		w.u16(0)
	}
	h := w.nextHandle
	w.nextHandle++
	w.classDesc[mt] = h
	return h
}

func descName(mt *vm.MethodTable) string {
	if mt.Kind == vm.TKArray {
		return "[" + mt.Elem.String()
	}
	return mt.Name
}

// WriteObject serializes the graph rooted at ref — recursively, as
// the JVM does.
func (w *Writer) WriteObject(ref vm.Ref) error {
	return w.writeObject(ref, 0)
}

func (w *Writer) writeObject(ref vm.Ref, depth int) error {
	if ref == vm.NullRef {
		w.u8(tcNull)
		return nil
	}
	if depth > MaxDepth {
		return fmt.Errorf("%w (depth %d)", ErrStackOverflow, depth)
	}
	if id, ok := w.handles.lookup(ref); ok {
		w.u8(tcReference)
		w.u32(id)
		return nil
	}
	h := w.heap
	mt := h.MT(ref)
	if mt.Kind == vm.TKArray {
		if mt.Rank > 1 {
			// The benchmark baseline carries only vector arrays (Java
			// has no true multidimensional arrays at all, §3).
			return fmt.Errorf("javaser: rank-%d arrays unsupported", mt.Rank)
		}
		w.u8(tcArray)
		w.classDescFor(mt)
		id := w.nextHandle
		w.nextHandle++
		w.handles.add(ref, id)
		n := h.Length(ref)
		w.u32(uint32(n))
		if mt.Elem == vm.KindRef {
			for i := 0; i < n; i++ {
				if err := w.writeObject(h.GetElemRef(ref, i), depth+1); err != nil {
					return err
				}
			}
			return nil
		}
		// Primitive array: element-at-a-time big-endian writes, as
		// the real stream does (no bulk memcpy of little-endian
		// heap data).
		for i := 0; i < n; i++ {
			w.primitive(mt.Elem, h.GetElem(ref, i))
		}
		return nil
	}
	w.u8(tcObject)
	w.classDescFor(mt)
	id := w.nextHandle
	w.nextHandle++
	w.handles.add(ref, id)
	// Primitives first, then objects — matching the real field order
	// split in classDesc.
	for i := range mt.Fields {
		f := &mt.Fields[i]
		if !f.IsRef() {
			w.primitive(f.Kind(), h.GetScalar(ref, f))
		}
	}
	for i := range mt.Fields {
		f := &mt.Fields[i]
		if f.IsRef() {
			// Opt-out semantics: every reference travels.
			if err := w.writeObject(h.GetRef(ref, f), depth+1); err != nil {
				return err
			}
		}
	}
	return nil
}

func (w *Writer) primitive(k vm.Kind, bits uint64) {
	switch k.Size() {
	case 1:
		w.u8(byte(bits))
	case 2:
		w.u16(int(uint16(bits)))
	case 4:
		w.u32(uint32(bits))
	default:
		w.u64(bits)
	}
}

// Serialize is the convenience one-shot form.
func Serialize(h *vm.Heap, root vm.Ref) ([]byte, error) {
	w := NewWriter(h)
	if err := w.WriteObject(root); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}
