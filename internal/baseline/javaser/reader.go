package javaser

import (
	"encoding/binary"
	"fmt"
	"strings"

	"motor/internal/vm"
)

// Reader is the ObjectInputStream equivalent: recursive readObject
// with a shared handle space for class descriptors and objects.
type Reader struct {
	v    *vm.VM
	data []byte
	pos  int

	// handles maps stream handle -> resolved entity. Class
	// descriptors occupy handle slots too (as in the real format),
	// so the table holds either a type or an object.
	handleTypes map[uint32]*descInfo
	handleObjs  *vm.RefRoots
	handleIsObj []bool
	nextHandle  uint32
}

type descInfo struct {
	mt     *vm.MethodTable
	fields []*vm.FieldDesc // wire order
	kinds  []vm.Kind
}

// NewReader wraps a stream.
func NewReader(v *vm.VM, data []byte) (*Reader, error) {
	r := &Reader{v: v, data: data, handleTypes: make(map[uint32]*descInfo), handleObjs: &vm.RefRoots{}}
	m, err := r.u16()
	if err != nil || m != tcMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	return r, nil
}

func (r *Reader) need(n int) error {
	if r.pos+n > len(r.data) {
		return fmt.Errorf("%w: truncated at %d", ErrFormat, r.pos)
	}
	return nil
}

func (r *Reader) u8() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *Reader) u16() (int, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := int(binary.BigEndian.Uint16(r.data[r.pos:]))
	r.pos += 2
	return v, nil
}

func (r *Reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *Reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *Reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if err := r.need(n); err != nil {
		return "", err
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s, nil
}

func (r *Reader) primitive(k vm.Kind) (uint64, error) {
	switch k.Size() {
	case 1:
		b, err := r.u8()
		return uint64(b), err
	case 2:
		v, err := r.u16()
		return uint64(uint16(v)), err
	case 4:
		v, err := r.u32()
		return uint64(v), err
	default:
		return r.u64()
	}
}

func (r *Reader) allocHandle() uint32 {
	h := r.nextHandle
	r.nextHandle++
	r.handleObjs.Refs = append(r.handleObjs.Refs, vm.NullRef)
	r.handleIsObj = append(r.handleIsObj, false)
	return h
}

// readClassDesc handles tcClassDesc / tcReference at a descriptor
// position.
func (r *Reader) readClassDesc() (*descInfo, error) {
	tag, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tcReference:
		h, err := r.u32()
		if err != nil {
			return nil, err
		}
		d, ok := r.handleTypes[h]
		if !ok {
			return nil, fmt.Errorf("%w: handle %d is not a class descriptor", ErrFormat, h)
		}
		return d, nil
	case tcClassDesc:
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		if _, err := r.u64(); err != nil { // serialVersionUID
			return nil, err
		}
		nf, err := r.u16()
		if err != nil {
			return nil, err
		}
		d := &descInfo{}
		if strings.HasPrefix(name, "[") {
			ek, ok := vm.KindByName(strings.TrimPrefix(name, "["))
			if !ok {
				return nil, fmt.Errorf("%w: array desc %q", ErrType, name)
			}
			d.mt = r.v.ArrayType(ek, nil, 1)
		} else {
			mt, ok := r.v.TypeByName(name)
			if !ok {
				return nil, fmt.Errorf("%w: %q", ErrType, name)
			}
			d.mt = mt
			for i := 0; i < nf; i++ {
				fk, err := r.u8()
				if err != nil {
					return nil, err
				}
				fname, err := r.str()
				if err != nil {
					return nil, err
				}
				lf := mt.FieldByName(fname)
				if lf == nil || lf.Kind() != vm.Kind(fk) {
					return nil, fmt.Errorf("%w: field %s.%s", ErrType, name, fname)
				}
				d.fields = append(d.fields, lf)
				d.kinds = append(d.kinds, vm.Kind(fk))
			}
		}
		h := r.allocHandle()
		r.handleTypes[h] = d
		return d, nil
	default:
		return nil, fmt.Errorf("%w: tag %#x at descriptor position", ErrFormat, tag)
	}
}

// ReadObject reconstructs the next object in the stream.
func (r *Reader) ReadObject() (vm.Ref, error) {
	r.v.AddRootProvider(r.handleObjs)
	defer r.v.RemoveRootProvider(r.handleObjs)
	return r.readObject(0)
}

func (r *Reader) readObject(depth int) (vm.Ref, error) {
	if depth > MaxDepth {
		return vm.NullRef, ErrStackOverflow
	}
	tag, err := r.u8()
	if err != nil {
		return vm.NullRef, err
	}
	h := r.v.Heap
	switch tag {
	case tcNull:
		return vm.NullRef, nil
	case tcReference:
		hd, err := r.u32()
		if err != nil {
			return vm.NullRef, err
		}
		if int(hd) >= len(r.handleObjs.Refs) || !r.handleIsObj[hd] {
			return vm.NullRef, fmt.Errorf("%w: handle %d is not an object", ErrFormat, hd)
		}
		return r.handleObjs.Refs[hd], nil
	case tcArray:
		d, err := r.readClassDesc()
		if err != nil {
			return vm.NullRef, err
		}
		n, err := r.u32()
		if err != nil {
			return vm.NullRef, err
		}
		// Each element occupies at least one input byte; bound the
		// allocation against the remaining stream.
		if int64(n) > int64(len(r.data)-r.pos) {
			return vm.NullRef, fmt.Errorf("%w: array length %d exceeds stream remainder", ErrFormat, n)
		}
		ref, err := h.AllocArray(d.mt, int(n))
		if err != nil {
			return vm.NullRef, err
		}
		hd := r.allocHandle()
		r.handleObjs.Refs[hd] = ref
		r.handleIsObj[hd] = true
		if d.mt.Elem == vm.KindRef {
			for i := 0; i < int(n); i++ {
				er, err := r.readObject(depth + 1)
				if err != nil {
					return vm.NullRef, err
				}
				h.SetElemRef(r.handleObjs.Refs[hd], i, er)
			}
			return r.handleObjs.Refs[hd], nil
		}
		for i := 0; i < int(n); i++ {
			bits, err := r.primitive(d.mt.Elem)
			if err != nil {
				return vm.NullRef, err
			}
			h.SetElem(r.handleObjs.Refs[hd], i, bits)
		}
		return r.handleObjs.Refs[hd], nil
	case tcObject:
		d, err := r.readClassDesc()
		if err != nil {
			return vm.NullRef, err
		}
		ref, err := h.AllocClass(d.mt)
		if err != nil {
			return vm.NullRef, err
		}
		hd := r.allocHandle()
		r.handleObjs.Refs[hd] = ref
		r.handleIsObj[hd] = true
		for i, f := range d.fields {
			if !f.IsRef() {
				bits, err := r.primitive(d.kinds[i])
				if err != nil {
					return vm.NullRef, err
				}
				h.SetScalar(r.handleObjs.Refs[hd], f, bits)
			}
		}
		for _, f := range d.fields {
			if f.IsRef() {
				fr, err := r.readObject(depth + 1)
				if err != nil {
					return vm.NullRef, err
				}
				h.SetRef(r.handleObjs.Refs[hd], f, fr)
			}
		}
		return r.handleObjs.Refs[hd], nil
	default:
		return vm.NullRef, fmt.Errorf("%w: tag %#x", ErrFormat, tag)
	}
}

// Deserialize is the convenience one-shot form.
func Deserialize(v *vm.VM, data []byte) (vm.Ref, error) {
	r, err := NewReader(v, data)
	if err != nil {
		return vm.NullRef, err
	}
	return r.ReadObject()
}
