// Package pinvoke implements a managed-wrapper MPI binding in the
// style of the Indiana University C# bindings (paper §2.1, [7]): the
// architecture on the left of the paper's Figure 1, where the MPI
// library sits OUTSIDE the runtime and every call crosses a
// P/Invoke-style managed-to-native boundary.
//
// Costs reproduced (each is real work, not a sleep):
//
//   - every call performs P/Invoke marshalling: arguments are
//     encoded into a native call frame, and an unmanaged-code
//     security demand is evaluated against the binding's permission
//     set — exactly the per-call overhead FCalls avoid (paper §5.1:
//     FCalls "do not have parameter marshalling and security
//     checks");
//   - the buffer is PINNED FOR EVERY OPERATION and unpinned after
//     ("Pinning is performed for each MPI operation", §8), because a
//     wrapper outside the runtime cannot know the object's
//     generation or defer the pin;
//   - the hosting runtime profile selects the pin bookkeeping the
//     runtime provides: HostNET uses the handle-table pin path,
//     HostSSCLI the linear pin list, and SSCLI re-resolves the
//     marshalling plan from string-keyed metadata on every call
//     while .NET caches it — reproducing the Indiana-SSCLI vs
//     Indiana-.NET gap of Figure 9.
package pinvoke

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"

	"motor/internal/mp"
	"motor/internal/vm"
)

// Host selects the hosting-runtime profile.
type Host uint8

// Hosting runtimes of the paper's evaluation.
const (
	HostSSCLI Host = iota
	HostNET
)

// String names the hosting runtime.
func (h Host) String() string {
	if h == HostNET {
		return ".NET"
	}
	return "SSCLI"
}

// ErrNotSimple rejects buffers the binding cannot pin and pass raw.
var ErrNotSimple = errors.New("pinvoke: buffer must be an array of simple types")

// Stats counts wrapper activity.
type Stats struct {
	Calls           uint64
	Pins            uint64
	MarshalledBytes uint64
	Demands         uint64
}

// argSpec describes one marshalled parameter.
type argSpec struct {
	name string
	size int
}

// entryPoint is the metadata for one native function the wrapper
// imports.
type entryPoint struct {
	name string
	args []argSpec
}

// Binding is one rank's wrapper instance.
type Binding struct {
	vm   *vm.VM
	comm *mp.Comm
	host Host

	// Code-access-security state: the unmanaged-code demand walks the
	// managed call chain and intersects every frame's assembly grant
	// set with the demanded permissions — the stack walk that made
	// P/Invoke crossings expensive on CAS-era runtimes and that the
	// trusted FCall path never performs (paper §5.1).
	callChain []string            // assembly per managed frame
	grants    map[string][]string // assembly -> granted permissions
	demandSet []string            // permissions demanded per crossing

	// entryPoints is the DllImport table, keyed by name (the SSCLI
	// profile re-resolves through this on every call).
	entryPoints map[string]*entryPoint
	// plans is the .NET profile's cached marshalling plans.
	plans map[string][]argSpec

	// frame is the reusable native call frame.
	frame []byte

	Stats Stats
}

// New creates a binding for a VM + world pair.
func New(v *vm.VM, w *mp.World, host Host) *Binding {
	fullTrust := []string{
		"SecurityPermission/UnmanagedCode",
		"SecurityPermission/Execution",
		"EnvironmentPermission/Read",
		"FileIOPermission/Read",
		"ReflectionPermission/MemberAccess",
		"SecurityPermission/SkipVerification",
		"DnsPermission/Unrestricted",
		"SocketPermission/Connect",
	}
	b := &Binding{
		vm:   v,
		comm: w.Comm,
		host: host,
		// A representative managed call chain for an MPI call:
		// application -> the binding assembly -> the runtime library.
		callChain: []string{"PingPong.exe", "MPI.NET.dll", "mscorlib.dll"},
		grants: map[string][]string{
			"PingPong.exe": fullTrust,
			"MPI.NET.dll":  fullTrust,
			"mscorlib.dll": fullTrust,
		},
		demandSet: []string{
			"SecurityPermission/UnmanagedCode",
			"SecurityPermission/Execution",
		},
		entryPoints: make(map[string]*entryPoint),
		plans:       make(map[string][]argSpec),
	}
	// The DllImport table of the binding (subset used here).
	for _, ep := range []entryPoint{
		{"MPI_Send", []argSpec{{"buf", 8}, {"count", 4}, {"datatype", 4}, {"dest", 4}, {"tag", 4}, {"comm", 4}}},
		{"MPI_Recv", []argSpec{{"buf", 8}, {"count", 4}, {"datatype", 4}, {"source", 4}, {"tag", 4}, {"comm", 4}, {"status", 8}}},
		{"MPI_Isend", []argSpec{{"buf", 8}, {"count", 4}, {"datatype", 4}, {"dest", 4}, {"tag", 4}, {"comm", 4}, {"request", 8}}},
		{"MPI_Irecv", []argSpec{{"buf", 8}, {"count", 4}, {"datatype", 4}, {"source", 4}, {"tag", 4}, {"comm", 4}, {"request", 8}}},
		{"MPI_Wait", []argSpec{{"request", 8}, {"status", 8}}},
		{"MPI_Barrier", []argSpec{{"comm", 4}}},
	} {
		ep := ep
		b.entryPoints[ep.name] = &ep
	}
	w.Dev.Yield = v.PollPoint
	return b
}

// Comm exposes the underlying communicator.
func (b *Binding) Comm() *mp.Comm { return b.comm }

// crossing performs the managed-to-native transition for one call:
// the code-access-security stack walk plus argument marshalling into
// the call frame.
func (b *Binding) crossing(name string, args ...uint64) error {
	b.Stats.Calls++
	// CAS demand: every frame of the managed call chain must grant
	// every demanded permission (assembly grant-set intersection —
	// the walk the trusted FCall path skips).
	for _, frame := range b.callChain {
		grantSet, ok := b.grants[frame]
		if !ok {
			return fmt.Errorf("pinvoke: no evidence for assembly %s", frame)
		}
		for _, demand := range b.demandSet {
			b.Stats.Demands++
			granted := false
			for _, g := range grantSet {
				if g == demand {
					granted = true
					break
				}
			}
			if !granted {
				return fmt.Errorf("pinvoke: %s denied for %s in %s", demand, name, frame)
			}
		}
	}
	// Resolve the marshalling plan.
	var plan []argSpec
	switch b.host {
	case HostNET:
		var ok bool
		plan, ok = b.plans[name]
		if !ok {
			ep, found := b.entryPoints[name]
			if !found {
				return fmt.Errorf("pinvoke: no entry point %s", name)
			}
			plan = append([]argSpec(nil), ep.args...)
			b.plans[name] = plan
		}
	default:
		// SSCLI: re-resolve through the metadata table every call.
		ep, found := b.entryPoints[name]
		if !found {
			return fmt.Errorf("pinvoke: no entry point %s", name)
		}
		plan = ep.args
	}
	if len(args) != len(plan) {
		return fmt.Errorf("pinvoke: %s expects %d args, got %d", name, len(plan), len(args))
	}
	// Marshal into the native frame.
	b.frame = b.frame[:0]
	for i, a := range args {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], a)
		b.frame = append(b.frame, tmp[:plan[i].size]...)
		b.Stats.MarshalledBytes += uint64(plan[i].size)
	}
	return nil
}

// pinBuffer applies the wrapper's unconditional pin and returns the
// raw range plus the unpin function.
func (b *Binding) pinBuffer(obj vm.Ref) (start, end uint32, unpin func(), err error) {
	if obj == vm.NullRef {
		return 0, 0, nil, ErrNotSimple
	}
	h := b.vm.Heap
	mt := h.MT(obj)
	if !mt.IsSimpleArray() {
		return 0, 0, nil, fmt.Errorf("%w: %s", ErrNotSimple, mt)
	}
	b.Stats.Pins++
	h.Pin(obj)
	s, e := h.DataRange(obj)
	return s, e, func() { h.Unpin(obj) }, nil
}

// wrapperBuf resolves a pinned raw range lazily against arena growth.
type wrapperBuf struct {
	h          *vm.Heap
	start, end uint32
}

// Len implements adi.Buffer.
func (w wrapperBuf) Len() int { return int(w.end - w.start) }

// Bytes implements adi.Buffer.
func (w wrapperBuf) Bytes() []byte { return w.h.Bytes(w.start, w.end) }

// Send transports a simple array, pinning it for the operation.
func (b *Binding) Send(t *vm.Thread, obj vm.Ref, dest, tag int) error {
	s, e, unpin, err := b.pinBuffer(obj)
	if err != nil {
		return err
	}
	defer unpin()
	if err := b.crossing("MPI_Send", uint64(s), uint64(e-s), 1, uint64(dest), uint64(tag), 0); err != nil {
		return err
	}
	req, err := b.comm.IsendBuffer(wrapperBuf{b.vm.Heap, s, e}, dest, tag, false)
	if err != nil {
		return err
	}
	return b.wait(t, req)
}

// Recv receives into a simple array, pinning it for the operation.
func (b *Binding) Recv(t *vm.Thread, obj vm.Ref, source, tag int) (mp.Status, error) {
	s, e, unpin, err := b.pinBuffer(obj)
	if err != nil {
		return mp.Status{}, err
	}
	defer unpin()
	if err := b.crossing("MPI_Recv", uint64(s), uint64(e-s), 1, uint64(source), uint64(tag), 0, 0); err != nil {
		return mp.Status{}, err
	}
	req, err := b.comm.IrecvBuffer(wrapperBuf{b.vm.Heap, s, e}, source, tag)
	if err != nil {
		return mp.Status{}, err
	}
	return b.waitStatus(t, req)
}

func (b *Binding) wait(t *vm.Thread, req *mp.Request) error {
	_, err := b.waitStatus(t, req)
	return err
}

func (b *Binding) waitStatus(t *vm.Thread, req *mp.Request) (mp.Status, error) {
	for {
		done, st, err := b.comm.Test(req)
		if done {
			return st, err
		}
		t.PollGC()
		runtime.Gosched()
	}
}

// Barrier crosses for MPI_Barrier.
func (b *Binding) Barrier(t *vm.Thread) error {
	if err := b.crossing("MPI_Barrier", 0); err != nil {
		return err
	}
	return b.comm.Barrier()
}
