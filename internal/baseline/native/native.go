// Package native is the C++/MPICH2 baseline of the paper's Figure 9:
// direct use of the message-passing core with raw byte buffers — no
// virtual machine, no managed memory, no pinning, no call crossing.
// It establishes the floor every managed implementation is measured
// against.
package native

import "motor/internal/mp"

// Rank is one native process's state.
type Rank struct {
	comm *mp.Comm
	buf  []byte
}

// New binds a native rank to a world.
func New(w *mp.World) *Rank { return &Rank{comm: w.Comm} }

// Comm exposes the communicator.
func (r *Rank) Comm() *mp.Comm { return r.comm }

// SetBuffer sizes the rank's transfer buffer.
func (r *Rank) SetBuffer(n int) {
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
}

// Buffer exposes the transfer buffer.
func (r *Rank) Buffer() []byte { return r.buf }

// Send transmits the buffer.
func (r *Rank) Send(dest, tag int) error { return r.comm.Send(r.buf, dest, tag) }

// Recv receives into the buffer.
func (r *Rank) Recv(source, tag int) (mp.Status, error) { return r.comm.Recv(r.buf, source, tag) }

// Barrier synchronizes the world.
func (r *Rank) Barrier() error { return r.comm.Barrier() }
