package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"motor/internal/mp"
	"motor/internal/vm"
)

// runRanksKind is runRanks with a channel choice.
func runRanksKind(t *testing.T, kind mp.ChannelKind, n int, opts []Option, body func(r *rank) error) {
	t.Helper()
	worlds, err := mp.NewLocalWorlds(kind, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(w *mp.World) {
			v := vm.New(vm.Config{
				Name: fmt.Sprintf("rank%d", w.Rank()),
				Heap: vm.HeapConfig{YoungSize: 64 << 10, InitialElder: 512 << 10, ArenaMax: 64 << 20},
			})
			e := Attach(v, w, opts...)
			th := v.StartThread("main")
			defer th.End()
			defer w.Close()
			errc <- body(&rank{v: v, e: e, th: th})
		}(worlds[i])
	}
	deadline := time.After(30 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("ranks deadlocked")
		}
	}
}

func TestEngineOverSockChannel(t *testing.T) {
	// The whole managed stack over real TCP loopback — the paper's
	// evaluation configuration.
	runRanksKind(t, mp.ChannelSock, 2, nil, func(r *rank) error {
		h := r.v.Heap
		mt := registerLinkedArray(r.v)
		if r.e.Comm.Rank() == 0 {
			// Regular op with a rendezvous-size payload.
			big, _ := h.AllocArray(r.v.ArrayType(vm.KindUint8, nil, 1), 100<<10)
			h.DataBytes(big)[12345] = 0xCD
			if err := r.e.Send(r.th, big, 1, 0); err != nil {
				return err
			}
			// OO op.
			head := buildLinkedList(r.v, mt, 4, 8)
			return r.e.OSend(r.th, head, 1, 1)
		}
		big, _ := h.AllocArray(r.v.ArrayType(vm.KindUint8, nil, 1), 100<<10)
		st, err := r.e.Recv(r.th, big, 0, 0)
		if err != nil {
			return err
		}
		if st.Count != 100<<10 || h.DataBytes(big)[12345] != 0xCD {
			return fmt.Errorf("rendezvous payload corrupt (count %d)", st.Count)
		}
		head, _, err := r.e.ORecv(r.th, 0, 1)
		if err != nil {
			return err
		}
		return verifyList(h, mt, head, 4, 8, true)
	})
}

func TestORecvAnySource(t *testing.T) {
	runRanksKind(t, mp.ChannelShm, 3, nil, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		if r.e.Comm.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				head, st, err := r.e.ORecv(r.th, mp.AnySource, 4)
				if err != nil {
					return err
				}
				// The size and data messages must stay paired per
				// source; the list length encodes the sender.
				wantLen := st.Source
				if err := verifyList(r.v.Heap, mt, head, wantLen, 4, true); err != nil {
					return fmt.Errorf("from %d: %w", st.Source, err)
				}
				seen[st.Source] = true
			}
			if !seen[1] || !seen[2] {
				return fmt.Errorf("sources %v", seen)
			}
			return nil
		}
		head := buildLinkedList(r.v, mt, r.e.Comm.Rank(), 4)
		return r.e.OSend(r.th, head, 0, 4)
	})
}

func TestFCallErrorsPropagateToManagedCaller(t *testing.T) {
	// A managed program that misuses System.MP gets the error through
	// Thread.Call, not a crash.
	const prog = `
.method main (0) void
  ldc.i4 4  newarr int32
  ldc.i4 9  ldc.i4 0
  intern mp.send
  ret
.end
`
	runRanks(t, 2, nil, func(r *rank) error {
		main, err := r.v.Assemble(prog)
		if err != nil {
			return err
		}
		_, err = r.th.Call(main)
		if err == nil {
			return errors.New("send to rank 9 of 2 succeeded")
		}
		if !strings.Contains(err.Error(), "mp.send") {
			return fmt.Errorf("error lacks FCall context: %v", err)
		}
		return nil
	})
}

func TestEnginePolicyAlwaysPinNonBlocking(t *testing.T) {
	// With PolicyAlwaysPin, Isend/Irecv pin eagerly and Wait unpins;
	// pin counts must balance and no conditional requests appear.
	runRanks(t, 2, []Option{WithPolicy(PolicyAlwaysPin)}, func(r *rank) error {
		h := r.v.Heap
		if r.e.Comm.Rank() == 0 {
			msg, _ := h.NewInt32Array([]int32{5})
			id, err := r.e.Isend(r.th, msg, 1, 0)
			if err != nil {
				return err
			}
			if !h.Pinned(msg) {
				return errors.New("always-pin Isend did not pin")
			}
			if _, err := r.e.Wait(r.th, id); err != nil {
				return err
			}
			if h.Pinned(msg) {
				return errors.New("pin not released at Wait")
			}
			if r.e.Stats.CondPins != 0 {
				return errors.New("conditional pins under always-pin")
			}
			return nil
		}
		buf, _ := h.NewInt32Array(make([]int32, 1))
		_, err := r.e.Recv(r.th, buf, 0, 0)
		return err
	})
}

func TestOBcastOfNullFromRootFails(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		_, err := r.e.OBcast(r.th, vm.NullRef, 0)
		if r.e.Comm.Rank() == 0 {
			// Serializing null is legal (a null tree): receivers get null.
			if err != nil {
				return fmt.Errorf("root: %v", err)
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("non-root: %v", err)
		}
		return nil
	})
}

func TestOGatherRejectsNonArray(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		node, _ := r.v.Heap.AllocClass(mt)
		_, err := r.e.OGather(r.th, node, 0)
		if !errors.Is(err, ErrNotArray) {
			return fmt.Errorf("non-array OGather: %v", err)
		}
		// Both ranks bail before communicating, so no cleanup needed.
		return nil
	})
}

func TestManagedGCDuringMPWorkload(t *testing.T) {
	// A managed program that allocates garbage while exchanging
	// messages: collections interleave with transport and nothing is
	// lost. This is the closest managed analogue of the paper's
	// deployment scenario.
	const prog = `
.method main (0) int32
  .locals 4
  ; locals: 0=buf 1=iter 2=rank 3=junk
  intern mp.rank  stloc 2
  ldc.i4 256  newarr int32  stloc 0
  ldc.i4 60  stloc 1
loop:
  ldloc 1  brfalse done
  ; churn: allocate a short-lived array every iteration
  ldc.i4 2048  newarr int64  stloc 3
  ldloc 2  brtrue receiver
  ldloc 0  ldc.i4 0  ldloc 1  stelem
  ldloc 0  ldc.i4 1  ldc.i4 7  intern mp.send
  ldloc 0  ldc.i4 1  ldc.i4 7  intern mp.recv  pop
  ldloc 0  ldc.i4 0  ldelem
  ldloc 1  ceq  brfalse fail
  br next
receiver:
  ldloc 0  ldc.i4 0  ldc.i4 7  intern mp.recv  pop
  ldloc 0  ldc.i4 0  ldc.i4 7  intern mp.send
next:
  ldloc 1  ldc.i4 1  sub  stloc 1
  br loop
done:
  intern gc.scavenges
  conv.f2i
  pop
  ldc.i4 0
  ret.val
fail:
  ldc.i4 1
  ret.val
.end
`
	runRanks(t, 2, nil, func(r *rank) error {
		main, err := r.v.Assemble(prog)
		if err != nil {
			return err
		}
		out, err := r.th.Call(main)
		if err != nil {
			return err
		}
		if out.Int() != 0 {
			return fmt.Errorf("rank %d failed", r.e.Comm.Rank())
		}
		if r.v.Heap.Stats.Scavenges == 0 {
			return errors.New("no collections during workload; test ineffective")
		}
		return nil
	})
}
