package core

import (
	"errors"
	"fmt"
	"testing"

	"motor/internal/vm"
)

func TestEngineAllgather(t *testing.T) {
	const n = 4
	runRanks(t, n, nil, func(r *rank) error {
		h := r.v.Heap
		mine, _ := h.NewInt32Array([]int32{int32(r.e.Comm.Rank() * 3)})
		all, _ := h.NewInt32Array(make([]int32, n))
		if err := r.e.Allgather(r.th, mine, all); err != nil {
			return err
		}
		for i, v := range h.Int32Slice(all) {
			if v != int32(i*3) {
				return fmt.Errorf("allgather[%d]=%d", i, v)
			}
		}
		// Size mismatch must fail at the mp layer.
		small, _ := h.NewInt32Array(make([]int32, 1))
		if err := r.e.Allgather(r.th, mine, small); err == nil {
			return errors.New("undersized allgather recv accepted")
		}
		return nil
	})
}

func TestEngineSendrecvRing(t *testing.T) {
	const n = 3
	runRanks(t, n, nil, func(r *rank) error {
		h := r.v.Heap
		me := r.e.Comm.Rank()
		right, left := (me+1)%n, (me+n-1)%n
		// Everyone shifts simultaneously for several rounds; the
		// combined operation must never deadlock.
		val := int32(me)
		for round := 0; round < 5; round++ {
			out, _ := h.NewInt32Array([]int32{val})
			in, _ := h.NewInt32Array(make([]int32, 1))
			st, err := r.e.Sendrecv(r.th, out, right, 9, in, left, 9)
			if err != nil {
				return err
			}
			if st.Source != left {
				return fmt.Errorf("round %d: source %d", round, st.Source)
			}
			val = h.Int32Slice(in)[0]
		}
		// After n rounds mod n, the value returns home... 5 rounds on
		// 3 ranks: value originated at (me - 5) mod 3.
		want := int32((me + 2*n - 5%n) % n)
		if val != want {
			return fmt.Errorf("rank %d final %d, want %d", me, val, want)
		}
		return nil
	})
}

func TestEngineSendrecvIntegrity(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		node, _ := r.v.Heap.AllocClass(mt)
		buf, _ := r.v.Heap.NewInt32Array(make([]int32, 1))
		if _, err := r.e.Sendrecv(r.th, node, 1-r.e.Comm.Rank(), 0, buf, 1-r.e.Comm.Rank(), 0); !errors.Is(err, ErrObjectModel) {
			return fmt.Errorf("ref-bearing sendrecv: %v", err)
		}
		return nil
	})
}

// TestManagedAllgatherSendrecv exercises the new FCalls from masm.
func TestManagedAllgatherSendrecv(t *testing.T) {
	const prog = `
.method main (0) int32
  .locals 4
  ; locals: 0=mine 1=all 2=rank 3=tmp
  intern mp.rank  stloc 2
  ldc.i4 1  newarr int32  stloc 0
  ldloc 0  ldc.i4 0  ldloc 2  ldc.i4 10  mul  stelem
  intern mp.size  newarr int32  stloc 1
  ldloc 0  ldloc 1  intern mp.allgather
  ; check all[1] == 10
  ldloc 1  ldc.i4 1  ldelem
  ldc.i4 10  ceq  brfalse fail
  ; sendrecv ring with 2 ranks: partner = 1 - rank
  ldc.i4 1  ldloc 2  sub  stloc 3
  ldloc 0
  ldloc 3  ldc.i4 4
  ldloc 1
  ldloc 3  ldc.i4 4
  intern mp.sendrecv
  pop
  ; received value = partner*10 at all[0]
  ldloc 1  ldc.i4 0  ldelem
  ldloc 3  ldc.i4 10  mul
  ceq  brfalse fail
  ldc.i4 0
  ret.val
fail:
  ldc.i4 1
  ret.val
.end
`
	runRanks(t, 2, nil, func(r *rank) error {
		main, err := r.v.Assemble(prog)
		if err != nil {
			return err
		}
		out, err := r.th.Call(main)
		if err != nil {
			return err
		}
		if out.Int() != 0 {
			return fmt.Errorf("managed allgather/sendrecv failed on rank %d", r.e.Comm.Rank())
		}
		return nil
	})
}

func TestHeapInvariantsAfterWorkload(t *testing.T) {
	// Full engine workload, then the debug verifier sweeps the heap.
	runRanks(t, 2, nil, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		h := r.v.Heap
		for i := 0; i < 10; i++ {
			if r.e.Comm.Rank() == 0 {
				head := buildLinkedList(r.v, mt, 5, 16)
				if err := r.e.OSend(r.th, head, 1, i); err != nil {
					return err
				}
				buf, _ := h.NewInt32Array(make([]int32, 64))
				if _, err := r.e.Recv(r.th, buf, 1, i); err != nil {
					return err
				}
			} else {
				if _, _, err := r.e.ORecv(r.th, 0, i); err != nil {
					return err
				}
				msg, _ := h.NewInt32Array(make([]int32, 64))
				if err := r.e.Send(r.th, msg, 0, i); err != nil {
					return err
				}
			}
			r.th.CollectYoung()
			if err := h.CheckInvariants(); err != nil {
				return fmt.Errorf("iter %d: %w", i, err)
			}
		}
		r.th.CollectFull()
		return h.CheckInvariants()
	})
}

func TestSelfSendThroughEngine(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		h := r.v.Heap
		me := r.e.Comm.Rank()
		out, _ := h.NewInt32Array([]int32{int32(me + 7)})
		id, err := r.e.Isend(r.th, out, me, 3)
		if err != nil {
			return err
		}
		in, _ := h.NewInt32Array(make([]int32, 1))
		if _, err := r.e.Recv(r.th, in, me, 3); err != nil {
			return err
		}
		if _, err := r.e.Wait(r.th, id); err != nil {
			return err
		}
		if got := h.Int32Slice(in)[0]; got != int32(me+7) {
			return fmt.Errorf("self-send got %d", got)
		}
		return nil
	})
}

var _ = vm.NullRef // keep the import when tests shuffle
