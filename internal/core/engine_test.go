package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"motor/internal/mp"
	"motor/internal/vm"
)

// rank bundles one rank's VM, engine and managed thread for tests.
type rank struct {
	v  *vm.VM
	e  *Engine
	th *vm.Thread
}

// runRanks builds an n-rank shm world, one VM per rank, and runs body
// once per rank on its own goroutine and managed thread.
func runRanks(t *testing.T, n int, opts []Option, body func(r *rank) error) {
	t.Helper()
	worlds, err := mp.NewLocalWorlds(mp.ChannelShm, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(w *mp.World) {
			v := vm.New(vm.Config{
				Name: fmt.Sprintf("rank%d", w.Rank()),
				Heap: vm.HeapConfig{YoungSize: 64 << 10, InitialElder: 512 << 10, ArenaMax: 64 << 20},
			})
			e := Attach(v, w, opts...)
			th := v.StartThread("main")
			defer th.End()
			defer w.Close()
			errc <- body(&rank{v: v, e: e, th: th})
		}(worlds[i])
	}
	deadline := time.After(30 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("ranks deadlocked")
		}
	}
}

func registerLinkedArray(v *vm.VM) *vm.MethodTable {
	mt, err := v.DeclareClass("LinkedArray")
	if err != nil {
		panic(err)
	}
	i32arr := v.ArrayType(vm.KindInt32, nil, 1)
	if err := v.CompleteClass(mt, nil, []vm.FieldSpec{
		{Name: "array", Kind: vm.KindRef, Type: i32arr, Transportable: true},
		{Name: "next", Kind: vm.KindRef, Type: mt, Transportable: true},
		{Name: "next2", Kind: vm.KindRef, Type: mt},
		{Name: "id", Kind: vm.KindInt32},
	}); err != nil {
		panic(err)
	}
	return mt
}

func TestEnginePingPong(t *testing.T) {
	for _, policy := range []PinPolicy{PolicyMotor, PolicyAlwaysPin} {
		policy := policy
		t.Run(fmt.Sprintf("policy=%d", policy), func(t *testing.T) {
			runRanks(t, 2, []Option{WithPolicy(policy)}, func(r *rank) error {
				h := r.v.Heap
				const iters = 30
				if r.e.Comm.Rank() == 0 {
					for i := 0; i < iters; i++ {
						msg, err := h.NewInt32Array([]int32{int32(i), int32(i * 2), int32(i * 3)})
						if err != nil {
							return err
						}
						if err := r.e.Send(r.th, msg, 1, 0); err != nil {
							return err
						}
						reply, err := h.NewInt32Array(make([]int32, 3))
						if err != nil {
							return err
						}
						if _, err := r.e.Recv(r.th, reply, 1, 0); err != nil {
							return err
						}
						got := h.Int32Slice(reply)
						if got[0] != int32(i)+1 {
							return fmt.Errorf("iter %d: reply %v", i, got)
						}
					}
					return nil
				}
				for i := 0; i < iters; i++ {
					buf, err := h.NewInt32Array(make([]int32, 3))
					if err != nil {
						return err
					}
					if _, err := r.e.Recv(r.th, buf, 0, 0); err != nil {
						return err
					}
					vals := h.Int32Slice(buf)
					if vals[1] != int32(i*2) {
						return fmt.Errorf("iter %d: got %v", i, vals)
					}
					vals[0]++
					reply, err := h.NewInt32Array(vals)
					if err != nil {
						return err
					}
					if err := r.e.Send(r.th, reply, 0, 0); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

func TestObjectModelIntegrityChecks(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		if r.e.Comm.Rank() != 0 {
			// Participate in nothing; rank 0 only exercises local errors.
			return nil
		}
		h := r.v.Heap
		la := registerLinkedArray(r.v)
		node, _ := h.AllocClass(la)
		// A class with reference fields must be rejected outright.
		if err := r.e.Send(r.th, node, 1, 0); !errors.Is(err, ErrObjectModel) {
			return fmt.Errorf("ref-bearing class accepted: %v", err)
		}
		// Object arrays too.
		oa, _ := h.AllocArray(r.v.ArrayType(vm.KindRef, la, 1), 3)
		if err := r.e.Send(r.th, oa, 1, 0); !errors.Is(err, ErrObjectModel) {
			return fmt.Errorf("object array accepted: %v", err)
		}
		// Null objects.
		if err := r.e.Send(r.th, vm.NullRef, 1, 0); !errors.Is(err, ErrNullObject) {
			return fmt.Errorf("null accepted: %v", err)
		}
		// Range transport: only on arrays, bounds checked.
		arr, _ := h.NewInt32Array(make([]int32, 10))
		if err := r.e.SendRange(r.th, arr, 8, 5, 1, 0); err == nil {
			return errors.New("out-of-bounds range accepted")
		}
		flat, _ := h.AllocClass(r.v.MustNewClass("Flat", nil, []vm.FieldSpec{{Name: "x", Kind: vm.KindInt64}}))
		if err := r.e.SendRange(r.th, flat, 0, 1, 1, 0); !errors.Is(err, ErrNotArray) {
			return fmt.Errorf("range on class accepted: %v", err)
		}
		return nil
	})
}

func TestFlatClassTransport(t *testing.T) {
	// Classes without reference fields ARE transportable object-to-
	// object (paper §4.2.1).
	runRanks(t, 2, nil, func(r *rank) error {
		mt := r.v.MustNewClass("Particle", nil, []vm.FieldSpec{
			{Name: "x", Kind: vm.KindFloat64},
			{Name: "y", Kind: vm.KindFloat64},
			{Name: "charge", Kind: vm.KindInt32},
		})
		h := r.v.Heap
		if r.e.Comm.Rank() == 0 {
			p, _ := h.AllocClass(mt)
			h.SetScalar(p, mt.FieldByName("x"), vm.BitsFromF64(3.5))
			h.SetScalar(p, mt.FieldByName("y"), vm.BitsFromF64(-1.25))
			minusOne := int32(-1)
			h.SetScalar(p, mt.FieldByName("charge"), uint64(uint32(minusOne)))
			return r.e.Send(r.th, p, 1, 9)
		}
		p, _ := h.AllocClass(mt)
		st, err := r.e.Recv(r.th, p, 0, 9)
		if err != nil {
			return err
		}
		if st.Count != int(mt.InstanceSize) {
			return fmt.Errorf("count %d, want %d", st.Count, mt.InstanceSize)
		}
		if vm.F64FromBits(h.GetScalar(p, mt.FieldByName("x"))) != 3.5 {
			return errors.New("x corrupt")
		}
		if got := int32(uint32(h.GetScalar(p, mt.FieldByName("charge")))); got != -1 {
			return fmt.Errorf("charge %d", got)
		}
		return nil
	})
}

func TestArrayRangeTransport(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		h := r.v.Heap
		if r.e.Comm.Rank() == 0 {
			vals := make([]int32, 100)
			for i := range vals {
				vals[i] = int32(i)
			}
			arr, _ := h.NewInt32Array(vals)
			// Send elements [40, 50).
			return r.e.SendRange(r.th, arr, 40, 10, 1, 0)
		}
		arr, _ := h.NewInt32Array(make([]int32, 20))
		// Receive into elements [5, 15).
		st, err := r.e.RecvRange(r.th, arr, 5, 10, 0, 0)
		if err != nil {
			return err
		}
		if st.Count != 40 {
			return fmt.Errorf("count %d", st.Count)
		}
		got := h.Int32Slice(arr)
		if got[4] != 0 || got[5] != 40 || got[14] != 49 || got[15] != 0 {
			return fmt.Errorf("range landed wrong: %v", got)
		}
		return nil
	})
}

// TestPinningPolicyStats verifies the §7.4 decision table through the
// engine's counters.
func TestPinningPolicyStats(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		h := r.v.Heap
		c := r.e.Comm
		if c.Rank() == 0 {
			// (a) Eager send of a young object completes fast: no pin.
			msg, _ := h.NewInt32Array([]int32{1})
			if !h.IsYoung(msg) {
				return errors.New("expected young object")
			}
			if err := r.e.Send(r.th, msg, 1, 0); err != nil {
				return err
			}
			if r.e.Stats.PinAvoidedFast == 0 {
				return fmt.Errorf("fast send pinned anyway: %+v", r.e.Stats)
			}
			if r.e.Stats.PinDeferred != 0 {
				return errors.New("fast send took the deferred pin")
			}

			// (b) Elder object: never pinned even when the op waits.
			elder, _ := h.NewInt32Array([]int32{2})
			pop := r.th.PushFrame(&elder)
			r.th.CollectYoung() // promote
			pop()
			if h.IsYoung(elder) {
				return errors.New("not promoted")
			}
			if _, err := r.e.Recv(r.th, elder, 1, 1); err != nil {
				return err
			}
			if r.e.Stats.PinSkippedElder == 0 {
				return fmt.Errorf("elder recv not skipped: %+v", r.e.Stats)
			}
			if r.e.Stats.PinDeferred != 0 {
				return errors.New("elder recv pinned")
			}

			// (c) Young object blocking recv that must wait: deferred pin.
			young, _ := h.NewInt32Array(make([]int32, 4))
			if _, err := r.e.Recv(r.th, young, 1, 2); err != nil {
				return err
			}
			if r.e.Stats.PinDeferred != 1 {
				return fmt.Errorf("deferred pins %d, want 1", r.e.Stats.PinDeferred)
			}
			if h.Stats.Pins != h.Stats.Unpins {
				return fmt.Errorf("pin imbalance: %d vs %d", h.Stats.Pins, h.Stats.Unpins)
			}
			return nil
		}
		// Rank 1: partner.
		buf, _ := h.NewInt32Array(make([]int32, 1))
		if _, err := r.e.Recv(r.th, buf, 0, 0); err != nil {
			return err
		}
		// Delay so rank 0's receives must enter their polling-waits.
		time.Sleep(30 * time.Millisecond)
		m1, _ := h.NewInt32Array([]int32{7})
		if err := r.e.Send(r.th, m1, 0, 1); err != nil {
			return err
		}
		time.Sleep(30 * time.Millisecond)
		m2, _ := h.NewInt32Array([]int32{8, 8, 8, 8})
		return r.e.Send(r.th, m2, 0, 2)
	})
}

// TestConditionalPinLifecycle verifies the §4.3/§7.4 non-blocking
// rule: an Irecv into a young buffer registers a conditional pin
// request; a collection while the transfer is pending holds the pin
// (and donates the block); the first collection after completion
// discards the request.
func TestConditionalPinLifecycle(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		h := r.v.Heap
		if r.e.Comm.Rank() == 0 {
			buf, err := h.NewInt32Array(make([]int32, 256))
			if err != nil {
				return err
			}
			if !h.IsYoung(buf) {
				return errors.New("want young buffer")
			}
			id, err := r.e.Irecv(r.th, buf, 1, 0)
			if err != nil {
				return err
			}
			if r.e.Stats.CondPins != 1 {
				return fmt.Errorf("cond pins %d", r.e.Stats.CondPins)
			}
			if h.CondPinCount() != 1 {
				return errors.New("request not registered")
			}
			// Collect while in flight: the request must hold.
			before := buf
			pop := r.th.PushFrame(&buf)
			r.th.CollectYoung()
			pop()
			if buf != before {
				return errors.New("conditionally pinned buffer moved")
			}
			if h.Stats.CondPinsHeld == 0 {
				return errors.New("mark phase did not hold the request")
			}
			// Signal the sender that the collection happened.
			sig, _ := h.NewInt32Array([]int32{1})
			if err := r.e.Send(r.th, sig, 1, 9); err != nil {
				return err
			}
			st, err := r.e.Wait(r.th, id)
			if err != nil {
				return err
			}
			if st.Count != 256*4 {
				return fmt.Errorf("count %d", st.Count)
			}
			got := h.Int32Slice(buf)
			for i, v := range got {
				if v != int32(i^3) {
					return fmt.Errorf("elem %d = %d after pinned transfer", i, v)
				}
			}
			// After completion the next collection discards the request.
			r.th.CollectYoung()
			if h.CondPinCount() != 0 {
				return errors.New("request not discarded after completion")
			}
			return nil
		}
		// Rank 1: wait for the collection signal, then send payload.
		h1 := r.v.Heap
		sig, _ := h1.NewInt32Array(make([]int32, 1))
		if _, err := r.e.Recv(r.th, sig, 0, 9); err != nil {
			return err
		}
		vals := make([]int32, 256)
		for i := range vals {
			vals[i] = int32(i ^ 3)
		}
		payload, _ := h1.NewInt32Array(vals)
		return r.e.Send(r.th, payload, 0, 0)
	})
}

// TestPinningIsLoadBearing demonstrates the hazard the policy exists
// to prevent: with PolicyNever, a collection between Irecv and the
// data's arrival moves the buffer, the transfer lands at the stale
// address, and the payload is lost. The same schedule under
// PolicyMotor (previous test) delivers intact data.
func TestPinningIsLoadBearing(t *testing.T) {
	runRanks(t, 2, []Option{WithPolicy(PolicyNever)}, func(r *rank) error {
		h := r.v.Heap
		if r.e.Comm.Rank() == 0 {
			buf, _ := h.NewInt32Array(make([]int32, 256))
			id, err := r.e.Irecv(r.th, buf, 1, 0)
			if err != nil {
				return err
			}
			before := buf
			pop := r.th.PushFrame(&buf)
			r.th.CollectYoung()
			pop()
			if buf == before {
				return errors.New("buffer did not move; hazard not exercised")
			}
			sig, _ := h.NewInt32Array([]int32{1})
			if err := r.e.Send(r.th, sig, 1, 9); err != nil {
				return err
			}
			if _, err := r.e.Wait(r.th, id); err != nil {
				return err
			}
			// The data went to the stale address: the (moved) buffer
			// still holds zeros.
			got := h.Int32Slice(buf)
			for i, v := range got {
				if v != 0 {
					return fmt.Errorf("elem %d = %d: transfer followed the moved object, hazard not demonstrated", i, v)
				}
			}
			return nil
		}
		h1 := r.v.Heap
		sig, _ := h1.NewInt32Array(make([]int32, 1))
		if _, err := r.e.Recv(r.th, sig, 0, 9); err != nil {
			return err
		}
		vals := make([]int32, 256)
		for i := range vals {
			vals[i] = int32(i + 1)
		}
		payload, _ := h1.NewInt32Array(vals)
		return r.e.Send(r.th, payload, 0, 0)
	})
}

func TestIsendIrecvWaitTest(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		h := r.v.Heap
		if r.e.Comm.Rank() == 0 {
			msg, _ := h.NewInt32Array([]int32{42, 43})
			id, err := r.e.Isend(r.th, msg, 1, 0)
			if err != nil {
				return err
			}
			if _, err := r.e.Wait(r.th, id); err != nil {
				return err
			}
			if _, err := r.e.Wait(r.th, id); !errors.Is(err, ErrBadRequest) {
				return fmt.Errorf("double wait: %v", err)
			}
			if r.e.PendingRequests() != 0 {
				return errors.New("request leaked")
			}
			return nil
		}
		buf, _ := h.NewInt32Array(make([]int32, 2))
		id, err := r.e.Irecv(r.th, buf, 0, 0)
		if err != nil {
			return err
		}
		for {
			done, _, err := r.e.Test(r.th, id)
			if err != nil {
				return err
			}
			if done {
				break
			}
		}
		if got := h.Int32Slice(buf); got[0] != 42 || got[1] != 43 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
}

func TestEngineCollectives(t *testing.T) {
	runRanks(t, 4, nil, func(r *rank) error {
		h := r.v.Heap
		c := r.e.Comm
		if err := r.e.Barrier(r.th); err != nil {
			return err
		}
		// Bcast.
		buf, _ := h.NewInt32Array(make([]int32, 8))
		if c.Rank() == 2 {
			for i := 0; i < 8; i++ {
				h.SetElem(buf, i, uint64(uint32(int32(i*5))))
			}
		}
		if err := r.e.Bcast(r.th, buf, 2); err != nil {
			return err
		}
		for i, v := range h.Int32Slice(buf) {
			if v != int32(i*5) {
				return fmt.Errorf("bcast elem %d = %d", i, v)
			}
		}
		// Scatter / Gather.
		var send vm.Ref
		if c.Rank() == 0 {
			vals := make([]int32, 16)
			for i := range vals {
				vals[i] = int32(i)
			}
			send, _ = h.NewInt32Array(vals)
		}
		recv, _ := h.NewInt32Array(make([]int32, 4))
		if err := r.e.Scatter(r.th, send, recv, 0); err != nil {
			return err
		}
		for i, v := range h.Int32Slice(recv) {
			if v != int32(c.Rank()*4+i) {
				return fmt.Errorf("scatter elem %d = %d", i, v)
			}
		}
		// Double and gather back.
		vals := h.Int32Slice(recv)
		for i := range vals {
			vals[i] *= 2
		}
		mine, _ := h.NewInt32Array(vals)
		var all vm.Ref
		if c.Rank() == 0 {
			all, _ = h.NewInt32Array(make([]int32, 16))
		}
		if err := r.e.Gather(r.th, mine, all, 0); err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i, v := range h.Int32Slice(all) {
				if v != int32(i*2) {
					return fmt.Errorf("gather elem %d = %d", i, v)
				}
			}
		}
		return nil
	})
}
