package core

import (
	"fmt"
	"testing"

	"motor/internal/mp"
	"motor/internal/vm"
)

// quickenTestSrc is a module with an allocation-site exact receiver
// so the cached verdict carries non-trivial quickening facts.
const quickenTestSrc = `
.class Pair
  .field int32 a
  .field int32 b
.end
.method main (0) int32
  .locals 1
  newobj Pair
  stloc 0
  ldloc 0
  ldc.i4 20
  stfld Pair.a
  ldloc 0
  ldc.i4 22
  stfld Pair.b
  ldloc 0
  ldfld Pair.a
  ldloc 0
  ldfld Pair.b
  add
  ret.val
.end
`

// loadAndRun assembles, cache-verifies, quickens and executes the
// module on one rank, returning main's result.
func loadAndRun(r *rank, src string) (int64, error) {
	mod, err := r.v.AssembleModule(src)
	if err != nil {
		return 0, err
	}
	if err := r.e.VerifyModuleCached(src, mod.Methods); err != nil {
		return 0, err
	}
	r.e.QuickenModule(mod.Methods)
	for _, m := range mod.Methods {
		if !m.Quickened() {
			return 0, fmt.Errorf("%s: verified method not quickened", m.FullName())
		}
	}
	val, err := r.th.Call(mod.Main)
	if err != nil {
		return 0, err
	}
	return val.Int(), nil
}

// TestVerdictCacheAcrossRanks is the cache's reason to exist: N ranks
// with identical registration histories load the same module; the
// first pays the verifier fixpoint, the siblings hit the cache, and
// every rank's quickened execution (driven by the cached facts) still
// computes the right answer.
func TestVerdictCacheAcrossRanks(t *testing.T) {
	FlushVerdictCache()
	hits, misses := make(chan uint64, 4), make(chan uint64, 4)
	runRanks(t, 4, nil, func(r *rank) error {
		got, err := loadAndRun(r, quickenTestSrc)
		if err != nil {
			return err
		}
		if got != 42 {
			return fmt.Errorf("main = %d, want 42", got)
		}
		st := r.e.Quicken.Snapshot()
		if st.Methods == 0 {
			return fmt.Errorf("no methods quickened")
		}
		hits <- st.VerifyCacheHits
		misses <- st.VerifyCacheMisses
		return nil
	})
	var h, m uint64
	for i := 0; i < 4; i++ {
		h += <-hits
		m += <-misses
	}
	// Ranks race to the first load, so at least one miss fills the
	// cache and at least one sibling must have reused it; exactly one
	// miss in the common (serialized enough) case.
	if m == 0 || h == 0 || h+m != 4 {
		t.Fatalf("hits=%d misses=%d, want them to sum to 4 with both nonzero", h, m)
	}
}

// TestVerdictCacheFingerprintMiss: the same source against a VM with a
// divergent registry (an extra class shifts type indices) must not hit
// the cached verdict — its facts would bake wrong layouts.
func TestVerdictCacheFingerprintMiss(t *testing.T) {
	FlushVerdictCache()
	run := func(diverge bool) (uint64, uint64) {
		var hits, misses uint64
		worlds, err := mp.NewLocalWorlds(mp.ChannelShm, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		w := worlds[0]
		defer w.Close()
		v := vm.New(vm.Config{Name: "fp",
			Heap: vm.HeapConfig{YoungSize: 64 << 10, InitialElder: 512 << 10, ArenaMax: 64 << 20}})
		if diverge {
			v.MustNewClass("Divergence", nil, []vm.FieldSpec{{Name: "x", Kind: vm.KindInt64}})
		}
		e := Attach(v, w)
		th := v.StartThread("main")
		defer th.End()
		if _, err := loadAndRun(&rank{v: v, e: e, th: th}, quickenTestSrc); err != nil {
			t.Fatal(err)
		}
		st := e.Quicken.Snapshot()
		hits, misses = st.VerifyCacheHits, st.VerifyCacheMisses
		e.Close()
		return hits, misses
	}
	if _, m := run(false); m != 1 {
		t.Fatalf("first load: misses = %d, want 1", m)
	}
	if h, m := run(true); h != 0 || m != 1 {
		t.Fatalf("divergent registry: hits=%d misses=%d, want 0/1 (fingerprint must differ)", h, m)
	}
	if h, m := run(false); h != 1 || m != 0 {
		t.Fatalf("matching registry: hits=%d misses=%d, want 1/0", h, m)
	}
	FlushVerdictCache()
	if h, m := run(false); h != 0 || m != 1 {
		t.Fatalf("after flush: hits=%d misses=%d, want 0/1", h, m)
	}
}
