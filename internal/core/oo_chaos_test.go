package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"motor/internal/mp"
	"motor/internal/pal"
	"motor/internal/pal/fault"
	"motor/internal/vm"
)

// OO-op chaos coverage: every object operation under transport faults
// must either complete or fail with a typed mp.ErrTransport — never
// hang (runSockRanks' deadline enforces that) and never leak a pooled
// serialization buffer. Chunk targets are shrunk so the streams span
// many chunks and the faults strike mid-stream.

// ooChaosOpts forces multi-chunk streams over the 512-byte eager
// threshold used below: chunks ride the rendezvous path, so kills hit
// RTS/CTS/DATA exchanges in the middle of a pipelined stream.
var ooChaosOpts = []Option{WithOOChunk(2 << 10)}

const ooChaosEagerMax = 512

// ooChaosCheck asserts the per-rank postcondition: complete-or-typed,
// no pooled-buffer leak, no request leak, heap pin-clean.
func ooChaosCheck(r *rank, err error) error {
	if err != nil && !errors.Is(err, mp.ErrTransport) {
		return fmt.Errorf("untyped failure: %v", err)
	}
	if out := r.e.BufferOutstanding(); out != 0 {
		return fmt.Errorf("%d pooled buffers leaked (err=%v)", out, err)
	}
	if out := r.e.Comm.Outstanding(); out != 0 {
		return fmt.Errorf("%d requests leaked (err=%v)", out, err)
	}
	return heapClean(r)
}

// resetPlan builds a platform set for n ranks with a connection reset
// on victim's nth matching write.
func resetPlan(n, victim, nth int, seed int64) []pal.Platform {
	plats := make([]pal.Platform, n)
	plats[victim] = fault.New(pal.Default, fault.Plan{Seed: seed, Rules: []fault.Rule{
		{Op: fault.OpWrite, Kind: fault.KindReset, Nth: nth},
	}})
	return plats
}

// delayPlan stalls every write on victim — the op must still complete.
func delayPlan(n, victim int, seed int64) []pal.Platform {
	plats := make([]pal.Platform, n)
	plats[victim] = fault.New(pal.Default, fault.Plan{Seed: seed, Rules: []fault.Rule{
		{Op: fault.OpWrite, Kind: fault.KindDelay, Delay: time.Millisecond, Count: 1 << 30},
	}})
	return plats
}

func TestOOChaosOSendORecv(t *testing.T) {
	cases := []struct {
		name      string
		plats     func() []pal.Platform
		wantClean bool // every rank must succeed (delay-only plans)
	}{
		// Writes: #1 registration, #2 mesh identify, then stream
		// traffic. Different Nth values strike the first RTS, a
		// mid-stream DATA frame, and the tail of the stream.
		{"sender-reset-early", func() []pal.Platform { return resetPlan(2, 0, 3, 11) }, false},
		{"sender-reset-mid", func() []pal.Platform { return resetPlan(2, 0, 6, 12) }, false},
		{"receiver-reset-cts", func() []pal.Platform { return resetPlan(2, 1, 3, 13) }, false},
		{"receiver-reset-late", func() []pal.Platform { return resetPlan(2, 1, 5, 14) }, false},
		{"sender-delayed", func() []pal.Platform { return delayPlan(2, 0, 15) }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := runSockRanksOpts(t, tc.plats(), ooChaosEagerMax, ooChaosOpts, func(r *rank) error {
				mt := registerLinkedArray(r.v)
				var err error
				if r.e.Comm.Rank() == 0 {
					head := buildLinkedList(r.v, mt, 30, 64) // ~10 KiB, several chunks
					err = r.e.OSend(r.th, head, 1, 0)
				} else {
					var head vm.Ref
					head, _, err = r.e.ORecv(r.th, 0, 0)
					if err == nil {
						if verr := verifyList(r.v.Heap, mt, head, 30, 64, true); verr != nil {
							return verr
						}
					}
				}
				if tc.wantClean && err != nil {
					return fmt.Errorf("delay-only plan failed: %v", err)
				}
				return ooChaosCheck(r, err)
			})
			for rk, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", rk, err)
				}
			}
		})
	}
}

func TestOOChaosOBcast(t *testing.T) {
	cases := []struct {
		name  string
		plats func() []pal.Platform
	}{
		{"root-reset", func() []pal.Platform { return resetPlan(3, 0, 5, 21) }},
		{"leaf-reset", func() []pal.Platform { return resetPlan(3, 2, 4, 22) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := runSockRanksOpts(t, tc.plats(), ooChaosEagerMax, ooChaosOpts, func(r *rank) error {
				mt := registerLinkedArray(r.v)
				var obj vm.Ref
				if r.e.Comm.Rank() == 0 {
					obj = buildLinkedList(r.v, mt, 20, 64)
				}
				_, err := r.e.OBcast(r.th, obj, 0)
				return ooChaosCheck(r, err)
			})
			for rk, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", rk, err)
				}
			}
		})
	}
}

func TestOOChaosOScatter(t *testing.T) {
	cases := []struct {
		name  string
		plats func() []pal.Platform
	}{
		{"root-reset", func() []pal.Platform { return resetPlan(3, 0, 6, 31) }},
		{"receiver-reset", func() []pal.Platform { return resetPlan(3, 1, 4, 32) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := runSockRanksOpts(t, tc.plats(), ooChaosEagerMax, ooChaosOpts, func(r *rank) error {
				mt := registerLinkedArray(r.v)
				h := r.v.Heap
				var arr vm.Ref
				if r.e.Comm.Rank() == 0 {
					guard := &vm.RefRoots{Refs: []vm.Ref{vm.NullRef}}
					r.v.AddRootProvider(guard)
					a, err := h.AllocArray(r.v.ArrayType(vm.KindRef, mt, 1), 9)
					if err != nil {
						return err
					}
					guard.Refs[0] = a
					for i := 0; i < 9; i++ {
						node, err := h.AllocClass(mt)
						if err != nil {
							return err
						}
						h.SetScalar(node, mt.FieldByName("id"), uint64(uint32(int32(i))))
						h.SetElemRef(guard.Refs[0], i, node)
					}
					arr = guard.Refs[0]
					r.v.RemoveRootProvider(guard)
				}
				_, err := r.e.OScatter(r.th, arr, 0)
				return ooChaosCheck(r, err)
			})
			for rk, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", rk, err)
				}
			}
		})
	}
}

func TestOOChaosOGather(t *testing.T) {
	cases := []struct {
		name  string
		plats func() []pal.Platform
	}{
		{"root-reset", func() []pal.Platform { return resetPlan(3, 0, 4, 41) }},
		{"sender-reset", func() []pal.Platform { return resetPlan(3, 2, 4, 42) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := runSockRanksOpts(t, tc.plats(), ooChaosEagerMax, ooChaosOpts, func(r *rank) error {
				mt := registerLinkedArray(r.v)
				h := r.v.Heap
				guard := &vm.RefRoots{Refs: []vm.Ref{vm.NullRef}}
				r.v.AddRootProvider(guard)
				a, err := h.AllocArray(r.v.ArrayType(vm.KindRef, mt, 1), 4)
				if err != nil {
					return err
				}
				guard.Refs[0] = a
				for i := 0; i < 4; i++ {
					node, err := h.AllocClass(mt)
					if err != nil {
						return err
					}
					h.SetScalar(node, mt.FieldByName("id"), uint64(uint32(int32(i))))
					h.SetElemRef(guard.Refs[0], i, node)
				}
				arr := guard.Refs[0]
				r.v.RemoveRootProvider(guard)
				pop := r.th.PushFrame(&arr)
				defer pop()
				_, err = r.e.OGather(r.th, arr, 0)
				return ooChaosCheck(r, err)
			})
			for rk, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", rk, err)
				}
			}
		})
	}
}

// TestOOChaosRepeatedExchange hammers one pair with cached sends under
// a probabilistic reset: whatever round the cut lands in, both sides
// come out typed and clean.
func TestOOChaosRepeatedExchange(t *testing.T) {
	plats := []pal.Platform{nil, fault.New(pal.Default, fault.Plan{Seed: 77, Rules: []fault.Rule{
		{Op: fault.OpWrite, Kind: fault.KindReset, Nth: 12},
	}})}
	errs := runSockRanksOpts(t, plats, ooChaosEagerMax, ooChaosOpts, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		var err error
		for round := 0; round < 6 && err == nil; round++ {
			if r.e.Comm.Rank() == 0 {
				head := buildLinkedList(r.v, mt, 10, 32)
				pop := r.th.PushFrame(&head)
				err = r.e.OSend(r.th, head, 1, round)
				pop()
			} else {
				_, _, err = r.e.ORecv(r.th, 0, round)
			}
		}
		return ooChaosCheck(r, err)
	})
	for rk, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rk, err)
		}
	}
}
