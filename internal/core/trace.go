package core

import (
	"motor/internal/obs"
	"motor/internal/vm"
)

// Tracing hooks for the engine layer. Every helper starts with the
// one-atomic-load gate (obs.Active); with tracing off they cost one
// predictable branch.

// opBegin opens a KOp span for an engine operation. peer < 0 (any-
// source receives, peerless collectives) encodes as ^0 so the export
// layer can omit it.
func (e *Engine) opBegin(op obs.OpCode, bytes, peer int) *obs.Tracer {
	tr := obs.Active()
	if tr != nil {
		p := ^uint64(0)
		if peer >= 0 {
			p = uint64(peer)
		}
		tr.Begin(e.lane, obs.KOp, uint64(op), uint64(bytes), p)
	}
	return tr
}

// opEnd closes a blocking operation's span and feeds the blocking-op
// latency histogram. A zero duration means the flight recorder
// sampled the span out — no sample, not a zero-latency op.
func (e *Engine) opEnd(tr *obs.Tracer) {
	if tr != nil {
		if d := tr.End(e.lane); d > 0 {
			tr.Record(obs.HistBlockingOp, d)
		}
	}
}

// opEndQuick closes a non-blocking operation's posting span without a
// histogram sample (post cost is not an operation latency).
func (e *Engine) opEndQuick(tr *obs.Tracer) {
	if tr != nil {
		tr.End(e.lane)
	}
}

// notePin emits a pin-decision instant under the current op span.
func (e *Engine) notePin(d obs.PinDecision, ref vm.Ref) {
	if tr := obs.Active(); tr != nil {
		tr.Instant(e.lane, obs.KPin, uint64(d), uint64(ref))
	}
}
