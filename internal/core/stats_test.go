package core

import (
	"fmt"
	"sync"
	"testing"

	"motor/internal/obs"
)

// TestStatsConcurrentSnapshot hammers the engines with ping-pong
// traffic while another goroutine continuously snapshots their
// counters — the monitoring pattern of mpstat -metrics. Under -race
// this fails if any increment or the Snapshot reads are non-atomic.
func TestStatsConcurrentSnapshot(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := r.e.Stats.Snapshot()
				if st.Ops < last {
					panic(fmt.Sprintf("ops went backwards: %d -> %d", last, st.Ops))
				}
				last = st.Ops
			}
		}()

		h := r.v.Heap
		const iters = 200
		err := func() error {
			peer := 1 - r.e.Comm.Rank()
			for i := 0; i < iters; i++ {
				msg, err := h.NewInt32Array([]int32{int32(i)})
				if err != nil {
					return err
				}
				if r.e.Comm.Rank() == 0 {
					if err := r.e.Send(r.th, msg, peer, 0); err != nil {
						return err
					}
					if _, err := r.e.Recv(r.th, msg, peer, 0); err != nil {
						return err
					}
				} else {
					if _, err := r.e.Recv(r.th, msg, peer, 0); err != nil {
						return err
					}
					if err := r.e.Send(r.th, msg, peer, 0); err != nil {
						return err
					}
				}
			}
			return nil
		}()
		close(stop)
		wg.Wait()
		if err != nil {
			return err
		}
		st := r.e.Stats.Snapshot()
		if st.Ops != 2*iters {
			return fmt.Errorf("ops = %d, want %d", st.Ops, 2*iters)
		}
		return nil
	})
}

// TestRegisterStats verifies the registry snapshot exposes all the
// engine-visible subsystems with their live counter values.
func TestRegisterStats(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		h := r.v.Heap
		msg, err := h.NewInt32Array([]int32{1, 2, 3})
		if err != nil {
			return err
		}
		peer := 1 - r.e.Comm.Rank()
		if r.e.Comm.Rank() == 0 {
			if err := r.e.Send(r.th, msg, peer, 0); err != nil {
				return err
			}
		} else if _, err := r.e.Recv(r.th, msg, peer, 0); err != nil {
			return err
		}
		if err := r.e.Barrier(r.th); err != nil {
			return err
		}

		reg := new(obs.Registry)
		r.e.RegisterStats(reg)
		snap := reg.Snapshot()
		got := map[string]map[string]uint64{}
		for _, g := range snap.Groups {
			got[g.Name] = map[string]uint64{}
			for _, f := range g.Fields {
				got[g.Name][f.Name] = f.Value
			}
		}
		for _, want := range []string{"engine", "device", "coll", "gc", "transport"} {
			if _, ok := got[want]; !ok {
				return fmt.Errorf("snapshot missing group %q (have %v)", want, snap.Groups)
			}
		}
		if got["engine"]["Ops"] == 0 {
			return fmt.Errorf("engine.Ops = 0 after traffic")
		}
		if got["transport"]["FramesSent"] == 0 {
			return fmt.Errorf("transport.FramesSent = 0 after traffic")
		}
		return nil
	})
}
