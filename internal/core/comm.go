package core

import (
	"fmt"

	"motor/internal/mp"
	"motor/internal/obs"
	"motor/internal/vm"
)

// Communicator management and reductions for managed code — the
// "selected communicator routines" and remaining "selected collective
// routines" of the paper's §7. Managed programs hold communicators as
// integer handles (id 0 is the world communicator); construction is
// collective and SPMD-deterministic like the underlying mp layer.

// ErrBadComm flags an unknown communicator handle.
var ErrBadComm = fmt.Errorf("core: unknown communicator handle")

// WorldComm is the handle of the world communicator.
const WorldComm int32 = 0

// NullComm is returned to callers excluded from a Split.
const NullComm int32 = -1

func (e *Engine) commByID(id int32) (*mp.Comm, error) {
	if id == WorldComm {
		return e.Comm, nil
	}
	if c, ok := e.comms[id]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("%w: %d", ErrBadComm, id)
}

func (e *Engine) registerComm(c *mp.Comm) int32 {
	if e.comms == nil {
		e.comms = make(map[int32]*mp.Comm)
	}
	e.nextComm++
	e.comms[e.nextComm] = c
	return e.nextComm
}

// RegisterComm adds an externally constructed communicator — the
// merged parent/children communicator from dynamic process
// management, for example — to the managed handle table so every
// communicator-addressed operation and FCall can use it.
func (e *Engine) RegisterComm(c *mp.Comm) int32 { return e.registerComm(c) }

// CommDup duplicates a communicator (collective over its members) and
// returns the new handle.
func (e *Engine) CommDup(t *vm.Thread, id int32) (int32, error) {
	t.PollGC()
	defer t.PollGC()
	c, err := e.commByID(id)
	if err != nil {
		return NullComm, err
	}
	return e.registerComm(c.Dup()), nil
}

// CommSplit partitions a communicator by color (collective). Members
// passing a negative color participate but receive NullComm.
func (e *Engine) CommSplit(t *vm.Thread, id int32, color, key int) (int32, error) {
	t.PollGC()
	defer t.PollGC()
	c, err := e.commByID(id)
	if err != nil {
		return NullComm, err
	}
	sub, err := c.Split(color, key)
	if err != nil {
		return NullComm, err
	}
	if sub == nil {
		return NullComm, nil
	}
	return e.registerComm(sub), nil
}

// CommRank returns the caller's rank within the communicator.
func (e *Engine) CommRank(id int32) (int, error) {
	c, err := e.commByID(id)
	if err != nil {
		return -1, err
	}
	return c.Rank(), nil
}

// CommSize returns the communicator's size.
func (e *Engine) CommSize(id int32) (int, error) {
	c, err := e.commByID(id)
	if err != nil {
		return -1, err
	}
	return c.Size(), nil
}

// CommFree releases a communicator handle (the world communicator
// cannot be freed).
func (e *Engine) CommFree(id int32) error {
	if id == WorldComm {
		return fmt.Errorf("%w: cannot free the world communicator", ErrBadComm)
	}
	if _, ok := e.comms[id]; !ok {
		return fmt.Errorf("%w: %d", ErrBadComm, id)
	}
	delete(e.comms, id)
	return nil
}

// --- communicator-addressed operations --------------------------------------

// SendOn is Send over an explicit communicator.
func (e *Engine) SendOn(t *vm.Thread, id int32, obj vm.Ref, dest, tag int) error {
	c, err := e.commByID(id)
	if err != nil {
		return err
	}
	return e.sendCommonOn(t, c, obj, dest, tag, false, -1, -1)
}

// RecvOn is Recv over an explicit communicator.
func (e *Engine) RecvOn(t *vm.Thread, id int32, obj vm.Ref, source, tag int) (mp.Status, error) {
	c, err := e.commByID(id)
	if err != nil {
		return mp.Status{}, err
	}
	return e.recvCommonOn(t, c, obj, source, tag, -1, -1)
}

// BarrierOn synchronizes an explicit communicator.
func (e *Engine) BarrierOn(t *vm.Thread, id int32) error {
	c, err := e.commByID(id)
	if err != nil {
		return err
	}
	t.PollGC()
	defer t.PollGC()
	tr := e.opBegin(obs.OpBarrier, 0, -1)
	defer e.opEnd(tr)
	return e.noteErr(c.Barrier())
}

// BcastOn broadcasts over an explicit communicator.
func (e *Engine) BcastOn(t *vm.Thread, id int32, obj vm.Ref, root int) error {
	c, err := e.commByID(id)
	if err != nil {
		return err
	}
	defer t.PushFrame(&obj)()
	t.PollGC()
	defer t.PollGC()
	buf, err := e.wholeBuf(t, obj)
	if err != nil {
		return err
	}
	bump(&e.Stats.Ops, 1)
	tr := e.opBegin(obs.OpBcast, buf.Len(), root)
	defer e.opEnd(tr)
	unpin := e.collectivePin(obj)
	defer unpin()
	return e.noteErr(c.Bcast(buf.Bytes(), root))
}

// AllgatherOn is Allgather over an explicit communicator.
func (e *Engine) AllgatherOn(t *vm.Thread, id int32, sendArr, recvArr vm.Ref) error {
	c, err := e.commByID(id)
	if err != nil {
		return err
	}
	return e.allgatherOn(t, c, sendArr, recvArr)
}

// AlltoallOn is Alltoall over an explicit communicator.
func (e *Engine) AlltoallOn(t *vm.Thread, id int32, sendArr, recvArr vm.Ref) error {
	c, err := e.commByID(id)
	if err != nil {
		return err
	}
	return e.alltoallOn(t, c, sendArr, recvArr)
}

// --- reductions over simple arrays ---------------------------------------------

// datatypeFor infers the reduction datatype from a simple array's
// element kind. Only the kinds with defined reduction semantics are
// accepted.
func datatypeFor(mt *vm.MethodTable) (mp.Datatype, error) {
	if mt.Kind != vm.TKArray {
		return mp.Datatype{}, ErrNotArray
	}
	switch mt.Elem {
	case vm.KindUint8:
		return mp.TypeUint8, nil
	case vm.KindInt32:
		return mp.TypeInt32, nil
	case vm.KindInt64:
		return mp.TypeInt64, nil
	case vm.KindFloat64:
		return mp.TypeFloat64, nil
	default:
		return mp.Datatype{}, fmt.Errorf("core: no reduction semantics for %s arrays", mt.Elem)
	}
}

// Reduce combines each rank's simple array into the root's recv array
// with the given operator. recvArr is ignored on non-roots.
func (e *Engine) Reduce(t *vm.Thread, sendArr, recvArr vm.Ref, op mp.Op, root int) error {
	return e.reduceOn(t, e.Comm, sendArr, recvArr, op, root, false)
}

// Allreduce combines into every rank's recv array.
func (e *Engine) Allreduce(t *vm.Thread, sendArr, recvArr vm.Ref, op mp.Op) error {
	return e.reduceOn(t, e.Comm, sendArr, recvArr, op, 0, true)
}

// ReduceOn / AllreduceOn are the communicator-addressed forms.
func (e *Engine) ReduceOn(t *vm.Thread, id int32, sendArr, recvArr vm.Ref, op mp.Op, root int) error {
	c, err := e.commByID(id)
	if err != nil {
		return err
	}
	return e.reduceOn(t, c, sendArr, recvArr, op, root, false)
}

// AllreduceOn combines into every member's recv array.
func (e *Engine) AllreduceOn(t *vm.Thread, id int32, sendArr, recvArr vm.Ref, op mp.Op) error {
	c, err := e.commByID(id)
	if err != nil {
		return err
	}
	return e.reduceOn(t, c, sendArr, recvArr, op, 0, true)
}

func (e *Engine) reduceOn(t *vm.Thread, c *mp.Comm, sendArr, recvArr vm.Ref, op mp.Op, root int, all bool) error {
	defer t.PushFrame(&sendArr, &recvArr)()
	t.PollGC()
	defer t.PollGC()
	sendBuf, err := e.wholeBuf(t, sendArr)
	if err != nil {
		return err
	}
	dt, err := datatypeFor(e.VM.Heap.MT(sendArr))
	if err != nil {
		return err
	}
	bump(&e.Stats.Ops, 1)
	opc := obs.OpReduce
	peer := root
	if all {
		opc, peer = obs.OpAllreduce, -1
	}
	tr := e.opBegin(opc, sendBuf.Len(), peer)
	defer e.opEnd(tr)
	unpinSend := e.collectivePin(sendArr)
	defer unpinSend()
	needRecv := all || c.Rank() == root
	var recvBytes []byte
	if needRecv {
		recvBuf, err := e.wholeBuf(t, recvArr)
		if err != nil {
			return err
		}
		rdt, err := datatypeFor(e.VM.Heap.MT(recvArr))
		if err != nil {
			return err
		}
		if rdt != dt || recvBuf.Len() != sendBuf.Len() {
			return fmt.Errorf("core: reduce buffers disagree: %s/%d vs %s/%d bytes",
				dt.Name, sendBuf.Len(), rdt.Name, recvBuf.Len())
		}
		unpinRecv := e.collectivePin(recvArr)
		defer unpinRecv()
		recvBytes = recvBuf.Bytes()
	}
	if all {
		return e.noteErr(c.Allreduce(sendBuf.Bytes(), recvBytes, dt, op))
	}
	return e.noteErr(c.Reduce(sendBuf.Bytes(), recvBytes, dt, op, root))
}
