package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"motor/internal/mp"
	"motor/internal/mp/channel"
	"motor/internal/pal"
	"motor/internal/pal/fault"
	"motor/internal/vm"
)

// Adversarial pinning tests: a transport fault strikes between Isend
// and Wait, exactly where the paper's conditional pin requests (§7.4)
// are live. The engine must surface a typed ErrTransport, the dead
// request's conditional pin must be discarded at the next mark phase,
// and the heap must come out with no leaked pins and intact
// invariants.

// runSockRanks mirrors runRanks over a fault-injectable sock world:
// one platform per rank, and per-rank body errors returned instead of
// failed so tests can assert on the error class.
func runSockRanks(t *testing.T, plats []pal.Platform, eagerMax int, body func(r *rank) error) []error {
	t.Helper()
	return runSockRanksOpts(t, plats, eagerMax, nil, body)
}

// runSockRanksOpts is runSockRanks with engine options (the OO chaos
// tests shrink chunk targets to force multi-chunk streams).
func runSockRanksOpts(t *testing.T, plats []pal.Platform, eagerMax int, opts []Option, body func(r *rank) error) []error {
	t.Helper()
	n := len(plats)
	rp := channel.RetryPolicy{
		DialAttempts:      4,
		BootstrapAttempts: 3,
		BackoffBase:       time.Millisecond,
		BackoffMax:        10 * time.Millisecond,
		AcceptTimeout:     5 * time.Second,
	}
	worlds, err := mp.NewSockWorldsOn(plats, n, eagerMax, rp)
	if err != nil {
		t.Fatalf("world construction: %v", err)
	}
	type res struct {
		rank int
		err  error
	}
	resc := make(chan res, n)
	for i := 0; i < n; i++ {
		go func(idx int, w *mp.World) {
			v := vm.New(vm.Config{
				Name: fmt.Sprintf("rank%d", w.Rank()),
				Heap: vm.HeapConfig{YoungSize: 64 << 10, InitialElder: 512 << 10, ArenaMax: 64 << 20},
			})
			e := Attach(v, w, opts...)
			th := v.StartThread("main")
			defer th.End()
			defer w.Close()
			resc <- res{idx, body(&rank{v: v, e: e, th: th})}
		}(i, worlds[i])
	}
	errs := make([]error, n)
	deadline := time.After(30 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case r := <-resc:
			errs[r.rank] = r.err
		case <-deadline:
			t.Fatal("ranks hung: transport fault did not surface")
		}
	}
	return errs
}

// heapClean asserts the post-fault heap contract: the conditional pin
// registered for the dead request was dropped, nothing stays pinned,
// and the heap invariants hold.
func heapClean(r *rank) error {
	r.th.CollectYoung() // mark phase resolves conditional pin requests
	h := r.v.Heap
	if n := h.CondPinCount(); n != 0 {
		return fmt.Errorf("CondPinCount = %d after collection, want 0", n)
	}
	gs := h.Stats
	if gs.Pins != gs.Unpins {
		return fmt.Errorf("leaked explicit pins: Pins=%d Unpins=%d", gs.Pins, gs.Unpins)
	}
	if err := h.CheckInvariants(); err != nil {
		return fmt.Errorf("heap invariants: %w", err)
	}
	return nil
}

// TestCondPinDiscardedOnTransportFault kills a rendezvous transfer at
// two points (the receiver's CTS write and the sender's DATA write)
// while the sender sits between Isend and Wait with a conditional pin
// registered for its young buffer.
func TestCondPinDiscardedOnTransportFault(t *testing.T) {
	const eagerMax = 512
	cases := []struct {
		name  string
		plats func() []pal.Platform
	}{
		// Receiver's writes: #1 registration, #2 mesh identify, #3 CTS.
		{"reset-cts", func() []pal.Platform {
			return []pal.Platform{nil, fault.New(pal.Default, fault.Plan{Seed: 5, Rules: []fault.Rule{
				{Op: fault.OpWrite, Kind: fault.KindReset, Nth: 3},
			}})}
		}},
		// Sender's writes: #1 registration, #2 RTS header, #3 DATA header.
		{"reset-data", func() []pal.Platform {
			return []pal.Platform{fault.New(pal.Default, fault.Plan{Seed: 5, Rules: []fault.Rule{
				{Op: fault.OpWrite, Kind: fault.KindReset, Nth: 3},
			}}), nil}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := runSockRanks(t, tc.plats(), eagerMax, func(r *rank) error {
				h := r.v.Heap
				buf, err := h.NewUint8Array(make([]byte, 4<<10)) // young, above eagerMax
				if err != nil {
					return err
				}
				release := r.th.PushFrame(&buf)
				defer release()
				var id int32
				if r.e.Comm.Rank() == 0 {
					id, err = r.e.Isend(r.th, buf, 1, 7)
				} else {
					id, err = r.e.Irecv(r.th, buf, 0, 7)
				}
				if err != nil {
					return fmt.Errorf("start: %w", err)
				}
				if r.e.Stats.CondPins != 1 {
					return fmt.Errorf("CondPins = %d after immediate op, want 1", r.e.Stats.CondPins)
				}
				if _, err := r.e.Wait(r.th, id); !errors.Is(err, mp.ErrTransport) {
					return fmt.Errorf("Wait err = %v, want ErrTransport", err)
				}
				if r.e.Stats.TransportErrors != 1 {
					return fmt.Errorf("engine TransportErrors = %d, want 1", r.e.Stats.TransportErrors)
				}
				if err := heapClean(r); err != nil {
					return err
				}
				if h.Stats.CondPinsDropped < 1 {
					return fmt.Errorf("CondPinsDropped = %d, want >= 1", h.Stats.CondPinsDropped)
				}
				return nil
			})
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", r, err)
				}
			}
		})
	}
}

// TestBlockingOpTransportFault covers the blocking path: a Send/Recv
// pair whose connection resets mid-protocol must return ErrTransport
// from the polling-wait (no conditional pins involved; the deferred
// pin must still be released).
func TestBlockingOpTransportFault(t *testing.T) {
	plats := []pal.Platform{nil, fault.New(pal.Default, fault.Plan{Seed: 2, Rules: []fault.Rule{
		{Op: fault.OpWrite, Kind: fault.KindReset, Nth: 3}, // CTS write
	}})}
	errs := runSockRanks(t, plats, 512, func(r *rank) error {
		h := r.v.Heap
		buf, err := h.NewUint8Array(make([]byte, 4<<10))
		if err != nil {
			return err
		}
		release := r.th.PushFrame(&buf)
		defer release()
		if r.e.Comm.Rank() == 0 {
			err = r.e.Send(r.th, buf, 1, 3)
		} else {
			_, err = r.e.Recv(r.th, buf, 0, 3)
		}
		if !errors.Is(err, mp.ErrTransport) {
			return fmt.Errorf("err = %v, want ErrTransport", err)
		}
		if r.e.Stats.TransportErrors != 1 {
			return fmt.Errorf("engine TransportErrors = %d, want 1", r.e.Stats.TransportErrors)
		}
		return heapClean(r)
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestCollectiveTransportFault runs an engine-level allreduce whose
// ring is cut by a connection reset on rank 2's first collective data
// write. Every rank must surface a typed ErrTransport (never hang),
// the collective drain must leave no request registered with the
// device, and the heap must come out pin-clean with invariants
// intact.
func TestCollectiveTransportFault(t *testing.T) {
	const n = 4
	// Rank 2's sock writes: #1 registration, #2..#3 mesh identify to
	// ranks 0 and 1, #4 first collective frame.
	plats := make([]pal.Platform, n)
	plats[2] = fault.New(pal.Default, fault.Plan{Seed: 9, Rules: []fault.Rule{
		{Op: fault.OpWrite, Kind: fault.KindReset, Nth: 4},
	}})
	errs := runSockRanks(t, plats, 0, func(r *rank) error {
		h := r.v.Heap
		send, err := h.NewUint8Array(make([]byte, 64<<10))
		if err != nil {
			return err
		}
		release := r.th.PushFrame(&send)
		defer release()
		recv, err := h.NewUint8Array(make([]byte, 64<<10))
		if err != nil {
			return err
		}
		release2 := r.th.PushFrame(&recv)
		defer release2()
		if err := r.e.Allreduce(r.th, send, recv, mp.OpSum); !errors.Is(err, mp.ErrTransport) {
			return fmt.Errorf("allreduce err = %v, want ErrTransport", err)
		}
		if r.e.Stats.TransportErrors != 1 {
			return fmt.Errorf("engine TransportErrors = %d, want 1", r.e.Stats.TransportErrors)
		}
		if out := r.e.Comm.Outstanding(); out != 0 {
			return fmt.Errorf("%d requests leaked past the failed collective", out)
		}
		return heapClean(r)
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}
