package core

import (
	"encoding/binary"
	"fmt"

	"motor/internal/mp"
	"motor/internal/obs"
	"motor/internal/serial"
	"motor/internal/vm"
)

// The extended object-oriented operations (paper §4.2.2, §7.5),
// distinguished by the "O" prefix: OSend / ORecv / OBcast / OScatter
// / OGather. They transport arbitrary objects, arrays of objects and
// Transportable-annotated object trees through the custom serializer.
// Serialization buffers come from the runtime-owned buffer stack, so
// — unlike the regular operations — no pinning is ever needed: the
// transport only touches native memory (§7.4).
//
// Since the v2 stream format (serial/stream.go) the representation is
// never materialized whole: the sender pipelines — Isend of chunk k
// overlaps serialization of chunk k+1, with the polling-wait / GC-poll
// discipline preserved between chunks — and the receiver sizes its
// buffer per chunk from the probe, so the v1 8-byte size prefix (and
// its unbounded trust in the wire-claimed size) is gone. Every chunk
// claim is capped against MaxOOMessage before any allocation.
//
// Point-to-point streams run the type-table cache: repeated sends of
// the same class shapes to the same peer transmit 5-byte table
// references; a receiver that cannot resolve one NACKs, and the
// sender answers with the self-describing table blob (serial/cache.go
// documents the epoch protocol). A sender that emitted at least one
// table reference therefore waits for the receiver's single ACK/NACK
// control packet — symmetric ref-bearing OSends between two ranks can
// deadlock, exactly like v1's symmetric rendezvous sends.
//
// The OO message categories travel in reserved tag spaces above
// MaxUserTag (mp/oo.go), so interleaved OO operations on one comm
// never cross-match each other or regular user-tag traffic.

// ooChunkTarget returns the stream chunk target for point-to-point
// streams.
func (e *Engine) ooChunkTarget() int { return e.ooChunk }

// chunkSpan records one explicit-identity KChunk span (chunk work
// overlaps other chunk work, so Begin/End stack nesting cannot hold).
func (e *Engine) chunkSpan(dir uint64, idx int, start int64, bytes int) {
	tr := obs.Active()
	if tr == nil {
		return
	}
	tr.Span(e.lane, obs.KChunk, tr.NewSpanID(), tr.Current(e.lane), start, dir, uint64(idx), uint64(bytes))
}

func spanStart() int64 {
	if tr := obs.Active(); tr != nil {
		return tr.Now()
	}
	return 0
}

// waitYielding drives one request to completion with the polling-wait.
func (e *Engine) waitYielding(t *vm.Thread, req *mp.Request) error {
	for {
		done, _, err := e.Comm.Test(req)
		if done {
			return err
		}
		e.waitStep(t, req)
	}
}

// probeYielding polls for the next OO message in a space, yielding to
// the collector between polls. A dead peer surfaces as a typed error
// from the probe's progress pass — never a hang.
func (e *Engine) probeYielding(t *vm.Thread, source int, sp mp.OOSpace, tag int) (mp.Status, error) {
	for {
		ok, st, err := e.Comm.IprobeOO(source, sp, tag)
		if err != nil {
			return st, err
		}
		if ok {
			return st, nil
		}
		e.idle(t)
	}
}

// streamOut pipelines one serialization stream to dest: two pooled
// chunk buffers rotate so chunk k is on the wire while chunk k+1 is
// serialized. On error the in-flight request is always drained, so no
// pooled buffer leaks.
func (e *Engine) streamOut(t *vm.Thread, sw *serial.StreamWriter, dest, tag int, sp mp.OOSpace) error {
	var bufs [2][]byte
	bufs[0] = e.bufs.get(e.ooChunk+512, &e.Stats)
	bufs[1] = e.bufs.get(e.ooChunk+512, &e.Stats)
	defer func() {
		e.bufs.put(bufs[0])
		e.bufs.put(bufs[1])
	}()
	var inflight *mp.Request
	var sendStart int64
	idx := 0
	total := 0
	for !sw.Done() {
		serStart := spanStart()
		chunk, err := sw.Next(bufs[idx%2][:0])
		if err != nil {
			if inflight != nil {
				_ = e.waitYielding(t, inflight) // drain; serializer error wins
			}
			return err
		}
		bufs[idx%2] = chunk
		e.chunkSpan(0, idx, serStart, len(chunk))
		if inflight != nil {
			if err := e.waitYielding(t, inflight); err != nil {
				return err
			}
			e.chunkSpan(1, idx-1, sendStart, 0)
		}
		sendStart = spanStart()
		req, err := e.Comm.IsendOO(chunk, dest, sp, tag)
		if err != nil {
			return err
		}
		bump(&e.Stats.OOChunksSent, 1)
		total += len(chunk)
		inflight = req
		idx++
	}
	bump(&e.Stats.SerializedBytes, uint64(total))
	if inflight != nil {
		if err := e.waitYielding(t, inflight); err != nil {
			return err
		}
		e.chunkSpan(1, idx-1, sendStart, 0)
	}
	return nil
}

// mergeTTStats folds one stream's table-cache activity into the
// engine's serial.ttcache counters.
func (e *Engine) mergeTTStats(sw *serial.StreamWriter) {
	bump(&e.TTCache.Hits, uint64(sw.TableRefs))
	bump(&e.TTCache.Misses, uint64(sw.TableFulls))
	bump(&e.TTCache.TableBytes, uint64(sw.TableBytes))
}

// awaitTableAck is the sender's tail of the cache protocol: having
// emitted at least one table reference, wait for the receiver's single
// control packet — ACK (all references resolved) completes the
// operation; NACK is answered with the stream's full table blob.
func (e *Engine) awaitTableAck(t *vm.Thread, sw *serial.StreamWriter, dest, tag int) error {
	for {
		ok, err := e.Comm.PollCtrlOO(dest, mp.OOSpaceAck, tag)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		ok, err = e.Comm.PollCtrlOO(dest, mp.OOSpaceNack, tag)
		if err != nil {
			return err
		}
		if ok {
			bump(&e.TTCache.Nacks, 1)
			blobBuf := e.bufs.get(1024, &e.Stats)
			blob, err := sw.TableBlob(blobBuf)
			if err != nil {
				e.bufs.put(blobBuf)
				return err
			}
			req, err := e.Comm.IsendOO(blob, dest, mp.OOSpaceTable, tag)
			if err != nil {
				e.bufs.put(blob)
				return err
			}
			err = e.waitYielding(t, req)
			e.bufs.put(blob)
			return err
		}
		e.idle(t)
	}
}

// OSend transports an object tree to dest (blocking).
func (e *Engine) OSend(t *vm.Thread, obj vm.Ref, dest, tag int) error {
	defer t.PushFrame(&obj)()
	t.PollGC()
	defer t.PollGC()
	bump(&e.Stats.OOSends, 1)
	tr := e.opBegin(obs.OpOSend, 0, dest)
	defer e.opEnd(tr)
	sw := serial.NewStreamWriter(e.VM.Heap, obj, e.serOpts, e.ooChunkTarget(), e.peerCache(dest))
	e.VM.AddRootProvider(sw)
	defer e.VM.RemoveRootProvider(sw)
	err := e.streamOut(t, sw, dest, tag, mp.OOSpaceData)
	e.mergeTTStats(sw)
	if err != nil {
		return e.noteErr(err)
	}
	if sw.TableRefs > 0 {
		if err := e.awaitTableAck(t, sw, dest, tag); err != nil {
			return e.noteErr(err)
		}
	}
	return nil
}

// streamIn receives one stream: per-chunk probe (size from the probe,
// capped against MaxOOMessage before any allocation), receive directly
// into the reader's accumulation buffer, incremental parse. useCache
// engages the receiver side of the type-table cache protocol.
func (e *Engine) streamIn(t *vm.Thread, source, tag int, sp mp.OOSpace, useCache bool) (vm.Ref, mp.Status, error) {
	st, err := e.probeYielding(t, source, sp, tag)
	if err != nil {
		return vm.NullRef, st, err
	}
	src := st.Source // locks an AnySource receive to one stream
	if st.Count < 0 || st.Count > e.maxOO {
		return vm.NullRef, st, fmt.Errorf("%w: %d claimed, cap %d", ErrOversize, st.Count, e.maxOO)
	}
	var mirror *serial.TableMirror
	if useCache {
		mirror = e.mirror(src)
	}
	sr := serial.NewStreamReader(e.VM, mirror, e.bufs.get(st.Count, &e.Stats))
	e.VM.AddRootProvider(sr)
	defer e.VM.RemoveRootProvider(sr)
	defer func() { e.bufs.put(sr.Buffer()) }()
	total := 0
	idx := 0
	for {
		if st.Count < 0 || st.Count > e.maxOO-total {
			return vm.NullRef, st, fmt.Errorf("%w: %d accumulated + %d claimed, cap %d", ErrOversize, total, st.Count, e.maxOO)
		}
		recvStart := spanStart()
		req, err := e.Comm.IrecvOO(sr.Grow(st.Count), src, sp, tag)
		if err != nil {
			return vm.NullRef, st, err
		}
		if err := e.waitYielding(t, req); err != nil {
			return vm.NullRef, st, err
		}
		bump(&e.Stats.OOChunksRecvd, 1)
		e.chunkSpan(2, idx, recvStart, st.Count)
		idx++
		total += st.Count
		if err := sr.Commit(st.Count); err != nil {
			return vm.NullRef, st, err
		}
		if sr.Ended() {
			break
		}
		st, err = e.probeYielding(t, src, sp, tag)
		if err != nil {
			return vm.NullRef, st, err
		}
	}
	if useCache && sr.SawRefs() {
		if sr.MissingTables() > 0 {
			if ref, err := e.recvTableBlob(t, sr, src, tag); err != nil {
				return ref, st, err
			}
		} else if err := e.Comm.SendCtrlOO(src, mp.OOSpaceAck, tag); err != nil {
			return vm.NullRef, st, err
		}
	}
	ref, err := sr.Finish()
	return ref, st, err
}

// recvTableBlob is the receiver's NACK path: ask the sender for the
// full table and install it, unstalling the parse.
func (e *Engine) recvTableBlob(t *vm.Thread, sr *serial.StreamReader, src, tag int) (vm.Ref, error) {
	if err := e.Comm.SendCtrlOO(src, mp.OOSpaceNack, tag); err != nil {
		return vm.NullRef, err
	}
	bst, err := e.probeYielding(t, src, mp.OOSpaceTable, tag)
	if err != nil {
		return vm.NullRef, err
	}
	if bst.Count < 0 || bst.Count > e.maxOO {
		return vm.NullRef, fmt.Errorf("%w: table blob of %d, cap %d", ErrOversize, bst.Count, e.maxOO)
	}
	blob := e.bufs.get(bst.Count, &e.Stats)[:bst.Count]
	defer e.bufs.put(blob)
	req, err := e.Comm.IrecvOO(blob, src, mp.OOSpaceTable, tag)
	if err != nil {
		return vm.NullRef, err
	}
	if err := e.waitYielding(t, req); err != nil {
		return vm.NullRef, err
	}
	return vm.NullRef, sr.InstallTable(blob)
}

// ORecv receives an object tree, reconstructing it on this rank's
// heap. It returns the new root object.
func (e *Engine) ORecv(t *vm.Thread, source, tag int) (vm.Ref, mp.Status, error) {
	t.PollGC()
	defer t.PollGC()
	bump(&e.Stats.OORecvs, 1)
	tr := e.opBegin(obs.OpORecv, 0, source)
	defer e.opEnd(tr)
	ref, st, err := e.streamIn(t, source, tag, mp.OOSpaceData, true)
	return ref, st, e.noteErr(err)
}

// OBcast broadcasts the root's object tree; non-roots receive and
// return the reconstructed tree (the root returns obj unchanged).
// Chunks ride the buffered Bcast under a 5-byte [len,last] header per
// round; chunk targets stay below the eager threshold so a rank that
// bails (oversize cap) cannot strand the root in a rendezvous.
func (e *Engine) OBcast(t *vm.Thread, obj vm.Ref, root int) (vm.Ref, error) {
	defer t.PushFrame(&obj)()
	t.PollGC()
	defer t.PollGC()
	tr := e.opBegin(obs.OpOBcast, 0, root)
	defer e.opEnd(tr)
	target := e.ooChunk
	if em := e.Comm.EagerMax() - 64; em > 0 && target > em {
		target = em
	}
	hdr := make([]byte, 5)
	if e.Comm.Rank() == root {
		bump(&e.Stats.OOSends, 1)
		sw := serial.NewStreamWriter(e.VM.Heap, obj, e.serOpts, target, nil)
		e.VM.AddRootProvider(sw)
		defer e.VM.RemoveRootProvider(sw)
		buf := e.bufs.get(target+512, &e.Stats)
		defer func() { e.bufs.put(buf) }()
		idx := 0
		total := 0
		for !sw.Done() {
			serStart := spanStart()
			chunk, err := sw.Next(buf[:0])
			if err != nil {
				return vm.NullRef, err
			}
			buf = chunk
			e.chunkSpan(0, idx, serStart, len(chunk))
			binary.LittleEndian.PutUint32(hdr, uint32(len(chunk)))
			hdr[4] = 0
			if sw.Done() {
				hdr[4] = 1
			}
			if err := e.Comm.Bcast(hdr, root); err != nil {
				return vm.NullRef, e.noteErr(err)
			}
			sendStart := spanStart()
			if err := e.Comm.Bcast(chunk, root); err != nil {
				return vm.NullRef, e.noteErr(err)
			}
			bump(&e.Stats.OOChunksSent, 1)
			e.chunkSpan(1, idx, sendStart, len(chunk))
			idx++
			total += len(chunk)
		}
		bump(&e.Stats.SerializedBytes, uint64(total))
		return obj, nil
	}
	bump(&e.Stats.OORecvs, 1)
	sr := serial.NewStreamReader(e.VM, nil, e.bufs.get(target, &e.Stats))
	e.VM.AddRootProvider(sr)
	defer e.VM.RemoveRootProvider(sr)
	defer func() { e.bufs.put(sr.Buffer()) }()
	total := 0
	idx := 0
	for {
		if err := e.Comm.Bcast(hdr, root); err != nil {
			return vm.NullRef, e.noteErr(err)
		}
		n := int(binary.LittleEndian.Uint32(hdr))
		last := hdr[4] != 0
		if n < 0 || n > e.maxOO-total {
			return vm.NullRef, fmt.Errorf("%w: %d accumulated + %d claimed, cap %d", ErrOversize, total, n, e.maxOO)
		}
		recvStart := spanStart()
		if err := e.Comm.Bcast(sr.Grow(n), root); err != nil {
			return vm.NullRef, e.noteErr(err)
		}
		bump(&e.Stats.OOChunksRecvd, 1)
		e.chunkSpan(2, idx, recvStart, n)
		idx++
		total += n
		if err := sr.Commit(n); err != nil {
			return vm.NullRef, err
		}
		if last {
			break
		}
	}
	return sr.Finish()
}

// refsGuard roots intermediate references across allocating calls.
type refsGuard struct {
	refs []vm.Ref
}

// VisitRoots implements vm.RootProvider.
func (g *refsGuard) VisitRoots(visit func(vm.Ref) vm.Ref) {
	for i, r := range g.refs {
		if r != vm.NullRef {
			g.refs[i] = visit(r)
		}
	}
}

// loopback runs one stream writer straight into a local stream reader
// — the root's own part of an OO collective, taking the same
// serialize/deserialize copy semantics as the transported parts.
func (e *Engine) loopback(t *vm.Thread, sw *serial.StreamWriter) (vm.Ref, error) {
	sr := serial.NewStreamReader(e.VM, nil, e.bufs.get(e.ooChunk, &e.Stats))
	e.VM.AddRootProvider(sr)
	defer e.VM.RemoveRootProvider(sr)
	defer func() { e.bufs.put(sr.Buffer()) }()
	scratch := e.bufs.get(e.ooChunk+512, &e.Stats)
	defer func() { e.bufs.put(scratch) }()
	for !sw.Done() {
		chunk, err := sw.Next(scratch[:0])
		if err != nil {
			return vm.NullRef, err
		}
		scratch = chunk
		copy(sr.Grow(len(chunk)), chunk)
		if err := sr.Commit(len(chunk)); err != nil {
			return vm.NullRef, err
		}
		t.PollGC()
	}
	return sr.Finish()
}

// OScatter splits the root's object array across ranks: each rank
// (including the root) receives its contiguous sub-array as a fresh
// array object. Parts are streamed point-to-point in rank order under
// the OO collective tag space; the split representation (§7.5) makes
// each part independently deserializable — the capability the paper
// highlights as impossible with standard Java/CLI serialization.
func (e *Engine) OScatter(t *vm.Thread, arr vm.Ref, root int) (vm.Ref, error) {
	defer t.PushFrame(&arr)()
	t.PollGC()
	defer t.PollGC()
	tr := e.opBegin(obs.OpOScatter, 0, root)
	defer e.opEnd(tr)
	seq := e.Comm.NextOOSeq()
	if e.Comm.Rank() != root {
		bump(&e.Stats.OORecvs, 1)
		ref, _, err := e.streamIn(t, root, seq, mp.OOSpaceColl, false)
		return ref, e.noteErr(err)
	}
	bump(&e.Stats.OOSends, 1)
	h := e.VM.Heap
	if arr == vm.NullRef {
		return vm.NullRef, fmt.Errorf("serial: split of null array")
	}
	if mt := h.MT(arr); mt.Kind != vm.TKArray || mt.Rank != 1 {
		return vm.NullRef, fmt.Errorf("serial: split requires a rank-1 array, got %s", mt)
	}
	n := h.Length(arr)
	size := e.Comm.Size()
	guard := &refsGuard{refs: []vm.Ref{arr}}
	e.VM.AddRootProvider(guard)
	defer e.VM.RemoveRootProvider(guard)
	var firstErr error
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		lo, hi := serial.PartRange(n, size, r)
		sw, err := serial.NewStreamWriterPart(h, guard.refs[0], lo, hi, e.serOpts, e.ooChunkTarget())
		if err != nil {
			return vm.NullRef, err // arr is invalid: no part can be produced
		}
		e.VM.AddRootProvider(sw)
		err = e.streamOut(t, sw, r, seq, mp.OOSpaceColl)
		e.VM.RemoveRootProvider(sw)
		if err != nil && firstErr == nil {
			// Keep streaming to the remaining ranks so one dead peer
			// does not strand the others mid-collective.
			firstErr = err
		}
	}
	if firstErr != nil {
		return vm.NullRef, e.noteErr(firstErr)
	}
	lo, hi := serial.PartRange(n, size, root)
	sw, err := serial.NewStreamWriterPart(h, guard.refs[0], lo, hi, e.serOpts, e.ooChunkTarget())
	if err != nil {
		return vm.NullRef, err
	}
	e.VM.AddRootProvider(sw)
	defer e.VM.RemoveRootProvider(sw)
	bump(&e.Stats.OORecvs, 1)
	return e.loopback(t, sw)
}

// OGather reassembles per-rank object arrays into one array at the
// root ("the deserialization mechanism takes many split
// representations and reconstructs them into a single array", §7.5).
// Every rank streams its whole array to the root under the OO
// collective tag space; non-roots return the null reference.
func (e *Engine) OGather(t *vm.Thread, arr vm.Ref, root int) (vm.Ref, error) {
	defer t.PushFrame(&arr)()
	t.PollGC()
	defer t.PollGC()
	if arr == vm.NullRef {
		return vm.NullRef, ErrNullObject
	}
	mt := e.VM.Heap.MT(arr)
	if mt.Kind != vm.TKArray {
		return vm.NullRef, fmt.Errorf("%w: OGather of %s", ErrNotArray, mt)
	}
	bump(&e.Stats.OOSends, 1)
	tr := e.opBegin(obs.OpOGather, 0, root)
	defer e.opEnd(tr)
	seq := e.Comm.NextOOSeq()
	if e.Comm.Rank() != root {
		sw := serial.NewStreamWriter(e.VM.Heap, arr, e.serOpts, e.ooChunkTarget(), nil)
		e.VM.AddRootProvider(sw)
		defer e.VM.RemoveRootProvider(sw)
		if err := e.streamOut(t, sw, root, seq, mp.OOSpaceColl); err != nil {
			return vm.NullRef, e.noteErr(err)
		}
		return vm.NullRef, nil
	}
	bump(&e.Stats.OORecvs, 1)
	size := e.Comm.Size()
	guard := &refsGuard{refs: make([]vm.Ref, size+1)}
	guard.refs[size] = arr
	e.VM.AddRootProvider(guard)
	defer e.VM.RemoveRootProvider(guard)
	var firstErr error
	for r := 0; r < size; r++ {
		if r == root {
			sw := serial.NewStreamWriter(e.VM.Heap, guard.refs[size], e.serOpts, e.ooChunkTarget(), nil)
			e.VM.AddRootProvider(sw)
			ref, err := e.loopback(t, sw)
			e.VM.RemoveRootProvider(sw)
			if err != nil {
				return vm.NullRef, err
			}
			guard.refs[r] = ref
			continue
		}
		ref, _, err := e.streamIn(t, r, seq, mp.OOSpaceColl, false)
		if err != nil && firstErr == nil {
			// Keep draining the remaining senders so their streams
			// complete; the first error is reported after.
			firstErr = err
			continue
		}
		guard.refs[r] = ref
	}
	if firstErr != nil {
		return vm.NullRef, e.noteErr(firstErr)
	}
	return serial.GatherRefs(e.VM, guard.refs[:size])
}
