package core

import (
	"encoding/binary"
	"fmt"

	"motor/internal/mp"
	"motor/internal/obs"
	"motor/internal/serial"
	"motor/internal/vm"
)

// The extended object-oriented operations (paper §4.2.2, §7.5),
// distinguished by the "O" prefix: OSend / ORecv / OBcast / OScatter
// / OGather. They transport arbitrary objects, arrays of objects and
// Transportable-annotated object trees through the custom serializer.
// Serialization buffers come from the runtime-owned buffer stack, so
// — unlike the regular operations — no pinning is ever needed: the
// transport only touches native memory (§7.4).
//
// "Before sending the serialized buffer, Motor sends the size of the
// buffer. This ensures the receiver can prepare a sufficient buffer"
// (§7.5): every OO message travels as an 8-byte size prefix followed
// by the representation.

const ooSizeBytes = 8

// serialize flattens obj into a recycled buffer. The KSerial span
// carries the representation size (unknown before the walk), so it
// uses the explicit-identity Span form rather than Begin/End.
func (e *Engine) serialize(obj vm.Ref) ([]byte, error) {
	tr := obs.Active()
	var spanID, parent uint64
	var spanStart int64
	if tr != nil {
		spanID, parent, spanStart = tr.NewSpanID(), tr.Current(e.lane), tr.Now()
	}
	buf := e.bufs.get(256, &e.Stats)
	data, err := serial.Serialize(e.VM.Heap, obj, e.serOpts, buf)
	if err != nil {
		e.bufs.put(buf)
		return nil, err
	}
	bump(&e.Stats.SerializedBytes, uint64(len(data)))
	if tr != nil {
		tr.Span(e.lane, obs.KSerial, spanID, parent, spanStart, 0, uint64(len(data)))
	}
	return data, nil
}

// deserialize reconstructs an object tree, tracing the work as the
// inverse KSerial span.
func (e *Engine) deserialize(data []byte) (vm.Ref, error) {
	tr := obs.Active()
	var spanID, parent uint64
	var spanStart int64
	if tr != nil {
		spanID, parent, spanStart = tr.NewSpanID(), tr.Current(e.lane), tr.Now()
	}
	ref, err := serial.Deserialize(e.VM, data)
	if tr != nil {
		tr.Span(e.lane, obs.KSerial, spanID, parent, spanStart, 1, uint64(len(data)))
	}
	return ref, err
}

// OSend transports an object tree to dest (blocking).
func (e *Engine) OSend(t *vm.Thread, obj vm.Ref, dest, tag int) error {
	t.PollGC()
	defer t.PollGC()
	bump(&e.Stats.OOSends, 1)
	tr := e.opBegin(obs.OpOSend, 0, dest)
	defer e.opEnd(tr)
	data, err := e.serialize(obj)
	if err != nil {
		return err
	}
	defer e.bufs.put(data)
	var szb [ooSizeBytes]byte
	binary.LittleEndian.PutUint64(szb[:], uint64(len(data)))
	if err := e.Comm.Send(szb[:], dest, tag); err != nil {
		return err
	}
	return e.commSendYielding(t, data, dest, tag)
}

// commSendYielding sends native bytes with the polling-wait.
func (e *Engine) commSendYielding(t *vm.Thread, data []byte, dest, tag int) error {
	req, err := e.Comm.Isend(data, dest, tag)
	if err != nil {
		return err
	}
	for {
		done, _, err := e.Comm.Test(req)
		if done {
			return err
		}
		e.idle(t)
	}
}

// ORecv receives an object tree, reconstructing it on this rank's
// heap. It returns the new root object.
func (e *Engine) ORecv(t *vm.Thread, source, tag int) (vm.Ref, mp.Status, error) {
	t.PollGC()
	defer t.PollGC()
	bump(&e.Stats.OORecvs, 1)
	tr := e.opBegin(obs.OpORecv, 0, source)
	defer e.opEnd(tr)
	var szb [ooSizeBytes]byte
	st, err := e.commRecvYielding(t, szb[:], source, tag)
	if err != nil {
		return vm.NullRef, st, err
	}
	size := binary.LittleEndian.Uint64(szb[:])
	buf := e.bufs.get(int(size), &e.Stats)
	buf = buf[:size]
	defer e.bufs.put(buf)
	// The data message comes from the size message's source so an
	// AnySource receive stays correctly paired.
	st2, err := e.commRecvYielding(t, buf, st.Source, tag)
	if err != nil {
		return vm.NullRef, st2, err
	}
	ref, err := e.deserialize(buf)
	if err != nil {
		return vm.NullRef, st2, err
	}
	return ref, st2, nil
}

func (e *Engine) commRecvYielding(t *vm.Thread, buf []byte, source, tag int) (mp.Status, error) {
	req, err := e.Comm.Irecv(buf, source, tag)
	if err != nil {
		return mp.Status{}, err
	}
	for {
		done, st, err := e.Comm.Test(req)
		if done {
			return st, err
		}
		e.idle(t)
	}
}

// OBcast broadcasts the root's object tree; non-roots receive and
// return the reconstructed tree (the root returns obj unchanged).
func (e *Engine) OBcast(t *vm.Thread, obj vm.Ref, root int) (vm.Ref, error) {
	t.PollGC()
	defer t.PollGC()
	tr := e.opBegin(obs.OpOBcast, 0, root)
	defer e.opEnd(tr)
	isRoot := e.Comm.Rank() == root
	var data []byte
	szb := make([]byte, ooSizeBytes)
	if isRoot {
		bump(&e.Stats.OOSends, 1)
		var err error
		data, err = e.serialize(obj)
		if err != nil {
			return vm.NullRef, err
		}
		defer e.bufs.put(data)
		binary.LittleEndian.PutUint64(szb, uint64(len(data)))
	}
	if err := e.Comm.Bcast(szb, root); err != nil {
		return vm.NullRef, err
	}
	if !isRoot {
		bump(&e.Stats.OORecvs, 1)
		size := binary.LittleEndian.Uint64(szb)
		data = e.bufs.get(int(size), &e.Stats)[:size]
		defer e.bufs.put(data)
	}
	if err := e.Comm.Bcast(data, root); err != nil {
		return vm.NullRef, err
	}
	if isRoot {
		return obj, nil
	}
	return e.deserialize(data)
}

// OScatter splits the root's object array across ranks: each rank
// (including the root) receives its contiguous sub-array as a fresh
// array object. The split representation (§7.5) makes each part
// independently deserializable — the capability the paper highlights
// as impossible with standard Java/CLI serialization.
func (e *Engine) OScatter(t *vm.Thread, arr vm.Ref, root int) (vm.Ref, error) {
	t.PollGC()
	defer t.PollGC()
	tr := e.opBegin(obs.OpOScatter, 0, root)
	defer e.opEnd(tr)
	var parts [][]byte
	if e.Comm.Rank() == root {
		bump(&e.Stats.OOSends, 1)
		var err error
		parts, err = serial.SerializeSplit(e.VM.Heap, arr, e.Comm.Size(), e.serOpts)
		if err != nil {
			return vm.NullRef, err
		}
		for _, p := range parts {
			bump(&e.Stats.SerializedBytes, uint64(len(p)))
		}
	}
	mine, err := e.Comm.Scatterv(parts, root)
	if err != nil {
		return vm.NullRef, err
	}
	bump(&e.Stats.OORecvs, 1)
	return e.deserialize(mine)
}

// OGather reassembles per-rank object arrays into one array at the
// root ("the deserialization mechanism takes many split
// representations and reconstructs them into a single array", §7.5).
// Non-roots return the null reference.
func (e *Engine) OGather(t *vm.Thread, arr vm.Ref, root int) (vm.Ref, error) {
	t.PollGC()
	defer t.PollGC()
	if arr == vm.NullRef {
		return vm.NullRef, ErrNullObject
	}
	mt := e.VM.Heap.MT(arr)
	if mt.Kind != vm.TKArray {
		return vm.NullRef, fmt.Errorf("%w: OGather of %s", ErrNotArray, mt)
	}
	bump(&e.Stats.OOSends, 1)
	tr := e.opBegin(obs.OpOGather, 0, root)
	defer e.opEnd(tr)
	data, err := e.serialize(arr)
	if err != nil {
		return vm.NullRef, err
	}
	defer e.bufs.put(data)
	parts, err := e.Comm.Gatherv(data, root)
	if err != nil {
		return vm.NullRef, err
	}
	if e.Comm.Rank() != root {
		return vm.NullRef, nil
	}
	bump(&e.Stats.OORecvs, 1)
	return serial.DeserializeGather(e.VM, parts)
}
