package core

import (
	"errors"
	"fmt"
	"runtime"

	"motor/internal/mp"
	"motor/internal/obs"
	"motor/internal/vm"
)

// Regular MPI operations (paper §4.2.1): efficient object-to-object
// transport for objects without references and arrays of simple
// types. The count and datatype parameters of classic MPI are gone —
// message length is derived from the object — and sub-ranges are only
// available on arrays, where bounds are checkable.
//
// Every blocking operation follows the paper's FCall discipline
// (§7.4): GC poll on entry, quick completion test (fast operations
// never pin), pinning policy applied only when the operation actually
// enters its polling-wait, poll on exit.

// pinForWait applies the pinning policy at polling-wait entry for a
// blocking operation and returns the matching release function.
func (e *Engine) pinForWait(obj vm.Ref) func() {
	h := e.VM.Heap
	switch e.policy {
	case PolicyNever:
		return func() {}
	case PolicyAlwaysPin:
		// Eager pinning happened at operation start; nothing here.
		return func() {}
	default:
		if !h.IsYoung(obj) {
			// Elder residents are never moved: no pin needed.
			bump(&e.Stats.PinSkippedElder, 1)
			e.notePin(obs.PinSkippedElder, obj)
			return func() {}
		}
		bump(&e.Stats.PinDeferred, 1)
		e.notePin(obs.PinDeferred, obj)
		h.Pin(obj)
		return func() { h.Unpin(obj) }
	}
}

// pinEager applies PolicyAlwaysPin's operation-start pin.
func (e *Engine) pinEager(obj vm.Ref) func() {
	if e.policy != PolicyAlwaysPin || obj == vm.NullRef {
		return func() {}
	}
	bump(&e.Stats.PinEager, 1)
	e.notePin(obs.PinEager, obj)
	e.VM.Heap.Pin(obj)
	return func() { e.VM.Heap.Unpin(obj) }
}

// noteErr records transport-class completion failures (mp.ErrTransport)
// in the engine stats so a rank's exposure to peer loss is observable
// through MPStats / mpstat.
func (e *Engine) noteErr(err error) error {
	if err != nil && errors.Is(err, mp.ErrTransport) {
		bump(&e.Stats.TransportErrors, 1)
		// A lost peer is exactly the moment the last few milliseconds
		// of events matter: dump the flight recorder before the error
		// propagates and the evidence is overwritten.
		obs.FlightTrip("transport")
	}
	return err
}

// waitBlocking drives a request to completion with the polling-wait:
// progress, then GC poll, repeatedly (§7.4's three polling points are
// entry — in the callers —, this loop, and the exit poll).
func (e *Engine) waitBlocking(t *vm.Thread, c *mp.Comm, obj vm.Ref, req *mp.Request, op obs.OpCode) (mp.Status, error) {
	done, st, err := c.Test(req)
	if done {
		if e.policy == PolicyMotor && e.VM.Heap.IsYoung(obj) {
			bump(&e.Stats.PinAvoidedFast, 1)
			e.notePin(obs.PinAvoidedFast, obj)
		} else if e.policy == PolicyMotor {
			bump(&e.Stats.PinSkippedElder, 1)
			e.notePin(obs.PinSkippedElder, obj)
		}
		return st, e.noteErr(err)
	}
	// The operation enters its polling-wait: open the wait span first
	// so the pin decision below lands inside it — that nesting is the
	// §7.4 claim ("the pin is taken only when the wait is entered")
	// made visible in the trace.
	tr := obs.Active()
	if tr != nil {
		tr.Begin(e.lane, obs.KWait, uint64(op))
	}
	unpin := e.pinForWait(obj)
	defer unpin()
	defer func() {
		if tr != nil {
			if d := tr.End(e.lane); d > 0 {
				tr.Record(obs.HistRequestWait, d)
			}
		}
	}()
	// Watchdog heartbeat for the §7.4 polling-wait. A parked thread
	// (progress-engine mode) stops pulsing, but the watchdog keys on
	// wait-entry age, so a lost completion still trips it.
	obs.BeatEnter(e.lane, op, -1)
	defer obs.BeatExit(e.lane)
	for {
		done, st, err = c.Test(req)
		if done {
			return st, e.noteErr(err)
		}
		obs.BeatPulse(e.lane)
		e.waitStep(t, req)
	}
}

// idle is one step of the polling-wait: yield to the collector and
// release the processor for peer ranks (see adi.Device.idle).
func (e *Engine) idle(t *vm.Thread) {
	t.PollGC()
	runtime.Gosched()
}

// waitStep is one iteration of a blocking wait on req. Inline mode
// yields to the collector between the caller's progress passes (the
// classic polling-wait). With the background progress engine running,
// the thread instead parks — releasing the execution token for its
// whole sleep — until the engine's completion continuation fires, so
// a blocked thread burns no CPU and steals no token time from
// siblings or the progress loop.
func (e *Engine) waitStep(t *vm.Thread, req *mp.Request) {
	if e.progress != nil {
		ch := make(chan struct{})
		req.OnComplete(func() { close(ch) })
		t.Park(func() { <-ch })
		return
	}
	e.idle(t)
}

// Send transports a whole object (blocking, standard mode).
func (e *Engine) Send(t *vm.Thread, obj vm.Ref, dest, tag int) error {
	return e.sendCommon(t, obj, dest, tag, false, -1, -1)
}

// Ssend transports a whole object (blocking, synchronous mode).
func (e *Engine) Ssend(t *vm.Thread, obj vm.Ref, dest, tag int) error {
	return e.sendCommon(t, obj, dest, tag, true, -1, -1)
}

// SendRange transports array elements [offset, offset+count).
func (e *Engine) SendRange(t *vm.Thread, obj vm.Ref, offset, count, dest, tag int) error {
	return e.sendCommon(t, obj, dest, tag, false, offset, count)
}

func (e *Engine) sendCommon(t *vm.Thread, obj vm.Ref, dest, tag int, sync bool, offset, count int) error {
	return e.sendCommonOn(t, e.Comm, obj, dest, tag, sync, offset, count)
}

func (e *Engine) sendCommonOn(t *vm.Thread, c *mp.Comm, obj vm.Ref, dest, tag int, sync bool, offset, count int) error {
	// Root the ref argument for the whole operation: the entry poll
	// below is a safepoint, and with several VM threads sharing the
	// rank a sibling's collection can move the object before the
	// buffer is derived (the pin policy only takes over at wait
	// entry). Every Ref-taking entry point follows this discipline.
	defer t.PushFrame(&obj)()
	t.PollGC()
	defer t.PollGC()
	var buf heapBuf
	var err error
	if offset >= 0 {
		buf, err = e.rangeBuf(t, obj, offset, count)
	} else {
		buf, err = e.wholeBuf(t, obj)
	}
	if err != nil {
		return err
	}
	bump(&e.Stats.Ops, 1)
	tr := e.opBegin(obs.OpSend, buf.Len(), dest)
	defer e.opEnd(tr)
	unpinEager := e.pinEager(obj)
	defer unpinEager()
	req, err := c.IsendBuffer(buf, dest, tag, sync)
	if err != nil {
		return err
	}
	_, err = e.waitBlocking(t, c, obj, req, obs.OpSend)
	return err
}

// Recv receives into a whole object (blocking). It returns the
// source rank and delivered byte count.
func (e *Engine) Recv(t *vm.Thread, obj vm.Ref, source, tag int) (mp.Status, error) {
	return e.recvCommon(t, obj, source, tag, -1, -1)
}

// RecvRange receives into array elements [offset, offset+count).
func (e *Engine) RecvRange(t *vm.Thread, obj vm.Ref, offset, count, source, tag int) (mp.Status, error) {
	return e.recvCommon(t, obj, source, tag, offset, count)
}

func (e *Engine) recvCommon(t *vm.Thread, obj vm.Ref, source, tag int, offset, count int) (mp.Status, error) {
	return e.recvCommonOn(t, e.Comm, obj, source, tag, offset, count)
}

func (e *Engine) recvCommonOn(t *vm.Thread, c *mp.Comm, obj vm.Ref, source, tag int, offset, count int) (mp.Status, error) {
	defer t.PushFrame(&obj)()
	t.PollGC()
	defer t.PollGC()
	var buf heapBuf
	var err error
	if offset >= 0 {
		buf, err = e.rangeBuf(t, obj, offset, count)
	} else {
		buf, err = e.wholeBuf(t, obj)
	}
	if err != nil {
		return mp.Status{}, err
	}
	bump(&e.Stats.Ops, 1)
	tr := e.opBegin(obs.OpRecv, buf.Len(), source)
	defer e.opEnd(tr)
	unpinEager := e.pinEager(obj)
	defer unpinEager()
	req, err := c.IrecvBuffer(buf, source, tag)
	if err != nil {
		return mp.Status{}, err
	}
	return e.waitBlocking(t, c, obj, req, obs.OpRecv)
}

// --- immediate (non-blocking) operations --------------------------------------

// register assigns a managed request id.
func (e *Engine) register(req *mp.Request, obj vm.Ref, pinned bool) int32 {
	e.nextReq++
	id := e.nextReq
	e.requests[id] = &mpReq{id: id, req: req, obj: obj, pinned: pinned}
	return id
}

// condPin applies the non-blocking pinning rule of §7.4: a younger-
// generation object gets a conditional pin request whose mark-phase
// check is the transport's completion status.
func (e *Engine) condPin(obj vm.Ref, req *mp.Request) {
	switch e.policy {
	case PolicyNever, PolicyAlwaysPin:
		return
	}
	if req.Done() || !e.VM.Heap.IsYoung(obj) {
		if !e.VM.Heap.IsYoung(obj) {
			bump(&e.Stats.PinSkippedElder, 1)
			e.notePin(obs.PinSkippedElder, obj)
		}
		return
	}
	bump(&e.Stats.CondPins, 1)
	e.notePin(obs.PinCond, obj)
	e.VM.Heap.AddCondPin(obj, func() bool { return !req.Done() })
}

// Isend starts an immediate send and returns a request id for Wait /
// Test.
func (e *Engine) Isend(t *vm.Thread, obj vm.Ref, dest, tag int) (int32, error) {
	defer t.PushFrame(&obj)()
	t.PollGC()
	buf, err := e.wholeBuf(t, obj)
	if err != nil {
		return 0, err
	}
	bump(&e.Stats.Ops, 1)
	tr := e.opBegin(obs.OpIsend, buf.Len(), dest)
	defer e.opEndQuick(tr)
	pinned := false
	if e.policy == PolicyAlwaysPin {
		bump(&e.Stats.PinEager, 1)
		e.notePin(obs.PinEager, obj)
		e.VM.Heap.Pin(obj)
		pinned = true
	}
	req, err := e.Comm.IsendBuffer(buf, dest, tag, false)
	if err != nil {
		if pinned {
			e.VM.Heap.Unpin(obj)
		}
		return 0, err
	}
	e.condPin(obj, req)
	return e.register(req, obj, pinned), nil
}

// Irecv starts an immediate receive.
func (e *Engine) Irecv(t *vm.Thread, obj vm.Ref, source, tag int) (int32, error) {
	defer t.PushFrame(&obj)()
	t.PollGC()
	buf, err := e.wholeBuf(t, obj)
	if err != nil {
		return 0, err
	}
	bump(&e.Stats.Ops, 1)
	tr := e.opBegin(obs.OpIrecv, buf.Len(), source)
	defer e.opEndQuick(tr)
	pinned := false
	if e.policy == PolicyAlwaysPin {
		bump(&e.Stats.PinEager, 1)
		e.notePin(obs.PinEager, obj)
		e.VM.Heap.Pin(obj)
		pinned = true
	}
	req, err := e.Comm.IrecvBuffer(buf, source, tag)
	if err != nil {
		if pinned {
			e.VM.Heap.Unpin(obj)
		}
		return 0, err
	}
	e.condPin(obj, req)
	return e.register(req, obj, pinned), nil
}

func (e *Engine) lookup(id int32) (*mpReq, error) {
	r, ok := e.requests[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadRequest, id)
	}
	return r, nil
}

func (e *Engine) finish(r *mpReq) {
	if r.pinned {
		e.VM.Heap.Unpin(r.obj)
	}
	delete(e.requests, r.id)
}

// Wait blocks until the identified request completes.
func (e *Engine) Wait(t *vm.Thread, id int32) (mp.Status, error) {
	r, err := e.lookup(id)
	if err != nil {
		return mp.Status{}, err
	}
	tr := obs.Active()
	if tr != nil {
		tr.Begin(e.lane, obs.KWait, uint64(obs.OpWait))
	}
	for {
		done, st, err := e.Comm.Test(r.req)
		if done {
			if tr != nil {
				if d := tr.End(e.lane); d > 0 {
					tr.Record(obs.HistRequestWait, d)
				}
			}
			e.finish(r)
			return st, e.noteErr(err)
		}
		e.waitStep(t, r.req)
	}
}

// Test makes one progress pass; on completion the request id is
// retired.
func (e *Engine) Test(t *vm.Thread, id int32) (bool, mp.Status, error) {
	r, err := e.lookup(id)
	if err != nil {
		return false, mp.Status{}, err
	}
	done, st, err := e.Comm.Test(r.req)
	if !done {
		t.PollGC()
		return false, mp.Status{}, err
	}
	e.finish(r)
	return true, st, e.noteErr(err)
}

// PendingRequests reports outstanding immediate operations (tests,
// mpstat).
func (e *Engine) PendingRequests() int { return len(e.requests) }

// --- collectives over simple objects -------------------------------------------

// collectiveBuf prepares a buffer + pin for the duration of a
// collective (which always blocks).
func (e *Engine) collectivePin(obj vm.Ref) func() {
	if obj == vm.NullRef {
		return func() {}
	}
	h := e.VM.Heap
	switch e.policy {
	case PolicyNever:
		return func() {}
	case PolicyAlwaysPin:
		bump(&e.Stats.PinEager, 1)
		e.notePin(obs.PinEager, obj)
		h.Pin(obj)
		return func() { h.Unpin(obj) }
	default:
		if !h.IsYoung(obj) {
			bump(&e.Stats.PinSkippedElder, 1)
			e.notePin(obs.PinSkippedElder, obj)
			return func() {}
		}
		bump(&e.Stats.PinDeferred, 1)
		e.notePin(obs.PinDeferred, obj)
		h.Pin(obj)
		return func() { h.Unpin(obj) }
	}
}

// Barrier blocks until all ranks enter it.
func (e *Engine) Barrier(t *vm.Thread) error {
	t.PollGC()
	defer t.PollGC()
	tr := e.opBegin(obs.OpBarrier, 0, -1)
	defer e.opEnd(tr)
	return e.noteErr(e.Comm.Barrier())
}

// Bcast broadcasts the root's object contents into every rank's
// object (equal sizes required, as in MPI).
func (e *Engine) Bcast(t *vm.Thread, obj vm.Ref, root int) error {
	defer t.PushFrame(&obj)()
	t.PollGC()
	defer t.PollGC()
	buf, err := e.wholeBuf(t, obj)
	if err != nil {
		return err
	}
	bump(&e.Stats.Ops, 1)
	tr := e.opBegin(obs.OpBcast, buf.Len(), root)
	defer e.opEnd(tr)
	unpin := e.collectivePin(obj)
	defer unpin()
	return e.noteErr(e.Comm.Bcast(buf.Bytes(), root))
}

// Scatter splits the root's simple array equally across ranks into
// each rank's recv array (sendArr is ignored on non-roots).
func (e *Engine) Scatter(t *vm.Thread, sendArr, recvArr vm.Ref, root int) error {
	defer t.PushFrame(&sendArr, &recvArr)()
	t.PollGC()
	defer t.PollGC()
	recvBuf, err := e.wholeBuf(t, recvArr)
	if err != nil {
		return err
	}
	bump(&e.Stats.Ops, 1)
	tr := e.opBegin(obs.OpScatter, recvBuf.Len(), root)
	defer e.opEnd(tr)
	var sendBytes []byte
	var unpinSend func()
	if e.Comm.Rank() == root {
		sendBuf, err := e.wholeBuf(t, sendArr)
		if err != nil {
			return err
		}
		unpinSend = e.collectivePin(sendArr)
		defer unpinSend()
		sendBytes = sendBuf.Bytes()
	}
	unpin := e.collectivePin(recvArr)
	defer unpin()
	return e.noteErr(e.Comm.Scatter(sendBytes, recvBuf.Bytes(), root))
}

// Allgather collects every rank's simple array into every rank's
// recv array (recv must hold Size() times the send array's bytes).
func (e *Engine) Allgather(t *vm.Thread, sendArr, recvArr vm.Ref) error {
	return e.allgatherOn(t, e.Comm, sendArr, recvArr)
}

func (e *Engine) allgatherOn(t *vm.Thread, c *mp.Comm, sendArr, recvArr vm.Ref) error {
	defer t.PushFrame(&sendArr, &recvArr)()
	t.PollGC()
	defer t.PollGC()
	sendBuf, err := e.wholeBuf(t, sendArr)
	if err != nil {
		return err
	}
	recvBuf, err := e.wholeBuf(t, recvArr)
	if err != nil {
		return err
	}
	// Validate locally on every rank so an erroneous program fails
	// consistently instead of deadlocking mid-collective.
	if recvBuf.Len() != sendBuf.Len()*c.Size() {
		return fmt.Errorf("core: allgather recv %d bytes, want %d (send %d × %d ranks)",
			recvBuf.Len(), sendBuf.Len()*c.Size(), sendBuf.Len(), c.Size())
	}
	bump(&e.Stats.Ops, 1)
	tr := e.opBegin(obs.OpAllgather, sendBuf.Len(), -1)
	defer e.opEnd(tr)
	unpinSend := e.collectivePin(sendArr)
	defer unpinSend()
	unpinRecv := e.collectivePin(recvArr)
	defer unpinRecv()
	return e.noteErr(c.Allgather(sendBuf.Bytes(), recvBuf.Bytes()))
}

// Alltoall exchanges equal chunks of every rank's simple send array:
// rank j's chunk i lands in rank i's recv array at chunk j. Both
// arrays must hold Size() equal chunks.
func (e *Engine) Alltoall(t *vm.Thread, sendArr, recvArr vm.Ref) error {
	return e.alltoallOn(t, e.Comm, sendArr, recvArr)
}

func (e *Engine) alltoallOn(t *vm.Thread, c *mp.Comm, sendArr, recvArr vm.Ref) error {
	defer t.PushFrame(&sendArr, &recvArr)()
	t.PollGC()
	defer t.PollGC()
	sendBuf, err := e.wholeBuf(t, sendArr)
	if err != nil {
		return err
	}
	recvBuf, err := e.wholeBuf(t, recvArr)
	if err != nil {
		return err
	}
	// Validate locally on every rank so an erroneous program fails
	// consistently instead of deadlocking mid-collective.
	if recvBuf.Len() != sendBuf.Len() || sendBuf.Len()%c.Size() != 0 {
		return fmt.Errorf("core: alltoall buffers %d/%d bytes for %d ranks",
			sendBuf.Len(), recvBuf.Len(), c.Size())
	}
	bump(&e.Stats.Ops, 1)
	tr := e.opBegin(obs.OpAlltoall, sendBuf.Len(), -1)
	defer e.opEnd(tr)
	unpinSend := e.collectivePin(sendArr)
	defer unpinSend()
	unpinRecv := e.collectivePin(recvArr)
	defer unpinRecv()
	return e.noteErr(c.Alltoall(sendBuf.Bytes(), recvBuf.Bytes()))
}

// Sendrecv performs the classic combined exchange: send sendObj to
// dest while receiving into recvObj from source, deadlock-free even
// when every rank calls it simultaneously.
func (e *Engine) Sendrecv(t *vm.Thread, sendObj vm.Ref, dest, sendTag int, recvObj vm.Ref, source, recvTag int) (mp.Status, error) {
	defer t.PushFrame(&sendObj, &recvObj)()
	t.PollGC()
	defer t.PollGC()
	sendBuf, err := e.wholeBuf(t, sendObj)
	if err != nil {
		return mp.Status{}, err
	}
	recvBuf, err := e.wholeBuf(t, recvObj)
	if err != nil {
		return mp.Status{}, err
	}
	bump(&e.Stats.Ops, 2)
	tr := e.opBegin(obs.OpSendrecv, sendBuf.Len(), dest)
	defer e.opEnd(tr)
	unpinS := e.collectivePin(sendObj)
	defer unpinS()
	unpinR := e.collectivePin(recvObj)
	defer unpinR()
	rreq, err := e.Comm.IrecvBuffer(recvBuf, source, recvTag)
	if err != nil {
		return mp.Status{}, err
	}
	sreq, err := e.Comm.IsendBuffer(sendBuf, dest, sendTag, false)
	if err != nil {
		return mp.Status{}, err
	}
	for {
		done, _, err := e.Comm.Test(sreq)
		if err != nil {
			return mp.Status{}, err
		}
		if done {
			break
		}
		e.waitStep(t, sreq)
	}
	for {
		done, st, err := e.Comm.Test(rreq)
		if done {
			return st, err
		}
		e.waitStep(t, rreq)
	}
}

// Gather collects every rank's simple array into the root's recv
// array (recvArr is ignored on non-roots).
func (e *Engine) Gather(t *vm.Thread, sendArr, recvArr vm.Ref, root int) error {
	defer t.PushFrame(&sendArr, &recvArr)()
	t.PollGC()
	defer t.PollGC()
	sendBuf, err := e.wholeBuf(t, sendArr)
	if err != nil {
		return err
	}
	bump(&e.Stats.Ops, 1)
	tr := e.opBegin(obs.OpGather, sendBuf.Len(), root)
	defer e.opEnd(tr)
	unpinSend := e.collectivePin(sendArr)
	defer unpinSend()
	var recvBytes []byte
	if e.Comm.Rank() == root {
		recvBuf, err := e.wholeBuf(t, recvArr)
		if err != nil {
			return err
		}
		unpinRecv := e.collectivePin(recvArr)
		defer unpinRecv()
		recvBytes = recvBuf.Bytes()
	}
	return e.noteErr(e.Comm.Gather(sendBuf.Bytes(), recvBytes, root))
}
