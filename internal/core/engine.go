// Package core is the paper's primary contribution: the integration
// of the message-passing library directly inside the virtual machine
// (Motor, §3/§4/§7). An Engine binds one VM (one rank) to one
// message-passing World and provides:
//
//   - the regular MPI operations with object-model integrity checks
//     (§4.2.1): only objects without reference fields, or arrays of
//     simple types, may be transported buffer-to-buffer;
//   - the pinning policy (§4.3, §7.4): elder objects are never
//     pinned; blocking operations defer the pin until they actually
//     enter their polling-wait; non-blocking operations register
//     conditional pin requests resolved during the collector's mark
//     phase;
//   - the extended object-oriented operations (§4.2.2, §7.5) built on
//     the custom serializer with runtime-owned reusable buffers;
//   - the System.MP FCall surface for managed programs (§7.2/§7.3).
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"motor/internal/mp"
	"motor/internal/mp/channel"
	"motor/internal/obs"
	"motor/internal/serial"
	"motor/internal/vm"
	"motor/internal/vm/bcverify"
)

// PinPolicy selects how transport buffers are protected from the
// moving collector.
type PinPolicy uint8

// Pinning policies.
const (
	// PolicyMotor is the paper's policy (generation test, deferred
	// pins, conditional pin requests).
	PolicyMotor PinPolicy = iota
	// PolicyAlwaysPin pins eagerly for every operation, the
	// behaviour of the managed-wrapper bindings (ablation A1).
	PolicyAlwaysPin
	// PolicyNever performs no pinning at all. UNSAFE — it exists so
	// tests can demonstrate that pinning is load-bearing: a
	// collection during a transfer corrupts the payload.
	PolicyNever
)

// Errors.
var (
	// ErrObjectModel rejects transport objects that could compromise
	// the integrity of the object model (paper §2.4/§4.2.1).
	ErrObjectModel = errors.New("core: object contains references; use the extended object-oriented operations")
	// ErrNullObject rejects null transport objects.
	ErrNullObject = errors.New("core: null transport object")
	// ErrNotArray rejects offset/count forms on non-arrays.
	ErrNotArray = errors.New("core: offset/count transport requires an array")
	// ErrBadRequest flags an unknown request id.
	ErrBadRequest = errors.New("core: unknown request id")
	// ErrOversize rejects an incoming OO message whose wire-claimed
	// size exceeds MaxOOMessage — the allocation never happens, so a
	// corrupt or adversarial peer cannot force unbounded memory use.
	ErrOversize = errors.New("core: object message exceeds MaxOOMessage")
)

// DefaultMaxOOMessage caps the accumulated size of one incoming OO
// representation (WithMaxOOMessage overrides).
const DefaultMaxOOMessage = 1 << 30

// Stats counts pinning-policy and OO-operation activity; the paper's
// §7.4 behaviour is asserted against these in tests.
//
// All increments go through atomic adds (see bump): the engine itself
// is single-goroutine per rank, but snapshot readers — the obs
// registry, mpstat's -metrics collector — may run concurrently with
// nonblocking operations. Read a consistent copy with Snapshot.
type Stats struct {
	Ops              uint64 // regular MPI operations started
	PinSkippedElder  uint64 // no pin: object resident in elder space
	PinAvoidedFast   uint64 // no pin: blocking op completed before the polling-wait
	PinDeferred      uint64 // pin taken at polling-wait entry (blocking ops)
	PinEager         uint64 // pin taken at operation start (PolicyAlwaysPin)
	CondPins         uint64 // conditional pin requests registered (non-blocking ops)
	OOSends          uint64
	OORecvs          uint64
	OOChunksSent     uint64 // v2 stream chunks put on the wire
	OOChunksRecvd    uint64 // v2 stream chunks taken off the wire
	SerializedBytes  uint64
	BufferReuses     uint64
	BufferAllocs     uint64
	BuffersCollected uint64
	TransportErrors  uint64 // operations that completed with mp.ErrTransport

	// TransferChecksDyn counts dynamic object-model integrity checks
	// (§4.2.1); TransferChecksFast counts transfers that skipped the
	// check because the calling method was statically verified
	// transport-safe (bcverify). On a fully verified workload Dyn
	// stays at zero.
	TransferChecksDyn  uint64
	TransferChecksFast uint64
}

// bump atomically increments one counter field.
func bump(f *uint64, n uint64) { atomic.AddUint64(f, n) }

// Snapshot returns a race-safe copy of the counters.
func (s *Stats) Snapshot() Stats {
	return Stats{
		Ops:              atomic.LoadUint64(&s.Ops),
		PinSkippedElder:  atomic.LoadUint64(&s.PinSkippedElder),
		PinAvoidedFast:   atomic.LoadUint64(&s.PinAvoidedFast),
		PinDeferred:      atomic.LoadUint64(&s.PinDeferred),
		PinEager:         atomic.LoadUint64(&s.PinEager),
		CondPins:         atomic.LoadUint64(&s.CondPins),
		OOSends:          atomic.LoadUint64(&s.OOSends),
		OORecvs:          atomic.LoadUint64(&s.OORecvs),
		OOChunksSent:     atomic.LoadUint64(&s.OOChunksSent),
		OOChunksRecvd:    atomic.LoadUint64(&s.OOChunksRecvd),
		SerializedBytes:  atomic.LoadUint64(&s.SerializedBytes),
		BufferReuses:     atomic.LoadUint64(&s.BufferReuses),
		BufferAllocs:     atomic.LoadUint64(&s.BufferAllocs),
		BuffersCollected: atomic.LoadUint64(&s.BuffersCollected),
		TransportErrors:  atomic.LoadUint64(&s.TransportErrors),

		TransferChecksDyn:  atomic.LoadUint64(&s.TransferChecksDyn),
		TransferChecksFast: atomic.LoadUint64(&s.TransferChecksFast),
	}
}

// VerifyStats aggregates load-time verification activity on this
// engine (Engine.VerifyModule). Uint64 fields so the obs registry
// flattens them like every other counter group.
type VerifyStats struct {
	Methods       uint64 // methods verified
	Insts         uint64 // instructions decoded and checked
	Transportable uint64 // methods proven transport-safe
	ElapsedNs     uint64 // wall time spent verifying
}

// Snapshot returns a race-safe copy of the counters.
func (s *VerifyStats) Snapshot() VerifyStats {
	return VerifyStats{
		Methods:       atomic.LoadUint64(&s.Methods),
		Insts:         atomic.LoadUint64(&s.Insts),
		Transportable: atomic.LoadUint64(&s.Transportable),
		ElapsedNs:     atomic.LoadUint64(&s.ElapsedNs),
	}
}

// Engine integrates one VM with one message-passing world.
type Engine struct {
	VM    *vm.VM
	World *mp.World
	Comm  *mp.Comm

	policy  PinPolicy
	serOpts serial.Options

	// maxOO caps incoming OO representation sizes (ErrOversize);
	// ooChunk is the streaming chunk target.
	maxOO   int
	ooChunk int

	// Type-table caches, keyed by world-communicator peer rank:
	// peerCaches is the sender side, mirrors the receiver side.
	peerCaches map[int]*serial.PeerCache
	mirrors    map[int]*serial.TableMirror

	requests map[int32]*mpReq
	nextReq  int32

	// comms are managed communicator handles (see comm.go); handle 0
	// is the world communicator.
	comms    map[int32]*mp.Comm
	nextComm int32

	bufs bufferStack

	// lane is this rank's trace lane (world rank), fixed at Attach.
	lane int

	// asyncProgress selects the background progress engine; progress is
	// the running engine (nil in inline-polling mode or after Close).
	// Blocking waits branch on it: inline mode spins through GC polls,
	// async mode parks the thread until the completion continuation
	// fires (see waitStep in ops.go).
	asyncProgress bool
	progress      *mp.Progress

	// unDiag unregisters this rank's watchdog stall-diagnosis provider
	// (set at Attach, run at Close).
	unDiag func()

	Stats   Stats
	Verify  VerifyStats
	Quicken QuickenStats
	TTCache serial.TTCacheStats
}

type mpReq struct {
	id     int32
	req    *mp.Request
	obj    vm.Ref
	pinned bool // explicit eager pin to release at completion
}

// Option configures an Engine.
type Option func(*Engine)

// WithPolicy selects the pinning policy.
func WithPolicy(p PinPolicy) Option { return func(e *Engine) { e.policy = p } }

// WithVisited selects the serializer's visited-object structure. The
// engine defaults to VisitedMap (the efficient structure the paper
// names as future work); pass VisitedLinear for the paper's original
// behaviour (ablation A2 benchmarks both).
func WithVisited(m serial.VisitedMode) Option {
	return func(e *Engine) { e.serOpts.Visited = m }
}

// WithMaxOOMessage caps the accumulated size of one incoming OO
// representation; oversized wire claims fail with ErrOversize before
// any allocation (default DefaultMaxOOMessage).
func WithMaxOOMessage(n int) Option { return func(e *Engine) { e.maxOO = n } }

// WithOOChunk sets the streaming-serialization chunk target (default
// serial.DefaultChunkTarget).
func WithOOChunk(n int) Option { return func(e *Engine) { e.ooChunk = n } }

// WithAsyncProgress enables the background progress engine: a
// per-rank goroutine that drives the device while guest code
// computes, gated through the VM execution token so every pass
// respects the collector's safepoint discipline (docs/PROGRESS.md).
// Off by default (inline polling-waits only).
func WithAsyncProgress(on bool) Option { return func(e *Engine) { e.asyncProgress = on } }

// Attach integrates a VM with a world: it wires the device's
// polling-wait yield to the VM's GC poll point, installs the GC hook
// that refreshes transport status for conditional pin requests and
// ages the OO buffer stack, and registers the System.MP FCalls.
func Attach(v *vm.VM, w *mp.World, opts ...Option) *Engine {
	e := &Engine{
		VM:         v,
		World:      w,
		Comm:       w.Comm,
		maxOO:      DefaultMaxOOMessage,
		ooChunk:    serial.DefaultChunkTarget,
		serOpts:    serial.Options{Visited: serial.VisitedMap},
		peerCaches: make(map[int]*serial.PeerCache),
		mirrors:    make(map[int]*serial.TableMirror),
		requests:   make(map[int32]*mpReq),
	}
	for _, opt := range opts {
		opt(e)
	}
	e.lane = w.Rank()
	v.SetTraceLane(w.Rank())
	// Polling-waits inside the MP core yield to the collector — the
	// paper's replacement of blocking system calls (§7.1).
	w.Dev.Yield = v.PollPoint
	// "During the mark phase the garbage collector ... checks the
	// status of the underlying non-blocking transport operations"
	// (§7.4): one non-blocking progress pass keeps that status fresh,
	// and the OO buffer stack ages one generation.
	v.AddGCHook(func() {
		_, _ = w.Dev.Progress()
		bump(&e.Stats.BuffersCollected, e.bufs.age())
	})
	e.registerFCalls()
	// Stall-watchdog diagnosis: when this rank is declared stuck, the
	// report cites the device's protocol state alongside the generic
	// GC/progress attribution the watchdog adds itself.
	e.unDiag = obs.RegisterStallDiag(e.lane, func() string {
		ds := w.Dev.StatsSnapshot()
		return fmt.Sprintf("device: %d outstanding reqs, %d polls, %d unexpected, %d transport errors, %d peers lost",
			w.Dev.Outstanding(), ds.Polls, ds.Unexpected, ds.TransportErrors, ds.PeersLost)
	})
	if e.asyncProgress {
		// The gate is the VM execution token: a pass runs only while no
		// managed thread executes and no collection is in flight, so the
		// progress goroutine may complete requests into pinned managed
		// buffers. The GC hook above doubles as the collector-side
		// refresh; both paths funnel into the same locked device.
		e.progress = mp.StartProgress(w.Dev, mp.ProgressOptions{
			Gate: v.ExecRun,
			Lane: w.Rank(),
		})
	}
	return e
}

// Close stops the background progress engine (no-op in inline mode;
// idempotent). Call it after every managed thread has ended — a
// thread still holding the execution token would deadlock the gated
// loop's final pass against Stop.
func (e *Engine) Close() {
	if e.progress != nil {
		e.progress.Stop()
	}
	if e.unDiag != nil {
		e.unDiag()
		e.unDiag = nil
	}
}

// AsyncProgress reports whether the background progress engine is
// configured.
func (e *Engine) AsyncProgress() bool { return e.asyncProgress }

// ProgressStats returns a snapshot of the background progress
// engine's counters (zero value in inline mode).
func (e *Engine) ProgressStats() mp.ProgressStats {
	if e.progress == nil {
		return mp.ProgressStats{}
	}
	return e.progress.Stats()
}

// Policy returns the engine's pinning policy.
func (e *Engine) Policy() PinPolicy { return e.policy }

// RegisterStats exposes every subsystem this engine can see — its own
// counters, the ADI device, the collective layer, the collector, and
// the transport channel (when it implements channel.StatsSource) —
// through one obs.Registry, so a single Snapshot covers the whole
// stack (§ISSUE: unified metrics).
func (e *Engine) RegisterStats(reg *obs.Registry) {
	reg.Register("engine", func() any { return e.Stats.Snapshot() })
	reg.Register("verify", func() any { return e.Verify.Snapshot() })
	reg.Register("quicken", func() any { return e.Quicken.Snapshot() })
	reg.Register("serial.ttcache", func() any { return e.TTCache.Snapshot() })
	// Snapshot accessors everywhere: a registry read may race a
	// background progress pass or a sibling guest thread bumping the
	// same counters.
	reg.Register("device", func() any { return e.World.Dev.StatsSnapshot() })
	reg.Register("coll", func() any { return e.Comm.CollStats() })
	reg.Register("gc", func() any { return e.VM.Heap.Stats.Snapshot() })
	if e.progress != nil {
		reg.Register("progress", func() any { return e.progress.Stats() })
	}
	if src, ok := e.World.Dev.Channel().(channel.StatsSource); ok {
		reg.Register("transport", func() any { return src.TransportStats() })
	}
}

// --- managed-heap transfer buffers -----------------------------------------

// heapBuf is a raw arena range, resolved once at operation start —
// exactly the semantics of handing a native transport the object's
// instance-data address (paper §7.1: "the library resolves the
// Object to the offset location of its instance data"). If the
// object moves mid-operation the range goes stale; preventing that is
// the pinning policy's job.
type heapBuf struct {
	h          *vm.Heap
	start, end uint32
}

// Len implements adi.Buffer.
func (b heapBuf) Len() int { return int(b.end - b.start) }

// Bytes implements adi.Buffer. The arena slice is re-resolved on
// every call because the arena may have grown (the offsets
// themselves are what pinning keeps stable).
func (b heapBuf) Bytes() []byte { return b.h.Bytes(b.start, b.end) }

// VerifyModule runs the load-time bytecode verifier over a freshly
// assembled module with this engine's FCall signatures, so methods
// whose transport buffers are provably integrity-safe take the
// checked-free fast path in wholeBuf/rangeBuf. Counters land in
// e.Verify (obs group "verify").
func (e *Engine) VerifyModule(methods []*vm.Method) error {
	st, err := bcverify.VerifyModule(e.VM, methods, bcverify.Options{Sigs: Signatures()})
	bump(&e.Verify.Methods, uint64(st.Methods))
	bump(&e.Verify.Insts, uint64(st.Insts))
	bump(&e.Verify.Transportable, uint64(st.Transportable))
	bump(&e.Verify.ElapsedNs, uint64(st.Elapsed.Nanoseconds()))
	return err
}

// DebugAssertTransferable, when set (tests), re-runs the integrity
// check on the verified fast path and panics if the static judgment
// was wrong — the §4.2.1 rule must hold with or without the verifier.
var DebugAssertTransferable bool

// trusted reports whether the §4.2.1 integrity check may be skipped:
// the innermost managed frame belongs to a method the verifier proved
// transport-safe. Go-API calls (nil or unmanaged thread) stay dynamic.
func (e *Engine) trusted(t *vm.Thread) bool {
	return t != nil && t.InTransportVerified()
}

// wholeBuf builds the transfer buffer for an entire object after the
// integrity checks of §4.2.1. On the statically verified path the
// HasRefFields check is skipped (bcverify proved it).
func (e *Engine) wholeBuf(t *vm.Thread, obj vm.Ref) (heapBuf, error) {
	if obj == vm.NullRef {
		return heapBuf{}, ErrNullObject
	}
	h := e.VM.Heap
	mt := h.MT(obj)
	if e.trusted(t) {
		bump(&e.Stats.TransferChecksFast, 1)
		if DebugAssertTransferable && mt.HasRefFields() {
			panic(fmt.Sprintf("core: verifier admitted non-transferable %s", mt))
		}
	} else {
		bump(&e.Stats.TransferChecksDyn, 1)
		if mt.HasRefFields() {
			return heapBuf{}, fmt.Errorf("%w (%s)", ErrObjectModel, mt)
		}
	}
	s, en := h.DataRange(obj)
	return heapBuf{h: h, start: s, end: en}, nil
}

// rangeBuf builds the transfer buffer for a sub-range of a simple
// array ("transporting portions of an array is supported", §4.2.1).
// The bounds check always runs — only the type checks are covered by
// static verification.
func (e *Engine) rangeBuf(t *vm.Thread, obj vm.Ref, offset, count int) (heapBuf, error) {
	if obj == vm.NullRef {
		return heapBuf{}, ErrNullObject
	}
	h := e.VM.Heap
	mt := h.MT(obj)
	if e.trusted(t) {
		bump(&e.Stats.TransferChecksFast, 1)
		if DebugAssertTransferable && !mt.IsSimpleArray() {
			panic(fmt.Sprintf("core: verifier admitted non-simple-array %s", mt))
		}
	} else {
		bump(&e.Stats.TransferChecksDyn, 1)
		if mt.Kind != vm.TKArray {
			return heapBuf{}, ErrNotArray
		}
		if !mt.IsSimpleArray() {
			return heapBuf{}, fmt.Errorf("%w (%s)", ErrObjectModel, mt)
		}
	}
	n := h.Length(obj)
	if offset < 0 || count < 0 || offset+count > n {
		return heapBuf{}, fmt.Errorf("core: range [%d,%d) outside array of %d elements", offset, offset+count, n)
	}
	es := mt.ElemSize()
	s, _ := h.DataRange(obj)
	return heapBuf{h: h, start: s + uint32(offset*es), end: s + uint32((offset+count)*es)}, nil
}

// --- OO buffer stack (paper §7.5) --------------------------------------------

// bufferStack recycles serialization buffers: "allocated from static
// runtime memory ... created on demand and stored in a stack for
// later use. At garbage collection the stack is checked for buffers
// which are unused since the last garbage collection and these are
// unallocated."
type bufferStack struct {
	bufs []poolBuf
	gen  uint64
	// out counts buffers handed out and not yet returned. The pool
	// does not track buffer identity (a borrower may grow and return a
	// different backing array), but every get must be balanced by
	// exactly one put — tests assert out == 0 after every error path.
	out int
}

type poolBuf struct {
	data []byte
	gen  uint64 // generation of last use
}

func (s *bufferStack) get(minCap int, st *Stats) []byte {
	s.out++
	for i := len(s.bufs) - 1; i >= 0; i-- {
		if cap(s.bufs[i].data) >= minCap {
			b := s.bufs[i].data
			s.bufs = append(s.bufs[:i], s.bufs[i+1:]...)
			bump(&st.BufferReuses, 1)
			return b[:0]
		}
	}
	bump(&st.BufferAllocs, 1)
	if minCap < 1024 {
		minCap = 1024
	}
	return make([]byte, 0, minCap)
}

func (s *bufferStack) put(b []byte) {
	s.out--
	s.bufs = append(s.bufs, poolBuf{data: b, gen: s.gen})
}

// age is called from the GC hook: buffers unused since the previous
// collection are dropped. It returns how many were collected.
func (s *bufferStack) age() uint64 {
	dropped := uint64(0)
	kept := s.bufs[:0]
	for _, b := range s.bufs {
		if s.gen > 0 && b.gen < s.gen {
			dropped++
			continue
		}
		kept = append(kept, b)
	}
	s.bufs = kept
	s.gen++
	return dropped
}

// PooledBuffers reports the current stack depth (tests).
func (e *Engine) PooledBuffers() int { return len(e.bufs.bufs) }

// BufferOutstanding reports how many pooled buffers are currently
// handed out; zero between operations proves no error path leaks.
func (e *Engine) BufferOutstanding() int { return e.bufs.out }

// --- type-table caches (serial.ttcache) -------------------------------------

// peerCache returns the sender-side type-table cache for a world-comm
// peer, resynchronized against the VM's type-registry generation.
func (e *Engine) peerCache(rank int) *serial.PeerCache {
	pc, ok := e.peerCaches[rank]
	if !ok {
		pc = serial.NewPeerCache(e.VM.TypeGen())
		e.peerCaches[rank] = pc
		return pc
	}
	if pc.Sync(e.VM.TypeGen()) {
		bump(&e.TTCache.Resets, 1)
	}
	return pc
}

// mirror returns the receiver-side type-table mirror for a peer.
func (e *Engine) mirror(rank int) *serial.TableMirror {
	m, ok := e.mirrors[rank]
	if !ok {
		m = serial.NewTableMirror()
		e.mirrors[rank] = m
	}
	return m
}
