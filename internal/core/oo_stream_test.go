package core

import (
	"errors"
	"fmt"
	"testing"

	"motor/internal/mp"
	"motor/internal/mp/adi"
	"motor/internal/vm"
)

// --- oversize regression ------------------------------------------------------
//
// v1 ORecv allocated a buffer of whatever the 8-byte size prefix
// claimed — an untrusted wire value. The streaming protocol caps every
// claim (first chunk, accumulated chunks, table blobs, broadcast
// headers) against MaxOOMessage BEFORE any allocation.

func TestORecvOversizeRejected(t *testing.T) {
	// The whole stream fits one chunk whose size exceeds the receiver's
	// cap: the probe claim is rejected before the buffer is sized.
	runRanks(t, 2, []Option{WithMaxOOMessage(4 << 10)}, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		if r.e.Comm.Rank() == 0 {
			head := buildLinkedList(r.v, mt, 8, 512) // ~16 KiB representation
			if err := r.e.OSend(r.th, head, 1, 0); err != nil {
				return err
			}
			// Sync: don't tear the world down before rank 1 probes.
			buf, err := r.v.Heap.NewUint8Array(make([]byte, 1))
			if err != nil {
				return err
			}
			_, err = r.e.Recv(r.th, buf, 1, 99)
			return err
		}
		_, _, err := r.e.ORecv(r.th, 0, 0)
		if !errors.Is(err, ErrOversize) {
			return fmt.Errorf("ORecv err = %v, want ErrOversize", err)
		}
		if out := r.e.BufferOutstanding(); out != 0 {
			return fmt.Errorf("%d pooled buffers leaked past the oversize error", out)
		}
		buf, err := r.v.Heap.NewUint8Array(make([]byte, 1))
		if err != nil {
			return err
		}
		return r.e.Send(r.th, buf, 0, 99)
	})
}

func TestORecvOversizeAccumulated(t *testing.T) {
	// Each chunk is under the cap but their sum is not: the accumulation
	// check fails the stream partway through.
	runRanks(t, 2, []Option{WithMaxOOMessage(3 << 10), WithOOChunk(1 << 10)}, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		if r.e.Comm.Rank() == 0 {
			head := buildLinkedList(r.v, mt, 8, 256) // ~8 KiB across ~8 chunks
			if err := r.e.OSend(r.th, head, 1, 0); err != nil {
				return err
			}
			buf, _ := r.v.Heap.NewUint8Array(make([]byte, 1))
			_, err := r.e.Recv(r.th, buf, 1, 99)
			return err
		}
		_, _, err := r.e.ORecv(r.th, 0, 0)
		if !errors.Is(err, ErrOversize) {
			return fmt.Errorf("ORecv err = %v, want ErrOversize", err)
		}
		if out := r.e.BufferOutstanding(); out != 0 {
			return fmt.Errorf("%d pooled buffers leaked", out)
		}
		buf, _ := r.v.Heap.NewUint8Array(make([]byte, 1))
		return r.e.Send(r.th, buf, 0, 99)
	})
}

// lyingBuf claims an enormous length while holding almost nothing —
// the shape of a malicious or corrupted size field on the wire.
type lyingBuf struct{ claim int }

func (b lyingBuf) Len() int      { return b.claim }
func (b lyingBuf) Bytes() []byte { return nil }

func TestORecvForgedSizeNoAllocation(t *testing.T) {
	// A forged rendezvous claim of 1 TiB: the receiver must reject it
	// from the probe without attempting the allocation (the test would
	// OOM otherwise) even under the default 1 GiB cap.
	runRanks(t, 2, nil, func(r *rank) error {
		if r.e.Comm.Rank() == 0 {
			if _, err := r.e.Comm.IsendOOBuffer(lyingBuf{claim: 1 << 40}, 1, mp.OOSpaceData, 0); err != nil {
				return err
			}
			buf, _ := r.v.Heap.NewUint8Array(make([]byte, 1))
			_, err := r.e.Recv(r.th, buf, 1, 99)
			return err
		}
		_, _, err := r.e.ORecv(r.th, 0, 0)
		if !errors.Is(err, ErrOversize) {
			return fmt.Errorf("forged size: err = %v, want ErrOversize", err)
		}
		buf, _ := r.v.Heap.NewUint8Array(make([]byte, 1))
		return r.e.Send(r.th, buf, 0, 99)
	})
}

func TestOBcastOversizeRejected(t *testing.T) {
	runRanks(t, 2, []Option{WithMaxOOMessage(2 << 10), WithOOChunk(512)}, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		if r.e.Comm.Rank() == 0 {
			head := buildLinkedList(r.v, mt, 8, 256)
			// The root streams to completion (chunks are eager-sized, so
			// a bailed receiver cannot strand it in a rendezvous).
			if _, err := r.e.OBcast(r.th, head, 0); err != nil {
				return err
			}
			return nil
		}
		_, err := r.e.OBcast(r.th, vm.NullRef, 0)
		if !errors.Is(err, ErrOversize) {
			return fmt.Errorf("OBcast err = %v, want ErrOversize", err)
		}
		if out := r.e.BufferOutstanding(); out != 0 {
			return fmt.Errorf("%d pooled buffers leaked", out)
		}
		return nil
	})
}

// --- chunked pipeline ---------------------------------------------------------

func TestOSendORecvManyChunks(t *testing.T) {
	// A small chunk target forces a long pipeline; the counters prove
	// the stream actually chunked.
	runRanks(t, 2, []Option{WithOOChunk(1 << 10)}, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		if r.e.Comm.Rank() == 0 {
			head := buildLinkedList(r.v, mt, 40, 64) // ~14 KiB
			if err := r.e.OSend(r.th, head, 1, 0); err != nil {
				return err
			}
			if r.e.Stats.OOChunksSent < 4 {
				return fmt.Errorf("OOChunksSent %d, want >= 4", r.e.Stats.OOChunksSent)
			}
			if out := r.e.BufferOutstanding(); out != 0 {
				return fmt.Errorf("%d pooled buffers outstanding after OSend", out)
			}
			return nil
		}
		head, _, err := r.e.ORecv(r.th, 0, 0)
		if err != nil {
			return err
		}
		if r.e.Stats.OOChunksRecvd < 4 {
			return fmt.Errorf("OOChunksRecvd %d, want >= 4", r.e.Stats.OOChunksRecvd)
		}
		if out := r.e.BufferOutstanding(); out != 0 {
			return fmt.Errorf("%d pooled buffers outstanding after ORecv", out)
		}
		return verifyList(r.v.Heap, mt, head, 40, 64, true)
	})
}

// --- type-table cache ---------------------------------------------------------

func TestTTCacheSecondSendSendsNoTables(t *testing.T) {
	// After the first same-shape message the cache serves every table
	// section as a 5-byte reference: the hit counter moves, the
	// table-byte counter does not — zero type-table bytes on the wire.
	runRanks(t, 2, nil, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		if r.e.Comm.Rank() == 0 {
			head := buildLinkedList(r.v, mt, 4, 8)
			if err := r.e.OSend(r.th, head, 1, 0); err != nil {
				return err
			}
			first := r.e.TTCache.Snapshot()
			if first.Misses == 0 || first.Hits != 0 || first.TableBytes == 0 {
				return fmt.Errorf("first send: %+v", first)
			}
			// Garbage collections must not disturb the cache: the ids
			// key method tables, not heap refs.
			r.th.CollectYoung()
			r.th.CollectFull()
			head2 := buildLinkedList(r.v, mt, 4, 8)
			if err := r.e.OSend(r.th, head2, 1, 1); err != nil {
				return err
			}
			second := r.e.TTCache.Snapshot()
			if second.Hits == 0 {
				return fmt.Errorf("second send: no cache hits: %+v", second)
			}
			if second.Misses != first.Misses || second.TableBytes != first.TableBytes {
				return fmt.Errorf("second send shipped tables again: %+v -> %+v", first, second)
			}
			return nil
		}
		for tag := 0; tag < 2; tag++ {
			head, _, err := r.e.ORecv(r.th, 0, tag)
			if err != nil {
				return err
			}
			if err := verifyList(r.v.Heap, mt, head, 4, 8, true); err != nil {
				return fmt.Errorf("tag %d: %w", tag, err)
			}
			// The receiver collects between messages too; the mirror
			// holds raw bytes, not refs, and must survive.
			r.th.CollectYoung()
		}
		if r.e.mirror(0).Entries() == 0 {
			return errors.New("receiver mirror empty after cached exchange")
		}
		return nil
	})
}

func TestTTCacheNackRecovery(t *testing.T) {
	// Reordered receive: the stream full of table references arrives at
	// a mirror that never saw the full tables (its stream is still
	// queued). The receiver NACKs, the sender answers with the blob,
	// and both messages land intact.
	runRanks(t, 2, nil, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		if r.e.Comm.Rank() == 0 {
			a := buildLinkedList(r.v, mt, 2, 4)
			pop := r.th.PushFrame(&a)
			if err := r.e.OSend(r.th, a, 1, 10); err != nil {
				return err
			}
			pop()
			b := buildLinkedList(r.v, mt, 5, 4)
			pop2 := r.th.PushFrame(&b)
			defer pop2()
			if err := r.e.OSend(r.th, b, 1, 20); err != nil {
				return err
			}
			if n := r.e.TTCache.Snapshot().Nacks; n != 1 {
				return fmt.Errorf("sender Nacks = %d, want 1", n)
			}
			// Third send: the mirror is warm now, so the ACK path runs.
			c := buildLinkedList(r.v, mt, 3, 4)
			pop3 := r.th.PushFrame(&c)
			defer pop3()
			if err := r.e.OSend(r.th, c, 1, 30); err != nil {
				return err
			}
			if n := r.e.TTCache.Snapshot().Nacks; n != 1 {
				return fmt.Errorf("warm-mirror send NACKed: Nacks = %d", n)
			}
			return nil
		}
		got20, _, err := r.e.ORecv(r.th, 0, 20) // reordered: references first
		if err != nil {
			return err
		}
		pop := r.th.PushFrame(&got20)
		got10, _, err := r.e.ORecv(r.th, 0, 10)
		if err != nil {
			return err
		}
		pop()
		if err := verifyList(r.v.Heap, mt, got20, 5, 4, true); err != nil {
			return fmt.Errorf("tag 20: %w", err)
		}
		if err := verifyList(r.v.Heap, mt, got10, 2, 4, true); err != nil {
			return fmt.Errorf("tag 10: %w", err)
		}
		got30, _, err := r.e.ORecv(r.th, 0, 30)
		if err != nil {
			return err
		}
		return verifyList(r.v.Heap, mt, got30, 3, 4, true)
	})
}

func TestTTCacheInvalidatedOnRegistryRollback(t *testing.T) {
	// A module load rollback moves the type-registry generation: the
	// sender cache must flush (epoch bump), the next stream ships full
	// tables again, and the receiver's mirror adopts the new epoch.
	runRanks(t, 2, nil, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		if r.e.Comm.Rank() == 0 {
			head := buildLinkedList(r.v, mt, 3, 4)
			pop := r.th.PushFrame(&head)
			defer pop()
			if err := r.e.OSend(r.th, head, 1, 0); err != nil {
				return err
			}
			before := r.e.TTCache.Snapshot()

			// Simulate a failed Rank.Load: declare, then roll back.
			mark := r.v.Mark()
			if _, err := r.v.DeclareClass("Doomed"); err != nil {
				return err
			}
			gen := r.v.TypeGen()
			r.v.RollbackRegistry(mark)
			if r.v.TypeGen() == gen {
				return errors.New("rollback did not move TypeGen")
			}

			if err := r.e.OSend(r.th, head, 1, 1); err != nil {
				return err
			}
			after := r.e.TTCache.Snapshot()
			if after.Resets == before.Resets {
				return fmt.Errorf("cache not reset: %+v -> %+v", before, after)
			}
			if after.Misses <= before.Misses {
				return fmt.Errorf("post-churn send did not ship full tables: %+v -> %+v", before, after)
			}
			return nil
		}
		for tag := 0; tag < 2; tag++ {
			head, _, err := r.e.ORecv(r.th, 0, tag)
			if err != nil {
				return err
			}
			if err := verifyList(r.v.Heap, mt, head, 3, 4, true); err != nil {
				return fmt.Errorf("tag %d: %w", tag, err)
			}
		}
		return nil
	})
}

func TestTTCacheDifferentLoadOrdersInterop(t *testing.T) {
	// The two sides registered their classes in different orders (type
	// indices differ); entries resolve by name, so cached exchanges in
	// both directions still work.
	runRanks(t, 2, nil, func(r *rank) error {
		var mt *vm.MethodTable
		if r.e.Comm.Rank() == 0 {
			mt = registerLinkedArray(r.v)
			r.v.MustNewClass("Padding", nil, []vm.FieldSpec{{Name: "x", Kind: vm.KindInt64}})
		} else {
			r.v.MustNewClass("Padding", nil, []vm.FieldSpec{{Name: "x", Kind: vm.KindInt64}})
			r.v.MustNewClass("Padding2", nil, []vm.FieldSpec{{Name: "y", Kind: vm.KindInt32}})
			mt = registerLinkedArray(r.v)
		}
		other := 1 - r.e.Comm.Rank()
		for round := 0; round < 2; round++ {
			if r.e.Comm.Rank() == 0 {
				head := buildLinkedList(r.v, mt, 3, 4)
				pop := r.th.PushFrame(&head)
				if err := r.e.OSend(r.th, head, other, round); err != nil {
					return err
				}
				pop()
				got, _, err := r.e.ORecv(r.th, other, round)
				if err != nil {
					return err
				}
				if err := verifyList(r.v.Heap, mt, got, 4, 2, true); err != nil {
					return err
				}
			} else {
				got, _, err := r.e.ORecv(r.th, other, round)
				if err != nil {
					return err
				}
				pop := r.th.PushFrame(&got)
				if err := verifyList(r.v.Heap, mt, got, 3, 4, true); err != nil {
					return err
				}
				pop()
				head := buildLinkedList(r.v, mt, 4, 2)
				pop2 := r.th.PushFrame(&head)
				if err := r.e.OSend(r.th, head, other, round); err != nil {
					return err
				}
				pop2()
			}
		}
		// Second round ran on a warm cache in both directions.
		if hits := r.e.TTCache.Snapshot().Hits; hits == 0 {
			return errors.New("no cache hits across rounds")
		}
		return nil
	})
}

// Interface check: the forged buffer must satisfy the device contract.
var _ adi.Buffer = lyingBuf{}
