package core

import (
	"errors"
	"fmt"
	"testing"

	"motor/internal/mp"
	"motor/internal/vm"
)

func TestEngineReduceAllreduce(t *testing.T) {
	const n = 4
	runRanks(t, n, nil, func(r *rank) error {
		h := r.v.Heap
		c := r.e.Comm
		// int64 sum.
		send, _ := h.AllocArray(r.v.ArrayType(vm.KindInt64, nil, 1), 3)
		for i := 0; i < 3; i++ {
			h.SetElem(send, i, uint64(int64(c.Rank()+1+i)))
		}
		var recv vm.Ref
		if c.Rank() == 1 {
			recv, _ = h.AllocArray(r.v.ArrayType(vm.KindInt64, nil, 1), 3)
		}
		if err := r.e.Reduce(r.th, send, recv, mp.OpSum, 1); err != nil {
			return err
		}
		if c.Rank() == 1 {
			for i := 0; i < 3; i++ {
				want := int64(0)
				for rr := 0; rr < n; rr++ {
					want += int64(rr + 1 + i)
				}
				if got := int64(h.GetElem(recv, i)); got != want {
					return fmt.Errorf("reduce[%d] = %d, want %d", i, got, want)
				}
			}
		}
		// float64 max allreduce.
		fsend, _ := h.NewFloat64Array([]float64{float64(c.Rank()) * 1.5})
		frecv, _ := h.NewFloat64Array(make([]float64, 1))
		if err := r.e.Allreduce(r.th, fsend, frecv, mp.OpMax); err != nil {
			return err
		}
		if got := h.Float64Slice(frecv)[0]; got != float64(n-1)*1.5 {
			return fmt.Errorf("allreduce max = %g", got)
		}
		return nil
	})
}

func TestEngineReduceTypeChecks(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		if r.e.Comm.Rank() != 0 {
			return nil
		}
		h := r.v.Heap
		// float32 arrays have no reduction semantics here.
		f32, _ := h.AllocArray(r.v.ArrayType(vm.KindFloat32, nil, 1), 2)
		if err := r.e.Allreduce(r.th, f32, f32, mp.OpSum); err == nil {
			return errors.New("float32 reduction accepted")
		}
		// Mismatched buffers.
		a, _ := h.NewInt32Array([]int32{1})
		bb, _ := h.NewFloat64Array([]float64{1})
		if err := r.e.Reduce(r.th, a, bb, mp.OpSum, 0); err == nil {
			return errors.New("mismatched reduce buffers accepted")
		}
		// Non-array.
		flat, _ := h.AllocClass(r.v.MustNewClass("F2", nil, []vm.FieldSpec{{Name: "x", Kind: vm.KindInt64}}))
		if err := r.e.Reduce(r.th, flat, flat, mp.OpSum, 0); !errors.Is(err, ErrNotArray) {
			return fmt.Errorf("class reduce: %v", err)
		}
		return nil
	})
}

func TestEngineCommSplitAndOps(t *testing.T) {
	const n = 4
	runRanks(t, n, nil, func(r *rank) error {
		h := r.v.Heap
		color := r.e.Comm.Rank() % 2
		sub, err := r.e.CommSplit(r.th, WorldComm, color, r.e.Comm.Rank())
		if err != nil {
			return err
		}
		if sub == NullComm {
			return errors.New("got null comm")
		}
		size, err := r.e.CommSize(sub)
		if err != nil || size != 2 {
			return fmt.Errorf("sub size %d err %v", size, err)
		}
		myRank, _ := r.e.CommRank(sub)

		// Exchange within the color group: rank 0 <-> rank 1 of sub.
		msg, _ := h.NewInt32Array([]int32{int32(color*100 + myRank)})
		if myRank == 0 {
			if err := r.e.SendOn(r.th, sub, msg, 1, 3); err != nil {
				return err
			}
		} else {
			buf, _ := h.NewInt32Array(make([]int32, 1))
			if _, err := r.e.RecvOn(r.th, sub, buf, 0, 3); err != nil {
				return err
			}
			if got := h.Int32Slice(buf)[0]; got != int32(color*100) {
				return fmt.Errorf("cross-comm leak: got %d", got)
			}
		}
		if err := r.e.BarrierOn(r.th, sub); err != nil {
			return err
		}
		// Reduce within the group.
		send, _ := h.AllocArray(r.v.ArrayType(vm.KindInt64, nil, 1), 1)
		h.SetElem(send, 0, uint64(int64(r.e.Comm.Rank())))
		var recv vm.Ref
		if myRank == 0 {
			recv, _ = h.AllocArray(r.v.ArrayType(vm.KindInt64, nil, 1), 1)
		}
		if err := r.e.ReduceOn(r.th, sub, send, recv, mp.OpSum, 0); err != nil {
			return err
		}
		if myRank == 0 {
			want := int64(color + (color + 2)) // the two world ranks of this color
			if got := int64(h.GetElem(recv, 0)); got != want {
				return fmt.Errorf("color %d sum %d, want %d", color, got, want)
			}
		}
		if err := r.e.CommFree(sub); err != nil {
			return err
		}
		if _, err := r.e.CommRank(sub); !errors.Is(err, ErrBadComm) {
			return fmt.Errorf("freed comm still resolves: %v", err)
		}
		return nil
	})
}

func TestEngineCommDupIsolation(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		h := r.v.Heap
		dup, err := r.e.CommDup(r.th, WorldComm)
		if err != nil {
			return err
		}
		// Same tag on world and dup must not cross-match.
		if r.e.Comm.Rank() == 0 {
			w, _ := h.NewInt32Array([]int32{1})
			d, _ := h.NewInt32Array([]int32{2})
			if err := r.e.Send(r.th, w, 1, 5); err != nil {
				return err
			}
			return r.e.SendOn(r.th, dup, d, 1, 5)
		}
		// Receive dup first.
		buf, _ := h.NewInt32Array(make([]int32, 1))
		if _, err := r.e.RecvOn(r.th, dup, buf, 0, 5); err != nil {
			return err
		}
		if h.Int32Slice(buf)[0] != 2 {
			return fmt.Errorf("dup got %d", h.Int32Slice(buf)[0])
		}
		if _, err := r.e.Recv(r.th, buf, 0, 5); err != nil {
			return err
		}
		if h.Int32Slice(buf)[0] != 1 {
			return fmt.Errorf("world got %d", h.Int32Slice(buf)[0])
		}
		return nil
	})
}

func TestEngineBadCommHandle(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		if _, err := r.e.CommRank(99); !errors.Is(err, ErrBadComm) {
			return fmt.Errorf("bad handle: %v", err)
		}
		if err := r.e.CommFree(WorldComm); err == nil {
			return errors.New("freed the world communicator")
		}
		if err := r.e.BarrierOn(r.th, 42); !errors.Is(err, ErrBadComm) {
			return fmt.Errorf("barrier on bad handle: %v", err)
		}
		return nil
	})
}

// TestManagedCommAndReduce drives the new FCall surface from managed
// code: split the world by parity, allreduce within the world, reduce
// within the sub-communicator.
func TestManagedCommAndReduce(t *testing.T) {
	const prog = `
.method main (0) int32
  .locals 5
  ; locals: 0=send 1=recv 2=sub 3=subrank 4=tmp
  ldc.i4 1  newarr int64  stloc 0
  ldc.i4 1  newarr int64  stloc 1
  ; send[0] = worldrank + 1
  ldloc 0  ldc.i4 0  intern mp.rank  ldc.i4 1  add  stelem
  ; allreduce sum over the world (op 0 = sum)
  ldloc 0  ldloc 1  ldc.i4 0  intern mp.allreduce
  ; expect 1+2 = 3 for 2 ranks
  ldloc 1  ldc.i4 0  ldelem
  ldc.i4 3  ceq  brfalse fail
  ; split world by parity of rank
  ldc.i4 0  intern mp.rank  ldc.i4 2  rem  intern mp.rank  intern mp.commsplit
  stloc 2
  ; sub size must be 1 for 2 ranks
  ldloc 2  intern mp.commsize
  ldc.i4 1  ceq  brfalse fail
  ldloc 2  intern mp.barrieron
  ldc.i4 0
  ret.val
fail:
  ldc.i4 1
  ret.val
.end
`
	runRanks(t, 2, nil, func(r *rank) error {
		main, err := r.v.Assemble(prog)
		if err != nil {
			return err
		}
		out, err := r.th.Call(main)
		if err != nil {
			return err
		}
		if out.Int() != 0 {
			return fmt.Errorf("managed comm program failed on rank %d", r.e.Comm.Rank())
		}
		return nil
	})
}
