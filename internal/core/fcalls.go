package core

import (
	"time"

	"motor/internal/mp"
	"motor/internal/vm"
)

// mpOp maps a managed operator code (0=sum 1=prod 2=min 3=max) to the
// reduction operator.
func mpOp(code int64) mp.Op { return mp.Op(code) }

// The System.MP FCall surface (paper §7.2/§7.3): managed programs
// reach the Message Passing Core through internal calls — trusted,
// unmarshalled, and GC-cooperative — rather than P/Invoke or JNI
// crossings. Each FCall checks parameters, derives sizes from the
// object itself, and applies the pinning policy via the Engine
// methods of ops.go / oo.go.
//
// Registered calls (masm `intern` operands):
//
//	mp.rank() int          mp.size() int
//	mp.send(obj, dest, tag)        mp.ssend(obj, dest, tag)
//	mp.recv(obj, src, tag) int     (returns delivered byte count)
//	mp.sendrange(arr, off, cnt, dest, tag)
//	mp.recvrange(arr, off, cnt, src, tag) int
//	mp.isend(obj, dest, tag) int   mp.irecv(obj, src, tag) int
//	mp.wait(id) int                mp.test(id) bool
//	mp.barrier()                   mp.bcast(obj, root)
//	mp.scatter(send, recv, root)   mp.gather(send, recv, root)
//	mp.allgather(send, recv)       mp.alltoall(send, recv)
//	mp.sendrecv(s, dst, stag, r, src, rtag) int
//	mp.reduce(send, recv, op, root)        mp.allreduce(send, recv, op)
//	  (op: 0=sum 1=prod 2=min 3=max; arrays of uint8/int32/int64/float64)
//	mp.commdup(id) int             mp.commsplit(id, color, key) int
//	mp.commrank(id) int            mp.commsize(id) int
//	mp.commfree(id)
//	mp.sendon(id, obj, dest, tag)  mp.recvon(id, obj, src, tag) int
//	mp.barrieron(id)               mp.bcaston(id, obj, root)
//	mp.reduceon(id, send, recv, op, root)
//	mp.allgatheron(id, send, recv) mp.alltoallon(id, send, recv)
//	mp.osend(obj, dest, tag)       mp.orecv(src, tag) object
//	mp.obcast(obj, root) object
//	mp.oscatter(arr, root) object  mp.ogather(arr, root) object
//	mp.wtime() float64             (seconds, monotonic)
func (e *Engine) registerFCalls() {
	v := e.VM
	// Arity and result kind come from the declarative fcallSigs table
	// (verifysigs.go) so the verifier and the registry cannot drift.
	reg := func(name string, fn func(t *vm.Thread, a []vm.Value) (vm.Value, error)) {
		sig := fcallSig(name)
		v.RegisterInternal(vm.InternalFunc{Name: name, NArgs: sig.NArgs, HasRet: sig.Ret != vm.KindVoid, Fn: fn})
	}

	reg("mp.rank", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.IntValue(int64(e.Comm.Rank())), nil
	})
	reg("mp.size", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.IntValue(int64(e.Comm.Size())), nil
	})
	reg("mp.wtime", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.FloatValue(float64(time.Now().UnixNano()) / 1e9), nil
	})

	reg("mp.send", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.Send(t, a[0].Ref(), int(a[1].Int()), int(a[2].Int()))
	})
	reg("mp.ssend", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.Ssend(t, a[0].Ref(), int(a[1].Int()), int(a[2].Int()))
	})
	reg("mp.recv", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		st, err := e.Recv(t, a[0].Ref(), int(a[1].Int()), int(a[2].Int()))
		return vm.IntValue(int64(st.Count)), err
	})
	reg("mp.sendrange", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.SendRange(t, a[0].Ref(), int(a[1].Int()), int(a[2].Int()), int(a[3].Int()), int(a[4].Int()))
	})
	reg("mp.recvrange", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		st, err := e.RecvRange(t, a[0].Ref(), int(a[1].Int()), int(a[2].Int()), int(a[3].Int()), int(a[4].Int()))
		return vm.IntValue(int64(st.Count)), err
	})

	reg("mp.isend", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		id, err := e.Isend(t, a[0].Ref(), int(a[1].Int()), int(a[2].Int()))
		return vm.IntValue(int64(id)), err
	})
	reg("mp.irecv", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		id, err := e.Irecv(t, a[0].Ref(), int(a[1].Int()), int(a[2].Int()))
		return vm.IntValue(int64(id)), err
	})
	reg("mp.wait", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		st, err := e.Wait(t, int32(a[0].Int()))
		return vm.IntValue(int64(st.Count)), err
	})
	reg("mp.test", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		done, _, err := e.Test(t, int32(a[0].Int()))
		return vm.BoolValue(done), err
	})

	reg("mp.barrier", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.Barrier(t)
	})
	reg("mp.bcast", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.Bcast(t, a[0].Ref(), int(a[1].Int()))
	})
	reg("mp.scatter", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.Scatter(t, a[0].Ref(), a[1].Ref(), int(a[2].Int()))
	})
	reg("mp.gather", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.Gather(t, a[0].Ref(), a[1].Ref(), int(a[2].Int()))
	})

	reg("mp.allgather", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.Allgather(t, a[0].Ref(), a[1].Ref())
	})
	reg("mp.alltoall", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.Alltoall(t, a[0].Ref(), a[1].Ref())
	})
	reg("mp.sendrecv", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		st, err := e.Sendrecv(t, a[0].Ref(), int(a[1].Int()), int(a[2].Int()), a[3].Ref(), int(a[4].Int()), int(a[5].Int()))
		return vm.IntValue(int64(st.Count)), err
	})
	reg("mp.reduce", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.Reduce(t, a[0].Ref(), a[1].Ref(), mpOp(a[2].Int()), int(a[3].Int()))
	})
	reg("mp.allreduce", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.Allreduce(t, a[0].Ref(), a[1].Ref(), mpOp(a[2].Int()))
	})

	// Communicator management: handles are integers, 0 = world.
	reg("mp.commdup", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		id, err := e.CommDup(t, int32(a[0].Int()))
		return vm.IntValue(int64(id)), err
	})
	reg("mp.commsplit", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		id, err := e.CommSplit(t, int32(a[0].Int()), int(a[1].Int()), int(a[2].Int()))
		return vm.IntValue(int64(id)), err
	})
	reg("mp.commrank", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		r, err := e.CommRank(int32(a[0].Int()))
		return vm.IntValue(int64(r)), err
	})
	reg("mp.commsize", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		n, err := e.CommSize(int32(a[0].Int()))
		return vm.IntValue(int64(n)), err
	})
	reg("mp.commfree", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.CommFree(int32(a[0].Int()))
	})
	reg("mp.sendon", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.SendOn(t, int32(a[0].Int()), a[1].Ref(), int(a[2].Int()), int(a[3].Int()))
	})
	reg("mp.recvon", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		st, err := e.RecvOn(t, int32(a[0].Int()), a[1].Ref(), int(a[2].Int()), int(a[3].Int()))
		return vm.IntValue(int64(st.Count)), err
	})
	reg("mp.barrieron", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.BarrierOn(t, int32(a[0].Int()))
	})
	reg("mp.bcaston", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.BcastOn(t, int32(a[0].Int()), a[1].Ref(), int(a[2].Int()))
	})
	reg("mp.reduceon", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.ReduceOn(t, int32(a[0].Int()), a[1].Ref(), a[2].Ref(), mpOp(a[3].Int()), int(a[4].Int()))
	})
	reg("mp.allgatheron", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.AllgatherOn(t, int32(a[0].Int()), a[1].Ref(), a[2].Ref())
	})
	reg("mp.alltoallon", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.AlltoallOn(t, int32(a[0].Int()), a[1].Ref(), a[2].Ref())
	})

	reg("mp.osend", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		return vm.Value{}, e.OSend(t, a[0].Ref(), int(a[1].Int()), int(a[2].Int()))
	})
	reg("mp.orecv", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		ref, _, err := e.ORecv(t, int(a[0].Int()), int(a[1].Int()))
		return vm.RefValue(ref), err
	})
	reg("mp.obcast", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		ref, err := e.OBcast(t, a[0].Ref(), int(a[1].Int()))
		return vm.RefValue(ref), err
	})
	reg("mp.oscatter", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		ref, err := e.OScatter(t, a[0].Ref(), int(a[1].Int()))
		return vm.RefValue(ref), err
	})
	reg("mp.ogather", func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
		ref, err := e.OGather(t, a[0].Ref(), int(a[1].Int()))
		return vm.RefValue(ref), err
	})
}
