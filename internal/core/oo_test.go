package core

import (
	"errors"
	"fmt"
	"testing"

	"motor/internal/serial"
	"motor/internal/vm"
)

// buildLinkedList constructs the paper's Fig. 5 structure: n nodes,
// each holding an int32 payload array; next2 points at the head and
// must not travel.
func buildLinkedList(v *vm.VM, mt *vm.MethodTable, n, payloadLen int) vm.Ref {
	h := v.Heap
	fArr, fNext, fNext2, fID := mt.FieldByName("array"), mt.FieldByName("next"), mt.FieldByName("next2"), mt.FieldByName("id")
	guard := &vm.RefRoots{Refs: make([]vm.Ref, 2)} // [head, cur]
	slots := guard.Refs
	v.AddRootProvider(guard)
	defer v.RemoveRootProvider(guard)
	for i := n - 1; i >= 0; i-- {
		node, err := h.AllocClass(mt)
		if err != nil {
			panic(err)
		}
		slots[1] = node
		vals := make([]int32, payloadLen)
		for j := range vals {
			vals[j] = int32(i*100 + j)
		}
		arr, err := h.NewInt32Array(vals)
		if err != nil {
			panic(err)
		}
		node = slots[1]
		h.SetRef(node, fArr, arr)
		h.SetScalar(node, fID, uint64(uint32(int32(i))))
		if slots[0] != vm.NullRef {
			h.SetRef(node, fNext, slots[0])
		}
		slots[0] = node
	}
	// next2 back-references (must not travel).
	head := slots[0]
	for cur := head; cur != vm.NullRef; cur = h.GetRef(cur, fNext) {
		h.SetRef(cur, fNext2, head)
	}
	return slots[0]
}

// verifyList checks a LinkedArray list's structure. wantNext2Null is
// true for received copies (the non-Transportable next2 must have
// been dropped) and false for locally built originals.
func verifyList(h *vm.Heap, mt *vm.MethodTable, head vm.Ref, n, payloadLen int, wantNext2Null bool) error {
	fArr, fNext, fNext2, fID := mt.FieldByName("array"), mt.FieldByName("next"), mt.FieldByName("next2"), mt.FieldByName("id")
	count := 0
	for cur := head; cur != vm.NullRef; cur = h.GetRef(cur, fNext) {
		if got := int32(uint32(h.GetScalar(cur, fID))); got != int32(count) {
			return fmt.Errorf("node %d id %d", count, got)
		}
		if wantNext2Null && h.GetRef(cur, fNext2) != vm.NullRef {
			return fmt.Errorf("node %d: non-Transportable next2 travelled", count)
		}
		arr := h.GetRef(cur, fArr)
		if arr == vm.NullRef {
			return fmt.Errorf("node %d: array missing", count)
		}
		vals := h.Int32Slice(arr)
		if len(vals) != payloadLen {
			return fmt.Errorf("node %d: payload %d elems", count, len(vals))
		}
		for j, val := range vals {
			if val != int32(count*100+j) {
				return fmt.Errorf("node %d payload[%d] = %d", count, j, val)
			}
		}
		count++
	}
	if count != n {
		return fmt.Errorf("list length %d, want %d", count, n)
	}
	return nil
}

func TestOSendORecvLinkedList(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		if r.e.Comm.Rank() == 0 {
			head := buildLinkedList(r.v, mt, 8, 16)
			if err := r.e.OSend(r.th, head, 1, 0); err != nil {
				return err
			}
			if r.e.Stats.OOSends != 1 {
				return fmt.Errorf("OOSends %d", r.e.Stats.OOSends)
			}
			return nil
		}
		head, st, err := r.e.ORecv(r.th, 0, 0)
		if err != nil {
			return err
		}
		if st.Source != 0 {
			return fmt.Errorf("source %d", st.Source)
		}
		return verifyList(r.v.Heap, mt, head, 8, 16, true)
	})
}

func TestOSendSingleObjectNullsReferences(t *testing.T) {
	// Default single-object behaviour: simple data travels, non-
	// Transportable refs become null (§4.2.2). Transportable refs DO
	// travel — the LinkedArray list follows next.
	runRanks(t, 2, nil, func(r *rank) error {
		mt := r.v.MustNewClass("Mixed", nil, []vm.FieldSpec{
			{Name: "kept", Kind: vm.KindRef, Transportable: true},
			{Name: "dropped", Kind: vm.KindRef},
			{Name: "v", Kind: vm.KindInt64},
		})
		h := r.v.Heap
		if r.e.Comm.Rank() == 0 {
			obj, _ := h.AllocClass(mt)
			pop := r.th.PushFrame(&obj)
			keep, _ := h.NewInt32Array([]int32{5})
			h.SetRef(obj, mt.FieldByName("kept"), keep)
			drop, _ := h.NewInt32Array([]int32{6})
			h.SetRef(obj, mt.FieldByName("dropped"), drop)
			h.SetScalar(obj, mt.FieldByName("v"), 77)
			pop()
			return r.e.OSend(r.th, obj, 1, 0)
		}
		obj, _, err := r.e.ORecv(r.th, 0, 0)
		if err != nil {
			return err
		}
		if h.GetScalar(obj, mt.FieldByName("v")) != 77 {
			return errors.New("scalar lost")
		}
		kept := h.GetRef(obj, mt.FieldByName("kept"))
		if kept == vm.NullRef || h.Int32Slice(kept)[0] != 5 {
			return errors.New("transportable ref lost")
		}
		if h.GetRef(obj, mt.FieldByName("dropped")) != vm.NullRef {
			return errors.New("non-transportable ref travelled")
		}
		return nil
	})
}

func TestOBcast(t *testing.T) {
	runRanks(t, 4, nil, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		var obj vm.Ref
		if r.e.Comm.Rank() == 1 {
			obj = buildLinkedList(r.v, mt, 5, 4)
		}
		out, err := r.e.OBcast(r.th, obj, 1)
		if err != nil {
			return err
		}
		// The root gets its original back (next2 intact); the others
		// get reconstructed copies with next2 dropped.
		return verifyList(r.v.Heap, mt, out, 5, 4, r.e.Comm.Rank() != 1)
	})
}

func TestOScatterOGather(t *testing.T) {
	const n = 4
	runRanks(t, n, nil, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		h := r.v.Heap
		c := r.e.Comm
		arrT := r.v.ArrayType(vm.KindRef, mt, 1)
		fID := mt.FieldByName("id")

		var arr vm.Ref
		if c.Rank() == 0 {
			// 10 nodes: ranks get 3,3,2,2.
			guard := &vm.RefRoots{Refs: []vm.Ref{vm.NullRef}}
			slot := guard.Refs
			r.v.AddRootProvider(guard)
			a, _ := h.AllocArray(arrT, 10)
			slot[0] = a
			for i := 0; i < 10; i++ {
				node, err := h.AllocClass(mt)
				if err != nil {
					return err
				}
				h.SetScalar(node, fID, uint64(uint32(int32(i))))
				h.SetElemRef(slot[0], i, node)
			}
			arr = slot[0]
			r.v.RemoveRootProvider(guard)
		}
		sub, err := r.e.OScatter(r.th, arr, 0)
		if err != nil {
			return err
		}
		lo, hi := serial.PartRange(10, n, c.Rank())
		if h.Length(sub) != hi-lo {
			return fmt.Errorf("rank %d sub length %d, want %d", c.Rank(), h.Length(sub), hi-lo)
		}
		for i := 0; i < hi-lo; i++ {
			node := h.GetElemRef(sub, i)
			if got := int32(uint32(h.GetScalar(node, fID))); got != int32(lo+i) {
				return fmt.Errorf("rank %d elem %d id %d, want %d", c.Rank(), i, got, lo+i)
			}
			// Transform for the gather leg.
			h.SetScalar(node, fID, uint64(uint32(int32(lo+i)+1000)))
		}
		whole, err := r.e.OGather(r.th, sub, 0)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if whole != vm.NullRef {
				return errors.New("non-root got a gather result")
			}
			return nil
		}
		if h.Length(whole) != 10 {
			return fmt.Errorf("gathered length %d", h.Length(whole))
		}
		for i := 0; i < 10; i++ {
			node := h.GetElemRef(whole, i)
			if got := int32(uint32(h.GetScalar(node, fID))); got != int32(i+1000) {
				return fmt.Errorf("gathered elem %d id %d", i, got)
			}
		}
		return nil
	})
}

func TestOOBufferStackReuseAndAging(t *testing.T) {
	runRanks(t, 2, nil, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		if r.e.Comm.Rank() == 0 {
			for i := 0; i < 5; i++ {
				head := buildLinkedList(r.v, mt, 3, 4)
				if err := r.e.OSend(r.th, head, 1, i); err != nil {
					return err
				}
			}
			if r.e.Stats.BufferReuses == 0 {
				return fmt.Errorf("no buffer reuse: %+v", r.e.Stats)
			}
			if r.e.PooledBuffers() == 0 {
				return errors.New("no pooled buffers")
			}
			// Two collections with no OO traffic: pooled buffers are
			// "unused since the last garbage collection" and must be
			// released (§7.5).
			r.th.CollectYoung()
			r.th.CollectYoung()
			if r.e.PooledBuffers() != 0 {
				return fmt.Errorf("%d stale buffers survived aging", r.e.PooledBuffers())
			}
			if r.e.Stats.BuffersCollected == 0 {
				return errors.New("BuffersCollected not counted")
			}
			return nil
		}
		for i := 0; i < 5; i++ {
			if _, _, err := r.e.ORecv(r.th, 0, i); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestOOOpsNeverPin(t *testing.T) {
	// "The Motor extended object oriented operations do not need to
	// pin memory" (§7.4): the serializer's native buffers make pins
	// unnecessary.
	runRanks(t, 2, nil, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		h := r.v.Heap
		if r.e.Comm.Rank() == 0 {
			head := buildLinkedList(r.v, mt, 6, 8)
			if err := r.e.OSend(r.th, head, 1, 0); err != nil {
				return err
			}
		} else {
			if _, _, err := r.e.ORecv(r.th, 0, 0); err != nil {
				return err
			}
		}
		if h.Stats.Pins != 0 {
			return fmt.Errorf("OO op pinned %d times", h.Stats.Pins)
		}
		if h.CondPinCount() != 0 {
			return errors.New("OO op registered conditional pins")
		}
		return nil
	})
}

// TestManagedPingPongMasm runs the full stack the way the paper's C#
// benchmark does: managed bytecode programs on two VMs exchanging
// messages through the System.MP FCalls.
func TestManagedPingPongMasm(t *testing.T) {
	const prog = `
.method main (0) int32
  .locals 4
  ; locals: 0=buf 1=iter 2=rank 3=count
  intern mp.rank
  stloc 2
  ldc.i4 64
  newarr int32
  stloc 0
  ldc.i4 10
  stloc 1
loop:
  ldloc 1  brfalse done
  ldloc 2  brtrue receiver
  ; rank 0: fill buf[0] with iter, send, recv back, check increment
  ldloc 0  ldc.i4 0  ldloc 1  stelem
  ldloc 0  ldc.i4 1  ldc.i4 7  intern mp.send
  ldloc 0  ldc.i4 1  ldc.i4 7  intern mp.recv  stloc 3
  ldloc 0  ldc.i4 0  ldelem
  ldloc 1  ldc.i4 1  add
  ceq
  brfalse fail
  br next
receiver:
  ldloc 0  ldc.i4 0  ldc.i4 7  intern mp.recv  stloc 3
  ldloc 0  ldc.i4 0
  ldloc 0  ldc.i4 0  ldelem  ldc.i4 1  add
  stelem
  ldloc 0  ldc.i4 0  ldc.i4 7  intern mp.send
next:
  ldloc 1  ldc.i4 1  sub  stloc 1
  br loop
done:
  ldc.i4 0
  ret.val
fail:
  ldc.i4 1
  ret.val
.end
`
	runRanks(t, 2, nil, func(r *rank) error {
		main, err := r.v.Assemble(prog)
		if err != nil {
			return err
		}
		out, err := r.th.Call(main)
		if err != nil {
			return err
		}
		if out.Int() != 0 {
			return fmt.Errorf("managed program failed on rank %d", r.e.Comm.Rank())
		}
		return nil
	})
}

// TestManagedOOTransportMasm exchanges a Transportable object tree
// between two managed programs.
func TestManagedOOTransportMasm(t *testing.T) {
	const prog = `
.class LinkedArray
  .field transportable int32[] array
  .field transportable LinkedArray next
  .field LinkedArray next2
.end

.method main (0) int32
  .locals 3
  intern mp.rank
  brtrue receiver
  ; rank 0: build 2-node list with payload [42], osend
  newobj LinkedArray
  stloc 0
  ldc.i4 1  newarr int32  stloc 1
  ldloc 1  ldc.i4 0  ldc.i4 42  stelem
  ldloc 0  ldloc 1  stfld LinkedArray.array
  ldloc 0  newobj LinkedArray  stfld LinkedArray.next
  ldloc 0  ldloc 0  stfld LinkedArray.next2   ; must not travel
  ldloc 0  ldc.i4 1  ldc.i4 3  intern mp.osend
  ldc.i4 0
  ret.val
receiver:
  ldc.i4 0  ldc.i4 3  intern mp.orecv
  stloc 0
  ; check payload
  ldloc 0  ldfld LinkedArray.array  ldc.i4 0  ldelem
  ldc.i4 42  ceq  brfalse fail
  ; check next travelled
  ldloc 0  ldfld LinkedArray.next  ldnull  ceq  brtrue fail
  ; check next2 did NOT travel
  ldloc 0  ldfld LinkedArray.next2  ldnull  ceq  brfalse fail
  ldc.i4 0
  ret.val
fail:
  ldc.i4 1
  ret.val
.end
`
	runRanks(t, 2, nil, func(r *rank) error {
		main, err := r.v.Assemble(prog)
		if err != nil {
			return err
		}
		out, err := r.th.Call(main)
		if err != nil {
			return err
		}
		if out.Int() != 0 {
			return fmt.Errorf("managed OO program failed on rank %d", r.e.Comm.Rank())
		}
		return nil
	})
}

func TestOScatterNonRootIgnoresArray(t *testing.T) {
	// Non-roots pass NullRef (their array argument is ignored, as in
	// MPI scatter semantics).
	runRanks(t, 3, nil, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		h := r.v.Heap
		var arr vm.Ref
		if r.e.Comm.Rank() == 0 {
			guard := &vm.RefRoots{Refs: []vm.Ref{vm.NullRef}}
			r.v.AddRootProvider(guard)
			a, _ := h.AllocArray(r.v.ArrayType(vm.KindRef, mt, 1), 3)
			guard.Refs[0] = a
			for i := 0; i < 3; i++ {
				n, _ := h.AllocClass(mt)
				h.SetScalar(n, mt.FieldByName("id"), uint64(uint32(int32(i))))
				h.SetElemRef(guard.Refs[0], i, n)
			}
			arr = guard.Refs[0]
			r.v.RemoveRootProvider(guard)
		}
		sub, err := r.e.OScatter(r.th, arr, 0)
		if err != nil {
			return err
		}
		if h.Length(sub) != 1 {
			return fmt.Errorf("rank %d part %d", r.e.Comm.Rank(), h.Length(sub))
		}
		node := h.GetElemRef(sub, 0)
		if got := int32(uint32(h.GetScalar(node, mt.FieldByName("id")))); got != int32(r.e.Comm.Rank()) {
			return fmt.Errorf("rank %d got id %d", r.e.Comm.Rank(), got)
		}
		return nil
	})
}

func TestOOTagIsolation(t *testing.T) {
	// Two OO exchanges on different tags between the same pair must
	// not cross-pair their size/data messages.
	runRanks(t, 2, nil, func(r *rank) error {
		mt := registerLinkedArray(r.v)
		if r.e.Comm.Rank() == 0 {
			a := buildLinkedList(r.v, mt, 2, 4)
			pop := r.th.PushFrame(&a)
			if err := r.e.OSend(r.th, a, 1, 10); err != nil {
				return err
			}
			pop()
			b := buildLinkedList(r.v, mt, 5, 4)
			pop2 := r.th.PushFrame(&b)
			defer pop2()
			return r.e.OSend(r.th, b, 1, 20)
		}
		// Receive tag 20 FIRST.
		got20, _, err := r.e.ORecv(r.th, 0, 20)
		if err != nil {
			return err
		}
		pop := r.th.PushFrame(&got20)
		got10, _, err := r.e.ORecv(r.th, 0, 10)
		if err != nil {
			return err
		}
		pop()
		if err := verifyList(r.v.Heap, mt, got20, 5, 4, true); err != nil {
			return fmt.Errorf("tag 20: %w", err)
		}
		return verifyList(r.v.Heap, mt, got10, 2, 4, true)
	})
}
