package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"motor/internal/mp"
	"motor/internal/obs"
	"motor/internal/vm"
)

// The progress chaos tier runs the full stack — managed threads,
// cooperative execution token, GC, message passing — with several VM
// threads sharing one rank while the background progress engine (or
// the inline polling baseline) completes their requests. It is the
// -race regression suite for the token/park discipline and for the
// snapshot-consistency fixes in the stats registry.

// runRanksAsync is runRanks with engine-lifecycle teardown in the
// order async progress requires: the main thread ends first
// (releasing the execution token so a gated pass can finish), then
// the progress engine stops, then the world closes.
func runRanksAsync(t *testing.T, n int, async bool, body func(r *rank) error) {
	t.Helper()
	worlds, err := mp.NewLocalWorlds(mp.ChannelShm, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(w *mp.World) {
			v := vm.New(vm.Config{
				Name: fmt.Sprintf("rank%d", w.Rank()),
				Heap: vm.HeapConfig{YoungSize: 64 << 10, InitialElder: 512 << 10, ArenaMax: 64 << 20},
			})
			e := Attach(v, w, WithAsyncProgress(async))
			th := v.StartThread("main")
			err := body(&rank{v: v, e: e, th: th})
			th.End()
			e.Close()
			w.Close()
			errc <- err
		}(worlds[i])
	}
	deadline := time.After(60 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("ranks deadlocked")
		}
	}
}

// chaosThreads runs K extra managed threads per rank, each allocating
// garbage (young GC pressure) and exchanging tagged arrays with its
// peer-rank twin, while a monitoring goroutine continuously snapshots
// the stats registry. The main thread parks on the workers' join —
// exercising Thread.Park — so the token circulates between workers,
// GC, and (in async mode) the gated progress engine.
func chaosThreads(t *testing.T, async bool) {
	K := 4
	iters := 30
	if testing.Short() {
		K, iters = 2, 10
	}
	runRanksAsync(t, 2, async, func(r *rank) error {
		peer := 1 - r.e.Comm.Rank()

		reg := new(obs.Registry)
		r.e.RegisterStats(reg)
		stopMon := make(chan struct{})
		var mon sync.WaitGroup
		mon.Add(1)
		go func() {
			defer mon.Done()
			for {
				select {
				case <-stopMon:
					return
				default:
				}
				snap := reg.Snapshot()
				if len(snap.Groups) == 0 {
					panic("empty registry snapshot")
				}
			}
		}()

		var wg sync.WaitGroup
		werrs := make(chan error, K)
		for k := 0; k < K; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				th := r.v.StartThread(fmt.Sprintf("worker%d", k))
				defer th.End()
				h := r.v.Heap
				for i := 0; i < iters; i++ {
					if err := func() error {
						// Garbage to keep the young collector busy
						// while siblings are parked in waits.
						if _, err := h.NewInt32Array(make([]int32, 64)); err != nil {
							return err
						}
						msg, err := h.NewInt32Array([]int32{int32(k), int32(i)})
						if err != nil {
							return err
						}
						// Root the ref: sibling threads trigger
						// collections while this one is parked.
						release := th.PushFrame(&msg)
						defer release()
						tag := k*iters + i
						if r.e.Comm.Rank() == 0 {
							if err := r.e.Send(th, msg, peer, tag); err != nil {
								return fmt.Errorf("worker %d send %d: %w", k, i, err)
							}
							if _, err := r.e.Recv(th, msg, peer, tag); err != nil {
								return fmt.Errorf("worker %d recv %d: %w", k, i, err)
							}
						} else {
							if _, err := r.e.Recv(th, msg, peer, tag); err != nil {
								return fmt.Errorf("worker %d recv %d: %w", k, i, err)
							}
							got := h.Int32Slice(msg)
							if got[0] != int32(k) || got[1] != int32(i) {
								return fmt.Errorf("worker %d msg %d: got %v", k, i, got[:2])
							}
							if err := r.e.Send(th, msg, peer, tag); err != nil {
								return fmt.Errorf("worker %d send %d: %w", k, i, err)
							}
						}
						return nil
					}(); err != nil {
						werrs <- err
						return
					}
					if i%10 == 9 {
						th.CollectYoung()
					}
				}
			}(k)
		}
		// Park the main thread on the join: the execution token must
		// keep circulating among the workers (and the progress engine)
		// while it sleeps.
		r.th.Park(wg.Wait)
		close(stopMon)
		mon.Wait()
		close(werrs)
		for err := range werrs {
			return err
		}
		if n := r.e.World.Dev.Outstanding(); n != 0 {
			return fmt.Errorf("%d requests leaked", n)
		}
		if async {
			if st := r.e.ProgressStats(); st.Passes == 0 {
				return fmt.Errorf("async mode but progress engine never ran: %+v", st)
			}
		}
		gc := r.v.Heap.Stats.Snapshot()
		if gc.Scavenges+gc.FullGCs == 0 {
			return fmt.Errorf("no collections despite GC pressure")
		}
		return nil
	})
}

// TestProgressChaosMultiThread is the differential form of the chaos
// run: the identical multi-threaded workload must pass with inline
// polling and with the background progress engine.
func TestProgressChaosMultiThread(t *testing.T) {
	for _, async := range []bool{false, true} {
		async := async
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			chaosThreads(t, async)
		})
	}
}

// TestProgressRegistrySnapshotRace is the focused regression test for
// the snapshot-consistency fix: registry snapshots (which aggregate
// engine, device, GC, collective and progress counters) must be safe
// while a full send/recv + GC workload mutates every one of those
// counter sets. Before the fix, GCStats and CollStats were read
// field-by-field without atomics and -race flagged this exact
// pattern.
func TestProgressRegistrySnapshotRace(t *testing.T) {
	runRanksAsync(t, 2, true, func(r *rank) error {
		reg := new(obs.Registry)
		r.e.RegisterStats(reg)

		stop := make(chan struct{})
		var mon sync.WaitGroup
		for m := 0; m < 2; m++ {
			mon.Add(1)
			go func() {
				defer mon.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					reg.Snapshot()
				}
			}()
		}

		h := r.v.Heap
		peer := 1 - r.e.Comm.Rank()
		iters := 100
		if testing.Short() {
			iters = 25
		}
		err := func() error {
			for i := 0; i < iters; i++ {
				msg, err := h.NewInt32Array([]int32{int32(i)})
				if err != nil {
					return err
				}
				if r.e.Comm.Rank() == 0 {
					if err := r.e.Send(r.th, msg, peer, 0); err != nil {
						return err
					}
					if _, err := r.e.Recv(r.th, msg, peer, 0); err != nil {
						return err
					}
				} else {
					if _, err := r.e.Recv(r.th, msg, peer, 0); err != nil {
						return err
					}
					if err := r.e.Send(r.th, msg, peer, 0); err != nil {
						return err
					}
				}
				if err := r.e.Barrier(r.th); err != nil {
					return err
				}
				if i%20 == 19 {
					r.th.CollectFull()
				}
			}
			return nil
		}()
		close(stop)
		mon.Wait()
		return err
	})
}
