package core

// Verifier-facing description of the System.MP FCall surface. The
// table is the single source of truth for arity and result kind:
// registerFCalls derives every RegisterInternal call from it (a
// missing or disagreeing entry is a programming error and panics at
// engine construction), and the load-time verifier (internal/vm/
// bcverify) consumes it via Signatures to type intern results and to
// prove transferability of buffer arguments statically.
//
// Buffer parameters carry the integrity constraint the engine
// otherwise checks dynamically (paper §4.2.1): NoRefFields for
// whole-object transfers (engine.wholeBuf), SimpleArray for the
// offset/count range transfers (engine.rangeBuf). The object-oriented
// operations (mp.osend and friends) transfer arbitrary object graphs
// by marshalling and therefore constrain nothing.

import (
	"fmt"
	"sort"

	"motor/internal/vm"
	"motor/internal/vm/bcverify"
)

// whole marks args as NoRefFields transport buffers.
func whole(args ...int) []bcverify.BufParam {
	bps := make([]bcverify.BufParam, len(args))
	for i, a := range args {
		bps[i] = bcverify.BufParam{Arg: a, Constraint: bcverify.NoRefFields}
	}
	return bps
}

// ranged marks args as SimpleArray transport buffers.
func ranged(args ...int) []bcverify.BufParam {
	bps := make([]bcverify.BufParam, len(args))
	for i, a := range args {
		bps[i] = bcverify.BufParam{Arg: a, Constraint: bcverify.SimpleArray}
	}
	return bps
}

var fcallSigs = map[string]bcverify.Sig{
	"mp.rank":  {NArgs: 0, Ret: vm.KindInt64},
	"mp.size":  {NArgs: 0, Ret: vm.KindInt64},
	"mp.wtime": {NArgs: 0, Ret: vm.KindFloat64},

	"mp.send":      {NArgs: 3, Bufs: whole(0)},
	"mp.ssend":     {NArgs: 3, Bufs: whole(0)},
	"mp.recv":      {NArgs: 3, Ret: vm.KindInt64, Bufs: whole(0)},
	"mp.sendrange": {NArgs: 5, Bufs: ranged(0)},
	"mp.recvrange": {NArgs: 5, Ret: vm.KindInt64, Bufs: ranged(0)},

	"mp.isend": {NArgs: 3, Ret: vm.KindInt64, Bufs: whole(0)},
	"mp.irecv": {NArgs: 3, Ret: vm.KindInt64, Bufs: whole(0)},
	"mp.wait":  {NArgs: 1, Ret: vm.KindInt64},
	"mp.test":  {NArgs: 1, Ret: vm.KindBool},

	"mp.barrier":   {NArgs: 0},
	"mp.bcast":     {NArgs: 2, Bufs: whole(0)},
	"mp.scatter":   {NArgs: 3, Bufs: whole(0, 1)},
	"mp.gather":    {NArgs: 3, Bufs: whole(0, 1)},
	"mp.allgather": {NArgs: 2, Bufs: whole(0, 1)},
	"mp.alltoall":  {NArgs: 2, Bufs: whole(0, 1)},
	"mp.sendrecv":  {NArgs: 6, Ret: vm.KindInt64, Bufs: whole(0, 3)},
	"mp.reduce":    {NArgs: 4, Bufs: whole(0, 1)},
	"mp.allreduce": {NArgs: 3, Bufs: whole(0, 1)},

	"mp.commdup":   {NArgs: 1, Ret: vm.KindInt64},
	"mp.commsplit": {NArgs: 3, Ret: vm.KindInt64},
	"mp.commrank":  {NArgs: 1, Ret: vm.KindInt64},
	"mp.commsize":  {NArgs: 1, Ret: vm.KindInt64},
	"mp.commfree":  {NArgs: 1},

	"mp.sendon":      {NArgs: 4, Bufs: whole(1)},
	"mp.recvon":      {NArgs: 4, Ret: vm.KindInt64, Bufs: whole(1)},
	"mp.barrieron":   {NArgs: 1},
	"mp.bcaston":     {NArgs: 3, Bufs: whole(1)},
	"mp.reduceon":    {NArgs: 5, Bufs: whole(1, 2)},
	"mp.allgatheron": {NArgs: 3, Bufs: whole(1, 2)},
	"mp.alltoallon":  {NArgs: 3, Bufs: whole(1, 2)},

	"mp.osend":    {NArgs: 3},
	"mp.orecv":    {NArgs: 2, Ret: vm.KindRef},
	"mp.obcast":   {NArgs: 2, Ret: vm.KindRef},
	"mp.oscatter": {NArgs: 2, Ret: vm.KindRef},
	"mp.ogather":  {NArgs: 2, Ret: vm.KindRef},
}

// Signatures returns the verifier signatures of the System.MP FCall
// surface, keyed by intern name. Pass the result to
// bcverify.Options.Sigs (Engine.VerifyModule does this).
func Signatures() map[string]bcverify.Sig {
	out := make(map[string]bcverify.Sig, len(fcallSigs))
	for name, s := range fcallSigs {
		s.Name = name
		out[name] = s
	}
	return out
}

// fcallSig looks up the signature for a registration and panics on a
// missing entry — the table and registerFCalls must stay in sync.
func fcallSig(name string) bcverify.Sig {
	s, ok := fcallSigs[name]
	if !ok {
		panic(fmt.Sprintf("core: FCall %s has no entry in fcallSigs", name))
	}
	return s
}

// RegisterVerifyStubs registers the whole System.MP surface on a bare
// VM as error-returning stubs. This lets tools (cmd/motor -check) and
// tests assemble and verify modules that intern mp.* without building
// a world; executing a stub traps.
func RegisterVerifyStubs(v *vm.VM) {
	names := make([]string, 0, len(fcallSigs))
	for name := range fcallSigs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := v.InternalIndex(name); ok {
			continue
		}
		sig := fcallSigs[name]
		stubName := name
		v.RegisterInternal(vm.InternalFunc{
			Name:   name,
			NArgs:  sig.NArgs,
			HasRet: sig.Ret != vm.KindVoid,
			Fn: func(t *vm.Thread, a []vm.Value) (vm.Value, error) {
				return vm.Value{}, fmt.Errorf("core: %s is a verify-only stub (no engine attached)", stubName)
			},
		})
	}
}
