package core

import (
	"crypto/sha256"
	"encoding/binary"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"motor/internal/vm"
)

// Load-path acceleration: quickening of verified modules plus a
// process-global module verdict cache. The cache addresses the ranks
// problem — in a Motor world every rank's VM loads the same masm
// source, and without memoization each one pays the full abstract-
// interpretation fixpoint. Verification verdicts (MaxStack, transport
// safety, per-instruction facts) are pointer-free, so they can be
// shared across VMs keyed by module content hash plus a registry
// fingerprint; quickened bodies themselves are pointer-laden and are
// recompiled per VM from the cached facts, which is a cheap linear
// pass. Folding vm.TypeGen into the fingerprint makes any registry
// rollback (PR 5's epoch machinery) a conservative cache miss.

// QuickenStats aggregates load-time quickening activity on this
// engine (obs group "quicken"). Uint64 fields so the obs registry
// flattens them like every other counter group.
type QuickenStats struct {
	Methods           uint64 // methods quickened
	Skipped           uint64 // verified methods the quickener declined (run baseline)
	InstsIn           uint64 // bytecode instructions consumed
	InstsOut          uint64 // quickened instructions emitted
	Fused             uint64 // superinstructions formed
	Devirted          uint64 // callvirt sites bound to exact implementations
	VerifyCacheHits   uint64 // module loads that skipped the verifier fixpoint
	VerifyCacheMisses uint64
	ElapsedNs         uint64 // wall time spent quickening
}

// Snapshot returns a race-safe copy of the counters.
func (s *QuickenStats) Snapshot() QuickenStats {
	return QuickenStats{
		Methods:           atomic.LoadUint64(&s.Methods),
		Skipped:           atomic.LoadUint64(&s.Skipped),
		InstsIn:           atomic.LoadUint64(&s.InstsIn),
		InstsOut:          atomic.LoadUint64(&s.InstsOut),
		Fused:             atomic.LoadUint64(&s.Fused),
		Devirted:          atomic.LoadUint64(&s.Devirted),
		VerifyCacheHits:   atomic.LoadUint64(&s.VerifyCacheHits),
		VerifyCacheMisses: atomic.LoadUint64(&s.VerifyCacheMisses),
		ElapsedNs:         atomic.LoadUint64(&s.ElapsedNs),
	}
}

// --- module verdict cache ----------------------------------------------------

// methodVerdict is the pointer-free verification result of one method,
// valid for any VM whose registry fingerprint matches the key.
type methodVerdict struct {
	MaxStack          int
	TransportVerified bool
	Facts             map[int]vm.InstFact // shared read-only across VMs
}

type moduleVerdict struct {
	methods []methodVerdict
}

// verdictKey is sha256(source) plus the registry fingerprint.
type verdictKey [sha256.Size + 8]byte

// maxVerdicts bounds the process-global cache; eviction is arbitrary
// (map order), which is fine for a cache of successful load verdicts.
const maxVerdicts = 256

var verdictCache = struct {
	sync.Mutex //motorlint:lockorder 10 engine
	m          map[verdictKey]*moduleVerdict
}{m: make(map[verdictKey]*moduleVerdict)}

func makeVerdictKey(src string, fp uint64) verdictKey {
	var k verdictKey
	sum := sha256.Sum256([]byte(src))
	copy(k[:], sum[:])
	binary.LittleEndian.PutUint64(k[sha256.Size:], fp)
	return k
}

func loadVerdict(k verdictKey) *moduleVerdict {
	verdictCache.Lock()
	defer verdictCache.Unlock()
	return verdictCache.m[k]
}

func storeVerdict(k verdictKey, v *moduleVerdict) {
	verdictCache.Lock()
	defer verdictCache.Unlock()
	if len(verdictCache.m) >= maxVerdicts {
		for old := range verdictCache.m {
			delete(verdictCache.m, old)
			break
		}
	}
	verdictCache.m[k] = v
}

// FlushVerdictCache empties the process-global module verdict cache
// (tests).
func FlushVerdictCache() {
	verdictCache.Lock()
	defer verdictCache.Unlock()
	verdictCache.m = make(map[verdictKey]*moduleVerdict)
}

// registryFingerprint hashes everything a cached verdict depends on:
// every registered type's identity and layout, every method signature
// and index, global and internal-call names — and the registry
// generation, so a rollback (which may free indices for reuse) can
// never produce a stale hit. Two VMs that performed the same
// registrations in the same order (the N-identical-ranks case) hash
// equal; any divergence is a conservative miss.
func registryFingerprint(v *vm.VM) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	wb := func(b bool) {
		if b {
			wu(1)
		} else {
			wu(0)
		}
	}
	ws := func(s string) {
		io.WriteString(h, s)
		h.Write([]byte{0})
	}
	tidx := func(mt *vm.MethodTable) uint64 {
		if mt == nil {
			return 0
		}
		return uint64(mt.Index) + 1
	}

	wu(v.TypeGen())
	wu(uint64(v.NumTypes()))
	for i := 0; i < v.NumTypes(); i++ {
		mt, _ := v.TypeByIndex(i)
		ws(mt.Name)
		wu(uint64(mt.Kind))
		wu(tidx(mt.Parent))
		wu(uint64(mt.InstanceSize))
		wu(uint64(len(mt.Fields)))
		for j := range mt.Fields {
			f := &mt.Fields[j]
			ws(f.Name)
			wu(uint64(f.Offset()))
			wu(uint64(f.Kind()))
			wb(f.Transportable())
			wu(tidx(f.DeclaredType))
		}
		wu(uint64(mt.Elem))
		wu(tidx(mt.ElemMT))
		wu(uint64(mt.Rank))
		wu(uint64(len(mt.VTable)))
	}

	wu(uint64(v.NumMethods()))
	for i := 0; i < v.NumMethods(); i++ {
		m, _ := v.MethodByIndex(i)
		ws(m.FullName())
		wu(tidx(m.Owner))
		wu(uint64(m.NArgs))
		wu(uint64(m.NLocals))
		wb(m.HasRet)
		wb(m.Virtual)
		wu(uint64(m.VSlot))
		wu(uint64(m.RetKind))
		wu(tidx(m.RetClass))
		wu(uint64(len(m.Code)))
		h.Write(m.Code)
	}

	names := v.GlobalNames()
	wu(uint64(len(names)))
	for _, n := range names {
		ws(n)
	}

	for i := 0; ; i++ {
		fn, ok := v.InternalByIndex(i)
		if !ok {
			wu(uint64(i))
			break
		}
		ws(fn.Name)
		wu(uint64(fn.NArgs))
		wb(fn.HasRet)
	}

	return h.Sum64()
}

// VerifyModuleCached is VerifyModule behind the process-global verdict
// cache: when a module with identical source was already verified
// against a registry with an identical fingerprint (typically by a
// sibling rank's VM), the abstract-interpretation fixpoint is skipped
// and the cached per-method verdicts — MaxStack, transport safety,
// quickening facts — are applied directly. Called after assembly, so
// the fingerprint covers the module's own freshly registered types,
// which deterministic assembly makes reproducible across VMs.
func (e *Engine) VerifyModuleCached(src string, methods []*vm.Method) error {
	key := makeVerdictKey(src, registryFingerprint(e.VM))
	if verdict := loadVerdict(key); verdict != nil && len(verdict.methods) == len(methods) {
		for i, m := range methods {
			mv := verdict.methods[i]
			m.Verified = true
			m.TransportVerified = mv.TransportVerified
			if mv.MaxStack > m.MaxStack {
				m.MaxStack = mv.MaxStack
			}
			m.Facts = mv.Facts
		}
		bump(&e.Quicken.VerifyCacheHits, 1)
		return nil
	}
	bump(&e.Quicken.VerifyCacheMisses, 1)
	if err := e.VerifyModule(methods); err != nil {
		return err
	}
	verdict := &moduleVerdict{methods: make([]methodVerdict, len(methods))}
	for i, m := range methods {
		verdict.methods[i] = methodVerdict{
			MaxStack:          m.MaxStack,
			TransportVerified: m.TransportVerified,
			Facts:             m.Facts,
		}
	}
	storeVerdict(key, verdict)
	return nil
}

// QuickenModule compiles every verified method of a freshly loaded
// module into quickened form. A method the quickener declines runs on
// baseline dispatch — correctness never depends on quickening, so
// refusals degrade performance, not behaviour. Counters land in
// e.Quicken (obs group "quicken").
func (e *Engine) QuickenModule(methods []*vm.Method) {
	start := time.Now()
	for _, m := range methods {
		if !m.Verified {
			bump(&e.Quicken.Skipped, 1)
			continue
		}
		info, err := e.VM.QuickenMethod(m)
		if err != nil {
			bump(&e.Quicken.Skipped, 1)
			continue
		}
		bump(&e.Quicken.Methods, 1)
		bump(&e.Quicken.InstsIn, uint64(info.In))
		bump(&e.Quicken.InstsOut, uint64(info.Out))
		bump(&e.Quicken.Fused, uint64(info.Fused))
		bump(&e.Quicken.Devirted, uint64(info.Devirted))
	}
	bump(&e.Quicken.ElapsedNs, uint64(time.Since(start).Nanoseconds()))
}
