package vm

import (
	"fmt"
	"sync"
	"testing"
)

// TestStressRootBeforeDerefRegression is the runtime form of the
// PR 6 rooting bug class that the motorlint rootbeforederef analyzer
// mechanizes (its reduced form lives in
// internal/analysis/testdata/src/rootbeforederef/bad): an engine
// entry point that crosses a safepoint with an unrooted vm.Ref sees
// a stale address once a sibling thread's collection moves the
// object.
//
// The worker follows the §5.3 discipline — root via PushFrame, then
// park across the safepoint (the blocking-wait shape of recv entry
// points) and use the forwarded ref. Before rooting it saves the raw
// ref value the buggy pre-PR 6 shape would have kept using. The
// sibling collects while the worker is parked, so every round has a
// real move window. The test asserts both directions:
//
//   - the rooted ref's payload is never corrupted (the fix works);
//   - the saved unrooted copy diverges from the forwarded ref at
//     least once (dereferencing the copy, as the pre-PR 6 entry
//     points did, would have read evacuated memory).
//
// Run under -race via the stress tier (scripts/verify.sh stress).
func TestStressRootBeforeDerefRegression(t *testing.T) {
	v := New(Config{Heap: HeapConfig{YoungSize: 16 << 10, InitialElder: 128 << 10, ArenaMax: 128 << 20}})
	const rounds = 100
	reqCh := make(chan struct{})
	doneCh := make(chan struct{})
	staleObserved := 0
	var wg sync.WaitGroup
	errs := make(chan error, 2)

	// Worker: the fixed entry-point shape.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := v.StartThread("entry")
		defer th.End()
		defer close(reqCh)
		for i := 0; i < rounds; i++ {
			payload := []int32{int32(i), int32(i * 7)}
			obj, err := v.Heap.NewInt32Array(payload)
			if err != nil {
				errs <- err
				return
			}
			stale := obj // what the buggy shape would have used
			pop := th.PushFrame(&obj)
			// Parked at a safepoint: the sibling collects now.
			th.Park(func() {
				reqCh <- struct{}{}
				<-doneCh
			})
			if obj != stale {
				staleObserved++
			}
			got := v.Heap.Int32Slice(obj)
			if got[0] != int32(i) || got[1] != int32(i*7) {
				pop()
				errs <- fmt.Errorf("round %d: rooted ref payload corrupted: %v", i, got)
				return
			}
			pop()
		}
		errs <- nil
	}()

	// Sibling: churns garbage and collects on request while the
	// worker is parked.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := v.StartThread("sibling")
		defer th.End()
		for i := 0; ; i++ {
			ok := false
			th.Park(func() { _, ok = <-reqCh })
			if !ok {
				errs <- nil
				return
			}
			if _, err := v.Heap.NewUint8Array(make([]byte, 512)); err != nil {
				errs <- err
				return
			}
			if i%4 == 3 {
				th.CollectFull()
			} else {
				th.CollectYoung()
			}
			th.Park(func() { doneCh <- struct{}{} })
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if staleObserved == 0 {
		t.Fatal("unrooted ref copy never went stale: the test exercised no move window")
	}
}
