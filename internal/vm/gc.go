package vm

import (
	"sync/atomic"
	"time"

	"motor/internal/obs"
)

// The collector. Two-generational, stop-the-world (trivially so,
// because managed execution is cooperatively scheduled — see
// thread.go):
//
//   - A scavenge evacuates the younger block: live objects are copied
//     into the elder space and every reference is forwarded. Pinned
//     objects are marked in place and never move; if any survive, the
//     whole younger block is donated to the elder generation and a
//     fresh block carved — the exact SSCLI behaviour described in
//     §5.2 of the paper.
//   - A full collection additionally mark-sweeps the elder space in
//     place (the elder generation is never compacted).
//
// Conditional pin requests are resolved at the start of the mark
// phase: requests whose transport operation is still in flight pin
// their object for the cycle; completed requests are discarded
// (§4.3, §7.4). The Motor message-passing core registers a GC hook so
// transport completion state is fresh when the requests are examined.

// collect runs a collection. Callers must be in managed context (own
// the execution token) — allocation sites and Thread.Collect* satisfy
// this.
//
// Dispatch: gcworkers=1 runs the exact-legacy serial collector below;
// gcworkers>1 runs the modern collector (gcpar.go/gccompact.go) —
// work-stealing parallel mark, pin-aware promotion, elder compaction.
func (v *VM) collect(full bool) {
	h := v.Heap
	if h.inGC {
		return
	}
	h.inGC = true
	defer func() { h.inGC = false }()

	if h.gcWorkers > 1 {
		v.collectModern(full)
		return
	}

	tr := obs.Active()
	if tr != nil {
		kind := obs.GCScavenge
		if full {
			kind = obs.GCFull
		}
		tr.Begin(v.traceLane, obs.KGC, uint64(kind))
	}

	start := time.Now()
	if tr != nil {
		tr.Begin(v.traceLane, obs.KGCPhase, uint64(obs.PhaseHooks))
	}
	for _, hook := range v.gcHooks {
		hook()
	}
	if tr != nil {
		tr.End(v.traceLane)
		tr.Begin(v.traceLane, obs.KGCPhase, uint64(obs.PhaseCondPins))
	}
	pinned := h.pinnedForCycle()
	if tr != nil {
		tr.End(v.traceLane)
		tr.Begin(v.traceLane, obs.KGCPhase, uint64(obs.PhaseScavenge))
	}
	h.scavenge(v, pinned)
	if tr != nil {
		tr.End(v.traceLane)
	}
	if full {
		h.fullMarkSweep(v, pinned)
	}
	pause := uint64(time.Since(start).Nanoseconds())
	gcKind := obs.GCScavenge
	if full {
		gcKind = obs.GCFull
	}
	// Watchdog attribution: a stall diagnosis cites the last collection
	// (kind, pause, recency) so GC-induced hangs are distinguishable
	// from transport ones. Runs with or without a tracer.
	obs.NoteGC(gcKind, int64(pause))
	atomic.AddUint64(&h.Stats.PauseNs, pause)
	for {
		max := atomic.LoadUint64(&h.Stats.MaxPauseNs)
		if pause <= max || atomic.CompareAndSwapUint64(&h.Stats.MaxPauseNs, max, pause) {
			break
		}
	}
	if tr != nil {
		tr.End(v.traceLane)
		tr.Record(obs.HistGCPause, int64(pause))
	}
}

// visitAllRoots enumerates every reference slot outside the heap:
// the handle table, statics, all managed threads' stacks and
// protected frames, and embedder-provided root sets.
func (v *VM) visitAllRoots(visit func(Ref) Ref) {
	v.Handles.VisitRoots(visit)
	for i := range v.globals {
		if v.globals[i].IsRef && v.globals[i].Bits != 0 {
			v.globals[i].Bits = uint64(visit(Ref(v.globals[i].Bits)))
		}
	}
	v.mu.Lock()
	threads := make([]*Thread, 0, len(v.threads))
	for t := range v.threads {
		threads = append(threads, t)
	}
	v.mu.Unlock()
	for _, t := range threads {
		t.visitRoots(visit)
	}
	for _, p := range v.extraRoots {
		p.VisitRoots(visit)
	}
}

// scanRefSlots applies f to every reference slot inside the object,
// writing back changed values. Used by both GC phases.
func (h *Heap) scanRefSlots(obj Ref, f func(Ref) Ref) {
	mt := h.MT(obj)
	if mt.Kind == TKArray {
		if mt.Elem != KindRef {
			return
		}
		base := uint32(obj) + arrayDataOff(mt)
		n := int(h.arrayLen(obj))
		for i := 0; i < n; i++ {
			slot := base + uint32(4*i)
			if r := Ref(h.u32(slot)); r != NullRef {
				if nr := f(r); nr != r {
					h.putU32(slot, uint32(nr))
				}
			}
		}
		return
	}
	for _, off := range mt.RefOffsets {
		slot := uint32(obj) + HeaderSize + off
		if r := Ref(h.u32(slot)); r != NullRef {
			if nr := f(r); nr != r {
				h.putU32(slot, uint32(nr))
			}
		}
	}
}

// reservePromotionSpace guarantees a single free elder block large
// enough to absorb the entire live nursery, so evacuation can never
// fail partway (which would leave the heap inconsistent). Reports
// false when the arena cannot provide it.
func (h *Heap) reservePromotionSpace(need uint32) bool {
	if need == 0 {
		return true
	}
	// Splitting can absorb up to 8 bytes per promotion (tails smaller
	// than a header), so pad the reservation by half.
	need += need/2 + HeaderSize
	for _, fb := range h.freeList {
		if fb.size >= need {
			return true
		}
	}
	size := align8(need + HeaderSize)
	start, err := h.carve(size)
	if err != nil {
		return false
	}
	h.addElderRange(start, start+size)
	return true
}

// scavenge evacuates the younger block.
func (h *Heap) scavenge(v *VM, pinned map[Ref]struct{}) {
	ys, ye, yp := h.youngStart, h.youngEnd, h.youngPos
	if ys == ye {
		return // degraded mode: no nursery
	}
	if !h.reservePromotionSpace(yp - ys) {
		// Cannot guarantee evacuation: leave the nursery as is; the
		// allocator will fall back to the elder space and surface
		// ErrOutOfMemory there.
		return
	}
	atomic.AddUint64(&h.Stats.Scavenges, 1)
	inYoung := func(r Ref) bool { return uint32(r) >= ys && uint32(r) < ye }

	var scan []Ref
	pinnedSurvivors := false

	var forward func(Ref) Ref
	forward = func(r Ref) Ref {
		if r == NullRef || !inYoung(r) {
			return r
		}
		fl := h.flags(r)
		if fl&flagForwarded != 0 {
			return Ref(h.u32(uint32(r) + hdrMT))
		}
		if _, pin := pinned[r]; pin {
			if fl&flagMark == 0 {
				h.orFlags(r, flagMark)
				pinnedSurvivors = true
				scan = append(scan, r)
			}
			return r
		}
		size := h.objSize(r)
		newOff, ok := h.elderFit(size)
		if !ok {
			rangeSize := h.youngSize * 4
			if rangeSize < size+HeaderSize {
				rangeSize = align8(size + HeaderSize)
			}
			start, err := h.carve(rangeSize)
			if err != nil {
				panic(ErrOutOfMemory)
			}
			h.addElderRange(start, start+rangeSize)
			newOff, ok = h.elderFit(size)
			if !ok {
				panic(ErrOutOfMemory)
			}
		}
		copy(h.mem[newOff:newOff+size], h.mem[uint32(r):uint32(r)+size])
		h.putU32(uint32(r)+hdrMT, newOff)
		h.orFlags(r, flagForwarded)
		atomic.AddUint64(&h.Stats.BytesPromoted, uint64(size))
		scan = append(scan, Ref(newOff))
		return Ref(newOff)
	}

	// Roots: external slots, pinned objects (a transport holds their
	// address, so they are live regardless of managed reachability),
	// and elder objects recorded by the write barrier.
	v.visitAllRoots(forward)
	for r := range pinned {
		if inYoung(r) {
			forward(r)
		}
	}
	for obj := range h.remembered {
		h.scanRefSlots(obj, forward)
	}

	for len(scan) > 0 {
		obj := scan[len(scan)-1]
		scan = scan[:len(scan)-1]
		h.scanRefSlots(obj, forward)
	}

	if pinnedSurvivors {
		h.donateYoungBlock(ys, ye, yp)
		atomic.AddUint64(&h.Stats.BlocksDonated, 1)
		if err := h.newYoungBlock(); err != nil {
			// Arena exhausted: run without a nursery; allocations
			// fall through to the elder space.
			h.youngStart, h.youngPos, h.youngEnd = 0, 0, 0
		}
	} else {
		// The whole block is dead or evacuated: reset and reuse.
		clearBytes(h.mem[ys:yp])
		h.youngPos = ys
	}
	// The younger generation is empty (or donated): the remembered
	// set can be rebuilt from scratch by the write barrier.
	h.remembered = make(map[Ref]struct{})
}

// donateYoungBlock relabels the current younger block as elder space:
// pinned survivors stay where they are as elder objects; dead gaps
// become free blocks. Dead and live donated bytes are accounted
// separately in Stats (DonatedLiveBytes/DonatedDeadBytes) — the
// parity suite asserts the split covers the donated range.
func (h *Heap) donateYoungBlock(ys, ye, yp uint32) {
	freeStart := ys
	pos := ys
	var live, dead uint64
	flushFree := func(end uint32) {
		if end > freeStart {
			size := end - freeStart
			if size >= HeaderSize {
				h.writeFreeBlock(freeStart, size)
				h.freeList = append(h.freeList, freeBlock{freeStart, size})
				dead += uint64(size)
			}
		}
	}
	for pos < yp {
		size := h.objSize(Ref(pos))
		if size < HeaderSize || pos+size > yp {
			// Corrupt walk — should not happen; absorb the rest.
			break
		}
		fl := h.flags(Ref(pos))
		if fl&flagMark != 0 && fl&flagForwarded == 0 {
			// Pinned survivor: keep in place, now elder.
			flushFree(pos)
			h.clearFlags(Ref(pos), flagMark)
			h.elderUsed += size
			live += uint64(size)
			freeStart = pos + size
		}
		pos += size
	}
	end := ye
	if end-freeStart > 0 && end-freeStart < HeaderSize {
		// The trailing gap is too small to carry a free-block header.
		// Donating it would leave elder-range bytes covered by no
		// header, breaking every linear walk (sweep, CheckInvariants);
		// truncate the range at the last survivor instead and leak the
		// sub-header tail outside all spaces — the same policy the
		// sweep applies to sub-header runs.
		end = freeStart
	}
	h.elderRanges = append(h.elderRanges, rng{ys, end})
	flushFree(end)
	atomic.AddUint64(&h.Stats.DonatedLiveBytes, live)
	atomic.AddUint64(&h.Stats.DonatedDeadBytes, dead)
}

// fullMarkSweep marks from all roots and sweeps the elder ranges in
// place, rebuilding the free lists with coalescing.
func (h *Heap) fullMarkSweep(v *VM, pinned map[Ref]struct{}) {
	atomic.AddUint64(&h.Stats.FullGCs, 1)
	tr := obs.Active()
	if tr != nil {
		tr.Begin(v.traceLane, obs.KGCPhase, uint64(obs.PhaseMark))
	}
	var stack []Ref
	mark := func(r Ref) Ref {
		if r == NullRef {
			return r
		}
		if h.flags(r)&flagMark == 0 {
			h.orFlags(r, flagMark)
			stack = append(stack, r)
		}
		return r
	}
	v.visitAllRoots(mark)
	for r := range pinned {
		mark(r)
	}
	for len(stack) > 0 {
		obj := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		h.scanRefSlots(obj, mark)
	}
	if tr != nil {
		tr.End(v.traceLane)
		tr.Begin(v.traceLane, obs.KGCPhase, uint64(obs.PhaseSweep))
	}

	// Sweep.
	h.freeList = h.freeList[:0]
	h.elderUsed = 0
	for _, rg := range h.elderRanges {
		pos := rg.start
		freeStart := rg.start
		flush := func(end uint32) {
			// Runs smaller than a header cannot be described in place;
			// they are leaked until the surrounding space coalesces.
			if end > freeStart && end-freeStart >= HeaderSize {
				size := end - freeStart
				h.writeFreeBlock(freeStart, size)
				h.freeList = append(h.freeList, freeBlock{freeStart, size})
			}
		}
		for pos < rg.end {
			size := h.objSize(Ref(pos))
			if size < HeaderSize || pos+size > rg.end {
				break
			}
			if h.mtIndex(Ref(pos)) != freeSentinel && h.flags(Ref(pos))&flagMark != 0 {
				flush(pos)
				h.clearFlags(Ref(pos), flagMark)
				h.elderUsed += size
				freeStart = pos + size
			} else if h.mtIndex(Ref(pos)) != freeSentinel {
				atomic.AddUint64(&h.Stats.BytesSwept, uint64(size))
			}
			pos += size
		}
		flush(rg.end)
	}
	if tr != nil {
		tr.End(v.traceLane)
	}
	h.sinceFull = 0
}
