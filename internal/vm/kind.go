// Package vm implements the managed virtual machine substrate of the
// Motor reproduction: a byte-addressable heap with a strongly typed
// object model, a two-generational garbage collector with pinning
// (including the conditional pin requests of the paper's §4.3/§7.4),
// a stack-based bytecode interpreter with a text assembler, and an
// internal-call (FCall) mechanism with GC-protected pointer frames.
//
// The package corresponds to the SSCLI ("Rotor") runtime of the paper.
package vm

import "fmt"

// Kind identifies a primitive value category used for fields, array
// elements and interpreter conversions. KindRef identifies an object
// reference; everything else is an unmanaged scalar.
type Kind uint8

// The primitive kinds mirror the CLI built-in value types that the
// paper's MPI bindings accept as "simple types".
const (
	KindVoid Kind = iota
	KindBool
	KindInt8
	KindUint8
	KindInt16
	KindUint16
	KindChar // UTF-16 code unit, as in the CLI
	KindInt32
	KindUint32
	KindInt64
	KindUint64
	KindFloat32
	KindFloat64
	KindRef

	numKinds
)

var kindSizes = [numKinds]int{
	KindVoid:    0,
	KindBool:    1,
	KindInt8:    1,
	KindUint8:   1,
	KindInt16:   2,
	KindUint16:  2,
	KindChar:    2,
	KindInt32:   4,
	KindUint32:  4,
	KindInt64:   8,
	KindUint64:  8,
	KindFloat32: 4,
	KindFloat64: 8,
	KindRef:     4, // object references are 32-bit heap offsets
}

var kindNames = [numKinds]string{
	KindVoid:    "void",
	KindBool:    "bool",
	KindInt8:    "int8",
	KindUint8:   "uint8",
	KindInt16:   "int16",
	KindUint16:  "uint16",
	KindChar:    "char",
	KindInt32:   "int32",
	KindUint32:  "uint32",
	KindInt64:   "int64",
	KindUint64:  "uint64",
	KindFloat32: "float32",
	KindFloat64: "float64",
	KindRef:     "object",
}

// Size returns the number of heap bytes a value of this kind occupies.
func (k Kind) Size() int {
	if int(k) >= len(kindSizes) {
		return 0
	}
	return kindSizes[k]
}

// Simple reports whether the kind is an unmanaged scalar — the only
// field kinds the Motor MPI bindings allow in a transport object,
// preserving object-model integrity (paper §4.2.1).
func (k Kind) Simple() bool {
	return k > KindVoid && k < KindRef
}

// String returns the assembler name of the kind.
func (k Kind) String() string {
	if int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
	return kindNames[k]
}

// KindByName resolves an assembler type token ("int32", "float64", …)
// to its Kind. The second result reports whether the name was known.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name && Kind(k) != KindVoid {
			return Kind(k), true
		}
	}
	if name == "void" {
		return KindVoid, true
	}
	return KindVoid, false
}
