package vm

import "testing"

func TestArrayTypeNames(t *testing.T) {
	v := testVM()
	n := nodeClass(v)
	cases := []struct {
		mt   *MethodTable
		want string
	}{
		{v.ArrayType(KindInt32, nil, 1), "int32[]"},
		{v.ArrayType(KindFloat64, nil, 2), "float64[,]"},
		{v.ArrayType(KindInt64, nil, 3), "int64[,,]"},
		{v.ArrayType(KindRef, n, 1), "Node[]"},
		{v.ArrayType(KindRef, v.ArrayType(KindInt32, nil, 1), 1), "int32[][]"},
		{v.ArrayType(KindRef, v.ArrayType(KindFloat64, nil, 2), 1), "float64[,][]"},
	}
	for _, tc := range cases {
		if tc.mt.Name != tc.want {
			t.Errorf("name %q, want %q", tc.mt.Name, tc.want)
		}
	}
	// Jagged and multidim must be DISTINCT types.
	jagged := v.ArrayType(KindRef, v.ArrayType(KindInt32, nil, 1), 1)
	multi := v.ArrayType(KindInt32, nil, 2)
	if jagged == multi {
		t.Fatal("jagged and multidim conflated")
	}
	if jagged.Name == multi.Name {
		t.Fatal("jagged and multidim share a name")
	}
}

func TestResolveTypeNameRoundtrip(t *testing.T) {
	v := testVM()
	n := nodeClass(v)
	_ = n
	names := []string{
		"Node", "int32[]", "float64[,]", "Node[]", "int32[][]",
		"float64[,][]", "object[]", "Node[][]",
	}
	for _, name := range names {
		mt, err := v.ResolveTypeName(name)
		if err != nil {
			t.Errorf("resolve %q: %v", name, err)
			continue
		}
		if mt.Kind == TKArray && mt.Name != name {
			t.Errorf("resolve %q produced %q", name, mt.Name)
		}
	}
	// Resolution is canonical: same name, same method table.
	a, _ := v.ResolveTypeName("int32[][]")
	b, _ := v.ResolveTypeName("int32[][]")
	if a != b {
		t.Error("resolution not canonical")
	}
	for _, bad := range []string{"Ghost", "int32", "Node[", "Node[x]", "[]", "Ghost[]"} {
		if _, err := v.ResolveTypeName(bad); err == nil {
			t.Errorf("bad name %q accepted", bad)
		}
	}
}

func TestMasmMultiDim(t *testing.T) {
	src := `
.method main (0) float64
  .locals 1
  ; allocate a 3x4 rectangular matrix, fill [2,3], read it back
  ldc.i4 3  ldc.i4 4  newmd float64[,]
  stloc 0
  ldloc 0  ldc.i4 11  ldc.r8 6.5  stelem    ; [2,3] = row 2 * 4 + 3 = 11
  ldloc 0  ldc.i4 11  ldelem
  ret.val
.end
`
	out, v := assembleAndRun(t, src)
	if out.Float() != 6.5 {
		t.Errorf("got %g", out.Float())
	}
	mt, ok := v.TypeByName("float64[,]")
	if !ok || mt.Rank != 2 {
		t.Error("multidim type not registered via masm")
	}
}

func TestMasmNewMDErrors(t *testing.T) {
	v := testVM()
	if _, err := v.Assemble(".method main (0) void\n  ldc.i4 2 newmd float64[]\n.end"); err == nil {
		t.Error("newmd on vector type accepted")
	}
	if _, err := v.Assemble(".method main (0) void\n  ldc.i4 2 newmd Ghost[,]\n.end"); err == nil {
		t.Error("newmd on unknown type accepted")
	}
}

func TestMasmJaggedArrays(t *testing.T) {
	src := `
.method main (0) int32
  .locals 2
  ; outer: int32[][] of length 2; inner rows of lengths 1 and 2
  ldc.i4 2  newarr int32[]
  stloc 0
  ldc.i4 1  newarr int32  stloc 1
  ldloc 1  ldc.i4 0  ldc.i4 5  stelem
  ldloc 0  ldc.i4 0  ldloc 1  stelem
  ldc.i4 2  newarr int32  stloc 1
  ldloc 1  ldc.i4 1  ldc.i4 7  stelem
  ldloc 0  ldc.i4 1  ldloc 1  stelem
  ; return outer[0][0] + outer[1][1]
  ldloc 0  ldc.i4 0  ldelem  ldc.i4 0  ldelem
  ldloc 0  ldc.i4 1  ldelem  ldc.i4 1  ldelem
  add
  ret.val
.end
`
	out, _ := assembleAndRun(t, src)
	if out.Int() != 12 {
		t.Errorf("got %d", out.Int())
	}
}

func TestMasmMultiDimFieldType(t *testing.T) {
	src := `
.class Grid
  .field float64[,] cells
  .field int32[][] jag
.end
.method main (0) int32
  ldc.i4 0
  ret.val
.end
`
	_, v := assembleAndRun(t, src)
	mt, _ := v.TypeByName("Grid")
	cells := mt.FieldByName("cells")
	if cells == nil || cells.DeclaredType == nil || cells.DeclaredType.Rank != 2 {
		t.Error("cells field type wrong")
	}
	jag := mt.FieldByName("jag")
	if jag == nil || jag.DeclaredType == nil || jag.DeclaredType.Elem != KindRef {
		t.Error("jag field type wrong")
	}
}
