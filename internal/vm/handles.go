package vm

// Handle is a stable, GC-updated indirection to a managed object.
// Go-side subsystems (the message-passing core, serializer buffers,
// the public facade) hold handles rather than raw Refs so that object
// movement never invalidates them.
type Handle int

// InvalidHandle is the zero value returned for failed allocations.
const InvalidHandle Handle = -1

// HandleTable stores strong handles. It is registered as a GC root
// provider on every VM.
type HandleTable struct {
	slots []Ref
	free  []int
}

func newHandleTable() *HandleTable { return &HandleTable{} }

// Alloc creates a handle to ref.
func (ht *HandleTable) Alloc(ref Ref) Handle {
	if n := len(ht.free); n > 0 {
		i := ht.free[n-1]
		ht.free = ht.free[:n-1]
		ht.slots[i] = ref
		return Handle(i)
	}
	ht.slots = append(ht.slots, ref)
	return Handle(len(ht.slots) - 1)
}

// Get returns the current location of the handle's object.
func (ht *HandleTable) Get(h Handle) Ref {
	if h < 0 || int(h) >= len(ht.slots) {
		return NullRef
	}
	return ht.slots[h]
}

// Set repoints a handle.
func (ht *HandleTable) Set(h Handle, ref Ref) {
	if h >= 0 && int(h) < len(ht.slots) {
		ht.slots[h] = ref
	}
}

// Free releases the handle.
func (ht *HandleTable) Free(h Handle) {
	if h < 0 || int(h) >= len(ht.slots) {
		return
	}
	ht.slots[h] = NullRef
	ht.free = append(ht.free, int(h))
}

// Live counts non-null slots (stats surface).
func (ht *HandleTable) Live() int {
	n := 0
	for _, r := range ht.slots {
		if r != NullRef {
			n++
		}
	}
	return n
}

// VisitRoots implements RootProvider.
func (ht *HandleTable) VisitRoots(visit func(Ref) Ref) {
	for i, r := range ht.slots {
		if r != NullRef {
			ht.slots[i] = visit(r)
		}
	}
}
