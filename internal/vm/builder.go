package vm

import (
	"encoding/binary"
	"fmt"
)

// CodeBuilder assembles method bodies programmatically. It is the
// back end of the text assembler and the direct authoring surface for
// tests and benchmarks.
//
//	b := vm.NewCodeBuilder()
//	b.LdcI4(10).StLoc(0).
//	  Label("loop").
//	  LdLoc(0).BrFalse("done").
//	  LdLoc(0).LdcI4(1).Op(OpSub).StLoc(0).
//	  Br("loop").
//	  Label("done").Ret()
//	m := b.Build("countdown", 0, 1, false)
type CodeBuilder struct {
	code   []byte
	labels map[string]int
	fixups []fixup
	lines  []LineEntry
	err    error
}

type fixup struct {
	at    int // offset of the i32 operand
	end   int // pc after the instruction
	label string
}

// NewCodeBuilder returns an empty builder.
func NewCodeBuilder() *CodeBuilder {
	return &CodeBuilder{labels: make(map[string]int)}
}

// Op emits a no-operand opcode.
func (b *CodeBuilder) Op(op Op) *CodeBuilder {
	if op.operandBytes() != 0 {
		b.fail("opcode %s requires an operand", op.Name())
		return b
	}
	b.code = append(b.code, byte(op))
	return b
}

// U16 emits an opcode with a u16 operand.
func (b *CodeBuilder) U16(op Op, v int) *CodeBuilder {
	if opTable[op].width != wU16 {
		b.fail("opcode %s does not take a u16 operand", op.Name())
		return b
	}
	if v < 0 || v > 0xFFFF {
		b.fail("u16 operand %d out of range for %s", v, op.Name())
		return b
	}
	b.code = append(b.code, byte(op), byte(v), byte(v>>8))
	return b
}

func (b *CodeBuilder) fail(format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// LdcI4 pushes an int32 constant.
func (b *CodeBuilder) LdcI4(v int32) *CodeBuilder {
	b.code = append(b.code, byte(OpLdcI4), 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(b.code[len(b.code)-4:], uint32(v))
	return b
}

// LdcI8 pushes an int64 constant.
func (b *CodeBuilder) LdcI8(v int64) *CodeBuilder {
	b.code = append(b.code, byte(OpLdcI8), 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint64(b.code[len(b.code)-8:], uint64(v))
	return b
}

// LdcR8 pushes a float64 constant.
func (b *CodeBuilder) LdcR8(v float64) *CodeBuilder {
	b.code = append(b.code, byte(OpLdcR8), 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint64(b.code[len(b.code)-8:], BitsFromF64(v))
	return b
}

// LdNull pushes the null reference.
func (b *CodeBuilder) LdNull() *CodeBuilder { return b.Op(OpLdNull) }

// LdLoc / StLoc / LdArg / StArg access frame slots.
func (b *CodeBuilder) LdLoc(i int) *CodeBuilder { return b.U16(OpLdLoc, i) }

// StLoc stores into local i.
func (b *CodeBuilder) StLoc(i int) *CodeBuilder { return b.U16(OpStLoc, i) }

// LdArg loads argument i.
func (b *CodeBuilder) LdArg(i int) *CodeBuilder { return b.U16(OpLdArg, i) }

// StArg stores into argument i.
func (b *CodeBuilder) StArg(i int) *CodeBuilder { return b.U16(OpStArg, i) }

// MarkLine records that code emitted from the current position on
// originates at the given 1-based source line. The text assembler
// calls it per source line; the entries become the method's line
// table, which the verifier uses for diagnostics.
func (b *CodeBuilder) MarkLine(line int) *CodeBuilder {
	if n := len(b.lines); n > 0 && b.lines[n-1].Line == line {
		return b
	}
	if n := len(b.lines); n > 0 && b.lines[n-1].PC == len(b.code) {
		// No code was emitted for the previous line; overwrite.
		b.lines[n-1].Line = line
		return b
	}
	b.lines = append(b.lines, LineEntry{PC: len(b.code), Line: line})
	return b
}

// Label defines a branch target at the current position.
func (b *CodeBuilder) Label(name string) *CodeBuilder {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.code)
	return b
}

func (b *CodeBuilder) branch(op Op, label string) *CodeBuilder {
	b.code = append(b.code, byte(op), 0, 0, 0, 0)
	b.fixups = append(b.fixups, fixup{at: len(b.code) - 4, end: len(b.code), label: label})
	return b
}

// Br emits an unconditional branch to label.
func (b *CodeBuilder) Br(label string) *CodeBuilder { return b.branch(OpBr, label) }

// BrTrue branches when the popped value is nonzero.
func (b *CodeBuilder) BrTrue(label string) *CodeBuilder { return b.branch(OpBrTrue, label) }

// BrFalse branches when the popped value is zero.
func (b *CodeBuilder) BrFalse(label string) *CodeBuilder { return b.branch(OpBrFalse, label) }

// Call emits a static call.
func (b *CodeBuilder) Call(m *Method) *CodeBuilder { return b.U16(OpCall, m.Index) }

// CallVirt emits a virtual call through m's vtable slot.
func (b *CodeBuilder) CallVirt(m *Method) *CodeBuilder { return b.U16(OpCallVirt, m.Index) }

// Intern emits an internal (FCall) invocation by registry index.
func (b *CodeBuilder) Intern(idx int) *CodeBuilder { return b.U16(OpIntern, idx) }

// InternName emits an internal call resolved by name on v.
func (b *CodeBuilder) InternName(v *VM, name string) *CodeBuilder {
	idx, ok := v.InternalIndex(name)
	if !ok {
		b.fail("unknown internal call %q", name)
		return b
	}
	return b.Intern(idx)
}

// Ret returns void.
func (b *CodeBuilder) Ret() *CodeBuilder { return b.Op(OpRet) }

// RetVal returns the top of stack.
func (b *CodeBuilder) RetVal() *CodeBuilder { return b.Op(OpRetVal) }

// NewObj allocates an instance of mt.
func (b *CodeBuilder) NewObj(mt *MethodTable) *CodeBuilder { return b.U16(OpNewObj, mt.Index) }

// NewArr allocates an array of type mt (length popped from stack).
func (b *CodeBuilder) NewArr(mt *MethodTable) *CodeBuilder { return b.U16(OpNewArr, mt.Index) }

// LdFld loads the named field of the statically-typed receiver.
func (b *CodeBuilder) LdFld(mt *MethodTable, name string) *CodeBuilder {
	i := mt.FieldIndex(name)
	if i < 0 {
		b.fail("no field %s on %s", name, mt)
		return b
	}
	return b.U16(OpLdFld, i)
}

// StFld stores the named field.
func (b *CodeBuilder) StFld(mt *MethodTable, name string) *CodeBuilder {
	i := mt.FieldIndex(name)
	if i < 0 {
		b.fail("no field %s on %s", name, mt)
		return b
	}
	return b.U16(OpStFld, i)
}

// LdSFld / StSFld access statics by index.
func (b *CodeBuilder) LdSFld(i int) *CodeBuilder { return b.U16(OpLdSFld, i) }

// StSFld stores static slot i.
func (b *CodeBuilder) StSFld(i int) *CodeBuilder { return b.U16(OpStSFld, i) }

// Build resolves branches and produces the Method. It panics on
// builder misuse (unknown label, bad operand) — builder errors are
// programming errors in test/bench authoring, not runtime conditions.
func (b *CodeBuilder) Build(name string, nargs, nlocals int, hasRet bool) *Method {
	if b.err != nil {
		panic(fmt.Sprintf("vm: building %s: %v", name, b.err))
	}
	for _, fx := range b.fixups {
		target, ok := b.labels[fx.label]
		if !ok {
			panic(fmt.Sprintf("vm: building %s: undefined label %q", name, fx.label))
		}
		binary.LittleEndian.PutUint32(b.code[fx.at:], uint32(int32(target-fx.end)))
	}
	return &Method{
		Name:    name,
		NArgs:   nargs,
		NLocals: nlocals,
		HasRet:  hasRet,
		Code:    append([]byte(nil), b.code...),
		Lines:   append([]LineEntry(nil), b.lines...),
	}
}
