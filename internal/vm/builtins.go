package vm

import (
	"fmt"
	"sync/atomic"
	"time"
)

// registerBuiltins installs the small set of internal calls every VM
// provides regardless of embedder: console output, clock access and
// explicit collection. The message-passing FCalls (System.MP) are
// registered separately by the Motor core when a VM joins a world.
func registerBuiltins(v *VM) {
	v.RegisterInternal(InternalFunc{
		Name: "console.writei", NArgs: 1,
		Fn: func(t *Thread, args []Value) (Value, error) {
			fmt.Fprintf(v.stdout(), "%d", args[0].Int())
			return Value{}, nil
		},
	})
	v.RegisterInternal(InternalFunc{
		Name: "console.writef", NArgs: 1,
		Fn: func(t *Thread, args []Value) (Value, error) {
			fmt.Fprintf(v.stdout(), "%g", args[0].Float())
			return Value{}, nil
		},
	})
	v.RegisterInternal(InternalFunc{
		Name: "console.writes", NArgs: 1,
		Fn: func(t *Thread, args []Value) (Value, error) {
			// The argument is a char (uint16) array.
			ref := args[0].Ref()
			if ref == NullRef {
				fmt.Fprint(v.stdout(), "<null>")
				return Value{}, nil
			}
			n := v.Heap.Length(ref)
			runes := make([]rune, n)
			for i := 0; i < n; i++ {
				runes[i] = rune(uint16(v.Heap.GetElem(ref, i)))
			}
			fmt.Fprint(v.stdout(), string(runes))
			return Value{}, nil
		},
	})
	v.RegisterInternal(InternalFunc{
		Name: "console.newline", NArgs: 0,
		Fn: func(t *Thread, args []Value) (Value, error) {
			fmt.Fprintln(v.stdout())
			return Value{}, nil
		},
	})
	v.RegisterInternal(InternalFunc{
		Name: "sys.ticks", NArgs: 0, HasRet: true,
		Fn: func(t *Thread, args []Value) (Value, error) {
			return IntValue(time.Now().UnixNano()), nil
		},
	})
	v.RegisterInternal(InternalFunc{
		Name: "gc.collect", NArgs: 1,
		Fn: func(t *Thread, args []Value) (Value, error) {
			v.collect(args[0].Bool())
			return Value{}, nil
		},
	})
	v.RegisterInternal(InternalFunc{
		Name: "gc.scavenges", NArgs: 0, HasRet: true,
		Fn: func(t *Thread, args []Value) (Value, error) {
			return IntValue(int64(atomic.LoadUint64(&v.Heap.Stats.Scavenges))), nil
		},
	})
	v.RegisterInternal(InternalFunc{
		Name: "gc.workers", NArgs: 0, HasRet: true,
		Fn: func(t *Thread, args []Value) (Value, error) {
			return IntValue(int64(v.Heap.Workers())), nil
		},
	})
	v.RegisterInternal(InternalFunc{
		Name: "gc.compact", NArgs: 0,
		Fn: func(t *Thread, args []Value) (Value, error) {
			v.Heap.RequestCompaction()
			v.collect(true)
			return Value{}, nil
		},
	})
}
