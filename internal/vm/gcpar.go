package vm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"motor/internal/obs"
)

// The modern collector (gcworkers > 1). Three coordinated upgrades
// over the §5.2 serial collector in gc.go, all preserving the §5.3
// polling-wait/conditional-pin semantics:
//
//   - Parallel mark: full collections mark with a fixed pool of
//     work-stealing workers over the same root set the serial marker
//     uses (external slots, pins, thread frames). Liveness lives in a
//     side bitmap (one bit per 8 arena bytes) instead of header
//     flags, so marking never writes managed memory and workers never
//     race on object headers.
//   - Single-resolver conditional pins: a request's Active() runs
//     exactly once per cycle no matter how many workers encounter the
//     object. Workers feed refs to the resolver; the resolver owns
//     the decision, the stats, and the trace instant (correlated to
//     the cycle by the enclosing KGC span).
//   - Pin-aware promotion: a scavenge with pinned survivors segregates
//     them into dedicated pinned blocks and keeps (or re-carves) a
//     nursery, instead of donating the whole younger block to the
//     elder generation. donateYoungBlock remains as the dense-pin
//     fallback; Stats.PinnedSegregated vs Stats.BlocksDonated proves
//     it is rare.
//
// Elder sliding compaction rides on full collections (gccompact.go).
//
// The collection is still stop-the-world: collect holds the execution
// token, so no managed thread and no ExecRun progress pass can touch
// the heap while the workers run. Worker goroutines are the only
// concurrency, and they share nothing but the bitmap, the deques, and
// the resolver.

// condPinReq is one conditional request during one cycle.
type condPinReq struct {
	cp   CondPin
	held bool
}

// condPinResolver is the cycle's single resolver for conditional pin
// requests (§4.3, §7.4). pendingCount mirrors the map size so hot
// paths skip the lock once every request has resolved.
//
// Decisions are recorded, not traced inline: workers feed the
// resolver from mark goroutines, which must not touch the
// coordinator's trace-lane span stack. The coordinator emits every
// decision instant inside one cond-pins phase span at the end of the
// cycle, preserving the PR 3 correlation (instant parented to the
// cycle's gc:cond-pins span).
type condPinResolver struct {
	pendingCount int64 // atomic; first field for 64-bit alignment on 32-bit hosts
	h            *Heap

	mu        sync.Mutex //motorlint:lockorder 50 gcresolver
	pending   map[Ref][]*condPinReq
	kept      []CondPin
	decisions []condPinDecision
}

type condPinDecision struct {
	ref  Ref
	held bool
}

func newCondPinResolver(h *Heap) *condPinResolver {
	r := &condPinResolver{h: h, pending: make(map[Ref][]*condPinReq, len(h.condPins))}
	for _, cp := range h.condPins {
		r.pending[cp.Ref] = append(r.pending[cp.Ref], &condPinReq{cp: cp})
	}
	atomic.StoreInt64(&r.pendingCount, int64(len(h.condPins)))
	return r
}

// take claims every unresolved request on ref. Claiming is what makes
// resolution exactly-once: concurrent callers get nil.
func (r *condPinResolver) take(ref Ref) []*condPinReq {
	if atomic.LoadInt64(&r.pendingCount) == 0 {
		return nil
	}
	r.mu.Lock()
	reqs := r.pending[ref]
	if reqs != nil {
		delete(r.pending, ref)
	}
	r.mu.Unlock()
	return reqs
}

// settle runs Active() for claimed requests — exactly once each —
// records the decision (stats + deferred trace instant), and returns
// whether any request holds the object pinned for this cycle.
func (r *condPinResolver) settle(reqs []*condPinReq) bool {
	if len(reqs) == 0 {
		return false
	}
	held := false
	for _, q := range reqs {
		q.held = q.cp.Active()
		if q.held {
			held = true
			atomic.AddUint64(&r.h.Stats.CondPinsHeld, 1)
		} else {
			atomic.AddUint64(&r.h.Stats.CondPinsDropped, 1)
		}
		r.mu.Lock()
		if q.held {
			r.kept = append(r.kept, q.cp)
		}
		r.decisions = append(r.decisions, condPinDecision{q.cp.Ref, q.held})
		r.mu.Unlock()
	}
	atomic.AddInt64(&r.pendingCount, -int64(len(reqs)))
	return held
}

// pinnedNow resolves any pending requests on ref and reports whether
// ref is conditionally pinned for this cycle. Used by the scavenge
// forwarding path, which must know the decision before moving an
// object.
func (r *condPinResolver) pinnedNow(ref Ref) bool {
	return r.settle(r.take(ref))
}

// observe is the worker feed: a mark worker that pops ref hands it to
// the resolver; a held decision injects the object as a mark root
// (pinned objects are live regardless of managed reachability).
func (r *condPinResolver) observe(ref Ref, inject func(Ref)) {
	if r.settle(r.take(ref)) && inject != nil {
		inject(ref)
	}
}

// drain resolves every request not encountered during the cycle:
// each request is examined once per collection (§7.4), reachable or
// not. Held objects are injected as roots when marking is active.
func (r *condPinResolver) drain(inject func(Ref)) {
	for {
		r.mu.Lock()
		var ref Ref
		found := false
		for k := range r.pending {
			ref, found = k, true
			break
		}
		r.mu.Unlock()
		if !found {
			return
		}
		r.observe(ref, inject)
	}
}

// finish writes the surviving requests back as the heap's outstanding
// conditional pins.
func (r *condPinResolver) finish() {
	r.h.condPins = r.kept
}

// heldRefs returns the objects held pinned this cycle (for the
// compaction skip set).
func (r *condPinResolver) heldRefs() []Ref {
	refs := make([]Ref, 0, len(r.kept))
	for _, cp := range r.kept {
		refs = append(refs, cp.Ref)
	}
	return refs
}

// --- work-stealing mark ------------------------------------------------

// markDeque is one worker's mark stack. The owner pops LIFO for
// locality; thieves steal FIFO from the front. A worker never holds
// two deque locks at once (pop releases before steal acquires), so a
// single rank suffices.
type markDeque struct {
	mu  sync.Mutex //motorlint:lockorder 40 gcdeque
	buf []Ref
}

func (d *markDeque) push(r Ref) {
	d.mu.Lock()
	d.buf = append(d.buf, r)
	d.mu.Unlock()
}

func (d *markDeque) pop() (Ref, bool) {
	d.mu.Lock()
	n := len(d.buf)
	if n == 0 {
		d.mu.Unlock()
		return NullRef, false
	}
	r := d.buf[n-1]
	d.buf = d.buf[:n-1]
	d.mu.Unlock()
	return r, true
}

func (d *markDeque) steal() (Ref, bool) {
	d.mu.Lock()
	if len(d.buf) == 0 {
		d.mu.Unlock()
		return NullRef, false
	}
	r := d.buf[0]
	d.buf = d.buf[1:]
	d.mu.Unlock()
	return r, true
}

// markState is the shared state of one parallel mark: the side
// bitmap, the deques, and the termination counter. pending counts
// marked-but-unscanned objects plus one coordinator token held while
// roots and drained cond pins are still being injected; the phase is
// over when it reaches zero.
type markState struct {
	pending int64 // atomic; first field for 64-bit alignment on 32-bit hosts
	h       *Heap
	bits    []uint64
	deques  []*markDeque
	cursor  uint32 // atomic round-robin injection cursor
}

func newMarkState(h *Heap, workers int) *markState {
	words := (len(h.mem)/8 + 63) / 64
	if cap(h.markBits) < words {
		h.markBits = make([]uint64, words)
	} else {
		h.markBits = h.markBits[:words]
		for i := range h.markBits {
			h.markBits[i] = 0
		}
	}
	m := &markState{h: h, bits: h.markBits, deques: make([]*markDeque, workers)}
	for i := range m.deques {
		m.deques[i] = &markDeque{}
	}
	// Coordinator token: workers must not terminate while roots (or
	// resolver-held objects) are still arriving.
	atomic.StoreInt64(&m.pending, 1)
	return m
}

// trySet atomically sets the mark bit for off, reporting whether this
// call set it. Offsets are 8-aligned, so one bit per 8 bytes is
// exact. CAS loop because the module targets Go 1.22 (no atomic.Or).
func (m *markState) trySet(off uint32) bool {
	i := off >> 3
	w, bit := i>>6, uint64(1)<<(i&63)
	for {
		old := atomic.LoadUint64(&m.bits[w])
		if old&bit != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(&m.bits[w], old, old|bit) {
			return true
		}
	}
}

// marked reports the bit without synchronization; callers use it only
// after the mark phase has joined.
func (m *markState) marked(off uint32) bool {
	i := off >> 3
	return m.bits[i>>6]&(uint64(1)<<(i&63)) != 0
}

// inject marks ref and, if newly marked, queues it for scanning.
// Safe from the coordinator and from any worker.
func (m *markState) inject(ref Ref) {
	if ref == NullRef {
		return
	}
	if !m.trySet(uint32(ref)) {
		return
	}
	atomic.AddInt64(&m.pending, 1)
	i := atomic.AddUint32(&m.cursor, 1) % uint32(len(m.deques))
	m.deques[i].push(ref)
}

// releaseToken drops the coordinator's injection token.
func (m *markState) releaseToken() {
	atomic.AddInt64(&m.pending, -1)
}

// worker is one mark worker: drain own deque, steal when empty, exit
// when the termination counter reaches zero. Every popped object is
// offered to the cond-pin resolver (the feed half of the single-
// resolver discipline), then its reference slots are scanned.
func (m *markState) worker(id int, res *condPinResolver) {
	visit := func(r Ref) Ref {
		m.inject(r)
		return r
	}
	for {
		ref, ok := m.deques[id].pop()
		if !ok {
			for j := 1; j < len(m.deques) && !ok; j++ {
				ref, ok = m.deques[(id+j)%len(m.deques)].steal()
			}
		}
		if !ok {
			if atomic.LoadInt64(&m.pending) == 0 {
				return
			}
			runtime.Gosched()
			continue
		}
		if res != nil {
			res.observe(ref, m.inject)
		}
		m.h.scanRefSlots(ref, visit)
		atomic.AddInt64(&m.pending, -1)
	}
}

// --- the modern collection ---------------------------------------------

// collectModern is the gcworkers>1 collection: same envelope as the
// legacy collect (hooks, spans, pause accounting, watchdog note), but
// with lazy single-resolver cond pins, pin-segregating scavenge, and
// a parallel mark/sweep (+ optional compaction) on full cycles.
func (v *VM) collectModern(full bool) {
	h := v.Heap
	tr := obs.Active()
	if tr != nil {
		kind := obs.GCScavenge
		if full {
			kind = obs.GCFull
		}
		tr.Begin(v.traceLane, obs.KGC, uint64(kind))
	}

	start := time.Now()
	if tr != nil {
		tr.Begin(v.traceLane, obs.KGCPhase, uint64(obs.PhaseHooks))
	}
	for _, hook := range v.gcHooks {
		hook()
	}
	if tr != nil {
		tr.End(v.traceLane)
	}

	res := newCondPinResolver(h)
	pinned := h.explicitPins()

	if tr != nil {
		tr.Begin(v.traceLane, obs.KGCPhase, uint64(obs.PhaseScavenge))
	}
	evacuated := h.scavengeModern(v, pinned, res)
	if tr != nil {
		tr.End(v.traceLane)
	}
	if full {
		h.fullParallel(v, pinned, res, evacuated)
	}
	// Requests not encountered this cycle still resolve now — every
	// request is examined once per collection (§7.4). The recorded
	// decisions are then emitted as instants inside one cond-pins
	// phase span on the coordinator lane, keeping the PR 3 instant↔
	// cycle correlation intact under the single-resolver discipline.
	res.drain(nil)
	if tr != nil && len(res.decisions) > 0 {
		tr.Begin(v.traceLane, obs.KGCPhase, uint64(obs.PhaseCondPins))
		for _, d := range res.decisions {
			heldArg := uint64(0)
			if d.held {
				heldArg = 1
			}
			tr.Instant(v.traceLane, obs.KCondPin, heldArg, uint64(d.ref))
		}
		tr.End(v.traceLane)
	}
	res.finish()

	pause := uint64(time.Since(start).Nanoseconds())
	gcKind := obs.GCScavenge
	if full {
		gcKind = obs.GCFull
	}
	obs.NoteGC(gcKind, int64(pause))
	atomic.AddUint64(&h.Stats.PauseNs, pause)
	for {
		max := atomic.LoadUint64(&h.Stats.MaxPauseNs)
		if pause <= max || atomic.CompareAndSwapUint64(&h.Stats.MaxPauseNs, max, pause) {
			break
		}
	}
	if tr != nil {
		tr.End(v.traceLane)
		tr.Record(obs.HistGCPause, int64(pause))
	}
}

// scavengeModern evacuates the younger block like the legacy scavenge
// but resolves conditional pins lazily through the single resolver
// and segregates pinned survivors instead of donating the block.
// Returns false when evacuation could not be guaranteed (the nursery
// is left untouched, as in the legacy path).
func (h *Heap) scavengeModern(v *VM, pinned map[Ref]struct{}, res *condPinResolver) bool {
	ys, ye, yp := h.youngStart, h.youngEnd, h.youngPos
	if ys == ye {
		return true // degraded mode: no nursery
	}
	if !h.reservePromotionSpace(yp - ys) {
		return false
	}
	atomic.AddUint64(&h.Stats.Scavenges, 1)
	inYoung := func(r Ref) bool { return uint32(r) >= ys && uint32(r) < ye }

	var scan []Ref
	pinnedSurvivors := false

	var forward func(Ref) Ref
	forward = func(r Ref) Ref {
		if r == NullRef || !inYoung(r) {
			return r
		}
		fl := h.flags(r)
		if fl&flagForwarded != 0 {
			return Ref(h.u32(uint32(r) + hdrMT))
		}
		_, pin := pinned[r]
		if !pin && res.pinnedNow(r) {
			// Conditionally pinned: the resolver has recorded the held
			// decision; remember it for segregation and compaction.
			pin = true
			pinned[r] = struct{}{}
		}
		if pin {
			if fl&flagMark == 0 {
				h.orFlags(r, flagMark)
				pinnedSurvivors = true
				scan = append(scan, r)
			}
			return r
		}
		size := h.objSize(r)
		newOff, ok := h.elderFit(size)
		if !ok {
			rangeSize := h.youngSize * 4
			if rangeSize < size+HeaderSize {
				rangeSize = align8(size + HeaderSize)
			}
			start, err := h.carve(rangeSize)
			if err != nil {
				panic(ErrOutOfMemory)
			}
			h.addElderRange(start, start+rangeSize)
			newOff, ok = h.elderFit(size)
			if !ok {
				panic(ErrOutOfMemory)
			}
		}
		copy(h.mem[newOff:newOff+size], h.mem[uint32(r):uint32(r)+size])
		h.putU32(uint32(r)+hdrMT, newOff)
		h.orFlags(r, flagForwarded)
		atomic.AddUint64(&h.Stats.BytesPromoted, uint64(size))
		scan = append(scan, Ref(newOff))
		return Ref(newOff)
	}

	v.visitAllRoots(forward)
	for r := range pinned {
		if inYoung(r) {
			forward(r)
		}
	}
	// Young conditional requests resolve here at the latest: a held
	// object is a root pinned in place, a dropped one is garbage
	// unless otherwise reachable.
	res.resolveInRange(inYoung, func(r Ref) Ref {
		pinned[r] = struct{}{}
		return forward(r)
	})
	for obj := range h.remembered {
		h.scanRefSlots(obj, forward)
	}

	for len(scan) > 0 {
		obj := scan[len(scan)-1]
		scan = scan[:len(scan)-1]
		h.scanRefSlots(obj, forward)
	}

	if pinnedSurvivors {
		h.segregatePinned(ys, ye, yp)
	} else {
		clearBytes(h.mem[ys:yp])
		h.youngPos = ys
	}
	h.remembered = make(map[Ref]struct{})
	return true
}

// resolveInRange resolves every pending request whose object lies in
// the given range, applying root to held objects. Single-threaded
// (scavenge); root may move the heap.
func (r *condPinResolver) resolveInRange(in func(Ref) bool, root func(Ref) Ref) {
	if atomic.LoadInt64(&r.pendingCount) == 0 {
		return
	}
	r.mu.Lock()
	var refs []Ref
	for ref := range r.pending {
		if in(ref) {
			refs = append(refs, ref)
		}
	}
	r.mu.Unlock()
	for _, ref := range refs {
		if r.settle(r.take(ref)) {
			root(ref)
		}
	}
}

// segregatePinned disposes of a scavenged younger block that holds
// pinned survivors. Instead of donating the whole block (legacy),
// maximal runs of pinned survivors become dedicated fully-used elder
// blocks; the dead gaps between them become elder free space; and the
// largest gap is reused as the next nursery when big enough, so the
// arena does not grow at all in the common few-pins case. Densely
// pinned blocks still take the legacy donation path — the
// PinnedSegregated/BlocksDonated stat pair proves donation is rare.
func (h *Heap) segregatePinned(ys, ye, yp uint32) {
	type span struct{ start, end uint32 }
	var runs []span
	var pinnedBytes uint32
	pos := ys
	corrupt := false
	for pos < yp {
		size := h.objSize(Ref(pos))
		if size < HeaderSize || pos+size > yp {
			corrupt = true
			break
		}
		fl := h.flags(Ref(pos))
		if fl&flagMark != 0 && fl&flagForwarded == 0 {
			if n := len(runs); n > 0 && runs[n-1].end == pos {
				runs[n-1].end = pos + size
			} else {
				runs = append(runs, span{pos, pos + size})
			}
			pinnedBytes += size
		}
		pos += size
	}
	if corrupt || pinnedBytes*4 > ye-ys {
		// Densely pinned (or unwalkable): wholesale relabelling beats
		// splintering the block into many tiny ranges.
		h.donateYoungBlock(ys, ye, yp)
		atomic.AddUint64(&h.Stats.BlocksDonated, 1)
		h.replaceNursery()
		return
	}

	atomic.AddUint64(&h.Stats.PinnedSegregated, 1)
	atomic.AddUint64(&h.Stats.PinnedBlockBytes, uint64(pinnedBytes))

	// Dedicated pinned blocks: each run is a fully-used elder range.
	for _, run := range runs {
		p := run.start
		for p < run.end {
			h.clearFlags(Ref(p), flagMark)
			p += h.objSize(Ref(p))
		}
		h.elderRanges = append(h.elderRanges, rng{run.start, run.end})
		h.elderUsed += run.end - run.start
	}

	// Complement of the runs: dead gaps plus the unallocated tail.
	var gaps []span
	prev := ys
	for _, run := range runs {
		if run.start > prev {
			gaps = append(gaps, span{prev, run.start})
		}
		prev = run.end
	}
	if prev < ye {
		gaps = append(gaps, span{prev, ye})
	}

	// The largest gap becomes the next nursery when it can hold a
	// meaningful one; everything else becomes elder free space.
	nursery := -1
	for i, g := range gaps {
		if g.end-g.start >= h.youngSize/2 &&
			(nursery < 0 || g.end-g.start > gaps[nursery].end-gaps[nursery].start) {
			nursery = i
		}
	}
	for i, g := range gaps {
		if i == nursery {
			continue
		}
		// Sub-header shards are leaked outside all spaces, as the
		// donation path does; everything else re-coalesces with
		// adjacent elder ranges and free blocks immediately, so a
		// recycled nursery's dead bulk flows back into the free block
		// it was cut from instead of waiting for the next full sweep.
		h.returnElderSpace(g.start, g.end)
	}
	if nursery >= 0 {
		g := gaps[nursery]
		clearBytes(h.mem[g.start:g.end])
		h.youngStart, h.youngPos, h.youngEnd = g.start, g.start, g.end
	} else {
		h.replaceNursery()
	}
}

// returnElderSpace hands [start, end) back to the elder space as free
// bytes, merging with exactly adjacent elder ranges and free blocks.
// Segregation gaps re-coalesce incrementally this way; leaving them
// as isolated single-block ranges until the next full sweep splinters
// the heap into fragments too small for promotion reservation or
// nursery recycling, and the resulting carves grow the arena exactly
// the way donation does.
func (h *Heap) returnElderSpace(start, end uint32) {
	if end <= start || end-start < HeaderSize {
		return
	}
	// Merge with the ranges ending and starting exactly at the gap's
	// bounds. (Adjacent range ⇔ any adjacent free block: a free block
	// can only touch the gap from inside such a range.)
	rs, re := start, end
	li, ri := -1, -1
	for i, rg := range h.elderRanges {
		if rg.end == start {
			li = i
		}
		if rg.start == end {
			ri = i
		}
	}
	if li >= 0 {
		rs = h.elderRanges[li].start
	}
	if ri >= 0 {
		re = h.elderRanges[ri].end
	}
	if li >= 0 && ri >= 0 {
		hi, lo := li, ri
		if hi < lo {
			hi, lo = lo, hi
		}
		h.elderRanges = append(h.elderRanges[:hi], h.elderRanges[hi+1:]...)
		h.elderRanges = append(h.elderRanges[:lo], h.elderRanges[lo+1:]...)
	} else if li >= 0 {
		h.elderRanges = append(h.elderRanges[:li], h.elderRanges[li+1:]...)
	} else if ri >= 0 {
		h.elderRanges = append(h.elderRanges[:ri], h.elderRanges[ri+1:]...)
	}
	h.elderRanges = append(h.elderRanges, rng{rs, re})

	// Absorb free blocks touching the returned span (at most one per
	// side per pass; chains collapse by restarting).
	fs, fe := start, end
	for i := 0; i < len(h.freeList); {
		fb := h.freeList[i]
		switch {
		case fb.off+fb.size == fs:
			fs = fb.off
			h.freeList = append(h.freeList[:i], h.freeList[i+1:]...)
			i = 0
		case fb.off == fe:
			fe = fb.off + fb.size
			h.freeList = append(h.freeList[:i], h.freeList[i+1:]...)
			i = 0
		default:
			i++
		}
	}
	h.writeFreeBlock(fs, fe-fs)
	h.freeList = append(h.freeList, freeBlock{fs, fe - fs})
}

// replaceNursery installs a fresh nursery after the old block was
// segregated or donated away: recycled elder free space when a large
// enough block exists (the arena footprint stays flat), fresh arena
// otherwise, degraded elder-only mode as the last resort.
func (h *Heap) replaceNursery() {
	if h.recycleNursery() {
		return
	}
	if err := h.newYoungBlock(); err != nil {
		h.youngStart, h.youngPos, h.youngEnd = 0, 0, 0
	}
}

// recycleNursery re-installs the nursery over an elder free block.
// The block is withdrawn from the free lists and its elder range is
// split around the new nursery, so every linear walk (sweep,
// compaction layout, CheckInvariants) still sees ranges exactly
// covered by headers. Pins spread through the nursery leave no
// reusable in-place gap at segregation time; without recycling every
// such scavenge would carve fresh arena, reproducing the legacy
// donation growth the modern collector exists to avoid.
//
// Selection: fragments no bigger than a configured nursery are
// consumed largest-first — segregation gaps chain back through
// successively smaller nurseries until they drop below the floor
// (1/16 nursery), instead of lying fallow until the next full sweep.
// Only when no such fragment exists is a nursery sliced off the
// smallest oversized block, keeping the big coalesced blocks intact
// for promotion reservation.
func (h *Heap) recycleNursery() bool {
	floor := h.youngSize / 16
	if floor < 4096 {
		floor = 4096
	}
	if floor > h.youngSize {
		floor = h.youngSize
	}
	best := -1
	for i, fb := range h.freeList {
		if fb.size < floor {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		bs := h.freeList[best].size
		fits, bestFits := fb.size <= h.youngSize, bs <= h.youngSize
		switch {
		case fits && bestFits:
			if fb.size > bs {
				best = i
			}
		case fits:
			best = i
		case !bestFits:
			if fb.size < bs {
				best = i
			}
		}
	}
	if best < 0 {
		return false
	}
	fb := h.freeList[best]
	ri := -1
	for i, rg := range h.elderRanges {
		if rg.start <= fb.off && fb.off+fb.size <= rg.end {
			ri = i
			break
		}
	}
	if ri < 0 {
		// Free blocks always lie inside an elder range; tolerate a
		// violation by declining rather than corrupting the walk.
		return false
	}
	take := fb.size
	if take > h.youngSize {
		take = h.youngSize
		if fb.size-take < HeaderSize {
			// The remainder could not carry a free-block header.
			take = fb.size
		}
	}
	if take == fb.size {
		h.freeList = append(h.freeList[:best], h.freeList[best+1:]...)
	} else {
		h.freeList[best] = freeBlock{fb.off + take, fb.size - take}
		h.writeFreeBlock(fb.off+take, fb.size-take)
	}
	rg := h.elderRanges[ri]
	h.elderRanges[ri] = h.elderRanges[len(h.elderRanges)-1]
	h.elderRanges = h.elderRanges[:len(h.elderRanges)-1]
	if fb.off > rg.start {
		h.elderRanges = append(h.elderRanges, rng{rg.start, fb.off})
	}
	if fb.off+take < rg.end {
		h.elderRanges = append(h.elderRanges, rng{fb.off + take, rg.end})
	}
	clearBytes(h.mem[fb.off : fb.off+take])
	h.youngStart, h.youngPos, h.youngEnd = fb.off, fb.off, fb.off+take
	atomic.AddUint64(&h.Stats.NurseriesRecycled, 1)
	return true
}

// fullParallel is the elder phase of a modern full collection:
// parallel mark from the root set, parallel sweep, and optional
// sliding compaction.
func (h *Heap) fullParallel(v *VM, pinned map[Ref]struct{}, res *condPinResolver, canCompact bool) {
	atomic.AddUint64(&h.Stats.FullGCs, 1)
	atomic.AddUint64(&h.Stats.ParallelMarks, 1)
	tr := obs.Active()

	if tr != nil {
		tr.Begin(v.traceLane, obs.KGCPhase, uint64(obs.PhaseRoots))
	}
	mk := newMarkState(h, h.gcWorkers)
	var wg sync.WaitGroup
	for i := 0; i < h.gcWorkers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mk.worker(id, res)
		}(i)
	}
	v.visitAllRoots(func(r Ref) Ref {
		mk.inject(r)
		return r
	})
	for r := range pinned {
		mk.inject(r)
	}
	if tr != nil {
		tr.End(v.traceLane)
		tr.Begin(v.traceLane, obs.KGCPhase, uint64(obs.PhaseMark))
	}
	// Resolution during mark: the resolver settles the requests no
	// worker has fed it yet, injecting held objects as roots, while
	// the workers are marking. The coordinator token keeps the
	// workers from terminating before this completes.
	res.drain(mk.inject)
	mk.releaseToken()
	wg.Wait()
	if tr != nil {
		tr.End(v.traceLane)
		tr.Begin(v.traceLane, obs.KGCPhase, uint64(obs.PhaseSweep))
	}
	// Merging exactly adjacent ranges first lets the sweep coalesce
	// free space across former carve/segregation boundaries; without
	// it, nursery gaps returned by segregatePinned stay separate
	// ranges forever and the heap can never reassemble a block large
	// enough for promotion reservation or nursery recycling.
	h.mergeElderRanges()
	h.sweepParallel(mk)
	if tr != nil {
		tr.End(v.traceLane)
	}

	// Held conditional pins join the compaction skip set.
	for _, r := range res.heldRefs() {
		pinned[r] = struct{}{}
	}
	if canCompact && h.youngPos == h.youngStart &&
		(h.compactRequested || len(h.freeList) >= compactFreeListThreshold) {
		if tr != nil {
			tr.Begin(v.traceLane, obs.KGCPhase, uint64(obs.PhaseCompact))
		}
		h.compactElder(v, pinned)
		if tr != nil {
			tr.End(v.traceLane)
		}
	}
	h.compactRequested = false
	h.sinceFull = 0
}

// sweepParallel rebuilds the elder free lists from the mark bitmap.
// Workers claim whole ranges; the coordinator concatenates results in
// range order so the free list is deterministic regardless of worker
// scheduling.
func (h *Heap) sweepParallel(mk *markState) {
	type result struct {
		free  []freeBlock
		used  uint32
		swept uint64
	}
	results := make([]result, len(h.elderRanges))
	var next uint32 // atomic range cursor
	var wg sync.WaitGroup
	workers := h.gcWorkers
	if workers > len(h.elderRanges) {
		workers = len(h.elderRanges)
	}
	sweepRange := func(idx int) {
		rg := h.elderRanges[idx]
		res := &results[idx]
		pos := rg.start
		freeStart := rg.start
		flush := func(end uint32) {
			// Runs smaller than a header cannot be described in place;
			// they are leaked until the surrounding space coalesces.
			if end > freeStart && end-freeStart >= HeaderSize {
				size := end - freeStart
				h.writeFreeBlock(freeStart, size)
				res.free = append(res.free, freeBlock{freeStart, size})
			}
		}
		for pos < rg.end {
			size := h.objSize(Ref(pos))
			if size < HeaderSize || pos+size > rg.end {
				break
			}
			if h.mtIndex(Ref(pos)) != freeSentinel && mk.marked(pos) {
				flush(pos)
				res.used += size
				freeStart = pos + size
			} else if h.mtIndex(Ref(pos)) != freeSentinel {
				res.swept += uint64(size)
			}
			pos += size
		}
		flush(rg.end)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(atomic.AddUint32(&next, 1)) - 1
				if idx >= len(h.elderRanges) {
					return
				}
				sweepRange(idx)
			}
		}()
	}
	wg.Wait()

	h.freeList = h.freeList[:0]
	h.elderUsed = 0
	var swept uint64
	for i := range results {
		h.freeList = append(h.freeList, results[i].free...)
		h.elderUsed += results[i].used
		swept += results[i].swept
	}
	atomic.AddUint64(&h.Stats.BytesSwept, swept)
}
