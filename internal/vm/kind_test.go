package vm

import "testing"

func TestKindSizes(t *testing.T) {
	want := map[Kind]int{
		KindBool: 1, KindInt8: 1, KindUint8: 1,
		KindInt16: 2, KindUint16: 2, KindChar: 2,
		KindInt32: 4, KindUint32: 4, KindFloat32: 4, KindRef: 4,
		KindInt64: 8, KindUint64: 8, KindFloat64: 8,
		KindVoid: 0,
	}
	for k, size := range want {
		if k.Size() != size {
			t.Errorf("%s size %d, want %d", k, k.Size(), size)
		}
	}
	if Kind(200).Size() != 0 {
		t.Error("out-of-range kind has nonzero size")
	}
}

func TestKindSimple(t *testing.T) {
	for k := KindBool; k < KindRef; k++ {
		if !k.Simple() {
			t.Errorf("%s not simple", k)
		}
	}
	if KindRef.Simple() || KindVoid.Simple() {
		t.Error("ref/void reported simple")
	}
}

func TestKindByNameRoundtrip(t *testing.T) {
	for k := KindVoid; k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok {
			t.Errorf("KindByName(%q) not found", k.String())
			continue
		}
		if got != k {
			t.Errorf("KindByName(%q) = %s", k.String(), got)
		}
	}
	if _, ok := KindByName("quaternion"); ok {
		t.Error("unknown kind resolved")
	}
	if Kind(99).String() == "" {
		t.Error("out-of-range kind has empty name")
	}
}

func TestValueHelpers(t *testing.T) {
	if v := IntValue(-5); v.Int() != -5 || v.IsRef {
		t.Errorf("IntValue: %+v", v)
	}
	if v := FloatValue(2.5); v.Float() != 2.5 {
		t.Errorf("FloatValue: %+v", v)
	}
	if v := RefValue(Ref(0x100)); !v.IsRef || v.Ref() != 0x100 {
		t.Errorf("RefValue: %+v", v)
	}
	if !BoolValue(true).Bool() || BoolValue(false).Bool() {
		t.Error("BoolValue")
	}
	if BoolValue(true).Int() != 1 {
		t.Error("bool as int")
	}
}

func TestFieldDescBits(t *testing.T) {
	fd := makeFieldDesc("f", 1234, KindFloat64, true, nil)
	if fd.Offset() != 1234 {
		t.Errorf("offset %d", fd.Offset())
	}
	if fd.Kind() != KindFloat64 {
		t.Errorf("kind %s", fd.Kind())
	}
	if !fd.Transportable() {
		t.Error("transportable bit lost")
	}
	if fd.IsRef() {
		t.Error("float64 reported ref")
	}
	fd2 := makeFieldDesc("g", (1<<fdOffsetBits)-8, KindRef, false, nil)
	if fd2.Offset() != (1<<fdOffsetBits)-8 {
		t.Errorf("max offset %d", fd2.Offset())
	}
	if fd2.Transportable() {
		t.Error("transportable bit set")
	}
	if !fd2.IsRef() {
		t.Error("ref field not ref")
	}
}

func TestMethodTableString(t *testing.T) {
	v := testVM()
	n := nodeClass(v)
	cases := map[*MethodTable]string{
		n:                                "Node",
		v.ArrayType(KindInt32, nil, 1):   "int32[rank=1]",
		v.ArrayType(KindRef, n, 1):       "Node[]",
		v.ArrayType(KindFloat64, nil, 2): "float64[rank=2]",
	}
	for mt, want := range cases {
		if mt.String() != want {
			t.Errorf("%v String %q, want %q", mt.Name, mt.String(), want)
		}
	}
	var nilMT *MethodTable
	if nilMT.String() != "<nil type>" {
		t.Error("nil MT string")
	}
}

func TestMethodFullName(t *testing.T) {
	v := testVM()
	n := nodeClass(v)
	m := v.AddMethod(n, &Method{Name: "walk"})
	if m.FullName() != "Node.walk" {
		t.Errorf("full name %q", m.FullName())
	}
	free := v.AddMethod(nil, &Method{Name: "main"})
	if free.FullName() != "main" {
		t.Errorf("module method name %q", free.FullName())
	}
}

func TestTransportableRefs(t *testing.T) {
	v := testVM()
	n := nodeClass(v) // data, next transportable; shadow not; id scalar
	tr := n.TransportableRefs()
	if len(tr) != 2 {
		t.Fatalf("%d transportable refs", len(tr))
	}
	if tr[0].Name != "data" || tr[1].Name != "next" {
		t.Errorf("order %s %s", tr[0].Name, tr[1].Name)
	}
}
