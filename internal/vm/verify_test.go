package vm

import (
	"strings"
	"testing"
)

// Corruption tests for Heap.CheckInvariants: each test allocates a
// healthy heap, pokes the arena directly to violate one invariant,
// and asserts the verifier reports it (with a recognizable message).
// A heap verifier that misses corruption is worse than none.

func allocPoint(t *testing.T, v *VM) Ref {
	t.Helper()
	ref, err := v.Heap.AllocClass(pointClass(v))
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func wantInvariantError(t *testing.T, h *Heap, substr string) {
	t.Helper()
	err := h.CheckInvariants()
	if err == nil {
		t.Fatalf("CheckInvariants passed, want error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("CheckInvariants = %v, want substring %q", err, substr)
	}
}

func TestCheckInvariantsHealthy(t *testing.T) {
	v := testVM()
	allocPoint(t, v)
	if err := v.Heap.CheckInvariants(); err != nil {
		t.Fatalf("healthy heap: %v", err)
	}
}

func TestCheckInvariantsBadMTIndex(t *testing.T) {
	v := testVM()
	ref := allocPoint(t, v)
	v.Heap.putU32(uint32(ref)+hdrMT, 0xFFFF) // far beyond the type registry
	wantInvariantError(t, v.Heap, "bad mt index")
}

func TestCheckInvariantsBadSize(t *testing.T) {
	v := testVM()
	ref := allocPoint(t, v)
	v.Heap.putU32(uint32(ref)+hdrSize, 4) // below HeaderSize
	wantInvariantError(t, v.Heap, "bad size")
}

func TestCheckInvariantsMisalignedSize(t *testing.T) {
	v := testVM()
	ref := allocPoint(t, v)
	v.Heap.putU32(uint32(ref)+hdrSize, HeaderSize+4) // not 8-aligned
	wantInvariantError(t, v.Heap, "bad size")
}

func TestCheckInvariantsSizeMismatch(t *testing.T) {
	v := testVM()
	ref := allocPoint(t, v)
	// Valid alignment, valid range — but disagrees with the class's
	// allocation size, so the walk desynchronizes at this object.
	v.Heap.putU32(uint32(ref)+hdrSize, classAllocSize(v.Heap.MT(ref))+8)
	wantInvariantError(t, v.Heap, "size")
}

func TestCheckInvariantsArrayLengthMismatch(t *testing.T) {
	v := testVM()
	arr, err := v.Heap.AllocArray(v.ArrayType(KindInt64, nil, 1), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the recorded length without growing the allocation.
	v.Heap.putU32(uint32(arr)+hdrLength, 64)
	wantInvariantError(t, v.Heap, "size")
}

func TestCheckInvariantsDanglingReference(t *testing.T) {
	v := testVM()
	node := nodeClass(v)
	ref, err := v.Heap.AllocClass(node)
	if err != nil {
		t.Fatal(err)
	}
	// Point the "next" field into unallocated space.
	v.Heap.SetField(ref, node.FieldByName("next"), uint64(v.Heap.youngEnd-8))
	wantInvariantError(t, v.Heap, "references invalid")
}

func TestCheckInvariantsPinnedDead(t *testing.T) {
	v := testVM()
	ref := allocPoint(t, v)
	v.Heap.Pin(ref)
	// Erase the object by turning its header into a free block.
	size := v.Heap.objSize(ref)
	v.Heap.putU32(uint32(ref)+hdrMT, freeSentinel)
	v.Heap.putU32(uint32(ref)+hdrSize, size)
	wantInvariantError(t, v.Heap, "pinned ref")
}
