package vm

// Op is a bytecode opcode. The instruction set is a compact CIL-like
// stack machine: enough to express the paper's managed workloads
// (ping-pong drivers, linked-structure construction, numeric kernels)
// while keeping the interpreter auditable.
type Op byte

// Opcodes. Operand widths are fixed per opcode (see opInfo).
const (
	OpNop Op = iota

	// Constants.
	OpLdcI4 // int32 immediate, pushed sign-extended
	OpLdcI8 // int64 immediate
	OpLdcR8 // float64 immediate
	OpLdNull

	// Locals and arguments.
	OpLdLoc // u16 index
	OpStLoc // u16 index
	OpLdArg // u16 index
	OpStArg // u16 index

	// Stack shuffling.
	OpDup
	OpPop

	// Integer arithmetic (int64 semantics).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpNeg
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNot

	// Float arithmetic (float64 semantics).
	OpAddF
	OpSubF
	OpMulF
	OpDivF
	OpNegF

	// Comparisons (push 0/1).
	OpCeq
	OpClt
	OpCgt
	OpCeqF
	OpCltF
	OpCgtF

	// Conversions.
	OpConvI2F
	OpConvF2I

	// Control flow. Branch operands are int32 offsets relative to the
	// end of the instruction.
	OpBr
	OpBrTrue
	OpBrFalse

	// Calls.
	OpCall     // u16 method index
	OpCallVirt // u16 method index of the statically named method; dispatched via the receiver's vtable slot
	OpIntern   // u16 internal-call index (FCall)
	OpRet      // return void
	OpRetVal   // return top of stack

	// Objects and arrays.
	OpNewObj // u16 type index
	OpNewArr // u16 array-type index; pops length
	OpNewMD  // u16 array-type index; pops rank dimension sizes (row-major order)
	OpLdLen
	OpLdElem // pops index, array
	OpStElem // pops value, index, array
	OpLdFld  // u16 field slot; pops object
	OpStFld  // u16 field slot; pops value, object
	OpLdSFld // u16 global index
	OpStSFld // u16 global index

	opCount
)

// operand width categories
type opWidth uint8

const (
	wNone opWidth = iota
	wU16
	wI32
	wI64
)

type opInfo struct {
	name  string
	width opWidth
}

var opTable = [opCount]opInfo{
	OpNop:      {"nop", wNone},
	OpLdcI4:    {"ldc.i4", wI32},
	OpLdcI8:    {"ldc.i8", wI64},
	OpLdcR8:    {"ldc.r8", wI64},
	OpLdNull:   {"ldnull", wNone},
	OpLdLoc:    {"ldloc", wU16},
	OpStLoc:    {"stloc", wU16},
	OpLdArg:    {"ldarg", wU16},
	OpStArg:    {"starg", wU16},
	OpDup:      {"dup", wNone},
	OpPop:      {"pop", wNone},
	OpAdd:      {"add", wNone},
	OpSub:      {"sub", wNone},
	OpMul:      {"mul", wNone},
	OpDiv:      {"div", wNone},
	OpRem:      {"rem", wNone},
	OpNeg:      {"neg", wNone},
	OpAnd:      {"and", wNone},
	OpOr:       {"or", wNone},
	OpXor:      {"xor", wNone},
	OpShl:      {"shl", wNone},
	OpShr:      {"shr", wNone},
	OpNot:      {"not", wNone},
	OpAddF:     {"add.f", wNone},
	OpSubF:     {"sub.f", wNone},
	OpMulF:     {"mul.f", wNone},
	OpDivF:     {"div.f", wNone},
	OpNegF:     {"neg.f", wNone},
	OpCeq:      {"ceq", wNone},
	OpClt:      {"clt", wNone},
	OpCgt:      {"cgt", wNone},
	OpCeqF:     {"ceq.f", wNone},
	OpCltF:     {"clt.f", wNone},
	OpCgtF:     {"cgt.f", wNone},
	OpConvI2F:  {"conv.i2f", wNone},
	OpConvF2I:  {"conv.f2i", wNone},
	OpBr:       {"br", wI32},
	OpBrTrue:   {"brtrue", wI32},
	OpBrFalse:  {"brfalse", wI32},
	OpCall:     {"call", wU16},
	OpCallVirt: {"callvirt", wU16},
	OpIntern:   {"intern", wU16},
	OpRet:      {"ret", wNone},
	OpRetVal:   {"ret.val", wNone},
	OpNewObj:   {"newobj", wU16},
	OpNewArr:   {"newarr", wU16},
	OpNewMD:    {"newmd", wU16},
	OpLdLen:    {"ldlen", wNone},
	OpLdElem:   {"ldelem", wNone},
	OpStElem:   {"stelem", wNone},
	OpLdFld:    {"ldfld", wU16},
	OpStFld:    {"stfld", wU16},
	OpLdSFld:   {"ldsfld", wU16},
	OpStSFld:   {"stsfld", wU16},
}

// Name returns the assembler mnemonic.
func (o Op) Name() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return "op?"
}

// Valid reports whether the byte encodes a defined opcode.
func (o Op) Valid() bool { return o < opCount && opTable[o].name != "" }

// width returns the operand byte count.
func (o Op) operandBytes() int {
	if o >= opCount {
		// Undefined opcodes decode as operand-free so the interpreter
		// reaches its bad-opcode trap instead of indexing out of range.
		return 0
	}
	switch opTable[o].width {
	case wU16:
		return 2
	case wI32:
		return 4
	case wI64:
		return 8
	default:
		return 0
	}
}

// OperandBytes is the exported operand width (0 for undefined opcodes).
func (o Op) OperandBytes() int { return o.operandBytes() }

// opByName resolves a mnemonic (used by the text assembler).
var opByName = func() map[string]Op {
	m := make(map[string]Op, opCount)
	for op := Op(0); op < opCount; op++ {
		if opTable[op].name != "" {
			m[opTable[op].name] = op
		}
	}
	return m
}()

// --- static opcode metadata ---------------------------------------------------

// StackKind is the coarse classification of one evaluation-stack slot
// used by the static metadata below and by the bytecode verifier
// (internal/vm/bcverify). It is deliberately smaller than Kind: the
// evaluation stack only ever holds int64s, float64s and references.
type StackKind uint8

// Stack slot classifications.
const (
	// SKAny matches any slot (used where the static table cannot
	// commit: arguments, globals, untyped FCall results).
	SKAny StackKind = iota
	// SKInt is a value with int64 semantics.
	SKInt
	// SKFloat is a value with float64 semantics.
	SKFloat
	// SKRef is an object reference (possibly null).
	SKRef
)

// String names the classification for diagnostics.
func (k StackKind) String() string {
	switch k {
	case SKInt:
		return "int"
	case SKFloat:
		return "float"
	case SKRef:
		return "ref"
	default:
		return "any"
	}
}

// Effect is the declarative stack contract of one opcode: what it pops
// (top of stack first), what it pushes, and how it transfers control.
// Interp.go remains the executable semantics; this table makes the
// implicit knowledge spread through its switch available to static
// tools — the verifier checks every method against it, and a unit test
// keeps it consistent with the operand-width table.
type Effect struct {
	// Pop lists the operand kinds consumed, top of stack first. Nil for
	// Variable opcodes, whose arity depends on operand resolution.
	Pop []StackKind
	// Push lists the result kinds produced (at most one today).
	Push []StackKind
	// Branch marks opcodes with an i32 branch-offset operand.
	Branch bool
	// Uncond marks branches with no fall-through successor (br).
	Uncond bool
	// Terminator marks opcodes that end the method (ret, ret.val).
	Terminator bool
	// Variable marks opcodes whose pops/pushes depend on the resolved
	// operand (call, callvirt, intern, newmd); the verifier computes
	// their effect from the method / FCall / type registries.
	Variable bool
}

var effAnyAny = []StackKind{SKAny, SKAny}
var effIntInt = []StackKind{SKInt, SKInt}
var effFltFlt = []StackKind{SKFloat, SKFloat}

var effectTable = [opCount]Effect{
	OpNop:    {},
	OpLdcI4:  {Push: []StackKind{SKInt}},
	OpLdcI8:  {Push: []StackKind{SKInt}},
	OpLdcR8:  {Push: []StackKind{SKFloat}},
	OpLdNull: {Push: []StackKind{SKRef}},

	// Frame-slot accesses: pops/pushes are fixed, but the pushed type
	// is the tracked slot type — the verifier refines SKAny.
	OpLdLoc: {Push: []StackKind{SKAny}},
	OpStLoc: {Pop: []StackKind{SKAny}},
	OpLdArg: {Push: []StackKind{SKAny}},
	OpStArg: {Pop: []StackKind{SKAny}},

	OpDup: {Pop: []StackKind{SKAny}, Push: effAnyAny},
	OpPop: {Pop: []StackKind{SKAny}},

	OpAdd: {Pop: effIntInt, Push: []StackKind{SKInt}},
	OpSub: {Pop: effIntInt, Push: []StackKind{SKInt}},
	OpMul: {Pop: effIntInt, Push: []StackKind{SKInt}},
	OpDiv: {Pop: effIntInt, Push: []StackKind{SKInt}},
	OpRem: {Pop: effIntInt, Push: []StackKind{SKInt}},
	OpNeg: {Pop: []StackKind{SKInt}, Push: []StackKind{SKInt}},
	OpAnd: {Pop: effIntInt, Push: []StackKind{SKInt}},
	OpOr:  {Pop: effIntInt, Push: []StackKind{SKInt}},
	OpXor: {Pop: effIntInt, Push: []StackKind{SKInt}},
	OpShl: {Pop: effIntInt, Push: []StackKind{SKInt}},
	OpShr: {Pop: effIntInt, Push: []StackKind{SKInt}},
	OpNot: {Pop: []StackKind{SKInt}, Push: []StackKind{SKInt}},

	OpAddF: {Pop: effFltFlt, Push: []StackKind{SKFloat}},
	OpSubF: {Pop: effFltFlt, Push: []StackKind{SKFloat}},
	OpMulF: {Pop: effFltFlt, Push: []StackKind{SKFloat}},
	OpDivF: {Pop: effFltFlt, Push: []StackKind{SKFloat}},
	OpNegF: {Pop: []StackKind{SKFloat}, Push: []StackKind{SKFloat}},

	// ceq compares raw bits — identity for refs, equality for ints. The
	// verifier requires both operands in one category and rejects float
	// operands outright (bit equality would make NaN==NaN true and
	// +0.0==-0.0 false; guests must use ceq.f).
	OpCeq:  {Pop: effAnyAny, Push: []StackKind{SKInt}},
	OpClt:  {Pop: effIntInt, Push: []StackKind{SKInt}},
	OpCgt:  {Pop: effIntInt, Push: []StackKind{SKInt}},
	OpCeqF: {Pop: effFltFlt, Push: []StackKind{SKInt}},
	OpCltF: {Pop: effFltFlt, Push: []StackKind{SKInt}},
	OpCgtF: {Pop: effFltFlt, Push: []StackKind{SKInt}},

	OpConvI2F: {Pop: []StackKind{SKInt}, Push: []StackKind{SKFloat}},
	OpConvF2I: {Pop: []StackKind{SKFloat}, Push: []StackKind{SKInt}},

	OpBr: {Branch: true, Uncond: true},
	// Branch conditions test raw bits: int or ref (null test), never
	// float — the verifier rejects float conditions.
	OpBrTrue:  {Pop: []StackKind{SKAny}, Branch: true},
	OpBrFalse: {Pop: []StackKind{SKAny}, Branch: true},

	OpCall:     {Variable: true},
	OpCallVirt: {Variable: true},
	OpIntern:   {Variable: true},
	OpRet:      {Terminator: true},
	OpRetVal:   {Pop: []StackKind{SKAny}, Terminator: true},

	OpNewObj: {Push: []StackKind{SKRef}},
	OpNewArr: {Pop: []StackKind{SKInt}, Push: []StackKind{SKRef}},
	OpNewMD:  {Variable: true}, // pops Rank lengths
	OpLdLen:  {Pop: []StackKind{SKRef}, Push: []StackKind{SKInt}},
	OpLdElem: {Pop: []StackKind{SKInt, SKRef}, Push: []StackKind{SKAny}},
	OpStElem: {Pop: []StackKind{SKAny, SKInt, SKRef}},
	OpLdFld:  {Pop: []StackKind{SKRef}, Push: []StackKind{SKAny}},
	OpStFld:  {Pop: []StackKind{SKAny, SKRef}},
	OpLdSFld: {Push: []StackKind{SKAny}},
	OpStSFld: {Pop: []StackKind{SKAny}},
}

// Effect returns the opcode's static stack contract (the zero Effect
// for undefined opcodes).
func (o Op) Effect() Effect {
	if !o.Valid() {
		return Effect{}
	}
	return effectTable[o]
}
