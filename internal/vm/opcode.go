package vm

// Op is a bytecode opcode. The instruction set is a compact CIL-like
// stack machine: enough to express the paper's managed workloads
// (ping-pong drivers, linked-structure construction, numeric kernels)
// while keeping the interpreter auditable.
type Op byte

// Opcodes. Operand widths are fixed per opcode (see opInfo).
const (
	OpNop Op = iota

	// Constants.
	OpLdcI4 // int32 immediate, pushed sign-extended
	OpLdcI8 // int64 immediate
	OpLdcR8 // float64 immediate
	OpLdNull

	// Locals and arguments.
	OpLdLoc // u16 index
	OpStLoc // u16 index
	OpLdArg // u16 index
	OpStArg // u16 index

	// Stack shuffling.
	OpDup
	OpPop

	// Integer arithmetic (int64 semantics).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpNeg
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNot

	// Float arithmetic (float64 semantics).
	OpAddF
	OpSubF
	OpMulF
	OpDivF
	OpNegF

	// Comparisons (push 0/1).
	OpCeq
	OpClt
	OpCgt
	OpCeqF
	OpCltF
	OpCgtF

	// Conversions.
	OpConvI2F
	OpConvF2I

	// Control flow. Branch operands are int32 offsets relative to the
	// end of the instruction.
	OpBr
	OpBrTrue
	OpBrFalse

	// Calls.
	OpCall     // u16 method index
	OpCallVirt // u16 method index of the statically named method; dispatched via the receiver's vtable slot
	OpIntern   // u16 internal-call index (FCall)
	OpRet      // return void
	OpRetVal   // return top of stack

	// Objects and arrays.
	OpNewObj // u16 type index
	OpNewArr // u16 array-type index; pops length
	OpNewMD  // u16 array-type index; pops rank dimension sizes (row-major order)
	OpLdLen
	OpLdElem // pops index, array
	OpStElem // pops value, index, array
	OpLdFld  // u16 field slot; pops object
	OpStFld  // u16 field slot; pops value, object
	OpLdSFld // u16 global index
	OpStSFld // u16 global index

	opCount
)

// operand width categories
type opWidth uint8

const (
	wNone opWidth = iota
	wU16
	wI32
	wI64
)

type opInfo struct {
	name  string
	width opWidth
}

var opTable = [opCount]opInfo{
	OpNop:      {"nop", wNone},
	OpLdcI4:    {"ldc.i4", wI32},
	OpLdcI8:    {"ldc.i8", wI64},
	OpLdcR8:    {"ldc.r8", wI64},
	OpLdNull:   {"ldnull", wNone},
	OpLdLoc:    {"ldloc", wU16},
	OpStLoc:    {"stloc", wU16},
	OpLdArg:    {"ldarg", wU16},
	OpStArg:    {"starg", wU16},
	OpDup:      {"dup", wNone},
	OpPop:      {"pop", wNone},
	OpAdd:      {"add", wNone},
	OpSub:      {"sub", wNone},
	OpMul:      {"mul", wNone},
	OpDiv:      {"div", wNone},
	OpRem:      {"rem", wNone},
	OpNeg:      {"neg", wNone},
	OpAnd:      {"and", wNone},
	OpOr:       {"or", wNone},
	OpXor:      {"xor", wNone},
	OpShl:      {"shl", wNone},
	OpShr:      {"shr", wNone},
	OpNot:      {"not", wNone},
	OpAddF:     {"add.f", wNone},
	OpSubF:     {"sub.f", wNone},
	OpMulF:     {"mul.f", wNone},
	OpDivF:     {"div.f", wNone},
	OpNegF:     {"neg.f", wNone},
	OpCeq:      {"ceq", wNone},
	OpClt:      {"clt", wNone},
	OpCgt:      {"cgt", wNone},
	OpCeqF:     {"ceq.f", wNone},
	OpCltF:     {"clt.f", wNone},
	OpCgtF:     {"cgt.f", wNone},
	OpConvI2F:  {"conv.i2f", wNone},
	OpConvF2I:  {"conv.f2i", wNone},
	OpBr:       {"br", wI32},
	OpBrTrue:   {"brtrue", wI32},
	OpBrFalse:  {"brfalse", wI32},
	OpCall:     {"call", wU16},
	OpCallVirt: {"callvirt", wU16},
	OpIntern:   {"intern", wU16},
	OpRet:      {"ret", wNone},
	OpRetVal:   {"ret.val", wNone},
	OpNewObj:   {"newobj", wU16},
	OpNewArr:   {"newarr", wU16},
	OpNewMD:    {"newmd", wU16},
	OpLdLen:    {"ldlen", wNone},
	OpLdElem:   {"ldelem", wNone},
	OpStElem:   {"stelem", wNone},
	OpLdFld:    {"ldfld", wU16},
	OpStFld:    {"stfld", wU16},
	OpLdSFld:   {"ldsfld", wU16},
	OpStSFld:   {"stsfld", wU16},
}

// Name returns the assembler mnemonic.
func (o Op) Name() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return "op?"
}

// width returns the operand byte count.
func (o Op) operandBytes() int {
	switch opTable[o].width {
	case wU16:
		return 2
	case wI32:
		return 4
	case wI64:
		return 8
	default:
		return 0
	}
}

// opByName resolves a mnemonic (used by the text assembler).
var opByName = func() map[string]Op {
	m := make(map[string]Op, opCount)
	for op := Op(0); op < opCount; op++ {
		if opTable[op].name != "" {
			m[opTable[op].name] = op
		}
	}
	return m
}()
