package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"

	"motor/internal/obs"
)

// The bytecode interpreter. One callFrame per activation; the frame
// stack lives on the Thread so the collector can enumerate stack
// roots precisely (every Value carries an IsRef tag).

// Interpreter limits.
const (
	maxCallDepth = 1 << 14
)

// Trap is a managed runtime error: null dereference, bounds, division
// by zero, bad cast. Traps unwind the interpreter and surface as Go
// errors from Thread.Call.
type Trap struct {
	Kind   string
	Detail string
	Method string
	PC     int
}

// Error implements the error interface.
func (t *Trap) Error() string {
	return fmt.Sprintf("vm: %s in %s at pc=%d: %s", t.Kind, t.Method, t.PC, t.Detail)
}

// ErrCallDepth is raised when managed recursion exceeds maxCallDepth.
var ErrCallDepth = errors.New("vm: call depth exceeded")

type callFrame struct {
	method *Method
	args   []Value
	locals []Value
	stack  []Value
	pc     int
	// qpc is the resume index into the quickened body when the method
	// runs on the fast dispatch loop (quickrun.go); pc still tracks
	// the original bytecode offset at every trap and GC-capable point
	// so diagnostics and line mapping stay engine-independent.
	qpc int
}

func (f *callFrame) visitRoots(visit func(Ref) Ref) {
	fix := func(vals []Value) {
		for i := range vals {
			if vals[i].IsRef && vals[i].Bits != 0 {
				vals[i].Bits = uint64(visit(Ref(vals[i].Bits)))
			}
		}
	}
	fix(f.args)
	fix(f.locals)
	fix(f.stack)
}

func (f *callFrame) push(v Value) { f.stack = append(f.stack, v) }

func (f *callFrame) pop() Value {
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

func (f *callFrame) trap(kind, detail string) *Trap {
	return &Trap{Kind: kind, Detail: detail, Method: f.method.FullName(), PC: f.pc}
}

// Call executes a method to completion on this thread and returns its
// result (zero Value for void methods).
func (t *Thread) Call(m *Method, args ...Value) (Value, error) {
	if len(args) != m.NArgs {
		return Value{}, fmt.Errorf("vm: %s expects %d args, got %d", m.FullName(), m.NArgs, len(args))
	}
	base := len(t.callStack)
	t.pushCallFrame(m, args)
	v, err := t.run(base)
	var trap *Trap
	if errors.As(err, &trap) {
		// A trap surfacing to the embedder is a post-mortem moment:
		// capture the flight recorder before the process (or test)
		// moves on and the ring is overwritten.
		obs.FlightTrip("guest-trap")
	}
	return v, err
}

func (t *Thread) pushCallFrame(m *Method, args []Value) {
	t.pushFrameOwned(m, append([]Value(nil), args...))
}

// pushFrameOwned pushes a frame taking ownership of args (no copy).
// Verified methods carry MaxStack, so the operand stack can be sized
// once here and never grow — the quickened loop relies on this to
// keep pushes allocation-free between safepoints.
func (t *Thread) pushFrameOwned(m *Method, args []Value) {
	fr := &callFrame{
		method: m,
		args:   args,
		locals: make([]Value, m.NLocals),
	}
	if m.MaxStack > 0 {
		fr.stack = make([]Value, 0, m.MaxStack)
	}
	t.callStack = append(t.callStack, fr)
}

// run executes until the frame stack shrinks back to depth base.
// The result of the last returning frame is propagated.
func (t *Thread) run(base int) (result Value, err error) {
	callerInFCall := t.inFCall
	t.inFCall = false
	defer func() {
		panickedInFCall := t.inFCall
		t.inFCall = callerInFCall
		if r := recover(); r != nil {
			switch e := r.(type) {
			case *BoundsError:
				fr := t.callStack[len(t.callStack)-1]
				err = fr.trap("index out of range", e.Error())
			case runtime.Error:
				if panickedInFCall {
					// The panic unwound out of a host FCall, not the
					// dispatch loop: that is a bug in engine/host Go
					// code. Re-panic rather than masking it as a guest
					// "invalid program" trap.
					panic(r)
				}
				// Malformed (unverified) bytecode: operand-stack
				// underflow, out-of-range frame slots, truncated
				// operands. Surface as a typed trap instead of
				// crashing the host; verified modules never get here.
				if len(t.callStack) > base {
					fr := t.callStack[len(t.callStack)-1]
					err = fr.trap("invalid program", e.Error())
				} else {
					err = &Trap{Kind: "invalid program", Detail: e.Error(), Method: "?", PC: 0}
				}
			case error:
				if errors.Is(e, ErrOutOfMemory) {
					err = e
					break
				}
				panic(r)
			default:
				panic(r)
			}
			t.callStack = t.callStack[:base]
		}
	}()

	h := t.vm.Heap
	for len(t.callStack) > base {
		fr := t.callStack[len(t.callStack)-1]
		if fr.method.quick != nil {
			// Quickened method: run the fast loop until the frame
			// either returns (pop it, propagate the result) or pushes
			// a managed callee (loop around to dispatch the new top
			// frame on whichever engine it carries).
			rv, hasRV, returned, qerr := t.runQuick(fr)
			if qerr != nil {
				return Value{}, qerr
			}
			if returned {
				t.callStack = t.callStack[:len(t.callStack)-1]
				if hasRV {
					if len(t.callStack) > base {
						t.callStack[len(t.callStack)-1].push(rv)
					} else {
						result = rv
					}
				}
			}
			continue
		}
		code := fr.method.Code
		if fr.pc >= len(code) {
			// Fell off the end: treat as void return.
			t.callStack = t.callStack[:len(t.callStack)-1]
			continue
		}
		op := Op(code[fr.pc])
		opLen := 1 + op.operandBytes()
		operandAt := fr.pc + 1
		nextPC := fr.pc + opLen

		switch op {
		case OpNop:

		case OpLdcI4:
			fr.push(IntValue(int64(int32(binary.LittleEndian.Uint32(code[operandAt:])))))
		case OpLdcI8:
			fr.push(IntValue(int64(binary.LittleEndian.Uint64(code[operandAt:]))))
		case OpLdcR8:
			fr.push(Value{Bits: binary.LittleEndian.Uint64(code[operandAt:])})
		case OpLdNull:
			fr.push(Value{IsRef: true})

		case OpLdLoc:
			fr.push(fr.locals[u16(code, operandAt)])
		case OpStLoc:
			fr.locals[u16(code, operandAt)] = fr.pop()
		case OpLdArg:
			fr.push(fr.args[u16(code, operandAt)])
		case OpStArg:
			fr.args[u16(code, operandAt)] = fr.pop()

		case OpDup:
			fr.push(fr.stack[len(fr.stack)-1])
		case OpPop:
			fr.pop()

		case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr:
			b, a := fr.pop().Int(), fr.pop().Int()
			var r int64
			switch op {
			case OpAdd:
				r = a + b
			case OpSub:
				r = a - b
			case OpMul:
				r = a * b
			case OpDiv:
				if b == 0 {
					return Value{}, fr.trap("division by zero", "div")
				}
				r = a / b
			case OpRem:
				if b == 0 {
					return Value{}, fr.trap("division by zero", "rem")
				}
				r = a % b
			case OpAnd:
				r = a & b
			case OpOr:
				r = a | b
			case OpXor:
				r = a ^ b
			case OpShl:
				r = a << (uint64(b) & 63)
			case OpShr:
				r = a >> (uint64(b) & 63)
			}
			fr.push(IntValue(r))
		case OpNeg:
			fr.push(IntValue(-fr.pop().Int()))
		case OpNot:
			fr.push(IntValue(^fr.pop().Int()))

		case OpAddF, OpSubF, OpMulF, OpDivF:
			b, a := fr.pop().Float(), fr.pop().Float()
			var r float64
			switch op {
			case OpAddF:
				r = a + b
			case OpSubF:
				r = a - b
			case OpMulF:
				r = a * b
			case OpDivF:
				r = a / b
			}
			fr.push(FloatValue(r))
		case OpNegF:
			fr.push(FloatValue(-fr.pop().Float()))

		case OpCeq:
			b, a := fr.pop(), fr.pop()
			fr.push(BoolValue(a.Bits == b.Bits))
		case OpClt:
			b, a := fr.pop().Int(), fr.pop().Int()
			fr.push(BoolValue(a < b))
		case OpCgt:
			b, a := fr.pop().Int(), fr.pop().Int()
			fr.push(BoolValue(a > b))
		case OpCeqF:
			b, a := fr.pop().Float(), fr.pop().Float()
			fr.push(BoolValue(a == b))
		case OpCltF:
			b, a := fr.pop().Float(), fr.pop().Float()
			fr.push(BoolValue(a < b))
		case OpCgtF:
			b, a := fr.pop().Float(), fr.pop().Float()
			fr.push(BoolValue(a > b))

		case OpConvI2F:
			fr.push(FloatValue(float64(fr.pop().Int())))
		case OpConvF2I:
			fr.push(IntValue(convF2I(fr.pop().Float())))

		case OpBr:
			nextPC += int(int32(binary.LittleEndian.Uint32(code[operandAt:])))
		case OpBrTrue:
			off := int(int32(binary.LittleEndian.Uint32(code[operandAt:])))
			if fr.pop().Bool() {
				nextPC += off
			}
		case OpBrFalse:
			off := int(int32(binary.LittleEndian.Uint32(code[operandAt:])))
			if !fr.pop().Bool() {
				nextPC += off
			}

		case OpCall, OpCallVirt:
			idx := int(u16(code, operandAt))
			callee, ok := t.vm.MethodByIndex(idx)
			if !ok {
				return Value{}, fr.trap("bad method index", fmt.Sprintf("%d", idx))
			}
			args := make([]Value, callee.NArgs)
			for i := callee.NArgs - 1; i >= 0; i-- {
				args[i] = fr.pop()
			}
			if op == OpCallVirt {
				if !callee.Virtual || callee.Owner == nil {
					return Value{}, fr.trap("callvirt on non-virtual", callee.FullName())
				}
				recv := args[0]
				if !recv.IsRef || recv.Bits == 0 {
					return Value{}, fr.trap("null reference", "callvirt receiver")
				}
				rmt := h.MT(recv.Ref())
				impl := lookupVSlot(rmt, callee.VSlot)
				if impl == nil {
					return Value{}, fr.trap("bad vtable slot", callee.FullName())
				}
				callee = impl
			}
			if len(t.callStack) >= maxCallDepth {
				return Value{}, ErrCallDepth
			}
			if t.stepBudget != 0 {
				t.stepBudget--
				if t.stepBudget == 0 {
					return Value{}, fr.trap("step budget exhausted", callee.FullName())
				}
			}
			fr.pc = nextPC
			t.pushFrameOwned(callee, args)
			t.PollGC()
			continue

		case OpIntern:
			idx := int(u16(code, operandAt))
			fn, ok := t.vm.InternalByIndex(idx)
			if !ok {
				return Value{}, fr.trap("bad internal index", fmt.Sprintf("%d", idx))
			}
			args := make([]Value, fn.NArgs)
			for i := fn.NArgs - 1; i >= 0; i-- {
				args[i] = fr.pop()
			}
			fr.pc = nextPC // commit pc before any GC inside the FCall
			t.inFCall = true
			ret, err := fn.Fn(t, args)
			t.inFCall = false
			if err != nil {
				return Value{}, fmt.Errorf("vm: internal call %s: %w", fn.Name, err)
			}
			if fn.HasRet {
				fr.push(ret)
			}
			continue

		case OpRet:
			t.callStack = t.callStack[:len(t.callStack)-1]
			continue
		case OpRetVal:
			rv := fr.pop()
			t.callStack = t.callStack[:len(t.callStack)-1]
			if len(t.callStack) > base {
				t.callStack[len(t.callStack)-1].push(rv)
			} else {
				result = rv
			}
			continue

		case OpNewObj:
			idx := int(u16(code, operandAt))
			mt, ok := t.vm.TypeByIndex(idx)
			if !ok || mt.Kind != TKClass {
				return Value{}, fr.trap("bad type index", fmt.Sprintf("%d", idx))
			}
			fr.pc = nextPC // allocation may collect; stack/locals are roots already
			ref, err := h.AllocClass(mt)
			if err != nil {
				return Value{}, err
			}
			fr.push(RefValue(ref))
			continue
		case OpNewArr:
			idx := int(u16(code, operandAt))
			mt, ok := t.vm.TypeByIndex(idx)
			if !ok || mt.Kind != TKArray {
				return Value{}, fr.trap("bad array type index", fmt.Sprintf("%d", idx))
			}
			n := fr.pop().Int()
			if n < 0 {
				return Value{}, fr.trap("negative array length", fmt.Sprintf("%d", n))
			}
			fr.pc = nextPC
			ref, err := h.AllocArray(mt, int(n))
			if err != nil {
				return Value{}, err
			}
			fr.push(RefValue(ref))
			continue

		case OpNewMD:
			idx := int(u16(code, operandAt))
			mt, ok := t.vm.TypeByIndex(idx)
			if !ok || mt.Kind != TKArray || mt.Rank < 2 {
				return Value{}, fr.trap("bad multidim type index", fmt.Sprintf("%d", idx))
			}
			dims := make([]int, mt.Rank)
			for i := mt.Rank - 1; i >= 0; i-- {
				d := fr.pop().Int()
				if d < 0 {
					return Value{}, fr.trap("negative array length", fmt.Sprintf("%d", d))
				}
				dims[i] = int(d)
			}
			fr.pc = nextPC
			ref, err := h.AllocMultiDim(mt, dims)
			if err != nil {
				return Value{}, err
			}
			fr.push(RefValue(ref))
			continue

		case OpLdLen:
			arr := fr.pop()
			if !arr.IsRef || arr.Bits == 0 {
				return Value{}, fr.trap("null reference", "ldlen")
			}
			fr.push(IntValue(int64(h.Length(arr.Ref()))))

		case OpLdElem:
			i := fr.pop().Int()
			arr := fr.pop()
			if !arr.IsRef || arr.Bits == 0 {
				return Value{}, fr.trap("null reference", "ldelem")
			}
			mt := h.MT(arr.Ref())
			bits := h.GetElem(arr.Ref(), int(i))
			fr.push(elemValue(mt.Elem, bits))
		case OpStElem:
			val := fr.pop()
			i := fr.pop().Int()
			arr := fr.pop()
			if !arr.IsRef || arr.Bits == 0 {
				return Value{}, fr.trap("null reference", "stelem")
			}
			mt := h.MT(arr.Ref())
			if mt.Elem == KindRef && !val.IsRef {
				return Value{}, fr.trap("type mismatch", "storing scalar into reference array")
			}
			h.SetElem(arr.Ref(), int(i), storeBits(mt.Elem, val))

		case OpLdFld:
			slot := int(u16(code, operandAt))
			obj := fr.pop()
			if !obj.IsRef || obj.Bits == 0 {
				return Value{}, fr.trap("null reference", "ldfld")
			}
			mt := h.MT(obj.Ref())
			if slot >= len(mt.Fields) {
				return Value{}, fr.trap("bad field slot", fmt.Sprintf("%d on %s", slot, mt))
			}
			f := &mt.Fields[slot]
			bits, isRef := h.GetField(obj.Ref(), f)
			if isRef {
				fr.push(RefValue(Ref(bits)))
			} else {
				fr.push(elemValue(f.Kind(), bits))
			}
		case OpStFld:
			val := fr.pop()
			obj := fr.pop()
			if !obj.IsRef || obj.Bits == 0 {
				return Value{}, fr.trap("null reference", "stfld")
			}
			mt := h.MT(obj.Ref())
			slot := int(u16(code, operandAt))
			if slot >= len(mt.Fields) {
				return Value{}, fr.trap("bad field slot", fmt.Sprintf("%d on %s", slot, mt))
			}
			f := &mt.Fields[slot]
			if f.IsRef() && !val.IsRef {
				return Value{}, fr.trap("type mismatch", "storing scalar into reference field "+f.Name)
			}
			h.SetField(obj.Ref(), f, storeBits(f.Kind(), val))

		case OpLdSFld:
			fr.push(t.vm.GetGlobal(int(u16(code, operandAt))))
		case OpStSFld:
			t.vm.SetGlobal(int(u16(code, operandAt)), fr.pop())

		default:
			return Value{}, fr.trap("bad opcode", fmt.Sprintf("%d", op))
		}

		if nextPC < fr.pc {
			// Backward branch: GC poll point (and step-budget charge).
			if t.stepBudget != 0 {
				t.stepBudget--
				if t.stepBudget == 0 {
					return Value{}, fr.trap("step budget exhausted", "backward branch")
				}
			}
			fr.pc = nextPC
			t.PollGC()
		} else {
			fr.pc = nextPC
		}
	}
	return result, nil
}

// elemValue widens a raw loaded value of kind k into a stack Value.
func elemValue(k Kind, bits uint64) Value {
	switch k {
	case KindRef:
		return RefValue(Ref(bits))
	case KindFloat32:
		return FloatValue(float64(f32FromBits(uint32(bits))))
	case KindFloat64:
		return Value{Bits: bits}
	default:
		return Value{Bits: bits}
	}
}

// storeBits narrows a stack Value for storage as kind k.
func storeBits(k Kind, v Value) uint64 {
	switch k {
	case KindFloat32:
		return uint64(f32Bits(float32(v.Float())))
	default:
		return v.Bits
	}
}

func u16(code []byte, at int) uint16 { return binary.LittleEndian.Uint16(code[at:]) }

// convF2I converts float64 to int64 with saturating, platform-
// independent semantics: NaN -> 0, out-of-range values clamp to
// MinInt64/MaxInt64. Go's int64(f) is implementation-defined for those
// inputs (amd64 and arm64 disagree), which would break the bit-identical
// cross-rank results the deterministic arithmetic contract requires.
func convF2I(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= 9223372036854775808.0: // 2^63
		return math.MaxInt64
	case f < -9223372036854775808.0: // -2^63
		return math.MinInt64
	default:
		return int64(f)
	}
}
