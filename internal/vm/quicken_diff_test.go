package vm

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// Differential property suite: quickened and baseline dispatch must be
// observably indistinguishable — same return value, same stdout, and
// on failure the same trap (kind, detail, method, pc) — over randomly
// generated programs. Each seed builds the SAME program on two fresh
// VMs with identical registration and allocation histories (so even
// trap details that embed heap addresses must match), quickens one,
// and compares everything.
//
// The generator emits structured, stack-balanced code on purpose:
// statements are stack-neutral, expressions push exactly one value.
// Traps still arise naturally — division by zero, out-of-bounds
// element access, field access on a non-object, null dereference —
// and runaway loops (a random store can clobber a loop counter) are
// cut by the step budget, whose exhaustion must also match exactly.

const (
	diffLocals   = 6 // 0-2 scratch ints, 3 ref slot, 4-5 loop counters
	diffArgs     = 2
	diffBudget   = 50_000
	diffPrograms = 150
)

type diffGen struct {
	rng    *rand.Rand
	b      *CodeBuilder
	v      *VM
	pt     *MethodTable // Point class (scalar fields)
	at     *MethodTable // int64[]
	hadd   *Method
	hdiv   *Method
	labels int
	loops  int
}

func (g *diffGen) label() string {
	g.labels++
	return "L" + string(rune('a'+g.labels/26)) + string(rune('a'+g.labels%26))
}

// expr emits code pushing exactly one value.
func (g *diffGen) expr(depth int) {
	c := g.rng.Intn(10)
	if depth <= 0 && c >= 3 {
		c = g.rng.Intn(3)
	}
	switch c {
	case 0:
		// Constants skew small; zero stays common enough to exercise
		// division traps.
		g.b.LdcI4(int32(g.rng.Intn(7) - 2))
	case 1:
		g.b.LdLoc(g.rng.Intn(3))
	case 2:
		g.b.LdArg(g.rng.Intn(diffArgs))
	case 3:
		g.expr(depth - 1)
		g.b.Op([]Op{OpNeg, OpNot, OpConvI2F, OpConvF2I}[g.rng.Intn(4)])
	case 4, 5, 6:
		g.expr(depth - 1)
		g.expr(depth - 1)
		g.b.Op([]Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
			OpClt, OpCgt, OpCeq, OpDiv, OpRem}[g.rng.Intn(13)])
	case 7:
		// Float excursion: convert, operate, compare or convert back.
		g.expr(depth - 1)
		g.b.Op(OpConvI2F)
		g.expr(depth - 1)
		g.b.Op(OpConvI2F)
		op := []Op{OpAddF, OpSubF, OpMulF, OpDivF, OpCltF, OpCgtF, OpCeqF}[g.rng.Intn(7)]
		g.b.Op(op)
		if op == OpAddF || op == OpSubF || op == OpMulF || op == OpDivF {
			g.b.Op(OpConvF2I)
		}
	case 8:
		g.expr(depth - 1)
		g.expr(depth - 1)
		if g.rng.Intn(2) == 0 {
			g.b.Call(g.hadd)
		} else {
			g.b.Call(g.hdiv)
		}
	case 9:
		// dup/pop noise around a real expression, still net +1.
		g.expr(depth - 1)
		g.b.Op(OpDup)
		g.b.Op(OpPop)
	}
}

// stmt emits stack-neutral code.
func (g *diffGen) stmt(depth int) {
	c := g.rng.Intn(10)
	if depth <= 0 && c >= 6 {
		c = g.rng.Intn(6)
	}
	switch c {
	case 0, 1:
		g.expr(3)
		g.b.StLoc(g.rng.Intn(3))
	case 2:
		g.expr(2)
		g.b.InternName(g.v, "console.writei")
	case 3:
		// Fusable increment on a scratch local.
		l := g.rng.Intn(3)
		g.b.LdLoc(l).LdcI4(int32(g.rng.Intn(5) + 1)).Op(OpAdd).StLoc(l)
	case 4:
		// Array or object into the ref slot.
		if g.rng.Intn(2) == 0 {
			g.b.LdcI4(int32(g.rng.Intn(5))).NewArr(g.at).StLoc(3)
		} else {
			g.b.NewObj(g.pt).StLoc(3)
		}
	case 5:
		// Touch the ref slot: element or field traffic. Whatever local 3
		// currently holds (array, object, scalar, null) both engines
		// must agree on the outcome.
		switch g.rng.Intn(4) {
		case 0:
			g.b.LdLoc(3)
			g.b.LdcI4(int32(g.rng.Intn(6) - 1)) // sometimes out of bounds
			g.expr(1)
			g.b.Op(OpStElem)
		case 1:
			g.b.LdLoc(3).LdcI4(int32(g.rng.Intn(6) - 1)).Op(OpLdElem)
			g.b.InternName(g.v, "console.writei")
		case 2:
			g.b.LdLoc(3)
			g.expr(1)
			g.b.StFld(g.pt, "x")
		case 3:
			g.b.LdLoc(3).LdFld(g.pt, "tag")
			g.b.InternName(g.v, "console.writei")
		}
	case 6, 7:
		// if/else
		elseL, endL := g.label(), g.label()
		g.expr(2)
		g.b.BrFalse(elseL)
		g.stmt(depth - 1)
		g.b.Br(endL)
		g.b.Label(elseL)
		g.stmt(depth - 1)
		g.b.Label(endL)
	case 8, 9:
		// Bounded loop on a dedicated counter (4 or 5). A nested random
		// store can still clobber it; the step budget breaks the tie.
		cnt := 4 + g.loops%2
		g.loops++
		topL := g.label()
		g.b.LdcI4(0).StLoc(cnt)
		g.b.Label(topL)
		g.stmt(depth - 1)
		g.b.LdLoc(cnt).LdcI4(1).Op(OpAdd).StLoc(cnt)
		g.b.LdLoc(cnt).LdcI4(int32(g.rng.Intn(4) + 2)).Op(OpClt).BrTrue(topL)
	}
}

// diffVM builds one side of the comparison: a fresh VM with the fixed
// registration order and the seed-determined method. The returned
// helpers are the callee pool (for quickening them too).
func diffVM(seed int64, out *bytes.Buffer) (*VM, *Method, []*Method) {
	v := New(Config{Name: "diff", Stdout: out,
		Heap: HeapConfig{YoungSize: 64 << 10, InitialElder: 256 << 10, ArenaMax: 32 << 20}})
	pt := pointClass(v)
	hadd := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).LdArg(1).Op(OpAdd).RetVal().Build("hadd", 2, 0, true))
	hadd.Verified = true
	hdiv := v.AddMethod(nil, NewCodeBuilder().
		LdArg(0).LdArg(1).Op(OpDiv).RetVal().Build("hdiv", 2, 0, true))
	hdiv.Verified = true

	g := &diffGen{
		rng: rand.New(rand.NewSource(seed)),
		b:   NewCodeBuilder(), v: v, pt: pt,
		at: v.ArrayType(KindInt64, nil, 1), hadd: hadd, hdiv: hdiv,
	}
	n := 4 + g.rng.Intn(6)
	for i := 0; i < n; i++ {
		g.b.MarkLine(i + 1)
		g.stmt(2)
	}
	g.b.LdLoc(0).RetVal()
	m := v.AddMethod(nil, g.b.Build("prog", diffArgs, diffLocals, true))
	m.Verified = true
	return v, m, []*Method{hadd, hdiv}
}

type diffOutcome struct {
	val  Value
	err  error
	out  string
	line int // masm line of the trap, if any
}

func runDiff(t *testing.T, seed int64, quicken bool, helpersToo bool) diffOutcome {
	t.Helper()
	var buf bytes.Buffer
	v, m, helpers := diffVM(seed, &buf)
	if quicken {
		if _, err := v.QuickenMethod(m); err != nil {
			t.Fatalf("seed %d: quicken: %v", seed, err)
		}
	}
	if helpersToo {
		for _, hm := range helpers {
			if _, err := v.QuickenMethod(hm); err != nil {
				t.Fatalf("seed %d: quicken %s: %v", seed, hm.Name, err)
			}
		}
	}
	o := diffOutcome{}
	v.WithThread("t", func(th *Thread) {
		th.SetStepBudget(diffBudget)
		o.val, o.err = th.Call(m, IntValue(7), IntValue(-3))
	})
	o.out = buf.String()
	var trap *Trap
	if errors.As(o.err, &trap) {
		o.line = m.LineForPC(trap.PC)
	}
	return o
}

func compareOutcomes(t *testing.T, seed int64, q, b diffOutcome, qname, bname string) {
	t.Helper()
	if q.val != b.val {
		t.Errorf("seed %d: %s value %+v, %s value %+v", seed, qname, q.val, bname, b.val)
	}
	if q.out != b.out {
		t.Errorf("seed %d: %s stdout %q, %s stdout %q", seed, qname, q.out, bname, b.out)
	}
	if q.line != b.line {
		t.Errorf("seed %d: trap line %d vs %d", seed, q.line, b.line)
	}
	compareErrs(t, qname, q.err, b.err)
}

// TestQuickenDifferential is the core property: for every seed, the
// quickened engine and the baseline engine agree bit-for-bit on value,
// stdout, trap identity and trap line attribution.
func TestQuickenDifferential(t *testing.T) {
	trapped := 0
	for seed := int64(0); seed < diffPrograms; seed++ {
		q := runDiff(t, seed, true, false)
		b := runDiff(t, seed, false, false)
		compareOutcomes(t, seed, q, b, "quickened", "baseline")
		if q.err != nil {
			trapped++
		}
		if t.Failed() {
			t.Fatalf("seed %d diverged", seed)
		}
	}
	// The generator must actually exercise the trap paths; a suite
	// where nothing ever traps proves much less.
	if trapped == 0 || trapped == diffPrograms {
		t.Fatalf("degenerate corpus: %d/%d programs trapped", trapped, diffPrograms)
	}
	t.Logf("%d/%d programs trapped (both engines identically)", trapped, diffPrograms)
}

// TestQuickenDifferentialMixed re-runs the corpus with helper callees
// also quickened (quick→quick calls) against fully-baseline execution.
func TestQuickenDifferentialMixed(t *testing.T) {
	for seed := int64(0); seed < diffPrograms/3; seed++ {
		q := runDiff(t, seed, true, true)
		b := runDiff(t, seed, false, false)
		compareOutcomes(t, seed, q, b, "all-quickened", "baseline")
		if t.Failed() {
			t.Fatalf("seed %d diverged", seed)
		}
	}
}

// TestQuickenDeterministic: the same seed must produce identical code
// bytes on two fresh VMs — the two-VM comparison above depends on it.
func TestQuickenDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		var b1, b2 bytes.Buffer
		_, m1, _ := diffVM(seed, &b1)
		_, m2, _ := diffVM(seed, &b2)
		if !bytes.Equal(m1.Code, m2.Code) {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
	}
}
