package vm

import (
	"os"
	"path/filepath"
	"testing"
)

// addSeedCorpus feeds every module under testdata/fuzz-seeds into the
// fuzzer. `go test` runs exactly this corpus (no mutation), so the
// targets double as deterministic regression tests in CI.
func addSeedCorpus(f *testing.F) {
	f.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "fuzz-seeds", "*.masm"))
	if err != nil || len(files) == 0 {
		f.Fatalf("no fuzz seeds: %v", err)
	}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
}

// FuzzParseModule asserts the assembler's contract: any input either
// assembles or returns an *AsmError — it never panics and never
// produces a module with a nil method.
func FuzzParseModule(f *testing.F) {
	addSeedCorpus(f)
	f.Add("")
	f.Add(".method main (0) void\n.end")
	f.Add(".class C\n.field int32 x\n.end")
	f.Add(".method m (99999) void\nret\n.end")
	f.Add(".method m (0) NoSuchClass\nret\n.end")
	f.Fuzz(func(t *testing.T, src string) {
		v := New(Config{})
		mod, err := v.AssembleModule(src)
		if err != nil {
			if mod != nil {
				t.Fatalf("error %v with non-nil module", err)
			}
			return
		}
		for i, m := range mod.Methods {
			if m == nil {
				t.Fatalf("method %d is nil", i)
			}
		}
	})
}
