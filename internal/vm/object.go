package vm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file provides typed access to managed objects: scalar and
// reference fields, array elements, and — for the message-passing
// core — the raw byte range of an object's instance data, which is
// what a zero-copy transport reads and writes directly (paper §2.3).

// Length returns the total element count of an array object (the
// product of dimensions for multidimensional arrays), or 0 for class
// instances.
func (h *Heap) Length(ref Ref) int { return int(h.arrayLen(ref)) }

// Dims returns the dimension sizes of a multidimensional array, or
// a single-element slice for vectors.
func (h *Heap) Dims(ref Ref) []int {
	mt := h.MT(ref)
	if mt.Kind != TKArray {
		return nil
	}
	if mt.Rank <= 1 {
		return []int{int(h.arrayLen(ref))}
	}
	dims := make([]int, mt.Rank)
	for i := range dims {
		dims[i] = int(h.u32(uint32(ref) + HeaderSize + uint32(4*i)))
	}
	return dims
}

// DataRange returns the [start,end) arena offsets of the object's
// instance data: field storage for classes, element storage for
// arrays. This is the buffer a zero-copy transport targets; the
// object must be protected from movement (pinned, or established as
// elder-resident) while the range is in use.
func (h *Heap) DataRange(ref Ref) (start, end uint32) {
	mt := h.MT(ref)
	off := uint32(ref)
	if mt.Kind == TKArray {
		d := arrayDataOff(mt)
		return off + d, off + d + uint32(h.Length(ref)*mt.ElemSize())
	}
	return off + HeaderSize, off + HeaderSize + mt.InstanceSize
}

// Bytes returns the live arena slice [start,end). The slice is only
// valid until the next allocation (the arena may grow) — transports
// must re-resolve it on every progress step.
func (h *Heap) Bytes(start, end uint32) []byte { return h.mem[start:end] }

// DataBytes resolves the instance-data slice of an object.
func (h *Heap) DataBytes(ref Ref) []byte {
	s, e := h.DataRange(ref)
	return h.mem[s:e]
}

// DataSize returns the byte size of the object's instance data — the
// implicit message length the Motor bindings derive instead of taking
// a count/datatype pair (paper §4.2.1).
func (h *Heap) DataSize(ref Ref) int {
	s, e := h.DataRange(ref)
	return int(e - s)
}

// --- field access -------------------------------------------------------

func (h *Heap) fieldOff(ref Ref, f *FieldDesc) uint32 {
	return uint32(ref) + HeaderSize + f.Offset()
}

// GetScalar reads a scalar field as raw uint64 bits (sign-extended
// for signed kinds, IEEE bits for floats).
func (h *Heap) GetScalar(ref Ref, f *FieldDesc) uint64 {
	return h.loadKind(h.fieldOff(ref, f), f.Kind())
}

// SetScalar writes a scalar field from raw bits.
func (h *Heap) SetScalar(ref Ref, f *FieldDesc, bits uint64) {
	h.storeKind(h.fieldOff(ref, f), f.Kind(), bits)
}

// GetRef reads a reference field.
func (h *Heap) GetRef(ref Ref, f *FieldDesc) Ref {
	return Ref(h.u32(h.fieldOff(ref, f)))
}

// SetRef writes a reference field, applying the generational write
// barrier.
func (h *Heap) SetRef(ref Ref, f *FieldDesc, val Ref) {
	h.putU32(h.fieldOff(ref, f), uint32(val))
	h.recordWrite(ref, val)
}

// GetField reads any field as (bits, isRef).
func (h *Heap) GetField(ref Ref, f *FieldDesc) (uint64, bool) {
	if f.IsRef() {
		return uint64(h.GetRef(ref, f)), true
	}
	return h.GetScalar(ref, f), false
}

// SetField writes any field from (bits, isRef form implied by f).
func (h *Heap) SetField(ref Ref, f *FieldDesc, bits uint64) {
	if f.IsRef() {
		h.SetRef(ref, f, Ref(bits))
		return
	}
	h.SetScalar(ref, f, bits)
}

// --- array element access ------------------------------------------------

func (h *Heap) elemOff(ref Ref, mt *MethodTable, i int) uint32 {
	return uint32(ref) + arrayDataOff(mt) + uint32(i*mt.ElemSize())
}

// GetElem reads element i of an array as raw bits.
func (h *Heap) GetElem(ref Ref, i int) uint64 {
	mt := h.MT(ref)
	h.boundsCheck(ref, i)
	return h.loadKind(h.elemOff(ref, mt, i), mt.Elem)
}

// SetElem writes element i of an array from raw bits, applying the
// write barrier for reference elements.
func (h *Heap) SetElem(ref Ref, i int, bits uint64) {
	mt := h.MT(ref)
	h.boundsCheck(ref, i)
	h.storeKind(h.elemOff(ref, mt, i), mt.Elem, bits)
	if mt.Elem == KindRef {
		h.recordWrite(ref, Ref(bits))
	}
}

// GetElemRef reads a reference element.
func (h *Heap) GetElemRef(ref Ref, i int) Ref { return Ref(h.GetElem(ref, i)) }

// SetElemRef writes a reference element.
func (h *Heap) SetElemRef(ref Ref, i int, val Ref) { h.SetElem(ref, i, uint64(val)) }

func (h *Heap) boundsCheck(ref Ref, i int) {
	if n := int(h.arrayLen(ref)); i < 0 || i >= n {
		panic(&BoundsError{Ref: ref, Index: i, Length: n})
	}
}

// BoundsError is raised (as a panic caught by the interpreter) on an
// out-of-range array access. Bounds are what stop a transport or a
// managed program from "overwriting the end of an object" (§2.4).
type BoundsError struct {
	Ref    Ref
	Index  int
	Length int
}

// Error implements the error interface.
func (e *BoundsError) Error() string {
	return fmt.Sprintf("vm: index %d out of range (length %d) on object %#x", e.Index, e.Length, e.Ref)
}

// --- scalar load/store by kind -------------------------------------------

func (h *Heap) loadKind(off uint32, k Kind) uint64 {
	switch k {
	case KindBool, KindUint8:
		return uint64(h.mem[off])
	case KindInt8:
		return uint64(int64(int8(h.mem[off])))
	case KindUint16, KindChar:
		return uint64(binary.LittleEndian.Uint16(h.mem[off:]))
	case KindInt16:
		return uint64(int64(int16(binary.LittleEndian.Uint16(h.mem[off:]))))
	case KindUint32, KindRef:
		return uint64(binary.LittleEndian.Uint32(h.mem[off:]))
	case KindInt32:
		return uint64(int64(int32(binary.LittleEndian.Uint32(h.mem[off:]))))
	case KindInt64, KindUint64, KindFloat64:
		return binary.LittleEndian.Uint64(h.mem[off:])
	case KindFloat32:
		return uint64(binary.LittleEndian.Uint32(h.mem[off:]))
	default:
		panic(fmt.Sprintf("vm: load of kind %s", k))
	}
}

func (h *Heap) storeKind(off uint32, k Kind, bits uint64) {
	switch k {
	case KindBool, KindInt8, KindUint8:
		h.mem[off] = byte(bits)
	case KindInt16, KindUint16, KindChar:
		binary.LittleEndian.PutUint16(h.mem[off:], uint16(bits))
	case KindInt32, KindUint32, KindRef, KindFloat32:
		binary.LittleEndian.PutUint32(h.mem[off:], uint32(bits))
	case KindInt64, KindUint64, KindFloat64:
		binary.LittleEndian.PutUint64(h.mem[off:], bits)
	default:
		panic(fmt.Sprintf("vm: store of kind %s", k))
	}
}

// Float64Bits helpers for interpreter and tests.

// F64FromBits converts raw bits to float64.
func F64FromBits(b uint64) float64 { return math.Float64frombits(b) }

// BitsFromF64 converts float64 to raw bits.
func BitsFromF64(f float64) uint64 { return math.Float64bits(f) }

func f32FromBits(b uint32) float32 { return math.Float32frombits(b) }
func f32Bits(f float32) uint32     { return math.Float32bits(f) }

// --- convenience builders (used heavily by tests, FCalls, benches) --------

// NewInt32Array allocates and fills a rank-1 int32 array.
func (h *Heap) NewInt32Array(vals []int32) (Ref, error) {
	mt := h.vm.ArrayType(KindInt32, nil, 1)
	ref, err := h.AllocArray(mt, len(vals))
	if err != nil {
		return NullRef, err
	}
	for i, v := range vals {
		h.SetElem(ref, i, uint64(uint32(v)))
	}
	return ref, nil
}

// NewUint8Array allocates and fills a rank-1 byte array.
func (h *Heap) NewUint8Array(vals []byte) (Ref, error) {
	mt := h.vm.ArrayType(KindUint8, nil, 1)
	ref, err := h.AllocArray(mt, len(vals))
	if err != nil {
		return NullRef, err
	}
	copy(h.DataBytes(ref), vals)
	return ref, nil
}

// NewFloat64Array allocates and fills a rank-1 float64 array.
func (h *Heap) NewFloat64Array(vals []float64) (Ref, error) {
	mt := h.vm.ArrayType(KindFloat64, nil, 1)
	ref, err := h.AllocArray(mt, len(vals))
	if err != nil {
		return NullRef, err
	}
	for i, v := range vals {
		h.SetElem(ref, i, BitsFromF64(v))
	}
	return ref, nil
}

// Int32Slice copies out an int32 array's contents.
func (h *Heap) Int32Slice(ref Ref) []int32 {
	n := h.Length(ref)
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = int32(uint32(h.GetElem(ref, i)))
	}
	return out
}

// Uint8Slice copies out a byte array's contents.
func (h *Heap) Uint8Slice(ref Ref) []byte {
	out := make([]byte, h.Length(ref))
	copy(out, h.DataBytes(ref))
	return out
}

// Float64Slice copies out a float64 array's contents.
func (h *Heap) Float64Slice(ref Ref) []float64 {
	n := h.Length(ref)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = F64FromBits(h.GetElem(ref, i))
	}
	return out
}
