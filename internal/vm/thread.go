package vm

import "fmt"

// Managed threads are cooperatively scheduled: at most one thread of
// a VM executes managed code at a time, and control transfers only at
// GC poll points (branches, calls, allocation, and the polling-waits
// inside FCalls). This realizes the paper's safepoint discipline —
// "only when all threads enter the safe state does collection
// commence" (§5.2) — because any thread that is not running is, by
// construction, parked at a poll point or executing native code that
// touches no managed memory.
//
// An FCall that needs to wait (for example on message transport) must
// therefore never block in Go; it loops calling Thread.PollGC, which
// both yields to sibling threads and lets their collections proceed.
// This is exactly the polling-wait the paper substitutes for blocking
// system calls (§7.1).

// Thread is one managed execution context.
type Thread struct {
	vm   *VM
	name string

	// callStack is maintained by the interpreter.
	callStack []*callFrame

	// prot holds FCall-protected reference slots: Go-side locals that
	// the collector must treat as roots and update on movement,
	// mirroring the SSCLI's protected object pointers (§5.1).
	prot [][]*Ref

	// inFCall is true while the interpreter is inside an OpIntern
	// host-function invocation. The trap recovery uses it to tell a
	// guest-program fault (malformed bytecode tripping a Go runtime
	// error in the dispatch loop — reported as a trap) from a bug in
	// host Go code (re-panicked, so it crashes loudly instead of being
	// blamed on the bytecode).
	inFCall bool

	// stepBudget, when non-zero, is decremented at every backward
	// branch and managed call; reaching zero raises a "step budget
	// exhausted" trap. Both dispatch engines charge at the same
	// program points, so a budgeted run diverges identically under
	// baseline and quickened dispatch — the property the differential
	// test harness relies on to bound fuzzed guest programs.
	stepBudget int64

	attached bool
}

// SetStepBudget bounds managed execution on this thread: every
// backward branch and managed call costs one step, and exhausting the
// budget traps. Zero (the default) means unlimited.
func (t *Thread) SetStepBudget(n int64) { t.stepBudget = n }

// StartThread creates a managed thread and enters managed execution
// (acquiring the VM's execution token). The caller must End it.
func (v *VM) StartThread(name string) *Thread {
	t := &Thread{vm: v, name: name}
	v.execMu.Lock()
	v.mu.Lock()
	v.threads[t] = struct{}{}
	t.attached = true
	v.mu.Unlock()
	return t
}

// End leaves managed execution and detaches the thread.
func (t *Thread) End() {
	if !t.attached {
		return
	}
	t.vm.mu.Lock()
	delete(t.vm.threads, t)
	t.attached = false
	t.vm.mu.Unlock()
	t.vm.execMu.Unlock()
}

// VM returns the owning VM.
func (t *Thread) VM() *VM { return t.vm }

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// PollGC is the cooperative safepoint: it momentarily releases the
// execution token so sibling threads may run (and collect). The
// interpreter emits polls at backward branches and calls; FCalls call
// it on entry, on exit, and inside polling-waits (§7.4).
func (t *Thread) PollGC() { t.vm.PollPoint() }

// PollPoint is the VM-level safepoint for embedders that hold the
// execution token but have no Thread at hand (the message-passing
// engine's internal polling-waits). Equivalent to Thread.PollGC.
func (v *VM) PollPoint() {
	v.execMu.Unlock()
	v.execMu.Lock()
}

// ExecRun runs f while holding the execution token, from a goroutine
// that is NOT a managed thread. This is the background progress
// engine's gate: while f runs, no managed thread executes and no
// collection can start, so f may touch pinned managed buffers and
// complete requests whose conditional pins the collector would
// otherwise be resolving concurrently. f must not block and must not
// re-enter managed execution (StartThread/ExecRun) — it is a
// safepoint-shaped critical section, kept as short as one progress
// pass.
func (v *VM) ExecRun(f func()) {
	v.execMu.Lock()
	defer v.execMu.Unlock()
	f()
}

// Park releases the execution token for the whole duration of wait —
// unlike PollGC's momentary release — and reacquires it before
// returning. It is the blocking form of the polling-wait: a thread
// whose request will be completed by the background progress engine
// parks on a channel instead of spinning through poll points. While
// parked the thread is at a safepoint by construction (§5.2): its
// roots are stable and sibling threads may run and collect. wait must
// not touch managed memory.
func (t *Thread) Park(wait func()) {
	t.vm.execMu.Unlock()
	wait()
	t.vm.execMu.Lock()
}

// InTransportVerified reports whether the innermost managed frame on
// this thread belongs to a method the load-time verifier proved
// transport-safe. FCalls do not push frames, so during an intern call
// the top frame is the calling method — the Motor engine consults
// this to skip the dynamic object-model check on the verified path.
// False when no managed code is running (Go-API calls stay dynamic).
func (t *Thread) InTransportVerified() bool {
	if n := len(t.callStack); n > 0 {
		return t.callStack[n-1].method.TransportVerified
	}
	return false
}

// PushFrame registers FCall-protected reference slots and returns the
// matching pop function (use with defer). While registered, the slots
// are GC roots and are forwarded if their objects move.
func (t *Thread) PushFrame(refs ...*Ref) func() {
	t.prot = append(t.prot, refs)
	depth := len(t.prot)
	return func() {
		if len(t.prot) != depth {
			panic(fmt.Sprintf("vm: unbalanced protected frame pop on thread %s", t.name))
		}
		t.prot = t.prot[:depth-1]
	}
}

// visitRoots applies visit to every reference slot owned by the
// thread: interpreter locals, evaluation stacks, and protected FCall
// frames.
func (t *Thread) visitRoots(visit func(Ref) Ref) {
	for _, fr := range t.callStack {
		fr.visitRoots(visit)
	}
	for _, frame := range t.prot {
		for _, slot := range frame {
			if *slot != NullRef {
				*slot = visit(*slot)
			}
		}
	}
}

// WithThread runs f inside a temporary managed thread. It is the
// standard entry point for tests and embedders that need heap access.
func (v *VM) WithThread(name string, f func(t *Thread)) {
	t := v.StartThread(name)
	defer t.End()
	f(t)
}

// CollectYoung forces a scavenge. Must be called from managed context
// (inside a thread).
func (t *Thread) CollectYoung() { t.vm.collect(false) }

// CollectFull forces a full (scavenge + elder mark-sweep) collection.
func (t *Thread) CollectFull() { t.vm.collect(true) }

// CollectCompact forces a full collection with elder compaction. The
// legacy collector (gcworkers=1) never compacts, so this degrades to
// CollectFull there.
func (t *Thread) CollectCompact() {
	t.vm.Heap.RequestCompaction()
	t.vm.collect(true)
}
